(* vnl: command-line interface to the 2VNL warehouse.

   Subcommands:
     vnl shell      interactive SQL shell over a demo DailySales warehouse,
                    with reader sessions and on-line maintenance
     vnl scenario   run a Figure 1 / Figure 2 operating-mode simulation
     vnl blocking   run the concurrency-control blocking comparison
     vnl expiry     evaluate the nVNL no-expiry formula for a workload
     vnl stats      run a demo workload and dump the metric registry
     vnl serve      serve the demo warehouse over the wire protocol
     vnl load       open-loop session-churn load generator against serve *)

module Value = Vnl_relation.Value
module Executor = Vnl_query.Executor
module Table = Vnl_query.Table
module Twovnl = Vnl_core.Twovnl
module Warehouse = Vnl_warehouse.Warehouse
module Scenario = Vnl_workload.Scenario
module Cc_sim = Vnl_workload.Cc_sim
module Sales_gen = Vnl_workload.Sales_gen
module Expiry = Vnl_core.Expiry
module Stats = Vnl_util.Stats
module T = Vnl_util.Ascii_table
module Xorshift = Vnl_util.Xorshift

(* ---------- vnl shell ---------- *)

let shell_help =
  {|Commands:
  <SELECT ...>        session-consistent query over the views (2VNL rewrite)
  .session            begin a fresh reader session (picks up latest version)
  .state              show currentVN / maintenanceActive / session version
  .maintain N         queue N random source changes and begin applying them
                      in an open maintenance transaction
  .commit             commit the open maintenance transaction
  .abort              roll the open maintenance transaction back (no log)
  .explain <SELECT>   show the rewritten query's access plan
  .rewrite <SELECT>   show the rewritten SQL (Example 4.1 style)
  .gc                 collect logically deleted tuples
  .help               this message
  .quit               exit|}

let run_shell seed n =
  let rng = Xorshift.create seed in
  let wh = Warehouse.create ~n ~pool_capacity:256 [ Sales_gen.daily_sales_view () ] in
  Warehouse.queue_changes wh ~view:"DailySales"
    (Sales_gen.initial_load rng ~days:5 ~sales_per_day:120);
  ignore (Warehouse.refresh wh);
  let vnl = Warehouse.vnl wh in
  let session = ref (Warehouse.begin_session wh) in
  let txn : Twovnl.Txn.m option ref = ref None in
  let day = ref 6 in
  Printf.printf
    "%dVNL warehouse shell -- DailySales loaded (%d groups), currentVN = %d\n\
     Type .help for commands.\n"
    n
    (Table.tuple_count (Twovnl.table (Twovnl.handle_exn vnl "DailySales")))
    (Twovnl.current_vn vnl);
  let prompt () =
    Printf.printf "vnl[s%d]> " (Twovnl.Session.vn !session);
    flush stdout
  in
  let starts_with prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  let strip prefix s =
    String.trim (String.sub s (String.length prefix) (String.length s - String.length prefix))
  in
  let handle line =
    let line = String.trim line in
    if line = "" then true
    else if line = ".quit" || line = ".exit" then false
    else begin
      (try
         if line = ".help" then print_endline shell_help
         else if line = ".session" then begin
           Warehouse.end_session wh !session;
           session := Warehouse.begin_session wh;
           Printf.printf "new session at version %d\n" (Twovnl.Session.vn !session)
         end
         else if line = ".state" then
           Printf.printf "currentVN=%d maintenanceActive=%b sessionVN=%d txn=%s\n"
             (Twovnl.current_vn vnl)
             (Vnl_core.Version_state.maintenance_active (Twovnl.version_state vnl))
             (Twovnl.Session.vn !session)
             (match !txn with Some m -> Printf.sprintf "open (vn %d)" (Twovnl.Txn.vn m) | None -> "none")
         else if starts_with ".maintain" line then begin
           let n = try int_of_string (strip ".maintain" line) with _ -> 50 in
           let m =
             match !txn with
             | Some m -> m
             | None ->
               let m = Twovnl.Txn.begin_ vnl in
               txn := Some m;
               Printf.printf "maintenance transaction %d begun\n" (Twovnl.Txn.vn m);
               m
           in
           let src = Warehouse.source wh "DailySales" in
           let batch =
             Sales_gen.gen_batch rng src ~day:!day ~inserts:(n * 7 / 10) ~updates:(n * 2 / 10)
               ~deletes:(n / 10)
           in
           incr day;
           Warehouse.queue_changes wh ~view:"DailySales" batch;
           let pending = Warehouse.take_pending wh ~view:"DailySales" in
           let o = Vnl_warehouse.Summary.apply_batch m (Warehouse.view wh "DailySales") pending in
           Format.printf "applied: %a (uncommitted)@." Vnl_warehouse.Summary.pp_outcome o
         end
         else if line = ".commit" then (
           match !txn with
           | Some m ->
             Twovnl.Txn.commit m;
             txn := None;
             Printf.printf "committed; currentVN = %d\n" (Twovnl.current_vn vnl)
           | None -> print_endline "no open maintenance transaction")
         else if line = ".abort" then (
           match !txn with
           | Some m ->
             let reverted = Twovnl.Txn.abort m in
             txn := None;
             Printf.printf "aborted; %d tuples reverted without a log\n" reverted
           | None -> print_endline "no open maintenance transaction")
         else if starts_with ".explain" line then
           let sql = strip ".explain" line in
           print_endline
             (Executor.explain (Warehouse.database wh)
                ~params:[ ("sessionVN", Value.Int (Twovnl.Session.vn !session)) ]
                (Vnl_core.Rewrite.reader_select ~lookup:(Twovnl.lookup vnl)
                   (Vnl_sql.Parser.parse_select sql)))
         else if starts_with ".rewrite" line then
           print_endline
             (Vnl_core.Rewrite.reader_sql ~lookup:(Twovnl.lookup vnl) (strip ".rewrite" line))
         else if line = ".gc" then
           Printf.printf "%d tuples reclaimed\n" (Warehouse.collect_garbage wh)
         else if starts_with "." line then
           Printf.printf "unknown command %s (try .help)\n" line
         else Format.printf "%a@." Executor.pp_result (Warehouse.query wh !session line)
       with
      | Twovnl.Expired { session_vn; current_vn } ->
        Printf.printf
          "session expired (version %d, warehouse at %d): begin a new one with .session\n"
          session_vn current_vn
      | Vnl_sql.Parser.Parse_error msg -> Printf.printf "parse error: %s\n" msg
      | Vnl_sql.Lexer.Lex_error (msg, pos) -> Printf.printf "lex error at %d: %s\n" pos msg
      | Vnl_query.Eval.Eval_error msg | Executor.Query_error msg -> Printf.printf "error: %s\n" msg
      | Invalid_argument msg | Failure msg -> Printf.printf "error: %s\n" msg);
      true
    end
  in
  let rec loop () =
    prompt ();
    match input_line stdin with
    | line -> if handle line then loop ()
    | exception End_of_file -> print_newline ()
  in
  loop ()

(* ---------- vnl scenario ---------- *)

let run_scenario mode days batch =
  let cfg = { Scenario.default_config with Scenario.days; batch_per_day = batch } in
  let cfg =
    if mode = Scenario.Offline then
      { cfg with Scenario.maintenance_start = 22 * 60; maintenance_len = 6 * 60 }
    else cfg
  in
  let r = Scenario.run cfg mode in
  Printf.printf "%s over %d days:\n\n" (Scenario.mode_name mode) days;
  print_endline (Scenario.render_timeline r);
  print_newline ();
  T.print
    ~header:[ "metric"; "value" ]
    [
      [ "sessions started"; string_of_int r.Scenario.sessions_started ];
      [ "sessions completed"; string_of_int r.Scenario.sessions_completed ];
      [ "sessions rejected/interrupted"; string_of_int r.Scenario.sessions_rejected ];
      [ "sessions expired"; string_of_int r.Scenario.sessions_expired ];
      [ "query pairs"; string_of_int (r.Scenario.queries_executed / 2) ];
      [ "inconsistent pairs"; string_of_int r.Scenario.inconsistent_pairs ];
      [ "availability"; T.fmt_pct (Scenario.availability r) ];
      [ "final view matches sources"; string_of_bool r.Scenario.view_matches_source ];
    ]

(* ---------- vnl blocking ---------- *)

let run_blocking readers writer_items =
  let cfg = { Cc_sim.default_config with Cc_sim.readers; writer_items } in
  T.print
    ~header:
      [ "scheme"; "reader mean"; "reader p99"; "blocked mean"; "writer span"; "commit wait";
        "locks"; "deadlocks" ]
    (List.map
       (fun r ->
         [
           Cc_sim.scheme_name r.Cc_sim.scheme;
           T.fmt_float r.Cc_sim.reader_latency.Stats.mean;
           T.fmt_float r.Cc_sim.reader_latency.Stats.p99;
           T.fmt_float r.Cc_sim.reader_blocked.Stats.mean;
           string_of_int r.Cc_sim.writer_span;
           string_of_int r.Cc_sim.writer_commit_wait;
           string_of_int r.Cc_sim.lock_acquisitions;
           string_of_int r.Cc_sim.deadlock_aborts;
         ])
       (Cc_sim.run_all cfg))

(* ---------- vnl expiry ---------- *)

let run_expiry gap txn_len session_len =
  Printf.printf
    "maintenance: %d-minute transactions with %d-minute gaps; sessions of %d minutes\n\n"
    txn_len gap session_len;
  T.print
    ~header:[ "n"; "guaranteed no-expiry session (min)" ]
    (List.map
       (fun n ->
         [ string_of_int n; string_of_int (Expiry.never_expire_bound ~n ~gap ~txn_len) ])
       [ 2; 3; 4; 5 ]);
  Printf.printf "\nsmallest n for %d-minute sessions: %d\n" session_len
    (Expiry.versions_needed ~session_len ~gap ~txn_len)

(* ---------- vnl stats ---------- *)

module Obs = Vnl_obs.Obs

(* A small but complete demo workload — initial load, three days of
   on-line refresh with session-consistent reader queries, one GC pass —
   so every instrumented layer (disk, pool, 2VNL core, batch apply,
   maintenance protocol, reader path) contributes to the registry. *)
let run_stats seed format =
  Obs.enabled := true;
  Obs.reset ();
  let rng = Xorshift.create seed in
  let wh = Warehouse.create ~pool_capacity:256 [ Sales_gen.daily_sales_view () ] in
  Warehouse.queue_changes wh ~view:"DailySales"
    (Sales_gen.initial_load rng ~days:5 ~sales_per_day:120);
  ignore (Warehouse.refresh wh);
  let analyst =
    "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state"
  in
  for day = 6 to 8 do
    let src = Warehouse.source wh "DailySales" in
    Warehouse.queue_changes wh ~view:"DailySales"
      (Sales_gen.gen_batch rng src ~day ~inserts:70 ~updates:20 ~deletes:10);
    let s = Warehouse.begin_session wh in
    ignore (Warehouse.query wh s analyst);
    ignore (Warehouse.refresh wh);
    (* Second query of the pair: same session, post-refresh — the 2VNL
       guarantee under observation. *)
    ignore (Warehouse.query wh s analyst);
    Warehouse.end_session wh s
  done;
  ignore (Warehouse.collect_garbage wh);
  match format with
  | `Json -> print_string (Obs.to_json ())
  | `Prometheus -> print_string (Obs.to_prometheus ())
  | `Table ->
    print_endline
      "registry after the demo workload (5-day load + 3 on-line refresh days):\n";
    let live f l = List.filter f l in
    T.print ~header:[ "counter"; "value" ]
      (List.map
         (fun c -> [ Obs.Counter.name c; string_of_int (Obs.Counter.get c) ])
         (live (fun c -> Obs.Counter.get c <> 0) (Obs.Registry.counters Obs.Registry.default)));
    print_newline ();
    T.print ~header:[ "gauge"; "value" ]
      (List.map
         (fun g -> [ Obs.Gauge.name g; string_of_int (Obs.Gauge.get g) ])
         (Obs.Registry.gauges Obs.Registry.default));
    T.subsection "per-phase span breakdown";
    T.print
      ~header:[ "phase"; "count"; "total ms"; "mean ms"; "p99 ms" ]
      (List.map
         (fun (name, s) ->
           [
             name;
             string_of_int s.Stats.n;
             Printf.sprintf "%.3f" s.Stats.total;
             Printf.sprintf "%.4f" s.Stats.mean;
             Printf.sprintf "%.3f" s.Stats.p99;
           ])
         (Obs.phase_summaries ()))

(* ---------- vnl serve / vnl load ---------- *)

module Server = Vnl_net.Server
module Load = Vnl_net.Load

(* Flags win; otherwise the hardened VNL_NET_* knobs; otherwise built-in
   defaults.  Env parsing fails loudly on non-numeric/non-positive values
   (Load.env_int / Load.env_float). *)
let or_env_int ?least flag name default =
  match flag with Some v -> v | None -> Load.env_int ?least name default

let or_env_float ?least flag name default =
  match flag with Some v -> v | None -> Load.env_float ?least name default

let run_serve seed port unix_path workers max_sessions churn_every_ms churn_batch
    duration_s =
  let port = or_env_int ~least:0 port "VNL_NET_PORT" 7781 in
  let workers = or_env_int workers "VNL_NET_WORKERS" 2 in
  let max_sessions = or_env_int max_sessions "VNL_NET_MAX_SESSIONS" 1024 in
  let churn_every_ms = or_env_float churn_every_ms "VNL_NET_CHURN_MS" 50.0 in
  let rng = Xorshift.create seed in
  let wh = Warehouse.create ~pool_capacity:512 [ Sales_gen.daily_sales_view () ] in
  Warehouse.queue_changes wh ~view:"DailySales"
    (Sales_gen.initial_load rng ~days:5 ~sales_per_day:120);
  ignore (Warehouse.refresh wh);
  let vnl = Warehouse.vnl wh in
  let listen =
    match unix_path with
    | Some path -> Server.Unix_path path
    | None -> Server.Tcp { host = "127.0.0.1"; port }
  in
  let config = { Server.default_config with workers; max_connections = max_sessions } in
  let srv = Server.start ~config listen vnl in
  let stop = Atomic.make false in
  let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  Sys.set_signal Sys.sigterm on_signal;
  Sys.set_signal Sys.sigint on_signal;
  Printf.printf
    "serving DailySales on %s: workers=%d max-sessions=%d churn every %gms x %d changes%s\n%!"
    (match listen with
    | Server.Tcp _ -> Printf.sprintf "127.0.0.1:%d" (Server.port srv)
    | Server.Unix_path p -> p)
    workers max_sessions churn_every_ms churn_batch
    (match duration_s with
    | Some d -> Printf.sprintf " for %gs" d
    | None -> " until SIGTERM/SIGINT");
  let t0 = Unix.gettimeofday () in
  let deadline = match duration_s with Some d -> t0 +. d | None -> infinity in
  let day = ref 6 in
  let refreshes = ref 0 in
  while (not (Atomic.get stop)) && Unix.gettimeofday () < deadline do
    (try Unix.sleepf (churn_every_ms /. 1000.0)
     with Unix.Unix_error (EINTR, _, _) -> ());
    if churn_batch > 0 && not (Atomic.get stop) then begin
      let src = Warehouse.source wh "DailySales" in
      Warehouse.queue_changes wh ~view:"DailySales"
        (Sales_gen.gen_batch rng src ~day:!day ~inserts:(churn_batch * 7 / 10)
           ~updates:(churn_batch * 2 / 10) ~deletes:(churn_batch / 10));
      incr day;
      ignore (Warehouse.refresh wh);
      incr refreshes
    end
  done;
  Server.stop srv;
  ignore (Warehouse.collect_garbage wh);
  (* The acceptance check: with every connection closed, every session pin
     must be released — the GC horizon catches up to currentVN. *)
  let current = Twovnl.current_vn vnl in
  let horizon = Twovnl.min_session_vn vnl in
  let leaked = current - horizon in
  Printf.printf
    "stopped after %d maintenance commits: currentVN=%d session horizon=%d (%d leaked pins)\n%!"
    !refreshes current horizon leaked;
  if leaked <> 0 then exit 1

let run_load host port unix_path sessions concurrency rate fetch_size think_ms
    disconnect_prob seed sql =
  let port = or_env_int ~least:0 port "VNL_NET_PORT" 7781 in
  let sessions = or_env_int sessions "VNL_NET_SESSIONS" 200 in
  let concurrency = or_env_int concurrency "VNL_NET_CONCURRENCY" 2 in
  let rate = or_env_float ~least:0.0 rate "VNL_NET_RATE" 0.0 in
  let addr =
    match unix_path with
    | Some path -> Vnl_net.Client.Unix_path path
    | None -> Vnl_net.Client.Tcp (host, port)
  in
  let cfg =
    {
      Load.addr;
      sessions;
      concurrency;
      rate;
      fetch_size;
      think_ms;
      disconnect_prob;
      seed;
      sql = (match sql with Some s -> s | None -> Load.default_sql);
    }
  in
  let r = Load.run cfg in
  T.print ~header:[ "metric"; "value" ]
    [
      [ "sessions attempted"; string_of_int r.Load.l_sessions ];
      [ "completed (orderly Bye)"; string_of_int r.Load.l_completed ];
      [ "abrupt disconnects (intended)"; string_of_int r.Load.l_disconnected ];
      [ "busy-rejected"; string_of_int r.Load.l_busy ];
      [ "shed by server"; string_of_int r.Load.l_shed ];
      [ "expired"; string_of_int r.Load.l_expired ];
      [ "errors"; string_of_int r.Load.l_errors ];
      [ "inconsistent query pairs"; string_of_int r.Load.l_inconsistent ];
      [ "requests"; string_of_int r.Load.l_requests ];
      [ "rows fetched"; string_of_int r.Load.l_rows ];
      [ "late open-loop starts"; string_of_int r.Load.l_late_starts ];
      [ "elapsed s"; Printf.sprintf "%.3f" r.Load.l_elapsed_s ];
      [ "requests/s"; Printf.sprintf "%.0f" r.Load.l_qps ];
      [ "sessions/s"; Printf.sprintf "%.0f" r.Load.l_sessions_per_s ];
      [ "p50 ms"; Printf.sprintf "%.3f" r.Load.l_p50_ms ];
      [ "p99 ms"; Printf.sprintf "%.3f" r.Load.l_p99_ms ];
    ];
  if r.Load.l_inconsistent > 0 then begin
    Printf.eprintf
      "FAIL: %d query pairs disagreed within one session without expiry\n%!"
      r.Load.l_inconsistent;
    exit 1
  end

(* ---------- cmdliner wiring ---------- *)

open Cmdliner

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic workload seed.")

let verbose_term =
  let setup verbose =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Debug)
    end
  in
  Term.(const setup $ Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log 2VNL core events."))

let shell_cmd =
  let doc = "Interactive SQL shell over a demo 2VNL/nVNL warehouse." in
  let n_term =
    Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Versions per tuple (nVNL).")
  in
  Cmd.v (Cmd.info "shell" ~doc)
    Term.(const (fun () seed n -> run_shell seed n) $ verbose_term $ seed_term $ n_term)

let scenario_cmd =
  let doc = "Run a warehouse operating-mode simulation (Figures 1-2)." in
  let mode =
    let parse = function
      | "offline" -> Ok Scenario.Offline
      | "dirty" -> Ok Scenario.Dirty
      | s -> (
        match int_of_string_opt s with
        | Some n when n >= 2 -> Ok (Scenario.Online n)
        | _ -> Error (`Msg "expected offline, dirty, or an integer n >= 2 (nVNL)"))
    in
    let print ppf m = Format.pp_print_string ppf (Scenario.mode_name m) in
    Arg.conv (parse, print)
  in
  let mode_term =
    Arg.(value & opt mode (Scenario.Online 2)
         & info [ "mode" ] ~docv:"MODE" ~doc:"offline, dirty, or n (nVNL with n versions).")
  in
  let days = Arg.(value & opt int 3 & info [ "days" ] ~docv:"DAYS" ~doc:"Simulated days.") in
  let batch =
    Arg.(value & opt int 300 & info [ "batch" ] ~docv:"N" ~doc:"Source changes per day.")
  in
  Cmd.v (Cmd.info "scenario" ~doc) Term.(const run_scenario $ mode_term $ days $ batch)

let blocking_cmd =
  let doc = "Compare reader/writer blocking across CC schemes (S2PL, 2V2PL, MV2PL, 2VNL)." in
  let readers =
    Arg.(value & opt int 40 & info [ "readers" ] ~docv:"N" ~doc:"Concurrent reader transactions.")
  in
  let writer_items =
    Arg.(value & opt int 60 & info [ "writer-items" ] ~docv:"N" ~doc:"Items the writer updates.")
  in
  Cmd.v (Cmd.info "blocking" ~doc) Term.(const run_blocking $ readers $ writer_items)

let expiry_cmd =
  let doc = "Evaluate the nVNL no-expiry guarantee for a maintenance pattern." in
  let gap = Arg.(value & opt int 60 & info [ "gap" ] ~docv:"MIN" ~doc:"Gap between transactions.") in
  let txn_len =
    Arg.(value & opt int 1380 & info [ "txn-len" ] ~docv:"MIN" ~doc:"Maintenance duration.")
  in
  let session =
    Arg.(value & opt int 100 & info [ "session" ] ~docv:"MIN" ~doc:"Target session length.")
  in
  Cmd.v (Cmd.info "expiry" ~doc) Term.(const run_expiry $ gap $ txn_len $ session)

let stats_cmd =
  let doc =
    "Run a demo warehouse workload with observability on and report the metric \
     registry (counters, gauges, per-phase span breakdown)."
  in
  let format_term =
    let json =
      Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry as JSON (Obs.to_json).")
    in
    let prometheus =
      Arg.(value & flag
           & info [ "prometheus" ] ~doc:"Emit Prometheus text exposition (Obs.to_prometheus).")
    in
    Term.(
      const (fun json prometheus ->
          if json then `Json else if prometheus then `Prometheus else `Table)
      $ json $ prometheus)
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run_stats $ seed_term $ format_term)

let unix_term =
  Arg.(value & opt (some string) None
       & info [ "unix" ] ~docv:"PATH" ~doc:"Use a Unix-domain socket at $(docv) instead of TCP.")

let port_term =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port (0 binds an ephemeral one); default \\$VNL_NET_PORT or 7781.")

let serve_cmd =
  let doc =
    "Serve the demo DailySales warehouse over the wire protocol while a \
     maintainer churns it (on-line refresh every --churn-every ms), until \
     --duration elapses or SIGTERM/SIGINT.  Exits non-zero if any session \
     pin is still held after shutdown (a leaked epoch pin)."
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains; default \\$VNL_NET_WORKERS or 2.")
  in
  let max_sessions =
    Arg.(value & opt (some int) None
         & info [ "max-sessions" ] ~docv:"N"
             ~doc:"Admission-control connection cap; default \\$VNL_NET_MAX_SESSIONS or 1024.")
  in
  let churn_every =
    Arg.(value & opt (some float) None
         & info [ "churn-every" ] ~docv:"MS"
             ~doc:"Maintenance refresh period; default \\$VNL_NET_CHURN_MS or 50.")
  in
  let churn_batch =
    Arg.(value & opt int 50
         & info [ "churn-batch" ] ~docv:"N" ~doc:"Source changes per refresh (0 = no churn).")
  in
  let duration =
    Arg.(value & opt (some float) None
         & info [ "duration" ] ~docv:"S" ~doc:"Stop after $(docv) seconds (default: run until signal).")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ seed_term $ port_term $ unix_term $ workers $ max_sessions
      $ churn_every $ churn_batch $ duration)

let load_cmd =
  let doc =
    "Open-loop load generator: a population of short-lived reader sessions \
     (connect/hello/query-pair/fetch/bye) with optional abrupt mid-cursor \
     disconnects, against a running $(b,vnl serve).  Exits non-zero on any \
     within-session inconsistency."
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let sessions =
    Arg.(value & opt (some int) None
         & info [ "sessions" ] ~docv:"N" ~doc:"Session lifecycles; default \\$VNL_NET_SESSIONS or 200.")
  in
  let concurrency =
    Arg.(value & opt (some int) None
         & info [ "concurrency" ] ~docv:"N"
             ~doc:"Generator domains; default \\$VNL_NET_CONCURRENCY or 2.")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"PER_S"
             ~doc:"Open-loop session arrivals per second (0 = unpaced); default \\$VNL_NET_RATE or 0.")
  in
  let fetch_size =
    Arg.(value & opt int 64 & info [ "fetch-size" ] ~docv:"ROWS" ~doc:"Rows per Fetch request.")
  in
  let think_ms =
    Arg.(value & opt float 0.0
         & info [ "think-ms" ] ~docv:"MS" ~doc:"Client stall between fetches (slow client).")
  in
  let disconnect_prob =
    Arg.(value & opt float 0.0
         & info [ "disconnect-prob" ] ~docv:"P"
             ~doc:"Probability a session vanishes abruptly mid-cursor.")
  in
  let sql =
    Arg.(value & opt (some string) None
         & info [ "sql" ] ~docv:"SELECT" ~doc:"Statement for the query pair (default: demo roll-up).")
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(
      const run_load $ host $ port_term $ unix_term $ sessions $ concurrency $ rate
      $ fetch_size $ think_ms $ disconnect_prob $ seed_term $ sql)

let () =
  let doc = "2VNL on-line warehouse view maintenance (Quass & Widom, SIGMOD 1997)" in
  let info = Cmd.info "vnl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ shell_cmd; scenario_cmd; blocking_cmd; expiry_cmd; stats_cmd; serve_cmd; load_cmd ]))
