module Obs = Vnl_obs.Obs
let () =
  Obs.enabled := true;
  Obs.with_span "first" (fun () -> ());
  Obs.with_span "second" (fun () -> ());
  Obs.with_span "third" (fun () -> ());
  List.iter (fun sp -> print_endline sp.Obs.Span.name) (Obs.recent_spans ())
