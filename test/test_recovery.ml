(* Tests for persistence (catalog save/reopen) and §7-style no-log crash
   recovery: a crash mid-maintenance is repaired from the tuples' own
   pre-update versions, no log consulted. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Catalog = Vnl_query.Catalog
module Executor = Vnl_query.Executor
module Twovnl = Vnl_core.Twovnl
module Xorshift = Vnl_util.Xorshift

let check = Alcotest.check

let test_catalog_roundtrip () =
  let entries =
    [
      {
        Catalog.table = "DailySales";
        schema = Fixtures.daily_sales;
        pages = [ 3; 7; 12 ];
        secondary = [ ("idx_city", [ "city"; "date" ]) ];
      };
      {
        Catalog.table = "Tiny";
        schema = Schema.make [ Schema.attr "a" Dtype.Int ];
        pages = [];
        secondary = [];
      };
    ]
  in
  let parsed = Catalog.parse (Catalog.serialize entries) in
  check Alcotest.int "two entries" 2 (List.length parsed);
  let e = List.hd parsed in
  check Alcotest.string "name" "DailySales" e.Catalog.table;
  Alcotest.(check bool) "schema equal" true (Schema.equal Fixtures.daily_sales e.Catalog.schema);
  check (Alcotest.list Alcotest.int) "pages" [ 3; 7; 12 ] e.Catalog.pages;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.list Alcotest.string)))
    "secondary"
    [ ("idx_city", [ "city"; "date" ]) ]
    e.Catalog.secondary

let test_catalog_rejects_garbage () =
  List.iter
    (fun text ->
      Alcotest.(check bool) "raises" true
        (try ignore (Catalog.parse text); false with Catalog.Corrupt _ -> true))
    [ ""; "nonsense"; "vnl-catalog 1\nattr a|int|--\n"; "vnl-catalog 1\ntable t\nattr broken\nend" ]

(* Names the line-oriented catalog format cannot round-trip must be
   rejected when they enter the system, not discovered as a corrupt
   catalog at the next reopen. *)
let bad_names = [ ""; "a|b"; "a b"; "a\nb"; "a\tb"; "caf\xc3\xa9" ]

let tricky_good_names = [ "T-1.x_2"; "a'b"; "#tmp"; "UPPER_lower.0"; "!"; "~" ]

let entry_with ?(table = "T") ?(attr = "a") ?(index = None) () =
  let schema =
    Schema.make [ Schema.attr ~key:true attr Dtype.Int; Schema.attr "v" Dtype.Int ]
  in
  {
    Catalog.table;
    schema;
    pages = [ 1 ];
    secondary = (match index with None -> [] | Some (n, cols) -> [ (n, cols) ]);
  }

let test_catalog_rejects_bad_names () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "table %S rejected at serialize" name)
        true
        (raises (fun () -> ignore (Catalog.serialize [ entry_with ~table:name () ])));
      Alcotest.(check bool)
        (Printf.sprintf "attribute %S rejected at serialize" name)
        true
        (raises (fun () -> ignore (Catalog.serialize [ entry_with ~attr:name () ])));
      Alcotest.(check bool)
        (Printf.sprintf "index %S rejected at serialize" name)
        true
        (raises (fun () ->
             ignore (Catalog.serialize [ entry_with ~index:(Some (name, [ "a" ])) () ])));
      (* And the same names never get in through the front door. *)
      let db = Database.create () in
      Alcotest.(check bool)
        (Printf.sprintf "create_table %S rejected" name)
        true
        (raises (fun () ->
             ignore
               (Database.create_table db name
                  (Schema.make [ Schema.attr ~key:true "a" Dtype.Int ]))));
      let t =
        Database.create_table db "T" (Schema.make [ Schema.attr ~key:true "a" Dtype.Int ])
      in
      Alcotest.(check bool)
        (Printf.sprintf "create_index %S rejected" name)
        true
        (raises (fun () -> Table.create_index t ~name [ "a" ])))
    bad_names

let test_catalog_tricky_names_roundtrip () =
  List.iter
    (fun name ->
      let entry = entry_with ~table:name ~index:(Some (name ^ "_idx", [ "a" ])) () in
      match Catalog.parse (Catalog.serialize [ entry ]) with
      | [ e ] ->
        check Alcotest.string "table name survives" name e.Catalog.table;
        check
          (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.list Alcotest.string)))
          "index survives"
          [ (name ^ "_idx", [ "a" ]) ]
          e.Catalog.secondary
      | _ -> Alcotest.failf "entry %S did not round-trip" name)
    tricky_good_names

let populated_db () =
  let db = Database.create () in
  let t = Database.create_table db "T" Fixtures.daily_sales in
  Table.create_index t ~name:"idx_city" [ "city" ];
  List.iter
    (fun r -> ignore (Table.insert t r))
    [
      Fixtures.base_row "San Jose" "CA" "golf equip" 10 14 96 10000;
      Fixtures.base_row "Berkeley" "CA" "racquetball" 10 14 96 12000;
      Fixtures.base_row "Novato" "CA" "rollerblades" 10 13 96 8000;
    ];
  db

let contents db name =
  List.sort Tuple.compare (List.map snd (Table.to_list (Database.table_exn db name)))

let test_save_reopen_roundtrip () =
  let db = populated_db () in
  let before = contents db "T" in
  Database.save db;
  let db2 = Database.reopen (Database.disk db) in
  Alcotest.(check bool) "tuples identical" true
    (List.equal Tuple.equal before (contents db2 "T"));
  (* Unique key and secondary index were rebuilt. *)
  let t2 = Database.table_exn db2 "T" in
  Alcotest.(check bool) "key probe works" true
    (Table.find_by_key t2
       [ Value.Str "Berkeley"; Value.Str "CA"; Value.Str "racquetball"; Value.date_of_mdy 10 14 96 ]
    <> None);
  check Alcotest.int "secondary index rebuilt" 1
    (List.length (Table.index_lookup t2 ~name:"idx_city" [ Value.Str "Berkeley" ]));
  (* And the reopened database is fully usable. *)
  let r = Executor.query_string db2 "SELECT COUNT(*) FROM T" in
  match r.Executor.rows with
  | [ [ Value.Int 3 ] ] -> ()
  | _ -> Alcotest.fail "count after reopen"

let test_save_is_idempotent () =
  let db = populated_db () in
  Database.save db;
  Database.save db;
  let db2 = Database.reopen (Database.disk db) in
  check Alcotest.int "three tuples" 3 (Table.tuple_count (Database.table_exn db2 "T"))

let test_reopen_uninitialized_rejected () =
  let disk = Vnl_storage.Disk.create () in
  ignore (Vnl_storage.Disk.alloc disk);
  Alcotest.(check bool) "raises" true
    (try ignore (Database.reopen disk); false with Catalog.Corrupt _ -> true)

(* ---------- crash recovery of the 2VNL warehouse ---------- *)

let warehouse_rows =
  [
    Fixtures.base_row "San Jose" "CA" "golf equip" 10 14 96 10000;
    Fixtures.base_row "San Jose" "CA" "golf equip" 10 15 96 1500;
    Fixtures.base_row "Berkeley" "CA" "racquetball" 10 14 96 12000;
    Fixtures.base_row "Novato" "CA" "rollerblades" 10 13 96 8000;
  ]

let visible wh =
  let s = Twovnl.Session.begin_ wh in
  let rows = Twovnl.Session.read_table wh s "DailySales" in
  Twovnl.Session.end_ wh s;
  List.sort Tuple.compare rows

let test_crash_recovery_mid_maintenance () =
  let db = Database.create () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ~name:"DailySales" Fixtures.daily_sales);
  Twovnl.load_initial wh "DailySales" warehouse_rows;
  (* One committed maintenance transaction... *)
  let m1 = Twovnl.Txn.begin_ wh in
  ignore (Twovnl.Txn.sql m1 "UPDATE DailySales SET total_sales = total_sales + 5 WHERE city = 'Novato'");
  Twovnl.Txn.commit m1;
  let committed = visible wh in
  (* ...then a second transaction crashes mid-flight: mutations applied,
     Version relation still says active, and the dirty pages happen to be
     flushed (worst case). *)
  let m2 = Twovnl.Txn.begin_ wh in
  ignore (Twovnl.Txn.sql m2 "UPDATE DailySales SET total_sales = 0 WHERE city = 'San Jose'");
  ignore (Twovnl.Txn.sql m2 "DELETE FROM DailySales WHERE city = 'Berkeley'");
  ignore
    (Twovnl.Txn.sql m2
       "INSERT INTO DailySales VALUES ('Fresno', 'CA', 'tennis', DATE '10/16/96', 1)");
  Database.save db;
  (* Restart: reopen from disk, re-attach, recover. *)
  let db2 = Database.reopen (Database.disk db) in
  let wh2 = Twovnl.attach db2 in
  let _h = Twovnl.attach_table wh2 ~name:"DailySales" Fixtures.daily_sales in
  Alcotest.(check bool) "flag survived the crash" true
    (Vnl_core.Version_state.maintenance_active (Twovnl.version_state wh2));
  let reverted = Twovnl.recover wh2 in
  Alcotest.(check bool) "something reverted" true (reverted >= 4);
  Alcotest.(check bool) "flag cleared" false
    (Vnl_core.Version_state.maintenance_active (Twovnl.version_state wh2));
  check Alcotest.int "currentVN preserved" 2 (Twovnl.current_vn wh2);
  (* The recovered state equals the last committed state. *)
  check Fixtures.base_testable "state = last commit" committed (visible wh2);
  (* And the warehouse is operational: a new transaction can run. *)
  let m3 = Twovnl.Txn.begin_ wh2 in
  ignore (Twovnl.Txn.sql m3 "DELETE FROM DailySales WHERE city = 'Novato'");
  Twovnl.Txn.commit m3;
  check Alcotest.int "life goes on" 3 (List.length (visible wh2))

let test_recover_noop_when_clean () =
  let db = Database.create () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ~name:"DailySales" Fixtures.daily_sales);
  Twovnl.load_initial wh "DailySales" warehouse_rows;
  Database.save db;
  let db2 = Database.reopen (Database.disk db) in
  let wh2 = Twovnl.attach db2 in
  let _h = Twovnl.attach_table wh2 ~name:"DailySales" Fixtures.daily_sales in
  check Alcotest.int "nothing to revert" 0 (Twovnl.recover wh2);
  check Alcotest.int "all rows there" 4 (List.length (visible wh2))

let test_attach_table_schema_mismatch () =
  let db = Database.create () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ~name:"DailySales" Fixtures.daily_sales);
  Database.save db;
  let db2 = Database.reopen (Database.disk db) in
  let wh2 = Twovnl.attach db2 in
  Alcotest.(check bool) "n mismatch rejected" true
    (try ignore (Twovnl.attach_table wh2 ~n:3 ~name:"DailySales" Fixtures.daily_sales); false
     with Invalid_argument _ -> true)

(* Property: random warehouse histories survive save/reopen/recover with
   views intact. *)
let qcheck_crash_recovery =
  QCheck.Test.make ~name:"crash recovery preserves committed views" ~count:25
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Xorshift.create seed in
      let db = Database.create () in
      let wh = Twovnl.init db in
      ignore (Twovnl.register_table wh ~name:"DailySales" Fixtures.daily_sales);
      Twovnl.load_initial wh "DailySales" warehouse_rows;
      (* A few committed transactions. *)
      for _ = 1 to 1 + Xorshift.int rng 3 do
        let m = Twovnl.Txn.begin_ wh in
        ignore
          (Twovnl.Txn.sql m
             (Printf.sprintf
                "UPDATE DailySales SET total_sales = total_sales + %d WHERE state = 'CA'"
                (Xorshift.int rng 100)));
        Twovnl.Txn.commit m
      done;
      let committed = visible wh in
      (* Maybe an in-flight transaction at crash time. *)
      let dirty = Xorshift.bool rng in
      if dirty then begin
        let m = Twovnl.Txn.begin_ wh in
        ignore
          (Twovnl.Txn.sql m "UPDATE DailySales SET total_sales = 1 WHERE city = 'San Jose'");
        if Xorshift.bool rng then
          ignore (Twovnl.Txn.sql m "DELETE FROM DailySales WHERE city = 'Novato'")
      end;
      Database.save db;
      let db2 = Database.reopen (Database.disk db) in
      let wh2 = Twovnl.attach db2 in
      let _h = Twovnl.attach_table wh2 ~name:"DailySales" Fixtures.daily_sales in
      ignore (Twovnl.recover wh2);
      List.equal Tuple.equal committed (visible wh2))

let suite =
  [
    Alcotest.test_case "catalog roundtrip" `Quick test_catalog_roundtrip;
    Alcotest.test_case "catalog rejects garbage" `Quick test_catalog_rejects_garbage;
    Alcotest.test_case "catalog rejects bad names" `Quick test_catalog_rejects_bad_names;
    Alcotest.test_case "catalog tricky names roundtrip" `Quick test_catalog_tricky_names_roundtrip;
    Alcotest.test_case "save/reopen roundtrip" `Quick test_save_reopen_roundtrip;
    Alcotest.test_case "save idempotent" `Quick test_save_is_idempotent;
    Alcotest.test_case "reopen uninitialized rejected" `Quick test_reopen_uninitialized_rejected;
    Alcotest.test_case "crash recovery mid-maintenance (§7)" `Quick
      test_crash_recovery_mid_maintenance;
    Alcotest.test_case "recover no-op when clean" `Quick test_recover_noop_when_clean;
    Alcotest.test_case "attach_table schema mismatch" `Quick test_attach_table_schema_mismatch;
    QCheck_alcotest.to_alcotest qcheck_crash_recovery;
  ]
