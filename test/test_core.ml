(* Tests for the 2VNL core: operations, schema extension, version state,
   reader extraction (Table 1), and maintenance decision tables (Tables 2-4),
   checked against the paper's worked examples. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Op = Vnl_core.Op
module Schema_ext = Vnl_core.Schema_ext
module Version_state = Vnl_core.Version_state
module Reader = Vnl_core.Reader
module Maintenance = Vnl_core.Maintenance
module Expiry = Vnl_core.Expiry

let check = Alcotest.check

(* ---------- Op: net effects (§3.3) ---------- *)

let test_op_combine_same_txn () =
  Alcotest.(check bool) "insert+update=insert" true
    (Op.combine_same_txn ~previous:Op.Insert Op.Update = `Becomes Op.Insert);
  Alcotest.(check bool) "insert+delete=physical delete" true
    (Op.combine_same_txn ~previous:Op.Insert Op.Delete = `Physically_delete);
  Alcotest.(check bool) "update+update=update" true
    (Op.combine_same_txn ~previous:Op.Update Op.Update = `Becomes Op.Update);
  Alcotest.(check bool) "update+delete=delete" true
    (Op.combine_same_txn ~previous:Op.Update Op.Delete = `Becomes Op.Delete);
  Alcotest.(check bool) "delete+insert=update" true
    (Op.combine_same_txn ~previous:Op.Delete Op.Insert = `Becomes Op.Update)

let expect_impossible f =
  Alcotest.(check bool) "impossible" true (try ignore (f ()); false with Op.Impossible _ -> true)

let test_op_impossible_cells () =
  expect_impossible (fun () -> Op.combine_same_txn ~previous:Op.Insert Op.Insert);
  expect_impossible (fun () -> Op.combine_same_txn ~previous:Op.Update Op.Insert);
  expect_impossible (fun () -> Op.combine_same_txn ~previous:Op.Delete Op.Update);
  expect_impossible (fun () -> Op.combine_same_txn ~previous:Op.Delete Op.Delete);
  expect_impossible (fun () -> Op.check_older_txn ~previous:Op.Insert Op.Insert);
  expect_impossible (fun () -> Op.check_older_txn ~previous:Op.Update Op.Insert);
  expect_impossible (fun () -> Op.check_older_txn ~previous:Op.Delete Op.Update);
  expect_impossible (fun () -> Op.check_older_txn ~previous:Op.Delete Op.Delete)

let test_op_older_txn_allowed () =
  Op.check_older_txn ~previous:Op.Delete Op.Insert;
  Op.check_older_txn ~previous:Op.Insert Op.Update;
  Op.check_older_txn ~previous:Op.Update Op.Delete

let test_op_value_roundtrip () =
  List.iter
    (fun op -> Alcotest.(check bool) "roundtrip" true (Op.equal op (Op.of_value (Op.to_value op))))
    Op.all

(* ---------- Schema extension (§3.1, Figure 3) ---------- *)

let test_extend_figure3_widths () =
  let ext = Schema_ext.extend Fixtures.daily_sales in
  check Alcotest.int "base 42 bytes" 42 (Schema.width Fixtures.daily_sales);
  check Alcotest.int "extended 51 bytes" 51 (Schema.width (Schema_ext.extended ext));
  check Alcotest.int "overhead 9 bytes" 9 (Schema_ext.width_overhead ext);
  Alcotest.(check bool) "~21% overhead (paper: ~20%)" true
    (abs_float (Schema_ext.overhead_ratio ext -. 0.214) < 0.01)

let test_extend_names_2vnl () =
  let ext = Schema_ext.extend Fixtures.daily_sales in
  check (Alcotest.list Alcotest.string) "figure 3 order"
    [ "tupleVN"; "operation"; "city"; "state"; "product_line"; "date"; "total_sales";
      "pre_total_sales" ]
    (Schema.names (Schema_ext.extended ext))

let test_extend_key_preserved () =
  let ext = Schema_ext.extend Fixtures.daily_sales in
  let e = Schema_ext.extended ext in
  check (Alcotest.list Alcotest.int) "key = group-by attrs" [ 2; 3; 4; 5 ] (Schema.key_indices e)

let test_extend_n4_layout () =
  let ext = Schema_ext.extend ~n:4 Fixtures.daily_sales in
  check Alcotest.int "slots" 3 (Schema_ext.slots ext);
  check Alcotest.int "slot1 vn at 0" 0 (Schema_ext.tuple_vn_index ext ~slot:1);
  check Alcotest.int "slot2 vn after pre1" 8 (Schema_ext.tuple_vn_index ext ~slot:2);
  check Alcotest.int "slot3 vn" 11 (Schema_ext.tuple_vn_index ext ~slot:3);
  let names = Schema.names (Schema_ext.extended ext) in
  Alcotest.(check bool) "has tupleVN3" true (List.mem "tupleVN3" names);
  Alcotest.(check bool) "has pre3_total_sales" true (List.mem "pre3_total_sales" names);
  (* Each extra slot costs 4 (vn) + 1 (op) + 4 (pre total_sales) = 9 bytes. *)
  check Alcotest.int "width grows linearly" (42 + (3 * 9))
    (Schema.width (Schema_ext.extended ext))

let test_extend_rejects_reserved () =
  let bad = Schema.make [ Schema.attr "tupleVN" Dtype.Int ] in
  Alcotest.(check bool) "raises" true
    (try ignore (Schema_ext.extend bad); false with Invalid_argument _ -> true)

let test_extend_rejects_n1 () =
  Alcotest.(check bool) "raises" true
    (try ignore (Schema_ext.extend ~n:1 Fixtures.daily_sales); false
     with Invalid_argument _ -> true)

let test_pre_index_non_updatable_rejected () =
  let ext = Schema_ext.extend Fixtures.daily_sales in
  Alcotest.(check bool) "raises" true
    (try ignore (Schema_ext.pre_index ext ~slot:1 0); false with Invalid_argument _ -> true)

(* ---------- Version state (§4) ---------- *)

let test_version_state_lifecycle () =
  let db = Database.create () in
  let vs = Version_state.install db in
  check Alcotest.int "initial vn" 1 (Version_state.current_vn vs);
  Alcotest.(check bool) "inactive" false (Version_state.maintenance_active vs);
  let vn = Version_state.begin_maintenance vs in
  check Alcotest.int "maintenanceVN" 2 vn;
  Alcotest.(check bool) "active" true (Version_state.maintenance_active vs);
  check Alcotest.int "currentVN unchanged while active" 1 (Version_state.current_vn vs);
  Version_state.commit_maintenance vs ~vn;
  check Alcotest.int "published" 2 (Version_state.current_vn vs);
  Alcotest.(check bool) "inactive again" false (Version_state.maintenance_active vs)

let test_version_state_single_writer () =
  let db = Database.create () in
  let vs = Version_state.install db in
  ignore (Version_state.begin_maintenance vs);
  Alcotest.(check bool) "second begin rejected" true
    (try ignore (Version_state.begin_maintenance vs); false with Invalid_argument _ -> true)

let test_version_state_abort () =
  let db = Database.create () in
  let vs = Version_state.install db in
  ignore (Version_state.begin_maintenance vs);
  Version_state.abort_maintenance vs;
  check Alcotest.int "vn unchanged" 1 (Version_state.current_vn vs);
  Alcotest.(check bool) "inactive" false (Version_state.maintenance_active vs)

let test_version_state_is_queryable () =
  (* §4: the state lives in an ordinary single-tuple relation. *)
  let db = Database.create () in
  let _vs = Version_state.install db in
  let r = Vnl_query.Executor.query_string db "SELECT currentVN, maintenanceActive FROM Version" in
  match r.Vnl_query.Executor.rows with
  | [ [ Value.Int 1; Value.Bool false ] ] -> ()
  | _ -> Alcotest.fail "Version relation not queryable"

(* ---------- Reader extraction: Figure 4 / Example 3.2 / Table 1 ---------- *)

let session3_view () =
  let _db, ext, table = Fixtures.figure4_table () in
  Reader.visible_relation ext ~session_vn:3 table

let test_example_3_2 () =
  (* The paper's expected answer for sessionVN = 3. *)
  let expected =
    [
      Fixtures.base_row "San Jose" "CA" "golf equip" 10 14 96 10000;
      Fixtures.base_row "Berkeley" "CA" "racquetball" 10 14 96 10000;
      Fixtures.base_row "Novato" "CA" "rollerblades" 10 13 96 8000;
    ]
  in
  check Fixtures.base_testable "Example 3.2 view"
    (List.sort Tuple.compare expected)
    (List.sort Tuple.compare (session3_view ()))

let test_reader_session4_sees_current () =
  let _db, ext, table = Fixtures.figure4_table () in
  let view = Reader.visible_relation ext ~session_vn:4 table in
  (* Session 4: Novato deleted (ignore), Berkeley current 12,000, both San
     Jose rows current. *)
  let expected =
    [
      Fixtures.base_row "San Jose" "CA" "golf equip" 10 14 96 10000;
      Fixtures.base_row "San Jose" "CA" "golf equip" 10 15 96 1500;
      Fixtures.base_row "Berkeley" "CA" "racquetball" 10 14 96 12000;
    ]
  in
  check Fixtures.base_testable "session 4 view"
    (List.sort Tuple.compare expected)
    (List.sort Tuple.compare view)

let test_reader_expiry_per_tuple () =
  let _db, ext, table = Fixtures.figure4_table () in
  Alcotest.(check bool) "session 2 expired by vn-4 tuples" true
    (try ignore (Reader.visible_relation ext ~session_vn:2 table); false
     with Reader.Session_expired _ -> true)

let test_reader_table1_cases () =
  let ext = Schema_ext.extend Fixtures.daily_sales in
  let tuple vn op pre =
    Fixtures.ext_row ext vn op "X" "CA" "pl" 1 1 99 100 pre
  in
  (* Current version: insert/update read current; delete ignored. *)
  (match Reader.extract ext ~session_vn:5 (tuple 5 Op.Insert Value.Null) with
  | Some t -> check Alcotest.string "current insert" "100" (Value.to_string (Tuple.get t 4))
  | None -> Alcotest.fail "insert should be visible");
  (match Reader.extract ext ~session_vn:5 (tuple 5 Op.Update (Value.Int 50)) with
  | Some t -> check Alcotest.string "current update" "100" (Value.to_string (Tuple.get t 4))
  | None -> Alcotest.fail "update should be visible");
  Alcotest.(check bool) "current delete ignored" true
    (Reader.extract ext ~session_vn:5 (tuple 5 Op.Delete (Value.Int 50)) = None);
  (* Pre-update version: insert ignored; update/delete read pre. *)
  Alcotest.(check bool) "pre insert ignored" true
    (Reader.extract ext ~session_vn:4 (tuple 5 Op.Insert Value.Null) = None);
  (match Reader.extract ext ~session_vn:4 (tuple 5 Op.Update (Value.Int 50)) with
  | Some t -> check Alcotest.string "pre update" "50" (Value.to_string (Tuple.get t 4))
  | None -> Alcotest.fail "pre of update should be visible");
  (match Reader.extract ext ~session_vn:4 (tuple 5 Op.Delete (Value.Int 50)) with
  | Some t -> check Alcotest.string "pre delete" "50" (Value.to_string (Tuple.get t 4))
  | None -> Alcotest.fail "pre of delete should be visible");
  (* Expired. *)
  Alcotest.(check bool) "expired" true
    (try ignore (Reader.extract ext ~session_vn:3 (tuple 5 Op.Update (Value.Int 50))); false
     with Reader.Session_expired _ -> true)

let test_reader_global_expiry_check () =
  Alcotest.(check bool) "current" false
    (Reader.expired_by_state ~session_vn:5 ~current_vn:5 ~maintenance_active:true);
  Alcotest.(check bool) "previous, quiescent" false
    (Reader.expired_by_state ~session_vn:4 ~current_vn:5 ~maintenance_active:false);
  Alcotest.(check bool) "previous, active" true
    (Reader.expired_by_state ~session_vn:4 ~current_vn:5 ~maintenance_active:true);
  Alcotest.(check bool) "two behind" true
    (Reader.expired_by_state ~session_vn:3 ~current_vn:5 ~maintenance_active:false)

(* ---------- Maintenance: Figure 5 -> Figure 6 ---------- *)

let key city pl m d y =
  [ Value.Str city; Value.Str "CA"; Value.Str pl; Value.date_of_mdy m d y ]

let run_figure5 () =
  let _db, ext, table = Fixtures.figure4_table () in
  let vn = 5 in
  let stats = Maintenance.fresh_stats () in
  ignore
    (Maintenance.apply_insert ~stats ext table ~vn
       (Fixtures.base_row "San Jose" "CA" "golf equip" 10 16 96 11000));
  ignore
    (Maintenance.apply_insert ~stats ext table ~vn
       (Fixtures.base_row "Novato" "CA" "rollerblades" 10 13 96 6000));
  (match Table.find_by_key table (key "San Jose" "golf equip" 10 14 96) with
  | Some (rid, _) -> Maintenance.apply_update ~stats ext table ~vn rid [ (4, Value.Int 10200) ]
  | None -> Alcotest.fail "update target missing");
  (match Table.find_by_key table (key "Berkeley" "racquetball" 10 14 96) with
  | Some (rid, _) -> Maintenance.apply_delete ~stats ext table ~vn rid
  | None -> Alcotest.fail "delete target missing");
  (ext, table, stats)

let test_figure6 () =
  let ext, table, _ = run_figure5 () in
  let got =
    List.map (fun (_, t) -> Fixtures.summarize_ext ext t) (Table.to_list table)
  in
  check Fixtures.summary_testable "Figure 6 state"
    (Fixtures.sort_summaries Fixtures.figure6_expected)
    (Fixtures.sort_summaries got)

let test_figure5_physical_ops () =
  let _, _, stats = run_figure5 () in
  check Alcotest.int "logical inserts" 2 stats.Maintenance.logical_inserts;
  check Alcotest.int "logical updates" 1 stats.Maintenance.logical_updates;
  check Alcotest.int "logical deletes" 1 stats.Maintenance.logical_deletes;
  (* Novato insert hits the deleted tuple: physical update, not insert. *)
  check Alcotest.int "physical inserts" 1 stats.Maintenance.physical_inserts;
  check Alcotest.int "physical updates" 3 stats.Maintenance.physical_updates;
  check Alcotest.int "physical deletes" 0 stats.Maintenance.physical_deletes

let test_figure6_reader_session4_still_consistent () =
  (* During/after the vn-5 transaction, a session-4 reader must still see
     the vn-4 state. *)
  let ext, table, _ = run_figure5 () in
  let view = Reader.visible_relation ext ~session_vn:4 table in
  let expected =
    [
      Fixtures.base_row "San Jose" "CA" "golf equip" 10 14 96 10000;
      Fixtures.base_row "San Jose" "CA" "golf equip" 10 15 96 1500;
      Fixtures.base_row "Berkeley" "CA" "racquetball" 10 14 96 12000;
    ]
  in
  check Fixtures.base_testable "session 4 unchanged by vn 5"
    (List.sort Tuple.compare expected)
    (List.sort Tuple.compare view)

let test_figure6_reader_session5_sees_new_state () =
  let ext, table, _ = run_figure5 () in
  let view = Reader.visible_relation ext ~session_vn:5 table in
  let expected =
    [
      Fixtures.base_row "San Jose" "CA" "golf equip" 10 14 96 10200;
      Fixtures.base_row "San Jose" "CA" "golf equip" 10 15 96 1500;
      Fixtures.base_row "Novato" "CA" "rollerblades" 10 13 96 6000;
      Fixtures.base_row "San Jose" "CA" "golf equip" 10 16 96 11000;
    ]
  in
  check Fixtures.base_testable "session 5 sees vn 5"
    (List.sort Tuple.compare expected)
    (List.sort Tuple.compare view)

(* ---------- Decision-table conformance: same-transaction combinations ---------- *)

let fresh_ext_table () =
  let db = Database.create () in
  let ext = Schema_ext.extend Fixtures.daily_sales in
  let table = Database.create_table db "DailySales" (Schema_ext.extended ext) in
  (ext, table)

let sj_key = key "San Jose" "golf equip" 10 14 96

let sj_row sales = Fixtures.base_row "San Jose" "CA" "golf equip" 10 14 96 sales

let test_same_txn_insert_then_update () =
  let ext, table = fresh_ext_table () in
  let vn = 2 in
  let rid = Maintenance.apply_insert ext table ~vn (sj_row 100) in
  Maintenance.apply_update ext table ~vn rid [ (4, Value.Int 200) ];
  match Table.get table rid with
  | Some t ->
    let vn', op, _, _, _, sales, pre = Fixtures.summarize_ext ext t in
    check Alcotest.int "vn" 2 vn';
    check Alcotest.string "net effect insert" "insert" op;
    Alcotest.(check bool) "current 200" true (Value.equal sales (Value.Int 200));
    Alcotest.(check bool) "pre stays null" true (Value.is_null pre)
  | None -> Alcotest.fail "tuple missing"

let test_same_txn_insert_then_delete_physical () =
  let ext, table = fresh_ext_table () in
  let vn = 2 in
  let rid = Maintenance.apply_insert ext table ~vn (sj_row 100) in
  Maintenance.apply_delete ext table ~vn rid;
  Alcotest.(check bool) "physically gone" true (Table.get table rid = None);
  check Alcotest.int "count 0" 0 (Table.tuple_count table)

let test_same_txn_update_then_delete () =
  let ext, table = fresh_ext_table () in
  (* Tuple committed at vn 2 with 100; txn 3 updates then deletes. *)
  let rid = Maintenance.apply_insert ext table ~vn:2 (sj_row 100) in
  Maintenance.apply_update ext table ~vn:3 rid [ (4, Value.Int 200) ];
  Maintenance.apply_delete ext table ~vn:3 rid;
  match Table.get table rid with
  | Some t ->
    let _, op, _, _, _, _, pre = Fixtures.summarize_ext ext t in
    check Alcotest.string "net delete" "delete" op;
    Alcotest.(check bool) "pre = committed 100" true (Value.equal pre (Value.Int 100))
  | None -> Alcotest.fail "logical delete must not remove the tuple"

let test_same_txn_delete_then_insert_is_update () =
  let ext, table = fresh_ext_table () in
  let rid = Maintenance.apply_insert ext table ~vn:2 (sj_row 100) in
  Maintenance.apply_delete ext table ~vn:3 rid;
  ignore (Maintenance.apply_insert ext table ~vn:3 (sj_row 500));
  match Table.get table rid with
  | Some t ->
    let vn', op, _, _, _, sales, pre = Fixtures.summarize_ext ext t in
    check Alcotest.int "vn 3" 3 vn';
    check Alcotest.string "net update" "update" op;
    Alcotest.(check bool) "current 500" true (Value.equal sales (Value.Int 500));
    (* Pre keeps the committed value so session-2 readers still see 100. *)
    Alcotest.(check bool) "pre 100" true (Value.equal pre (Value.Int 100))
  | None -> Alcotest.fail "tuple missing"

let test_older_txn_insert_over_delete () =
  let ext, table = fresh_ext_table () in
  let rid = Maintenance.apply_insert ext table ~vn:2 (sj_row 100) in
  Maintenance.apply_delete ext table ~vn:3 rid;
  (* A later transaction re-inserts the same key: Table 2 row 1. *)
  ignore (Maintenance.apply_insert ext table ~vn:4 (sj_row 700));
  check Alcotest.int "still one physical tuple" 1 (Table.tuple_count table);
  match Table.get table rid with
  | Some t ->
    let vn', op, _, _, _, sales, pre = Fixtures.summarize_ext ext t in
    check Alcotest.int "vn 4" 4 vn';
    check Alcotest.string "op insert" "insert" op;
    Alcotest.(check bool) "current 700" true (Value.equal sales (Value.Int 700));
    Alcotest.(check bool) "pre nulled" true (Value.is_null pre)
  | None -> Alcotest.fail "tuple missing"

let test_update_of_deleted_is_impossible () =
  let ext, table = fresh_ext_table () in
  let rid = Maintenance.apply_insert ext table ~vn:2 (sj_row 100) in
  Maintenance.apply_delete ext table ~vn:3 rid;
  expect_impossible (fun () ->
      Maintenance.apply_update ext table ~vn:4 rid [ (4, Value.Int 1) ]);
  expect_impossible (fun () -> Maintenance.apply_delete ext table ~vn:4 rid)

let test_update_non_updatable_rejected () =
  let ext, table = fresh_ext_table () in
  let rid = Maintenance.apply_insert ext table ~vn:2 (sj_row 100) in
  Alcotest.(check bool) "raises" true
    (try
       Maintenance.apply_update ext table ~vn:3 rid [ (0, Value.Str "Oakland") ];
       false
     with Invalid_argument _ -> true)

(* ---------- Regression: the Table 4 row-2 correction (DESIGN.md §6) ----------

   An insert over a logically deleted key followed by a delete in the same
   transaction must NOT physically remove the record: it still carries the
   history readers of older versions need.  The paper's row 2 ("previous op
   insert -> physically delete") assumes a fresh insert. *)

let test_insert_over_delete_then_delete_2vnl () =
  let ext, table = fresh_ext_table () in
  let rid = Maintenance.apply_insert ext table ~vn:2 (sj_row 100) in
  Maintenance.apply_delete ext table ~vn:3 rid;
  (* Transaction 4 re-inserts the key, then deletes it again. *)
  let over_deleted = ref [] in
  let on_over_delete r = over_deleted := r :: !over_deleted in
  ignore (Maintenance.apply_insert ~on_over_delete ext table ~vn:4 (sj_row 500));
  let was r = List.exists (Vnl_storage.Heap_file.rid_equal r) !over_deleted in
  Maintenance.apply_delete ~was_insert_over_delete:was ext table ~vn:4 rid;
  (* The record must survive physically, re-marked deleted. *)
  (match Table.get table rid with
  | None -> Alcotest.fail "record was physically deleted, losing history"
  | Some t ->
    check Alcotest.string "net delete" "delete"
      (Vnl_core.Op.to_string (Schema_ext.operation ext ~slot:1 t)));
  (* Reader semantics: session 3 (after the committed delete) ignores it;
     session 2 would have read the pre-delete value but is expired under
     2VNL -- the stamp keeps it invisible to every valid session. *)
  Alcotest.(check bool) "session 3 ignores" true
    (Reader.extract ext ~session_vn:3 (Option.get (Table.get table rid)) = None);
  Alcotest.(check bool) "session 4 ignores" true
    (Reader.extract ext ~session_vn:4 (Option.get (Table.get table rid)) = None)

let test_insert_over_delete_then_delete_nvnl () =
  let db = Database.create () in
  let ext = Schema_ext.extend ~n:3 Fixtures.daily_sales in
  let table = Database.create_table db "T" (Schema_ext.extended ext) in
  let rid = Maintenance.apply_insert ext table ~vn:2 (sj_row 100) in
  Maintenance.apply_delete ext table ~vn:3 rid;
  let over_deleted = ref [] in
  let on_over_delete r = over_deleted := r :: !over_deleted in
  ignore (Maintenance.apply_insert ~on_over_delete ext table ~vn:4 (sj_row 500));
  let was r = List.exists (Vnl_storage.Heap_file.rid_equal r) !over_deleted in
  Maintenance.apply_delete ~was_insert_over_delete:was ext table ~vn:4 rid;
  let t = Option.get (Table.get table rid) in
  (* Under 3VNL the shift-forward restores the original delete exactly. *)
  check (Alcotest.option Alcotest.int) "slot1 restored to the vn-3 delete" (Some 3)
    (Schema_ext.tuple_vn ext ~slot:1 t);
  check Alcotest.string "op delete" "delete"
    (Vnl_core.Op.to_string (Schema_ext.operation ext ~slot:1 t));
  (* Session 2 (within the 3VNL window) still reads the pre-delete 100. *)
  (match Reader.extract ext ~session_vn:2 t with
  | Some b ->
    Alcotest.(check bool) "pre-delete value intact" true
      (Value.equal (Tuple.get b 4) (Value.Int 100))
  | None -> Alcotest.fail "session 2 should see the pre-delete value");
  Alcotest.(check bool) "session 3 ignores" true (Reader.extract ext ~session_vn:3 t = None)

(* ---------- nVNL: Figure 7 / Example 5.1 ---------- *)

let build_figure7 () =
  let db = Database.create () in
  let ext = Schema_ext.extend ~n:4 Fixtures.daily_sales in
  let table = Database.create_table db "DailySales" (Schema_ext.extended ext) in
  let rid = Maintenance.apply_insert ext table ~vn:3 (sj_row 10000) in
  Maintenance.apply_update ext table ~vn:5 rid [ (4, Value.Int 10200) ];
  Maintenance.apply_delete ext table ~vn:6 rid;
  (ext, table, rid)

let test_figure7_layout () =
  let ext, table, rid = build_figure7 () in
  match Table.get table rid with
  | None -> Alcotest.fail "tuple missing"
  | Some t ->
    let slot_vn s = Schema_ext.tuple_vn ext ~slot:s t in
    let slot_op s = Op.to_string (Schema_ext.operation ext ~slot:s t) in
    let pre s = Tuple.get t (Schema_ext.pre_index ext ~slot:s 4) in
    check (Alcotest.option Alcotest.int) "tupleVN1" (Some 6) (slot_vn 1);
    check Alcotest.string "operation1" "delete" (slot_op 1);
    Alcotest.(check bool) "pre1 = 10,200" true (Value.equal (pre 1) (Value.Int 10200));
    check (Alcotest.option Alcotest.int) "tupleVN2" (Some 5) (slot_vn 2);
    check Alcotest.string "operation2" "update" (slot_op 2);
    Alcotest.(check bool) "pre2 = 10,000" true (Value.equal (pre 2) (Value.Int 10000));
    check (Alcotest.option Alcotest.int) "tupleVN3" (Some 3) (slot_vn 3);
    check Alcotest.string "operation3" "insert" (slot_op 3);
    Alcotest.(check bool) "pre3 = null" true (Value.is_null (pre 3));
    Alcotest.(check bool) "current = 10,200" true
      (Value.equal (Tuple.get t (Schema_ext.base_index ext 4)) (Value.Int 10200))

let test_example_5_1_visibility () =
  let ext, table, rid = build_figure7 () in
  let view s =
    match Table.get table rid with
    | None -> Alcotest.fail "tuple missing"
    | Some t -> Reader.extract ext ~session_vn:s t
  in
  let sales = function
    | Some t -> Some (Tuple.get t 4)
    | None -> None
  in
  (* sessionVN >= 6: tuple ignored (deleted). *)
  Alcotest.(check bool) "s=6 ignored" true (view 6 = None);
  Alcotest.(check bool) "s=7 ignored" true (view 7 = None);
  (* sessionVN = 5: pre-update of the delete = 10,200. *)
  Alcotest.(check bool) "s=5 sees 10,200" true
    (sales (view 5) = Some (Value.Int 10200));
  (* sessionVN in {3,4}: 10,000. *)
  Alcotest.(check bool) "s=4 sees 10,000" true (sales (view 4) = Some (Value.Int 10000));
  Alcotest.(check bool) "s=3 sees 10,000" true (sales (view 3) = Some (Value.Int 10000));
  (* sessionVN = 2: pre of the insert -> ignore. *)
  Alcotest.(check bool) "s=2 ignored" true (view 2 = None);
  (* sessionVN < 2: expired. *)
  Alcotest.(check bool) "s=1 expired" true
    (try ignore (view 1); false with Reader.Session_expired _ -> true)

(* ---------- Expiry formula (§5) ---------- *)

let test_expiry_formula () =
  check Alcotest.int "2VNL bound = gap" 60 (Expiry.never_expire_bound ~n:2 ~gap:60 ~txn_len:1380);
  (* §5: 3VNL guarantees sessions up to 2i + m never expire. *)
  check Alcotest.int "3VNL = 2i + m"
    ((2 * 60) + 1380)
    (Expiry.never_expire_bound ~n:3 ~gap:60 ~txn_len:1380);
  check Alcotest.int "general formula" (((4 - 1) * (60 + 1380)) - 1380)
    (Expiry.never_expire_bound ~n:4 ~gap:60 ~txn_len:1380)

let test_versions_needed () =
  check Alcotest.int "session fits 2VNL" 2 (Expiry.versions_needed ~session_len:50 ~gap:60 ~txn_len:1380);
  check Alcotest.int "longer session needs 3" 3
    (Expiry.versions_needed ~session_len:100 ~gap:60 ~txn_len:1380);
  Alcotest.(check bool) "monotone in session length" true
    (Expiry.versions_needed ~session_len:10_000 ~gap:60 ~txn_len:1380
    >= Expiry.versions_needed ~session_len:100 ~gap:60 ~txn_len:1380)

let test_versions_needed_degenerate () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  (* gap = 0 and txn_len = 0 leave every bound at 0: no n can cover a
     positive session, and the old implementation looped or returned a
     bogus n instead of saying so. *)
  Alcotest.(check bool) "unsatisfiable rejected" true
    (raises (fun () -> Expiry.versions_needed ~session_len:10 ~gap:0 ~txn_len:0));
  (* ...but a zero-length session is covered by the minimum n. *)
  check Alcotest.int "zero session fine" 2
    (Expiry.versions_needed ~session_len:0 ~gap:0 ~txn_len:0);
  List.iter
    (fun f -> Alcotest.(check bool) "negative duration rejected" true (raises f))
    [
      (fun () -> Expiry.versions_needed ~session_len:(-1) ~gap:60 ~txn_len:10);
      (fun () -> Expiry.versions_needed ~session_len:10 ~gap:(-60) ~txn_len:10);
      (fun () -> Expiry.versions_needed ~session_len:10 ~gap:60 ~txn_len:(-10));
      (fun () -> Expiry.never_expire_bound ~n:2 ~gap:(-1) ~txn_len:0);
      (fun () -> Expiry.never_expire_bound ~n:1 ~gap:60 ~txn_len:10);
    ]

(* Property: the closed form returns exactly the smallest n >= 2 whose
   never_expire_bound covers the session. *)
let qcheck_versions_needed_minimal =
  let open QCheck in
  let gen = Gen.(triple (0 -- 5000) (0 -- 2000) (0 -- 2000)) in
  Test.make ~name:"versions_needed is the minimal covering n" ~count:500
    (make gen ~print:Print.(triple int int int))
    (fun (session_len, gap, txn_len) ->
      QCheck.assume (not (gap = 0 && txn_len = 0 && session_len > 0));
      let n = Expiry.versions_needed ~session_len ~gap ~txn_len in
      n >= 2
      && Expiry.never_expire_bound ~n ~gap ~txn_len >= session_len
      && (n = 2 || Expiry.never_expire_bound ~n:(n - 1) ~gap ~txn_len < session_len))

let suite =
  [
    Alcotest.test_case "op net effects (same txn)" `Quick test_op_combine_same_txn;
    Alcotest.test_case "op impossible cells" `Quick test_op_impossible_cells;
    Alcotest.test_case "op older-txn legal moves" `Quick test_op_older_txn_allowed;
    Alcotest.test_case "op value roundtrip" `Quick test_op_value_roundtrip;
    Alcotest.test_case "Figure 3 widths (42 -> 51 bytes)" `Quick test_extend_figure3_widths;
    Alcotest.test_case "Figure 3 attribute order" `Quick test_extend_names_2vnl;
    Alcotest.test_case "key preserved by extension" `Quick test_extend_key_preserved;
    Alcotest.test_case "4VNL layout" `Quick test_extend_n4_layout;
    Alcotest.test_case "reserved names rejected" `Quick test_extend_rejects_reserved;
    Alcotest.test_case "n=1 rejected" `Quick test_extend_rejects_n1;
    Alcotest.test_case "pre_index of non-updatable rejected" `Quick
      test_pre_index_non_updatable_rejected;
    Alcotest.test_case "version state lifecycle" `Quick test_version_state_lifecycle;
    Alcotest.test_case "single maintenance writer" `Quick test_version_state_single_writer;
    Alcotest.test_case "version state abort" `Quick test_version_state_abort;
    Alcotest.test_case "Version relation queryable" `Quick test_version_state_is_queryable;
    Alcotest.test_case "Example 3.2 (sessionVN=3 view)" `Quick test_example_3_2;
    Alcotest.test_case "session 4 sees current" `Quick test_reader_session4_sees_current;
    Alcotest.test_case "per-tuple expiry detection" `Quick test_reader_expiry_per_tuple;
    Alcotest.test_case "Table 1 conformance" `Quick test_reader_table1_cases;
    Alcotest.test_case "global expiry check (§4.1)" `Quick test_reader_global_expiry_check;
    Alcotest.test_case "Figure 5 -> Figure 6" `Quick test_figure6;
    Alcotest.test_case "Figure 5 physical op accounting" `Quick test_figure5_physical_ops;
    Alcotest.test_case "session 4 isolated from vn-5 txn" `Quick
      test_figure6_reader_session4_still_consistent;
    Alcotest.test_case "session 5 sees vn-5 state" `Quick
      test_figure6_reader_session5_sees_new_state;
    Alcotest.test_case "same-txn insert+update" `Quick test_same_txn_insert_then_update;
    Alcotest.test_case "same-txn insert+delete physical" `Quick
      test_same_txn_insert_then_delete_physical;
    Alcotest.test_case "same-txn update+delete" `Quick test_same_txn_update_then_delete;
    Alcotest.test_case "same-txn delete+insert = update" `Quick
      test_same_txn_delete_then_insert_is_update;
    Alcotest.test_case "insert over older delete (Table 2 row 1)" `Quick
      test_older_txn_insert_over_delete;
    Alcotest.test_case "ops on deleted tuple impossible" `Quick
      test_update_of_deleted_is_impossible;
    Alcotest.test_case "non-updatable assignment rejected" `Quick
      test_update_non_updatable_rejected;
    Alcotest.test_case "Table 4 row-2 correction (2VNL)" `Quick
      test_insert_over_delete_then_delete_2vnl;
    Alcotest.test_case "Table 4 row-2 correction (3VNL)" `Quick
      test_insert_over_delete_then_delete_nvnl;
    Alcotest.test_case "Figure 7 layout (4VNL)" `Quick test_figure7_layout;
    Alcotest.test_case "Example 5.1 visibility" `Quick test_example_5_1_visibility;
    Alcotest.test_case "expiry formula" `Quick test_expiry_formula;
    Alcotest.test_case "versions_needed tuning" `Quick test_versions_needed;
    Alcotest.test_case "versions_needed degenerate inputs" `Quick test_versions_needed_degenerate;
    QCheck_alcotest.to_alcotest qcheck_versions_needed_minimal;
  ]
