(* Sharded warehouse + pipelined abort/requeue coverage.

   Two invariants anchor this suite:

   - {e zero lost batches}: killing a pipelined round at any (phase,
     stripe) point leaves each view's queue holding exactly the source
     changes the aborted suffix failed to propagate, in arrival order,
     and a follow-up serial refresh converges byte-identically to the
     source recomputation.  The kill is injected through
     [Pipeline.plan]'s [on_phase] hook and driven by the deterministic
     scheduler, so every failure point is replayable.

   - {e no torn cross-shard reads}: a VN-vector session's view of the
     union is the merge of each shard's committed state at the
     component's VN, for as long as every component stays valid — checked
     against a per-shard full-history oracle (committed state per VN,
     recomputed from each shard's source, never from the read path under
     test).

   Environment knobs (the CI 4-shard x 2-domain stress configuration):
     VNL_SHARD_SHARDS   shards for the oracle scenario  (default 2)
     VNL_SHARD_DOMAINS  refresh_all fan-out domains     (default 1) *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module View_def = Vnl_warehouse.View_def
module Delta = Vnl_warehouse.Delta
module Source = Vnl_warehouse.Source
module Summary = Vnl_warehouse.Summary
module Warehouse = Vnl_warehouse.Warehouse
module Shard = Vnl_warehouse.Shard
module Twovnl = Vnl_core.Twovnl
module Pipeline = Vnl_core.Pipeline
module Sales_gen = Vnl_workload.Sales_gen
module Xorshift = Vnl_util.Xorshift
module Sched = Vnl_util.Sched

let check = Alcotest.check

let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ -> Alcotest.failf "%s: expected a positive integer, got %S" name v)

let shard_count = env_int "VNL_SHARD_SHARDS" 2

let refresh_domains = env_int "VNL_SHARD_DOMAINS" 1

let view_name = "DailySales"

let view = Sales_gen.daily_sales_view ()

let sale ?(state = "CA") city pl day amount =
  Tuple.make Sales_gen.sales_schema
    [ Value.Str city; Value.Str state; Value.Str pl; Sales_gen.date_of_day day;
      Value.Int amount ]

let sorted = List.sort Tuple.compare

let views_equal a b = List.equal Tuple.equal (sorted a) (sorted b)

(* ------------------------------------------------------------------ *)
(* Abort/requeue sweep *)

exception Killed of Pipeline.phase * int

(* Deterministic execution of a planned round: the stripe workers as
   fibers under the seeded scheduler, then the ordinary join. *)
let sched_run ~seed plan =
  ignore (Sched.run ~seed (Pipeline.tasks plan));
  Pipeline.finish plan

(* A mixed batch over a preloaded warehouse: fresh groups, accumulating
   sales into existing groups, amount corrections, cross-group updates
   (product line restated — old and new rows in different groups), and
   returns.  Drawn deterministically so every sweep point sees the same
   batch. *)
let mixed_batch rng src ~day =
  let base = Sales_gen.gen_batch rng src ~day ~inserts:40 ~updates:6 ~deletes:4 in
  (* A guaranteed cross-group update: the city is outside the generator's
     vocabulary so the pair can never collide with [base]'s victims, and
     the product-line change moves the row between groups — exercising the
     Update → Insert/Delete decomposition at the published boundary. *)
  let fresh = sale "Crossville" "tennis" day 7 in
  let moved = Tuple.set fresh 2 (Value.Str "camping") in
  base @ [ Delta.Insert fresh; Delta.Update (fresh, moved) ]

let mk_loaded_warehouse ~n ~seed =
  let wh = Warehouse.create ~n [ view ] in
  let rng = Xorshift.create seed in
  Warehouse.queue_changes wh ~view:view_name
    (Sales_gen.initial_load rng ~days:3 ~sales_per_day:60);
  ignore (Warehouse.refresh wh);
  (wh, rng)

(* [requeued] must be exactly a suffix selection of [original] in arrival
   order: every requeued change matches a later original change than the
   previous one did, where an original [Update] may stand for itself or
   for either decomposed half (the published-boundary straddle). *)
let check_requeue_order ~original ~requeued =
  let covers orig req =
    match (orig, req) with
    | Delta.Update (o, n), Delta.Update (o', n') -> Tuple.equal o o' && Tuple.equal n n'
    | Delta.Update (_, n), Delta.Insert r | Delta.Insert n, Delta.Insert r ->
      Tuple.equal n r
    | Delta.Update (o, _), Delta.Delete r | Delta.Delete o, Delta.Delete r ->
      Tuple.equal o r
    | _ -> false
  in
  let rec walk orig reqs =
    match reqs with
    | [] -> true
    | req :: rest -> (
      match orig with
      | [] -> false
      | o :: orest -> if covers o req then walk orest rest else walk orest reqs)
  in
  if not (walk original requeued) then
    Alcotest.failf "requeued changes are not an ordered selection of the batch (%d of %d)"
      (List.length requeued) (List.length original)

let run_kill_point ~workers ~seed (phase, stripe) =
  let wh, rng = mk_loaded_warehouse ~n:(workers + 1) ~seed in
  let src = Warehouse.source wh view_name in
  let batch = mixed_batch rng src ~day:3 in
  Warehouse.queue_changes wh ~view:view_name batch;
  let original = Warehouse.peek_pending wh ~view:view_name in
  let on_phase p ~stripe:i = if p = phase && i = stripe then raise (Killed (p, i)) in
  let killed =
    match
      Warehouse.refresh_pipelined ~workers ~on_phase ~run:(sched_run ~seed) wh
    with
    | _ -> false
    | exception Killed _ -> true
  in
  if killed then begin
    (* (a) the queue holds exactly the unpublished suffix, in order. *)
    let requeued = Warehouse.peek_pending wh ~view:view_name in
    check_requeue_order ~original ~requeued;
    (* Nothing beyond the drained batch may have appeared. *)
    Alcotest.(check bool) "requeued bounded by batch" true
      (List.length requeued <= List.length original)
  end;
  (* (b) a follow-up serial refresh lands byte-identically on the source
     recomputation — zero lost (and zero double-applied) changes, whether
     or not the kill point was reached. *)
  ignore (Warehouse.refresh wh);
  let s = Warehouse.begin_session wh in
  let got = Warehouse.read_view wh s view_name in
  Warehouse.end_session wh s;
  let expected = Warehouse.expected_view wh view_name in
  if not (views_equal got expected) then
    Alcotest.failf "view diverged after kill at stripe %d" stripe;
  killed

let test_abort_requeue_sweep () =
  let stripe0_points = ref 0 and stripe0_kills = ref 0 in
  let later_kills = ref 0 in
  List.iter
    (fun workers ->
      List.iter
        (fun phase ->
          for stripe = 0 to workers - 1 do
            List.iter
              (fun seed ->
                let killed = run_kill_point ~workers ~seed (phase, stripe) in
                if stripe = 0 then begin
                  incr stripe0_points;
                  if killed then incr stripe0_kills
                end
                else if killed then incr later_kills)
              [ 3; 17 ]
          done)
        [ `Fold; `Apply; `Token ])
    [ 2; 3 ];
  (* Stripe 0 exists whenever the round has work, so those kill points
     must all fire; higher stripes depend on how the batch partitions
     (convergence is still asserted either way), but the sweep must have
     exercised at least one mid-round abort with a published prefix. *)
  check Alcotest.int "every stripe-0 kill fired" !stripe0_points !stripe0_kills;
  Alcotest.(check bool) "some multi-stripe kill fired" true (!later_kills > 0)

let test_abort_requeue_real_domains () =
  (* One kill point through the real [Pipeline.run] path: the requeue
     logic must not depend on the deterministic scheduler. *)
  let wh, rng = mk_loaded_warehouse ~n:3 ~seed:91 in
  let src = Warehouse.source wh view_name in
  let batch = mixed_batch rng src ~day:3 in
  Warehouse.queue_changes wh ~view:view_name batch;
  let on_phase p ~stripe:i = if p = `Apply && i = 0 then raise (Killed (p, i)) in
  (match Warehouse.refresh_pipelined ~workers:2 ~on_phase wh with
  | _ -> Alcotest.fail "kill point not reached"
  | exception Killed _ -> ());
  ignore (Warehouse.refresh wh);
  let s = Warehouse.begin_session wh in
  let got = Warehouse.read_view wh s view_name in
  Warehouse.end_session wh s;
  Alcotest.(check bool) "converged" true
    (views_equal got (Warehouse.expected_view wh view_name))

let test_plan_failure_requeues_everything () =
  let wh, rng = mk_loaded_warehouse ~n:3 ~seed:37 in
  let src = Warehouse.source wh view_name in
  let batch = mixed_batch rng src ~day:3 in
  Warehouse.queue_changes wh ~view:view_name batch;
  let original = Warehouse.peek_pending wh ~view:view_name in
  (* workers < 1 makes Pipeline.plan raise after the queues were drained:
     nothing published, so everything must come back. *)
  (match Warehouse.refresh_pipelined ~workers:0 wh with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "entire batch requeued" true
    (List.equal
       (fun a b ->
         match (a, b) with
         | Delta.Insert x, Delta.Insert y | Delta.Delete x, Delta.Delete y ->
           Tuple.equal x y
         | Delta.Update (o, n), Delta.Update (o', n') ->
           Tuple.equal o o' && Tuple.equal n n'
         | _ -> false)
       original
       (Warehouse.peek_pending wh ~view:view_name));
  ignore (Warehouse.refresh wh);
  let s = Warehouse.begin_session wh in
  let got = Warehouse.read_view wh s view_name in
  Warehouse.end_session wh s;
  Alcotest.(check bool) "converged" true
    (views_equal got (Warehouse.expected_view wh view_name))

(* ------------------------------------------------------------------ *)
(* Delta float-residue regression *)

let float_schema =
  Schema.make [ Schema.attr "grp" (Dtype.Str 4); Schema.attr "x" Dtype.Float ]

let float_view =
  View_def.make ~name:"F" ~source:float_schema ~group_by:[ "grp" ]
    ~aggregates:[ ("total", View_def.Sum "x") ]
    ()

let frow g x = Tuple.make float_schema [ Value.Str g; Value.Float x ]

let test_delta_float_residue_dropped () =
  (* (0.1 +. 0.2) -. 0.3 <> 0. in floats; the group's rows cancel exactly
     (count 0), so the residue must be cleaned and the group dropped. *)
  let batch =
    [ Delta.Insert (frow "a" 0.1); Delta.Insert (frow "a" 0.2);
      Delta.Insert (frow "a" 0.3); Delta.Delete (frow "a" 0.1);
      Delta.Delete (frow "a" 0.2); Delta.Delete (frow "a" 0.3) ]
  in
  check Alcotest.int "phantom group dropped" 0
    (List.length (Delta.net_group_deltas float_view batch))

let test_float_residue_refresh_is_noop () =
  (* The same cancelling batch through a full refresh, against both an
     absent group ("a") and a present one ("b"): neither may pick up
     epsilon, and the refreshed view must equal the recomputation
     byte-for-byte. *)
  let wh = Warehouse.create [ float_view ] in
  Warehouse.queue_changes wh ~view:"F" [ Delta.Insert (frow "b" 0.3) ];
  ignore (Warehouse.refresh wh);
  let cancelling g =
    [ Delta.Insert (frow g 0.1); Delta.Insert (frow g 0.2); Delta.Insert (frow g 0.3);
      Delta.Delete (frow g 0.1); Delta.Delete (frow g 0.2); Delta.Delete (frow g 0.3) ]
  in
  Warehouse.queue_changes wh ~view:"F" (cancelling "a" @ cancelling "b");
  ignore (Warehouse.refresh wh);
  let s = Warehouse.begin_session wh in
  let got = Warehouse.read_view wh s "F" in
  Warehouse.end_session wh s;
  Alcotest.(check bool) "byte-identical to recompute" true
    (views_equal got (Warehouse.expected_view wh "F"))

(* ------------------------------------------------------------------ *)
(* Shard map and routing *)

let test_shard_map_routing () =
  let map =
    Shard.Shard_map.create ~shards:2 ~route:(fun row ->
        match Tuple.get row 1 with Value.Str "CA" -> 0 | _ -> 1)
  in
  let ca = sale "San Jose" "tennis" 0 10 in
  let orr = sale ~state:"OR" "Portland" "tennis" 0 20 in
  let slices =
    Shard.Shard_map.partition_changes map
      [ Delta.Insert ca; Delta.Insert orr; Delta.Update (ca, orr);
        Delta.Delete orr ]
  in
  check Alcotest.int "two slices" 2 (Array.length slices);
  (* Shard 0: the CA insert, then the straddling update's Delete half. *)
  (match slices.(0) with
  | [ Delta.Insert a; Delta.Delete b ] ->
    Alcotest.(check bool) "ca insert" true (Tuple.equal a ca);
    Alcotest.(check bool) "ca delete half" true (Tuple.equal b ca)
  | _ -> Alcotest.fail "shard 0 slice shape");
  (* Shard 1: the OR insert, the update's Insert half, then the delete —
     arrival order preserved. *)
  (match slices.(1) with
  | [ Delta.Insert a; Delta.Insert b; Delta.Delete c ] ->
    Alcotest.(check bool) "or insert" true (Tuple.equal a orr);
    Alcotest.(check bool) "or insert half" true (Tuple.equal b orr);
    Alcotest.(check bool) "or delete" true (Tuple.equal c orr)
  | _ -> Alcotest.fail "shard 1 slice shape")

let test_shard_map_validation () =
  let expect_invalid f =
    Alcotest.(check bool) "raises" true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  expect_invalid (fun () -> Shard.Shard_map.create ~shards:0 ~route:(fun _ -> 0));
  expect_invalid (fun () ->
      Shard.Shard_map.by_attrs ~shards:2 ~source:Sales_gen.sales_schema ~attrs:[]);
  expect_invalid (fun () ->
      Shard.Shard_map.by_attrs ~shards:2 ~source:Sales_gen.sales_schema ~attrs:[ "nope" ]);
  let bad = Shard.Shard_map.create ~shards:2 ~route:(fun _ -> 7) in
  expect_invalid (fun () -> Shard.Shard_map.route bad (sale "x" "y" 0 1))

let test_template_instances () =
  let inst = View_def.instantiate view ~shard:3 in
  check Alcotest.string "stamped name" "DailySales__s3" (View_def.name inst);
  Alcotest.(check bool) "same target schema" true
    (Schema.equal (View_def.target_schema inst) (View_def.target_schema view));
  Alcotest.(check bool) "negative shard rejected" true
    (try ignore (View_def.instantiate view ~shard:(-1)); false
     with Invalid_argument _ -> true)

let test_merge_union_sums_shared_groups () =
  let target = View_def.target_schema float_view in
  let g v c = Tuple.make target [ Value.Str "g"; Value.Float v; Value.Int c ] in
  let h = Tuple.make target [ Value.Str "h"; Value.Float 2.0; Value.Int 1 ] in
  match Summary.merge_union float_view [ [ g 1.5 2; h ]; [ g 0.5 1 ] ] with
  | [ merged; passed ] ->
    Alcotest.(check bool) "summed" true (Tuple.equal merged (g 2.0 3));
    Alcotest.(check bool) "pass-through" true (Tuple.equal passed h)
  | l -> Alcotest.failf "expected 2 merged groups, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Cross-shard snapshots vs the full-history oracle *)

(* Mirror source holding the union of all shards' base rows: batches are
   generated against it (so updates/deletes pick real victims) and it
   doubles as the union-view oracle. *)
let gen_round rng mirror ~day =
  Sales_gen.gen_batch rng mirror ~day ~inserts:30 ~updates:5 ~deletes:3

let test_sharded_drain_matches_union_oracle () =
  let sw =
    Shard.Sharded.create ~n:2
      ~shard_map:(Sales_gen.sales_shard_map ~shards:shard_count)
      [ view ]
  in
  let rng = Xorshift.create 5 in
  let mirror = Source.create Sales_gen.sales_schema in
  let feed changes =
    Source.apply mirror changes;
    Shard.Sharded.queue_changes sw ~view:view_name changes
  in
  feed (Sales_gen.initial_load rng ~days:3 ~sales_per_day:50);
  ignore (Shard.Sharded.refresh_all ~domains:refresh_domains sw);
  for day = 3 to 8 do
    feed (gen_round rng mirror ~day);
    ignore (Shard.Sharded.refresh_all ~domains:refresh_domains sw)
  done;
  let session = Shard.Sharded.begin_session sw in
  let union = Shard.Sharded.read_union sw session ~view:view_name in
  Shard.Sharded.end_session sw session;
  (* The union of per-shard views must equal the view over the union of
     the bases — computed by an independent oracle source that never saw
     the shard layer. *)
  Alcotest.(check bool) "union = oracle recompute" true
    (views_equal union (Source.compute_view mirror view));
  Alcotest.(check bool) "union = expected_union" true
    (views_equal union (Shard.Sharded.expected_union sw ~view:view_name))

(* Full history: per shard, the committed instance state at every VN it
   ever published (recomputed from the shard's own source at commit time,
   independent of the read path).  Any live session vector must then read
   component s at exactly history[s][vn_s]. *)
let test_cross_shard_snapshot_vector () =
  let shards = max 2 shard_count in
  let sw =
    Shard.Sharded.create ~n:4
      ~shard_map:(Sales_gen.sales_shard_map ~shards)
      [ view ]
  in
  let rng = Xorshift.create 13 in
  let mirror = Source.create Sales_gen.sales_schema in
  let history = Array.make shards [] in
  let record_shard s =
    let wh = Shard.Sharded.shard sw s in
    let vn = Twovnl.current_vn (Warehouse.vnl wh) in
    let state =
      Warehouse.expected_view wh (View_def.instance_name view_name ~shard:s)
    in
    history.(s) <- (vn, state) :: history.(s)
  in
  let feed changes =
    Source.apply mirror changes;
    Shard.Sharded.queue_changes sw ~view:view_name changes
  in
  feed (Sales_gen.initial_load rng ~days:3 ~sales_per_day:40);
  ignore (Shard.Sharded.refresh_all sw);
  Array.iteri (fun s _ -> record_shard s) history;
  let expected_at s vn =
    match List.assoc_opt vn history.(s) with
    | Some state -> state
    | None -> Alcotest.failf "no recorded state for shard %d at vn %d" s vn
  in
  let validate session =
    let vns = Array.of_list (Shard.Sharded.vn_vector session) in
    for s = 0 to shards - 1 do
      let got = Shard.Sharded.read_shard_view sw session ~shard:s ~view:view_name in
      if not (views_equal got (expected_at s vns.(s))) then
        Alcotest.failf "shard %d torn at vn %d" s vns.(s)
    done;
    let union = Shard.Sharded.read_union sw session ~view:view_name in
    let merged =
      Summary.merge_union view (List.init shards (fun s -> expected_at s vns.(s)))
    in
    Alcotest.(check bool) "union matches vector merge" true (views_equal union merged)
  in
  (* Round-robin refreshes with sessions opened before, between, and
     after: each open session must keep reading its own vector even as
     shards publish new VNs underneath it. *)
  let open_sessions = ref [] in
  for round = 0 to (3 * shards) - 1 do
    feed (gen_round rng mirror ~day:(3 + round));
    let before = Shard.Sharded.begin_session sw in
    ignore (Shard.Sharded.refresh_shard sw ~shard:(round mod shards));
    record_shard (round mod shards);
    open_sessions := before :: !open_sessions;
    (* Validate every session still inside its validity window; n = 4
       tolerates up to 2 overlapped refreshes per shard, and each shard
       refreshes every [shards] rounds, so a 2-round-old vector is safely
       live. *)
    let live, stale =
      List.partition (fun s -> Shard.Sharded.session_valid sw s) !open_sessions
    in
    List.iter validate live;
    List.iter (fun s -> Shard.Sharded.end_session sw s) stale;
    let keep, drop =
      match live with a :: b :: rest -> ([ a; b ], rest) | l -> (l, [])
    in
    List.iter (fun s -> Shard.Sharded.end_session sw s) drop;
    open_sessions := keep
  done;
  List.iter (fun s -> Shard.Sharded.end_session sw s) !open_sessions;
  (* Drain everything and confirm convergence against the independent
     mirror oracle. *)
  ignore (Shard.Sharded.refresh_all ~domains:refresh_domains sw);
  let session = Shard.Sharded.begin_session sw in
  let union = Shard.Sharded.read_union sw session ~view:view_name in
  Shard.Sharded.end_session sw session;
  Alcotest.(check bool) "final union = oracle" true
    (views_equal union (Source.compute_view mirror view))

let test_expired_component_rejected () =
  let sw =
    Shard.Sharded.create ~n:2
      ~shard_map:(Sales_gen.sales_shard_map ~shards:2)
      [ view ]
  in
  let rng = Xorshift.create 29 in
  Shard.Sharded.queue_changes sw ~view:view_name
    (Sales_gen.initial_load rng ~days:2 ~sales_per_day:30);
  ignore (Shard.Sharded.refresh_all sw);
  let session = Shard.Sharded.begin_session sw in
  (* Two refreshes (with real work each) of one shard under n = 2 expire
     that component; the vector as a whole must then refuse, and reading
     the stale component must raise.  Resolve the victim shard through the
     map rather than assuming where a state hashes. *)
  let row day = sale ~state:"NV" "Reno" "running" day 5 in
  let target = Shard.Shard_map.route (Shard.Sharded.shard_map sw) (row 0) in
  for day = 0 to 1 do
    Shard.Sharded.queue_changes sw ~view:view_name [ Delta.Insert (row day) ];
    ignore (Shard.Sharded.refresh_shard sw ~shard:target)
  done;
  Alcotest.(check bool) "vector invalid" false (Shard.Sharded.session_valid sw session);
  Alcotest.(check bool) "component read raises" true
    (try
       ignore (Shard.Sharded.read_shard_view sw session ~shard:target ~view:view_name);
       false
     with Twovnl.Expired _ -> true);
  Shard.Sharded.end_session sw session

let test_pipelined_shard_refresh () =
  (* Per-shard pipelined rounds through the sharded facade, including one
     killed round: the shard requeues and converges like a standalone
     warehouse. *)
  let sw =
    Shard.Sharded.create ~n:3
      ~shard_map:(Sales_gen.sales_shard_map ~shards:2)
      [ view ]
  in
  let rng = Xorshift.create 41 in
  let mirror = Source.create Sales_gen.sales_schema in
  let feed changes =
    Source.apply mirror changes;
    Shard.Sharded.queue_changes sw ~view:view_name changes
  in
  feed (Sales_gen.initial_load rng ~days:3 ~sales_per_day:50);
  ignore (Shard.Sharded.refresh_pipelined_all ~workers:2 sw);
  feed (gen_round rng mirror ~day:3);
  let on_phase p ~stripe:i = if p = `Apply && i = 1 then raise (Killed (p, i)) in
  (match Shard.Sharded.refresh_pipelined_shard ~workers:2 ~on_phase sw ~shard:0 with
  | _ -> ()  (* shard 0's slice may plan fewer than 2 stripes *)
  | exception Killed _ -> ());
  ignore (Shard.Sharded.refresh_all sw);
  let session = Shard.Sharded.begin_session sw in
  let union = Shard.Sharded.read_union sw session ~view:view_name in
  Shard.Sharded.end_session sw session;
  Alcotest.(check bool) "union = oracle after killed round" true
    (views_equal union (Source.compute_view mirror view))

let suite =
  [
    Alcotest.test_case "abort/requeue sweep over every (phase, stripe)" `Quick
      test_abort_requeue_sweep;
    Alcotest.test_case "abort/requeue through real domains" `Quick
      test_abort_requeue_real_domains;
    Alcotest.test_case "plan failure requeues the entire batch" `Quick
      test_plan_failure_requeues_everything;
    Alcotest.test_case "float cancellation residue is dropped" `Quick
      test_delta_float_residue_dropped;
    Alcotest.test_case "cancelling float batch refreshes to a no-op" `Quick
      test_float_residue_refresh_is_noop;
    Alcotest.test_case "shard map routes and splits straddling updates" `Quick
      test_shard_map_routing;
    Alcotest.test_case "shard map validation" `Quick test_shard_map_validation;
    Alcotest.test_case "template instances stamp names only" `Quick
      test_template_instances;
    Alcotest.test_case "merge_union sums shared groups" `Quick
      test_merge_union_sums_shared_groups;
    Alcotest.test_case "sharded drain matches the union oracle" `Quick
      test_sharded_drain_matches_union_oracle;
    Alcotest.test_case "cross-shard VN-vector snapshots vs full history" `Quick
      test_cross_shard_snapshot_vector;
    Alcotest.test_case "expired component invalidates the vector" `Quick
      test_expired_component_rejected;
    Alcotest.test_case "pipelined per-shard refresh with a killed round" `Quick
      test_pipelined_shard_refresh;
  ]
