(* Unit and property tests for Vnl_storage: disk, pages, buffer pool, heap files. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Disk = Vnl_storage.Disk
module Page = Vnl_storage.Page
module Buffer_pool = Vnl_storage.Buffer_pool
module Heap_file = Vnl_storage.Heap_file
module Latch = Vnl_storage.Latch

let check = Alcotest.check

let small_schema =
  Schema.make [ Schema.attr ~key:true "id" Dtype.Int; Schema.attr ~updatable:true "v" Dtype.Int ]

let mk_tuple id v = Tuple.make small_schema [ Value.Int id; Value.Int v ]

let test_disk_alloc_read_write () =
  let d = Disk.create ~page_size:256 () in
  let p0 = Disk.alloc d in
  check Alcotest.int "first page id" 0 p0;
  let img = Bytes.make 256 'x' in
  Disk.write d p0 img;
  let back = Disk.read d p0 in
  Alcotest.(check bool) "roundtrip" true (Bytes.equal img back);
  let s = Disk.stats d in
  check Alcotest.int "reads" 1 s.Disk.reads;
  check Alcotest.int "writes" 1 s.Disk.writes

let test_disk_bad_page () =
  let d = Disk.create () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Disk.read d 3);
       false
     with Invalid_argument _ -> true)

let test_disk_many_pages () =
  let d = Disk.create ~page_size:64 () in
  for i = 0 to 99 do
    check Alcotest.int "sequential ids" i (Disk.alloc d)
  done;
  check Alcotest.int "count" 100 (Disk.page_count d)

(* ---------- checksums and fault injection ---------- *)

let test_disk_checksum_roundtrip () =
  let d = Disk.create ~page_size:128 () in
  Alcotest.(check bool) "checksums default on" true (Disk.checksums_enabled d);
  let p = Disk.alloc d in
  Alcotest.(check bool) "fresh page verifies" true (Disk.verify d p);
  Disk.write d p (Bytes.make 128 'q');
  Alcotest.(check bool) "written page verifies" true (Disk.verify d p);
  ignore (Disk.read d p)

let test_disk_crash_at_write_k () =
  let d = Disk.create ~page_size:64 () in
  let p0 = Disk.alloc d and p1 = Disk.alloc d in
  Disk.write d p0 (Bytes.make 64 'a');
  Disk.set_faults d { Disk.no_faults with crash_at_write = Some 2 };
  Disk.write d p1 (Bytes.make 64 'b');
  (* Write 1 since arming succeeded; write 2 must crash without applying. *)
  Alcotest.(check bool) "second write crashes" true
    (try
       Disk.write d p0 (Bytes.make 64 'c');
       false
     with Disk.Crash _ -> true);
  Disk.clear_faults d;
  check Alcotest.char "crashing write not applied" 'a' (Bytes.get (Disk.read d p0) 0);
  check Alcotest.char "pre-crash write applied" 'b' (Bytes.get (Disk.read d p1) 0)

let test_disk_torn_write_detected () =
  let d = Disk.create ~page_size:64 () in
  let p = Disk.alloc d in
  Disk.write d p (Bytes.make 64 'o');
  Disk.set_faults d { Disk.no_faults with crash_at_write = Some 1; torn_prefix = 10 };
  Alcotest.(check bool) "torn write crashes" true
    (try
       Disk.write d p (Bytes.make 64 'n');
       false
     with Disk.Crash _ -> true);
  Disk.clear_faults d;
  Alcotest.(check bool) "torn page fails verify" false (Disk.verify d p);
  Alcotest.(check bool) "torn page detected on read" true
    (try
       ignore (Disk.read d p);
       false
     with Disk.Corrupt_page _ -> true)

let test_disk_full_prefix_write_is_complete () =
  let d = Disk.create ~page_size:64 () in
  let p = Disk.alloc d in
  Disk.write d p (Bytes.make 64 'o');
  Disk.set_faults d { Disk.no_faults with crash_at_write = Some 1; torn_prefix = 64 };
  (try Disk.write d p (Bytes.make 64 'n') with Disk.Crash _ -> ());
  Disk.clear_faults d;
  (* The full image landed, checksum included: valid and new. *)
  check Alcotest.char "write completed before crash" 'n' (Bytes.get (Disk.read d p) 0)

let test_disk_injected_read_failure () =
  let d = Disk.create ~page_size:64 () in
  let p0 = Disk.alloc d and p1 = Disk.alloc d in
  Disk.set_faults d { Disk.no_faults with fail_read_pids = [ p1 ] };
  ignore (Disk.read d p0);
  Alcotest.(check bool) "read of failed page raises" true
    (try
       ignore (Disk.read d p1);
       false
     with Disk.Crash _ -> true);
  Disk.clear_faults d;
  ignore (Disk.read d p1)

let test_disk_clone_independent () =
  let d = Disk.create ~page_size:64 () in
  let p = Disk.alloc d in
  Disk.write d p (Bytes.make 64 'x');
  let c = Disk.clone d in
  Disk.write d p (Bytes.make 64 'y');
  check Alcotest.char "clone keeps old image" 'x' (Bytes.get (Disk.read c p) 0);
  check Alcotest.char "original has new image" 'y' (Bytes.get (Disk.read d p) 0);
  Alcotest.(check bool) "clone verifies" true (Disk.verify c p)

let test_disk_checksums_off () =
  let d = Disk.create ~page_size:64 ~checksums:false () in
  let p = Disk.alloc d in
  Disk.write d p (Bytes.make 64 'o');
  Disk.set_faults d { Disk.no_faults with crash_at_write = Some 1; torn_prefix = 7 };
  (try Disk.write d p (Bytes.make 64 'n') with Disk.Crash _ -> ());
  Disk.clear_faults d;
  (* No checksum to catch the tear: the mixed page decodes silently — the
     behavior the checksum layer exists to prevent. *)
  Alcotest.(check bool) "verify is vacuous" true (Disk.verify d p);
  let img = Disk.read d p in
  check Alcotest.char "prefix is new" 'n' (Bytes.get img 0);
  check Alcotest.char "tail is old" 'o' (Bytes.get img 63)

(* ---------- seq/rand classification after reset_stats ---------- *)

(* Pins down the head position after [reset_stats]: before page 0.  The
   first post-reset write is sequential iff it lands on page 0 — what the
   ascending flush tests (and bench comparability across PRs) rely on. *)
let test_disk_first_write_after_reset () =
  let d = Disk.create ~page_size:64 () in
  for _ = 1 to 4 do
    ignore (Disk.alloc d)
  done;
  Disk.reset_stats d;
  Disk.write d 0 (Bytes.make 64 'a');
  let s = Disk.stats d in
  check Alcotest.int "write to page 0 is sequential" 1 s.Disk.seq_writes;
  check Alcotest.int "no random writes yet" 0 s.Disk.rand_writes;
  Disk.reset_stats d;
  Disk.write d 2 (Bytes.make 64 'b');
  let s = Disk.stats d in
  check Alcotest.int "write to page 2 is random" 1 s.Disk.rand_writes;
  check Alcotest.int "not sequential" 0 s.Disk.seq_writes

let test_pool_first_writeback_after_reset () =
  let d = Disk.create ~page_size:64 () in
  let pool = Buffer_pool.create ~capacity:8 d in
  for _ = 1 to 4 do
    ignore (Buffer_pool.alloc_page pool)
  done;
  Buffer_pool.with_page_mut pool 0 (fun img -> Bytes.set img 0 'a');
  Buffer_pool.reset_stats pool;
  Buffer_pool.flush_all pool;
  check Alcotest.int "first write-back to page 0 is sequential" 1
    (Buffer_pool.stats pool).Buffer_pool.seq_writes;
  Buffer_pool.with_page_mut pool 3 (fun img -> Bytes.set img 0 'b');
  Buffer_pool.reset_stats pool;
  Buffer_pool.flush_all pool;
  let s = Buffer_pool.stats pool in
  check Alcotest.int "first write-back to page 3 is random" 1 s.Buffer_pool.rand_writes;
  check Alcotest.int "and not sequential" 0 s.Buffer_pool.seq_writes

(* ---------- pinning ---------- *)

(* Regression: at capacity 2, a nested page access used to evict the frame
   the outer callback was mutating, silently losing the mutation to a stale
   re-read.  Pinned frames are no longer eviction victims. *)
let test_pool_pin_survives_nested_access () =
  let d = Disk.create ~page_size:64 () in
  let pool = Buffer_pool.create ~capacity:2 d in
  let p0 = Buffer_pool.alloc_page pool in
  let p1 = Buffer_pool.alloc_page pool in
  let p2 = Buffer_pool.alloc_page pool in
  Buffer_pool.drop_cache pool;
  Buffer_pool.with_page_mut pool p0 (fun img ->
      (* Load two other pages: the second forces an eviction, which must
         pick p1, not the pinned p0. *)
      Buffer_pool.with_page pool p1 (fun _ -> ());
      Buffer_pool.with_page pool p2 (fun _ -> ());
      Bytes.set img 0 'M');
  Buffer_pool.flush_all pool;
  check Alcotest.char "outer mutation reached disk" 'M' (Bytes.get (Disk.read d p0) 0)

let test_pool_all_pinned_raises () =
  let d = Disk.create ~page_size:64 () in
  let pool = Buffer_pool.create ~capacity:1 d in
  let p0 = Buffer_pool.alloc_page pool in
  let p1 = Buffer_pool.alloc_page pool in
  Buffer_pool.drop_cache pool;
  Buffer_pool.with_page_mut pool p0 (fun img ->
      Bytes.set img 0 'K';
      (* The only frame is pinned: loading another page must fail loudly
         rather than evict it. *)
      Alcotest.(check bool) "nested load with all frames pinned raises" true
        (try
           Buffer_pool.with_page pool p1 (fun _ -> ());
           false
         with Failure _ -> true);
      Bytes.set img 1 'L');
  Buffer_pool.flush_all pool;
  let img = Disk.read d p0 in
  check Alcotest.char "mutation before the raise persisted" 'K' (Bytes.get img 0);
  check Alcotest.char "mutation after the raise persisted" 'L' (Bytes.get img 1)

let test_pool_unpinned_after_callback () =
  let d = Disk.create ~page_size:64 () in
  let pool = Buffer_pool.create ~capacity:1 d in
  let p0 = Buffer_pool.alloc_page pool in
  let p1 = Buffer_pool.alloc_page pool in
  Buffer_pool.drop_cache pool;
  Buffer_pool.with_page pool p0 (fun _ -> ());
  (* Pin released: the frame is evictable again. *)
  Buffer_pool.with_page pool p1 (fun _ -> ());
  Buffer_pool.with_page pool p0 (fun _ -> ());
  (* And the pin is released on exception too. *)
  (try Buffer_pool.with_page pool p1 (fun _ -> failwith "boom") with Failure _ -> ());
  Buffer_pool.with_page pool p0 (fun _ -> ())

let test_page_layout () =
  let l = Page.layout ~page_size:4096 ~record_width:51 in
  (* 4 header bytes + 51+1 per record: floor(4092/52) = 78 slots. *)
  check Alcotest.int "slots" 78 l.Page.slots

let test_page_slots () =
  let l = Page.layout ~page_size:256 ~record_width:10 in
  let page = Bytes.create 256 in
  Page.init l page;
  check Alcotest.int "all free" 0 (Page.used_count l page);
  let rec0 = Bytes.make 10 'a' in
  Page.write_slot l page 0 rec0;
  Alcotest.(check bool) "slot used" true (Page.slot_used l page 0);
  Alcotest.(check bool) "readback" true (Bytes.equal rec0 (Page.read_slot l page 0));
  check Alcotest.int "used count" 1 (Page.used_count l page);
  check (Alcotest.option Alcotest.int) "next free" (Some 1) (Page.first_free_slot l page);
  Page.clear_slot l page 0;
  check Alcotest.int "freed" 0 (Page.used_count l page)

let test_page_overwrite_in_place () =
  let l = Page.layout ~page_size:256 ~record_width:4 in
  let page = Bytes.create 256 in
  Page.init l page;
  Page.write_slot l page 3 (Bytes.of_string "aaaa");
  Page.write_slot l page 3 (Bytes.of_string "bbbb");
  Alcotest.(check bool) "overwritten" true
    (Bytes.equal (Bytes.of_string "bbbb") (Page.read_slot l page 3));
  check Alcotest.int "still one record" 1 (Page.used_count l page)

let test_page_record_too_large () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Page.layout ~page_size:64 ~record_width:100);
       false
     with Invalid_argument _ -> true)

let test_pool_hit_miss () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:2 d in
  let p0 = Buffer_pool.alloc_page pool in
  let p1 = Buffer_pool.alloc_page pool in
  let p2 = Buffer_pool.alloc_page pool in
  (* Capacity 2: p0 was evicted by p2's arrival. *)
  Buffer_pool.with_page pool p1 (fun _ -> ());
  Buffer_pool.with_page pool p2 (fun _ -> ());
  let before = (Buffer_pool.stats pool).Buffer_pool.misses in
  Buffer_pool.with_page pool p0 (fun _ -> ());
  let after = (Buffer_pool.stats pool).Buffer_pool.misses in
  check Alcotest.int "cold access misses" (before + 1) after

let test_pool_dirty_writeback () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:4 d in
  let p0 = Buffer_pool.alloc_page pool in
  Buffer_pool.with_page_mut pool p0 (fun img -> Bytes.set img 0 'Z');
  Buffer_pool.flush_all pool;
  let img = Disk.read d p0 in
  check Alcotest.char "persisted" 'Z' (Bytes.get img 0)

let test_pool_eviction_persists_dirty () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:1 d in
  let p0 = Buffer_pool.alloc_page pool in
  Buffer_pool.with_page_mut pool p0 (fun img -> Bytes.set img 0 'Q');
  let _p1 = Buffer_pool.alloc_page pool in
  (* p0 must have been evicted and written back. *)
  let img = Disk.read d p0 in
  check Alcotest.char "evicted dirty page persisted" 'Q' (Bytes.get img 0)

let test_pool_drop_cache_cold () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:8 d in
  let p0 = Buffer_pool.alloc_page pool in
  Buffer_pool.with_page pool p0 (fun _ -> ());
  Buffer_pool.drop_cache pool;
  Buffer_pool.reset_stats pool;
  Buffer_pool.with_page pool p0 (fun _ -> ());
  check Alcotest.int "one miss after drop" 1 (Buffer_pool.stats pool).Buffer_pool.misses

let test_pool_reset_stats_zeroes () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:2 d in
  let p0 = Buffer_pool.alloc_page pool in
  let p1 = Buffer_pool.alloc_page pool in
  let p2 = Buffer_pool.alloc_page pool in
  Buffer_pool.with_page_mut pool p0 (fun img -> Bytes.set img 0 'a');
  Buffer_pool.with_page pool p1 (fun _ -> ());
  Buffer_pool.with_page pool p2 (fun _ -> ());
  Buffer_pool.flush_all pool;
  let s = Buffer_pool.stats pool in
  Alcotest.(check bool) "counters accumulated" true
    (s.Buffer_pool.logical_reads > 0 && s.Buffer_pool.physical_writes > 0);
  Buffer_pool.reset_stats pool;
  let z = Buffer_pool.stats pool in
  check Alcotest.int "logical reads zeroed" 0 z.Buffer_pool.logical_reads;
  check Alcotest.int "hits zeroed" 0 z.Buffer_pool.hits;
  check Alcotest.int "misses zeroed" 0 z.Buffer_pool.misses;
  check Alcotest.int "evictions zeroed" 0 z.Buffer_pool.evictions;
  check Alcotest.int "physical writes zeroed" 0 z.Buffer_pool.physical_writes;
  let ds = Disk.stats d in
  check Alcotest.int "disk reads zeroed" 0 ds.Disk.reads;
  check Alcotest.int "disk writes zeroed" 0 ds.Disk.writes;
  (* reset_stats keeps pages resident: a re-read is still a hit ... *)
  Buffer_pool.with_page pool p2 (fun _ -> ());
  check Alcotest.int "cache stays warm" 1 (Buffer_pool.stats pool).Buffer_pool.hits;
  (* ... while drop_cache + reset_stats makes the next read a cold miss. *)
  Buffer_pool.drop_cache pool;
  Buffer_pool.reset_stats pool;
  Buffer_pool.with_page pool p2 (fun _ -> ());
  check Alcotest.int "cold after drop" 1 (Buffer_pool.stats pool).Buffer_pool.misses

let test_pool_drop_cache_flushes_dirty () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:4 d in
  let p0 = Buffer_pool.alloc_page pool in
  Buffer_pool.with_page_mut pool p0 (fun img -> Bytes.set img 0 'D');
  Buffer_pool.drop_cache pool;
  (* No flush_all: drop_cache itself must have written the dirty frame. *)
  check Alcotest.char "dirty frame persisted" 'D' (Bytes.get (Disk.read d p0) 0);
  Buffer_pool.with_page pool p0 (fun img ->
      check Alcotest.char "reload sees the write" 'D' (Bytes.get img 0))

let test_pool_lru_victim_order () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:2 d in
  let p0 = Buffer_pool.alloc_page pool in
  let p1 = Buffer_pool.alloc_page pool in
  (* Touch p0 so p1 becomes least recently used, then overflow. *)
  Buffer_pool.with_page pool p0 (fun _ -> ());
  let _p2 = Buffer_pool.alloc_page pool in
  Buffer_pool.reset_stats pool;
  Buffer_pool.with_page pool p0 (fun _ -> ());
  check Alcotest.int "recently touched page stayed resident" 0
    (Buffer_pool.stats pool).Buffer_pool.misses;
  Buffer_pool.with_page pool p1 (fun _ -> ());
  check Alcotest.int "LRU page was the victim" 1 (Buffer_pool.stats pool).Buffer_pool.misses

let test_flush_all_ascending_pid () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:16 d in
  let n = 8 in
  for _ = 1 to n do
    ignore (Buffer_pool.alloc_page pool)
  done;
  (* Dirty the pages in scrambled order; the flush order must not follow it. *)
  List.iter
    (fun p -> Buffer_pool.with_page_mut pool p (fun img -> Bytes.set img 0 'x'))
    [ 5; 2; 7; 0; 3; 6; 1; 4 ];
  Buffer_pool.reset_stats pool;
  Buffer_pool.flush_all pool;
  let s = Buffer_pool.stats pool in
  check Alcotest.int "one write per dirty page" n s.Buffer_pool.physical_writes;
  check Alcotest.int "ascending pid: every write sequential" n s.Buffer_pool.seq_writes;
  check Alcotest.int "no seeks" 0 s.Buffer_pool.rand_writes;
  let ds = Disk.stats d in
  check Alcotest.int "disk agrees" n ds.Disk.seq_writes;
  check Alcotest.int "disk random" 0 ds.Disk.rand_writes;
  (* A second flush has nothing dirty left to write. *)
  Buffer_pool.flush_all pool;
  check Alcotest.int "flush idempotent" n (Buffer_pool.stats pool).Buffer_pool.physical_writes

let test_drop_cache_ascending_pid () =
  let d = Disk.create ~page_size:128 () in
  let pool = Buffer_pool.create ~capacity:16 d in
  for _ = 1 to 6 do
    ignore (Buffer_pool.alloc_page pool)
  done;
  List.iter
    (fun p -> Buffer_pool.with_page_mut pool p (fun img -> Bytes.set img 0 'y'))
    [ 4; 1; 5; 0; 2; 3 ];
  Buffer_pool.reset_stats pool;
  Buffer_pool.drop_cache pool;
  let s = Buffer_pool.stats pool in
  check Alcotest.int "drop_cache flush is sequential" 6 s.Buffer_pool.seq_writes;
  check Alcotest.int "drop_cache flush has no seeks" 0 s.Buffer_pool.rand_writes

let with_heap f =
  let d = Disk.create ~page_size:256 () in
  let pool = Buffer_pool.create ~capacity:16 d in
  f (Heap_file.create pool small_schema)

let test_heap_insert_get () =
  with_heap (fun h ->
      let rid = Heap_file.insert h (mk_tuple 1 100) in
      match Heap_file.get h rid with
      | Some t -> check Alcotest.string "value" "100" (Value.to_string (Tuple.get t 1))
      | None -> Alcotest.fail "tuple not found")

let test_heap_update_in_place_keeps_rid () =
  with_heap (fun h ->
      let rid = Heap_file.insert h (mk_tuple 1 100) in
      Heap_file.update_in_place h rid (mk_tuple 1 200);
      (match Heap_file.get h rid with
      | Some t -> check Alcotest.string "updated" "200" (Value.to_string (Tuple.get t 1))
      | None -> Alcotest.fail "missing");
      check Alcotest.int "count stable" 1 (Heap_file.tuple_count h))

let test_heap_delete () =
  with_heap (fun h ->
      let rid = Heap_file.insert h (mk_tuple 1 100) in
      Heap_file.delete h rid;
      Alcotest.(check bool) "gone" true (Heap_file.get h rid = None);
      check Alcotest.int "count" 0 (Heap_file.tuple_count h))

let test_heap_slot_reuse () =
  with_heap (fun h ->
      let rid0 = Heap_file.insert h (mk_tuple 1 100) in
      Heap_file.delete h rid0;
      let rid1 = Heap_file.insert h (mk_tuple 2 200) in
      Alcotest.(check bool) "slot reused" true (Heap_file.rid_equal rid0 rid1))

let test_heap_scan_order_and_count () =
  with_heap (fun h ->
      for i = 1 to 100 do
        ignore (Heap_file.insert h (mk_tuple i i))
      done;
      let seen = ref [] in
      Heap_file.scan h (fun _ t ->
          match Tuple.get t 0 with Value.Int n -> seen := n :: !seen | _ -> ());
      check Alcotest.int "scanned all" 100 (List.length !seen);
      check (Alcotest.list Alcotest.int) "in insert order" (List.init 100 (fun i -> i + 1))
        (List.rev !seen))

let test_heap_spans_pages () =
  with_heap (fun h ->
      (* 256-byte pages, 8-byte records: ~28 slots/page; 100 tuples need >1 page. *)
      for i = 1 to 100 do
        ignore (Heap_file.insert h (mk_tuple i i))
      done;
      Alcotest.(check bool) "multiple pages" true (Heap_file.page_count h > 1))

let test_heap_delete_then_insert_moves () =
  with_heap (fun h ->
      ignore (Heap_file.insert h (mk_tuple 1 1));
      let rid = Heap_file.insert h (mk_tuple 2 2) in
      let rid' = Heap_file.delete_then_insert h rid (mk_tuple 2 20) in
      (match Heap_file.get h rid' with
      | Some t -> check Alcotest.string "new value" "20" (Value.to_string (Tuple.get t 1))
      | None -> Alcotest.fail "missing");
      check Alcotest.int "count stable" 2 (Heap_file.tuple_count h))

let test_heap_update_free_slot_rejected () =
  with_heap (fun h ->
      let rid = Heap_file.insert h (mk_tuple 1 1) in
      Heap_file.delete h rid;
      Alcotest.(check bool) "raises" true
        (try
           Heap_file.update_in_place h rid (mk_tuple 1 2);
           false
         with Invalid_argument _ -> true))

let test_latch_discipline () =
  let l = Latch.create "t" in
  Latch.acquire l;
  Alcotest.(check bool) "held" true (Latch.held l);
  Alcotest.(check bool) "re-entry fails" true
    (try
       Latch.acquire l;
       false
     with Failure _ -> true);
  Latch.release l;
  Alcotest.(check bool) "release twice fails" true
    (try
       Latch.release l;
       false
     with Failure _ -> true);
  check Alcotest.int "acquisitions" 1 (Latch.acquisitions l)

let test_latch_with_latch_releases_on_exn () =
  let l = Latch.create "t" in
  (try Latch.with_latch l (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "released" false (Latch.held l)

(* Property: a random interleaving of inserts/deletes/updates against a model. *)
let qcheck_heap_model =
  let open QCheck in
  let module Tuple = Vnl_relation.Tuple in
  let ops =
    Gen.(
      list_size (0 -- 200)
        (frequency
           [
             (5, map (fun v -> `Insert v) (int_range 0 1000));
             (2, map (fun i -> `Delete i) (int_range 0 50));
             (2, map2 (fun i v -> `Update (i, v)) (int_range 0 50) (int_range 0 1000));
           ]))
  in
  Test.make ~name:"heap file agrees with list model" ~count:100 (make ops) (fun ops ->
      let d = Disk.create ~page_size:256 () in
      let pool = Buffer_pool.create ~capacity:4 d in
      let h = Heap_file.create pool small_schema in
      let model : (Heap_file.rid * int) list ref = ref [] in
      let counter = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Insert v ->
            incr counter;
            let rid = Heap_file.insert h (mk_tuple !counter v) in
            model := (rid, v) :: !model
          | `Delete i -> (
            match List.nth_opt !model i with
            | Some (rid, _) ->
              Heap_file.delete h rid;
              model := List.filter (fun (r, _) -> not (Heap_file.rid_equal r rid)) !model
            | None -> ())
          | `Update (i, v) -> (
            match List.nth_opt !model i with
            | Some (rid, _) ->
              incr counter;
              Heap_file.update_in_place h rid (mk_tuple !counter v);
              model :=
                List.map (fun (r, x) -> if Heap_file.rid_equal r rid then (r, v) else (r, x)) !model
            | None -> ()))
        ops;
      let stored =
        Heap_file.fold h ~init:[] ~f:(fun acc rid t ->
            match Tuple.get t 1 with Value.Int v -> (rid, v) :: acc | _ -> acc)
      in
      let norm l = List.sort compare (List.map (fun ({ Heap_file.page; slot }, v) -> (page, slot, v)) l) in
      norm stored = norm !model)

(* ---------- CRC-32C: vectors, differential oracle, torn-page parity ----- *)

module Crc = Vnl_storage.Crc
module Xorshift = Vnl_util.Xorshift

let test_crc32c_vectors () =
  (* RFC 3720 §B.4 test vectors. *)
  check Alcotest.int "crc32c(\"123456789\")" 0xE3069283
    (Crc.crc32c (Bytes.of_string "123456789"));
  check Alcotest.int "crc32c(32 x 0x00)" 0x8A9136AA (Crc.crc32c (Bytes.make 32 '\x00'));
  check Alcotest.int "crc32c(32 x 0xff)" 0x62A8AB43 (Crc.crc32c (Bytes.make 32 '\xff'));
  let inc = Bytes.init 32 Char.chr in
  check Alcotest.int "crc32c(0x00..0x1f)" 0x46DD794E (Crc.crc32c inc);
  (* The retired checksum must be unchanged too — it anchors the
     differential torn-page test below. *)
  check Alcotest.int "crc32_ieee(\"123456789\")" 0xCBF43926
    (Crc.crc32_ieee (Bytes.of_string "123456789"))

(* The sliced kernel folds 8 bytes per iteration with a bytewise tail, so
   every length mod 8 (and the sub-8 lengths that skip the sliced loop
   entirely) must agree with the byte-at-a-time oracle. *)
let qcheck_crc32c_differential =
  let open QCheck in
  let gen =
    Gen.(
      let* n = oneof [ int_range 0 67; return 256; return 4096 ] in
      map Bytes.unsafe_of_string (string_size (return n)))
  in
  Test.make ~name:"sliced CRC-32C agrees with the bytewise oracle" ~count:300 (make gen)
    (fun img -> Crc.crc32c img = Crc.crc32c_bytewise img)

(* Old-vs-new on the same torn-page corpus: for every random page image and
   torn prefix, both generations of checksum must flag exactly the same
   images (i.e. detect the tear whenever the torn image differs at all).
   This is the evidence that swapping the polynomial and kernel did not
   weaken torn-write detection. *)
let test_crc_torn_page_parity () =
  let rng = Xorshift.create 99 in
  let page_size = 256 in
  for _case = 1 to 200 do
    let img = Bytes.init page_size (fun _ -> Char.chr (Xorshift.int rng 256)) in
    let full_old = Crc.crc32_ieee img and full_new = Crc.crc32c img in
    (* A torn write applies a prefix of the new image over the old one. *)
    let prev = Bytes.init page_size (fun _ -> Char.chr (Xorshift.int rng 256)) in
    let k = Xorshift.int rng (page_size + 1) in
    let torn = Bytes.copy prev in
    Bytes.blit img 0 torn 0 k;
    let differs = not (Bytes.equal torn img) in
    let old_detects = Crc.crc32_ieee torn <> full_old in
    let new_detects = Crc.crc32c torn <> full_new in
    if old_detects <> differs then
      Alcotest.failf "case with prefix %d: CRC-32 detection %b but image differs %b" k
        old_detects differs;
    if new_detects <> differs then
      Alcotest.failf "case with prefix %d: CRC-32C detection %b but image differs %b" k
        new_detects differs
  done

let test_disk_verify_uses_crc32c () =
  (* The disk's stored checksum is the new kernel: a torn write (prefix of
     the new image over the old) makes [verify] fail. *)
  let d = Disk.create ~page_size:64 () in
  let p = Disk.alloc d in
  Disk.write d p (Bytes.make 64 's');
  Alcotest.(check bool) "clean page verifies" true (Disk.verify d p);
  Disk.set_faults d { Disk.no_faults with crash_at_write = Some 1; torn_prefix = 10 };
  (try Disk.write d p (Bytes.make 64 't') with Disk.Crash _ -> ());
  Disk.clear_faults d;
  Alcotest.(check bool) "torn page fails verify" false (Disk.verify d p)

let suite =
  [
    Alcotest.test_case "disk alloc/read/write" `Quick test_disk_alloc_read_write;
    Alcotest.test_case "disk bad page" `Quick test_disk_bad_page;
    Alcotest.test_case "disk many pages" `Quick test_disk_many_pages;
    Alcotest.test_case "disk checksum roundtrip" `Quick test_disk_checksum_roundtrip;
    Alcotest.test_case "disk crash at write k" `Quick test_disk_crash_at_write_k;
    Alcotest.test_case "disk torn write detected" `Quick test_disk_torn_write_detected;
    Alcotest.test_case "disk full-prefix write completes" `Quick
      test_disk_full_prefix_write_is_complete;
    Alcotest.test_case "disk injected read failure" `Quick test_disk_injected_read_failure;
    Alcotest.test_case "disk clone independent" `Quick test_disk_clone_independent;
    Alcotest.test_case "disk checksums off" `Quick test_disk_checksums_off;
    Alcotest.test_case "disk first write after reset_stats" `Quick
      test_disk_first_write_after_reset;
    Alcotest.test_case "pool first write-back after reset_stats" `Quick
      test_pool_first_writeback_after_reset;
    Alcotest.test_case "pool pin survives nested access" `Quick
      test_pool_pin_survives_nested_access;
    Alcotest.test_case "pool all-pinned eviction raises" `Quick test_pool_all_pinned_raises;
    Alcotest.test_case "pool unpins after callback" `Quick test_pool_unpinned_after_callback;
    Alcotest.test_case "page layout arithmetic" `Quick test_page_layout;
    Alcotest.test_case "page slot lifecycle" `Quick test_page_slots;
    Alcotest.test_case "page in-place overwrite" `Quick test_page_overwrite_in_place;
    Alcotest.test_case "page record too large" `Quick test_page_record_too_large;
    Alcotest.test_case "pool hit/miss accounting" `Quick test_pool_hit_miss;
    Alcotest.test_case "pool dirty writeback" `Quick test_pool_dirty_writeback;
    Alcotest.test_case "pool eviction persists dirty" `Quick test_pool_eviction_persists_dirty;
    Alcotest.test_case "pool drop_cache goes cold" `Quick test_pool_drop_cache_cold;
    Alcotest.test_case "pool reset_stats zeroes counters" `Quick test_pool_reset_stats_zeroes;
    Alcotest.test_case "pool drop_cache flushes dirty" `Quick test_pool_drop_cache_flushes_dirty;
    Alcotest.test_case "pool LRU victim order" `Quick test_pool_lru_victim_order;
    Alcotest.test_case "flush_all writes ascending pids" `Quick test_flush_all_ascending_pid;
    Alcotest.test_case "drop_cache flush ordering" `Quick test_drop_cache_ascending_pid;
    Alcotest.test_case "heap insert/get" `Quick test_heap_insert_get;
    Alcotest.test_case "heap update in place keeps rid" `Quick test_heap_update_in_place_keeps_rid;
    Alcotest.test_case "heap delete" `Quick test_heap_delete;
    Alcotest.test_case "heap slot reuse" `Quick test_heap_slot_reuse;
    Alcotest.test_case "heap scan order" `Quick test_heap_scan_order_and_count;
    Alcotest.test_case "heap spans pages" `Quick test_heap_spans_pages;
    Alcotest.test_case "heap delete-then-insert" `Quick test_heap_delete_then_insert_moves;
    Alcotest.test_case "heap update free slot rejected" `Quick test_heap_update_free_slot_rejected;
    Alcotest.test_case "latch discipline" `Quick test_latch_discipline;
    Alcotest.test_case "latch releases on exception" `Quick test_latch_with_latch_releases_on_exn;
    Alcotest.test_case "crc32c known vectors" `Quick test_crc32c_vectors;
    Alcotest.test_case "crc old/new torn-page detection parity" `Quick
      test_crc_torn_page_parity;
    Alcotest.test_case "disk verify detects torn writes with crc32c" `Quick
      test_disk_verify_uses_crc32c;
    QCheck_alcotest.to_alcotest qcheck_crc32c_differential;
    QCheck_alcotest.to_alcotest qcheck_heap_model;
  ]
