(* Differential and cache tests for the compiled query path.

   The contract under test: Plan/Prepared may change CPU cost only.  So the
   compiled path must (1) agree with the interpreter on every query —
   results, output labels, and failure/success — over randomized schemas,
   data, and queries; (2) never serve a stale plan across catalog changes;
   and (3) touch exactly the pages the interpreter touches. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Executor = Vnl_query.Executor
module Plan = Vnl_query.Plan
module Prepared = Vnl_query.Prepared
module Parser = Vnl_sql.Parser
module Ast = Vnl_sql.Ast
module Pp = Vnl_sql.Pp

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Differential property: compiled = interpreted on random queries.    *)
(* ------------------------------------------------------------------ *)

(* Two small tables sharing a column name (so unqualified [c_a] is
   ambiguous in joins) and with columns the other lacks (so [c_d] over
   [t_a] is an unknown-column error).  The generator deliberately produces
   a mix of valid queries, type errors, unknown/ambiguous columns, and
   unbound parameters: on errors the two paths must agree that the query
   fails, on success they must agree on the exact rows. *)

let schema_a =
  Schema.make
    [
      Schema.attr ~key:true "c_a" Dtype.Int;
      Schema.attr ~updatable:true "c_b" Dtype.Int;
      Schema.attr "c_c" (Dtype.Str 8);
    ]

let schema_b =
  Schema.make [ Schema.attr ~key:true "c_a" Dtype.Int; Schema.attr "c_d" Dtype.Int ]

type diff_case = {
  sel : Ast.select;
  rows_a : (int option * string) list;  (** c_b (NULL when None), c_c; c_a is the index. *)
  rows_b : int list;  (** c_d; c_a is the index. *)
  bind_x : bool;  (** bind :p_x (leaving :p_y always unbound). *)
}

let diff_gen =
  let open QCheck.Gen in
  let lit =
    oneof
      [
        map (fun n -> Ast.Lit (Value.Int n)) (int_range (-3) 20);
        oneofl
          [
            Ast.Lit (Value.Str "ab");
            Ast.Lit (Value.Str "ba");
            Ast.Lit (Value.Str "x");
            Ast.Lit Value.Null;
          ];
        oneofl [ Ast.Param "p_x"; Ast.Param "p_y" ];
      ]
  in
  let col =
    let name = oneofl [ "c_a"; "c_b"; "c_c"; "c_d" ] in
    oneof
      [
        map (fun c -> Ast.Col (None, c)) name;
        map (fun c -> Ast.Col (Some "t_a", c)) name;
      ]
  in
  let rec expr d =
    if d = 0 then oneof [ lit; col ]
    else
      frequency
        [
          (3, oneof [ lit; col ]);
          ( 4,
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl
                 [
                   Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Eq; Ast.Neq; Ast.Lt;
                   Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or;
                 ])
              (expr (d - 1)) (expr (d - 1)) );
          (1, map (fun e -> Ast.Unop (Ast.Not, e)) (expr (d - 1)));
          (1, map (fun e -> Ast.Unop (Ast.Neg, e)) (expr (d - 1)));
          (1, map (fun e -> Ast.Is_null e) (expr (d - 1)));
          (1, map (fun e -> Ast.Is_not_null e) (expr (d - 1)));
          ( 1,
            let* e = expr (d - 1) in
            let* cands = list_size (int_range 1 3) (expr (d - 1)) in
            return (Ast.In (e, cands)) );
          ( 1,
            let* e = expr (d - 1) in
            let* lo = expr (d - 1) in
            let* hi = expr (d - 1) in
            return (Ast.Between (e, lo, hi)) );
          ( 1,
            let* e = expr (d - 1) in
            let* pat = oneofl [ "a%"; "%b%"; "_x"; "" ] in
            return (Ast.Like (e, pat)) );
          ( 1,
            let* c = expr (d - 1) in
            let* th = expr (d - 1) in
            let* el = opt (expr (d - 1)) in
            return (Ast.Case ([ (c, th) ], el)) );
        ]
  in
  let agg =
    let* a = oneofl [ Ast.Sum; Ast.Count; Ast.Min; Ast.Max; Ast.Avg ] in
    let* e = oneof [ return None; map Option.some (expr 1) ] in
    return (Ast.Agg (a, e))
  in
  let item =
    frequency
      [
        (1, return Ast.Star);
        (4, map (fun e -> Ast.Item (e, None)) (expr 2));
        (2, map (fun e -> Ast.Item (e, None)) agg);
      ]
  in
  let* items = list_size (int_range 1 3) item in
  let* from =
    oneofl
      [
        [ ("t_a", None) ];
        [ ("t_a", Some "a") ];
        [ ("t_b", None) ];
        [ ("t_a", None); ("t_b", Some "b") ];
      ]
  in
  let* where = opt (expr 2) in
  let* group_by =
    list_size (int_range 0 2)
      (map (fun c -> Ast.Col (None, c)) (oneofl [ "c_a"; "c_b"; "c_c"; "c_d" ]))
  in
  let* having =
    opt (oneof [ expr 1; map (fun e -> Ast.Binop (Ast.Gt, e, Ast.Lit (Value.Int 2))) agg ])
  in
  let* order_by = list_size (int_range 0 2) (pair (expr 1) (oneofl [ Ast.Asc; Ast.Desc ])) in
  let* distinct = bool in
  let* limit = opt (pair (int_range 0 10) (int_range 0 5)) in
  let* rows_a =
    list_size (int_range 0 8) (pair (opt (int_range 0 20)) (oneofl [ "ab"; "ba"; "x"; "yz" ]))
  in
  let* rows_b = list_size (int_range 0 6) (int_range 0 20) in
  let* bind_x = bool in
  return
    {
      sel = { Ast.distinct; items; from; where; group_by; having; order_by; limit };
      rows_a;
      rows_b;
      bind_x;
    }

let print_case case =
  Printf.sprintf "%s\n(t_a: %d rows, t_b: %d rows, p_x %s)"
    (Pp.statement_to_string (Ast.Select case.sel))
    (List.length case.rows_a) (List.length case.rows_b)
    (if case.bind_x then "bound" else "unbound")

let setup_diff_db case =
  let db = Database.create () in
  let ta = Database.create_table db "t_a" schema_a in
  List.iteri
    (fun i (b, c) ->
      let bv = match b with Some n -> Value.Int n | None -> Value.Null in
      ignore (Table.insert ta (Tuple.make schema_a [ Value.Int i; bv; Value.Str c ])))
    case.rows_a;
  let tb = Database.create_table db "t_b" schema_b in
  List.iteri
    (fun i d -> ignore (Table.insert tb (Tuple.make schema_b [ Value.Int i; Value.Int d ])))
    case.rows_b;
  db

let run_outcome f = match f () with r -> Ok r | exception e -> Error (Printexc.to_string e)

let qcheck_compiled_matches_interpreter =
  QCheck.Test.make ~name:"compiled plan = interpreter (random queries)" ~count:500
    (QCheck.make diff_gen ~print:print_case)
    (fun case ->
      let params = if case.bind_x then [ ("p_x", Value.Int 5) ] else [] in
      (* Separate databases so buffer-pool state cannot leak between runs. *)
      let interp =
        let db = setup_diff_db case in
        run_outcome (fun () -> Executor.query db ~params case.sel)
      in
      let compiled =
        let db = setup_diff_db case in
        run_outcome (fun () -> Plan.execute ~params (Plan.prepare db case.sel))
      in
      match (interp, compiled) with
      | Error _, Error _ -> true
      | Ok a, Ok b ->
        if a.Executor.columns = b.Executor.columns && a.Executor.rows = b.Executor.rows then
          true
        else
          QCheck.Test.fail_reportf "results differ:\ninterpreter:\n%a\ncompiled:\n%a"
            Executor.pp_result a Executor.pp_result b
      | Ok _, Error e ->
        QCheck.Test.fail_reportf "compiled failed where interpreter succeeded: %s" e
      | Error e, Ok _ ->
        QCheck.Test.fail_reportf "interpreter failed where compiled succeeded: %s" e)

(* The same differential over parsed SQL text through the public entry
   points: query_string (prepared cache) vs query (interpreter). *)
let test_query_string_matches_query () =
  let case =
    {
      sel = Ast.select_all "t_a";
      rows_a = [ (Some 1, "ab"); (None, "ba"); (Some 7, "x") ];
      rows_b = [];
      bind_x = false;
    }
  in
  let db = setup_diff_db case in
  List.iter
    (fun src ->
      let via_cache = Executor.query_string db src in
      let via_interp = Executor.query db (Parser.parse_select src) in
      Alcotest.(check bool) (Printf.sprintf "agree on %s" src) true
        (via_cache.Executor.columns = via_interp.Executor.columns
        && via_cache.Executor.rows = via_interp.Executor.rows))
    [
      "SELECT * FROM t_a";
      "SELECT c_a, c_b FROM t_a WHERE c_b IS NOT NULL ORDER BY c_a DESC";
      "SELECT c_c, COUNT(*), SUM(c_b) FROM t_a GROUP BY c_c ORDER BY c_c";
      "SELECT DISTINCT c_c FROM t_a";
      "SELECT c_a FROM t_a WHERE c_c LIKE '%b' LIMIT 1";
    ]

(* ------------------------------------------------------------------ *)
(* Prepared-statement cache behaviour.                                 *)
(* ------------------------------------------------------------------ *)

let sales_schema =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~key:true "day" Dtype.Int;
      Schema.attr ~updatable:true "total_sales" Dtype.Int;
    ]

let sales_db () =
  let db = Database.create () in
  let t = Database.create_table db "DailySales" sales_schema in
  List.iter
    (fun (c, d, s) ->
      ignore (Table.insert t (Tuple.make sales_schema [ Value.Str c; Value.Int d; Value.Int s ])))
    [
      ("San Jose", 1, 10000); ("San Jose", 2, 1500); ("Berkeley", 1, 12000);
      ("Novato", 1, 8000);
    ];
  db

let test_cache_hits_and_misses () =
  let db = sales_db () in
  let sql = "SELECT SUM(total_sales) FROM DailySales WHERE city = :city" in
  let run () =
    Executor.query_string db ~params:[ ("city", Value.Str "San Jose") ] sql
  in
  let r1 = run () in
  let s = Prepared.stats db in
  check Alcotest.int "first run misses" 1 s.Prepared.misses;
  check Alcotest.int "first run hits" 0 s.Prepared.hits;
  let r2 = run () in
  check Alcotest.int "second run hits" 1 (Prepared.stats db).Prepared.hits;
  check Alcotest.int "still one plan" 1 (Prepared.size db);
  Alcotest.(check bool) "same answer" true (Executor.result_equal r1 r2);
  (match r1.Executor.rows with
  | [ [ Value.Int 11500 ] ] -> ()
  | _ -> Alcotest.fail "wrong sum")

let test_cache_invalidation_on_index_ddl () =
  let db = sales_db () in
  let sql = "SELECT total_sales FROM DailySales WHERE city = 'San Jose' ORDER BY day" in
  let p1 = Prepared.prepare db sql in
  Alcotest.(check bool) "starts as a full scan" true (Plan.full_scan_only p1);
  (* Index DDL bumps the table version: the cached plan must not survive. *)
  Table.create_index (Database.table_exn db "DailySales") ~name:"by_city" [ "city" ];
  Alcotest.(check bool) "old plan invalidated" false (Plan.valid db p1);
  let inv_before = (Prepared.stats db).Prepared.invalidations in
  let r = Executor.query_string db sql in
  check Alcotest.int "revalidation rejected the entry" (inv_before + 1)
    (Prepared.stats db).Prepared.invalidations;
  let p2 = Prepared.prepare db sql in
  Alcotest.(check bool) "new plan uses the index" false (Plan.full_scan_only p2);
  Alcotest.(check bool) "explains differ" true (Plan.explain p1 <> Plan.explain p2);
  (match r.Executor.rows with
  | [ [ Value.Int 10000 ]; [ Value.Int 1500 ] ] -> ()
  | _ -> Alcotest.fail "index plan returned wrong rows")

let test_cache_invalidation_on_drop_recreate () =
  let db = Database.create () in
  let s = Schema.make [ Schema.attr ~key:true "a" Dtype.Int ] in
  let t = Database.create_table db "t" s in
  ignore (Table.insert t (Tuple.make s [ Value.Int 1 ]));
  ignore (Table.insert t (Tuple.make s [ Value.Int 2 ]));
  let sql = "SELECT a FROM t ORDER BY a" in
  let r1 = Executor.query_string db sql in
  check Alcotest.int "old table rows" 2 (List.length r1.Executor.rows);
  Database.drop_table db "t";
  let t' = Database.create_table db "t" s in
  ignore (Table.insert t' (Tuple.make s [ Value.Int 7 ]));
  (* The cached plan still points at the dropped table's heap; serving it
     would silently read stale pages. *)
  let r2 = Executor.query_string db sql in
  (match r2.Executor.rows with
  | [ [ Value.Int 7 ] ] -> ()
  | _ -> Alcotest.fail "stale plan served after drop/recreate");
  Alcotest.(check bool) "invalidation counted" true
    ((Prepared.stats db).Prepared.invalidations >= 1)

let test_cache_lru_eviction () =
  let db = sales_db () in
  ignore (Prepared.cache ~capacity:2 db);
  ignore (Executor.query_string db "SELECT city FROM DailySales");
  ignore (Executor.query_string db "SELECT day FROM DailySales");
  ignore (Executor.query_string db "SELECT total_sales FROM DailySales");
  check Alcotest.int "capacity respected" 2 (Prepared.size db);
  (* The least-recently-used statement was the first one. *)
  let misses = (Prepared.stats db).Prepared.misses in
  ignore (Executor.query_string db "SELECT day FROM DailySales");
  check Alcotest.int "recent entry still cached" misses (Prepared.stats db).Prepared.misses;
  ignore (Executor.query_string db "SELECT city FROM DailySales");
  check Alcotest.int "evicted entry recompiled" (misses + 1) (Prepared.stats db).Prepared.misses

let test_cache_never_caches_failures () =
  let db = sales_db () in
  (try ignore (Executor.query_string db "SELECT FROM WHERE") with _ -> ());
  (try ignore (Executor.query_string db "SELECT * FROM Nope") with _ -> ());
  check Alcotest.int "no failed entries" 0 (Prepared.size db)

(* ------------------------------------------------------------------ *)
(* Physical I/O parity: compilation is CPU-only.                       *)
(* ------------------------------------------------------------------ *)

let io_db () =
  (* Small pages so the table spans many of them and access paths matter. *)
  let db = Database.create ~page_size:256 ~pool_capacity:8 () in
  let s =
    Schema.make
      [
        Schema.attr ~key:true "id" Dtype.Int;
        Schema.attr "grp" Dtype.Int;
        Schema.attr ~updatable:true "v" Dtype.Int;
      ]
  in
  let t = Database.create_table db "t" s in
  for i = 1 to 300 do
    ignore (Table.insert t (Tuple.make s [ Value.Int i; Value.Int (i mod 7); Value.Int (i * 3) ]))
  done;
  db

let io_parity ~name db select params =
  let plan = Plan.prepare db select in
  Database.drop_cache db;
  Database.reset_io_stats db;
  let via_interp = Executor.query db ~params select in
  let s1 = Database.io_stats db in
  Database.drop_cache db;
  Database.reset_io_stats db;
  let via_plan = Plan.execute ~params plan in
  let s2 = Database.io_stats db in
  Alcotest.(check bool) (name ^ ": same rows") true (Executor.result_equal via_interp via_plan);
  check Alcotest.int (name ^ ": same logical reads")
    s1.Vnl_storage.Buffer_pool.logical_reads s2.Vnl_storage.Buffer_pool.logical_reads;
  check Alcotest.int (name ^ ": same physical reads") s1.Vnl_storage.Buffer_pool.misses
    s2.Vnl_storage.Buffer_pool.misses

let test_io_parity_full_scan () =
  let db = io_db () in
  io_parity ~name:"group-by scan" db
    (Parser.parse_select "SELECT grp, SUM(v) FROM t GROUP BY grp")
    []

let test_io_parity_index_scan () =
  let db = io_db () in
  Table.create_index (Database.table_exn db "t") ~name:"by_grp" [ "grp" ];
  io_parity ~name:"index probe" db
    (Parser.parse_select "SELECT SUM(v) FROM t WHERE grp = :g")
    [ ("g", Value.Int 3) ]

let test_io_parity_key_probe () =
  let db = io_db () in
  io_parity ~name:"unique-key probe" db
    (Parser.parse_select "SELECT v FROM t WHERE id = 123")
    []

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_compiled_matches_interpreter;
    Alcotest.test_case "query_string = query on SQL text" `Quick test_query_string_matches_query;
    Alcotest.test_case "cache hit/miss accounting" `Quick test_cache_hits_and_misses;
    Alcotest.test_case "index DDL invalidates cached plan" `Quick
      test_cache_invalidation_on_index_ddl;
    Alcotest.test_case "drop/recreate invalidates cached plan" `Quick
      test_cache_invalidation_on_drop_recreate;
    Alcotest.test_case "LRU eviction at capacity" `Quick test_cache_lru_eviction;
    Alcotest.test_case "failures are never cached" `Quick test_cache_never_caches_failures;
    Alcotest.test_case "I/O parity: full scan" `Quick test_io_parity_full_scan;
    Alcotest.test_case "I/O parity: index scan" `Quick test_io_parity_index_scan;
    Alcotest.test_case "I/O parity: key probe" `Quick test_io_parity_key_probe;
  ]
