(* Unit and property tests for the B+-tree index. *)

module Value = Vnl_relation.Value
module Bptree = Vnl_index.Bptree

let check = Alcotest.check

let k i = [ Value.Int i ]

let test_empty () =
  let t = Bptree.create () in
  check Alcotest.int "length" 0 (Bptree.length t);
  Alcotest.(check bool) "find" true (Bptree.find t (k 1) = None);
  check Alcotest.int "height" 1 (Bptree.height t)

let test_insert_find () =
  let t = Bptree.create () in
  Bptree.insert t (k 1) "a";
  Bptree.insert t (k 2) "b";
  check (Alcotest.option Alcotest.string) "find 1" (Some "a") (Bptree.find t (k 1));
  check (Alcotest.option Alcotest.string) "find 2" (Some "b") (Bptree.find t (k 2));
  check (Alcotest.option Alcotest.string) "find 3" None (Bptree.find t (k 3))

let test_replace () =
  let t = Bptree.create () in
  Bptree.insert t (k 1) "a";
  Bptree.insert t (k 1) "b";
  check Alcotest.int "length" 1 (Bptree.length t);
  check (Alcotest.option Alcotest.string) "replaced" (Some "b") (Bptree.find t (k 1))

let test_many_ordered_inserts () =
  let t = Bptree.create ~order:4 () in
  for i = 1 to 1000 do
    Bptree.insert t (k i) i
  done;
  check Alcotest.int "length" 1000 (Bptree.length t);
  Alcotest.(check bool) "height grew" true (Bptree.height t > 1);
  for i = 1 to 1000 do
    if Bptree.find t (k i) <> Some i then Alcotest.failf "missing key %d" i
  done;
  (match Bptree.check_invariants t with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "invariant: %s" e)

let test_reverse_inserts () =
  let t = Bptree.create ~order:4 () in
  for i = 1000 downto 1 do
    Bptree.insert t (k i) i
  done;
  check (Alcotest.list Alcotest.int) "sorted iteration" (List.init 1000 (fun i -> i + 1))
    (List.map snd (Bptree.to_list t))

let test_remove () =
  let t = Bptree.create ~order:4 () in
  for i = 1 to 100 do
    Bptree.insert t (k i) i
  done;
  for i = 1 to 100 do
    if i mod 2 = 0 then Alcotest.(check bool) "removed" true (Bptree.remove t (k i))
  done;
  check Alcotest.int "length" 50 (Bptree.length t);
  Alcotest.(check bool) "remove absent" false (Bptree.remove t (k 2));
  for i = 1 to 100 do
    let expected = if i mod 2 = 0 then None else Some i in
    if Bptree.find t (k i) <> expected then Alcotest.failf "wrong lookup for %d" i
  done;
  match Bptree.check_invariants t with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

let test_range () =
  let t = Bptree.create ~order:8 () in
  for i = 1 to 50 do
    Bptree.insert t (k i) i
  done;
  let seen = ref [] in
  Bptree.range t ~lo:(k 10) ~hi:(k 20) (fun _ v -> seen := v :: !seen);
  check (Alcotest.list Alcotest.int) "range" (List.init 11 (fun i -> i + 10)) (List.rev !seen)

let test_composite_keys () =
  let t = Bptree.create () in
  let key city date = [ Value.Str city; Value.Date date ] in
  Bptree.insert t (key "San Jose" 19961014) 1;
  Bptree.insert t (key "San Jose" 19961015) 2;
  Bptree.insert t (key "Berkeley" 19961014) 3;
  check (Alcotest.option Alcotest.int) "exact probe" (Some 2)
    (Bptree.find t (key "San Jose" 19961015));
  check Alcotest.int "length" 3 (Bptree.length t)

let qcheck_vs_map =
  let open QCheck in
  let ops =
    Gen.(
      list_size (0 -- 500)
        (frequency
           [
             (5, map (fun i -> `Insert i) (int_range 0 100));
             (3, map (fun i -> `Remove i) (int_range 0 100));
             (2, map (fun i -> `Find i) (int_range 0 100));
           ]))
  in
  Test.make ~name:"bptree agrees with Map reference" ~count:200 (make ops) (fun ops ->
      let t = Bptree.create ~order:4 () in
      let model = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Insert i ->
            Bptree.insert t (k i) (i * 10);
            Hashtbl.replace model i (i * 10)
          | `Remove i ->
            let was = Bptree.remove t (k i) in
            let expected = Hashtbl.mem model i in
            Hashtbl.remove model i;
            if was <> expected then ok := false
          | `Find i ->
            if Bptree.find t (k i) <> Hashtbl.find_opt model i then ok := false)
        ops;
      !ok
      && Bptree.length t = Hashtbl.length model
      && (match Bptree.check_invariants t with Ok _ -> true | Error _ -> false)
      &&
      let sorted_model =
        List.sort compare (Hashtbl.fold (fun key v acc -> (key, v) :: acc) model [])
      in
      let tree_list = List.map (fun (key, v) -> (match key with [ Value.Int i ] -> i | _ -> -1), v)
          (Bptree.to_list t)
      in
      tree_list = sorted_model)

let test_insert_batch_basic () =
  let t = Bptree.create ~order:4 () in
  (* Seed sequentially, then pour in a large sorted batch that forces leaf
     fan-out and root growth. *)
  for i = 0 to 49 do
    Bptree.insert t (k (2 * i)) (2 * i)
  done;
  let batch = Array.init 200 (fun i -> (k ((2 * i) + 1), (2 * i) + 1)) in
  Bptree.insert_batch t batch;
  check Alcotest.int "length" 250 (Bptree.length t);
  (match Bptree.check_invariants t with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "invariant: %s" e);
  for i = 0 to 99 do
    if Bptree.find t (k i) <> Some i then Alcotest.failf "missing key %d" i
  done

let test_insert_batch_replaces () =
  let t = Bptree.create ~order:4 () in
  for i = 0 to 9 do
    Bptree.insert t (k i) 0
  done;
  Bptree.insert_batch t (Array.init 10 (fun i -> (k i, i * 10)));
  check Alcotest.int "length unchanged" 10 (Bptree.length t);
  check (Alcotest.option Alcotest.int) "payload replaced" (Some 70) (Bptree.find t (k 7))

let test_insert_batch_rejects_unsorted () =
  let t = Bptree.create ~order:4 () in
  Alcotest.check_raises "unsorted" (Invalid_argument "Bptree.insert_batch: keys not sorted or not distinct")
    (fun () -> Bptree.insert_batch t [| (k 2, 2); (k 1, 1) |]);
  Alcotest.check_raises "duplicate" (Invalid_argument "Bptree.insert_batch: keys not sorted or not distinct")
    (fun () -> Bptree.insert_batch t [| (k 1, 1); (k 1, 2) |])

let qcheck_insert_batch_vs_sequential =
  (* The batch insert may shape the tree differently, but its contents,
     length, and invariants must match per-key insertion exactly. *)
  QCheck.Test.make ~name:"insert_batch = sequential inserts" ~count:200
    QCheck.(pair (list_of_size Gen.(0 -- 150) (int_range 0 300)) (list_of_size Gen.(0 -- 150) (int_range 0 300)))
    (fun (seed, batch) ->
      let batch = List.sort_uniq compare batch in
      let seq = Bptree.create ~order:4 () and bulk = Bptree.create ~order:4 () in
      List.iter
        (fun i ->
          Bptree.insert seq (k i) (i * 3);
          Bptree.insert bulk (k i) (i * 3))
        seed;
      List.iter (fun i -> Bptree.insert seq (k i) (i * 7)) batch;
      Bptree.insert_batch bulk (Array.of_list (List.map (fun i -> (k i, i * 7)) batch));
      Bptree.to_list seq = Bptree.to_list bulk
      && Bptree.length seq = Bptree.length bulk
      && match Bptree.check_invariants bulk with Ok _ -> true | Error _ -> false)

let qcheck_range_equals_filter =
  QCheck.Test.make ~name:"pruned range scan = filtered iteration" ~count:150
    QCheck.(triple (list_of_size Gen.(0 -- 200) (int_range 0 500)) (int_range 0 500) (int_range 0 500))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let t = Bptree.create ~order:4 () in
      List.iter (fun key -> Bptree.insert t (k key) key) keys;
      let via_range = ref [] in
      Bptree.range t ~lo:(k lo) ~hi:(k hi) (fun _ v -> via_range := v :: !via_range);
      let via_filter =
        List.filter (fun (key, _) ->
            match key with [ Value.Int x ] -> x >= lo && x <= hi | _ -> false)
          (Bptree.to_list t)
        |> List.map snd
      in
      List.rev !via_range = via_filter)

let suite =
  [
    Alcotest.test_case "empty tree" `Quick test_empty;
    Alcotest.test_case "insert/find" `Quick test_insert_find;
    Alcotest.test_case "insert replaces" `Quick test_replace;
    Alcotest.test_case "1000 ordered inserts" `Quick test_many_ordered_inserts;
    Alcotest.test_case "reverse inserts iterate sorted" `Quick test_reverse_inserts;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "range scan" `Quick test_range;
    Alcotest.test_case "composite keys" `Quick test_composite_keys;
    Alcotest.test_case "insert_batch splits and grows" `Quick test_insert_batch_basic;
    Alcotest.test_case "insert_batch replaces payloads" `Quick test_insert_batch_replaces;
    Alcotest.test_case "insert_batch rejects unsorted input" `Quick
      test_insert_batch_rejects_unsorted;
    QCheck_alcotest.to_alcotest qcheck_insert_batch_vs_sequential;
    QCheck_alcotest.to_alcotest qcheck_vs_map;
    QCheck_alcotest.to_alcotest qcheck_range_equals_filter;
  ]
