(* Test entry point aggregating all suites. *)

let () =
  Alcotest.run "vnl"
    [
      ("util", Test_util.suite);
      ("epoch", Test_epoch.suite);
      ("relation", Test_relation.suite);
      ("storage", Test_storage.suite);
      ("index", Test_index.suite);
      ("sql", Test_sql.suite);
      ("sql-fuzz", Test_sql_fuzz.suite);
      ("query", Test_query.suite);
      ("plan", Test_plan.suite);
      ("indexing", Test_indexing.suite);
      ("core", Test_core.suite);
      ("core-props", Test_core_props.suite);
      ("rewrite", Test_rewrite.suite);
      ("twovnl", Test_twovnl.suite);
      ("batch", Test_batch.suite);
      ("txn", Test_txn.suite);
      ("properties", Test_props.suite);
      ("warehouse", Test_warehouse.suite);
      ("workload", Test_workload.suite);
      ("recovery", Test_recovery.suite);
      ("faults", Test_faults.suite);
      ("obs", Test_obs.suite);
      ("nvnl", Test_nvnl.suite);
      ("pipeline", Test_pipeline.suite);
      ("parallel", Test_parallel.suite);
      ("parallel-stress", Test_parallel_stress.suite);
      ("shard", Test_shard.suite);
      ("net", Test_net.suite);
      ("catalog-evolve", Test_catalog_evolve.suite);
    ]
