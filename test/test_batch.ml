(* Differential tests for the batched maintenance path: Batch.apply must be
   a pure performance change.  Two warehouses receive the same logical
   operation stream — one op at a time on the first, as one Batch.apply per
   transaction on the second — and after every commit the physical page
   bytes and the reader-visible state of every live session must agree. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Schema = Vnl_relation.Schema
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Disk = Vnl_storage.Disk
module Buffer_pool = Vnl_storage.Buffer_pool
module Heap_file = Vnl_storage.Heap_file
module Twovnl = Vnl_core.Twovnl
module Batch = Vnl_core.Batch

let check = Alcotest.check

(* Self-contained xorshift so the streams are stable across stdlib
   versions. *)
let make_rng seed =
  let state = ref (seed * 2654435761 land 0x3FFFFFFF) in
  if !state = 0 then state := 0x9E3779B9;
  fun bound ->
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) in
    let x = x land 0x3FFFFFFF in
    state := x;
    x mod bound

let cities = [| "San Jose"; "Berkeley"; "Novato"; "Fresno"; "Oakland"; "Davis" |]

let product_lines = [| "golf equip"; "racquetball"; "rollerblades"; "tennis" |]

let nkeys = Array.length cities * Array.length product_lines * 4

let key_of_id id =
  let c = id mod Array.length cities in
  let p = id / Array.length cities mod Array.length product_lines in
  let d = id / (Array.length cities * Array.length product_lines) in
  [
    Value.Str cities.(c);
    Value.Str "CA";
    Value.Str product_lines.(p);
    Value.date_of_mdy 10 (13 + d) 96;
  ]

let sales_index = 4 (* total_sales in the base schema *)

let mk_wh n =
  let db = Database.create ~page_size:512 ~pool_capacity:8 () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ~n ~name:"T" Fixtures.daily_sales);
  (db, wh)

type gop = G_insert of int * int | G_update of int * int | G_delete of int

(* Generate one transaction's operation stream against the logical model.
   [`Dead] keys are logically deleted records still physically present (no
   GC runs here), so inserting over one exercises Table 2 row 1 and a
   subsequent delete the Table 4 row 2 correction.  The single documented
   divergence — delete of a key fresh-inserted in the same transaction,
   which the batch nets to nothing while per-op application transiently
   occupies a slot — is kept out of the stream. *)
let gen_batch rng model size =
  let sim = Hashtbl.copy model in
  let fresh = Hashtbl.create 8 in
  let state k = Option.value (Hashtbl.find_opt sim k) ~default:`Absent in
  let ops = ref [] in
  let emitted = ref 0 in
  while !emitted < size do
    let k = rng nkeys in
    let v = 100 + rng 10_000 in
    (match state k with
    | `Absent ->
      Hashtbl.replace fresh k ();
      Hashtbl.replace sim k `Live;
      ops := G_insert (k, v) :: !ops;
      incr emitted
    | `Dead ->
      Hashtbl.replace sim k `Live;
      ops := G_insert (k, v) :: !ops;
      incr emitted
    | `Live ->
      if rng 3 = 0 && not (Hashtbl.mem fresh k) then begin
        Hashtbl.replace sim k `Dead;
        ops := G_delete k :: !ops;
        incr emitted
      end
      else begin
        ops := G_update (k, v) :: !ops;
        incr emitted
      end)
  done;
  (List.rev !ops, sim)

let apply_per_op m ops =
  List.iter
    (fun op ->
      match op with
      | G_insert (k, v) ->
        Twovnl.Txn.insert m ~table:"T" (key_of_id k @ [ Value.Int v ])
      | G_update (k, v) ->
        if
          not
            (Twovnl.Txn.update_by_key m ~table:"T" ~key:(key_of_id k)
               ~set:[ ("total_sales", Value.Int v) ])
        then Alcotest.fail "per-op update missed a live key"
      | G_delete k ->
        if not (Twovnl.Txn.delete_by_key m ~table:"T" ~key:(key_of_id k)) then
          Alcotest.fail "per-op delete missed a live key")
    ops

let to_batch_ops ops =
  List.map
    (fun op ->
      match op with
      | G_insert (k, v) ->
        Batch.Insert (Tuple.make Fixtures.daily_sales (key_of_id k @ [ Value.Int v ]))
      | G_update (k, v) -> Batch.Update (key_of_id k, [ (sales_index, Value.Int v) ])
      | G_delete k -> Batch.Delete (key_of_id k))
    ops

let flush db = Buffer_pool.flush_all (Database.pool db)

let check_bytes_identical ctx db_a db_b =
  flush db_a;
  flush db_b;
  let da = Database.disk db_a and db' = Database.disk db_b in
  check Alcotest.int (ctx ^ ": page counts") (Disk.page_count da) (Disk.page_count db');
  for pid = 0 to Disk.page_count da - 1 do
    if not (Bytes.equal (Disk.read da pid) (Disk.read db' pid)) then
      Alcotest.fail (Printf.sprintf "%s: page %d bytes differ" ctx pid)
  done

let sorted_rows rows = List.sort Tuple.compare rows

let check_readers_agree ctx wh_a wh_b sessions =
  List.filter
    (fun (sa, sb) ->
      let va = Twovnl.Session.is_valid wh_a sa and vb = Twovnl.Session.is_valid wh_b sb in
      check Alcotest.bool (ctx ^ ": session validity agrees") va vb;
      if va then begin
        let ra = sorted_rows (Twovnl.Session.read_table wh_a sa "T")
        and rb = sorted_rows (Twovnl.Session.read_table wh_b sb "T") in
        check Fixtures.base_testable
          (Printf.sprintf "%s: session at vn %d" ctx (Twovnl.Session.vn sa))
          ra rb
      end;
      va)
    sessions

let check_keyed_lookups_agree ctx wh_a wh_b =
  let ta = Twovnl.table (Twovnl.handle_exn wh_a "T")
  and tb = Twovnl.table (Twovnl.handle_exn wh_b "T") in
  for k = 0 to nkeys - 1 do
    let key = key_of_id k in
    match (Table.find_by_key ta key, Table.find_by_key tb key) with
    | None, None -> ()
    | Some (ra, va), Some (rb, vb) ->
      if not (Heap_file.rid_equal ra rb) then
        Alcotest.fail (Printf.sprintf "%s: rid differs for key %d" ctx k);
      if not (Tuple.equal va vb) then
        Alcotest.fail (Printf.sprintf "%s: tuple differs for key %d" ctx k)
    | Some _, None | None, Some _ ->
      Alcotest.fail (Printf.sprintf "%s: key %d present on one side only" ctx k)
  done

let run_differential ~n ~seed ~txns ~batch_size () =
  let rng = make_rng seed in
  let db_a, wh_a = mk_wh n and db_b, wh_b = mk_wh n in
  let model = Hashtbl.create nkeys in
  let sessions = ref [ (Twovnl.Session.begin_ wh_a, Twovnl.Session.begin_ wh_b) ] in
  for txn = 1 to txns do
    let ops, sim = gen_batch rng model batch_size in
    let ma = Twovnl.Txn.begin_ wh_a in
    apply_per_op ma ops;
    Twovnl.Txn.commit ma;
    let mb = Twovnl.Txn.begin_ wh_b in
    let outcome = Twovnl.Txn.apply_batch mb ~table:"T" (to_batch_ops ops) in
    Twovnl.Txn.commit mb;
    check Alcotest.int "batch saw every logical op" (List.length ops)
      outcome.Batch.logical_ops;
    Hashtbl.reset model;
    Hashtbl.iter (Hashtbl.replace model) sim;
    let ctx = Printf.sprintf "n=%d seed=%d txn=%d" n seed txn in
    check_bytes_identical ctx db_a db_b;
    sessions := check_readers_agree ctx wh_a wh_b !sessions;
    check_keyed_lookups_agree ctx wh_a wh_b;
    sessions := (Twovnl.Session.begin_ wh_a, Twovnl.Session.begin_ wh_b) :: !sessions
  done

let test_differential_2vnl () =
  List.iter (fun seed -> run_differential ~n:2 ~seed ~txns:6 ~batch_size:40 ()) [ 1; 7; 42 ]

let test_differential_nvnl () =
  (* n = 4: at least three version slots, so push_back/shift_forward chains
     are exercised across several overlapping transactions. *)
  List.iter (fun seed -> run_differential ~n:4 ~seed ~txns:8 ~batch_size:30 ()) [ 3; 11 ]

(* Directed corner: insert over an older transaction's logical delete, then
   delete again in the same batch — the Table 4 row 2 correction must
   restore the deleted record, not physically remove it, exactly as the
   per-op path does. *)
let test_insert_over_delete_then_delete () =
  List.iter
    (fun n ->
      let db_a, wh_a = mk_wh n and db_b, wh_b = mk_wh n in
      let key = key_of_id 0 in
      let seed_ops = [ G_insert (0, 500); G_insert (1, 700) ] in
      let del_ops = [ G_delete 0 ] in
      let corner = [ G_insert (0, 900); G_delete 0 ] in
      List.iter
        (fun (wh, apply) ->
          List.iter
            (fun ops ->
              let m = Twovnl.Txn.begin_ wh in
              apply m ops;
              Twovnl.Txn.commit m)
            [ seed_ops; del_ops; corner ])
        [
          (wh_a, apply_per_op);
          (wh_b, fun m ops -> ignore (Twovnl.Txn.apply_batch m ~table:"T" (to_batch_ops ops)));
        ];
      check_bytes_identical (Printf.sprintf "corner n=%d" n) db_a db_b;
      let s = Twovnl.Session.begin_ wh_b in
      let live = Twovnl.Session.read_table wh_b s "T" in
      check Alcotest.int "key 0 stays logically deleted" 1 (List.length live);
      let tb = Twovnl.table (Twovnl.handle_exn wh_b "T") in
      Alcotest.(check bool) "record physically present (history kept)" true
        (Table.find_by_key tb key <> None))
    [ 2; 4 ]

let test_net_effect_folding () =
  let _db, wh = mk_wh 2 in
  let m = Twovnl.Txn.begin_ wh in
  let outcome =
    Twovnl.Txn.apply_batch m ~table:"T"
      (to_batch_ops [ G_insert (0, 100); G_update (0, 200); G_update (0, 300) ])
  in
  check Alcotest.int "one distinct key" 1 outcome.Batch.distinct_keys;
  check Alcotest.int "two ops folded away" 2 outcome.Batch.folded_ops;
  check Alcotest.int "single physical insert" 1 outcome.Batch.physical_inserts;
  check Alcotest.int "no physical updates" 0 outcome.Batch.physical_updates;
  Twovnl.Txn.commit m;
  let s = Twovnl.Session.begin_ wh in
  match sorted_rows (Twovnl.Session.read_table wh s "T") with
  | [ t ] -> check Alcotest.string "folded value" "300" (Value.to_string (Tuple.get t 4))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length l))

let test_rejected_batch_leaves_table_untouched () =
  let db, wh = mk_wh 2 in
  let m0 = Twovnl.Txn.begin_ wh in
  apply_per_op m0 [ G_insert (0, 100) ];
  Twovnl.Txn.commit m0;
  flush db;
  let before = Disk.read (Database.disk db) 0 in
  let m = Twovnl.Txn.begin_ wh in
  Alcotest.(check bool) "update of absent key rejected" true
    (try
       ignore
         (Twovnl.Txn.apply_batch m ~table:"T"
            (to_batch_ops [ G_update (0, 1); G_update (5, 2) ]));
       false
     with Invalid_argument _ -> true);
  ignore (Twovnl.Txn.abort m);
  flush db;
  Alcotest.(check bool) "no write reached the table" true
    (Bytes.equal before (Disk.read (Database.disk db) 0))

let test_key_assignment_rejected () =
  let _db, wh = mk_wh 2 in
  let m = Twovnl.Txn.begin_ wh in
  apply_per_op m [ G_insert (0, 100) ];
  Alcotest.(check bool) "assignment to key attribute rejected" true
    (try
       ignore
         (Twovnl.Txn.apply_batch m ~table:"T"
            [ Batch.Update (key_of_id 0, [ (0, Value.Str "Nowhere") ]) ]);
       false
     with Invalid_argument _ -> true);
  Twovnl.Txn.commit m

let suite =
  [
    Alcotest.test_case "differential vs per-op (2VNL)" `Quick test_differential_2vnl;
    Alcotest.test_case "differential vs per-op (4VNL)" `Quick test_differential_nvnl;
    Alcotest.test_case "insert-over-delete then delete corner" `Quick
      test_insert_over_delete_then_delete;
    Alcotest.test_case "net-effect folding outcome" `Quick test_net_effect_folding;
    Alcotest.test_case "rejected batch leaves table untouched" `Quick
      test_rejected_batch_leaves_table_untouched;
    Alcotest.test_case "key assignment rejected" `Quick test_key_assignment_rejected;
  ]
