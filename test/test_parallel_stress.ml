(* Free-running domain stress over the parallel read path.

   Where test_parallel replays chosen interleavings, these tests let real
   OCaml 5 domains race: QCheck properties over the concurrent buffer
   pool, a differential stress run checking every reader view against the
   full-history {!Oracle} at the session's version while maintenance
   applies random batches, the span-ring and counter regressions for
   {!Vnl_obs.Obs}, and a disk crash fired mid-refresh under live readers.

   Knobs (for the CI concurrency job):
     VNL_STRESS_DOMAINS  reader/worker domain count   (default 2)
     VNL_STRESS_REPS     differential stress repeats  (default 3) *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Disk = Vnl_storage.Disk
module Buffer_pool = Vnl_storage.Buffer_pool
module Database = Vnl_query.Database
module Twovnl = Vnl_core.Twovnl
module Recovery = Vnl_core.Recovery
module Batch = Vnl_core.Batch
module Obs = Vnl_obs.Obs
module Xorshift = Vnl_util.Xorshift
module Domain_pool = Vnl_util.Domain_pool

let check = Alcotest.check

(* Strict: a set-but-invalid knob is a configuration mistake (a typo'd CI
   matrix entry) and must fail loudly, not silently run at the default. *)
let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some raw -> (
    match int_of_string_opt (String.trim raw) with
    | Some n when n > 0 -> n
    | Some n ->
      Printf.ksprintf failwith "%s=%d: must be a positive integer" name n
    | None ->
      Printf.ksprintf failwith "%s=%S: not an integer (expected a positive count)" name raw)

let stress_domains = env_int "VNL_STRESS_DOMAINS" 2

let stress_reps = env_int "VNL_STRESS_REPS" 3

(* --- buffer pool under concurrent pin/mutate/flush -------------------- *)

(* Each domain performs a seed-derived stream of reads, read-modify-write
   increments, and flushes against a pool too small for the page set.
   Exclusive frame latches make the increments atomic, so no update may be
   lost; the counters must stay consistent; and the small capacity must
   force real evictions, i.e. the values must round-trip through disk. *)
let pool_scenario seed =
  let domains = 2 + (seed mod (max 1 (stress_domains - 1))) in
  let pages = 12 and capacity = 6 and ops = 400 in
  let disk = Disk.create () in
  let pool = Buffer_pool.create ~capacity disk in
  let pids = Array.init pages (fun _ -> Buffer_pool.alloc_page pool) in
  Buffer_pool.flush_all pool;
  let counts =
    Domain_pool.run ~domains (fun ~start rank ->
        start ();
        let rng = Xorshift.create ((seed * 31) + rank) in
        let incremented = ref 0 in
        for i = 1 to ops do
          let pid = pids.(Xorshift.int rng pages) in
          if Xorshift.chance rng 0.4 then begin
            Buffer_pool.with_page_mut pool pid (fun img ->
                Bytes.set_int32_be img 0 (Int32.add (Bytes.get_int32_be img 0) 1l));
            incr incremented
          end
          else
            ignore (Buffer_pool.with_page pool pid (fun img -> Bytes.get_int32_be img 0));
          if i mod 97 = 0 then Buffer_pool.flush_all pool
        done;
        !incremented)
  in
  let total_incr = Array.fold_left ( + ) 0 counts in
  let stored =
    Array.fold_left
      (fun acc pid ->
        acc + Int32.to_int (Buffer_pool.with_page pool pid (fun img -> Bytes.get_int32_be img 0)))
      0 pids
  in
  let s = Buffer_pool.stats pool in
  if stored <> total_incr then
    QCheck.Test.fail_reportf "lost updates: %d increments, %d stored" total_incr stored;
  if s.Buffer_pool.hits + s.Buffer_pool.misses <> s.Buffer_pool.logical_reads then
    QCheck.Test.fail_reportf "counter drift: %d hits + %d misses <> %d reads"
      s.Buffer_pool.hits s.Buffer_pool.misses s.Buffer_pool.logical_reads;
  if s.Buffer_pool.evictions = 0 then
    QCheck.Test.fail_reportf "capacity %d over %d pages never evicted" capacity pages;
  (* The platter agrees after a final flush: write-backs were not torn. *)
  Buffer_pool.flush_all pool;
  let on_disk =
    Array.fold_left
      (fun acc pid -> acc + Int32.to_int (Bytes.get_int32_be (Disk.read disk pid) 0))
      0 pids
  in
  if on_disk <> total_incr then
    QCheck.Test.fail_reportf "disk image disagrees: %d increments, %d on platter" total_incr
      on_disk;
  true

let qcheck_pool_concurrent =
  QCheck.Test.make ~name:"buffer pool: no lost updates under concurrent domains" ~count:6
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    pool_scenario

(* --- differential stress: readers vs maintenance ---------------------- *)

let table_name = "DailySales"

let tables = [ (table_name, Fixtures.daily_sales) ]

let groups =
  [
    ("San Jose", "CA", "golf equip");
    ("Berkeley", "CA", "racquetball");
    ("Novato", "CA", "rollerblades");
    ("Fresno", "CA", "tennis");
    ("Reno", "NV", "golf equip");
    ("Tahoe", "NV", "skiing");
    ("Seattle", "WA", "camping");
    ("Spokane", "WA", "running");
  ]

let key_of (city, state, pl) ~day =
  [ Value.Str city; Value.Str state; Value.Str pl; Value.date_of_mdy 10 day 96 ]

let row_of key sales = Tuple.make Fixtures.daily_sales (key @ [ Value.Int sales ])

let initial_rows () =
  List.concat_map
    (fun g -> List.map (fun day -> row_of (key_of g ~day) 1000) [ 13; 14 ])
    groups

(* Disjoint per-key roles per batch, tracked against a live-key set (same
   scheme as test_parallel.gen_batches, maintainer-side only). *)
let gen_batch rng ~live ~fresh_day =
  let pool = Array.of_list !live in
  Xorshift.shuffle rng pool;
  let n_upd = min (Array.length pool) (2 + Xorshift.int rng 4) in
  let n_del = min (Array.length pool - n_upd) (Xorshift.int rng 2) in
  let ops = ref [] in
  for i = 0 to n_upd - 1 do
    ops := Batch.Update (pool.(i), [ (4, Value.Int (Xorshift.int rng 50_000)) ]) :: !ops
  done;
  for i = n_upd to n_upd + n_del - 1 do
    ops := Batch.Delete pool.(i) :: !ops;
    live := List.filter (fun k -> k <> pool.(i)) !live
  done;
  let day = !fresh_day in
  incr fresh_day;
  List.iter
    (fun g ->
      if Xorshift.chance rng 0.4 then begin
        let key = key_of g ~day in
        ops := Batch.Insert (row_of key (Xorshift.int rng 9_000)) :: !ops;
        live := key :: !live
      end)
    groups;
  List.rev !ops

let oracle_op = function
  | Batch.Insert t -> Oracle.Ins t
  | Batch.Update (k, a) -> Oracle.Upd (k, a)
  | Batch.Delete k -> Oracle.Del k

(* One stress round: [readers] domains re-validating their sessions against
   the oracle while the maintenance domain commits [refreshes] random
   batches.  The oracle is guarded by a test-side mutex (it is shared test
   state, not part of the system under test); each transaction is recorded
   before it begins so any sessionVN a reader can hold is already in
   history. *)
let stress_round ~readers ~refreshes seed =
  let db = Database.create ~pool_capacity:64 () in
  let vnl = Twovnl.init db in
  ignore (Twovnl.register_table vnl ~name:table_name Fixtures.daily_sales);
  Twovnl.load_initial vnl table_name (initial_rows ());
  let oracle = Oracle.create Fixtures.daily_sales in
  Oracle.apply_txn oracle ~vn:1 (List.map (fun t -> Oracle.Ins t) (initial_rows ()));
  let oracle_mu = Mutex.create () in
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let failure_note = Atomic.make "" in
  let checks = Atomic.make 0 in
  let results =
    Domain_pool.run ~domains:(readers + 1) (fun ~start rank ->
        start ();
        if rank = 0 then begin
          let rng = Xorshift.create seed in
          let live =
            ref (List.concat_map (fun g -> [ key_of g ~day:13; key_of g ~day:14 ]) groups)
          in
          let fresh_day = ref 20 in
          for _ = 1 to refreshes do
            let ops = gen_batch rng ~live ~fresh_day in
            let m = Twovnl.Txn.begin_ vnl in
            Mutex.protect oracle_mu (fun () ->
                Oracle.apply_txn oracle ~vn:(Twovnl.Txn.vn m) (List.map oracle_op ops));
            ignore (Twovnl.Txn.apply_batch m ~table:table_name ops);
            Twovnl.Txn.commit m;
            ignore (Twovnl.collect_garbage vnl)
          done;
          Atomic.set stop true;
          0
        end
        else begin
          let expired = ref 0 in
          let validated_read () =
            let s = Twovnl.Session.begin_ vnl in
            (try
               let rows = Twovnl.Session.read_table vnl s table_name in
               let expected =
                 Mutex.protect oracle_mu (fun () ->
                     Oracle.visible oracle ~vn:(Twovnl.Session.vn s))
               in
               Atomic.incr checks;
               if not (Oracle.equal_views rows expected) then begin
                 Atomic.incr failures;
                 Atomic.set failure_note
                   (Printf.sprintf "session at vn %d saw %d rows, oracle has %d"
                      (Twovnl.Session.vn s) (List.length rows) (List.length expected))
               end
             with Twovnl.Expired _ -> incr expired);
            Twovnl.Session.end_ vnl s
          in
          while not (Atomic.get stop) do
            validated_read ()
          done;
          (* One post-quiescence read per reader: with maintenance stopped a
             fresh session cannot expire, so every run validates at least
             [readers] full views even on a single core. *)
          validated_read ();
          !expired
        end)
  in
  ignore results;
  if Atomic.get failures > 0 then
    Alcotest.failf "seed %d: %d inconsistent reads (%s)" seed (Atomic.get failures)
      (Atomic.get failure_note);
  Alcotest.(check bool) "readers performed validated reads" true (Atomic.get checks > 0)

let test_differential_stress () =
  for rep = 1 to stress_reps do
    stress_round ~readers:stress_domains ~refreshes:12 (1000 + rep)
  done

(* --- Obs under domains: the span-ring race regression ------------------ *)

(* Before spans were domain-local, concurrent with_span calls raced on one
   shared ring and its cursor: entries were overwritten or lost and the
   merged view could tear.  Now every domain owns a ring, so with room for
   all spans none may be lost, the merged order is the begin order, and the
   racy counters must add up exactly. *)
let test_obs_domains () =
  let domains = max 2 stress_domains and per_domain = 100 in
  let saved = !Obs.enabled in
  Obs.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Obs.enabled := saved;
      Obs.set_trace_capacity 256;
      Obs.reset ())
    (fun () ->
      Obs.set_trace_capacity (domains * per_domain);
      Obs.reset ();
      let counter = Obs.Registry.counter "stress.obs.ticks" in
      ignore
        (Domain_pool.run ~domains (fun ~start rank ->
             start ();
             for i = 1 to per_domain do
               Obs.with_span
                 (Printf.sprintf "stress.d%d" rank)
                 (fun () -> Obs.Counter.add counter 1);
               ignore i
             done));
      let spans = Obs.recent_spans () in
      check Alcotest.int "no span lost across domains" (domains * per_domain)
        (List.length spans);
      check Alcotest.int "no counter increment lost" (domains * per_domain)
        (Obs.Counter.get counter);
      let seqs = List.map (fun (s : Obs.Span.t) -> s.Obs.Span.seq) spans in
      Alcotest.(check bool) "merged spans come back in begin order" true
        (List.sort compare seqs = seqs);
      let distinct = List.sort_uniq compare seqs in
      check Alcotest.int "sequence numbers never collide" (List.length seqs)
        (List.length distinct))

(* --- crash mid-refresh with live readers ------------------------------- *)

(* The §7 story under parallelism: the platter dies partway through a
   maintenance flush while reader domains keep querying.  Readers must
   fail cleanly — session expiry or the injected Disk.Crash, never a
   Corrupt_page and never a malformed view — and after the dust settles
   the no-log repair must land the database on exactly pre or post. *)
let test_crash_under_readers () =
  let build_base () =
    let db = Database.create ~pool_capacity:4 () in
    let wh = Twovnl.init db in
    ignore (Twovnl.register_table wh ~name:table_name Fixtures.daily_sales);
    Twovnl.load_initial wh table_name (initial_rows ());
    Database.save db;
    Database.disk db
  in
  let visible vnl =
    let s = Twovnl.Session.begin_ vnl in
    let rows = Twovnl.Session.read_table vnl s table_name in
    Twovnl.Session.end_ vnl s;
    List.sort Tuple.compare rows
  in
  let base = build_base () in
  let rng = Xorshift.create 77 in
  let live = ref (List.concat_map (fun g -> [ key_of g ~day:13; key_of g ~day:14 ]) groups) in
  let ops = gen_batch rng ~live ~fresh_day:(ref 20) in
  (* Reference pre/post states from a fault-free twin. *)
  let pre, post =
    let d = Disk.clone base in
    let vnl, _ = Recovery.reopen ~pool_capacity:4 d ~tables in
    let pre = visible vnl in
    ignore
      (Recovery.run_maintenance (Twovnl.database vnl) vnl (fun txn ->
           ignore (Twovnl.Txn.apply_batch txn ~table:table_name ops)));
    (pre, visible vnl)
  in
  let d = Disk.clone base in
  let vnl, _ = Recovery.reopen ~pool_capacity:4 d ~tables in
  let stop = Atomic.make false in
  let bad = Atomic.make "" in
  let warmed = Atomic.make 0 in
  let results =
    Domain_pool.run ~domains:3 (fun ~start rank ->
        start ();
        if rank = 0 then begin
          (* Wait for each reader to serve once against the healthy disk, so
             "readers served during the refresh" cannot lose the race to the
             crash on a single core. *)
          while Atomic.get warmed < 2 do
            Domain.cpu_relax ()
          done;
          Disk.set_faults d { Disk.no_faults with crash_at_write = Some 4 };
          let crashed =
            try
              ignore
                (Recovery.run_maintenance (Twovnl.database vnl) vnl (fun txn ->
                     ignore (Twovnl.Txn.apply_batch txn ~table:table_name ops)));
              false
            with Disk.Crash _ -> true
          in
          Atomic.set stop true;
          if crashed then 1 else 0
        end
        else begin
          let served = ref 0 in
          let serve () =
            let s = Twovnl.Session.begin_ vnl in
            (try
               let rows = Twovnl.Session.read_table vnl s table_name in
               (* A successful read must be a well-formed base view. *)
               List.iter
                 (fun t ->
                   if Tuple.arity t <> 5 then Atomic.set bad "malformed base tuple")
                 rows;
               incr served
             with
            | Twovnl.Expired _ | Disk.Crash _ -> ()
            | Disk.Corrupt_page _ -> Atomic.set bad "Corrupt_page leaked to a reader"
            | e -> Atomic.set bad (Printexc.to_string e));
            Twovnl.Session.end_ vnl s
          in
          serve ();
          Atomic.incr warmed;
          while not (Atomic.get stop) do
            serve ()
          done;
          !served
        end)
  in
  check Alcotest.int "the injected crash fired" 1 results.(0);
  check Alcotest.string "readers failed cleanly" "" (Atomic.get bad);
  Alcotest.(check bool) "readers served during the refresh" true
    (results.(1) + results.(2) > 0);
  (* Reopen and repair from the surviving platter alone. *)
  Disk.clear_faults d;
  let vnl2, _ = Recovery.reopen ~pool_capacity:4 d ~tables in
  let state = visible vnl2 in
  let same = List.equal Tuple.equal in
  Alcotest.(check bool) "recovered to exactly pre or post" true
    (same state pre || same state post)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_pool_concurrent;
    Alcotest.test_case "differential stress: readers match oracle" `Quick
      test_differential_stress;
    Alcotest.test_case "obs: span ring and counters race-free on domains" `Quick
      test_obs_domains;
    Alcotest.test_case "crash mid-refresh under live readers" `Quick
      test_crash_under_readers;
  ]
