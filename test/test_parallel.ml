(* Deterministic interleaving harness over the parallel read path.

   Free-running domains (test_parallel_stress) can hit a racy interleaving
   but cannot replay it.  These tests drive reader and maintainer tasks
   through {!Vnl_util.Sched}: every page access and version-state access
   is a scheduling point, a seeded PRNG picks who advances, and the same
   seed always reproduces the same interleaving.  At each step readers
   check their whole view against the full-history {!Oracle} at their
   sessionVN — the paper's consistency guarantee (§3), stated exactly. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Executor = Vnl_query.Executor
module Disk = Vnl_storage.Disk
module Twovnl = Vnl_core.Twovnl
module Batch = Vnl_core.Batch
module Sched = Vnl_util.Sched
module Xorshift = Vnl_util.Xorshift

let check = Alcotest.check

let table_name = "DailySales"

(* --- the scheduler itself ------------------------------------------- *)

let test_sched_runs_all_steps () =
  let log = ref [] in
  let task name =
    ( name,
      fun () ->
        for i = 1 to 3 do
          log := (name, i) :: !log;
          Sched.yield ()
        done )
  in
  let trace = Sched.run ~seed:1 [ task "a"; task "b" ] in
  check Alcotest.int "every step of every task ran" 6 (List.length !log);
  List.iter
    (fun name ->
      check (Alcotest.list Alcotest.int)
        (name ^ " stepped in order")
        [ 1; 2; 3 ]
        (List.rev_map snd (List.filter (fun (n, _) -> n = name) !log)))
    [ "a"; "b" ];
  (* The trace is the schedule: replaying the seed replays it exactly. *)
  let log2 = ref [] in
  let task2 name = (name, fun () -> for i = 1 to 3 do log2 := (name, i) :: !log2; Sched.yield () done) in
  let trace2 = Sched.run ~seed:1 [ task2 "a"; task2 "b" ] in
  check (Alcotest.list Alcotest.string) "same seed, same trace" trace trace2;
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "same seed, same step log" !log !log2

let test_sched_seed_changes_schedule () =
  let run seed =
    let log = ref [] in
    let task name =
      (name, fun () -> for _ = 1 to 5 do log := name :: !log; Sched.yield () done)
    in
    ignore (Sched.run ~seed [ task "a"; task "b"; task "c" ]);
    List.rev !log
  in
  Alcotest.(check bool) "different seeds interleave differently" false (run 1 = run 2)

let test_sched_reentrant_rejected () =
  Alcotest.check_raises "re-entrant run is refused"
    (Invalid_argument "Sched.run: a schedule is already being driven")
    (fun () ->
      ignore
        (Sched.run ~seed:1 [ ("outer", fun () -> ignore (Sched.run ~seed:2 [])) ]))

let test_sched_exception_runs_cleanups () =
  let cleaned = ref false in
  (try
     ignore
       (Sched.run ~seed:3
          [
            ( "holder",
              fun () ->
                Fun.protect
                  ~finally:(fun () -> cleaned := true)
                  (fun () ->
                    Sched.yield ();
                    Sched.yield ()) );
            ("bomb", fun () -> Sched.yield (); failwith "boom");
          ]);
     Alcotest.fail "exception did not propagate"
   with Failure msg -> check Alcotest.string "task failure propagates" "boom" msg);
  Alcotest.(check bool) "suspended task's cleanup ran" true !cleaned

(* --- the 2VNL warehouse under scheduled interleavings ----------------- *)

let groups =
  [
    ("San Jose", "CA", "golf equip");
    ("Berkeley", "CA", "racquetball");
    ("Novato", "CA", "rollerblades");
    ("Fresno", "CA", "tennis");
    ("Reno", "NV", "golf equip");
    ("Tahoe", "NV", "skiing");
  ]

let key_of (city, state, pl) ~day =
  [ Value.Str city; Value.Str state; Value.Str pl; Value.date_of_mdy 10 day 96 ]

let row_of key sales = Tuple.make Fixtures.daily_sales (key @ [ Value.Int sales ])

let initial_rows () =
  List.concat_map
    (fun g -> List.map (fun day -> row_of (key_of g ~day) 1000) [ 13; 14 ])
    groups

(* Randomized batches with disjoint per-key roles (every key appears in at
   most one op per batch), tracked against a live-key set so the same ops
   are always legal for both the warehouse and the oracle. *)
let gen_batches rng ~batches =
  let live = ref (List.concat_map (fun g -> [ key_of g ~day:13; key_of g ~day:14 ]) groups) in
  let fresh_day = ref 20 in
  List.init batches (fun _ ->
      let pool = Array.of_list !live in
      Xorshift.shuffle rng pool;
      let n_upd = min (Array.length pool) (1 + Xorshift.int rng 3) in
      let n_del = min (Array.length pool - n_upd) (Xorshift.int rng 2) in
      let ops = ref [] in
      for i = 0 to n_upd - 1 do
        ops := Batch.Update (pool.(i), [ (4, Value.Int (Xorshift.int rng 50_000)) ]) :: !ops
      done;
      for i = n_upd to n_upd + n_del - 1 do
        ops := Batch.Delete pool.(i) :: !ops;
        live := List.filter (fun k -> k <> pool.(i)) !live
      done;
      let day = !fresh_day in
      incr fresh_day;
      List.iter
        (fun g ->
          if Xorshift.chance rng 0.4 then begin
            let key = key_of g ~day in
            ops := Batch.Insert (row_of key (Xorshift.int rng 9_000)) :: !ops;
            live := key :: !live
          end)
        groups;
      List.rev !ops)

let oracle_op = function
  | Batch.Insert t -> Oracle.Ins t
  | Batch.Update (k, a) -> Oracle.Upd (k, a)
  | Batch.Delete k -> Oracle.Del k

let build () =
  let db = Database.create ~pool_capacity:4 () in
  let vnl = Twovnl.init db in
  ignore (Twovnl.register_table vnl ~name:table_name Fixtures.daily_sales);
  Twovnl.load_initial vnl table_name (initial_rows ());
  let oracle = Oracle.create Fixtures.daily_sales in
  Oracle.apply_txn oracle ~vn:1 (List.map (fun t -> Oracle.Ins t) (initial_rows ()));
  (db, vnl, oracle)

let sum_rows rows =
  List.fold_left
    (fun acc t -> match Tuple.get t 4 with Value.Int n -> acc + n | _ -> acc)
    0 rows

(* One reader pass: full-view engine read and compiled-SQL aggregate, both
   checked against the oracle at this session's version.  Expiry is the
   legal out (§2.1); any other divergence is a failure. *)
let reader_pass vnl oracle ~reads =
  let s = Twovnl.Session.begin_ vnl in
  (try
     for _ = 1 to reads do
       let rows = Twovnl.Session.read_table vnl s table_name in
       let expected = Oracle.visible oracle ~vn:(Twovnl.Session.vn s) in
       if not (Oracle.equal_views rows expected) then
         Alcotest.failf "session at vn %d saw %d rows, oracle has %d"
           (Twovnl.Session.vn s) (List.length rows) (List.length expected);
       let r =
         Twovnl.Session.query vnl s
           (Printf.sprintf "SELECT SUM(total_sales) FROM %s" table_name)
       in
       match r.Executor.rows with
       | [ [ Value.Int total ] ] ->
         if total <> sum_rows expected then
           Alcotest.failf "SQL sum %d disagrees with oracle sum %d at vn %d" total
             (sum_rows expected) (Twovnl.Session.vn s)
       | [ [ Value.Null ] ] ->
         if expected <> [] then
           Alcotest.failf "SQL sum NULL but oracle has %d rows at vn %d"
             (List.length expected) (Twovnl.Session.vn s)
       | _ -> Alcotest.fail "sum query shape"
     done
   with Twovnl.Expired _ -> ());
  Twovnl.Session.end_ vnl s

(* The harness proper: one maintainer applying [batches] transactions, two
   readers re-checking the oracle, all interleaved by [sched_seed]. *)
let scheduled_run ~data_seed ~sched_seed ~batches =
  let _db, vnl, oracle = build () in
  let plans = gen_batches (Xorshift.create data_seed) ~batches in
  let maintainer () =
    List.iter
      (fun ops ->
        let m = Twovnl.Txn.begin_ vnl in
        (* Recorded at begin: no reader can hold this vn before commit
           publishes it, and earlier versions are immutable history. *)
        Oracle.apply_txn oracle ~vn:(Twovnl.Txn.vn m) (List.map oracle_op ops);
        ignore (Twovnl.Txn.apply_batch m ~table:table_name ops);
        Twovnl.Txn.commit m)
      plans
  in
  let reader name = (name, fun () -> for _ = 1 to 4 do reader_pass vnl oracle ~reads:2 done) in
  Sched.run ~seed:sched_seed
    [ ("maintainer", maintainer); reader "reader-1"; reader "reader-2" ]

let test_oracle_many_interleavings () =
  for sched_seed = 1 to 12 do
    ignore (scheduled_run ~data_seed:42 ~sched_seed ~batches:4)
  done

let test_oracle_many_workloads () =
  List.iter
    (fun data_seed -> ignore (scheduled_run ~data_seed ~sched_seed:7 ~batches:5))
    [ 3; 17; 99; 1234 ]

let test_interleaving_deterministic () =
  let t1 = scheduled_run ~data_seed:42 ~sched_seed:5 ~batches:4 in
  let t2 = scheduled_run ~data_seed:42 ~sched_seed:5 ~batches:4 in
  check (Alcotest.list Alcotest.string) "same seed, same schedule" t1 t2;
  Alcotest.(check bool) "the schedule interleaves maintainer and readers" true
    (List.exists (( = ) "maintainer") t1 && List.exists (( = ) "reader-1") t1);
  let t3 = scheduled_run ~data_seed:42 ~sched_seed:6 ~batches:4 in
  Alcotest.(check bool) "another seed schedules differently" false (t1 = t3)

(* Single-task scheduling is the serial path: same answers, and the saved
   database image is byte-identical to a run without the harness. *)
let test_serial_byte_identity () =
  let workload () =
    let db, vnl, oracle = build () in
    List.iter
      (fun ops ->
        let m = Twovnl.Txn.begin_ vnl in
        Oracle.apply_txn oracle ~vn:(Twovnl.Txn.vn m) (List.map oracle_op ops);
        ignore (Twovnl.Txn.apply_batch m ~table:table_name ops);
        Twovnl.Txn.commit m)
      (gen_batches (Xorshift.create 42) ~batches:3);
    reader_pass vnl oracle ~reads:1;
    Database.save db;
    Database.disk db
  in
  let plain = workload () in
  let scheduled = ref None in
  ignore (Sched.run ~seed:11 [ ("all", fun () -> scheduled := Some (workload ())) ]);
  let scheduled = Option.get !scheduled in
  check Alcotest.int "same page count" (Disk.page_count plain) (Disk.page_count scheduled);
  for pid = 0 to Disk.page_count plain - 1 do
    if not (Bytes.equal (Disk.read plain pid) (Disk.read scheduled pid)) then
      Alcotest.failf "page %d differs between plain and scheduled runs" pid
  done

let suite =
  [
    Alcotest.test_case "sched: runs every step of every task" `Quick test_sched_runs_all_steps;
    Alcotest.test_case "sched: seed changes the schedule" `Quick test_sched_seed_changes_schedule;
    Alcotest.test_case "sched: re-entrant run rejected" `Quick test_sched_reentrant_rejected;
    Alcotest.test_case "sched: exception discontinues and cleans up" `Quick
      test_sched_exception_runs_cleanups;
    Alcotest.test_case "oracle holds across 12 interleavings" `Quick
      test_oracle_many_interleavings;
    Alcotest.test_case "oracle holds across randomized workloads" `Quick
      test_oracle_many_workloads;
    Alcotest.test_case "same seed reproduces the interleaving" `Quick
      test_interleaving_deterministic;
    Alcotest.test_case "single-task schedule is byte-identical to serial" `Quick
      test_serial_byte_identity;
  ]
