(* Deterministic interleaving harness over the parallel read path.

   Free-running domains (test_parallel_stress) can hit a racy interleaving
   but cannot replay it.  These tests drive reader and maintainer tasks
   through {!Vnl_util.Sched}: every page access and version-state access
   is a scheduling point, a seeded PRNG picks who advances, and the same
   seed always reproduces the same interleaving.  At each step readers
   check their whole view against the full-history {!Oracle} at their
   sessionVN — the paper's consistency guarantee (§3), stated exactly. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Executor = Vnl_query.Executor
module Disk = Vnl_storage.Disk
module Buffer_pool = Vnl_storage.Buffer_pool
module Twovnl = Vnl_core.Twovnl
module Batch = Vnl_core.Batch
module Sched = Vnl_util.Sched
module Xorshift = Vnl_util.Xorshift
module Domain_pool = Vnl_util.Domain_pool

let check = Alcotest.check

let table_name = "DailySales"

(* --- the scheduler itself ------------------------------------------- *)

let test_sched_runs_all_steps () =
  let log = ref [] in
  let task name =
    ( name,
      fun () ->
        for i = 1 to 3 do
          log := (name, i) :: !log;
          Sched.yield ()
        done )
  in
  let trace = Sched.run ~seed:1 [ task "a"; task "b" ] in
  check Alcotest.int "every step of every task ran" 6 (List.length !log);
  List.iter
    (fun name ->
      check (Alcotest.list Alcotest.int)
        (name ^ " stepped in order")
        [ 1; 2; 3 ]
        (List.rev_map snd (List.filter (fun (n, _) -> n = name) !log)))
    [ "a"; "b" ];
  (* The trace is the schedule: replaying the seed replays it exactly. *)
  let log2 = ref [] in
  let task2 name = (name, fun () -> for i = 1 to 3 do log2 := (name, i) :: !log2; Sched.yield () done) in
  let trace2 = Sched.run ~seed:1 [ task2 "a"; task2 "b" ] in
  check (Alcotest.list Alcotest.string) "same seed, same trace" trace trace2;
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "same seed, same step log" !log !log2

let test_sched_seed_changes_schedule () =
  let run seed =
    let log = ref [] in
    let task name =
      (name, fun () -> for _ = 1 to 5 do log := name :: !log; Sched.yield () done)
    in
    ignore (Sched.run ~seed [ task "a"; task "b"; task "c" ]);
    List.rev !log
  in
  Alcotest.(check bool) "different seeds interleave differently" false (run 1 = run 2)

let test_sched_reentrant_rejected () =
  Alcotest.check_raises "re-entrant run is refused"
    (Invalid_argument "Sched.run: a schedule is already being driven")
    (fun () ->
      ignore
        (Sched.run ~seed:1 [ ("outer", fun () -> ignore (Sched.run ~seed:2 [])) ]))

let test_sched_exception_runs_cleanups () =
  let cleaned = ref false in
  (try
     ignore
       (Sched.run ~seed:3
          [
            ( "holder",
              fun () ->
                Fun.protect
                  ~finally:(fun () -> cleaned := true)
                  (fun () ->
                    Sched.yield ();
                    Sched.yield ()) );
            ("bomb", fun () -> Sched.yield (); failwith "boom");
          ]);
     Alcotest.fail "exception did not propagate"
   with Failure msg -> check Alcotest.string "task failure propagates" "boom" msg);
  Alcotest.(check bool) "suspended task's cleanup ran" true !cleaned

(* --- the 2VNL warehouse under scheduled interleavings ----------------- *)

let groups =
  [
    ("San Jose", "CA", "golf equip");
    ("Berkeley", "CA", "racquetball");
    ("Novato", "CA", "rollerblades");
    ("Fresno", "CA", "tennis");
    ("Reno", "NV", "golf equip");
    ("Tahoe", "NV", "skiing");
  ]

let key_of (city, state, pl) ~day =
  [ Value.Str city; Value.Str state; Value.Str pl; Value.date_of_mdy 10 day 96 ]

let row_of key sales = Tuple.make Fixtures.daily_sales (key @ [ Value.Int sales ])

let initial_rows () =
  List.concat_map
    (fun g -> List.map (fun day -> row_of (key_of g ~day) 1000) [ 13; 14 ])
    groups

(* Randomized batches with disjoint per-key roles (every key appears in at
   most one op per batch), tracked against a live-key set so the same ops
   are always legal for both the warehouse and the oracle. *)
let gen_batches rng ~batches =
  let live = ref (List.concat_map (fun g -> [ key_of g ~day:13; key_of g ~day:14 ]) groups) in
  let fresh_day = ref 20 in
  List.init batches (fun _ ->
      let pool = Array.of_list !live in
      Xorshift.shuffle rng pool;
      let n_upd = min (Array.length pool) (1 + Xorshift.int rng 3) in
      let n_del = min (Array.length pool - n_upd) (Xorshift.int rng 2) in
      let ops = ref [] in
      for i = 0 to n_upd - 1 do
        ops := Batch.Update (pool.(i), [ (4, Value.Int (Xorshift.int rng 50_000)) ]) :: !ops
      done;
      for i = n_upd to n_upd + n_del - 1 do
        ops := Batch.Delete pool.(i) :: !ops;
        live := List.filter (fun k -> k <> pool.(i)) !live
      done;
      let day = !fresh_day in
      incr fresh_day;
      List.iter
        (fun g ->
          if Xorshift.chance rng 0.4 then begin
            let key = key_of g ~day in
            ops := Batch.Insert (row_of key (Xorshift.int rng 9_000)) :: !ops;
            live := key :: !live
          end)
        groups;
      List.rev !ops)

let oracle_op = function
  | Batch.Insert t -> Oracle.Ins t
  | Batch.Update (k, a) -> Oracle.Upd (k, a)
  | Batch.Delete k -> Oracle.Del k

let build () =
  let db = Database.create ~pool_capacity:4 () in
  let vnl = Twovnl.init db in
  ignore (Twovnl.register_table vnl ~name:table_name Fixtures.daily_sales);
  Twovnl.load_initial vnl table_name (initial_rows ());
  let oracle = Oracle.create Fixtures.daily_sales in
  Oracle.apply_txn oracle ~vn:1 (List.map (fun t -> Oracle.Ins t) (initial_rows ()));
  (db, vnl, oracle)

let sum_rows rows =
  List.fold_left
    (fun acc t -> match Tuple.get t 4 with Value.Int n -> acc + n | _ -> acc)
    0 rows

(* One reader pass: full-view engine read and compiled-SQL aggregate, both
   checked against the oracle at this session's version.  Expiry is the
   legal out (§2.1); any other divergence is a failure. *)
let reader_pass vnl oracle ~reads =
  let s = Twovnl.Session.begin_ vnl in
  (try
     for _ = 1 to reads do
       let rows = Twovnl.Session.read_table vnl s table_name in
       let expected = Oracle.visible oracle ~vn:(Twovnl.Session.vn s) in
       if not (Oracle.equal_views rows expected) then
         Alcotest.failf "session at vn %d saw %d rows, oracle has %d"
           (Twovnl.Session.vn s) (List.length rows) (List.length expected);
       let r =
         Twovnl.Session.query vnl s
           (Printf.sprintf "SELECT SUM(total_sales) FROM %s" table_name)
       in
       match r.Executor.rows with
       | [ [ Value.Int total ] ] ->
         if total <> sum_rows expected then
           Alcotest.failf "SQL sum %d disagrees with oracle sum %d at vn %d" total
             (sum_rows expected) (Twovnl.Session.vn s)
       | [ [ Value.Null ] ] ->
         if expected <> [] then
           Alcotest.failf "SQL sum NULL but oracle has %d rows at vn %d"
             (List.length expected) (Twovnl.Session.vn s)
       | _ -> Alcotest.fail "sum query shape"
     done
   with Twovnl.Expired _ -> ());
  Twovnl.Session.end_ vnl s

(* The harness proper: one maintainer applying [batches] transactions, two
   readers re-checking the oracle, all interleaved by [sched_seed]. *)
let scheduled_run ~data_seed ~sched_seed ~batches =
  let db, vnl, oracle = build () in
  let plans = gen_batches (Xorshift.create data_seed) ~batches in
  let maintainer () =
    List.iter
      (fun ops ->
        let m = Twovnl.Txn.begin_ vnl in
        (* Recorded at begin: no reader can hold this vn before commit
           publishes it, and earlier versions are immutable history. *)
        Oracle.apply_txn oracle ~vn:(Twovnl.Txn.vn m) (List.map oracle_op ops);
        ignore (Twovnl.Txn.apply_batch m ~table:table_name ops);
        Twovnl.Txn.commit m)
      plans
  in
  let reader name = (name, fun () -> for _ = 1 to 4 do reader_pass vnl oracle ~reads:2 done) in
  let trace =
    Sched.run ~seed:sched_seed
      [ ("maintainer", maintainer); reader "reader-1"; reader "reader-2" ]
  in
  (trace, db)

let test_oracle_many_interleavings () =
  for sched_seed = 1 to 12 do
    ignore (scheduled_run ~data_seed:42 ~sched_seed ~batches:4)
  done

let test_oracle_many_workloads () =
  List.iter
    (fun data_seed -> ignore (scheduled_run ~data_seed ~sched_seed:7 ~batches:5))
    [ 3; 17; 99; 1234 ]

let test_interleaving_deterministic () =
  let t1, _ = scheduled_run ~data_seed:42 ~sched_seed:5 ~batches:4 in
  let t2, _ = scheduled_run ~data_seed:42 ~sched_seed:5 ~batches:4 in
  check (Alcotest.list Alcotest.string) "same seed, same schedule" t1 t2;
  Alcotest.(check bool) "the schedule interleaves maintainer and readers" true
    (List.exists (( = ) "maintainer") t1 && List.exists (( = ) "reader-1") t1);
  let t3, _ = scheduled_run ~data_seed:42 ~sched_seed:6 ~batches:4 in
  Alcotest.(check bool) "another seed schedules differently" false (t1 = t3)

(* --- the optimistic read path under forced interleavings --------------- *)

(* Pool-level seqlock check: a reader decoding two mirrored counters races
   a mutator updating both.  The scheduler can (and, across seeds, does)
   run the mutator between the reader's stamp snapshot and its validate,
   which must discard the attempt — a validated read never returns a torn
   pair, and enough seeds force both the retry and the exhausted-budget
   latched fallback. *)
let test_forced_read_validate_retry () =
  let retries = ref 0 and fallbacks = ref 0 and opt = ref 0 in
  for seed = 1 to 40 do
    let pool = Buffer_pool.create ~capacity:4 (Disk.create ()) in
    let pid = Buffer_pool.alloc_page pool in
    Buffer_pool.with_page_mut pool pid (fun img ->
        Bytes.set_int64_be img 0 0L;
        Bytes.set_int64_be img 8 0L);
    let observed = ref [] in
    ignore
      (Sched.run ~seed
         [
           ( "reader",
             fun () ->
               for _ = 1 to 8 do
                 let pair =
                   Buffer_pool.read_page pool pid (fun img ->
                       (Bytes.get_int64_be img 0, Bytes.get_int64_be img 8))
                 in
                 observed := pair :: !observed;
                 Sched.yield ()
               done );
           ( "mutator",
             fun () ->
               for i = 1 to 8 do
                 Buffer_pool.with_page_mut pool pid (fun img ->
                     Bytes.set_int64_be img 0 (Int64.of_int i);
                     Bytes.set_int64_be img 8 (Int64.of_int i));
                 Sched.yield ()
               done );
         ]);
    List.iter
      (fun (a, b) ->
        if a <> b then
          Alcotest.failf "seed %d: torn read (%Ld, %Ld) survived validation" seed a b)
      !observed;
    (* Within one reader the observed values are monotone: each validated
       (or latched) read is a consistent snapshot of a single writer. *)
    ignore
      (List.fold_left
         (fun later (a, _) ->
           if a > later then
             Alcotest.failf "seed %d: reads went backwards (%Ld after %Ld)" seed a later;
           a)
         Int64.max_int !observed);
    let s = Buffer_pool.stats pool in
    retries := !retries + s.opt_retries;
    fallbacks := !fallbacks + s.opt_fallbacks;
    opt := !opt + s.opt_reads
  done;
  Alcotest.(check bool) "optimistic reads validated across the sweep" true (!opt > 0);
  Alcotest.(check bool) "some schedule forced a stamp-change retry" true (!retries > 0);
  Alcotest.(check bool) "some schedule exhausted the retry budget into the latched path"
    true (!fallbacks > 0)

(* The same guarantee end-to-end: under the scheduled warehouse runs the
   readers go through the optimistic path (the oracle equality inside
   [reader_pass] is the correctness check); across the interleaving sweep
   the conflict path must actually fire. *)
let test_warehouse_optimistic_path_exercised () =
  let opt = ref 0 and retries = ref 0 in
  for sched_seed = 1 to 12 do
    let _, db = scheduled_run ~data_seed:42 ~sched_seed ~batches:4 in
    let s = Buffer_pool.stats (Database.pool db) in
    opt := !opt + s.opt_reads;
    retries := !retries + s.opt_retries
  done;
  Alcotest.(check bool) "warehouse reads are served latch-free" true (!opt > 0);
  Alcotest.(check bool) "maintenance forced read-validate-retry at least once" true
    (!retries > 0)

(* Starvation: a reader racing a continuously-mutating writer on real
   domains must complete every query — via validated optimistic reads when
   the stamp holds, via the latched fallback when it never does — and no
   completed read may be torn. *)
let test_reader_progress_under_continuous_mutation () =
  let pool = Buffer_pool.create ~capacity:8 (Disk.create ()) in
  let pid = Buffer_pool.alloc_page pool in
  Buffer_pool.with_page_mut pool pid (fun img ->
      Bytes.set_int64_be img 0 0L;
      Bytes.set_int64_be img 8 0L);
  let stop = Atomic.make false in
  let queries = 2_000 in
  let torn =
    Domain_pool.run ~domains:2 (fun ~start rank ->
        start ();
        if rank = 0 then begin
          let i = ref 0L in
          while not (Atomic.get stop) do
            i := Int64.add !i 1L;
            Buffer_pool.with_page_mut pool pid (fun img ->
                Bytes.set_int64_be img 0 !i;
                Bytes.set_int64_be img 8 !i)
          done;
          0
        end
        else begin
          let torn = ref 0 in
          for _ = 1 to queries do
            let a, b =
              Buffer_pool.read_page pool pid (fun img ->
                  (Bytes.get_int64_be img 0, Bytes.get_int64_be img 8))
            in
            if a <> b then incr torn
          done;
          Atomic.set stop true;
          !torn
        end)
  in
  check Alcotest.int "no torn read completed" 0 torn.(1);
  let s = Buffer_pool.stats pool in
  Alcotest.(check bool) "every query completed (progress under mutation)" true
    (s.opt_reads + s.opt_fallbacks >= queries)

(* The fallback is also the not-resident path, which we can hit
   deterministically: evict the page, and [read_page] must detour through
   the latched reload and still return current bytes. *)
let test_fallback_on_nonresident_page () =
  let pool = Buffer_pool.create ~capacity:2 (Disk.create ()) in
  let target = Buffer_pool.alloc_page pool in
  Buffer_pool.with_page_mut pool target (fun img -> Bytes.set_int64_be img 0 77L);
  check Alcotest.int "resident read is optimistic" 77
    (Int64.to_int (Buffer_pool.read_page pool target (fun img -> Bytes.get_int64_be img 0)));
  let before = Buffer_pool.stats pool in
  check Alcotest.int "no fallback yet" 0 before.opt_fallbacks;
  (* Two fresh pages through a 2-frame pool evict [target]. *)
  let p1 = Buffer_pool.alloc_page pool in
  let p2 = Buffer_pool.alloc_page pool in
  Buffer_pool.with_page_mut pool p1 (fun img -> Bytes.set_int64_be img 0 1L);
  Buffer_pool.with_page_mut pool p2 (fun img -> Bytes.set_int64_be img 0 2L);
  check Alcotest.int "evicted page reads correctly through the fallback" 77
    (Int64.to_int (Buffer_pool.read_page pool target (fun img -> Bytes.get_int64_be img 0)));
  let after = Buffer_pool.stats pool in
  Alcotest.(check bool) "the not-resident fallback fired" true (after.opt_fallbacks > 0);
  (* Reloaded by the fallback, the page is resident again: optimistic. *)
  ignore (Buffer_pool.read_page pool target (fun img -> Bytes.get_int64_be img 0));
  let final = Buffer_pool.stats pool in
  Alcotest.(check bool) "subsequent reads are optimistic again" true
    (final.opt_reads > after.opt_reads)

(* Single-task scheduling is the serial path: same answers, and the saved
   database image is byte-identical to a run without the harness. *)
let test_serial_byte_identity () =
  let workload () =
    let db, vnl, oracle = build () in
    List.iter
      (fun ops ->
        let m = Twovnl.Txn.begin_ vnl in
        Oracle.apply_txn oracle ~vn:(Twovnl.Txn.vn m) (List.map oracle_op ops);
        ignore (Twovnl.Txn.apply_batch m ~table:table_name ops);
        Twovnl.Txn.commit m)
      (gen_batches (Xorshift.create 42) ~batches:3);
    reader_pass vnl oracle ~reads:1;
    Database.save db;
    Database.disk db
  in
  let plain = workload () in
  let scheduled = ref None in
  ignore (Sched.run ~seed:11 [ ("all", fun () -> scheduled := Some (workload ())) ]);
  let scheduled = Option.get !scheduled in
  check Alcotest.int "same page count" (Disk.page_count plain) (Disk.page_count scheduled);
  for pid = 0 to Disk.page_count plain - 1 do
    if not (Bytes.equal (Disk.read plain pid) (Disk.read scheduled pid)) then
      Alcotest.failf "page %d differs between plain and scheduled runs" pid
  done

let suite =
  [
    Alcotest.test_case "sched: runs every step of every task" `Quick test_sched_runs_all_steps;
    Alcotest.test_case "sched: seed changes the schedule" `Quick test_sched_seed_changes_schedule;
    Alcotest.test_case "sched: re-entrant run rejected" `Quick test_sched_reentrant_rejected;
    Alcotest.test_case "sched: exception discontinues and cleans up" `Quick
      test_sched_exception_runs_cleanups;
    Alcotest.test_case "oracle holds across 12 interleavings" `Quick
      test_oracle_many_interleavings;
    Alcotest.test_case "oracle holds across randomized workloads" `Quick
      test_oracle_many_workloads;
    Alcotest.test_case "same seed reproduces the interleaving" `Quick
      test_interleaving_deterministic;
    Alcotest.test_case "single-task schedule is byte-identical to serial" `Quick
      test_serial_byte_identity;
    Alcotest.test_case "forced interleavings: read-validate-retry never tears" `Quick
      test_forced_read_validate_retry;
    Alcotest.test_case "warehouse readers take the optimistic path" `Quick
      test_warehouse_optimistic_path_exercised;
    Alcotest.test_case "reader progress under continuous mutation" `Quick
      test_reader_progress_under_continuous_mutation;
    Alcotest.test_case "not-resident fallback reloads through the latched path" `Quick
      test_fallback_on_nonresident_page;
  ]
