(* The generalized (n > 2) reader visibility predicate against the
   full-history oracle.

   §5: a session opened at sessionVN stays valid while
   [currentVN - sessionVN + outstanding <= n - 1].  At n = 3 and n = 4 we
   drive a history of maintenance transactions, keep every session ever
   opened, and after each commit demand exact agreement: a session the
   predicate calls valid must read precisely the oracle's state at its
   version (both the engine extraction and the predicate itself), and a
   session the predicate calls expired must be refused with {!Expired}.
   A second group does the same around a multi-VN {!Twovnl.Round}, where
   the outstanding term is what charges readers. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Twovnl = Vnl_core.Twovnl
module Batch = Vnl_core.Batch

let check = Alcotest.check

let table_name = "DailySales"

let key_of i day =
  [
    Value.Str (Printf.sprintf "City-%d" i);
    Value.Str "CA";
    Value.Str "golf equip";
    Value.date_of_mdy 10 day 96;
  ]

let row_of key sales = Tuple.make Fixtures.daily_sales (key @ [ Value.Int sales ])

let initial_rows = List.init 6 (fun i -> row_of (key_of i 13) 1000)

let build ~n =
  let db = Database.create ~pool_capacity:4 () in
  let vnl = Twovnl.init db in
  ignore (Twovnl.register_table vnl ~n ~name:table_name Fixtures.daily_sales);
  Twovnl.load_initial vnl table_name initial_rows;
  let oracle = Oracle.create Fixtures.daily_sales in
  Oracle.apply_txn oracle ~vn:1 (List.map (fun t -> Oracle.Ins t) initial_rows);
  (vnl, oracle)

let oracle_op = function
  | Batch.Insert t -> Oracle.Ins t
  | Batch.Update (k, a) -> Oracle.Upd (k, a)
  | Batch.Delete k -> Oracle.Del k

(* Transaction [j] of the history: adjust one survivor, insert a fresh
   group, retire the group inserted two transactions ago. *)
let ops_for j =
  Batch.Update (key_of (j mod 6) 13, [ (4, Value.Int (2000 + j)) ])
  :: Batch.Insert (row_of (key_of j 20) (100 + j))
  :: (if j >= 2 then [ Batch.Delete (key_of (j - 2) 20) ] else [])

(* A session the predicate blesses must agree with the oracle exactly; a
   session it rejects must raise.  [outstanding] is the live round's
   unpublished slot count (0 between transactions). *)
let check_sessions vnl oracle ~n ~outstanding sessions =
  let current = Vnl_core.Version_state.current_vn (Twovnl.version_state vnl) in
  List.iter
    (fun s ->
      let expect_valid = current - Twovnl.Session.vn s + outstanding <= n - 1 in
      check Alcotest.bool
        (Printf.sprintf "validity of session at vn %d (current %d, outstanding %d, n %d)"
           (Twovnl.Session.vn s) current outstanding n)
        expect_valid
        (Twovnl.Session.is_valid vnl s);
      if expect_valid then begin
        let rows = Twovnl.Session.read_table vnl s table_name in
        let expected = Oracle.visible oracle ~vn:(Twovnl.Session.vn s) in
        if not (Oracle.equal_views rows expected) then
          Alcotest.failf "session at vn %d saw %d rows, oracle has %d" (Twovnl.Session.vn s)
            (List.length rows) (List.length expected)
      end
      else
        match Twovnl.Session.read_table vnl s table_name with
        | _ -> Alcotest.failf "expired session at vn %d was served" (Twovnl.Session.vn s)
        | exception Twovnl.Expired _ -> ())
    sessions

let history_test ~n () =
  let vnl, oracle = build ~n in
  let sessions = ref [ Twovnl.Session.begin_ vnl ] in
  for j = 0 to 7 do
    let ops = ops_for j in
    let m = Twovnl.Txn.begin_ vnl in
    Oracle.apply_txn oracle ~vn:(Twovnl.Txn.vn m) (List.map oracle_op ops);
    ignore (Twovnl.Txn.apply_batch m ~table:table_name ops);
    Twovnl.Txn.commit m;
    ignore (Twovnl.collect_garbage vnl);
    check_sessions vnl oracle ~n ~outstanding:0 !sessions;
    sessions := Twovnl.Session.begin_ vnl :: !sessions
  done;
  (* The history must actually have exercised both sides of the predicate. *)
  let valid, stale = List.partition (Twovnl.Session.is_valid vnl) !sessions in
  check Alcotest.int (Printf.sprintf "n=%d keeps n-1 generations valid" n) (n - 1)
    (List.length valid - 1);
  Alcotest.(check bool) "older generations expired" true (List.length stale > 0);
  List.iter (Twovnl.Session.end_ vnl) !sessions

(* Mid-round, validity charges the outstanding (reserved but unpublished)
   VNs: at n = 4 a round of 3 stripes keeps a round-begin session valid
   throughout, while a session one generation older dies the moment the
   round begins — before any stripe publishes. *)
let test_round_outstanding_charges_readers () =
  let n = 4 in
  let vnl, oracle = build ~n in
  (* One committed transaction so an "older" session generation exists. *)
  let m = Twovnl.Txn.begin_ vnl in
  Oracle.apply_txn oracle ~vn:(Twovnl.Txn.vn m) (List.map oracle_op (ops_for 0));
  ignore (Twovnl.Txn.apply_batch m ~table:table_name (ops_for 0));
  Twovnl.Txn.commit m;
  let older = Twovnl.Session.begin_ vnl in
  let m = Twovnl.Txn.begin_ vnl in
  Oracle.apply_txn oracle ~vn:(Twovnl.Txn.vn m) (List.map oracle_op (ops_for 1));
  ignore (Twovnl.Txn.apply_batch m ~table:table_name (ops_for 1));
  Twovnl.Txn.commit m;
  let at_round_begin = Twovnl.Session.begin_ vnl in
  check_sessions vnl oracle ~n ~outstanding:0 [ older; at_round_begin ];
  let round = Twovnl.Round.begin_ vnl ~count:3 in
  (* No stripe has written or published anything, yet [older] (1 behind +
     3 outstanding > n - 1) is already gone; the round-begin session (0
     behind + 3 outstanding = n - 1) holds. *)
  check_sessions vnl oracle ~n ~outstanding:3 [ older; at_round_begin ];
  for i = 0 to 2 do
    let ops = [ Batch.Update (key_of i 13, [ (4, Value.Int (7000 + i)) ]) ] in
    let s =
      Batch.stage
        (Twovnl.ext (Twovnl.handle_exn vnl table_name))
        (Twovnl.table (Twovnl.handle_exn vnl table_name))
        ~vn:(Twovnl.Round.vn round i) ops
    in
    ignore (Batch.apply_staged (Twovnl.table (Twovnl.handle_exn vnl table_name)) s);
    Oracle.apply_txn oracle ~vn:(Twovnl.Round.vn round i) (List.map oracle_op ops);
    Twovnl.Round.publish round ~vn:(Twovnl.Round.vn round i);
    (* Publishing trades one outstanding slot for one VN of distance: the
       round-begin session stays exactly at the validity boundary and must
       keep reading its own version's state. *)
    check_sessions vnl oracle ~n ~outstanding:(2 - i) [ older; at_round_begin ]
  done;
  List.iter (Twovnl.Session.end_ vnl) [ older; at_round_begin ]

let suite =
  [
    Alcotest.test_case "n=3 history agrees with oracle at every valid session" `Quick
      (history_test ~n:3);
    Alcotest.test_case "n=4 history agrees with oracle at every valid session" `Quick
      (history_test ~n:4);
    Alcotest.test_case "round outstanding VNs charge the validity predicate" `Quick
      test_round_outstanding_charges_readers;
  ]
