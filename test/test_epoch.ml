(* Epoch-based reclamation: the safety property the whole latch-free read
   path leans on.

   The QCheck property drives random op sequences (advance / pin / unpin /
   retire / reclaim) against a model and asserts, at every reclaim, that
   nothing is freed while any pinned epoch is <= its retire epoch — the
   exact guarantee {!Vnl_util.Epoch.reclaim} documents.  Unit tests nail
   the store-then-revalidate pin protocol (the begin/advance race), slot
   growth, and the external-horizon bound; a domain stress checks no item
   is ever freed twice or lost under real races. *)

module Epoch = Vnl_util.Epoch
module Xorshift = Vnl_util.Xorshift
module Domain_pool = Vnl_util.Domain_pool

let check = Alcotest.check

(* --- model-checked random histories ----------------------------------- *)

type model_pin = { slot : Epoch.slot; pinned : int }

let run_history seed =
  let rng = Xorshift.create seed in
  let t : int Epoch.t = Epoch.create ~slots:2 () in
  let epoch = ref 0 in
  let pins = ref [] in
  (* id -> retire epoch for everything retired and not yet freed *)
  let retired = Hashtbl.create 16 in
  let next_id = ref 0 in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  for _step = 1 to 60 do
    match Xorshift.int rng 5 with
    | 0 ->
      incr epoch;
      Epoch.advance t !epoch
    | 1 ->
      let slot, pinned = Epoch.pin t in
      if pinned <> !epoch then
        fail "pin observed epoch %d, current is %d" pinned !epoch;
      pins := { slot; pinned } :: !pins
    | 2 -> (
      match !pins with
      | [] -> ()
      | p :: rest ->
        Epoch.unpin p.slot;
        pins := rest)
    | 3 ->
      let id = !next_id in
      incr next_id;
      Hashtbl.replace retired id !epoch;
      Epoch.retire t id
    | _ ->
      let freed = Epoch.reclaim t in
      let min_pinned =
        List.fold_left (fun acc p -> min acc p.pinned) !epoch !pins
      in
      List.iter
        (fun id ->
          match Hashtbl.find_opt retired id with
          | None -> fail "item %d freed twice (or never retired)" id
          | Some re ->
            Hashtbl.remove retired id;
            (* The property: no pin at or before the retire epoch may
               still be live when the item is freed. *)
            if min_pinned <= re then
              fail "item %d (retired at %d) freed under live pin at %d" id re min_pinned)
        freed
  done;
  (* Drain: with every pin released, everything must eventually free. *)
  List.iter (fun p -> Epoch.unpin p.slot) !pins;
  Epoch.advance t (!epoch + 1);
  let last = Epoch.reclaim t in
  List.iter (fun id -> Hashtbl.remove retired id) last;
  if Hashtbl.length retired > 0 then
    fail "%d items never reclaimed after all pins released" (Hashtbl.length retired);
  List.rev !failures

let qcheck_reclaim_safety =
  QCheck.Test.make ~name:"epoch reclaim never frees under a live pin" ~count:200
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    (fun seed ->
      match run_history seed with
      | [] -> true
      | m :: _ -> QCheck.Test.fail_report m)

(* --- the begin/advance race -------------------------------------------- *)

(* Simulate a refresh committing between a session's epoch read and its pin
   becoming visible: [current] returns the old epoch exactly once, then the
   new one.  The store-then-revalidate protocol must republish the pin at
   the new epoch — the naive read-then-store design pins 7 here, and GC at
   horizon 8 would free history the session still needs. *)
let test_pin_revalidates_after_advance () =
  let t : unit Epoch.t = Epoch.create ~initial:7 () in
  let reads = ref 0 in
  let current () =
    incr reads;
    if !reads <= 1 then 7 else 8
  in
  let slot, pinned = Epoch.pin ~current t in
  check Alcotest.int "pin landed on the post-advance epoch" 8 pinned;
  check (Alcotest.option Alcotest.int) "slot publishes the same epoch" (Some 8)
    (Epoch.pinned_epoch slot);
  Epoch.unpin slot;
  check (Alcotest.option Alcotest.int) "unpinned slot reads as free" None
    (Epoch.pinned_epoch slot)

let test_min_pinned_and_growth () =
  let t : unit Epoch.t = Epoch.create ~initial:100 ~slots:2 () in
  (* Exceed the initial slot capacity: the array must grow while earlier
     pins stay visible through the shared cells. *)
  let pins = List.init 20 (fun _ -> fst (Epoch.pin t)) in
  check Alcotest.int "all pins bound the horizon" 100 (Epoch.min_pinned t);
  Epoch.advance t 105;
  check Alcotest.int "old pins still bound the horizon" 100 (Epoch.min_pinned t);
  List.iter Epoch.unpin pins;
  check Alcotest.int "horizon is the epoch once all pins drop" 105 (Epoch.min_pinned t);
  Epoch.advance t 103;
  check Alcotest.int "advance is monotone" 105 (Epoch.current t)

let test_external_horizon_bound () =
  let t : string Epoch.t = Epoch.create ~initial:10 () in
  Epoch.retire t "a";
  Epoch.advance t 20;
  Epoch.retire t "b";
  check Alcotest.int "both items in the bag" 2 (Epoch.retired_count t);
  (* No pins, so min_pinned is 20 — but the external horizon (a session
     epoch domain elsewhere) may be stricter. *)
  check (Alcotest.list Alcotest.string) "horizon 15 frees only the epoch-10 item"
    [ "a" ]
    (Epoch.reclaim_before t ~horizon:15);
  check Alcotest.int "the epoch-20 item stays retired" 1 (Epoch.retired_count t);
  Epoch.advance t 21;
  check (Alcotest.list Alcotest.string) "catching up frees the rest" [ "b" ]
    (Epoch.reclaim t)

(* --- real domain races ------------------------------------------------- *)

(* Pinners cycle pin/unpin while one domain retires tagged items, advances
   the epoch, and reclaims.  Exact per-free pin checks need a global clock,
   but two invariants survive any schedule: every item is freed exactly
   once, and nothing is freed at the epoch it was retired under while that
   epoch is still current (reclaim is strict-less-than the horizon). *)
let test_domain_race_no_double_free () =
  let t : int Epoch.t = Epoch.create () in
  let items = 400 in
  let freed = Array.make items 0 in
  let counts =
    Domain_pool.run ~domains:4 (fun ~start rank ->
        start ();
        if rank = 0 then begin
          let total = ref 0 in
          for i = 0 to items - 1 do
            Epoch.retire t i;
            if i mod 16 = 0 then Epoch.advance t (Epoch.current t + 1);
            List.iter
              (fun id ->
                freed.(id) <- freed.(id) + 1;
                incr total)
              (Epoch.reclaim t)
          done;
          Epoch.advance t (Epoch.current t + 1);
          (* Pinners may still hold old epochs; drain until empty. *)
          while Epoch.retired_count t > 0 do
            Epoch.advance t (Epoch.current t + 1);
            List.iter
              (fun id ->
                freed.(id) <- freed.(id) + 1;
                incr total)
              (Epoch.reclaim t);
            Domain.cpu_relax ()
          done;
          !total
        end
        else begin
          let rng = Xorshift.create (42 + rank) in
          for _ = 1 to 300 do
            let slot, pinned = Epoch.pin t in
            if pinned > Epoch.current t then failwith "pinned a future epoch";
            if Xorshift.chance rng 0.5 then Domain.cpu_relax ();
            Epoch.unpin slot
          done;
          0
        end)
  in
  check Alcotest.int "every item freed exactly once" items counts.(0);
  Array.iteri
    (fun id n -> if n <> 1 then Alcotest.failf "item %d freed %d times" id n)
    freed

let suite =
  [
    Alcotest.test_case "pin revalidates across a concurrent advance" `Quick
      test_pin_revalidates_after_advance;
    Alcotest.test_case "min_pinned across slot growth; monotone advance" `Quick
      test_min_pinned_and_growth;
    Alcotest.test_case "reclaim_before respects an external horizon" `Quick
      test_external_horizon_bound;
    Alcotest.test_case "domain race: exact-once reclamation" `Quick
      test_domain_race_no_double_free;
    QCheck_alcotest.to_alcotest qcheck_reclaim_safety;
  ]
