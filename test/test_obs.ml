(* Tests for the observability layer (lib/obs): metric-cell semantics, the
   registry, exporters, span tracing across real warehouse refreshes and
   crash recovery, and — the load-bearing property — that turning
   observability off changes nothing a reader or an experiment can see. *)

module Obs = Vnl_obs.Obs
module Json = Vnl_obs.Json
module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Disk = Vnl_storage.Disk
module Buffer_pool = Vnl_storage.Buffer_pool
module Twovnl = Vnl_core.Twovnl
module Recovery = Vnl_core.Recovery
module Warehouse = Vnl_warehouse.Warehouse
module Sales_gen = Vnl_workload.Sales_gen
module Stats = Vnl_util.Stats
module Xorshift = Vnl_util.Xorshift

let check = Alcotest.check

(* Every test leaves the global switch off and the default registry clean:
   the other suites in this binary assume an uninstrumented world. *)
let with_obs ?(enabled = true) f =
  Obs.enabled := enabled;
  Obs.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.enabled := false;
      Obs.reset ())
    f

(* ---------- metric cells ---------- *)

let test_counter () =
  with_obs (fun () ->
      let r = Obs.Registry.create () in
      let c = Obs.Registry.counter ~registry:r "c" in
      check Alcotest.int "starts at 0" 0 (Obs.Counter.get c);
      Obs.Counter.add c 3;
      Obs.Counter.incr c;
      check Alcotest.int "add/incr unconditional" 4 (Obs.Counter.get c);
      Obs.enabled := false;
      Obs.Counter.record c 10;
      check Alcotest.int "record gated off" 4 (Obs.Counter.get c);
      Obs.enabled := true;
      Obs.Counter.record c 10;
      check Alcotest.int "record gated on" 14 (Obs.Counter.get c);
      Obs.Counter.reset c;
      check Alcotest.int "reset" 0 (Obs.Counter.get c))

let test_gauge_initial () =
  with_obs (fun () ->
      let r = Obs.Registry.create () in
      let g = Obs.Registry.gauge ~registry:r ~initial:(-1) "g" in
      check Alcotest.int "starts at initial" (-1) (Obs.Gauge.get g);
      Obs.Gauge.set g 42;
      check Alcotest.int "set" 42 (Obs.Gauge.get g);
      Obs.Registry.reset r;
      check Alcotest.int "registry reset restores initial" (-1) (Obs.Gauge.get g))

let test_histogram_summary () =
  with_obs (fun () ->
      let r = Obs.Registry.create () in
      let h = Obs.Registry.histogram ~registry:r "h" in
      List.iter (Obs.Histogram.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
      check Alcotest.int "count" 4 (Obs.Histogram.count h);
      let s = Obs.Histogram.summary h in
      check (Alcotest.float 1e-9) "mean exact" 2.5 s.Stats.mean;
      check (Alcotest.float 1e-9) "min exact" 1.0 s.Stats.min;
      check (Alcotest.float 1e-9) "max exact" 4.0 s.Stats.max;
      check (Alcotest.float 1e-9) "total exact" 10.0 s.Stats.total;
      (* Percentiles are bucket-resolution estimates, clamped to the
         observed range. *)
      Alcotest.(check bool) "p99 within range" true (s.Stats.p99 >= 1.0 && s.Stats.p99 <= 4.0);
      Obs.Histogram.reset h;
      check Alcotest.int "reset" 0 (Obs.Histogram.count h))

let test_registry_idempotent () =
  with_obs (fun () ->
      let r = Obs.Registry.create () in
      let a = Obs.Registry.counter ~registry:r "x" in
      let b = Obs.Registry.counter ~registry:r "x" in
      Obs.Counter.incr a;
      check Alcotest.int "same cell by name" 1 (Obs.Counter.get b);
      Alcotest.(check bool) "kind clash rejected" true
        (try ignore (Obs.Registry.gauge ~registry:r "x"); false
         with Invalid_argument _ -> true);
      ignore (Obs.Registry.gauge ~registry:r "y");
      ignore (Obs.Registry.histogram ~registry:r "z");
      check Alcotest.int "one counter" 1 (List.length (Obs.Registry.counters r));
      check Alcotest.int "one gauge" 1 (List.length (Obs.Registry.gauges r));
      check Alcotest.int "one histogram" 1 (List.length (Obs.Registry.histograms r)))

(* ---------- exporters ---------- *)

let test_json_roundtrip () =
  with_obs (fun () ->
      let r = Obs.Registry.create () in
      Obs.Counter.add (Obs.Registry.counter ~registry:r "k.count") 7;
      Obs.Gauge.set (Obs.Registry.gauge ~registry:r "k.gauge") (-3);
      Obs.Histogram.observe (Obs.Registry.histogram ~registry:r "k.hist") 1.5;
      let j = Json.parse (Obs.to_json ~registry:r ()) in
      (match Json.member "counters" j with
      | Some (Json.Obj [ ("k.count", Json.Num n) ]) ->
        check (Alcotest.float 0.0) "counter value" 7.0 n
      | _ -> Alcotest.fail "counters section malformed");
      (match Json.member "gauges" j with
      | Some (Json.Obj [ ("k.gauge", Json.Num n) ]) ->
        check (Alcotest.float 0.0) "gauge value" (-3.0) n
      | _ -> Alcotest.fail "gauges section malformed");
      match Json.member "histograms" j with
      | Some (Json.Obj [ ("k.hist", Json.Obj fields) ]) ->
        Alcotest.(check bool) "histogram has count" true (List.mem_assoc "count" fields)
      | _ -> Alcotest.fail "histograms section malformed")

let test_prometheus_render () =
  with_obs (fun () ->
      let r = Obs.Registry.create () in
      Obs.Counter.add (Obs.Registry.counter ~registry:r "disk.reads") 5;
      Obs.Histogram.observe (Obs.Registry.histogram ~registry:r "lat.ms") 0.5;
      let text = Obs.to_prometheus ~registry:r () in
      let has needle =
        let ln = String.length needle and lt = String.length text in
        let rec go i = i + ln <= lt && (String.sub text i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "counter line" true (has "vnl_disk_reads 5");
      Alcotest.(check bool) "counter type" true (has "# TYPE vnl_disk_reads counter");
      Alcotest.(check bool) "histogram buckets" true (has "vnl_lat_ms_bucket{le=");
      Alcotest.(check bool) "histogram count" true (has "vnl_lat_ms_count 1");
      Alcotest.(check bool) "overflow bucket" true (has "le=\"+Inf\""))

let test_json_parser () =
  let j = Json.parse {| {"a": [1, -2.5e1, true, null], "s": "x\nA\"y"} |} in
  (match Json.member "a" j with
  | Some (Json.Arr [ Json.Num a; Json.Num b; Json.Bool true; Json.Null ]) ->
    check (Alcotest.float 0.0) "int" 1.0 a;
    check (Alcotest.float 0.0) "negative exponent form" (-25.0) b
  | _ -> Alcotest.fail "array malformed");
  (match Json.member "s" j with
  | Some (Json.Str s) -> check Alcotest.string "escapes" "x\nA\"y" s
  | _ -> Alcotest.fail "string malformed");
  List.iter
    (fun src ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" src)
        true
        (try ignore (Json.parse src); false with Json.Parse_error _ -> true))
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated"; "{} trailing" ]

(* ---------- spans over the real stack ---------- *)

let mk_wh rng =
  let wh = Warehouse.create ~pool_capacity:64 [ Sales_gen.daily_sales_view () ] in
  Warehouse.queue_changes wh ~view:"DailySales"
    (Sales_gen.initial_load rng ~days:3 ~sales_per_day:60);
  wh

let test_refresh_span_nesting () =
  with_obs (fun () ->
      let wh = mk_wh (Xorshift.create 5) in
      ignore (Warehouse.refresh wh);
      check Alcotest.int "no span leaks" 0 (Obs.open_spans ());
      let spans = Obs.recent_spans () in
      let find name = List.find_opt (fun sp -> String.equal sp.Obs.Span.name name) spans in
      (match (find "warehouse.refresh", find "maintenance.txn") with
      | Some outer, Some inner ->
        check Alcotest.int "refresh is outermost" 0 outer.Obs.Span.depth;
        check Alcotest.int "maintenance nests inside" 1 inner.Obs.Span.depth;
        Alcotest.(check bool) "both closed" true
          (outer.Obs.Span.status = Obs.Span.Closed && inner.Obs.Span.status = Obs.Span.Closed)
      | _ -> Alcotest.fail "expected warehouse.refresh and maintenance.txn spans");
      (* The protocol phases all fired and feed the phase summaries. *)
      let phases = List.map fst (Obs.phase_summaries ()) in
      List.iter
        (fun p ->
          Alcotest.(check bool) (p ^ " recorded") true (List.mem p phases))
        [ "warehouse.refresh"; "maintenance.txn"; "maintenance.flag"; "maintenance.apply";
          "maintenance.flush"; "maintenance.publish" ])

let test_crash_spans_abort_not_leak () =
  with_obs (fun () ->
      let wh = mk_wh (Xorshift.create 6) in
      ignore (Warehouse.refresh wh);
      let db = Warehouse.database wh in
      Database.save db;
      let disk = Database.disk db in
      let rng = Xorshift.create 7 in
      let src = Warehouse.source wh "DailySales" in
      Warehouse.queue_changes wh ~view:"DailySales"
        (Sales_gen.gen_batch rng src ~day:4 ~inserts:40 ~updates:10 ~deletes:5);
      Obs.reset ();
      Disk.set_faults disk { Disk.no_faults with Disk.crash_at_write = Some 2 };
      (try
         ignore (Warehouse.refresh wh);
         Alcotest.fail "crash point did not fire"
       with Disk.Crash _ -> ());
      Disk.clear_faults disk;
      check Alcotest.int "no span leaks through the crash" 0 (Obs.open_spans ());
      let aborted =
        List.filter (fun sp -> sp.Obs.Span.status = Obs.Span.Aborted) (Obs.recent_spans ())
      in
      Alcotest.(check bool) "crash recorded as aborted spans" true (List.length aborted >= 2);
      Alcotest.(check bool) "refresh span among the aborted" true
        (List.exists (fun sp -> String.equal sp.Obs.Span.name "warehouse.refresh") aborted);
      (* Restart-time recovery on the surviving image: its spans open and
         close normally. *)
      Obs.reset ();
      let _vnl, outcome =
        Recovery.reopen ~pool_capacity:64 disk
          ~tables:
            [ ("DailySales",
               Vnl_warehouse.View_def.target_schema (Sales_gen.daily_sales_view ())) ]
      in
      Alcotest.(check bool) "repair ran on the interrupted image" true outcome.Recovery.interrupted;
      check Alcotest.int "recovery leaks no spans" 0 (Obs.open_spans ());
      let names = List.map (fun sp -> sp.Obs.Span.name) (Obs.recent_spans ()) in
      Alcotest.(check bool) "recovery spans closed" true
        (List.mem "recovery.reopen" names && List.mem "recovery.repair" names))

(* ---------- observability off is free ---------- *)

let analyst = "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state"

(* The same deterministic workload, rendered to comparable artifacts:
   query output strings, pool counters, raw disk counters. *)
let run_differential () =
  let rng = Xorshift.create 99 in
  let wh = mk_wh rng in
  ignore (Warehouse.refresh wh);
  let s = Warehouse.begin_session wh in
  let r1 = Warehouse.query wh s analyst in
  let src = Warehouse.source wh "DailySales" in
  Warehouse.queue_changes wh ~view:"DailySales"
    (Sales_gen.gen_batch rng src ~day:4 ~inserts:30 ~updates:10 ~deletes:5);
  ignore (Warehouse.refresh wh);
  let r2 = Warehouse.query wh s analyst in
  Warehouse.end_session wh s;
  let db = Warehouse.database wh in
  let render r = Format.asprintf "%a" Vnl_query.Executor.pp_result r in
  (render r1, render r2, Database.io_stats db, Disk.stats (Database.disk db))

let test_disabled_is_identical () =
  let on = with_obs ~enabled:true run_differential in
  let off = with_obs ~enabled:false run_differential in
  let q1_on, q2_on, io_on, d_on = on and q1_off, q2_off, io_off, d_off = off in
  check Alcotest.string "pre-refresh query identical" q1_on q1_off;
  check Alcotest.string "post-refresh query identical" q2_on q2_off;
  Alcotest.(check bool) "pool I/O counters identical" true (io_on = io_off);
  Alcotest.(check bool) "disk counters identical" true (d_on = d_off)

let test_pool_reset_via_registry () =
  with_obs ~enabled:false (fun () ->
      let disk = Disk.create () in
      let bp = Buffer_pool.create ~capacity:2 disk in
      let pages = List.init 4 (fun _ -> Buffer_pool.alloc_page bp) in
      List.iter
        (fun pid -> Buffer_pool.with_page_mut bp pid (fun b -> Bytes.set b 0 'x'))
        pages;
      Buffer_pool.flush_all bp;
      let s = Buffer_pool.stats bp in
      Alcotest.(check bool) "work counted with obs off" true
        (s.Buffer_pool.logical_reads > 0 && s.Buffer_pool.physical_writes > 0);
      Buffer_pool.reset_stats bp;
      let z = Buffer_pool.stats bp in
      check Alcotest.int "logical reads zeroed" 0 z.Buffer_pool.logical_reads;
      check Alcotest.int "hits zeroed" 0 z.Buffer_pool.hits;
      check Alcotest.int "misses zeroed" 0 z.Buffer_pool.misses;
      check Alcotest.int "writes zeroed" 0 z.Buffer_pool.physical_writes;
      check Alcotest.int "evictions zeroed" 0 z.Buffer_pool.evictions;
      check Alcotest.int "disk writes zeroed too" 0 (Disk.stats disk).Disk.writes;
      (* The registry is the single source of truth: the same cells the
         stats record reads are the ones the registry resets. *)
      List.iter
        (fun c -> check Alcotest.int (Obs.Counter.name c ^ " zero") 0 (Obs.Counter.get c))
        (Obs.Registry.counters (Buffer_pool.metrics_registry bp)))

let test_phases_json_shape () =
  with_obs (fun () ->
      let wh = mk_wh (Xorshift.create 11) in
      ignore (Warehouse.refresh wh);
      let j = Json.parse (Obs.phases_json ()) in
      match j with
      | Json.Obj entries ->
        Alcotest.(check bool) "non-empty" true (entries <> []);
        List.iter
          (fun (name, v) ->
            match v with
            | Json.Obj fields ->
              List.iter
                (fun k ->
                  Alcotest.(check bool) (name ^ " has " ^ k) true (List.mem_assoc k fields))
                [ "count"; "total_ms"; "mean_ms"; "p99_ms" ]
            | _ -> Alcotest.fail (name ^ ": phase entry is not an object"))
          entries
      | _ -> Alcotest.fail "phases_json is not an object")

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter;
    Alcotest.test_case "gauge initial value" `Quick test_gauge_initial;
    Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
    Alcotest.test_case "registry idempotent by name" `Quick test_registry_idempotent;
    Alcotest.test_case "to_json round-trips" `Quick test_json_roundtrip;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_render;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "refresh span nesting" `Quick test_refresh_span_nesting;
    Alcotest.test_case "crash aborts spans, never leaks" `Quick test_crash_spans_abort_not_leak;
    Alcotest.test_case "disabled observability is invisible" `Quick test_disabled_is_identical;
    Alcotest.test_case "buffer-pool reset through registry" `Quick test_pool_reset_via_registry;
    Alcotest.test_case "phases_json shape" `Quick test_phases_json_shape;
  ]
