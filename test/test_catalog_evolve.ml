(* The versioned-catalog proof battery: online schema evolution under 2VNL.

   The engine promotes the catalog to immutable VN-stamped generations:
   [ALTER TABLE .. ADD COLUMN], [CREATE VIEW], and [CREATE INDEX] ride a
   maintenance transaction, stage a pending generation, and activate it
   atomically with the version publish.  The battery pins down every
   user-visible promise:

   - generation pinning: a session opened before the evolution commit
     resolves names, schemas, and cached plans against its old generation
     for its whole lifetime — it NEVER sees the new column — while a
     session opened after always does (deterministic Sched interleavings,
     checked against the full-history {!Oracle});
   - crash atomicity: the crash-at-every-write-k sweep of test_faults,
     run over the evolution publish ladder — every crash point reopens to
     exactly the pre- or the post-evolution catalog, never a hybrid;
   - widened decode: QCheck differential — decoding a pre-evolution raw
     record through the new generation's schema equals the old-generation
     decode plus defaults, byte-compared after re-encoding;
   - random evolution sequences interleaved with maintenance batches,
     including save/reopen of the multi-generation catalog;
   - plan-cache generations: plans compiled under generation g miss (not
     stale-hit) under g+1 while a still-pinned g-session keeps hitting its
     cached plan (Obs counter regression);
   - free-running readers: add_column + CREATE VIEW committed under >= 4
     concurrent reader domains with zero inconsistent reads and zero
     decode errors. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Schema = Vnl_relation.Schema
module Dtype = Vnl_relation.Dtype
module Disk = Vnl_storage.Disk
module Heap_file = Vnl_storage.Heap_file
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Twovnl = Vnl_core.Twovnl
module Schema_ext = Vnl_core.Schema_ext
module Recovery = Vnl_core.Recovery
module Batch = Vnl_core.Batch
module Obs = Vnl_obs.Obs
module Sched = Vnl_util.Sched
module Xorshift = Vnl_util.Xorshift
module Domain_pool = Vnl_util.Domain_pool

let check = Alcotest.check

let table_name = "DailySales"

let tables = [ (table_name, Fixtures.daily_sales) ]

let groups =
  [
    ("San Jose", "CA", "golf equip");
    ("San Jose", "CA", "racquetball");
    ("Berkeley", "CA", "racquetball");
    ("Berkeley", "CA", "rollerblades");
    ("Novato", "CA", "rollerblades");
    ("Novato", "CA", "tennis");
    ("Fresno", "CA", "tennis");
    ("Reno", "NV", "golf equip");
    ("Tahoe", "NV", "skiing");
    ("Truckee", "NV", "skiing");
  ]

let key_of (city, state, pl) ~day =
  [ Value.Str city; Value.Str state; Value.Str pl; Value.date_of_mdy 10 day 96 ]

let initial_rows =
  List.concat_map
    (fun g ->
      List.map
        (fun day -> Tuple.make Fixtures.daily_sales (key_of g ~day @ [ Value.Int 1000 ]))
        [ 13; 14 ])
    groups

let fresh ?n () =
  let db = Database.create ~pool_capacity:8 () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ?n ~name:table_name Fixtures.daily_sales);
  Twovnl.load_initial wh table_name initial_rows;
  wh

let discount = Schema.attr ~updatable:true "discount" Dtype.Int

let visible vnl =
  let s = Twovnl.Session.begin_ vnl in
  let rows = Twovnl.Session.read_table vnl s table_name in
  Twovnl.Session.end_ vnl s;
  List.sort Tuple.compare rows

(* Project a (possibly widened) base tuple down to its first [arity]
   cells — the original view of an evolved row. *)
let project arity tuple = List.filteri (fun i _ -> i < arity) (Tuple.values tuple)

let base_arity = Schema.arity Fixtures.daily_sales

let evolve_discount ?(default = Value.Int 7) vnl =
  Recovery.run_maintenance (Twovnl.database vnl) vnl (fun txn ->
      Twovnl.Txn.add_column txn ~table:table_name discount ~default)

(* ---------- generation pinning (the core promise) ---------- *)

let test_generation_pinning () =
  let vnl = fresh () in
  let s_old = Twovnl.Session.begin_ vnl in
  let before = Twovnl.Session.read_table vnl s_old table_name in
  evolve_discount vnl;
  check Alcotest.int "head generation advanced" 1 (Twovnl.catalog_generation vnl);
  check Alcotest.int "old session pinned to gen 0" 0 (Twovnl.Session.generation vnl s_old);
  let s_new = Twovnl.Session.begin_ vnl in
  check Alcotest.int "new session resolves gen 1" 1 (Twovnl.Session.generation vnl s_new);
  (* Old session: same schema view as before the commit, forever. *)
  let after = Twovnl.Session.read_table vnl s_old table_name in
  check Alcotest.bool "old session rows unchanged" true (List.equal Tuple.equal before after);
  List.iter
    (fun t -> check Alcotest.int "old session arity" base_arity (Tuple.arity t))
    after;
  (try
     ignore (Twovnl.Session.query vnl s_old "SELECT discount FROM DailySales");
     Alcotest.fail "old session resolved the new column"
   with
  | Twovnl.Expired _ -> Alcotest.fail "old session expired prematurely"
  | _ -> ());
  (* New session: every existing row carries the default. *)
  let rows = Twovnl.Session.read_table vnl s_new table_name in
  check Alcotest.int "new session sees every row" (List.length initial_rows) (List.length rows);
  List.iter
    (fun t ->
      check Alcotest.int "new session arity" (base_arity + 1) (Tuple.arity t);
      check Alcotest.bool "default filled" true (Value.equal (Tuple.get t base_arity) (Value.Int 7)))
    rows;
  let r = Twovnl.Session.query vnl s_new "SELECT city, discount FROM DailySales" in
  List.iter
    (fun row ->
      match row with
      | [ _; d ] -> check Alcotest.bool "SQL sees the default" true (Value.equal d (Value.Int 7))
      | _ -> Alcotest.fail "row shape")
    r.Vnl_query.Executor.rows;
  (* The old session keeps working on its old statements. *)
  let r_old = Twovnl.Session.query vnl s_old "SELECT COUNT(*) FROM DailySales" in
  (match r_old.Vnl_query.Executor.rows with
  | [ [ Value.Int n ] ] -> check Alcotest.int "old SQL still served" (List.length before) n
  | _ -> Alcotest.fail "count shape");
  Twovnl.Session.end_ vnl s_old;
  Twovnl.Session.end_ vnl s_new

let promo_schema =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~updatable:true "amount" Dtype.Int;
    ]

let test_add_view_and_index () =
  let vnl = fresh () in
  let s_old = Twovnl.Session.begin_ vnl in
  Recovery.run_maintenance (Twovnl.database vnl) vnl (fun txn ->
      Twovnl.Txn.add_table txn ~name:"PromoSales" promo_schema;
      Twovnl.Txn.insert txn ~table:"PromoSales" [ Value.Str "Reno"; Value.Int 42 ];
      Twovnl.Txn.add_index txn ~table:table_name ~index:"by_product" [ "product_line" ]);
  check Alcotest.int "one generation for the whole transaction" 1
    (Twovnl.catalog_generation vnl);
  (* The old session cannot resolve the new view... *)
  (try
     ignore (Twovnl.Session.read_table vnl s_old "PromoSales");
     Alcotest.fail "old session resolved the new view"
   with
  | Twovnl.Expired _ -> Alcotest.fail "old session expired prematurely"
  | Failure _ -> ());
  Twovnl.Session.end_ vnl s_old;
  (* ...while a new session reads its committed content. *)
  let s = Twovnl.Session.begin_ vnl in
  let rows = Twovnl.Session.read_table vnl s "PromoSales" in
  check Alcotest.int "new view populated in its own transaction" 1 (List.length rows);
  Twovnl.Session.end_ vnl s;
  let h = Twovnl.handle_exn vnl table_name in
  check Alcotest.bool "index landed on the live table" true
    (List.mem_assoc "by_product" (Table.indexes (Twovnl.table h)));
  (* Maintenance after the evolution works against the new catalog. *)
  Recovery.run_maintenance (Twovnl.database vnl) vnl (fun txn ->
      check Alcotest.bool "post-evolution update" true
        (Twovnl.Txn.update_by_key txn ~table:"PromoSales" ~key:[ Value.Str "Reno" ]
           ~set:[ ("amount", Value.Int 43) ]))

let test_evolution_abort_unstages () =
  let vnl = fresh () in
  let db = Twovnl.database vnl in
  let h_before = Twovnl.handle_exn vnl table_name in
  let pre = visible vnl in
  let txn = Twovnl.Txn.begin_ vnl in
  Twovnl.Txn.add_column txn ~table:table_name discount ~default:(Value.Int 7);
  Twovnl.Txn.add_table txn ~name:"PromoSales" promo_schema;
  Twovnl.Txn.insert txn ~table:"PromoSales" [ Value.Str "Reno"; Value.Int 42 ];
  Twovnl.Txn.insert txn ~table:table_name
    (key_of ("Reno", "NV", "golf equip") ~day:20 @ [ Value.Int 5 ]);
  ignore (Twovnl.Txn.abort txn);
  check Alcotest.int "no generation activated" 0 (Twovnl.catalog_generation vnl);
  check Alcotest.bool "generation metadata restored" true (Database.generations_meta db = []);
  check Alcotest.bool "logical name rebound to the original table" true
    (Twovnl.table (Twovnl.handle_exn vnl table_name) == Twovnl.table h_before);
  check Alcotest.bool "staged view dropped" true (Database.table db "PromoSales" = None);
  check Alcotest.bool "no frozen alias left behind" true
    (List.for_all (fun tbl -> not (String.contains (Table.name tbl) '@')) (Database.tables db));
  check Alcotest.bool "reader state untouched" true
    (List.equal Tuple.equal pre (visible vnl));
  (* The same evolution commits cleanly afterwards. *)
  evolve_discount vnl;
  check Alcotest.int "evolution after abort" 1 (Twovnl.catalog_generation vnl)

(* ---------- deterministic interleavings vs the oracle ---------- *)

(* Maintenance fiber: DML (vn 2), evolution (vn 3), DML at the original
   arity (vn 4, exercising insert padding).  Reader fibers open sessions
   wherever the schedule drops them and must see exactly the oracle state
   of their VN in the schema of their generation: arity 5 before the
   evolution VN, arity 6 with the default after — never a mixture. *)
let evolve_vn = 3

let batch1 =
  [
    Batch.Update (key_of ("San Jose", "CA", "golf equip") ~day:14, [ (4, Value.Int 2000) ]);
    Batch.Delete (key_of ("Truckee", "NV", "skiing") ~day:13);
  ]

let batch2 =
  [
    Batch.Insert
      (Tuple.make Fixtures.daily_sales
         (key_of ("Fresno", "CA", "tennis") ~day:20 @ [ Value.Int 333 ]));
    Batch.Update (key_of ("Reno", "NV", "golf equip") ~day:14, [ (4, Value.Int 777) ]);
  ]

let oracle_op = function
  | Batch.Insert t -> Oracle.Ins t
  | Batch.Update (k, a) -> Oracle.Upd (k, a)
  | Batch.Delete k -> Oracle.Del k

let scheduled_evolution ~sched_seed =
  let vnl = fresh ~n:4 () in
  let oracle = Oracle.create Fixtures.daily_sales in
  Oracle.apply_txn oracle ~vn:1 (List.map (fun t -> Oracle.Ins t) initial_rows);
  Oracle.apply_txn oracle ~vn:2 (List.map oracle_op batch1);
  Oracle.apply_txn oracle ~vn:4 (List.map oracle_op batch2);
  let db = Twovnl.database vnl in
  let maintainer () =
    Recovery.run_maintenance db vnl (fun txn ->
        ignore (Twovnl.Txn.apply_batch txn ~table:table_name batch1));
    Sched.yield ();
    evolve_discount vnl;
    Sched.yield ();
    Recovery.run_maintenance db vnl (fun txn ->
        ignore (Twovnl.Txn.apply_batch txn ~table:table_name batch2))
  in
  let reader name =
    ( name,
      fun () ->
        for _ = 1 to 4 do
          let s = Twovnl.Session.begin_ vnl in
          (try
             let vn = Twovnl.Session.vn s in
             let gen = Twovnl.Session.generation vnl s in
             check Alcotest.int (name ^ ": generation follows the session VN")
               (if vn >= evolve_vn then 1 else 0)
               gen;
             let rows = Twovnl.Session.read_table vnl s table_name in
             let expected = Oracle.visible oracle ~vn in
             let projected =
               List.map (fun t -> Tuple.make Fixtures.daily_sales (project base_arity t)) rows
             in
             if not (Oracle.equal_views projected expected) then
               Alcotest.failf "%s at vn %d: rows disagree with the oracle" name vn;
             List.iter
               (fun t ->
                 if gen = 0 then
                   check Alcotest.int (name ^ ": old-generation arity") base_arity
                     (Tuple.arity t)
                 else begin
                   check Alcotest.int (name ^ ": new-generation arity") (base_arity + 1)
                     (Tuple.arity t);
                   if not (Value.equal (Tuple.get t base_arity) (Value.Int 7)) then
                     Alcotest.failf "%s at vn %d: added column not defaulted" name vn
                 end)
               rows
           with Twovnl.Expired _ -> ());
          Twovnl.Session.end_ vnl s;
          Sched.yield ()
        done )
  in
  let trace =
    Sched.run ~seed:sched_seed
      [ ("maintainer", maintainer); reader "reader-1"; reader "reader-2"; reader "reader-3" ]
  in
  check Alcotest.int "all three transactions committed" 4 (Twovnl.current_vn vnl);
  let final = visible vnl in
  let expected = Oracle.visible oracle ~vn:4 in
  check Alcotest.bool "final state equals oracle (base projection)" true
    (Oracle.equal_views
       (List.map (fun t -> Tuple.make Fixtures.daily_sales (project base_arity t)) final)
       expected);
  trace

let test_scheduled_interleavings () =
  for sched_seed = 1 to 12 do
    ignore (scheduled_evolution ~sched_seed)
  done

let test_scheduled_deterministic () =
  let t1 = scheduled_evolution ~sched_seed:9 in
  let t2 = scheduled_evolution ~sched_seed:9 in
  check (Alcotest.list Alcotest.string) "same seed, same schedule" t1 t2

(* ---------- crash sweep over the evolution publish ladder ---------- *)

(* Pre-transaction platter image, cleanly saved. *)
let build_base () =
  let db = Database.create ~pool_capacity:4 () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ~name:table_name Fixtures.daily_sales);
  Twovnl.load_initial wh table_name initial_rows;
  Database.save db;
  Database.disk db

let reopen disk = Recovery.reopen ~pool_capacity:4 disk ~tables

(* The evolution transaction under test: column + view + index + DML (the
   insert at the original arity exercises padding through the staged
   catalog). *)
let run_evolution vnl =
  Recovery.run_maintenance (Twovnl.database vnl) vnl (fun txn ->
      Twovnl.Txn.add_column txn ~table:table_name discount ~default:(Value.Int 7);
      Twovnl.Txn.add_table txn ~name:"PromoSales" promo_schema;
      Twovnl.Txn.insert txn ~table:"PromoSales" [ Value.Str "Reno"; Value.Int 42 ];
      Twovnl.Txn.add_index txn ~table:table_name ~index:"by_product" [ "product_line" ];
      Twovnl.Txn.insert txn ~table:table_name
        (key_of ("Reno", "NV", "golf equip") ~day:20 @ [ Value.Int 5 ]))

let same = List.equal Tuple.equal

(* Classify a reopened image as exactly pre- or post-evolution; anything
   else fails the sweep.  The whole catalog must agree with the data:
   generation index, visible rows (arity included), the new view's
   presence, and the secondary index. *)
let classify vnl2 ~pre ~post k =
  let state = visible vnl2 in
  let gen = Twovnl.catalog_generation vnl2 in
  let promo = Twovnl.handle vnl2 "PromoSales" in
  let indexed =
    List.mem_assoc "by_product" (Table.indexes (Twovnl.table (Twovnl.handle_exn vnl2 table_name)))
  in
  if gen = 0 then begin
    if not (same state pre) then
      Alcotest.failf "crash at write %d: gen 0 but data is not the pre state" k;
    if promo <> None then Alcotest.failf "crash at write %d: gen 0 with the new view" k;
    if indexed then Alcotest.failf "crash at write %d: gen 0 with the new index" k;
    `Pre
  end
  else if gen = 1 then begin
    if not (same state post) then
      Alcotest.failf "crash at write %d: gen 1 but data is not the post state" k;
    (match promo with
    | Some h ->
      let s = Twovnl.Session.begin_ vnl2 in
      let rows = Twovnl.Session.read_table vnl2 s "PromoSales" in
      Twovnl.Session.end_ vnl2 s;
      ignore h;
      if List.length rows <> 1 then
        Alcotest.failf "crash at write %d: new view lost its committed row" k
    | None -> Alcotest.failf "crash at write %d: gen 1 without the new view" k);
    if not indexed then Alcotest.failf "crash at write %d: gen 1 without the new index" k;
    `Post
  end
  else Alcotest.failf "crash at write %d: impossible generation %d" k gen

let sweep_evolution ?(tear = true) seed =
  let base = build_base () in
  let pre, post, writes =
    let d = Disk.clone base in
    let vnl, out = reopen d in
    Alcotest.(check bool) "clean image needs no repair" false out.Recovery.interrupted;
    let pre = visible vnl in
    Disk.reset_stats d;
    run_evolution vnl;
    ((pre : Tuple.t list), visible vnl, (Disk.stats d).Disk.writes)
  in
  Alcotest.(check bool) "evolution changed the state" false (same pre post);
  Alcotest.(check bool) "the ladder writes enough to sweep" true (writes > 5);
  let n_pre = ref 0 and n_post = ref 0 and torn_detected = ref 0 and torn_ok = ref 0 in
  let rng = Xorshift.create (seed * 7919) in
  let clean_crash k prefix =
    let d = Disk.clone base in
    let vnl, _ = reopen d in
    Disk.set_faults d { Disk.no_faults with crash_at_write = Some k; torn_prefix = prefix };
    (try
       run_evolution vnl;
       Alcotest.failf "crash point %d did not fire" k
     with Disk.Crash _ -> ());
    Disk.clear_faults d;
    let vnl2, _ = reopen d in
    (match classify vnl2 ~pre ~post k with
    | `Pre ->
      incr n_pre;
      (* A pre-state reopen accepts the same evolution and reaches post. *)
      run_evolution vnl2;
      ignore (classify vnl2 ~pre ~post k)
    | `Post -> incr n_post)
  in
  for k = 1 to writes do
    clean_crash k 0;
    clean_crash k (Disk.page_size base);
    if tear then begin
      let d = Disk.clone base in
      let vnl, _ = reopen d in
      let prefix = 1 + Xorshift.int rng (Disk.page_size d - 1) in
      Disk.set_faults d { Disk.no_faults with crash_at_write = Some k; torn_prefix = prefix };
      (try
         run_evolution vnl;
         Alcotest.failf "torn crash point %d did not fire" k
       with Disk.Crash _ -> ());
      Disk.clear_faults d;
      match reopen d with
      | exception Disk.Corrupt_page _ -> incr torn_detected
      | vnl2, _ ->
        ignore (classify vnl2 ~pre ~post k);
        incr torn_ok
    end
  done;
  (writes, !n_pre, !n_post, !torn_detected, !torn_ok)

let test_crash_sweep () =
  let writes, n_pre, n_post, torn_detected, _ = sweep_evolution 42 in
  check Alcotest.int "every crash point accounted for" (2 * writes) (n_pre + n_post);
  Alcotest.(check bool) "early crash points reopen pre-evolution" true (n_pre > 0);
  Alcotest.(check bool) "the final crash point reopens post-evolution" true (n_post > 0);
  Alcotest.(check bool) "some torn write was detected by checksum" true (torn_detected > 0)

(* ---------- QCheck: widened decode differential ---------- *)

let dtype_pool = [| Dtype.Int; Dtype.Float; Dtype.Bool; Dtype.Date; Dtype.Str 8 |]

let random_value rng = function
  | Dtype.Int -> Value.Int (Xorshift.int rng 1_000_000 - 500_000)
  | Dtype.Float -> Value.Float (float_of_int (Xorshift.int rng 10_000) /. 7.0)
  | Dtype.Bool -> Value.Bool (Xorshift.bool rng)
  | Dtype.Date -> Value.Date (19960101 + Xorshift.int rng 10000)
  | Dtype.Str n ->
    Value.Str (String.init (1 + Xorshift.int rng (n - 1)) (fun _ -> Char.chr (97 + Xorshift.int rng 26)))

(* Random base schema (unique int key + 1..4 payload columns, some
   updatable), random extended rows with in-use version slots, one added
   column with a random default: decoding every stored raw record through
   the new generation's layout must equal widening the old-generation
   decode — byte-compared after re-encoding under the new schema. *)
let widen_differential seed =
  let rng = Xorshift.create seed in
  let payload =
    List.init (1 + Xorshift.int rng 4) (fun i ->
        let dt = dtype_pool.(Xorshift.int rng (Array.length dtype_pool)) in
        Schema.attr ~updatable:(Xorshift.bool rng) (Printf.sprintf "c%d" i) dt)
  in
  let base = Schema.make (Schema.attr ~key:true "k" Dtype.Int :: payload) in
  let from_ = Schema_ext.extend ~n:2 base in
  let added_dt = dtype_pool.(Xorshift.int rng (Array.length dtype_pool)) in
  let added = Schema.attr ~updatable:(Xorshift.bool rng) "extra" added_dt in
  let default = random_value rng added_dt in
  let to_ = Schema_ext.extend ~n:2 (Schema.extend_with base added) in
  let w = Schema_ext.widening ~from_ ~to_ ~defaults:[ ("extra", default) ] in
  let db = Database.create () in
  let table = Database.create_table db "t" (Schema_ext.extended from_) in
  for i = 1 to 5 + Xorshift.int rng 15 do
    let row =
      Tuple.make base
        (Value.Int i :: List.map (fun a -> random_value rng a.Schema.dtype) payload)
    in
    (* Half fresh inserts, half with a populated pre-update slot. *)
    let ext_tuple =
      if Xorshift.bool rng then Schema_ext.fresh_insert from_ ~vn:(1 + Xorshift.int rng 5) row
      else
        Tuple.make (Schema_ext.extended from_)
          ([ Value.Int (2 + Xorshift.int rng 5); Vnl_core.Op.to_value Vnl_core.Op.Update ]
          @ Tuple.values row
          @ List.map
              (fun j -> random_value rng (Schema.attribute base j).Schema.dtype)
              (Schema_ext.updatable_base_indices from_))
    in
    ignore (Table.insert ~check:false table ext_tuple)
  done;
  let heap = Table.heap table in
  let decoded = ref [] in
  Heap_file.iter_tuples heap (fun t -> decoded := t :: !decoded);
  let raw = ref [] in
  Heap_file.iter_records heap (fun buf off -> raw := Schema_ext.decode_widened w buf off :: !raw);
  let olds = List.rev !decoded and news = List.rev !raw in
  List.length olds = List.length news
  && List.for_all2
       (fun old_t raw_t ->
         let mem_t = Schema_ext.widen w old_t in
         Bytes.equal
           (Tuple.encode (Schema_ext.extended to_) raw_t)
           (Tuple.encode (Schema_ext.extended to_) mem_t))
       olds news

let qcheck_widen_decode =
  QCheck.Test.make ~count:60
    ~name:"widened raw decode = widen of old decode (byte-compared)"
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    widen_differential

(* ---------- QCheck: random evolution sequences ---------- *)

(* Random interleaving of maintenance batches and evolutions against one
   warehouse: after every transaction a fresh session's view must equal
   the oracle at its VN (base projection) with the accumulated defaults
   appended; a session pinned across each evolution must keep the old
   arity.  Finishes with save + reopen: the multi-generation catalog must
   rebuild to the same state. *)
let evolution_sequence seed =
  let rng = Xorshift.create seed in
  let db = Database.create ~pool_capacity:8 () in
  let vnl = Twovnl.init db in
  ignore (Twovnl.register_table vnl ~n:3 ~name:table_name Fixtures.daily_sales);
  Twovnl.load_initial vnl table_name initial_rows;
  Database.save db;
  let oracle = Oracle.create Fixtures.daily_sales in
  Oracle.apply_txn oracle ~vn:1 (List.map (fun t -> Oracle.Ins t) initial_rows);
  let added = ref [] in
  let day = ref 30 in
  let pool = Array.of_list groups in
  let check_state ?(what = "state") vnl =
    let s = Twovnl.Session.begin_ vnl in
    let vn = Twovnl.Session.vn s in
    let rows = Twovnl.Session.read_table vnl s table_name in
    Twovnl.Session.end_ vnl s;
    let expected = Oracle.visible oracle ~vn in
    let projected =
      List.map (fun t -> Tuple.make Fixtures.daily_sales (project base_arity t)) rows
    in
    if not (Oracle.equal_views projected expected) then
      QCheck.Test.fail_reportf "%s: vn %d disagrees with the oracle" what vn;
    let defaults = List.map snd !added in
    List.iter
      (fun t ->
        if Tuple.arity t <> base_arity + List.length defaults then
          QCheck.Test.fail_reportf "%s: arity %d, want %d" what (Tuple.arity t)
            (base_arity + List.length defaults);
        List.iteri
          (fun i d ->
            if not (Value.equal (Tuple.get t (base_arity + i)) d) then
              QCheck.Test.fail_reportf "%s: added column %d not defaulted" what i)
          defaults)
      rows
  in
  for step = 1 to 6 do
    let vn = Twovnl.current_vn vnl + 1 in
    if Xorshift.chance rng 0.45 && List.length !added < 3 then begin
      (* Evolution: add a column (sometimes an index too). *)
      let name = Printf.sprintf "extra%d" (List.length !added) in
      let attr = Schema.attr ~updatable:(Xorshift.bool rng) name Dtype.Int in
      let default = Value.Int (Xorshift.int rng 100) in
      let s_pin = Twovnl.Session.begin_ vnl in
      let arity_before = Tuple.arity (List.hd (Twovnl.Session.read_table vnl s_pin table_name)) in
      Recovery.run_maintenance db vnl (fun txn ->
          Twovnl.Txn.add_column txn ~table:table_name attr ~default;
          if Xorshift.chance rng 0.3 then
            Twovnl.Txn.add_index txn ~table:table_name
              ~index:(Printf.sprintf "ix%d" step)
              [ "state" ]);
      Oracle.apply_txn oracle ~vn [];
      (* The pinned session keeps its pre-evolution schema view. *)
      let arity_after = Tuple.arity (List.hd (Twovnl.Session.read_table vnl s_pin table_name)) in
      if arity_after <> arity_before then
        QCheck.Test.fail_reportf "pinned session changed arity across evolution";
      Twovnl.Session.end_ vnl s_pin;
      added := !added @ [ (attr, default) ]
    end
    else begin
      (* Maintenance batch at the ORIGINAL arity: inserts are padded. *)
      let g = pool.(Xorshift.int rng (Array.length pool)) in
      incr day;
      let ops =
        [
          Batch.Insert
            (Tuple.make Fixtures.daily_sales (key_of g ~day:!day @ [ Value.Int (Xorshift.int rng 5000) ]));
          Batch.Update (key_of g ~day:14, [ (4, Value.Int (Xorshift.int rng 50_000)) ]);
        ]
      in
      Recovery.run_maintenance db vnl (fun txn ->
          ignore (Twovnl.Txn.apply_batch txn ~table:table_name ops));
      let pad t = Tuple.make Fixtures.daily_sales (project base_arity t) in
      ignore pad;
      Oracle.apply_txn oracle ~vn (List.map oracle_op ops)
    end;
    check_state ~what:(Printf.sprintf "step %d" step) vnl
  done;
  (* Reopen from disk: the generational catalog rebuilds byte-for-byte
     visible state (attach_generations path, possibly several retained
     generations). *)
  Database.save db;
  let disk = Database.disk db in
  let vnl2, out = Recovery.reopen ~pool_capacity:8 ~n:3 disk ~tables in
  if out.Recovery.interrupted then QCheck.Test.fail_report "clean reopen claimed interruption";
  if Twovnl.catalog_generation vnl2 <> List.length !added then
    QCheck.Test.fail_reportf "reopened generation %d, want %d"
      (Twovnl.catalog_generation vnl2) (List.length !added);
  check_state ~what:"after reopen" vnl2;
  true

let qcheck_evolution_sequences =
  QCheck.Test.make ~count:25 ~name:"random evolution sequences vs oracle (with reopen)"
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    evolution_sequence

(* ---------- plan-cache generations (Obs regression) ---------- *)

let counter name = Obs.Counter.get (Obs.Registry.counter name)

let test_plan_cache_per_generation () =
  let was = !Obs.enabled in
  Obs.enabled := true;
  Fun.protect
    ~finally:(fun () -> Obs.enabled := was)
    (fun () ->
      let vnl = fresh ~n:4 () in
      let q = "SELECT city, total_sales FROM DailySales" in
      let q2 = "SELECT COUNT(*) FROM DailySales" in
      let s0 = Twovnl.Session.begin_ vnl in
      let h0 = counter "twovnl.reader_plan_hits" and m0 = counter "twovnl.reader_plan_misses" in
      ignore (Twovnl.Session.query vnl s0 q);
      ignore (Twovnl.Session.query vnl s0 q2);
      check Alcotest.int "first executions compile" (m0 + 2)
        (counter "twovnl.reader_plan_misses");
      ignore (Twovnl.Session.query vnl s0 q);
      check Alcotest.int "re-execution hits" (h0 + 1) (counter "twovnl.reader_plan_hits");
      let inv0 = counter "twovnl.plan_gen_invalidations" in
      let ev0 = counter "twovnl.evolutions" in
      evolve_discount vnl;
      check Alcotest.int "evolution counted" (ev0 + 1) (counter "twovnl.evolutions");
      check Alcotest.int "both gen-0 plans invalidated for new sessions" (inv0 + 2)
        (counter "twovnl.plan_gen_invalidations");
      (* The pinned gen-0 session keeps hitting its cached plan... *)
      let h1 = counter "twovnl.reader_plan_hits" and m1 = counter "twovnl.reader_plan_misses" in
      ignore (Twovnl.Session.query vnl s0 q);
      check Alcotest.int "pinned session still hits" (h1 + 1)
        (counter "twovnl.reader_plan_hits");
      check Alcotest.int "pinned session never recompiles" m1
        (counter "twovnl.reader_plan_misses");
      (* ...while the same statement under gen 1 misses (no stale hit),
         compiles against the new registry, then hits its own cache. *)
      let s1 = Twovnl.Session.begin_ vnl in
      ignore (Twovnl.Session.query vnl s1 q);
      check Alcotest.int "gen-1 first execution misses" (m1 + 1)
        (counter "twovnl.reader_plan_misses");
      ignore (Twovnl.Session.query vnl s1 q);
      check Alcotest.int "gen-1 re-execution hits" (h1 + 2)
        (counter "twovnl.reader_plan_hits");
      (* The caches really are distinct: the gen-1 plan resolves the new
         column, the gen-0 plan must keep failing to. *)
      ignore (Twovnl.Session.query vnl s1 "SELECT discount FROM DailySales");
      (try
         ignore (Twovnl.Session.query vnl s0 "SELECT discount FROM DailySales");
         Alcotest.fail "gen-0 session served a gen-1 plan"
       with
      | Twovnl.Expired _ -> Alcotest.fail "unexpected expiry"
      | _ -> ());
      Twovnl.Session.end_ vnl s0;
      Twovnl.Session.end_ vnl s1)

(* ---------- generation retirement ---------- *)

let test_generation_gc () =
  let vnl = fresh () in
  let s_old = Twovnl.Session.begin_ vnl in
  evolve_discount vnl;
  (* The pinned session holds generation 0 (and its frozen table) alive. *)
  ignore (Twovnl.collect_garbage vnl);
  let db = Twovnl.database vnl in
  check Alcotest.int "both generations retained while pinned" 2
    (List.length (Database.generations_meta db));
  Twovnl.Session.end_ vnl s_old;
  ignore (Twovnl.collect_garbage vnl);
  check Alcotest.int "old generation retired once unpinned" 1
    (List.length (Database.generations_meta db));
  check Alcotest.bool "frozen pre-evolution table dropped" true
    (List.for_all (fun tbl -> not (String.contains (Table.name tbl) '@')) (Database.tables db));
  (* The survivor still serves readers. *)
  let s = Twovnl.Session.begin_ vnl in
  check Alcotest.int "rows survive retirement" (List.length initial_rows)
    (List.length (Twovnl.Session.read_table vnl s table_name));
  Twovnl.Session.end_ vnl s

(* ---------- free-running readers across an evolution ---------- *)

(* add_column + CREATE VIEW committed while >= 4 reader domains free-run:
   every session must be internally consistent (engine read and SQL count
   agree; arity matches the session's generation; defaults filled), and
   no decode error or corrupt page may surface.  Expiry is the only
   acceptable interruption. *)
(* Same strict knob contract as test_parallel_stress: a set-but-broken
   value must fail the run, not silently fall back. *)
let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v > 0 -> v
    | Some _ | None -> Alcotest.failf "%s: expected a positive integer" name)

let test_free_readers_during_evolution () =
  let vnl = fresh ~n:3 () in
  let readers = env_int "VNL_STRESS_DOMAINS" 4 in
  let stop = Atomic.make false in
  let errors = Atomic.make 0 in
  let checked = Atomic.make 0 in
  let results =
    Domain_pool.run ~domains:(readers + 1) (fun ~start rank ->
        start ();
        if rank = 0 then begin
          Recovery.run_maintenance (Twovnl.database vnl) vnl (fun txn ->
              ignore
                (Twovnl.Txn.apply_batch txn ~table:table_name
                   [ Batch.Update (key_of ("Reno", "NV", "golf equip") ~day:14, [ (4, Value.Int 9) ]) ]));
          Recovery.run_maintenance (Twovnl.database vnl) vnl (fun txn ->
              Twovnl.Txn.add_column txn ~table:table_name discount ~default:(Value.Int 7);
              Twovnl.Txn.add_table txn ~name:"PromoSales" promo_schema;
              Twovnl.Txn.insert txn ~table:"PromoSales" [ Value.Str "Reno"; Value.Int 42 ]);
          Recovery.run_maintenance (Twovnl.database vnl) vnl (fun txn ->
              ignore
                (Twovnl.Txn.apply_batch txn ~table:table_name
                   [
                     Batch.Insert
                       (Tuple.make Fixtures.daily_sales
                          (key_of ("Tahoe", "NV", "skiing") ~day:21 @ [ Value.Int 5 ]));
                   ]));
          Atomic.set stop true;
          0
        end
        else begin
          let local = ref 0 in
          while not (Atomic.get stop) do
            let s = Twovnl.Session.begin_ vnl in
            (try
               let gen = Twovnl.Session.generation vnl s in
               let rows = Twovnl.Session.read_table vnl s table_name in
               let want_arity = if gen = 0 then base_arity else base_arity + 1 in
               List.iter
                 (fun t ->
                   if Tuple.arity t <> want_arity then Atomic.incr errors;
                   if gen > 0 && not (Value.equal (Tuple.get t base_arity) (Value.Int 7)) then
                     Atomic.incr errors)
                 rows;
               (* Cross-path consistency pair: SQL through the plan cache
                  and the engine-level extract must agree. *)
               let r = Twovnl.Session.query vnl s "SELECT COUNT(*) FROM DailySales" in
               (match r.Vnl_query.Executor.rows with
               | [ [ Value.Int n ] ] -> if n <> List.length rows then Atomic.incr errors
               | _ -> Atomic.incr errors);
               (* The new view resolves iff the session's generation has it. *)
               (match Twovnl.Session.read_table vnl s "PromoSales" with
               | rows' -> if gen = 0 || List.length rows' <> 1 then Atomic.incr errors
               | exception Failure _ -> if gen <> 0 then Atomic.incr errors);
               incr local;
               Atomic.incr checked
             with Twovnl.Expired _ -> ());
            Twovnl.Session.end_ vnl s
          done;
          !local
        end)
  in
  ignore results;
  check Alcotest.int "zero inconsistent reads" 0 (Atomic.get errors);
  Alcotest.(check bool) "readers actually ran" true (Atomic.get checked > 0);
  check Alcotest.int "evolution committed under load" 1 (Twovnl.catalog_generation vnl)

let suite =
  [
    Alcotest.test_case "generation pinning: old sessions never see the column" `Quick
      test_generation_pinning;
    Alcotest.test_case "CREATE VIEW + CREATE INDEX in one evolution" `Quick
      test_add_view_and_index;
    Alcotest.test_case "abort unstages the pending generation" `Quick
      test_evolution_abort_unstages;
    Alcotest.test_case "scheduled interleavings vs oracle" `Quick test_scheduled_interleavings;
    Alcotest.test_case "scheduled interleavings are deterministic" `Quick
      test_scheduled_deterministic;
    Alcotest.test_case "crash-at-every-write-k sweep over the evolution ladder" `Quick
      test_crash_sweep;
    QCheck_alcotest.to_alcotest qcheck_widen_decode;
    QCheck_alcotest.to_alcotest qcheck_evolution_sequences;
    Alcotest.test_case "plan cache is per-generation" `Quick test_plan_cache_per_generation;
    Alcotest.test_case "GC retires unpinnable generations" `Quick test_generation_gc;
    Alcotest.test_case "free-running readers across an evolution" `Quick
      test_free_readers_during_evolution;
  ]
