(* Property tests: random maintenance histories driven through the 2VNL/nVNL
   facade are checked, version by version, against the full-history Oracle.
   This is the serializability heart of the reproduction: every reader view
   inside the algorithm's version window must equal the committed snapshot. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Twovnl = Vnl_core.Twovnl
module Reader = Vnl_core.Reader
module Schema_ext = Vnl_core.Schema_ext
module Gc = Vnl_core.Gc
module Xorshift = Vnl_util.Xorshift

let kv_schema =
  Schema.make [ Schema.attr ~key:true "id" Dtype.Int; Schema.attr ~updatable:true "v" Dtype.Int ]

let kv id v = Tuple.make kv_schema [ Value.Int id; Value.Int v ]

type scenario_result = {
  mismatches : string list;
  committed_vns : int list;
}

(* Drive [txns] random maintenance transactions (some aborted) over a fresh
   warehouse with n-version tuples, mirroring every logical operation into
   the oracle, then compare all in-window views. *)
let run_scenario ~seed ~n ~txns ~check_gc =
  let rng = Xorshift.create seed in
  let db = Database.create () in
  let wh = Twovnl.init db in
  let handle = Twovnl.register_table wh ~n ~name:"T" kv_schema in
  let oracle = Oracle.create kv_schema in
  let mismatches = ref [] in
  let committed = ref [] in
  (* Track live and previously-existing-but-deleted keys for generation. *)
  let next_key = ref 0 in
  let fresh_key () =
    incr next_key;
    !next_key
  in
  for _txn = 1 to txns do
    let m = Twovnl.Txn.begin_ wh in
    let vn = Twovnl.Txn.vn m in
    let live = ref (Oracle.live_keys oracle ~vn:(vn - 1)) in
    let dead = ref (Oracle.dead_keys oracle ~vn:(vn - 1)) in
    let ops = ref [] in
    let emit op = ops := op :: !ops in
    let key_of_int k = [ Value.Int k ] in
    let int_of_key = function [ Value.Int k ] -> k | _ -> assert false in
    let nops = Xorshift.int rng 8 in
    for _op = 1 to nops do
      let choice = Xorshift.int rng 10 in
      if choice < 4 || (!live = [] && !dead = []) then begin
        (* Fresh insert. *)
        let k = fresh_key () in
        let v = Xorshift.int rng 1000 in
        Twovnl.Txn.insert m ~table:"T" [ Value.Int k; Value.Int v ];
        emit (Oracle.Ins (kv k v));
        live := key_of_int k :: !live
      end
      else if choice < 6 && !dead <> [] then begin
        (* Insert over a deleted key (Table 2 rows 1-2). *)
        let key = Xorshift.pick_list rng !dead in
        let v = Xorshift.int rng 1000 in
        Twovnl.Txn.insert m ~table:"T" [ List.hd key; Value.Int v ];
        emit (Oracle.Ins (kv (int_of_key key) v));
        dead := List.filter (fun k -> k <> key) !dead;
        live := key :: !live
      end
      else if choice < 8 && !live <> [] then begin
        let key = Xorshift.pick_list rng !live in
        let v = Xorshift.int rng 1000 in
        let hit = Twovnl.Txn.update_by_key m ~table:"T" ~key ~set:[ ("v", Value.Int v) ] in
        if not hit then mismatches := "update_by_key missed a live key" :: !mismatches;
        emit (Oracle.Upd (key, [ (1, Value.Int v) ]))
      end
      else if !live <> [] then begin
        let key = Xorshift.pick_list rng !live in
        let hit = Twovnl.Txn.delete_by_key m ~table:"T" ~key in
        if not hit then mismatches := "delete_by_key missed a live key" :: !mismatches;
        emit (Oracle.Del key);
        live := List.filter (fun k -> k <> key) !live;
        dead := key :: !dead
      end
    done;
    if Xorshift.chance rng 0.25 then begin
      ignore (Twovnl.Txn.abort m)
      (* Oracle does not record the aborted transaction. *)
    end
    else begin
      Twovnl.Txn.commit m;
      Oracle.apply_txn oracle ~vn (List.rev !ops);
      committed := vn :: !committed
    end;
    (* Compare every view inside the n-version window. *)
    let current = Twovnl.current_vn wh in
    let lowest = max 1 (current - (n - 1) + 1) in
    for s = lowest to current do
      let via_vnl =
        try
          Some
            (Oracle.normalize
               (Reader.visible_relation (Twovnl.ext handle) ~session_vn:s (Twovnl.table handle)))
        with Reader.Session_expired _ -> None
      in
      match via_vnl with
      | None ->
        mismatches :=
          Printf.sprintf "unexpected expiry at s=%d current=%d n=%d" s current n :: !mismatches
      | Some view ->
        let expected = Oracle.visible oracle ~vn:s in
        if not (Oracle.equal_views view expected) then
          mismatches :=
            Printf.sprintf "view mismatch at s=%d current=%d n=%d (%d vs %d tuples)" s current n
              (List.length view) (List.length expected)
            :: !mismatches
    done;
    if check_gc && Xorshift.chance rng 0.3 then begin
      (* GC at the tightest legal horizon must not disturb in-window views. *)
      let horizon = max 1 (Twovnl.current_vn wh - (n - 1) + 1) in
      ignore (Gc.collect (Twovnl.ext handle) (Twovnl.table handle) ~min_session_vn:horizon);
      let current = Twovnl.current_vn wh in
      for s = horizon to current do
        let view =
          Oracle.normalize
            (Reader.visible_relation (Twovnl.ext handle) ~session_vn:s (Twovnl.table handle))
        in
        if not (Oracle.equal_views view (Oracle.visible oracle ~vn:s)) then
          mismatches := Printf.sprintf "gc broke view at s=%d" s :: !mismatches
      done
    end
  done;
  { mismatches = !mismatches; committed_vns = List.rev !committed }

let scenario_test ~name ~n ~check_gc =
  QCheck.Test.make ~name ~count:60
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    (fun seed ->
      let r = run_scenario ~seed ~n ~txns:8 ~check_gc in
      match r.mismatches with
      | [] -> true
      | m :: _ -> QCheck.Test.fail_report m)

let qcheck_2vnl = scenario_test ~name:"2VNL views = oracle (random histories)" ~n:2 ~check_gc:false

let qcheck_3vnl = scenario_test ~name:"3VNL views = oracle (random histories)" ~n:3 ~check_gc:false

let qcheck_4vnl_gc =
  scenario_test ~name:"4VNL views = oracle, with GC interleaved" ~n:4 ~check_gc:true

let qcheck_2vnl_gc =
  scenario_test ~name:"2VNL views = oracle, with GC interleaved" ~n:2 ~check_gc:true

(* Rollback property: an aborted transaction leaves all in-window views
   exactly where they were (run_scenario checks views after aborts too,
   since the comparison runs for every transaction, committed or not). *)
let qcheck_many_txns_long_run =
  QCheck.Test.make ~name:"long history stays consistent" ~count:10
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    (fun seed ->
      let r = run_scenario ~seed ~n:3 ~txns:30 ~check_gc:true in
      r.mismatches = [])

(* SQL rewrite equivalence on random 2VNL states. *)
let qcheck_sql_rewrite_equivalence =
  QCheck.Test.make ~name:"SQL rewrite = engine extraction (random states)" ~count:40
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Xorshift.create seed in
      let db = Database.create () in
      let wh = Twovnl.init db in
      let handle = Twovnl.register_table wh ~name:"T" kv_schema in
      Twovnl.load_initial wh "T"
        (List.init 5 (fun i -> kv (i + 1) (Xorshift.int rng 100)));
      (* One committed txn, one active txn. *)
      let bump () =
        let m = Twovnl.Txn.begin_ wh in
        for _ = 1 to Xorshift.int rng 5 do
          let k = 1 + Xorshift.int rng 5 in
          if Xorshift.bool rng then
            ignore
              (Twovnl.Txn.update_by_key m ~table:"T" ~key:[ Value.Int k ]
                 ~set:[ ("v", Value.Int (Xorshift.int rng 100)) ])
          else ignore (Twovnl.Txn.delete_by_key m ~table:"T" ~key:[ Value.Int k ])
        done;
        m
      in
      Twovnl.Txn.commit (bump ());
      let _active = bump () in
      let ok = ref true in
      List.iter
        (fun s ->
          let via_sql =
            Vnl_query.Executor.query db
              ~params:[ ("sessionVN", Value.Int s) ]
              (Vnl_core.Rewrite.reader_select ~lookup:(Twovnl.lookup wh)
                 (Vnl_sql.Parser.parse_select "SELECT id, v FROM T"))
          in
          let via_engine =
            List.map Tuple.values
              (Reader.visible_relation (Twovnl.ext handle) ~session_vn:s (Twovnl.table handle))
          in
          let norm rows = List.sort compare (List.map (List.map Value.to_string) rows) in
          if norm via_sql.Vnl_query.Executor.rows <> norm via_engine then ok := false)
        [ 2; 3 ];
      !ok)

(* Differential: the compiled reader path (Session.query — plan cache plus
   the §4.1 fast path) must return exactly what the interpreter returns for
   the same rewritten statement, for every live session VN over random
   2VNL states. *)
let qcheck_session_query_matches_interpreter =
  QCheck.Test.make ~name:"Session.query (compiled) = interpreter (random states)" ~count:40
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Xorshift.create seed in
      let db = Database.create () in
      let wh = Twovnl.init db in
      Twovnl.register_table wh ~name:"T" kv_schema |> ignore;
      Twovnl.load_initial wh "T" (List.init 6 (fun i -> kv (i + 1) (Xorshift.int rng 100)));
      let s1 = Twovnl.Session.begin_ wh in
      let m = Twovnl.Txn.begin_ wh in
      for _ = 1 to 1 + Xorshift.int rng 4 do
        let k = 1 + Xorshift.int rng 6 in
        if Xorshift.bool rng then
          ignore
            (Twovnl.Txn.update_by_key m ~table:"T" ~key:[ Value.Int k ]
               ~set:[ ("v", Value.Int (Xorshift.int rng 100)) ])
        else ignore (Twovnl.Txn.delete_by_key m ~table:"T" ~key:[ Value.Int k ])
      done;
      Twovnl.Txn.commit m;
      let s2 = Twovnl.Session.begin_ wh in
      let queries =
        [
          ("SELECT id, v FROM T", []);
          ("SELECT id, v FROM T WHERE v >= :lo", [ ("lo", Value.Int (Xorshift.int rng 100)) ]);
          ("SELECT SUM(v) FROM T", []);
          ("SELECT id FROM T WHERE id IN (1, 3, 5) ORDER BY id DESC", []);
          ("SELECT COUNT(*), MIN(v), MAX(v) FROM T WHERE id BETWEEN 2 AND 5", []);
        ]
      in
      List.for_all
        (fun s ->
          List.for_all
            (fun (src, params) ->
              let via_session = Twovnl.Session.query ~params wh s src in
              let via_interp =
                Vnl_query.Executor.query db
                  ~params:(("sessionVN", Value.Int (Twovnl.Session.vn s)) :: params)
                  (Vnl_core.Rewrite.reader_select ~lookup:(Twovnl.lookup wh)
                     (Vnl_sql.Parser.parse_select src))
              in
              Vnl_query.Executor.result_equal via_session via_interp)
            queries)
        [ s1; s2 ])

(* Deterministic soak runs: long histories with aborts and GC, verified
   against the oracle at every step. *)
let soak ~seed ~n ~txns () =
  let r = run_scenario ~seed ~n ~txns ~check_gc:true in
  match r.mismatches with
  | [] -> Alcotest.(check bool) "committed transactions" true (r.committed_vns <> [])
  | m :: _ -> Alcotest.fail m

let suite =
  [
    Alcotest.test_case "soak: 2VNL, 150 txns" `Quick (soak ~seed:1234 ~n:2 ~txns:150);
    Alcotest.test_case "soak: 3VNL, 150 txns" `Quick (soak ~seed:987 ~n:3 ~txns:150);
    Alcotest.test_case "soak: 5VNL, 80 txns" `Quick (soak ~seed:555 ~n:5 ~txns:80);
    QCheck_alcotest.to_alcotest qcheck_2vnl;
    QCheck_alcotest.to_alcotest qcheck_3vnl;
    QCheck_alcotest.to_alcotest qcheck_4vnl_gc;
    QCheck_alcotest.to_alcotest qcheck_2vnl_gc;
    QCheck_alcotest.to_alcotest qcheck_many_txns_long_run;
    QCheck_alcotest.to_alcotest qcheck_sql_rewrite_equivalence;
    QCheck_alcotest.to_alcotest qcheck_session_query_matches_interpreter;
  ]
