(* Tests for the wire protocol and the network serving stack.

   Three layers, increasingly integrated:
   - Wire: encode/decode round-trips (QCheck), incremental decoding,
     and frame fuzzing — truncated, oversized, zero-length, bit-flipped,
     and random byte streams must surface as [`Corrupt] or [`Await],
     never as an escaping exception;
   - Conn: the socket-free protocol state machine — happy path, errors,
     admission of garbage input, backpressure overflow, and the
     deterministic expiry-mid-cursor scenario (a session expired by the
     maintainer receives the pushed [Expired] frame and every later
     Fetch answers [Session_expired]); every path must release the
     session's epoch pin (no stuck GC horizon);
   - Server/Client/Load: real sockets on an ephemeral port, including an
     abrupt mid-cursor disconnect and a small load-generator run. *)

module Value = Vnl_relation.Value
module Database = Vnl_query.Database
module Twovnl = Vnl_core.Twovnl
module Wire = Vnl_net.Wire
module Conn = Vnl_net.Conn
module Server = Vnl_net.Server
module Client = Vnl_net.Client
module Load = Vnl_net.Load

let check = Alcotest.check

(* ---------- fixtures ---------- *)

let initial_rows =
  [
    Fixtures.base_row "San Jose" "CA" "golf equip" 10 14 96 10000;
    Fixtures.base_row "San Jose" "CA" "golf equip" 10 15 96 1500;
    Fixtures.base_row "Berkeley" "CA" "racquetball" 10 14 96 12000;
    Fixtures.base_row "Novato" "CA" "rollerblades" 10 13 96 8000;
  ]

let fresh ?n () =
  let db = Database.create () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ?n ~name:"DailySales" Fixtures.daily_sales);
  Twovnl.load_initial wh "DailySales" initial_rows;
  wh

let commit_once wh =
  let m = Twovnl.Txn.begin_ wh in
  ignore
    (Twovnl.Txn.sql m
       "UPDATE DailySales SET total_sales = total_sales + 1 WHERE city = 'Novato'");
  Twovnl.Txn.commit m

let sql_all = "SELECT city, state, total_sales FROM DailySales"

(* Feed one encoded request into a connection. *)
let push conn req =
  let b = Wire.encode_request req in
  Conn.on_input conn b 0 (Bytes.length b)

(* Drain the connection's queued output and decode it as responses. *)
let drain conn =
  let dec = Wire.Decoder.response () in
  let rec pump () =
    match Conn.peek_output conn with
    | Some (buf, off, len) when len > 0 ->
      Wire.Decoder.feed dec buf off len;
      Conn.consume_output conn len;
      pump ()
    | _ -> ()
  in
  pump ();
  let rec msgs acc =
    match Wire.Decoder.next dec with
    | `Msg m -> msgs (m :: acc)
    | `Await -> List.rev acc
    | `Corrupt m -> Alcotest.failf "server output corrupt: %s" m
  in
  msgs []

let horizon_caught_up wh =
  Twovnl.min_session_vn wh = Twovnl.current_vn wh

(* ---------- wire round-trips ---------- *)

open QCheck.Gen

let small_str = string_size ~gen:(char_range 'a' 'z') (int_range 0 12)

let any_str =
  (* Arbitrary bytes, including NULs and high bits — the wire must not care. *)
  string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40)

let value_gen =
  oneof
    [
      return Value.Null;
      map (fun n -> Value.Int n) (int_range (-1000000) 1000000);
      map (fun f -> Value.Float f) (float_bound_inclusive 1e9);
      map (fun s -> Value.Str s) any_str;
      map (fun d -> Value.Date d) (int_range 19900101 20991231);
      map (fun b -> Value.Bool b) bool;
    ]

let request_gen =
  oneof
    [
      map (fun s -> Wire.Hello s) small_str;
      map (fun s -> Wire.Query s) any_str;
      map2
        (fun cursor max_rows -> Wire.Fetch { cursor; max_rows })
        (int_range 0 100000) (int_range 0 0xffff);
      map (fun c -> Wire.Close_cursor c) (int_range 0 100000);
      return Wire.Bye;
    ]

let error_code_gen =
  oneofl
    [
      Wire.Bad_frame; Wire.No_session; Wire.Session_expired; Wire.Query_failed;
      Wire.Unknown_cursor; Wire.Server_busy; Wire.Too_many_cursors;
    ]

let response_gen =
  oneof
    [
      map3
        (fun session_id session_vn catalog_gen ->
          Wire.Hello_ok { session_id; session_vn; catalog_gen })
        (int_range 0 1000000) (int_range 0 1000000) (int_range 0 1000);
      map3
        (fun cursor columns total_rows -> Wire.Result { cursor; columns; total_rows })
        (int_range 0 100000)
        (list_size (int_range 0 6) small_str)
        (int_range 0 100000);
      map3
        (fun cursor rows last -> Wire.Rows { cursor; rows; last })
        (int_range 0 100000)
        (list_size (int_range 0 8) (list_size (int_range 0 5) value_gen))
        bool;
      return Wire.Ok_;
      map2 (fun code message -> Wire.Error_ { code; message }) error_code_gen any_str;
      map2
        (fun session_vn current_vn -> Wire.Expired { session_vn; current_vn })
        (int_range 0 1000000) (int_range 0 1000000);
    ]

let decode_one (type a) (dec : a Wire.Decoder.t) frame =
  Wire.Decoder.feed dec frame 0 (Bytes.length frame);
  match Wire.Decoder.next dec with
  | `Msg m -> (
    (* The frame must also be complete: no leftover message. *)
    match Wire.Decoder.next dec with
    | `Await -> m
    | _ -> Alcotest.fail "trailing message after one frame")
  | `Await -> Alcotest.fail "decoder wants more after a full frame"
  | `Corrupt msg -> Alcotest.failf "round-trip corrupt: %s" msg

let qcheck_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: request encode/decode round-trip"
    (QCheck.make request_gen)
    (fun req ->
      decode_one (Wire.Decoder.request ()) (Wire.encode_request req) = req)

let qcheck_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: response encode/decode round-trip"
    (QCheck.make response_gen)
    (fun resp ->
      decode_one (Wire.Decoder.response ()) (Wire.encode_response resp) = resp)

let test_incremental_decode () =
  (* Byte-at-a-time feeding yields the same message sequence. *)
  let reqs =
    [ Wire.Hello "x"; Wire.Query sql_all; Wire.Fetch { cursor = 3; max_rows = 7 }; Wire.Bye ]
  in
  let stream =
    Bytes.concat Bytes.empty (List.map Wire.encode_request reqs)
  in
  let dec = Wire.Decoder.request () in
  let got = ref [] in
  Bytes.iter
    (fun c ->
      Wire.Decoder.feed dec (Bytes.make 1 c) 0 1;
      let rec go () =
        match Wire.Decoder.next dec with
        | `Msg m ->
          got := m :: !got;
          go ()
        | `Await -> ()
        | `Corrupt msg -> Alcotest.failf "incremental corrupt: %s" msg
      in
      go ())
    stream;
  check Alcotest.int "all messages" (List.length reqs) (List.length !got);
  if List.rev !got <> reqs then Alcotest.fail "incremental decode disagrees"

let test_bad_lengths_corrupt () =
  let dec = Wire.Decoder.request () in
  let zero = Bytes.create 4 in
  Bytes.set_int32_be zero 0 0l;
  Wire.Decoder.feed dec zero 0 4;
  (match Wire.Decoder.next dec with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "zero-length frame must be corrupt");
  (* Sticky: even valid bytes afterwards stay corrupt. *)
  let ok = Wire.encode_request Wire.Bye in
  Wire.Decoder.feed dec ok 0 (Bytes.length ok);
  (match Wire.Decoder.next dec with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "corruption must be sticky");
  let dec2 = Wire.Decoder.request () in
  let big = Bytes.create 4 in
  Bytes.set_int32_be big 0 (Int32.of_int (Wire.max_frame + 1));
  Wire.Decoder.feed dec2 big 0 4;
  match Wire.Decoder.next dec2 with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized frame must be corrupt"

(* Fuzz the decoder: arbitrary byte streams, fed in arbitrary chunkings,
   never raise; they produce messages until they corrupt or await. *)
let qcheck_decoder_fuzz =
  QCheck.Test.make ~count:300 ~name:"wire: random bytes never escape the decoder"
    (QCheck.make (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200)))
    (fun s ->
      let dec = Wire.Decoder.request () in
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      let i = ref 0 in
      while !i < n do
        let chunk = min (1 + (!i mod 7)) (n - !i) in
        Wire.Decoder.feed dec b !i chunk;
        i := !i + chunk;
        let rec go () =
          match Wire.Decoder.next dec with `Msg _ -> go () | `Await | `Corrupt _ -> ()
        in
        go ()
      done;
      true)

(* Bit-flipped real frames: still no exception, and decoding either
   succeeds (flip hit a don't-care byte) or corrupts cleanly. *)
let qcheck_bitflip_fuzz =
  QCheck.Test.make ~count:300 ~name:"wire: bit-flipped frames decode or corrupt cleanly"
    (QCheck.make (triple request_gen (int_range 0 10000) (int_range 0 7)))
    (fun (req, pos, bit) ->
      let b = Wire.encode_request req in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      let dec = Wire.Decoder.request () in
      Wire.Decoder.feed dec b 0 (Bytes.length b);
      let rec go () =
        match Wire.Decoder.next dec with `Msg _ -> go () | `Await | `Corrupt _ -> ()
      in
      go ();
      true)

let test_truncated_frame_awaits () =
  let b = Wire.encode_request (Wire.Query sql_all) in
  let dec = Wire.Decoder.request () in
  Wire.Decoder.feed dec b 0 (Bytes.length b - 1);
  (match Wire.Decoder.next dec with
  | `Await -> ()
  | `Msg _ -> Alcotest.fail "truncated frame decoded"
  | `Corrupt _ -> Alcotest.fail "truncated frame corrupted");
  Wire.Decoder.feed dec b (Bytes.length b - 1) 1;
  match Wire.Decoder.next dec with
  | `Msg (Wire.Query _) -> ()
  | _ -> Alcotest.fail "completed frame lost"

(* ---------- Conn: the protocol state machine ---------- *)

let hello_ok conn =
  push conn (Wire.Hello "test");
  match drain conn with
  | [ Wire.Hello_ok { session_vn; _ } ] -> session_vn
  | _ -> Alcotest.fail "expected Hello_ok"

let query_ok conn sql =
  push conn (Wire.Query sql);
  match drain conn with
  | [ Wire.Result { cursor; columns; total_rows } ] -> (cursor, columns, total_rows)
  | [ Wire.Error_ { message; _ } ] -> Alcotest.failf "query failed: %s" message
  | _ -> Alcotest.fail "expected Result"

let test_conn_happy_path () =
  let wh = fresh () in
  let conn = Conn.create wh in
  let vn = hello_ok conn in
  check Alcotest.int "session at current vn" (Twovnl.current_vn wh) vn;
  let cursor, columns, total = query_ok conn sql_all in
  check Alcotest.int "all rows counted" 4 total;
  (* The updatable attribute is rewritten into a CASE, so only the width
     of the label list is stable. *)
  check Alcotest.int "label count" 3 (List.length columns);
  push conn (Wire.Fetch { cursor; max_rows = 3 });
  (match drain conn with
  | [ Wire.Rows { rows; last = false; _ } ] -> check Alcotest.int "chunk" 3 (List.length rows)
  | _ -> Alcotest.fail "expected first chunk");
  push conn (Wire.Fetch { cursor; max_rows = 3 });
  (match drain conn with
  | [ Wire.Rows { rows; last = true; _ } ] -> check Alcotest.int "tail" 1 (List.length rows)
  | _ -> Alcotest.fail "expected last chunk");
  (* The cursor is gone once [last] was delivered. *)
  push conn (Wire.Fetch { cursor; max_rows = 3 });
  (match drain conn with
  | [ Wire.Error_ { code = Wire.Unknown_cursor; _ } ] -> ()
  | _ -> Alcotest.fail "expected Unknown_cursor");
  push conn Wire.Bye;
  (match drain conn with
  | [ Wire.Ok_ ] -> ()
  | _ -> Alcotest.fail "expected Ok");
  check Alcotest.bool "orderly close requested" true (Conn.want_close conn);
  Conn.close conn;
  check Alcotest.bool "pin released" true (horizon_caught_up wh)

let test_conn_requires_hello () =
  let wh = fresh () in
  let conn = Conn.create wh in
  push conn (Wire.Query sql_all);
  (match drain conn with
  | [ Wire.Error_ { code = Wire.No_session; _ } ] -> ()
  | _ -> Alcotest.fail "expected No_session");
  push conn (Wire.Fetch { cursor = 0; max_rows = 1 });
  (match drain conn with
  | [ Wire.Error_ { code = Wire.No_session; _ } ] -> ()
  | _ -> Alcotest.fail "expected No_session for fetch");
  Conn.close conn

let test_conn_query_error () =
  let wh = fresh () in
  let conn = Conn.create wh in
  ignore (hello_ok conn);
  push conn (Wire.Query "SELECT nonsense FROM nowhere");
  (match drain conn with
  | [ Wire.Error_ { code = Wire.Query_failed; _ } ] -> ()
  | _ -> Alcotest.fail "expected Query_failed");
  (* The session survives a failed query. *)
  let _cursor, _cols, total = query_ok conn sql_all in
  check Alcotest.int "session still works" 4 total;
  Conn.close conn;
  check Alcotest.bool "pin released" true (horizon_caught_up wh)

let test_conn_cursor_limit () =
  let wh = fresh () in
  let conn =
    Conn.create ~config:{ Conn.default_config with Conn.max_cursors = 1 } wh
  in
  ignore (hello_ok conn);
  let _ = query_ok conn sql_all in
  push conn (Wire.Query sql_all);
  (match drain conn with
  | [ Wire.Error_ { code = Wire.Too_many_cursors; _ } ] -> ()
  | _ -> Alcotest.fail "expected Too_many_cursors");
  Conn.close conn

let test_conn_garbage_input () =
  let wh = fresh () in
  let conn = Conn.create wh in
  ignore (hello_ok conn);
  let garbage = Bytes.of_string "\x00\x00\x00\x05\xff_junk_after_a_bogus_opcode" in
  Conn.on_input conn garbage 0 (Bytes.length garbage);
  (match drain conn with
  | [ Wire.Error_ { code = Wire.Bad_frame; _ } ] -> ()
  | other -> Alcotest.failf "expected Bad_frame, got %d frames" (List.length other));
  check Alcotest.bool "desynchronized stream closes" true (Conn.want_close conn);
  Conn.close conn;
  check Alcotest.bool "pin released" true (horizon_caught_up wh)

(* Fuzz the whole state machine: random byte blobs (seeded with valid
   opcodes often enough to get past framing) must never raise, and the
   epoch pin must always be released by close. *)
let qcheck_conn_fuzz =
  QCheck.Test.make ~count:120 ~name:"conn: fuzzed input never escapes, never leaks pins"
    (QCheck.make
       (list_size (int_range 1 8)
          (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 60))))
    (fun chunks ->
      let wh = fresh () in
      let conn = Conn.create wh in
      (* A valid prefix so some fuzz runs get a live session first. *)
      push conn (Wire.Hello "fuzz");
      ignore (drain conn);
      List.iter
        (fun s ->
          let b = Bytes.of_string s in
          Conn.on_input conn b 0 (Bytes.length b);
          ignore (drain conn))
        chunks;
      Conn.close conn;
      horizon_caught_up wh)

let test_conn_backpressure_overflow () =
  let wh = fresh () in
  (* An output bound small enough that one Rows frame overflows it. *)
  let conn =
    Conn.create ~config:{ Conn.default_config with Conn.max_output = 32 } wh
  in
  ignore (hello_ok conn);
  push conn (Wire.Query sql_all);
  check Alcotest.bool "overflowed" true (Conn.overflowed conn);
  Conn.close conn;
  check Alcotest.bool "pin released" true (horizon_caught_up wh)

(* Wide result sets must not blow the 1 MiB frame bound: a default fetch
   (256-row cap) over rows carrying an ~8 KB string would naively encode
   a ~2 MB [Rows] payload and raise from [Wire.encode_response].  Chunks
   are instead cut by byte budget before row count, every frame decodes,
   and no row is lost across the splits. *)
let test_conn_wide_rows_byte_budget () =
  let db = Database.create () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ~name:"DailySales" Fixtures.daily_sales);
  let n_rows = 300 in
  Twovnl.load_initial wh "DailySales"
    (List.init n_rows (fun i ->
         Fixtures.base_row (Printf.sprintf "c%03d" i) "CA" "golf equip" 10 14 96 i));
  let conn = Conn.create wh in
  ignore (hello_ok conn);
  let payload = String.make 8192 'w' in
  let cursor, _cols, total =
    query_ok conn (Printf.sprintf "SELECT city, '%s' AS payload FROM DailySales" payload)
  in
  check Alcotest.int "all rows materialized" n_rows total;
  let rec fetch_all acc frames =
    push conn (Wire.Fetch { cursor; max_rows = 0 });
    match drain conn with
    | [ Wire.Rows { rows; last; _ } ] ->
      check Alcotest.bool "byte budget cuts below the row cap" true
        (List.length rows < 256);
      if last then (acc + List.length rows, frames + 1)
      else fetch_all (acc + List.length rows) (frames + 1)
    | _ -> Alcotest.fail "expected a Rows frame"
  in
  let delivered, frames = fetch_all 0 0 in
  check Alcotest.int "no row lost across splits" n_rows delivered;
  check Alcotest.bool "multiple budget-limited frames" true (frames > 1);
  Conn.close conn;
  check Alcotest.bool "pin released" true (horizon_caught_up wh)

(* A single string value beyond the u16 prefix (65535 bytes) can never be
   encoded: the fetch must answer [Query_failed] and drop the cursor —
   not raise — and the connection must stay serviceable. *)
let test_conn_overlong_string_fails_cleanly () =
  let wh = fresh () in
  let conn = Conn.create wh in
  ignore (hello_ok conn);
  let payload = String.make 70_000 'x' in
  let cursor, _cols, _total =
    query_ok conn (Printf.sprintf "SELECT city, '%s' AS payload FROM DailySales" payload)
  in
  push conn (Wire.Fetch { cursor; max_rows = 1 });
  (match drain conn with
  | [ Wire.Error_ { code = Wire.Query_failed; _ } ] -> ()
  | _ -> Alcotest.fail "expected Query_failed for an unencodable row");
  check Alcotest.bool "clean protocol error, not a close" false (Conn.want_close conn);
  (* The cursor is gone; the session and connection still work. *)
  push conn (Wire.Fetch { cursor; max_rows = 1 });
  (match drain conn with
  | [ Wire.Error_ { code = Wire.Unknown_cursor; _ } ] -> ()
  | _ -> Alcotest.fail "expected Unknown_cursor after the drop");
  let _cursor, _cols, total = query_ok conn sql_all in
  check Alcotest.int "session survives" 4 total;
  Conn.close conn;
  check Alcotest.bool "pin released" true (horizon_caught_up wh)

(* The deterministic expiry-mid-cursor scenario (the satellite's second
   half): with n = 2 a session survives one maintenance commit and
   expires at the second.  The server must push [Expired] and answer
   every later Fetch with [Session_expired]. *)
let test_conn_expiry_mid_cursor () =
  let wh = fresh ~n:2 () in
  let conn = Conn.create wh in
  let svn = hello_ok conn in
  let cursor, _cols, _total = query_ok conn sql_all in
  push conn (Wire.Fetch { cursor; max_rows = 2 });
  (match drain conn with
  | [ Wire.Rows { last = false; _ } ] -> ()
  | _ -> Alcotest.fail "expected a partial chunk");
  (* One commit: still valid (2VNL keeps the pre-update version). *)
  commit_once wh;
  Conn.on_version_change conn;
  (match drain conn with
  | [] -> ()
  | _ -> Alcotest.fail "no push while the session is still valid");
  (* Second commit: the session has now overlapped n maintenance
     transactions and is expired. *)
  commit_once wh;
  Conn.on_version_change conn;
  (match drain conn with
  | [ Wire.Expired { session_vn; current_vn } ] ->
    check Alcotest.int "push carries the session vn" svn session_vn;
    check Alcotest.int "push carries current vn" (Twovnl.current_vn wh) current_vn
  | other -> Alcotest.failf "expected the Expired push, got %d frames" (List.length other));
  (* The push is sent once, not on every later version check. *)
  Conn.on_version_change conn;
  (match drain conn with
  | [] -> ()
  | _ -> Alcotest.fail "Expired must be pushed exactly once");
  (* The documented post-expiry error on the half-read cursor. *)
  push conn (Wire.Fetch { cursor; max_rows = 2 });
  (match drain conn with
  | [ Wire.Error_ { code = Wire.Session_expired; _ } ] -> ()
  | _ -> Alcotest.fail "expected Session_expired on post-expiry fetch");
  push conn (Wire.Query sql_all);
  (match drain conn with
  | [ Wire.Error_ { code = Wire.Session_expired; _ } ] -> ()
  | _ -> Alcotest.fail "expected Session_expired on post-expiry query");
  (* Expiry released the pin already — before the connection closes. *)
  check Alcotest.bool "pin released at expiry" true (horizon_caught_up wh);
  check
    (Alcotest.option Alcotest.int)
    "no live session" None (Conn.session_vn conn);
  (* A fresh Hello restores service on the same connection. *)
  let vn2 = hello_ok conn in
  check Alcotest.int "new session at current vn" (Twovnl.current_vn wh) vn2;
  let _cursor, _cols, total = query_ok conn sql_all in
  check Alcotest.int "fresh session reads" 4 total;
  Conn.close conn

(* ---------- Server/Client/Load: real sockets ---------- *)

let with_server ?config f =
  let wh = fresh ~n:2 () in
  let srv = Server.start ?config (Server.Tcp { host = "127.0.0.1"; port = 0 }) wh in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f wh srv)

let test_e2e_roundtrip () =
  with_server (fun wh srv ->
      let c = Client.connect (Client.Tcp ("127.0.0.1", Server.port srv)) in
      (match Client.hello c with
      | Ok (_sid, vn) -> check Alcotest.int "hello vn" (Twovnl.current_vn wh) vn
      | Error { message; _ } -> Alcotest.failf "hello: %s" message);
      (match Client.query c sql_all with
      | Ok (cursor, columns, total) ->
        check Alcotest.int "total rows" 4 total;
        check Alcotest.int "label count" 3 (List.length columns);
        let rec fetch_all acc =
          match Client.fetch c ~cursor ~max_rows:2 with
          | Ok (rows, true) -> acc @ rows
          | Ok (rows, false) -> fetch_all (acc @ rows)
          | Error { message; _ } -> Alcotest.failf "fetch: %s" message
        in
        check Alcotest.int "all rows over the wire" 4 (List.length (fetch_all []))
      | Error { message; _ } -> Alcotest.failf "query: %s" message);
      (match Client.bye c with
      | Ok () -> ()
      | Error { message; _ } -> Alcotest.failf "bye: %s" message));
  (* After stop every connection is gone; the warehouse outlives the
     server with its horizon caught up. *)
  ()

let test_e2e_abrupt_disconnect_releases_pin () =
  with_server (fun wh srv ->
      let c = Client.connect (Client.Tcp ("127.0.0.1", Server.port srv)) in
      (match Client.hello c with
      | Ok _ -> ()
      | Error { message; _ } -> Alcotest.failf "hello: %s" message);
      (match Client.query c sql_all with
      | Ok (cursor, _, _) -> ignore (Client.fetch c ~cursor ~max_rows:1)
      | Error { message; _ } -> Alcotest.failf "query: %s" message);
      (* Vanish mid-cursor. *)
      Client.disconnect c;
      (* The worker notices EOF and must release the session pin. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        if horizon_caught_up wh then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "session pin still held after abrupt disconnect"
        else begin
          Unix.sleepf 0.01;
          wait ()
        end
      in
      wait ())

let test_e2e_expiry_push_over_socket () =
  with_server (fun wh srv ->
      let c = Client.connect (Client.Tcp ("127.0.0.1", Server.port srv)) in
      (match Client.hello c with
      | Ok _ -> ()
      | Error { message; _ } -> Alcotest.failf "hello: %s" message);
      let cursor =
        match Client.query c sql_all with
        | Ok (cursor, _, _) -> cursor
        | Error { message; _ } -> Alcotest.failf "query: %s" message
      in
      ignore (Client.fetch c ~cursor ~max_rows:1);
      (* Expire the session under the open cursor (n = 2). *)
      commit_once wh;
      commit_once wh;
      (* The next fetch must fail with the documented error — whether the
         worker's push or the request itself noticed expiry first. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec poll () =
        match Client.fetch c ~cursor ~max_rows:1 with
        | Error { code = Wire.Session_expired; _ } -> ()
        | Ok _ when Unix.gettimeofday () < deadline ->
          Unix.sleepf 0.01;
          poll ()
        | Ok _ -> Alcotest.fail "fetch kept succeeding after expiry"
        | Error { message; _ } -> Alcotest.failf "unexpected error: %s" message
      in
      poll ();
      check Alcotest.bool "pin released at expiry" true (horizon_caught_up wh))

(* Over-long client input is rejected locally as [Error] — never as an
   [Invalid_argument] leaking from the encoder, and never on the wire
   (the same socket keeps working afterwards). *)
let test_client_rejects_oversized_locally () =
  with_server (fun _wh srv ->
      let c = Client.connect (Client.Tcp ("127.0.0.1", Server.port srv)) in
      (match Client.hello ~name:(String.make 70_000 'n') c with
      | Error { code = Wire.Bad_frame; _ } -> ()
      | Ok _ -> Alcotest.fail "oversized hello name accepted"
      | Error { message; _ } -> Alcotest.failf "wrong error: %s" message);
      (match Client.hello c with
      | Ok _ -> ()
      | Error { message; _ } -> Alcotest.failf "hello after local reject: %s" message);
      (match Client.query c (String.make (2 * 1024 * 1024) 'q') with
      | Error { code = Wire.Query_failed; _ } -> ()
      | Ok _ -> Alcotest.fail "oversized SQL accepted"
      | Error { message; _ } -> Alcotest.failf "wrong error: %s" message);
      (match Client.query c sql_all with
      | Ok (_, _, total) -> check Alcotest.int "socket still clean" 4 total
      | Error { message; _ } -> Alcotest.failf "query after local reject: %s" message);
      match Client.bye c with
      | Ok () -> ()
      | Error { message; _ } -> Alcotest.failf "bye: %s" message)

let test_load_generator_smoke () =
  with_server (fun wh srv ->
      let r =
        Load.run
          {
            Load.default_config with
            Load.addr = Client.Tcp ("127.0.0.1", Server.port srv);
            sessions = 40;
            concurrency = 2;
            fetch_size = 2;
            disconnect_prob = 0.25;
            seed = 5;
            sql = sql_all;
          }
      in
      check Alcotest.int "all sessions attempted" 40 r.Load.l_sessions;
      check Alcotest.int "no unexpected errors" 0 r.Load.l_errors;
      check Alcotest.int "no inconsistent pairs" 0 r.Load.l_inconsistent;
      if r.Load.l_completed = 0 then Alcotest.fail "no session completed";
      if r.Load.l_disconnected = 0 then Alcotest.fail "no abrupt disconnects exercised";
      (* Give the workers a beat to reap the last abrupt disconnects. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while (not (horizon_caught_up wh)) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.01
      done;
      check Alcotest.bool "horizon caught up after churn" true (horizon_caught_up wh))

(* ---------- schema evolution mid-load ---------- *)

let evolve_discount wh =
  Vnl_core.Recovery.run_maintenance (Twovnl.database wh) wh (fun txn ->
      Twovnl.Txn.add_column txn ~table:"DailySales"
        (Vnl_relation.Schema.attr ~updatable:true "discount" Vnl_relation.Dtype.Int)
        ~default:(Value.Int 7))

(* The catalog evolves while a connection is mid-cursor: the in-flight
   cursor finishes on the old schema, a fresh query on the still-pinned
   session keeps resolving the old catalog (the new column stays
   invisible), and only a re-Hello lands on the new generation — which the
   wire reports in [Hello_ok].  Every path releases its pin. *)
let test_conn_evolution_mid_load () =
  let wh = fresh ~n:3 () in
  let conn = Conn.create wh in
  push conn (Wire.Hello "loader");
  (match drain conn with
  | [ Wire.Hello_ok { catalog_gen; _ } ] ->
    check Alcotest.int "initial catalog generation on the wire" 0 catalog_gen
  | _ -> Alcotest.fail "expected Hello_ok");
  let cursor, columns, total = query_ok conn sql_all in
  check Alcotest.int "cursor materialized pre-evolution" 4 total;
  push conn (Wire.Fetch { cursor; max_rows = 2 });
  (match drain conn with
  | [ Wire.Rows { rows; last = false; _ } ] ->
    List.iter
      (fun r -> check Alcotest.int "pre-evolution width" (List.length columns) (List.length r))
      rows
  | _ -> Alcotest.fail "expected first chunk");
  evolve_discount wh;
  (* The maintainer's publish notification must not expire this session
     (n = 3 tolerates the overlap) — no frame may be pushed. *)
  Conn.on_version_change conn;
  (match drain conn with
  | [] -> ()
  | _ -> Alcotest.fail "no push expected for a still-valid session");
  push conn (Wire.Fetch { cursor; max_rows = 10 });
  (match drain conn with
  | [ Wire.Rows { rows; last = true; _ } ] ->
    check Alcotest.int "cursor finishes on the old schema" 2 (List.length rows);
    List.iter
      (fun r -> check Alcotest.int "old width to the end" (List.length columns) (List.length r))
      rows
  | _ -> Alcotest.fail "expected final chunk");
  (* Same session, new statement: still the old catalog. *)
  push conn (Wire.Query "SELECT discount FROM DailySales");
  (match drain conn with
  | [ Wire.Error_ { code = Wire.Query_failed; _ } ] -> ()
  | _ -> Alcotest.fail "pinned session must not resolve the new column");
  (* Re-Hello: the new generation, on the wire and in the data. *)
  push conn (Wire.Hello "loader");
  (match drain conn with
  | [ Wire.Hello_ok { catalog_gen; _ } ] ->
    check Alcotest.int "re-Hello reports the new generation" 1 catalog_gen
  | _ -> Alcotest.fail "expected Hello_ok");
  let _, _, total = query_ok conn "SELECT city, discount FROM DailySales" in
  check Alcotest.int "new column served after re-Hello" 4 total;
  push conn Wire.Bye;
  (match drain conn with
  | [ Wire.Ok_ ] -> ()
  | _ -> Alcotest.fail "expected Ok");
  Conn.close conn;
  check Alcotest.bool "zero leaked session pins" true (horizon_caught_up wh)

let test_e2e_evolution () =
  with_server (fun wh srv ->
      let c = Client.connect (Client.Tcp ("127.0.0.1", Server.port srv)) in
      (match Client.hello c with
      | Ok _ -> ()
      | Error { message; _ } -> Alcotest.failf "hello: %s" message);
      check Alcotest.int "client starts on generation 0" 0 (Client.catalog_gen c);
      let cursor =
        match Client.query c sql_all with
        | Ok (cursor, _, total) ->
          check Alcotest.int "pre-evolution rows" 4 total;
          cursor
        | Error { message; _ } -> Alcotest.failf "query: %s" message
      in
      evolve_discount wh;
      (* The open cursor drains on the old result set. *)
      let rec fetch_all acc =
        match Client.fetch c ~cursor ~max_rows:2 with
        | Ok (rows, true) -> acc @ rows
        | Ok (rows, false) -> fetch_all (acc @ rows)
        | Error { message; _ } -> Alcotest.failf "fetch: %s" message
      in
      check Alcotest.int "cursor completes across the evolution" 4
        (List.length (fetch_all []));
      (* Re-Hello observes the evolved catalog. *)
      (match Client.hello c with
      | Ok _ -> ()
      | Error { message; _ } -> Alcotest.failf "re-hello: %s" message);
      check Alcotest.int "re-Hello advances the client's generation" 1 (Client.catalog_gen c);
      (match Client.query c "SELECT city, discount FROM DailySales" with
      | Ok (_, _, total) -> check Alcotest.int "new column over the wire" 4 total
      | Error { message; _ } -> Alcotest.failf "evolved query: %s" message);
      (match Client.bye c with
      | Ok () -> ()
      | Error { message; _ } -> Alcotest.failf "bye: %s" message);
      Client.disconnect c;
      (* The server sheds the closed connection promptly; no pin leaks. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while (not (horizon_caught_up wh)) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.01
      done;
      check Alcotest.bool "zero leaked session pins (e2e)" true (horizon_caught_up wh))

(* ---------- hardened env knobs ---------- *)

let test_env_knobs () =
  let name = "VNL_NET_TEST_KNOB" in
  Unix.putenv name "";
  check Alcotest.int "unset -> default" 7 (Load.env_int name 7);
  Unix.putenv name "12";
  check Alcotest.int "numeric" 12 (Load.env_int name 7);
  Unix.putenv name " 9 ";
  check Alcotest.int "trimmed" 9 (Load.env_int name 7);
  Unix.putenv name "abc";
  (match Load.env_int name 7 with
  | exception Failure _ -> ()
  | v -> Alcotest.failf "non-numeric accepted as %d" v);
  Unix.putenv name "-3";
  (match Load.env_int name 7 with
  | exception Failure _ -> ()
  | v -> Alcotest.failf "negative accepted as %d" v);
  Unix.putenv name "0";
  (match Load.env_int name 7 with
  | exception Failure _ -> ()
  | v -> Alcotest.failf "zero accepted as %d" v);
  check Alcotest.int "least 0 admits 0" 0 (Load.env_int ~least:0 name 7);
  Unix.putenv name "2.5";
  (match Load.env_int name 7 with
  | exception Failure _ -> ()
  | v -> Alcotest.failf "fractional accepted as %d" v);
  check (Alcotest.float 1e-9) "float knob" 2.5 (Load.env_float name 7.0);
  Unix.putenv name "nope";
  (match Load.env_float name 7.0 with
  | exception Failure _ -> ()
  | v -> Alcotest.failf "non-numeric float accepted as %g" v);
  Unix.putenv name ""

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
    Alcotest.test_case "wire: incremental byte-at-a-time decode" `Quick
      test_incremental_decode;
    Alcotest.test_case "wire: zero/oversized lengths corrupt (sticky)" `Quick
      test_bad_lengths_corrupt;
    Alcotest.test_case "wire: truncated frame awaits, then completes" `Quick
      test_truncated_frame_awaits;
    QCheck_alcotest.to_alcotest qcheck_decoder_fuzz;
    QCheck_alcotest.to_alcotest qcheck_bitflip_fuzz;
    Alcotest.test_case "conn: hello/query/fetch/bye happy path" `Quick
      test_conn_happy_path;
    Alcotest.test_case "conn: query/fetch before hello" `Quick test_conn_requires_hello;
    Alcotest.test_case "conn: SQL failure answers Query_failed" `Quick
      test_conn_query_error;
    Alcotest.test_case "conn: cursor limit" `Quick test_conn_cursor_limit;
    Alcotest.test_case "conn: garbage input answers Bad_frame and closes" `Quick
      test_conn_garbage_input;
    QCheck_alcotest.to_alcotest qcheck_conn_fuzz;
    Alcotest.test_case "conn: slow-client output overflow" `Quick
      test_conn_backpressure_overflow;
    Alcotest.test_case "conn: wide rows chunk under the frame byte budget" `Quick
      test_conn_wide_rows_byte_budget;
    Alcotest.test_case "conn: unencodable string answers Query_failed" `Quick
      test_conn_overlong_string_fails_cleanly;
    Alcotest.test_case "conn: expiry mid-cursor is pushed, then fetches fail" `Quick
      test_conn_expiry_mid_cursor;
    Alcotest.test_case "e2e: socket round-trip" `Quick test_e2e_roundtrip;
    Alcotest.test_case "e2e: abrupt disconnect releases the pin" `Quick
      test_e2e_abrupt_disconnect_releases_pin;
    Alcotest.test_case "e2e: expiry reaches a remote reader" `Quick
      test_e2e_expiry_push_over_socket;
    Alcotest.test_case "e2e: client rejects oversized input locally" `Quick
      test_client_rejects_oversized_locally;
    Alcotest.test_case "e2e: load generator smoke" `Quick test_load_generator_smoke;
    Alcotest.test_case "conn: schema evolution mid-cursor" `Quick
      test_conn_evolution_mid_load;
    Alcotest.test_case "e2e: re-Hello lands on the evolved catalog" `Quick
      test_e2e_evolution;
    Alcotest.test_case "env knobs: hardened parsing" `Quick test_env_knobs;
  ]
