(* The §7 durability proof: crash-at-every-write-k sweep.

   A randomized maintenance batch runs under the crash-safe write ordering
   of {!Vnl_core.Recovery.run_maintenance} against a cloned disk image, with
   the disk armed to crash at the k-th physical write — for every k the
   protocol performs.  After each crash the database is reopened from the
   surviving platter image alone and repaired with the §7 no-log rollback;
   the recovered state must be logically identical to either the
   pre-transaction or the post-transaction state, never a mixture.  Torn
   variants (a random prefix of the crashing write applied) must be caught
   by the per-page checksum instead of being silently decoded. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Disk = Vnl_storage.Disk
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Twovnl = Vnl_core.Twovnl
module Recovery = Vnl_core.Recovery
module Batch = Vnl_core.Batch
module Xorshift = Vnl_util.Xorshift

let check = Alcotest.check

let table_name = "DailySales"

let tables = [ (table_name, Fixtures.daily_sales) ]

let groups =
  [
    ("San Jose", "CA", "golf equip");
    ("San Jose", "CA", "racquetball");
    ("Berkeley", "CA", "racquetball");
    ("Berkeley", "CA", "rollerblades");
    ("Novato", "CA", "rollerblades");
    ("Novato", "CA", "tennis");
    ("Fresno", "CA", "tennis");
    ("Reno", "NV", "golf equip");
    ("Tahoe", "NV", "skiing");
    ("Truckee", "NV", "skiing");
  ]

let key_of (city, state, pl) ~day =
  [ Value.Str city; Value.Str state; Value.Str pl; Value.date_of_mdy 10 day 96 ]

(* Pre-transaction platter image: every group loaded for two days, saved,
   so the clone is a cleanly shut-down database. *)
let build_base () =
  let db = Database.create ~pool_capacity:4 () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ~name:table_name Fixtures.daily_sales);
  let rows =
    List.concat_map
      (fun g ->
        List.map
          (fun day -> Tuple.make Fixtures.daily_sales (key_of g ~day @ [ Value.Int 1000 ]))
          [ 13; 14 ])
      groups
  in
  Twovnl.load_initial wh table_name rows;
  Database.save db;
  Database.disk db

(* A randomized batch with disjoint per-key roles so any grouping order is
   legal: some existing groups retired, others corrected (1-3 updates
   each), fresh day-20 groups inserted (some then updated, one inserted and
   retired again in the same batch). *)
let gen_ops seed =
  let rng = Xorshift.create seed in
  let pool = Array.of_list groups in
  Xorshift.shuffle rng pool;
  let ops = ref [] in
  let add op = ops := op :: !ops in
  (* Retire two day-13 groups. *)
  for i = 0 to 1 do
    add (Batch.Delete (key_of pool.(i) ~day:13))
  done;
  (* Correct a few day-14 groups. *)
  for i = 2 to 5 do
    for _ = 1 to 1 + Xorshift.int rng 3 do
      add (Batch.Update (key_of pool.(i) ~day:14, [ (4, Value.Int (Xorshift.int rng 50_000)) ]))
    done
  done;
  (* Fresh day-20 groups; some see a follow-up correction. *)
  for i = 0 to 4 do
    let key = key_of pool.(i) ~day:20 in
    add (Batch.Insert (Tuple.make Fixtures.daily_sales (key @ [ Value.Int (Xorshift.int rng 9_000) ])));
    if Xorshift.bool rng then
      add (Batch.Update (key, [ (4, Value.Int (Xorshift.int rng 9_000)) ]))
  done;
  (* Insert-then-retire in one batch: nets to nothing. *)
  let key = key_of pool.(5) ~day:20 in
  add (Batch.Insert (Tuple.make Fixtures.daily_sales (key @ [ Value.Int 7 ])));
  add (Batch.Delete key);
  List.rev !ops

let visible vnl =
  let s = Twovnl.Session.begin_ vnl in
  let rows = Twovnl.Session.read_table vnl s table_name in
  Twovnl.Session.end_ vnl s;
  List.sort Tuple.compare rows

let reopen disk = Recovery.reopen ~pool_capacity:4 disk ~tables

let run_refresh vnl ops =
  let db = Twovnl.database vnl in
  Recovery.run_maintenance db vnl (fun txn ->
      ignore (Twovnl.Txn.apply_batch txn ~table:table_name ops))

let same = List.equal Tuple.equal

(* Run the whole sweep for one seed; returns (write points, #pre, #post,
   #torn detected, #torn recovered). *)
let sweep ?(tear = true) seed =
  let base = build_base () in
  let ops = gen_ops seed in
  (* Reference states and write count from a fault-free dry run. *)
  let pre, post, writes =
    let d = Disk.clone base in
    let vnl, out = reopen d in
    Alcotest.(check bool) "clean image needs no repair" false out.Recovery.interrupted;
    let pre = visible vnl in
    Disk.reset_stats d;
    run_refresh vnl ops;
    let w = (Disk.stats d).Disk.writes in
    (pre, visible vnl, w)
  in
  Alcotest.(check bool) "batch changed the state" false (same pre post);
  Alcotest.(check bool) "protocol writes enough to sweep" true (writes > 5);
  let n_pre = ref 0 and n_post = ref 0 and torn_detected = ref 0 and torn_ok = ref 0 in
  let rng = Xorshift.create (seed * 7919) in
  (* Clean crash point: either write k never reaches the platter
     (prefix = 0) or it completes and the crash follows (prefix =
     page_size).  Crashing after the final write exercises the
     fully-committed image. *)
  let clean_crash k prefix =
    let d = Disk.clone base in
    let vnl, _ = reopen d in
    Disk.set_faults d { Disk.no_faults with crash_at_write = Some k; torn_prefix = prefix };
    (try
       run_refresh vnl ops;
       Alcotest.failf "crash point %d did not fire" k
     with Disk.Crash _ -> ());
    Disk.clear_faults d;
    let vnl2, _ = reopen d in
    let state = visible vnl2 in
    if same state pre then incr n_pre
    else if same state post then incr n_post
    else Alcotest.failf "crash at write %d recovered to a state that is neither pre nor post" k;
    (* The recovered warehouse accepts new maintenance. *)
    if same state pre then begin
      run_refresh vnl2 ops;
      Alcotest.(check bool) (Printf.sprintf "re-running after crash %d reaches post" k) true
        (same (visible vnl2) post)
    end
  in
  for k = 1 to writes do
    clean_crash k 0;
    clean_crash k (Disk.page_size base);
    (* Torn variant: a random proper prefix of the crashing write lands.
       The checksum must catch it on reopen — or, if the prefix left the
       page byte-identical, recovery proceeds and must land on pre/post. *)
    if tear then begin
      let d = Disk.clone base in
      let vnl, _ = reopen d in
      let prefix = 1 + Xorshift.int rng (Disk.page_size d - 1) in
      Disk.set_faults d { Disk.no_faults with crash_at_write = Some k; torn_prefix = prefix };
      (try
         run_refresh vnl ops;
         Alcotest.failf "torn crash point %d did not fire" k
       with Disk.Crash _ -> ());
      Disk.clear_faults d;
      match reopen d with
      | exception Disk.Corrupt_page _ -> incr torn_detected
      | vnl2, _ ->
        let state = visible vnl2 in
        if same state pre || same state post then incr torn_ok
        else Alcotest.failf "torn write at %d silently decoded into a wrong state" k
    end
  done;
  (writes, !n_pre, !n_post, !torn_detected, !torn_ok)

let test_sweep () =
  let writes, n_pre, n_post, torn_detected, _torn_ok = sweep 42 in
  check Alcotest.int "every crash point accounted for" (2 * writes) (n_pre + n_post);
  Alcotest.(check bool) "early crash points recover to pre" true (n_pre > 0);
  Alcotest.(check bool) "the final crash point recovers to post" true (n_post > 0);
  Alcotest.(check bool) "some torn write was detected by checksum" true (torn_detected > 0)

(* Reader-session consistency across the crash: a session opened on the
   recovered database sees exactly one committed state, and queries through
   the SQL reader rewrite agree with the engine-level read. *)
let test_reader_consistency_after_recovery () =
  let base = build_base () in
  let ops = gen_ops 7 in
  let d = Disk.clone base in
  let vnl, _ = reopen d in
  let pre = visible vnl in
  Disk.set_faults d { Disk.no_faults with crash_at_write = Some 6 };
  (try run_refresh vnl ops with Disk.Crash _ -> ());
  Disk.clear_faults d;
  let vnl2, out = reopen d in
  Alcotest.(check bool) "recovery saw the interruption" true
    (out.Recovery.interrupted || same (visible vnl2) pre);
  let s = Twovnl.Session.begin_ vnl2 in
  let rows = Twovnl.Session.read_table vnl2 s table_name in
  let r =
    Twovnl.Session.query vnl2 s (Printf.sprintf "SELECT COUNT(*) FROM %s" table_name)
  in
  Twovnl.Session.end_ vnl2 s;
  match r.Vnl_query.Executor.rows with
  | [ [ Value.Int n ] ] -> check Alcotest.int "SQL and engine reads agree" (List.length rows) n
  | _ -> Alcotest.fail "count query shape"

(* Injected read failures surface as Disk.Crash, not as wrong answers. *)
let test_read_failure_surfaces () =
  let base = build_base () in
  let d = Disk.clone base in
  Disk.set_faults d { Disk.no_faults with fail_read_pids = [ 1 ] };
  Alcotest.(check bool) "reopen over failing media raises" true
    (try
       ignore (reopen d);
       false
     with Disk.Crash _ -> true);
  Disk.clear_faults d;
  ignore (reopen d)

(* Property: the sweep invariant holds across randomized batches.  Clean
   crashes only (torn handled in the fixed-seed sweep) to keep the runtime
   in check. *)
let qcheck_sweep =
  QCheck.Test.make ~name:"crash sweep recovers to pre or post for random batches" ~count:4
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    (fun seed ->
      let writes, n_pre, n_post, _, _ = sweep ~tear:false seed in
      (2 * writes) = n_pre + n_post && n_post > 0)

let suite =
  [
    Alcotest.test_case "crash-at-every-write-k sweep (§7)" `Quick test_sweep;
    Alcotest.test_case "reader consistency after recovery" `Quick
      test_reader_consistency_after_recovery;
    Alcotest.test_case "injected read failure surfaces" `Quick test_read_failure_surfaces;
    QCheck_alcotest.to_alcotest qcheck_sweep;
  ]
