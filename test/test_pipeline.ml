(* The pipelined maintenance round: partitioning laws, differential
   equivalence against the serial reference schedule, deterministic
   reader/worker interleavings against the full-history oracle, and the
   crash-at-every-write sweep landing on a VN (stripe) boundary.

   The serial reference for a round is {!Vnl_core.Pipeline.stripe_ops}:
   applying stripe i's operations as one classic transaction committing at
   vn_i, in stripe order.  Everything here is phrased against that
   reference — the pipelined executor may only reorder what the reference
   proves independent. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Disk = Vnl_storage.Disk
module Twovnl = Vnl_core.Twovnl
module Batch = Vnl_core.Batch
module Sched_batch = Vnl_core.Sched_batch
module Pipeline = Vnl_core.Pipeline
module Recovery = Vnl_core.Recovery
module Sched = Vnl_util.Sched
module Xorshift = Vnl_util.Xorshift

let check = Alcotest.check

let table_name = "DailySales"

let cities = [| "San Jose"; "Berkeley"; "Novato"; "Fresno"; "Reno"; "Tahoe" |]

let key_of i day =
  [
    Value.Str cities.(i mod Array.length cities);
    Value.Str "CA";
    Value.Str (Printf.sprintf "line-%d" (i / Array.length cities));
    Value.date_of_mdy 10 day 96;
  ]

let row_of key sales = Tuple.make Fixtures.daily_sales (key @ [ Value.Int sales ])

let initial_keys = List.init 18 (fun i -> key_of i 13)

let initial_rows = List.map (fun k -> row_of k 1000) initial_keys

let build ?n () =
  let db = Database.create ~pool_capacity:4 () in
  let vnl = Twovnl.init db in
  ignore (Twovnl.register_table vnl ?n ~name:table_name Fixtures.daily_sales);
  Twovnl.load_initial vnl table_name initial_rows;
  (db, vnl)

(* A random batch with at most one op per key — the shape the pipeline
   receives from net-effect classification.  Updates and deletes draw from
   the initial keys, inserts take fresh day-20 keys. *)
let gen_net_ops rng =
  let shuffled = Array.of_list initial_keys in
  Xorshift.shuffle rng shuffled;
  let n_upd = 4 + Xorshift.int rng 8 in
  let n_del = 1 + Xorshift.int rng 3 in
  let ops = ref [] in
  for i = 0 to n_upd - 1 do
    ops := Batch.Update (shuffled.(i), [ (4, Value.Int (Xorshift.int rng 50_000)) ]) :: !ops
  done;
  for i = n_upd to n_upd + n_del - 1 do
    ops := Batch.Delete shuffled.(i) :: !ops
  done;
  for i = 0 to 3 + Xorshift.int rng 6 do
    ops := Batch.Insert (row_of (key_of i 20) (Xorshift.int rng 9_000)) :: !ops
  done;
  List.rev !ops

let op_key = function
  | Batch.Insert t -> Tuple.key_of Fixtures.daily_sales t
  | Batch.Update (k, _) | Batch.Delete k -> k

(* --- partitioning laws ------------------------------------------------ *)

let qcheck_partition_laws =
  QCheck.Test.make ~name:"partitions are key-disjoint, ordered, and complete" ~count:100
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 1_000_000) (int_range 1 6))
       ~print:(fun (s, p) -> Printf.sprintf "seed=%d max_parts=%d" s p))
    (fun (seed, max_parts) ->
      let _, vnl = build () in
      let h = Twovnl.handle_exn vnl table_name in
      let rng = Xorshift.create seed in
      (* Duplicate some keys on purpose: the partitioner must keep every
         key's ops together and in order even when the batch is not net. *)
      let base = gen_net_ops rng in
      let dups =
        List.filter_map
          (fun op ->
            match op with
            | Batch.Update (k, _) when Xorshift.bool rng ->
              Some (Batch.Update (k, [ (4, Value.Int (Xorshift.int rng 99)) ]))
            | _ -> None)
          base
      in
      let ops = base @ dups in
      let parts = Sched_batch.partition (Twovnl.ext h) (Twovnl.table h) ~max_parts ops in
      (* Bounded. *)
      List.length parts <= max_parts
      (* Complete and order-preserving: each partition is a subsequence,
         and together they tile the batch. *)
      && List.concat_map (fun p -> p.Sched_batch.ops) parts
         |> List.for_all (fun op -> List.memq op ops)
      && List.length (List.concat_map (fun p -> p.Sched_batch.ops) parts) = List.length ops
      && List.for_all
           (fun p ->
             let rec subseq xs ys =
               match (xs, ys) with
               | [], _ -> true
               | _, [] -> false
               | x :: xs', y :: ys' -> if x == y then subseq xs' ys' else subseq xs ys'
             in
             subseq p.Sched_batch.ops ops)
           parts
      (* Key-disjoint. *)
      && (let seen = Hashtbl.create 64 in
          List.for_all
            (fun (i, p) ->
              List.for_all
                (fun op ->
                  let k = op_key op in
                  match Hashtbl.find_opt seen k with
                  | Some j -> j = i
                  | None ->
                    Hashtbl.add seen k i;
                    true)
                p.Sched_batch.ops)
            (List.mapi (fun i p -> (i, p)) parts))
      (* Counts are truthful. *)
      && List.for_all
           (fun p ->
             p.Sched_batch.op_count = List.length p.Sched_batch.ops
             && p.Sched_batch.key_count
                = List.length
                    (List.sort_uniq compare (List.map op_key p.Sched_batch.ops)))
           parts)

(* A secondary index is a shared structure: updates assigning an indexed
   attribute from different seed buckets must collapse into one partition,
   and structural ops touch every index.  With an index on total_sales,
   every operation of this batch shares a footprint — the partitioner must
   refuse to split it no matter how many workers ask. *)
let test_secondary_index_forces_merge () =
  let _, vnl = build () in
  let h = Twovnl.handle_exn vnl table_name in
  let ops =
    List.init 12 (fun i -> Batch.Update (key_of i 13, [ (4, Value.Int (100 + i)) ]))
  in
  let before = Sched_batch.partition (Twovnl.ext h) (Twovnl.table h) ~max_parts:4 ops in
  Alcotest.(check bool) "without the index the batch splits" true (List.length before > 1);
  Table.create_index (Twovnl.table h) ~name:"by_sales" [ "total_sales" ];
  let after = Sched_batch.partition (Twovnl.ext h) (Twovnl.table h) ~max_parts:4 ops in
  check Alcotest.int "the shared index footprint merges every partition" 1 (List.length after);
  (* Mixed batch: inserts enter every index, so they too glue partitions. *)
  let mixed = Batch.Insert (row_of (key_of 0 20) 5) :: List.tl ops in
  let merged = Sched_batch.partition (Twovnl.ext h) (Twovnl.table h) ~max_parts:4 mixed in
  check Alcotest.int "structural ops share every index footprint" 1 (List.length merged)

(* --- differential equivalence ----------------------------------------- *)

let visible vnl =
  let s = Twovnl.Session.begin_ vnl in
  let rows = Twovnl.Session.read_table vnl s table_name in
  Twovnl.Session.end_ vnl s;
  List.sort Tuple.compare rows

(* Parse a saved image's catalog header: text length, live content pages,
   spare (retired generation) pages. *)
let catalog_of disk =
  let raw = Bytes.to_string (Disk.read disk 0) in
  let first, rest =
    match String.split_on_char '\n' raw with
    | first :: rest -> (first, rest)
    | [] -> Alcotest.fail "empty catalog header"
  in
  let length, live =
    match String.split_on_char ' ' first with
    | _magic :: len :: pids -> (int_of_string len, List.filter_map int_of_string_opt pids)
    | _ -> Alcotest.fail "bad catalog header"
  in
  let spare =
    match rest with
    | line :: _ when String.length line >= 5 && String.sub line 0 5 = "spare" ->
      List.filter_map int_of_string_opt
        (String.split_on_char ' ' (String.sub line 5 (String.length line - 5)))
    | _ -> []
  in
  let buf = Buffer.create length in
  List.iter
    (fun pid ->
      let img = Disk.read disk pid in
      Buffer.add_subbytes buf img 0 (min (Bytes.length img) (length - Buffer.length buf)))
    live;
  (Buffer.contents buf, List.sort_uniq compare (0 :: live @ spare))

(* Byte identity modulo the catalog's double buffering: the two schedules
   save the catalog a different number of times (the serial path saves per
   transaction, a pipelined stripe only when its heap grew), so which of
   the two generations is "live" is schedule-dependent by design.  The
   live catalog text must still be equal, and every page outside the
   catalog set — heap data and the Version page — byte-identical. *)
let check_bytes_identical ctx db_a db_b =
  Database.save db_a;
  Database.save db_b;
  let da = Database.disk db_a and db' = Database.disk db_b in
  check Alcotest.int (ctx ^ ": page counts") (Disk.page_count da) (Disk.page_count db');
  let cat_a, meta_a = catalog_of da in
  let cat_b, meta_b = catalog_of db' in
  check Alcotest.string (ctx ^ ": catalog text") cat_b cat_a;
  check (Alcotest.list Alcotest.int) (ctx ^ ": catalog page set") meta_b meta_a;
  for pid = 0 to Disk.page_count da - 1 do
    if (not (List.mem pid meta_a)) && not (Bytes.equal (Disk.read da pid) (Disk.read db' pid))
    then Alcotest.fail (Printf.sprintf "%s: page %d bytes differ" ctx pid)
  done

(* The pipelined round against its own serial reference schedule: the same
   stripes applied as classic one-VN transactions, in order, on a twin
   warehouse.  Slot assignment, version stamps, page images — everything
   must come out byte-identical. *)
let run_differential ~workers seed =
  let db_p, vnl_p = build ~n:(workers + 1) () in
  let db_s, vnl_s = build ~n:(workers + 1) () in
  let ops = gen_net_ops (Xorshift.create seed) in
  let plan = Pipeline.plan vnl_p ~workers [ (table_name, ops) ] in
  let reference = Pipeline.stripe_ops plan in
  let report = Pipeline.run plan in
  check Alcotest.int "every stripe published" report.Pipeline.stripes
    (List.length reference);
  List.iter
    (fun (vn, per_table) ->
      ignore
        (Recovery.run_maintenance db_s vnl_s (fun txn ->
             check Alcotest.int "reference txn lands at the stripe's vn" vn
               (Twovnl.Txn.vn txn);
             List.iter
               (fun (name, ops) -> ignore (Twovnl.Txn.apply_batch txn ~table:name ops))
               per_table)))
    reference;
  Alcotest.(check bool) "reader-visible states agree" true
    (List.equal Tuple.equal (visible vnl_p) (visible vnl_s));
  check_bytes_identical (Printf.sprintf "workers=%d seed=%d" workers seed) db_p db_s

let test_differential_single_stripe () = run_differential ~workers:1 7

let test_differential_multi_stripe () =
  List.iter (fun seed -> run_differential ~workers:3 seed) [ 1; 2; 42 ]

let qcheck_pipelined_equals_serial =
  QCheck.Test.make ~name:"pipelined round byte-identical to serial stripe replay" ~count:25
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 1_000_000) (int_range 2 4))
       ~print:(fun (s, w) -> Printf.sprintf "seed=%d workers=%d" s w))
    (fun (seed, workers) ->
      run_differential ~workers seed;
      true)

(* --- deterministic interleavings with readers ------------------------- *)

let sum_rows rows =
  List.fold_left
    (fun acc t -> match Tuple.get t 4 with Value.Int n -> acc + n | _ -> acc)
    0 rows

let oracle_op = function
  | Batch.Insert t -> Oracle.Ins t
  | Batch.Update (k, a) -> Oracle.Upd (k, a)
  | Batch.Delete k -> Oracle.Del k

(* Workers and readers as fibers of the deterministic scheduler: every
   interleaving the seed picks must show each reader exactly its session's
   oracle state, no matter where between stripe publishes it looks. *)
let scheduled_round ~data_seed ~sched_seed ~workers =
  let _, vnl = build ~n:(workers + 1) () in
  let oracle = Oracle.create Fixtures.daily_sales in
  Oracle.apply_txn oracle ~vn:1 (List.map (fun t -> Oracle.Ins t) initial_rows);
  let ops = gen_net_ops (Xorshift.create data_seed) in
  let plan = Pipeline.plan vnl ~workers [ (table_name, ops) ] in
  List.iter
    (fun (vn, per_table) ->
      List.iter
        (fun (_, ops) -> Oracle.apply_txn oracle ~vn (List.map oracle_op ops))
        per_table)
    (Pipeline.stripe_ops plan);
  let reader name =
    ( name,
      fun () ->
        for _ = 1 to 3 do
          let s = Twovnl.Session.begin_ vnl in
          (try
             let rows = Twovnl.Session.read_table vnl s table_name in
             let expected = Oracle.visible oracle ~vn:(Twovnl.Session.vn s) in
             if not (Oracle.equal_views rows expected) then
               Alcotest.failf "%s at vn %d saw %d rows, oracle has %d" name
                 (Twovnl.Session.vn s) (List.length rows) (List.length expected);
             if sum_rows rows <> sum_rows expected then
               Alcotest.failf "%s at vn %d sum mismatch" name (Twovnl.Session.vn s)
           with Twovnl.Expired _ -> ());
          Twovnl.Session.end_ vnl s;
          Sched.yield ()
        done )
  in
  let trace =
    Sched.run ~seed:sched_seed (Pipeline.tasks plan @ [ reader "reader-1"; reader "reader-2" ])
  in
  let report = Pipeline.finish plan in
  check Alcotest.int "all stripes published" (Pipeline.stripe_count plan)
    report.Pipeline.stripes;
  let final = Oracle.visible oracle ~vn:(report.Pipeline.base_vn + report.Pipeline.stripes) in
  Alcotest.(check bool) "final state equals oracle" true
    (Oracle.equal_views (visible vnl) final);
  trace

let test_scheduled_interleavings () =
  for sched_seed = 1 to 10 do
    ignore (scheduled_round ~data_seed:42 ~sched_seed ~workers:3)
  done

let test_scheduled_workloads () =
  List.iter
    (fun data_seed -> ignore (scheduled_round ~data_seed ~sched_seed:5 ~workers:2))
    [ 3; 17; 99 ]

let test_scheduled_deterministic () =
  let t1 = scheduled_round ~data_seed:42 ~sched_seed:9 ~workers:3 in
  let t2 = scheduled_round ~data_seed:42 ~sched_seed:9 ~workers:3 in
  check (Alcotest.list Alcotest.string) "same seed, same schedule" t1 t2

(* A session opened at round begin outlives the whole round at n = k + 1
   (the plan caps stripes accordingly), and keeps reading the pre-round
   state while stripes publish past it. *)
let test_session_survives_round () =
  let _, vnl = build ~n:4 () in
  let pre = visible vnl in
  let s = Twovnl.Session.begin_ vnl in
  let ops = gen_net_ops (Xorshift.create 11) in
  let plan = Pipeline.plan vnl ~workers:3 [ (table_name, ops) ] in
  let report = Pipeline.run plan in
  check Alcotest.int "round used every slot n - 1 allows" 3 report.Pipeline.stripes;
  Alcotest.(check bool) "round-begin session survives the round" true
    (Twovnl.Session.is_valid vnl s);
  Alcotest.(check bool) "and still reads the pre-round state" true
    (List.equal Tuple.equal pre
       (List.sort Tuple.compare (Twovnl.Session.read_table vnl s table_name)));
  Twovnl.Session.end_ vnl s

(* --- crash sweep: every crash lands on a stripe boundary -------------- *)

let tables = [ (table_name, Fixtures.daily_sales) ]

(* Build a cleanly saved base image holding the initial rows. *)
let build_base () =
  let db = Database.create ~pool_capacity:4 () in
  let vnl = Twovnl.init db in
  ignore (Twovnl.register_table vnl ~n:4 ~name:table_name Fixtures.daily_sales);
  Twovnl.load_initial vnl table_name initial_rows;
  Database.save db;
  Database.disk db

let reopen disk = Recovery.reopen ~pool_capacity:4 ~n:4 disk ~tables

let run_pipelined_round vnl ops ~workers =
  let plan = Pipeline.plan vnl ~workers [ (table_name, ops) ] in
  (Pipeline.stripe_ops plan, Pipeline.run plan)

(* Crash at every physical write of a pipelined round; §7 adapted to
   rounds: recovery must land exactly on a published-VN prefix — the state
   after stripes 0..j for some j (j = -1 is the pre-round state), never a
   mixture of two stripes. *)
let test_crash_sweep_lands_on_stripe_boundary () =
  let base = build_base () in
  let workers = 3 in
  let ops = gen_net_ops (Xorshift.create 23) in
  (* Fault-free dry run: write count plus each stripe-prefix state, taken
     by replaying the reference schedule one stripe at a time. *)
  let reference, writes =
    let d = Disk.clone base in
    let vnl, out = reopen d in
    Alcotest.(check bool) "clean image needs no repair" false out.Recovery.interrupted;
    Disk.reset_stats d;
    let reference, _ = run_pipelined_round vnl ops ~workers in
    (reference, (Disk.stats d).Disk.writes)
  in
  let prefixes =
    let d = Disk.clone base in
    let vnl, _ = reopen d in
    let states = ref [ visible vnl ] in
    List.iter
      (fun (_, per_table) ->
        let m = Twovnl.Txn.begin_ vnl in
        List.iter
          (fun (name, ops) -> ignore (Twovnl.Txn.apply_batch m ~table:name ops))
          per_table;
        Twovnl.Txn.commit m;
        states := visible vnl :: !states)
      reference;
    List.rev !states
  in
  check Alcotest.int "round split into multiple stripes"
    (List.length reference + 1) (List.length prefixes);
  Alcotest.(check bool) "protocol writes enough to sweep" true (writes > 5);
  let hit = Array.make (List.length prefixes) 0 in
  for k = 1 to writes do
    let d = Disk.clone base in
    let vnl, _ = reopen d in
    Disk.set_faults d { Disk.no_faults with Disk.crash_at_write = Some k };
    (try
       ignore (run_pipelined_round vnl ops ~workers);
       Alcotest.failf "crash point %d did not fire" k
     with Disk.Crash _ -> ());
    Disk.clear_faults d;
    let vnl2, _ = reopen d in
    let state = visible vnl2 in
    (match List.find_index (fun p -> List.equal Tuple.equal p state) prefixes with
    | Some j -> hit.(j) <- hit.(j) + 1
    | None ->
      Alcotest.failf "crash at write %d recovered to a state on no stripe boundary" k)
  done;
  (* The sweep must actually exercise more than one boundary. *)
  Alcotest.(check bool) "several distinct boundaries were hit" true
    (Array.fold_left (fun acc c -> acc + min c 1) 0 hit >= 2)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_partition_laws;
    Alcotest.test_case "secondary-index footprint forces partition merge" `Quick
      test_secondary_index_forces_merge;
    Alcotest.test_case "single-stripe round equals serial transaction" `Quick
      test_differential_single_stripe;
    Alcotest.test_case "multi-stripe round equals serial stripe replay" `Quick
      test_differential_multi_stripe;
    QCheck_alcotest.to_alcotest qcheck_pipelined_equals_serial;
    Alcotest.test_case "scheduled interleavings keep readers on the oracle" `Quick
      test_scheduled_interleavings;
    Alcotest.test_case "scheduled interleavings across workloads" `Quick
      test_scheduled_workloads;
    Alcotest.test_case "scheduled round is deterministic per seed" `Quick
      test_scheduled_deterministic;
    Alcotest.test_case "round-begin session survives a full round (n = k+1)" `Quick
      test_session_survives_round;
    Alcotest.test_case "crash sweep lands on a stripe boundary" `Quick
      test_crash_sweep_lands_on_stripe_boundary;
  ]
