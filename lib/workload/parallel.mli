(** Parallel reader serving: 1 maintenance domain + N reader domains.

    Runs the Example 2.1 analyst workload (city total + product-line
    drill-down, plus periodic full-view scans) on [readers] OCaml 5
    domains while a maintenance domain applies random refresh batches
    through {!Vnl_core.Recovery.run_maintenance}.  Every query pair is
    checked for the 2VNL consistency criterion — the drill-down must sum
    to the total — so a mixed-version or torn read shows up in
    [inconsistent] rather than silently skewing throughput numbers. *)

type config = {
  readers : int;  (** Reader domains (>= 1); one maintenance domain rides along. *)
  duration_s : float;  (** Measured wall-clock window. *)
  days : int;  (** Days of history loaded before the run. *)
  batch_size : int;  (** Logical ops per refresh batch. *)
  n : int;  (** Version slots per table: 2 = 2VNL. *)
  pool_capacity : int;
  queries_per_session : int;  (** Query pairs before the session is reopened. *)
  seed : int;
}

val default_config : config

type report = {
  readers : int;
  elapsed_s : float;
  reader_queries : int;  (** Completed query pairs across all reader domains. *)
  per_reader : int array;  (** Query pairs completed by each reader domain. *)
  rows_scanned : int;  (** Tuples returned by full-view scans. *)
  sessions : int;  (** Reader sessions opened. *)
  expired : int;  (** Sessions ended early by version expiry. *)
  inconsistent : int;  (** Drill-downs that failed to sum to their total. *)
  refreshes : int;  (** Maintenance transactions committed. *)
  qps : float;  (** [reader_queries /. elapsed_s]. *)
  latency : Vnl_util.Stats.summary;
      (** Per-query-pair wall-clock latency in milliseconds, pooled over
          all reader domains; p50/p99 expose reader-side convoys that
          mean throughput hides. *)
}

val run : config -> report
(** Build a fresh warehouse, then serve for [duration_s] with
    [readers + 1] domains.  Deterministic in its inputs but not in its
    schedule; use the [test/] interleaving harness for reproducible
    interleavings. *)
