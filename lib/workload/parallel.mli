(** Parallel reader serving: 1 maintenance domain + N reader domains.

    Runs the Example 2.1 analyst workload (city total + product-line
    drill-down, plus periodic full-view scans) on [readers] OCaml 5
    domains while a maintenance domain applies random refresh batches
    through {!Vnl_core.Recovery.run_maintenance}.  Every query pair is
    checked for the 2VNL consistency criterion — the drill-down must sum
    to the total — so a mixed-version or torn read shows up in
    [inconsistent] rather than silently skewing throughput numbers. *)

type config = {
  readers : int;  (** Reader domains (>= 1); one maintenance domain rides along. *)
  duration_s : float;  (** Measured wall-clock window. *)
  days : int;  (** Days of history loaded before the run. *)
  batch_size : int;  (** Logical ops per refresh batch. *)
  n : int;  (** Version slots per table: 2 = 2VNL. *)
  pool_capacity : int;
  queries_per_session : int;  (** Query pairs before the session is reopened. *)
  seed : int;
}

val default_config : config

type report = {
  readers : int;
  elapsed_s : float;
  reader_queries : int;  (** Completed query pairs across all reader domains. *)
  per_reader : int array;  (** Query pairs completed by each reader domain. *)
  rows_scanned : int;  (** Tuples returned by full-view scans. *)
  sessions : int;  (** Reader sessions opened. *)
  expired : int;  (** Sessions ended early by version expiry. *)
  inconsistent : int;  (** Drill-downs that failed to sum to their total. *)
  refreshes : int;  (** Maintenance transactions committed. *)
  qps : float;  (** [reader_queries /. elapsed_s]. *)
  latency : Vnl_util.Stats.summary;
      (** Per-query-pair wall-clock latency in milliseconds, pooled over
          all reader domains; p50/p99 expose reader-side convoys that
          mean throughput hides. *)
}

val run : config -> report
(** Build a fresh warehouse, then serve for [duration_s] with
    [readers + 1] domains.  Deterministic in its inputs but not in its
    schedule; use the [test/] interleaving harness for reproducible
    interleavings. *)

(** {1 Maintainer-side scaling}

    The mirror scenario: fix the {e amount} of maintenance work (a
    pre-generated sequence of source batches, identical across
    configurations) and measure how fast it drains — serially through
    {!Vnl_warehouse.Warehouse.refresh}, or as pipelined rounds
    ({!Vnl_warehouse.Warehouse.refresh_pipelined}, driving
    {!Vnl_core.Pipeline}) at [workers] stripes under nVNL. *)

type pipeline_config = {
  workers : int;  (** 0 = serial {!Vnl_warehouse.Warehouse.refresh} baseline. *)
  rounds : int;  (** Source batches to drain (the measured work). *)
  readers : int;  (** Concurrent reader domains (0 = none). *)
  days : int;
  batch_size : int;  (** Source changes per batch. *)
  n : int;  (** Version slots; pipelining wants [n >= workers + 1]. *)
  pool_capacity : int;
  queries_per_session : int;
  seed : int;
}

val default_pipeline_config : pipeline_config

type pipeline_report = {
  p_workers : int;
  p_rounds : int;
  p_elapsed_s : float;
  p_refreshes_per_s : float;  (** Source batches drained per second. *)
  p_ops_per_s : float;  (** Source changes propagated per second. *)
  p_stripes : int;  (** Published VNs across all rounds (= batches when serial). *)
  p_reader_queries : int;
  p_inconsistent : int;  (** Example 2.1 drill-downs that missed their total. *)
  p_expired : int;
}

val run_pipeline : pipeline_config -> pipeline_report
(** Build a fresh warehouse at [n] version slots, pre-generate [rounds]
    batches from [seed], and drain them.  The serial maintainer refreshes
    once per batch; the pipelined maintainer takes up to [workers] queued
    batches per round, nets them together, and publishes one VN per
    key-disjoint stripe in order — intermediate consistent states at the
    same granularity the serial refreshes give readers.  The batches and
    their order are functions of the config alone, so reports at different
    [workers] are directly comparable; reader domains (if any) run the
    consistency-checked analyst pair throughout and their failures land in
    [p_inconsistent]. *)
