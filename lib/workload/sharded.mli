(** Multi-tenant sharded warehouse scenario: a routed source feed drained
    by per-shard maintenance streams (round-robin cadence, so [k] shards
    net ~[k] rounds of backlog per refresh), with optional cross-shard
    reader domains validating VN-vector snapshot consistency by reading
    the union view twice per session and demanding identical answers. *)

type config = {
  shards : int;  (** Independent warehouse shards (>= 1). *)
  domains : int;  (** Maintenance domains for cross-shard refresh fan-out. *)
  rounds : int;  (** Source batches fed (and refreshes driven, round-robin). *)
  readers : int;  (** Cross-shard reader domains (0 = none). *)
  days : int;
  batch_size : int;  (** Source changes per round (split across shards). *)
  n : int;
  pool_capacity : int;
  seed : int;
}

val default_config : config

type report = {
  s_shards : int;
  s_rounds : int;
  s_elapsed_s : float;
  s_ops_per_s : float;  (** Source changes drained per second. *)
  s_refreshes : int;  (** Per-shard maintenance transactions committed. *)
  s_refreshes_per_s : float;
  s_reader_queries : int;  (** Cross-shard union query pairs completed. *)
  s_inconsistent : int;  (** Pairs whose two union reads disagreed. *)
  s_expired : int;  (** Reader sessions ended by component expiry. *)
  s_union_groups : int;  (** Groups in the final union view. *)
}

val run : config -> report
(** Drive the scenario: same seed =>  same source batches at every shard
    count, so drain throughput is comparable across configurations.  All
    queues are fully drained before throughput is scored. *)
