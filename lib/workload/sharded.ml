(* Multi-tenant sharded serving: per-shard maintenance streams draining a
   routed source feed, with cross-shard readers holding VN-vector
   snapshots.

   The scaling mechanism is the same netting economics the pipelined
   window exploits, applied across tenants: every round queues one global
   source batch (routed by tenant key onto the shards) but refreshes only
   the round-robin shard of the round, so with [k] shards each refresh
   drains ~[k] rounds of that shard's slice as one net-effect maintenance
   transaction — hot groups are probed, written, and flushed once per [k]
   batches instead of once per batch, and the per-refresh fixed costs
   (flag/catalog durability, version publish, page flushes) amortize the
   same way.  Reader sessions hold one 2VNL session per shard
   ({!Vnl_warehouse.Shard.Sharded.begin_session}); the consistency check
   reads the union view twice through independent per-shard extractions
   and demands identical answers — any torn component snapshot breaks
   it. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Xorshift = Vnl_util.Xorshift
module Domain_pool = Vnl_util.Domain_pool
module Shard = Vnl_warehouse.Shard
module Delta = Vnl_warehouse.Delta
module Twovnl = Vnl_core.Twovnl

let view_name = "DailySales"

type config = {
  shards : int;  (** Independent warehouse shards (>= 1). *)
  domains : int;  (** Maintenance domains for cross-shard refresh fan-out. *)
  rounds : int;  (** Source batches fed (and refreshes driven, round-robin). *)
  readers : int;  (** Cross-shard reader domains (0 = none). *)
  days : int;
  batch_size : int;  (** Source changes per round (split across shards). *)
  n : int;
  pool_capacity : int;
  seed : int;
}

let default_config =
  {
    shards = 1;
    domains = 1;
    rounds = 32;
    readers = 0;
    days = 4;
    batch_size = 800;
    n = 2;
    pool_capacity = 256;
    seed = 23;
  }

type report = {
  s_shards : int;
  s_rounds : int;
  s_elapsed_s : float;
  s_ops_per_s : float;  (** Source changes drained per second. *)
  s_refreshes : int;  (** Per-shard maintenance transactions committed. *)
  s_refreshes_per_s : float;
  s_reader_queries : int;  (** Cross-shard union query pairs completed. *)
  s_inconsistent : int;  (** Pairs whose two union reads disagreed. *)
  s_expired : int;  (** Reader sessions ended by component expiry. *)
  s_union_groups : int;  (** Groups in the final union view. *)
}

let build (config : config) rng =
  let sw =
    Shard.Sharded.create ~n:config.n ~pool_capacity:config.pool_capacity
      ~shard_map:(Sales_gen.sales_shard_map ~shards:config.shards)
      [ Sales_gen.daily_sales_view () ]
  in
  Shard.Sharded.queue_changes sw ~view:view_name
    (Sales_gen.initial_load rng ~days:config.days ~sales_per_day:100);
  ignore (Shard.Sharded.refresh_all sw);
  sw

(* One cross-shard reader iteration: open the VN-vector session, read the
   union view twice through independent per-shard extractions, compare.
   The two reads share the session vector, so any difference means a
   component snapshot moved under the session — the torn read the vector
   protocol must prevent. *)
let reader_pair sw =
  let session = Shard.Sharded.begin_session sw in
  Fun.protect
    ~finally:(fun () -> Shard.Sharded.end_session sw session)
    (fun () ->
      let a = Shard.Sharded.read_union sw session ~view:view_name in
      let b = Shard.Sharded.read_union sw session ~view:view_name in
      List.equal Tuple.equal a b)

let reader_loop sw ~stop tally =
  let queries = ref 0 and bad = ref 0 and expired = ref 0 in
  while not (Atomic.get stop) do
    (match reader_pair sw with
    | consistent ->
      incr queries;
      if not consistent then incr bad
    | exception Twovnl.Expired _ -> incr expired)
  done;
  tally := (!queries, !bad, !expired)

let run (config : config) =
  if config.shards < 1 then invalid_arg "Sharded.run: need at least one shard";
  if config.rounds < 1 then invalid_arg "Sharded.run: need at least one round";
  let rng = Xorshift.create config.seed in
  let sw = build config rng in
  (* Pre-generate every round's global batch so content is identical
     across shard counts for the same seed (routing splits it
     differently, the changes themselves are the same). *)
  let batches =
    Array.init config.rounds (fun i ->
        List.init config.batch_size (fun _ ->
            let day =
              if Xorshift.chance rng 0.3 then config.days + i else Xorshift.int rng config.days
            in
            Delta.Insert (Sales_gen.gen_sale rng ~day)))
  in
  let stop = Atomic.make false in
  let tallies = Array.init (max 1 config.readers) (fun _ -> ref (0, 0, 0)) in
  let refreshes = ref 0 in
  let elapsed = ref 0.0 in
  let maintain () =
    let t0 = Unix.gettimeofday () in
    for i = 0 to config.rounds - 1 do
      Shard.Sharded.queue_changes sw ~view:view_name batches.(i);
      (* Round-robin cadence: shard [i mod shards] drains its backlog —
         with k shards each refresh nets ~k rounds of its slice. *)
      ignore (Shard.Sharded.refresh_shard sw ~shard:(i mod config.shards))
    done;
    (* Final sweep so every queue is drained when throughput is scored
       (the round-robin tail leaves k - 1 shards with a partial window);
       parallelize across maintenance domains when asked. *)
    ignore (Shard.Sharded.refresh_all ~domains:config.domains sw);
    ignore (Shard.Sharded.collect_garbage sw);
    elapsed := Unix.gettimeofday () -. t0;
    refreshes := config.rounds + config.shards;
    Atomic.set stop true
  in
  if config.readers < 1 then maintain ()
  else
    ignore
      (Domain_pool.run ~domains:(config.readers + 1) (fun ~start rank ->
           start ();
           if rank = 0 then maintain ()
           else reader_loop sw ~stop tallies.(rank - 1)));
  let total_ops = config.rounds * config.batch_size in
  let sum f = Array.fold_left (fun acc t -> acc + f !t) 0 tallies in
  let union =
    let session = Shard.Sharded.begin_session sw in
    Fun.protect
      ~finally:(fun () -> Shard.Sharded.end_session sw session)
      (fun () -> Shard.Sharded.read_union sw session ~view:view_name)
  in
  {
    s_shards = config.shards;
    s_rounds = config.rounds;
    s_elapsed_s = !elapsed;
    s_ops_per_s = (if !elapsed > 0.0 then float_of_int total_ops /. !elapsed else 0.0);
    s_refreshes = !refreshes;
    s_refreshes_per_s =
      (if !elapsed > 0.0 then float_of_int !refreshes /. !elapsed else 0.0);
    s_reader_queries = sum (fun (q, _, _) -> q);
    s_inconsistent = sum (fun (_, b, _) -> b);
    s_expired = sum (fun (_, _, e) -> e);
    s_union_groups = List.length union;
  }
