(* Parallel reader serving: 1 maintenance domain + N reader domains.

   The point of 2VNL (§1-§2) is that long reader sessions proceed
   concurrently with the maintenance transaction.  This scenario finally
   makes the concurrency real: reader sessions run on their own OCaml 5
   domains, scanning and drilling into the DailySales summary view through
   {!Vnl_core.Twovnl.Session} while one maintenance domain applies refresh
   batches through {!Vnl_core.Recovery.run_maintenance}.  Readers check
   the Example 2.1 consistency criterion on every query pair (the
   drill-down must sum to the city total — a torn or mixed-version read
   breaks it), so the scenario doubles as a correctness harness for the
   domain-safe read path. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Schema = Vnl_relation.Schema
module Dtype = Vnl_relation.Dtype
module Executor = Vnl_query.Executor
module Database = Vnl_query.Database
module Twovnl = Vnl_core.Twovnl
module Recovery = Vnl_core.Recovery
module Batch = Vnl_core.Batch
module Xorshift = Vnl_util.Xorshift
module Domain_pool = Vnl_util.Domain_pool

let view_name = "DailySales"

let daily_sales =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~key:true "state" (Dtype.Str 2);
      Schema.attr ~key:true "product_line" (Dtype.Str 12);
      Schema.attr ~key:true "date" Dtype.Date;
      Schema.attr ~updatable:true "total_sales" Dtype.Int;
    ]

let groups_per_day = Array.length Sales_gen.cities * Array.length Sales_gen.product_lines

let group_key gid ~day =
  let city, state = Sales_gen.cities.(gid mod Array.length Sales_gen.cities) in
  let pl = Sales_gen.product_lines.(gid / Array.length Sales_gen.cities) in
  [ Value.Str city; Value.Str state; Value.Str pl; Sales_gen.date_of_day day ]

type config = {
  readers : int;  (** Reader domains (>= 1); one maintenance domain rides along. *)
  duration_s : float;  (** Measured wall-clock window. *)
  days : int;  (** Days of history loaded before the run. *)
  batch_size : int;  (** Logical ops per refresh batch. *)
  n : int;  (** Version slots per table: 2 = 2VNL. *)
  pool_capacity : int;
  queries_per_session : int;  (** Query pairs before the session is reopened. *)
  seed : int;
}

let default_config =
  {
    readers = 2;
    duration_s = 0.5;
    days = 4;
    batch_size = 120;
    n = 2;
    pool_capacity = 256;
    queries_per_session = 8;
    seed = 7;
  }

type report = {
  readers : int;
  elapsed_s : float;
  reader_queries : int;  (** Completed query pairs across all reader domains. *)
  per_reader : int array;  (** Query pairs completed by each reader domain. *)
  rows_scanned : int;  (** Tuples returned by full-view scans. *)
  sessions : int;  (** Reader sessions opened. *)
  expired : int;  (** Sessions ended early by version expiry. *)
  inconsistent : int;  (** Drill-downs that failed to sum to their total. *)
  refreshes : int;  (** Maintenance transactions committed. *)
  qps : float;  (** reader_queries / elapsed_s. *)
  latency : Vnl_util.Stats.summary;
      (** Wall-clock per-query-pair latency in milliseconds, pooled over
          all reader domains — the tail (p99) is where reader-side lock
          convoys show up long before mean qps moves. *)
}

(* A warehouse with [days] of history, built and loaded single-domain. *)
let build ~config =
  let db = Database.create ~pool_capacity:config.pool_capacity () in
  let vnl = Twovnl.init db in
  ignore (Twovnl.register_table vnl ~n:config.n ~name:view_name daily_sales);
  let rows = ref [] in
  for day = config.days - 1 downto 0 do
    for gid = groups_per_day - 1 downto 0 do
      rows := Tuple.make daily_sales (group_key gid ~day @ [ Value.Int 1000 ]) :: !rows
    done
  done;
  Twovnl.load_initial vnl view_name !rows;
  Database.save db;
  vnl

(* One refresh batch: corrections to historical groups plus fresh groups
   for the day after the loaded history.  Inserts and updates only — the
   long-running scenario must not exhaust the key space, and retirements
   are exercised by the fault and stress suites. *)
let gen_ops rng ~days ~size ~fresh_day =
  let ops = ref [] in
  let fresh = Hashtbl.create 16 in
  for _ = 1 to size do
    if Xorshift.chance rng 0.3 then begin
      let gid = Xorshift.int rng groups_per_day in
      let key = group_key gid ~day:fresh_day in
      if Hashtbl.mem fresh gid then
        ops := Batch.Update (key, [ (4, Value.Int (Xorshift.int rng 9_000)) ]) :: !ops
      else begin
        Hashtbl.add fresh gid ();
        ops :=
          Batch.Insert (Tuple.make daily_sales (key @ [ Value.Int (Xorshift.int rng 9_000) ]))
          :: !ops
      end
    end
    else begin
      let gid = Xorshift.int rng groups_per_day and day = Xorshift.int rng days in
      ops :=
        Batch.Update (group_key gid ~day, [ (4, Value.Int (Xorshift.int rng 50_000)) ])
        :: !ops
    end
  done;
  List.rev !ops

(* The Example 2.1 analyst pair at one version: the city total, then its
   product-line drill-down; both through the compiled SQL read path. *)
let query_pair vnl session city =
  let total =
    match
      (Twovnl.Session.query vnl session
         ~params:[ ("city", Value.Str city) ]
         "SELECT SUM(total_sales) FROM DailySales WHERE city = :city")
        .Executor.rows
    with
    | [ [ Value.Int n ] ] -> n
    | _ -> 0
  in
  let drill =
    (Twovnl.Session.query vnl session
       ~params:[ ("city", Value.Str city) ]
       "SELECT product_line, SUM(total_sales) FROM DailySales WHERE city = :city \
        GROUP BY product_line")
      .Executor.rows
    |> List.fold_left
         (fun acc row -> match row with [ _; Value.Int n ] -> acc + n | _ -> acc)
         0
  in
  (total, drill)

type reader_tally = {
  mutable queries : int;
  mutable rows : int;
  mutable opened : int;
  mutable expirations : int;
  mutable bad : int;
  mutable latencies_ms : float list;
      (** Per-query-pair wall-clock samples, newest first.  Owned by one
          reader domain during the run; read after the domains join. *)
}

let reader_loop vnl ~stop ~rng ~queries_per_session tally =
  let cities = Array.map fst Sales_gen.cities in
  while not (Atomic.get stop) do
    let session = Twovnl.Session.begin_ vnl in
    tally.opened <- tally.opened + 1;
    (try
       let q = ref 0 in
       while (not (Atomic.get stop)) && !q < queries_per_session do
         incr q;
         let city = Xorshift.pick rng cities in
         let t0 = Unix.gettimeofday () in
         let total, drill = query_pair vnl session city in
         tally.latencies_ms <- ((Unix.gettimeofday () -. t0) *. 1e3) :: tally.latencies_ms;
         if total <> drill then tally.bad <- tally.bad + 1;
         (* Every few pairs, a full-view scan through the engine
            extraction — the §4.1 pattern the fast path serves. *)
         if !q mod 4 = 0 then begin
           let rows = Twovnl.Session.read_table vnl session view_name in
           tally.rows <- tally.rows + List.length rows
         end;
         tally.queries <- tally.queries + 1
       done
     with Twovnl.Expired _ -> tally.expirations <- tally.expirations + 1);
    Twovnl.Session.end_ vnl session
  done

let maintainer_loop vnl ~stop ~until_s ~rng ~days ~batch_size =
  let db = Twovnl.database vnl in
  let refreshes = ref 0 in
  let fresh_day = ref days in
  while Unix.gettimeofday () < until_s do
    let ops = gen_ops rng ~days ~size:batch_size ~fresh_day:!fresh_day in
    incr fresh_day;
    ignore
      (Recovery.run_maintenance db vnl (fun txn ->
           Twovnl.Txn.apply_batch txn ~table:view_name ops));
    incr refreshes;
    ignore (Twovnl.collect_garbage vnl)
  done;
  Atomic.set stop true;
  !refreshes

(* ------------------------------------------------------------------ *)
(* Maintainer-side scaling: the serial warehouse refresh
   ({!Vnl_warehouse.Warehouse.refresh} — per-group probes, one
   transaction, full flushes) vs pipelined rounds
   ({!Vnl_warehouse.Warehouse.refresh_pipelined} — batched
   classification, k dependency-disjoint stripes, targeted flushes) over
   a fixed number of identical pre-generated source batches (same seed =>
   same batches at every k, so the comparison is fair).  Optional reader
   domains run the Example 2.1 consistency pair throughout — the point of
   pipelining under nVNL is that reader service never stops. *)

type pipeline_config = {
  workers : int;  (** 0 = serial {!Recovery.run_maintenance} baseline. *)
  rounds : int;  (** Refresh rounds to drive (the measured work). *)
  readers : int;  (** Concurrent reader domains (0 = none). *)
  days : int;
  batch_size : int;
  n : int;  (** Version slots; pipelining wants n >= workers + 1. *)
  pool_capacity : int;
  queries_per_session : int;
  seed : int;
}

let default_pipeline_config =
  {
    workers = 0;
    rounds = 40;
    readers = 0;
    days = 4;
    batch_size = 1000;
    n = 2;
    pool_capacity = 256;
    queries_per_session = 8;
    seed = 11;
  }

type pipeline_report = {
  p_workers : int;
  p_rounds : int;
  p_elapsed_s : float;
  p_refreshes_per_s : float;  (** Maintenance transactions (rounds) per second. *)
  p_ops_per_s : float;  (** Logical operations propagated per second. *)
  p_stripes : int;  (** Total stripes (published VNs) across all rounds. *)
  p_reader_queries : int;
  p_inconsistent : int;
  p_expired : int;
}

let run_pipeline (config : pipeline_config) =
  if config.rounds < 1 then invalid_arg "Parallel.run_pipeline: need at least one round";
  let module Warehouse = Vnl_warehouse.Warehouse in
  let module Delta = Vnl_warehouse.Delta in
  let wh =
    Warehouse.create ~n:config.n ~pool_capacity:config.pool_capacity
      [ Sales_gen.daily_sales_view () ]
  in
  let vnl = Warehouse.vnl wh in
  let rng = Xorshift.create config.seed in
  Warehouse.queue_changes wh ~view:view_name
    (Sales_gen.initial_load rng ~days:config.days ~sales_per_day:100);
  ignore (Warehouse.refresh wh);
  (* Pre-generate every round's source batch (insert-only: sales landing
     in existing groups become view updates, fresh-day sales become view
     inserts) so generation cost and content are identical across
     configurations. *)
  let batches =
    Array.init config.rounds (fun i ->
        List.init config.batch_size (fun _ ->
            let day =
              if Xorshift.chance rng 0.3 then config.days + i else Xorshift.int rng config.days
            in
            Delta.Insert (Sales_gen.gen_sale rng ~day)))
  in
  let vn0 = Vnl_core.Version_state.current_vn (Twovnl.version_state vnl) in
  let stop = Atomic.make false in
  let tallies =
    Array.init (max 1 config.readers) (fun _ ->
        { queries = 0; rows = 0; opened = 0; expirations = 0; bad = 0; latencies_ms = [] })
  in
  let rngs = Array.init (config.readers + 1) (fun i -> Xorshift.create (config.seed + 100 + i)) in
  let elapsed = ref 0.0 in
  (* Serial drains the backlog one refresh per batch — the classic
     operating mode, one maintenance transaction each.  The pipelined
     maintainer admits a window of up to [workers] queued batches per
     round: the round nets the window's changes together (each hot group
     written and flushed once instead of once per batch), partitions them
     into key-disjoint stripes, and publishes one VN per stripe in order —
     so readers see intermediate consistent states at the same granularity
     serial refreshes would give them, which a single fat serial batch
     cannot do. *)
  let window = if config.workers < 1 then 1 else config.workers in
  let maintain () =
    let t0 = Unix.gettimeofday () in
    let i = ref 0 in
    while !i < config.rounds do
      let w = min window (config.rounds - !i) in
      for j = !i to !i + w - 1 do
        Warehouse.queue_changes wh ~view:view_name batches.(j)
      done;
      if config.workers < 1 then ignore (Warehouse.refresh wh)
      else ignore (Warehouse.refresh_pipelined ~workers:config.workers wh);
      ignore (Warehouse.collect_garbage wh);
      i := !i + w
    done;
    elapsed := Unix.gettimeofday () -. t0;
    Atomic.set stop true
  in
  if config.readers < 1 then maintain ()
  else
    ignore
      (Domain_pool.run ~domains:(config.readers + 1) (fun ~start rank ->
           start ();
           if rank = 0 then maintain ()
           else
             reader_loop vnl ~stop ~rng:rngs.(rank)
               ~queries_per_session:config.queries_per_session
               tallies.(rank - 1)));
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  {
    p_workers = config.workers;
    p_rounds = config.rounds;
    p_elapsed_s = !elapsed;
    p_refreshes_per_s =
      (if !elapsed > 0.0 then float_of_int config.rounds /. !elapsed else 0.0);
    p_ops_per_s =
      (if !elapsed > 0.0 then float_of_int (config.rounds * config.batch_size) /. !elapsed
       else 0.0);
    p_stripes = Vnl_core.Version_state.current_vn (Twovnl.version_state vnl) - vn0;
    p_reader_queries = sum (fun t -> t.queries);
    p_inconsistent = sum (fun t -> t.bad);
    p_expired = sum (fun t -> t.expirations);
  }

let run (config : config) =
  if config.readers < 1 then invalid_arg "Parallel.run: need at least one reader";
  let vnl = build ~config in
  let stop = Atomic.make false in
  let tallies =
    Array.init config.readers (fun _ ->
        { queries = 0; rows = 0; opened = 0; expirations = 0; bad = 0; latencies_ms = [] })
  in
  let rngs = Array.init (config.readers + 1) (fun i -> Xorshift.create (config.seed + i)) in
  let t0 = ref 0.0 in
  let results =
    Domain_pool.run ~domains:(config.readers + 1) (fun ~start rank ->
        start ();
        if rank = 0 then begin
          (* Rank 0 is the maintenance domain and the timekeeper. *)
          let now = Unix.gettimeofday () in
          t0 := now;
          maintainer_loop vnl ~stop ~until_s:(now +. config.duration_s) ~rng:rngs.(0)
            ~days:config.days ~batch_size:config.batch_size
        end
        else begin
          reader_loop vnl ~stop ~rng:rngs.(rank)
            ~queries_per_session:config.queries_per_session
            tallies.(rank - 1);
          0
        end)
  in
  let elapsed = Unix.gettimeofday () -. !t0 in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let queries = sum (fun t -> t.queries) in
  {
    readers = config.readers;
    elapsed_s = elapsed;
    reader_queries = queries;
    per_reader = Array.map (fun t -> t.queries) tallies;
    rows_scanned = sum (fun t -> t.rows);
    sessions = sum (fun t -> t.opened);
    expired = sum (fun t -> t.expirations);
    inconsistent = sum (fun t -> t.bad);
    refreshes = results.(0);
    qps = (if elapsed > 0.0 then float_of_int queries /. elapsed else 0.0);
    latency =
      Vnl_util.Stats.summarize
        (Array.fold_left (fun acc t -> List.rev_append t.latencies_ms acc) [] tallies);
  }
