module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Dtype = Vnl_relation.Dtype
module Xorshift = Vnl_util.Xorshift
module View_def = Vnl_warehouse.View_def
module Delta = Vnl_warehouse.Delta
module Source = Vnl_warehouse.Source

let cities =
  [|
    ("San Jose", "CA"); ("Berkeley", "CA"); ("Novato", "CA"); ("Fresno", "CA");
    ("Portland", "OR"); ("Eugene", "OR"); ("Seattle", "WA"); ("Spokane", "WA");
    ("Reno", "NV"); ("Las Vegas", "NV"); ("Phoenix", "AZ"); ("Tucson", "AZ");
  |]

let product_lines =
  [|
    "golf equip"; "racquetball"; "rollerblades"; "tennis"; "running";
    "cycling"; "swimming"; "camping";
  |]

let sales_schema =
  Schema.make
    [
      Schema.attr "city" (Dtype.Str 20);
      Schema.attr "state" (Dtype.Str 2);
      Schema.attr "product_line" (Dtype.Str 12);
      Schema.attr "date" Dtype.Date;
      Schema.attr "amount" Dtype.Int;
    ]

(* The sales domain's natural tenant is the regional subsidiary — the
   state attribute — and the view's group-by contains it, so a summary
   group never straddles shards under this key. *)
let tenant_attrs = [ "state" ]

let tenant_of_sale row =
  match Tuple.get row 1 with Value.Str s -> s | _ -> invalid_arg "tenant_of_sale"

let sales_shard_map ~shards =
  Vnl_warehouse.Shard.Shard_map.by_attrs ~shards ~source:sales_schema ~attrs:tenant_attrs

let daily_sales_view ?with_count () =
  View_def.make ~name:"DailySales" ~source:sales_schema
    ~group_by:[ "city"; "state"; "product_line"; "date" ]
    ~aggregates:[ ("total_sales", View_def.Sum "amount") ]
    ?with_count ()

(* Day 0 is the paper's 10/14/96; spill into November/December as needed. *)
let date_of_day d =
  let day_of_year = 288 + d in
  let month, day =
    if day_of_year <= 305 then (10, day_of_year - 274)
    else if day_of_year <= 335 then (11, day_of_year - 305)
    else (12, day_of_year - 335)
  in
  Value.date_of_mdy month day 96

let gen_sale rng ~day =
  let city, state = Xorshift.pick rng cities in
  let pl = Xorshift.pick rng product_lines in
  let amount = 10 + Xorshift.int rng 490 in
  Tuple.make sales_schema
    [ Value.Str city; Value.Str state; Value.Str pl; date_of_day day; Value.Int amount ]

let gen_batch rng source ~day ~inserts ~updates ~deletes =
  let ins = List.init inserts (fun _ -> Delta.Insert (gen_sale rng ~day)) in
  let pick_existing () =
    let rows = Source.rows source in
    match rows with [] -> None | _ -> Some (Xorshift.pick_list rng rows)
  in
  (* Corrections (amount restated) and returns (sale removed) against rows
     already at the source.  Victims are drawn without tracking collisions;
     a row picked twice in one batch would make the delta inconsistent, so
     sample conservatively and skip duplicates. *)
  let touched = Hashtbl.create 16 in
  let fresh row =
    let key = String.concat "|" (Tuple.to_strings row) in
    if Hashtbl.mem touched key then false
    else begin
      Hashtbl.add touched key ();
      true
    end
  in
  let upd =
    List.filter_map
      (fun _ ->
        match pick_existing () with
        | Some row when fresh row ->
          let delta = Xorshift.int_in rng (-50) 150 in
          let amount =
            match Tuple.get row 4 with Value.Int a -> max 1 (a + delta) | _ -> 1
          in
          Some (Delta.Update (row, Tuple.set row 4 (Value.Int amount)))
        | Some _ | None -> None)
      (List.init updates (fun i -> i))
  in
  let del =
    List.filter_map
      (fun _ ->
        match pick_existing () with
        | Some row when fresh row -> Some (Delta.Delete row)
        | Some _ | None -> None)
      (List.init deletes (fun i -> i))
  in
  ins @ upd @ del

let initial_load rng ~days ~sales_per_day =
  List.concat_map
    (fun day -> List.init sales_per_day (fun _ -> Delta.Insert (gen_sale rng ~day)))
    (List.init days (fun d -> d))
