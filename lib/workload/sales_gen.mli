(** Workload generator for the paper's sporting-goods sales domain
    (Example 2.1).

    Base data are individual sale transactions
    [(city, state, product_line, date, amount)]; the DailySales summary
    table aggregates total sales per (city, state, product_line, date). *)

val cities : (string * string) array
(** (city, state) vocabulary; includes the paper's San Jose, Berkeley and
    Novato. *)

val product_lines : string array
(** Includes golf equip, racquetball, rollerblades. *)

val sales_schema : Vnl_relation.Schema.t
(** The source relation of individual sales. *)

val daily_sales_view : ?with_count:bool -> unit -> Vnl_warehouse.View_def.t
(** The DailySales summary view over {!sales_schema}. *)

val tenant_attrs : string list
(** The tenant shard key of the sales domain ([state]): contained in the
    DailySales group-by, so no summary group straddles shards. *)

val tenant_of_sale : Vnl_relation.Tuple.t -> string
(** The tenant (state) a sale belongs to. *)

val sales_shard_map : shards:int -> Vnl_warehouse.Shard.Shard_map.t
(** Hash routing of sales over {!tenant_attrs}. *)

val gen_sale : Vnl_util.Xorshift.t -> day:int -> Vnl_relation.Tuple.t
(** One random sale on the given day (days count from the paper's
    10/14/96). *)

val date_of_day : int -> Vnl_relation.Value.t
(** Calendar date for day [d] (day 0 = 10/14/96; wraps safely across
    month boundaries within 1996). *)

val gen_batch :
  Vnl_util.Xorshift.t ->
  Vnl_warehouse.Source.t ->
  day:int ->
  inserts:int ->
  updates:int ->
  deletes:int ->
  Vnl_warehouse.Delta.change list
(** A day's source batch: [inserts] new sales plus corrections and returns
    applied to rows currently in [source] (fewer if the source is small). *)

val initial_load : Vnl_util.Xorshift.t -> days:int -> sales_per_day:int -> Vnl_warehouse.Delta.change list
(** Pure-insert batch used to populate the warehouse before an
    experiment. *)
