module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Xorshift = Vnl_util.Xorshift
module Twovnl = Vnl_core.Twovnl
module Warehouse = Vnl_warehouse.Warehouse
module Summary = Vnl_warehouse.Summary
module Executor = Vnl_query.Executor
module Plan = Vnl_query.Plan

type mode = Offline | Online of int | Dirty

let mode_name = function
  | Offline -> "offline (Figure 1)"
  | Online n -> Printf.sprintf "%dVNL on-line (Figure 2)" n
  | Dirty -> "read-uncommitted"

type commit_policy = Scheduled | When_quiescent

type config = {
  days : int;
  maintenance_start : int;
  maintenance_len : int;
  runs_per_day : int;
  batch_per_day : int;
  session_every : int;
  session_len : int;
  query_every : int;
  commit_policy : commit_policy;
  seed : int;
}

let default_config =
  {
    days = 3;
    maintenance_start = 9 * 60;
    maintenance_len = 23 * 60;
    runs_per_day = 1;
    batch_per_day = 300;
    session_every = 45;
    session_len = 100;
    query_every = 10;
    commit_policy = Scheduled;
    seed = 7;
  }

type report = {
  mode : mode;
  sessions_started : int;
  sessions_completed : int;
  sessions_rejected : int;
  sessions_expired : int;
  queries_executed : int;
  inconsistent_pairs : int;
  reader_minutes_available : int;
  total_minutes : int;
  maintenance_runs : int;
  commit_wait_minutes : int;
  avg_staleness_minutes : float;
  maintenance_hours : bool array;
  session_hours : int array;
  final_view_groups : int;
  view_matches_source : bool;
}

let view_name = "DailySales"

let chunk_list k xs =
  if k <= 0 then [ xs ]
  else begin
    let rec go acc current count = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | x :: rest ->
        if count = k then go (List.rev current :: acc) [ x ] 1 rest
        else go acc (x :: current) (count + 1) rest
    in
    go [] [] 0 xs
  end

(* The analyst query pair of Example 2.1: a city's total, then (after the
   analyst has studied the first answer) its product-line drill-down.  SQL
   versions for 2VNL and read-uncommitted; an engine-extraction version for
   nVNL (the paper gives SQL rewrite only for n = 2).  The city is a named
   parameter, so every execution of either statement — any session, any
   city — shares one cached plan instead of re-parsing and re-rewriting
   per call. *)
let sql_total query city =
  match
    (query
       ~params:[ ("city", Value.Str city) ]
       "SELECT SUM(total_sales) FROM DailySales WHERE city = :city")
      .Executor.rows
  with
  | [ [ Value.Int n ] ] -> n
  | [ [ Value.Null ] ] -> 0
  | _ -> 0

let sql_drill_total query city =
  let rows =
    (query
       ~params:[ ("city", Value.Str city) ]
       "SELECT product_line, SUM(total_sales) FROM DailySales WHERE city = :city \
        GROUP BY product_line")
      .Executor.rows
  in
  List.fold_left
    (fun acc row -> match row with [ _; Value.Int n ] -> acc + n | _ -> acc)
    0 rows

let view_total rows city =
  List.fold_left
    (fun acc t ->
      match (Tuple.get t 0, Tuple.get t 4) with
      | Value.Str c, Value.Int n when String.equal c city -> acc + n
      | _ -> acc)
    0 rows

let run cfg mode =
  let sim = Simulator.create () in
  let rng = Xorshift.create cfg.seed in
  let n = match mode with Online n -> n | Offline | Dirty -> 2 in
  let wh = Warehouse.create ~n ~pool_capacity:256 [ Sales_gen.daily_sales_view () ] in
  Warehouse.queue_changes wh ~view:view_name
    (Sales_gen.initial_load rng ~days:3 ~sales_per_day:80);
  ignore (Warehouse.refresh wh);

  let total_minutes = cfg.days * 24 * 60 in
  let closed = ref false in
  let closed_minutes = ref 0 in
  let active_sessions = ref 0 in
  let commit_wait_minutes = ref 0 in
  let staleness_samples = ref [] in
  let last_window_start = ref 0 in
  let sessions_started = ref 0
  and sessions_completed = ref 0
  and sessions_rejected = ref 0
  and sessions_expired = ref 0
  and queries_executed = ref 0
  and inconsistent_pairs = ref 0
  and maintenance_runs = ref 0 in
  let maintenance_spans = ref [] and session_spans = ref [] in

  let txn_open = ref false in
  let maintenance_run d () =
    (* A starved previous transaction pushes the next one back; re-check
       after waking, since several queued days can wake on the same flip. *)
    let rec acquire () =
      Simulator.await (fun () -> not !txn_open);
      if !txn_open then acquire () else txn_open := true
    in
    acquire ();
    let t_begin = Simulator.now sim in
    if mode = Offline then closed := true;
    let src = Warehouse.source wh view_name in
    let share = max 1 (cfg.batch_per_day / max 1 cfg.runs_per_day) in
    let inserts = share * 7 / 10 in
    let updates = share * 2 / 10 in
    let deletes = max 0 (share - inserts - updates) in
    Warehouse.queue_changes wh ~view:view_name
      (Sales_gen.gen_batch rng src ~day:(d + 3) ~inserts ~updates ~deletes);
    let batch = Warehouse.take_pending wh ~view:view_name in
    let txn = Twovnl.Txn.begin_ (Warehouse.vnl wh) in
    let nchunks = 60 in
    let per_chunk = max 1 (List.length batch / nchunks) in
    let chunks = chunk_list per_chunk batch in
    let step = max 1 (cfg.maintenance_len / max 1 (List.length chunks)) in
    List.iter
      (fun chunk ->
        ignore (Summary.apply_batch txn (Warehouse.view wh view_name) chunk);
        Simulator.delay step)
      chunks;
    let elapsed = Simulator.now sim - t_begin in
    if elapsed < cfg.maintenance_len then Simulator.delay (cfg.maintenance_len - elapsed);
    (match cfg.commit_policy with
    | Scheduled -> ()
    | When_quiescent ->
      let t0 = Simulator.now sim in
      Simulator.await (fun () -> !active_sessions = 0);
      commit_wait_minutes := !commit_wait_minutes + (Simulator.now sim - t0));
    Twovnl.Txn.commit txn;
    txn_open := false;
    incr maintenance_runs;
    (* The batch accumulated since the previous run began; its mean age at
       commit is commit - midpoint of the accumulation window. *)
    let commit_time = Simulator.now sim in
    staleness_samples :=
      (float_of_int commit_time -. (float_of_int (!last_window_start + t_begin) /. 2.0))
      :: !staleness_samples;
    last_window_start := t_begin;
    if mode = Offline then begin
      closed := false;
      closed_minutes := !closed_minutes + (Simulator.now sim - t_begin)
    end;
    maintenance_spans := (t_begin, Simulator.now sim) :: !maintenance_spans
  in

  (* Read-uncommitted sessions bypass Session.query (they fabricate a
     sessionVN), so they keep their own small plan cache: parse + rewrite +
     compile once per statement, re-execute closures thereafter. *)
  let dirty_plans = Hashtbl.create 4 in
  let dirty_query ~params sql =
    let vnl = Warehouse.vnl wh in
    let active = Vnl_core.Version_state.maintenance_active (Twovnl.version_state vnl) in
    let vn = Twovnl.current_vn vnl + if active then 1 else 0 in
    let plan =
      match Hashtbl.find_opt dirty_plans sql with
      | Some p when Plan.valid (Warehouse.database wh) p -> p
      | Some _ | None ->
        let p =
          Plan.prepare (Warehouse.database wh)
            (Vnl_core.Rewrite.reader_select ~lookup:(Twovnl.lookup vnl)
               (Vnl_sql.Parser.parse_select sql))
        in
        Hashtbl.replace dirty_plans sql p;
        p
    in
    Plan.execute ~params:(("sessionVN", Value.Int vn) :: params) plan
  in

  let session () =
    if !closed then incr sessions_rejected
    else begin
      incr sessions_started;
      incr active_sessions;
      let t_begin = Simulator.now sim in
      let deadline = t_begin + cfg.session_len in
      let s = match mode with Dirty -> None | Offline | Online _ -> Some (Warehouse.begin_session wh) in
      let outcome = ref `Completed in
      let think = 3 in
      (try
         while Simulator.now sim < deadline && !outcome = `Completed do
           if mode = Offline && !closed then raise Exit;
           let city, _ = Xorshift.pick rng Sales_gen.cities in
           (* First query, a pause while the analyst studies it, then the
              drill-down; consistency demands they agree (Example 2.1). *)
           let total, drill_total =
             match (s, mode) with
             | Some session, Online n when n > 2 ->
               let t = view_total (Warehouse.read_view wh session view_name) city in
               Simulator.delay think;
               if mode = Offline && !closed then raise Exit;
               let d = view_total (Warehouse.read_view wh session view_name) city in
               (t, d)
             | Some session, _ ->
               let prepared ~params sql = Warehouse.query ~params wh session sql in
               let t = sql_total prepared city in
               Simulator.delay think;
               if mode = Offline && !closed then raise Exit;
               let d = sql_drill_total prepared city in
               (t, d)
             | None, _ ->
               let t = sql_total dirty_query city in
               Simulator.delay think;
               let d = sql_drill_total dirty_query city in
               (t, d)
           in
           queries_executed := !queries_executed + 2;
           if total <> drill_total then incr inconsistent_pairs;
           Simulator.delay (max 1 (cfg.query_every - think))
         done
       with
      | Twovnl.Expired _ -> outcome := `Expired
      | Exit -> outcome := `Interrupted);
      (match s with Some session -> Warehouse.end_session wh session | None -> ());
      decr active_sessions;
      (match !outcome with
      | `Completed -> incr sessions_completed
      | `Expired -> incr sessions_expired
      | `Interrupted -> incr sessions_rejected);
      session_spans := (t_begin, Simulator.now sim) :: !session_spans
    end
  in

  let spacing = (24 * 60) / max 1 cfg.runs_per_day in
  for d = 0 to cfg.days - 1 do
    for r = 0 to cfg.runs_per_day - 1 do
      Simulator.spawn sim
        ~at:((d * 24 * 60) + cfg.maintenance_start + (r * spacing))
        ~name:(Printf.sprintf "maintenance-day%d-run%d" d r)
        (maintenance_run d)
    done
  done;
  let rec arrivals k =
    let at = k * cfg.session_every in
    if at < total_minutes then begin
      Simulator.spawn sim ~at ~name:(Printf.sprintf "session-%d" k) session;
      arrivals (k + 1)
    end
  in
  arrivals 0;
  (* Let every spawned maintenance run finish: the last one can begin up to
     maintenance_start + a day after the last arrival, run maintenance_len,
     and (under the quiescent policy) wait out the final sessions. *)
  Simulator.run
    ~until:(total_minutes + cfg.maintenance_start + (2 * cfg.maintenance_len) + cfg.session_len + 30)
    sim;

  let hours = cfg.days * 24 in
  let maintenance_hours = Array.make hours false in
  let session_hours = Array.make hours 0 in
  let mark spans f =
    List.iter
      (fun (a, b) ->
        let h0 = a / 60 and h1 = (b - 1) / 60 in
        for h = h0 to min (hours - 1) h1 do
          f h
        done)
      spans
  in
  mark !maintenance_spans (fun h -> maintenance_hours.(h) <- true);
  mark !session_spans (fun h -> session_hours.(h) <- session_hours.(h) + 1);

  (* Final ground-truth check: a fresh session's view must equal the
     recomputed view over all propagated source data. *)
  let final_session = Warehouse.begin_session wh in
  let final_rows = Warehouse.read_view wh final_session view_name in
  Warehouse.end_session wh final_session;
  let expected = Warehouse.expected_view wh view_name in
  let sorted rows = List.sort Tuple.compare rows in
  let matches = List.equal Tuple.equal (sorted final_rows) (sorted expected) in
  {
    mode;
    sessions_started = !sessions_started;
    sessions_completed = !sessions_completed;
    sessions_rejected = !sessions_rejected;
    sessions_expired = !sessions_expired;
    queries_executed = !queries_executed;
    inconsistent_pairs = !inconsistent_pairs;
    reader_minutes_available = total_minutes - !closed_minutes;
    total_minutes;
    maintenance_runs = !maintenance_runs;
    commit_wait_minutes = !commit_wait_minutes;
    avg_staleness_minutes = Vnl_util.Stats.mean !staleness_samples;
    maintenance_hours;
    session_hours;
    final_view_groups = List.length final_rows;
    view_matches_source = matches;
  }

let availability r =
  if r.total_minutes = 0 then 0.0
  else float_of_int r.reader_minutes_available /. float_of_int r.total_minutes

let render_timeline r =
  let hours = Array.length r.maintenance_hours in
  let days = hours / 24 in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "        0    3    6    9    12   15   18   21   24\n";
  Buffer.add_string buf "        |    |    |    |    |    |    |    |    |\n";
  for d = 0 to days - 1 do
    Buffer.add_string buf (Printf.sprintf "day %d M " d);
    for h = 0 to 23 do
      let idx = (d * 24) + h in
      Buffer.add_string buf (if idx < hours && r.maintenance_hours.(idx) then "#" else ".");
      if h mod 3 = 2 then Buffer.add_char buf ' '
    done;
    Buffer.add_char buf '\n';
    Buffer.add_string buf "      R ";
    for h = 0 to 23 do
      let idx = (d * 24) + h in
      let k = if idx < hours then r.session_hours.(idx) else 0 in
      Buffer.add_string buf
        (if k = 0 then "." else if k < 10 then string_of_int k else "+");
      if h mod 3 = 2 then Buffer.add_char buf ' '
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "        (M: maintenance transaction active, R: concurrent reader sessions)";
  Buffer.contents buf
