(* Deterministic cooperative scheduler for concurrency testing.

   Racy code cannot be validated on vibes: a bug that needs one particular
   reader/maintainer interleaving will not show up under free-running
   domains, and when it does it will not reproduce.  This scheduler runs a
   set of tasks on ONE domain and drives them through their explicit yield
   points ({!yield} calls instrumented into the storage and core layers)
   with a seeded PRNG choosing which task advances next.  Same seed, same
   task set => same interleaving => same verdict, so every failing schedule
   is a regression test.

   Tasks are plain thunks; {!yield} is an effect, caught by the handler
   [run] installs, so the stack between yield points is a real one-shot
   continuation — the full storage/core call stack suspends and resumes
   exactly as written.  Outside [run] (production and free-running domain
   tests) {!yield} is one load and one branch. *)

type _ Effect.t += Yield : unit Effect.t

(* True only while [run] is driving tasks on the current domain.  The flag
   is a plain ref: harness runs are single-domain by construction, and
   free-running domains only ever observe [false]. *)
let active = ref false

let yield () = if !active then Effect.perform Yield

let driving () = !active

(* Identity of the task currently being driven (its index in [run]'s task
   list), -1 outside a schedule.  Latches use it to tell two fibers of the
   same domain apart. *)
let current = ref (-1)

let fiber () = !current

type pending = Start of (unit -> unit) | Resume of (unit, unit) Effect.Deep.continuation

let run ~seed tasks =
  if !active then invalid_arg "Sched.run: a schedule is already being driven";
  let open Effect.Deep in
  let rng = Xorshift.create seed in
  let runnable = ref (List.mapi (fun id (name, f) -> (name, id, Start f)) tasks) in
  let steps = ref [] in
  let enqueue name id k = runnable := !runnable @ [ (name, id, Resume k) ] in
  let step name id p =
    current := id;
    match p with
    | Resume k -> continue k ()
    | Start f ->
      match_with f ()
        {
          retc = (fun () -> ());
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield -> Some (fun (k : (a, unit) continuation) -> enqueue name id k)
              | _ -> None);
        }
  in
  (* If a task dies, the others' suspended continuations still hold latches
     and pins behind Fun.protect finalizers; discontinue them so cleanup
     runs before the failure propagates. *)
  let discontinue_pending e =
    List.iter
      (fun (_, _, p) ->
        match p with
        | Resume k -> ( try discontinue k e with _ -> ())
        | Start _ -> ())
      !runnable;
    runnable := []
  in
  active := true;
  Fun.protect
    ~finally:(fun () ->
      active := false;
      current := -1)
    (fun () ->
      (try
         while !runnable <> [] do
           let n = List.length !runnable in
           let i = Xorshift.int rng n in
           let name, id, p = List.nth !runnable i in
           runnable := List.filteri (fun j _ -> j <> i) !runnable;
           steps := name :: !steps;
           step name id p
         done
       with e ->
         discontinue_pending e;
         raise e);
      List.rev !steps)
