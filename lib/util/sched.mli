(** Deterministic cooperative scheduler for concurrency testing.

    The parallel read path is validated two ways: free-running OCaml 5
    domains (stress), and {e reproducible} interleavings driven by this
    scheduler (oracle checks).  [run] executes a set of tasks on the
    calling domain, suspending each at its {!yield} points via effects and
    using a seeded PRNG to pick which task advances next — the same seed
    always produces the same interleaving, so any failure is replayable.

    The storage and core layers call {!yield} at their natural atomicity
    boundaries (page accesses, version-state reads and writes); outside
    [run] those calls are a single load-and-branch no-op. *)

val yield : unit -> unit
(** Explicit yield point.  Inside {!run}: suspend the current task and let
    the scheduler pick the next step.  Outside: no-op. *)

val driving : unit -> bool
(** True while {!run} is driving tasks on the current domain.  Spin loops
    use this to suppress OS-level backoff (sleeps) under the deterministic
    scheduler, where {!yield} already hands control to the peer task. *)

val fiber : unit -> int
(** Identity of the task {!run} is currently driving (its index in the
    task list), or -1 outside a schedule.  Because every fiber shares one
    domain, code that distinguishes lock holders by [Domain.self] must use
    this instead while {!driving} — see {!Vnl_storage.Latch}. *)

val run : seed:int -> (string * (unit -> unit)) list -> string list
(** [run ~seed tasks] drives the named tasks to completion, interleaving
    them at yield points under a PRNG seeded with [seed].  Returns the
    step trace — the task name chosen at each scheduling decision — which
    equal seeds reproduce exactly.  A task exception aborts the schedule:
    the other tasks' pending continuations are discontinued (so their
    cleanup handlers run) and the exception propagates.  Raises
    [Invalid_argument] when called re-entrantly. *)
