(* Epoch-based reclamation for the latch-free reader path.

   The global epoch is the warehouse's published version number; it only
   moves forward.  A reader {e pins} the epoch for the lifetime of its
   session by writing it into a private slot; reclaimers (tuple GC, buffer
   frame recycling) compute the {e horizon} — the minimum pinned epoch —
   and may free only what was retired strictly before it.  Pin, unpin, and
   the horizon fold are all lock-free: a slot is one [Atomic.t], acquired
   by CAS from a shared array that grows by publishing a copy.

   The pin protocol closes the classic begin/advance race.  A naive
   "read epoch, then store it" pin can be overtaken: the epoch advances
   and a reclaimer folds over the slots {e between} the read and the
   store, misses the pin, and frees state the new reader still needs.
   [pin] therefore stores its candidate and then re-reads the epoch,
   retrying until the stored value is the current epoch at some point
   after the store.  Atomics are sequentially consistent, so when the
   re-read confirms the candidate, any advance-then-fold that follows
   must see the pin; and when it does not confirm, the pin republishes
   the newer epoch before the session uses it. *)

type slot = int Atomic.t

(* A free slot holds [available]; a pinned slot holds the epoch.  There is
   no "owned but unpinned" state: acquisition and pinning are one CAS. *)
let available = max_int

type 'a t = {
  epoch : int Atomic.t;
  slots : slot array Atomic.t;
  retired : (int * 'a) list Atomic.t;
      (** Retire bag: (retire epoch, item), newest first.  An item retired
          at epoch [e] may be handed out again only once the horizon is
          strictly past [e]. *)
}

let create ?(initial = 0) ?(slots = 16) () =
  if slots < 1 then invalid_arg "Epoch.create: need at least one slot";
  {
    epoch = Atomic.make initial;
    slots = Atomic.make (Array.init slots (fun _ -> Atomic.make available));
    retired = Atomic.make [];
  }

let current t = Atomic.get t.epoch

let advance t e =
  (* Monotone publication; concurrent advances keep the maximum. *)
  let rec go () =
    let cur = Atomic.get t.epoch in
    if e > cur && not (Atomic.compare_and_set t.epoch cur e) then go ()
  in
  go ()

(* Double the slot array, sharing the existing cells so pins and unpins
   through either array stay visible through both.  Losing a CAS race just
   means another domain already grew it. *)
let grow t old =
  let bigger =
    Array.init (2 * Array.length old) (fun i ->
        if i < Array.length old then old.(i) else Atomic.make available)
  in
  ignore (Atomic.compare_and_set t.slots old bigger)

let rec acquire t candidate =
  let slots = Atomic.get t.slots in
  let n = Array.length slots in
  let rec scan i =
    if i >= n then begin
      grow t slots;
      acquire t candidate
    end
    else if
      Atomic.get slots.(i) = available
      && Atomic.compare_and_set slots.(i) available candidate
    then slots.(i)
    else scan (i + 1)
  in
  scan 0

let pin ?current:current_override t =
  let read () =
    match current_override with Some f -> f () | None -> Atomic.get t.epoch
  in
  let slot = acquire t (read ()) in
  let rec confirm () =
    let stored = Atomic.get slot in
    let now = read () in
    if now <> stored then begin
      Atomic.set slot now;
      confirm ()
    end
    else stored
  in
  let pinned = confirm () in
  (slot, pinned)

let unpin slot = Atomic.set slot available

let pinned_epoch slot =
  let v = Atomic.get slot in
  if v = available then None else Some v

let min_pinned t =
  let slots = Atomic.get t.slots in
  Array.fold_left (fun acc s -> min acc (Atomic.get s)) (Atomic.get t.epoch) slots

let retire t item =
  let e = Atomic.get t.epoch in
  let rec push () =
    let old = Atomic.get t.retired in
    if not (Atomic.compare_and_set t.retired old ((e, item) :: old)) then push ()
  in
  push ()

let retired_count t = List.length (Atomic.get t.retired)

let reclaim_before t ~horizon =
  let horizon = min horizon (min_pinned t) in
  (* Detach the whole bag, hand back what is past the horizon, re-retire
     the rest under their original epochs. *)
  let rec detach () =
    let old = Atomic.get t.retired in
    if Atomic.compare_and_set t.retired old [] then old else detach ()
  in
  let all = detach () in
  let free, keep = List.partition (fun (e, _) -> e < horizon) all in
  let rec put_back () =
    let old = Atomic.get t.retired in
    if not (Atomic.compare_and_set t.retired old (keep @ old)) then put_back ()
  in
  if keep <> [] then put_back ();
  List.rev_map snd free

let reclaim t = reclaim_before t ~horizon:max_int
