(* A small domain pool: spawn N domains, run one job on each, join all.

   The parallel serving scenarios need exactly the fork-join shape — one
   maintenance domain plus N reader domains over shared warehouse state —
   and benchmarks need all participants to start together so the measured
   window excludes domain spawn cost.  [run] provides the barrier: each
   job receives a [start] thunk that blocks (spinning with
   [Domain.cpu_relax]) until every domain has reached it. *)

let parallel ~domains f =
  if domains < 1 then invalid_arg "Domain_pool.parallel: need at least one domain";
  let ds = Array.init domains (fun i -> Domain.spawn (fun () -> f i)) in
  Array.map Domain.join ds

let run ~domains f =
  if domains < 1 then invalid_arg "Domain_pool.run: need at least one domain";
  let arrived = Atomic.make 0 in
  let start () =
    Atomic.incr arrived;
    while Atomic.get arrived < domains do
      Domain.cpu_relax ()
    done
  in
  parallel ~domains (fun i -> f ~start i)
