(* A small domain pool: spawn N domains, run one job on each, join all.

   The parallel serving scenarios need exactly the fork-join shape — one
   maintenance domain plus N reader domains over shared warehouse state —
   and benchmarks need all participants to start together so the measured
   window excludes domain spawn cost.  [run] provides the barrier: each
   job receives a [start] thunk that blocks (spinning with
   [Domain.cpu_relax]) until every domain has reached it. *)

let parallel ~domains f =
  if domains < 1 then invalid_arg "Domain_pool.parallel: need at least one domain";
  let ds = Array.init domains (fun i -> Domain.spawn (fun () -> f i)) in
  Array.map Domain.join ds

(* Persistent variant: helper domains are spawned once and parked on a
   condition variable between jobs.  Domain spawn + join costs milliseconds
   on this class of machine — far more than a pipelined maintenance round's
   useful work — so anything running rounds in a loop must reuse domains.
   One submitter at a time: the caller is runner 0, helpers take ranks
   1 .. domains-1, and jobs are handed over by bumping a generation
   counter under the pool mutex. *)
module Persistent = struct
  type t = {
    helpers : int;
    mu : Mutex.t;
    wake : Condition.t;  (** New generation posted, or shutdown. *)
    drained : Condition.t;  (** All participating helpers finished. *)
    mutable gen : int;
    mutable count : int;  (** Runners (incl. caller) in the current job. *)
    mutable job : int -> unit;
    mutable remaining : int;  (** Participating helpers still running. *)
    mutable first_error : exn option;
    mutable stop : bool;
    mutable domains : unit Domain.t list;
  }

  let helper t rank =
    let last = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.mu;
      while (not t.stop) && t.gen = !last do
        Condition.wait t.wake t.mu
      done;
      if t.stop then begin
        Mutex.unlock t.mu;
        running := false
      end
      else begin
        last := t.gen;
        let participates = rank < t.count in
        let f = t.job in
        Mutex.unlock t.mu;
        if participates then begin
          (try f rank
           with e ->
             Mutex.lock t.mu;
             if t.first_error = None then t.first_error <- Some e;
             Mutex.unlock t.mu);
          Mutex.lock t.mu;
          t.remaining <- t.remaining - 1;
          if t.remaining = 0 then Condition.broadcast t.drained;
          Mutex.unlock t.mu
        end
      end
    done

  let create ~domains =
    if domains < 1 then invalid_arg "Domain_pool.Persistent.create: need at least one runner";
    let t =
      {
        helpers = domains - 1;
        mu = Mutex.create ();
        wake = Condition.create ();
        drained = Condition.create ();
        gen = 0;
        count = 0;
        job = ignore;
        remaining = 0;
        first_error = None;
        stop = false;
        domains = [];
      }
    in
    t.domains <- List.init t.helpers (fun i -> Domain.spawn (fun () -> helper t (i + 1)));
    t

  let size t = t.helpers + 1

  let parallel t ~domains f =
    if domains < 1 then invalid_arg "Domain_pool.Persistent.parallel: need at least one runner";
    if domains > t.helpers + 1 then
      invalid_arg "Domain_pool.Persistent.parallel: pool too small";
    if domains = 1 then f 0
    else begin
      Mutex.lock t.mu;
      if t.stop then begin
        Mutex.unlock t.mu;
        invalid_arg "Domain_pool.Persistent.parallel: pool is shut down"
      end;
      t.gen <- t.gen + 1;
      t.count <- domains;
      t.job <- f;
      t.remaining <- domains - 1;
      t.first_error <- None;
      Condition.broadcast t.wake;
      Mutex.unlock t.mu;
      let own = try Ok (f 0) with e -> Error e in
      Mutex.lock t.mu;
      while t.remaining > 0 do
        Condition.wait t.drained t.mu
      done;
      let helper_error = t.first_error in
      t.first_error <- None;
      Mutex.unlock t.mu;
      match (own, helper_error) with
      | Error e, _ -> raise e
      | Ok (), Some e -> raise e
      | Ok (), None -> ()
    end

  let shutdown t =
    Mutex.lock t.mu;
    t.stop <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.mu;
    List.iter Domain.join t.domains;
    t.domains <- []
end

(* Long-running service domains (a network server's accept and worker
   loops): unlike [parallel], the jobs are not expected to finish on their
   own — the owner flips its own stop flag, then [join]s.  The group only
   remembers the domains and surfaces the first exception at join time, so
   a crashed worker loop cannot vanish silently. *)
module Group = struct
  type t = { mutable domains : (exn option ref * unit Domain.t) list }

  let spawn ~count f =
    if count < 1 then invalid_arg "Domain_pool.Group.spawn: need at least one domain";
    let spawn_one i =
      let err = ref None in
      let d = Domain.spawn (fun () -> try f i with e -> err := Some e) in
      (err, d)
    in
    { domains = List.init count spawn_one }

  let count t = List.length t.domains

  let join t =
    let ds = t.domains in
    t.domains <- [];
    List.iter (fun (_, d) -> Domain.join d) ds;
    List.iter (fun (err, _) -> match !err with Some e -> raise e | None -> ()) ds
end

let run ~domains f =
  if domains < 1 then invalid_arg "Domain_pool.run: need at least one domain";
  let arrived = Atomic.make 0 in
  let start () =
    Atomic.incr arrived;
    while Atomic.get arrived < domains do
      Domain.cpu_relax ()
    done
  in
  parallel ~domains (fun i -> f ~start i)
