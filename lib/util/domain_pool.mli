(** A small fork-join domain pool.

    Drives the parallel serving scenarios: one maintenance domain plus N
    reader domains over shared warehouse state.  Results are joined into
    an array indexed by domain rank; an exception in any job propagates
    from the join. *)

val parallel : domains:int -> (int -> 'a) -> 'a array
(** [parallel ~domains f] spawns [domains] domains running [f rank]
    (ranks [0 .. domains-1]) and joins them all.  Raises
    [Invalid_argument] when [domains < 1]. *)

val run : domains:int -> (start:(unit -> unit) -> int -> 'a) -> 'a array
(** Like {!parallel}, but each job receives a [start] barrier: calling it
    blocks until every domain has called it, so timed sections can begin
    simultaneously after spawn overhead. *)

(** Long-running service domains: spawn [count] loops that run until the
    owner tells them (through its own state) to stop, then [join].  The
    fork-join helpers above assume jobs terminate by themselves; a network
    server's accept and worker loops do not. *)
module Group : sig
  type t

  val spawn : count:int -> (int -> unit) -> t
  (** Spawn [count] domains running [f rank].  Raises [Invalid_argument]
      when [count < 1]. *)

  val count : t -> int

  val join : t -> unit
  (** Join every domain (idempotent), then re-raise the first exception
      any of them died with.  The caller must already have signalled the
      loops to stop, or this blocks forever. *)
end

(** A persistent fork-join pool: helper domains spawned once, parked on a
    condition variable between jobs.  Spawning and joining a domain costs
    milliseconds — more than a pipelined maintenance round's useful work —
    so loops running many small fork-joins must reuse domains. *)
module Persistent : sig
  type t

  val create : domains:int -> t
  (** Spawn [domains - 1] helper domains (the submitting caller is always
      runner 0).  Raises [Invalid_argument] when [domains < 1]. *)

  val size : t -> int
  (** Runners available per job, including the caller. *)

  val parallel : t -> domains:int -> (int -> unit) -> unit
  (** Run [f rank] for ranks [0 .. domains-1]: rank 0 on the calling
      domain, the rest on parked helpers.  Blocks until every rank
      finishes; re-raises the caller's exception first, else the first
      helper exception.  One job at a time — not re-entrant.  Raises
      [Invalid_argument] when [domains] exceeds {!size} or the pool is
      shut down. *)

  val shutdown : t -> unit
  (** Stop and join the helper domains.  Idle pools may also simply be
      dropped: parked helpers never hold work and do not block process
      exit. *)
end
