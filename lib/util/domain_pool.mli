(** A small fork-join domain pool.

    Drives the parallel serving scenarios: one maintenance domain plus N
    reader domains over shared warehouse state.  Results are joined into
    an array indexed by domain rank; an exception in any job propagates
    from the join. *)

val parallel : domains:int -> (int -> 'a) -> 'a array
(** [parallel ~domains f] spawns [domains] domains running [f rank]
    (ranks [0 .. domains-1]) and joins them all.  Raises
    [Invalid_argument] when [domains < 1]. *)

val run : domains:int -> (start:(unit -> unit) -> int -> 'a) -> 'a array
(** Like {!parallel}, but each job receives a [start] barrier: calling it
    blocks until every domain has called it, so timed sections can begin
    simultaneously after spawn overhead. *)
