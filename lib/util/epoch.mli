(** Epoch-based reclamation for latch-free readers.

    The global epoch is the warehouse's published version number.  Readers
    {e pin} it for the lifetime of a session; reclaimers compute the
    {e horizon} (the minimum pinned epoch, bounded above by the current
    epoch) and may free only items retired strictly before it.  All
    operations are lock-free — pinning is one CAS into a slot array that
    grows by publishing a copy with shared cells — so session open and
    expiry never serialize readers behind a mutex.

    ['a] is the type of retired items (evicted buffer frames, for the
    buffer pool's recycling bag); a [t] used only for pinning can
    instantiate it to [unit]. *)

type slot
(** One pin cell.  Owned by a single session between {!pin} and {!unpin};
    reclaimers read it concurrently. *)

type 'a t

val create : ?initial:int -> ?slots:int -> unit -> 'a t
(** [initial] is the starting epoch (default 0); [slots] the initial pin
    capacity (default 16, grows on demand).  Raises [Invalid_argument] if
    [slots < 1]. *)

val current : 'a t -> int

val advance : 'a t -> int -> unit
(** Publish epoch [e].  Monotone: an older [e] is a no-op, so concurrent
    publishers cannot move the epoch backwards. *)

val pin : ?current:(unit -> int) -> 'a t -> slot * int
(** Acquire a slot and pin the current epoch, returning the slot and the
    epoch actually pinned.  The protocol is store-then-revalidate: the
    candidate epoch is written into the slot and the current epoch
    re-read, retrying until they agree — so a reclaimer that advanced the
    epoch and folded over the slots concurrently either saw this pin or
    forced it onto the newer epoch.  [?current] overrides the epoch read
    (the warehouse reads its version state, which owns the authoritative
    value); it must be monotone and consistent with {!advance}. *)

val unpin : slot -> unit
(** Release the slot for reuse.  The caller must not touch it again. *)

val pinned_epoch : slot -> int option
(** [None] once unpinned. *)

val min_pinned : 'a t -> int
(** The horizon: the minimum pinned epoch across all slots, or the current
    epoch when nothing is pinned. *)

val retire : 'a t -> 'a -> unit
(** Add an item to the retire bag stamped with the current epoch. *)

val retired_count : 'a t -> int

val reclaim : 'a t -> 'a list
(** Remove and return every retired item whose retire epoch is strictly
    below {!min_pinned}; items still covered by a pin stay in the bag.
    Never returns an item while any pinned epoch is [<=] its retire
    epoch — the property the QCheck suite drives. *)

val reclaim_before : 'a t -> horizon:int -> 'a list
(** Like {!reclaim} but additionally bounded by an external horizon: only
    items retired strictly before [min horizon (min_pinned t)] are freed.
    Used when pins live in a different epoch domain (the buffer pool's
    retire bag is gated by the warehouse's minimum session epoch). *)
