(** Minimal zero-dependency JSON: enough to parse the committed
    [BENCH_*.json] records and the {!Obs} exports, and to re-render values
    for reports.  Numbers are floats (JSON has one number type); object
    member order is preserved as parsed. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Position and reason of the first syntax error. *)

val parse : string -> t
(** Parse one JSON value; trailing non-whitespace is an error. *)

val parse_file : string -> t
(** [parse] over the file's contents.  Raises [Sys_error] if unreadable. *)

val member : string -> t -> t option
(** Object member lookup; [None] on missing key or non-object. *)

val escape : string -> string
(** The JSON string literal for [s], including the surrounding quotes. *)

val to_string : t -> string
(** Compact single-line rendering; round-trips through {!parse}. *)
