type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- parsing: recursive descent over (string, position) ---------- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st (Printf.sprintf "expected %c, found %c" c d)
  | None -> fail st (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* Encode a Unicode scalar value as UTF-8 bytes (for \uXXXX escapes). *)
let utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          let cp =
            try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
          in
          st.pos <- st.pos + 4;
          utf8 buf cp
        | c -> fail st (Printf.sprintf "bad escape \\%c" c));
        go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> number_char c | None -> false) do
    advance st
  done;
  if st.pos = start then fail st "expected a number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> fail st "expected , or } in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected , or ] in array"
      in
      Arr (elements [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing content after value";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

(* ---------- rendering ---------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> Buffer.add_string buf (escape s)
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (escape k);
        Buffer.add_string buf ": ";
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf
