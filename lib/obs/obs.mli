(** Observability: a zero-dependency metrics registry and span tracer.

    The paper's claims are quantitative — maintenance overhead and reader
    latency must stay bounded while both run concurrently (§6) — so the
    stack reports what it does through named {e counters}, {e gauges}, and
    fixed-bucket latency {e histograms} collected in a registry, plus
    begin/end {e spans} over the maintenance and recovery phases.

    Everything observable is gated on the single switch {!enabled}: with
    it off (the default), every instrumentation site is one load and one
    conditional branch, so an uninstrumented-grade hot path survives in
    the instrumented build.  Metric {e cells} themselves are ungated plain
    mutable state — subsystems that must count unconditionally (the buffer
    pool's I/O accounting, which experiments compare with observability
    off) own cells in a private {!Registry.t} and update them with
    {!Counter.add}; global default-registry mirrors use {!Counter.record},
    which honours {!enabled}.

    Domain-safe: counters and gauges are lock-free atomics, histograms and
    registries take a short private mutex per operation, and span traces
    are {e domain-local} — each domain records into its own ring and
    stack, merged into one begin-ordered view at export time
    ({!recent_spans}).  Instrumentation sites therefore never contend
    beyond a fetch-and-add unless they observe a histogram. *)

val enabled : bool ref
(** The master switch for all {e gated} recording ([record] operations and
    spans).  Default [false]. *)

module Counter : sig
  type t

  val name : t -> string

  val get : t -> int

  val add : t -> int -> unit
  (** Unconditional: for cells whose counts are semantically load-bearing
      (I/O parity) rather than observational. *)

  val incr : t -> unit

  val record : t -> int -> unit
  (** [add] gated on {!enabled}; no-op otherwise. *)

  val reset : t -> unit
end

module Gauge : sig
  type t

  val name : t -> string

  val get : t -> int

  val set : t -> int -> unit
  (** Unconditional. *)

  val record : t -> int -> unit
  (** [set] gated on {!enabled}. *)

  val reset : t -> unit
  (** Back to the gauge's initial value (default 0). *)
end

module Histogram : sig
  type t

  val name : t -> string

  val observe : t -> float -> unit
  (** Unconditional. *)

  val record : t -> float -> unit
  (** [observe] gated on {!enabled}. *)

  val count : t -> int

  val total : t -> float

  val summary : t -> Vnl_util.Stats.summary
  (** [Stats.summary]-compatible view: exact [n]/[mean]/[stddev]/[min]/
      [max]/[total]; percentiles estimated from the fixed buckets (the
      upper bound of the bucket holding the rank, clamped to the observed
      [min]/[max]). *)

  val reset : t -> unit
end

module Registry : sig
  type t
  (** A named-metric namespace.  {!default} is the process-wide registry
      every exporter reads; private registries back per-instance stats
      (e.g. one per buffer pool) so concurrent instances never share
      cells. *)

  val create : unit -> t

  val default : t

  val counter : ?registry:t -> string -> Counter.t
  (** Idempotent by name: the first call creates, later calls return the
      same cell.  Raises [Invalid_argument] if the name is already a
      metric of another kind. *)

  val gauge : ?registry:t -> ?initial:int -> string -> Gauge.t

  val histogram : ?registry:t -> ?buckets:float array -> string -> Histogram.t
  (** [buckets] are ascending upper bounds (an overflow bucket is
      implicit); the default covers 1µs–10s latencies in ms. *)

  val reset : t -> unit
  (** Zero every cell (gauges back to their initial value).  This is the
      single reset path: subsystems exposing [reset_stats] delegate
      here. *)

  val counters : t -> Counter.t list
  (** Sorted by name, as are [gauges] and [histograms]. *)

  val gauges : t -> Gauge.t list

  val histograms : t -> Histogram.t list
end

(** {1 Span tracing}

    A span is one timed phase (fold, index resolve, apply, flush, publish,
    repair, ...).  Spans nest: the depth records how many spans were open
    when this one began.  Completed spans land in a bounded ring buffer of
    recent history and fold their duration into the default-registry
    histogram [span.<name>] — the source for per-phase breakdowns. *)

module Span : sig
  type status = Closed | Aborted

  type t = {
    name : string;
    depth : int;  (** Number of enclosing open spans at begin time. *)
    seq : int;  (** Global begin-order sequence number. *)
    start_s : float;  (** {!Sys.time} at begin. *)
    mutable stop_s : float;
    mutable status : status;
    sim_start : int;  (** {!Vnl_util.Sim_clock} tick at begin, 0 if unset. *)
    mutable sim_stop : int;
  }

  val duration_ms : t -> float
end

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  With {!enabled} off this is exactly one
    branch around the call.  If the thunk raises, the span is closed with
    status {!Span.Aborted} — spans never leak — and the exception
    propagates. *)

val open_spans : unit -> int
(** Currently open (begun, not yet ended) spans {e of the calling
    domain} — spans are domain-local, so a reader domain never observes
    the maintainer's open spans. *)

val recent_spans : unit -> Span.t list
(** Completed spans of {e every} domain merged into global begin order
    (by {!Span.t.seq}), bounded per domain by {!set_trace_capacity}. *)

val set_trace_capacity : int -> unit
(** Resize (and clear) every domain's completed-span ring.  Default 256. *)

val set_sim_clock : Vnl_util.Sim_clock.t option -> unit
(** Attach a simulation clock; subsequent spans stamp [sim_start] /
    [sim_stop] with its ticks. *)

(** {1 Reset and export} *)

val reset : unit -> unit
(** {!Registry.reset} on the default registry, plus clear the span ring.
    Open spans are unaffected. *)

val to_json : ?registry:Registry.t -> unit -> string
(** The registry (default: {!Registry.default}) as a JSON object with
    [counters], [gauges], [histograms], and — for the default registry —
    [spans] (the recent ring).  Parses with {!Json.parse}. *)

val to_prometheus : ?registry:Registry.t -> unit -> string
(** Prometheus text exposition: [vnl_]-prefixed, dots mapped to
    underscores; histograms emit [_bucket]/[_sum]/[_count] series. *)

val phase_summaries : unit -> (string * Vnl_util.Stats.summary) list
(** The [span.<name>] histograms of the default registry, prefix stripped,
    sorted by name — the per-phase breakdown (durations in ms). *)

val phases_json : unit -> string
(** {!phase_summaries} as a JSON object:
    [{"fold": {"count": n, "total_ms": t, "mean_ms": m, "p99_ms": p}, ...}]
    — the [phases] section embedded in every [BENCH_*.json]. *)
