let enabled = ref false

module Counter = struct
  (* [Atomic.t] rather than a mutable int: counters are bumped from every
     reader domain on the hottest paths (buffer-pool hits, visibility
     decodes), and a plain read-modify-write would drop increments under
     contention.  A fetch-and-add is a single lock-free instruction. *)
  type t = { name : string; v : int Atomic.t }

  let make name = { name; v = Atomic.make 0 }

  let name c = c.name

  let get c = Atomic.get c.v

  let add c n = ignore (Atomic.fetch_and_add c.v n)

  let incr c = ignore (Atomic.fetch_and_add c.v 1)

  let record c n = if !enabled then ignore (Atomic.fetch_and_add c.v n)

  let reset c = Atomic.set c.v 0
end

module Gauge = struct
  type t = { name : string; initial : int; v : int Atomic.t }

  let make ?(initial = 0) name = { name; initial; v = Atomic.make initial }

  let name g = g.name

  let get g = Atomic.get g.v

  let set g n = Atomic.set g.v n

  let record g n = if !enabled then Atomic.set g.v n

  let reset g = Atomic.set g.v g.initial
end

module Histogram = struct
  (* Fixed upper bounds in ascending order plus an implicit overflow
     bucket; exact moments (sum, sum of squares, min, max) ride along so
     the summary's mean/stddev/extremes are not bucket-quantized. *)
  type t = {
    name : string;
    mu : Mutex.t;
        (** One histogram observation touches six fields; the mutex keeps
            them mutually consistent when several reader domains observe at
            once.  The critical section is a dozen arithmetic ops — far
            cheaper than the query it annotates. *)
    bounds : float array;
    counts : int array;  (** length = Array.length bounds + 1 *)
    mutable n : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable minv : float;
    mutable maxv : float;
  }

  (* 1µs .. 10s expressed in milliseconds. *)
  let default_buckets =
    [|
      0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0;
      50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0; 5000.0; 10000.0;
    |]

  let make ?(buckets = default_buckets) name =
    let ok = ref (Array.length buckets > 0) in
    Array.iteri (fun i b -> if i > 0 && b <= buckets.(i - 1) then ok := false) buckets;
    if not !ok then invalid_arg "Obs.Histogram: buckets must be non-empty and ascending";
    {
      name;
      mu = Mutex.create ();
      bounds = buckets;
      counts = Array.make (Array.length buckets + 1) 0;
      n = 0;
      sum = 0.0;
      sumsq = 0.0;
      minv = infinity;
      maxv = neg_infinity;
    }

  let name h = h.name

  let bucket_index h x =
    (* Buckets are few and the upper ones rarely hit; a linear scan from
       the smallest bound is branch-predictable and allocation-free. *)
    let k = Array.length h.bounds in
    let rec go i = if i >= k || x <= h.bounds.(i) then i else go (i + 1) in
    go 0

  let observe h x =
    Mutex.protect h.mu @@ fun () ->
    h.counts.(bucket_index h x) <- h.counts.(bucket_index h x) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. x;
    h.sumsq <- h.sumsq +. (x *. x);
    if x < h.minv then h.minv <- x;
    if x > h.maxv then h.maxv <- x

  let record h x = if !enabled then observe h x

  let count h = h.n

  let total h = h.sum

  (* Upper bound of the bucket containing the p-th percentile rank,
     clamped to the observed extremes (so a one-value histogram reports
     that value at every percentile). *)
  let percentile h p =
    if h.n = 0 then 0.0
    else begin
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int h.n)) in
      let rank = max 1 (min h.n rank) in
      let rec go i seen =
        let seen = seen + h.counts.(i) in
        if seen >= rank then
          if i < Array.length h.bounds then h.bounds.(i) else h.maxv
        else go (i + 1) seen
      in
      Float.max h.minv (Float.min h.maxv (go 0 0))
    end

  let summary h : Vnl_util.Stats.summary =
    Mutex.protect h.mu @@ fun () : Vnl_util.Stats.summary ->
    if h.n = 0 then
      { n = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p90 = 0.0;
        p99 = 0.0; total = 0.0 }
    else begin
      let nf = float_of_int h.n in
      let mean = h.sum /. nf in
      let var = Float.max 0.0 ((h.sumsq /. nf) -. (mean *. mean)) in
      {
        n = h.n;
        mean;
        stddev = sqrt var;
        min = h.minv;
        max = h.maxv;
        p50 = percentile h 50.0;
        p90 = percentile h 90.0;
        p99 = percentile h 99.0;
        total = h.sum;
      }
    end

  let reset h =
    Mutex.protect h.mu @@ fun () ->
    Array.fill h.counts 0 (Array.length h.counts) 0;
    h.n <- 0;
    h.sum <- 0.0;
    h.sumsq <- 0.0;
    h.minv <- infinity;
    h.maxv <- neg_infinity
end

module Registry = struct
  type metric = C of Counter.t | G of Gauge.t | H of Histogram.t

  (* The mutex guards the name table only (Hashtbl resize under a
     concurrent reader segfaults); the cells it hands out synchronize
     themselves.  Registration is off every hot path — call sites hold the
     cell, not the name. *)
  type t = { metrics : (string, metric) Hashtbl.t; mu : Mutex.t }

  let create () = { metrics = Hashtbl.create 32; mu = Mutex.create () }

  let default = create ()

  let kind = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

  let clash name want found =
    invalid_arg
      (Printf.sprintf "Obs.Registry: %S is already a %s, not a %s" name (kind found) want)

  let counter ?(registry = default) name =
    Mutex.protect registry.mu @@ fun () ->
    match Hashtbl.find_opt registry.metrics name with
    | Some (C c) -> c
    | Some m -> clash name "counter" m
    | None ->
      let c = Counter.make name in
      Hashtbl.add registry.metrics name (C c);
      c

  let gauge ?(registry = default) ?initial name =
    Mutex.protect registry.mu @@ fun () ->
    match Hashtbl.find_opt registry.metrics name with
    | Some (G g) -> g
    | Some m -> clash name "gauge" m
    | None ->
      let g = Gauge.make ?initial name in
      Hashtbl.add registry.metrics name (G g);
      g

  let histogram ?(registry = default) ?buckets name =
    Mutex.protect registry.mu @@ fun () ->
    match Hashtbl.find_opt registry.metrics name with
    | Some (H h) -> h
    | Some m -> clash name "histogram" m
    | None ->
      let h = Histogram.make ?buckets name in
      Hashtbl.add registry.metrics name (H h);
      h

  let reset t =
    Mutex.protect t.mu @@ fun () ->
    Hashtbl.iter
      (fun _ m ->
        match m with
        | C c -> Counter.reset c
        | G g -> Gauge.reset g
        | H h -> Histogram.reset h)
      t.metrics

  let sorted_by name_of xs = List.sort (fun a b -> compare (name_of a) (name_of b)) xs

  let counters t =
    Mutex.protect t.mu (fun () ->
        Hashtbl.fold (fun _ m acc -> match m with C c -> c :: acc | _ -> acc) t.metrics [])
    |> sorted_by Counter.name

  let gauges t =
    Mutex.protect t.mu (fun () ->
        Hashtbl.fold (fun _ m acc -> match m with G g -> g :: acc | _ -> acc) t.metrics [])
    |> sorted_by Gauge.name

  let histograms t =
    Mutex.protect t.mu (fun () ->
        Hashtbl.fold (fun _ m acc -> match m with H h -> h :: acc | _ -> acc) t.metrics [])
    |> sorted_by Histogram.name
end

(* ---------- spans ---------- *)

module Span = struct
  type status = Closed | Aborted

  type t = {
    name : string;
    depth : int;
    seq : int;
    start_s : float;
    mutable stop_s : float;
    mutable status : status;
    sim_start : int;
    mutable sim_stop : int;
  }

  let duration_ms sp = 1000.0 *. (sp.stop_s -. sp.start_s)
end

let span_prefix = "span."

let sim_clock : Vnl_util.Sim_clock.t option ref = ref None

(* One trace per domain.  Spans from two domains used to interleave in a
   single shared ring and stack: a reader's end_span could pop the
   maintainer's open span (corrupting every later depth) and concurrent
   ring writes dropped entries.  Each domain now owns its ring and stack —
   the begin/end hot path touches no shared state except the global [seq],
   an atomic that gives the merged export a total begin order. *)
type trace = {
  mutable ring : Span.t option array;
  mutable next : int;  (** Ring write cursor. *)
  mutable stack : Span.t list;  (** Open spans, innermost first. *)
}

let seq = Atomic.make 0

let trace_capacity = ref 256

(* Every domain's trace, for merge-on-export; the list mutex is taken only
   on domain-first-span, export, and reset. *)
let traces : trace list ref = ref []

let traces_mu = Mutex.create ()

let trace_key =
  Domain.DLS.new_key (fun () ->
      let t = { ring = Array.make !trace_capacity None; next = 0; stack = [] } in
      Mutex.protect traces_mu (fun () -> traces := t :: !traces);
      t)

let my_trace () = Domain.DLS.get trace_key

let set_trace_capacity n =
  if n < 1 then invalid_arg "Obs.set_trace_capacity: capacity must be >= 1";
  trace_capacity := n;
  Mutex.protect traces_mu (fun () ->
      List.iter
        (fun t ->
          t.ring <- Array.make n None;
          t.next <- 0)
        !traces)

let set_sim_clock c = sim_clock := c

let sim_now () = match !sim_clock with Some c -> Vnl_util.Sim_clock.now c | None -> 0

let begin_span name =
  let trace = my_trace () in
  let sp : Span.t =
    {
      name;
      depth = List.length trace.stack;
      seq = Atomic.fetch_and_add seq 1;
      start_s = Sys.time ();
      stop_s = 0.0;
      status = Span.Closed;
      sim_start = sim_now ();
      sim_stop = 0;
    }
  in
  trace.stack <- sp :: trace.stack;
  sp

let end_span ?(status = Span.Closed) (sp : Span.t) =
  let trace = my_trace () in
  sp.stop_s <- Sys.time ();
  sp.sim_stop <- sim_now ();
  sp.status <- status;
  (match trace.stack with
  | top :: rest when top == sp -> trace.stack <- rest
  | _ ->
    (* A leaked inner span would desynchronize depths; drop this span from
       wherever it sits so the stack cannot grow without bound. *)
    trace.stack <- List.filter (fun s -> s != sp) trace.stack);
  trace.ring.(trace.next) <- Some sp;
  trace.next <- (trace.next + 1) mod Array.length trace.ring;
  Histogram.observe (Registry.histogram (span_prefix ^ sp.name)) (Span.duration_ms sp)

let with_span name f =
  if not !enabled then f ()
  else begin
    let sp = begin_span name in
    match f () with
    | v ->
      end_span sp;
      v
    | exception e ->
      end_span ~status:Span.Aborted sp;
      raise e
  end

let open_spans () = List.length (my_trace ()).stack

let trace_spans trace =
  let n = Array.length trace.ring in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match trace.ring.((trace.next + i) mod n) with
    | Some sp -> acc := sp :: !acc
    | None -> ()
  done;
  List.rev !acc

(* All domains' completed spans in global begin order.  On a single domain
   this is exactly the old single-ring view; with several, each ring is
   internally ordered by [seq] already, so the merge is a sort of the
   concatenation. *)
let recent_spans () =
  let ts = Mutex.protect traces_mu (fun () -> !traces) in
  List.concat_map trace_spans ts
  |> List.sort (fun (a : Span.t) (b : Span.t) -> compare a.seq b.seq)

let clear_spans () =
  Mutex.protect traces_mu (fun () ->
      List.iter
        (fun t ->
          Array.fill t.ring 0 (Array.length t.ring) None;
          t.next <- 0)
        !traces);
  Atomic.set seq 0

let reset () =
  Registry.reset Registry.default;
  clear_spans ()

(* ---------- export ---------- *)

let summary_fields (s : Vnl_util.Stats.summary) =
  [
    ("count", Json.Num (float_of_int s.n));
    ("total_ms", Json.Num s.total);
    ("mean_ms", Json.Num s.mean);
    ("stddev_ms", Json.Num s.stddev);
    ("min_ms", Json.Num s.min);
    ("max_ms", Json.Num s.max);
    ("p50_ms", Json.Num s.p50);
    ("p90_ms", Json.Num s.p90);
    ("p99_ms", Json.Num s.p99);
  ]

let to_json ?(registry = Registry.default) () =
  let counters =
    List.map
      (fun c -> (Counter.name c, Json.Num (float_of_int (Counter.get c))))
      (Registry.counters registry)
  in
  let gauges =
    List.map
      (fun g -> (Gauge.name g, Json.Num (float_of_int (Gauge.get g))))
      (Registry.gauges registry)
  in
  let histograms =
    List.map
      (fun h -> (Histogram.name h, Json.Obj (summary_fields (Histogram.summary h))))
      (Registry.histograms registry)
  in
  let spans =
    if registry != Registry.default then []
    else
      [
        ( "spans",
          Json.Arr
            (List.map
               (fun (sp : Span.t) ->
                 Json.Obj
                   [
                     ("name", Json.Str sp.name);
                     ("depth", Json.Num (float_of_int sp.depth));
                     ("seq", Json.Num (float_of_int sp.seq));
                     ("ms", Json.Num (Span.duration_ms sp));
                     ("sim_start", Json.Num (float_of_int sp.sim_start));
                     ( "status",
                       Json.Str
                         (match sp.status with Span.Closed -> "closed" | Span.Aborted -> "aborted")
                     );
                   ])
               (recent_spans ())) );
      ]
  in
  Json.to_string
    (Json.Obj
       ([ ("counters", Json.Obj counters); ("gauges", Json.Obj gauges);
          ("histograms", Json.Obj histograms) ]
       @ spans))

let prom_name name =
  let buf = Buffer.create (String.length name + 4) in
  Buffer.add_string buf "vnl_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let to_prometheus ?(registry = Registry.default) () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      let n = prom_name (Counter.name c) in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n (Counter.get c)))
    (Registry.counters registry);
  List.iter
    (fun g ->
      let n = prom_name (Gauge.name g) in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %d\n" n n (Gauge.get g)))
    (Registry.gauges registry);
  List.iter
    (fun (h : Histogram.t) ->
      let n = prom_name (Histogram.name h) in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      let cumulative = ref 0 in
      Array.iteri
        (fun i bound ->
          cumulative := !cumulative + h.Histogram.counts.(i);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" n bound !cumulative))
        h.Histogram.bounds;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Histogram.count h));
      Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" n (Histogram.total h));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n (Histogram.count h)))
    (Registry.histograms registry);
  Buffer.contents buf

let phase_summaries () =
  List.filter_map
    (fun h ->
      let name = Histogram.name h in
      let k = String.length span_prefix in
      if String.length name > k && String.sub name 0 k = span_prefix then
        Some (String.sub name k (String.length name - k), Histogram.summary h)
      else None)
    (Registry.histograms Registry.default)

let phases_json () =
  Json.to_string
    (Json.Obj
       (List.map
          (fun (name, (s : Vnl_util.Stats.summary)) ->
            ( name,
              Json.Obj
                [
                  ("count", Json.Num (float_of_int s.n));
                  ("total_ms", Json.Num s.total);
                  ("mean_ms", Json.Num s.mean);
                  ("p99_ms", Json.Num s.p99);
                ] ))
          (phase_summaries ())))
