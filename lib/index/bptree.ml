module Value = Vnl_relation.Value

module Key = struct
  type t = Value.t list

  let rec compare a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs, y :: ys ->
      let c = Value.compare x y in
      if c <> 0 then c else compare xs ys
end

(* Functional nodes under a mutable root: inserts path-copy and report splits
   upward; deletes path-copy without rebalancing. *)
type 'a node =
  | Leaf of (Key.t * 'a) array
  | Inner of Key.t array * 'a node array
      (** [Inner (seps, children)]: [Array.length children = Array.length seps + 1];
          keys in [children.(i)] are [< seps.(i)] and [>= seps.(i-1)]. *)

type 'a t = { order : int; mutable root : 'a node; mutable length : int }

let create ?(order = 32) () =
  if order < 4 then invalid_arg "Bptree.create: order must be >= 4";
  { order; root = Leaf [||]; length = 0 }

(* Number of children of [Inner] whose subtree may contain [key]. *)
let child_index seps key =
  let rec loop i =
    if i >= Array.length seps then i
    else if Key.compare key seps.(i) < 0 then i
    else loop (i + 1)
  in
  loop 0

(* Position of [key] in a sorted entry array, or the insertion point. *)
let leaf_search entries key =
  let rec loop lo hi =
    if lo >= hi then (lo, false)
    else
      let mid = (lo + hi) / 2 in
      let c = Key.compare key (fst entries.(mid)) in
      if c = 0 then (mid, true) else if c < 0 then loop lo mid else loop (mid + 1) hi
  in
  loop 0 (Array.length entries)

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

let array_set arr i x =
  let copy = Array.copy arr in
  copy.(i) <- x;
  copy

type 'a push = One of 'a node | Two of 'a node * Key.t * 'a node

let split_leaf entries =
  let n = Array.length entries in
  let mid = n / 2 in
  let left = Array.sub entries 0 mid and right = Array.sub entries mid (n - mid) in
  Two (Leaf left, fst right.(0), Leaf right)

let split_inner seps children =
  let n = Array.length seps in
  let mid = n / 2 in
  let up = seps.(mid) in
  let lseps = Array.sub seps 0 mid and rseps = Array.sub seps (mid + 1) (n - mid - 1) in
  let lkids = Array.sub children 0 (mid + 1)
  and rkids = Array.sub children (mid + 1) (Array.length children - mid - 1) in
  Two (Inner (lseps, lkids), up, Inner (rseps, rkids))

let rec insert_node order node key payload =
  match node with
  | Leaf entries -> (
    let i, found = leaf_search entries key in
    if found then (One (Leaf (array_set entries i (key, payload))), false)
    else
      let entries = array_insert entries i (key, payload) in
      ((if Array.length entries > order then split_leaf entries else One (Leaf entries)), true))
  | Inner (seps, children) -> (
    let ci = child_index seps key in
    let pushed, grew = insert_node order children.(ci) key payload in
    match pushed with
    | One child -> (One (Inner (seps, array_set children ci child)), grew)
    | Two (left, up, right) ->
      let seps = array_insert seps ci up in
      let children = array_insert (array_set children ci left) (ci + 1) right in
      ((if Array.length seps > order then split_inner seps children else One (Inner (seps, children))), grew))

let insert t key payload =
  let pushed, grew = insert_node t.order t.root key payload in
  (match pushed with
  | One node -> t.root <- node
  | Two (left, up, right) -> t.root <- Inner ([| up |], [| left; right |]));
  if grew then t.length <- t.length + 1

let rec find_node node key =
  match node with
  | Leaf entries ->
    let i, found = leaf_search entries key in
    if found then Some (snd entries.(i)) else None
  | Inner (seps, children) -> find_node children.(child_index seps key) key

let find t key = find_node t.root key

(* One root-to-leaf pass shared across a sorted batch of keys: at each inner
   node the (still sorted) key range is partitioned among the children, so
   upper levels are visited once per child interval instead of once per key.
   Cost is O(nodes overlapping the key range + batch size) against
   O(batch size * height) for independent probes. *)
let find_batch t keys =
  let n = Array.length keys in
  let out = Array.make n None in
  (* First index in [lo, hi) whose key is >= sep (binary search). *)
  let partition_point lo hi sep =
    let lo = ref lo and hi = ref hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Key.compare keys.(mid) sep < 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let rec go node lo hi =
    match node with
    | Leaf entries ->
      for i = lo to hi - 1 do
        let j, found = leaf_search entries keys.(i) in
        if found then out.(i) <- Some (snd entries.(j))
      done
    | Inner (seps, children) ->
      (* Visit only the children that hold keys: pick the child of the next
         unresolved key, split its interval off by binary search, recurse.
         The keys are sorted, so the child index is monotone across
         intervals and the separator scan resumes where it left off —
         each separator is examined at most once per node visit. *)
      let nsep = Array.length seps in
      let start = ref lo and ci = ref 0 in
      while !start < hi do
        while !ci < nsep && Key.compare keys.(!start) seps.(!ci) >= 0 do
          incr ci
        done;
        let stop = if !ci = nsep then hi else partition_point (!start + 1) hi seps.(!ci) in
        go children.(!ci) !start stop;
        start := stop
      done
  in
  (for i = 1 to n - 1 do
     if Key.compare keys.(i - 1) keys.(i) > 0 then
       invalid_arg "Bptree.find_batch: keys not sorted"
   done);
  go t.root 0 n;
  out

let compare_keys = Key.compare

let rec first_key = function
  | Leaf entries -> fst entries.(0)
  | Inner (_, children) -> first_key children.(0)

(* One root-to-leaf pass inserting a sorted batch of pairs: like
   {!find_batch}, the separator scans and the path copies that per-key
   inserts would repeat per key happen once per touched node.  A node
   receiving many keys may fan out into several siblings; the parent
   separates them by first key, which bounds them exactly like a promoted
   separator would.  The resulting tree can differ in shape from the one
   per-key inserts build, but holds the same entries and the same
   invariants. *)
let insert_batch t pairs =
  let n = Array.length pairs in
  if n > 0 then begin
    for i = 1 to n - 1 do
      if Key.compare (fst pairs.(i - 1)) (fst pairs.(i)) >= 0 then
        invalid_arg "Bptree.insert_batch: keys not sorted or not distinct"
    done;
    let order = t.order in
    let added = ref 0 in
    (* First index in [lo, hi) whose key is >= sep. *)
    let partition_point lo hi sep =
      let lo = ref lo and hi = ref hi in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Key.compare (fst pairs.(mid)) sep < 0 then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    (* Split [arr] into [k] nearly equal contiguous chunks. *)
    let chunk_array mk arr k =
      let len = Array.length arr in
      let sz = (len + k - 1) / k in
      List.init k (fun c -> mk (Array.sub arr (c * sz) (min sz (len - (c * sz)))))
    in
    (* Replace [node] with one or more siblings holding its entries plus
       pairs[lo..hi); each sibling respects the node capacity. *)
    let rec go node lo hi =
      match node with
      | Leaf entries ->
        (* Binary-search each key's slot, then build the merged array with
           positional copies only — no comparisons during the copy. *)
        let m = Array.length entries and k = hi - lo in
        let pos = Array.make k 0 and repl = Array.make k false in
        let fresh = ref 0 in
        for x = 0 to k - 1 do
          let i, found = leaf_search entries (fst pairs.(lo + x)) in
          pos.(x) <- i;
          repl.(x) <- found;
          if not found then incr fresh
        done;
        added := !added + !fresh;
        let total = m + !fresh in
        let merged = Array.make total pairs.(lo) in
        let w = ref 0 and e = ref 0 in
        for x = 0 to k - 1 do
          while !e < pos.(x) do
            merged.(!w) <- entries.(!e);
            incr w;
            incr e
          done;
          merged.(!w) <- pairs.(lo + x);
          incr w;
          if repl.(x) then incr e (* the old entry is replaced, skip it *)
        done;
        while !e < m do
          merged.(!w) <- entries.(!e);
          incr w;
          incr e
        done;
        if total <= order then [ Leaf merged ]
        else chunk_array (fun a -> Leaf a) merged ((total + order - 1) / order)
      | Inner (seps, children) ->
        let nsep = Array.length seps in
        (* Resolve the touched children first; (child index, replacements)
           in reverse order. *)
        let repls = ref [] and split = ref false in
        let start = ref lo and ci = ref 0 in
        while !start < hi do
          while !ci < nsep && Key.compare (fst pairs.(!start)) seps.(!ci) >= 0 do
            incr ci
          done;
          let stop = if !ci = nsep then hi else partition_point (!start + 1) hi seps.(!ci) in
          let r = go children.(!ci) !start stop in
          (match r with [ _ ] -> () | _ -> split := true);
          repls := (!ci, r) :: !repls;
          start := stop
        done;
        if not !split then begin
          (* No child fanned out: one flat copy with the replacements
             written over it — the common steady-state path. *)
          let children = Array.copy children in
          List.iter
            (fun (i, r) -> match r with [ c ] -> children.(i) <- c | _ -> assert false)
            !repls;
          [ Inner (seps, children) ]
        end
        else begin
          (* Children in reverse, with the separator *preceding* each child
             except the leftmost alongside it. *)
          let acc = ref [] in
          let add ~sep c = acc := (sep, c) :: !acc in
          let copied = ref 0 in
          let copy_until upto =
            for i = !copied to upto - 1 do
              add ~sep:(if i = 0 then None else Some seps.(i - 1)) children.(i)
            done;
            copied := upto
          in
          List.iter
            (fun (i, r) ->
              copy_until i;
              (match r with
              | [] -> assert false
              | repl :: rest ->
                add ~sep:(if i = 0 then None else Some seps.(i - 1)) repl;
                List.iter (fun n -> add ~sep:(Some (first_key n)) n) rest);
              copied := i + 1)
            (List.rev !repls);
          copy_until (nsep + 1);
          let packed = Array.of_list (List.rev !acc) in
          let new_children = Array.map snd packed in
          let new_seps =
            Array.init
              (Array.length packed - 1)
              (fun i ->
                match fst packed.(i + 1) with Some s -> s | None -> assert false)
          in
          if Array.length new_seps <= order then [ Inner (new_seps, new_children) ]
          else begin
            (* Fan out into sibling inners of <= order separators; boundary
               separators are dropped — the parent re-separates by first
               key. *)
            let len = Array.length new_children in
            let k = (len + order) / (order + 1) in
            let sz = (len + k - 1) / k in
            List.init k (fun c ->
                let off = c * sz in
                let cnt = min sz (len - off) in
                Inner (Array.sub new_seps off (cnt - 1), Array.sub new_children off cnt))
          end
        end
    in
    (* Group sibling lists under new roots until a single root remains. *)
    let rec build = function
      | [ one ] -> one
      | nodes ->
        let arr = Array.of_list nodes in
        let len = Array.length arr in
        let k = (len + order) / (order + 1) in
        let sz = (len + k - 1) / k in
        build
          (List.init k (fun c ->
               let off = c * sz in
               let cnt = min sz (len - off) in
               let children = Array.sub arr off cnt in
               let seps = Array.init (cnt - 1) (fun i -> first_key children.(i + 1)) in
               Inner (seps, children)))
    in
    t.root <- build (go t.root 0 n);
    t.length <- t.length + !added
  end

let mem t key = find t key <> None

let rec remove_node node key =
  match node with
  | Leaf entries ->
    let i, found = leaf_search entries key in
    if found then Some (Leaf (array_remove entries i)) else None
  | Inner (seps, children) -> (
    let ci = child_index seps key in
    match remove_node children.(ci) key with
    | None -> None
    | Some child -> (
      (* Drop children that became completely empty leaves. *)
      match child with
      | Leaf [||] when Array.length children > 1 ->
        let seps = array_remove seps (if ci = 0 then 0 else ci - 1) in
        let children = array_remove children ci in
        if Array.length children = 1 then Some children.(0) else Some (Inner (seps, children))
      | _ -> Some (Inner (seps, array_set children ci child))))

let remove t key =
  match remove_node t.root key with
  | None -> false
  | Some root ->
    t.root <- root;
    t.length <- t.length - 1;
    true

let length t = t.length

let height t =
  let rec loop = function Leaf _ -> 1 | Inner (_, children) -> 1 + loop children.(0) in
  loop t.root

let rec iter_node node f =
  match node with
  | Leaf entries -> Array.iter (fun (k, v) -> f k v) entries
  | Inner (_, children) -> Array.iter (fun c -> iter_node c f) children

let iter t f = iter_node t.root f

let range t ?lo ?hi f =
  let above k = match lo with None -> true | Some lo -> Key.compare k lo >= 0 in
  let below k = match hi with None -> true | Some hi -> Key.compare k hi <= 0 in
  (* Descend only into children whose separator interval intersects
     [lo, hi]. *)
  let rec go = function
    | Leaf entries -> Array.iter (fun (k, v) -> if above k && below k then f k v) entries
    | Inner (seps, children) ->
      let n = Array.length children in
      for i = 0 to n - 1 do
        let child_hi = if i = n - 1 then None else Some seps.(i) in
        let child_lo = if i = 0 then None else Some seps.(i - 1) in
        let skip =
          (match (lo, child_hi) with
          | Some lo, Some chi -> Key.compare chi lo <= 0
          | _ -> false)
          ||
          match (hi, child_lo) with
          | Some hi, Some clo -> Key.compare clo hi > 0
          | _ -> false
        in
        if not skip then go children.(i)
      done
  in
  go t.root

let to_list t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ok = Ok "ok" in
  let rec check node ~lo ~hi ~is_root =
    let in_bounds k =
      (match lo with None -> true | Some b -> Key.compare k b >= 0)
      && match hi with None -> true | Some b -> Key.compare k b < 0
    in
    match node with
    | Leaf entries ->
      let n = Array.length entries in
      if (not is_root) && n > t.order then fail "leaf overflow: %d" n
      else
        let rec sorted i =
          if i + 1 >= n then ok
          else if Key.compare (fst entries.(i)) (fst entries.(i + 1)) >= 0 then
            fail "leaf keys not strictly sorted at %d" i
          else sorted (i + 1)
        in
        if Array.exists (fun (k, _) -> not (in_bounds k)) entries then
          fail "leaf key outside separator bounds"
        else sorted 0
    | Inner (seps, children) ->
      if Array.length children <> Array.length seps + 1 then fail "inner child/sep mismatch"
      else if Array.length seps > t.order then fail "inner overflow: %d" (Array.length seps)
      else if Array.exists (fun k -> not (in_bounds k)) seps then
        fail "separator outside bounds"
      else
        let n = Array.length children in
        let rec loop i =
          if i >= n then ok
          else
            let clo = if i = 0 then lo else Some seps.(i - 1)
            and chi = if i = n - 1 then hi else Some seps.(i) in
            match check children.(i) ~lo:clo ~hi:chi ~is_root:false with
            | Ok _ -> loop (i + 1)
            | Error _ as e -> e
        in
        loop 0
  in
  match check t.root ~lo:None ~hi:None ~is_root:true with
  | Error _ as e -> e
  | Ok _ ->
    let counted = ref 0 in
    iter t (fun _ _ -> incr counted);
    if !counted <> t.length then fail "length mismatch: counted %d, recorded %d" !counted t.length
    else ok
