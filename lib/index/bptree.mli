(** B+-tree index over composite attribute keys.

    Maintenance transactions probe relations by unique key on every logical
    operation (the key-conflict test of Table 2 and the cursor selections of
    §4.2); this index makes those probes logarithmic.  §4.3 of the paper
    notes that indexes on non-updatable attributes — the group-by key of a
    summary table — are unaffected by 2VNL, which is why a single index on
    the unchanged key suffices for the extended relation too.

    Keys are lists of {!Vnl_relation.Value.t} compared lexicographically and
    must be unique (duplicate insertion replaces the payload).  Deletion does
    not rebalance (like several production engines, deleted space is reused
    by later inserts); lookups and range scans remain correct. *)

type 'a t
(** Index mapping composite keys to ['a] payloads (typically heap rids). *)

val create : ?order:int -> unit -> 'a t
(** [order] is the maximum entries per node, default 32, minimum 4. *)

val insert : 'a t -> Vnl_relation.Value.t list -> 'a -> unit
(** Insert or replace. *)

val find : 'a t -> Vnl_relation.Value.t list -> 'a option

val find_batch : 'a t -> Vnl_relation.Value.t list array -> 'a option array
(** [find_batch t keys] resolves every key in one root-to-leaf pass: inner
    nodes partition the batch among their children, so shared path prefixes
    are traversed once.  [keys] must be sorted ascending (duplicates
    allowed); raises [Invalid_argument] otherwise.  The batched maintenance
    path uses this for its single sorted key→rid resolution sweep. *)

val insert_batch : 'a t -> (Vnl_relation.Value.t list * 'a) array -> unit
(** [insert_batch t pairs] inserts a batch in one root-to-leaf pass,
    sharing the separator scans and path copies per-key inserts repeat;
    a key already present has its payload replaced.  [pairs] must be
    sorted strictly ascending by key; raises [Invalid_argument] otherwise.
    The resulting tree may differ in shape from per-key insertion but
    holds the same entries and satisfies {!check_invariants}.  The batched
    maintenance path uses this for its fresh-insert sweep. *)

val compare_keys : Vnl_relation.Value.t list -> Vnl_relation.Value.t list -> int
(** Lexicographic composite-key order (the order {!iter}, {!range}, and
    {!find_batch} use). *)

val mem : 'a t -> Vnl_relation.Value.t list -> bool

val remove : 'a t -> Vnl_relation.Value.t list -> bool
(** Returns whether the key was present. *)

val length : 'a t -> int

val height : 'a t -> int
(** Tree height; 1 for a single leaf. *)

val iter : 'a t -> (Vnl_relation.Value.t list -> 'a -> unit) -> unit
(** Visit all entries in ascending key order. *)

val range :
  'a t ->
  ?lo:Vnl_relation.Value.t list ->
  ?hi:Vnl_relation.Value.t list ->
  (Vnl_relation.Value.t list -> 'a -> unit) ->
  unit
(** Visit entries with [lo <= key <= hi] in ascending order; missing bounds
    are unbounded. *)

val to_list : 'a t -> (Vnl_relation.Value.t list * 'a) list
(** All entries in ascending key order. *)

val check_invariants : 'a t -> (string, string) result
(** Verify ordering, separator correctness, and node-size bounds; returns
    [Error reason] on violation.  Used by property tests. *)
