(** The global Version relation (§4).

    [currentVN] and [maintenanceActive] are stored in a single-tuple,
    two-attribute relation inside the DBMS itself, read by readers and
    updated by maintenance transactions — exactly the implementation the
    paper prescribes for a query-rewrite deployment.  Following §4's
    abort-visibility remark, the commit protocol updates [currentVN] only
    {e after} the maintenance work is complete. *)

type t

val table_name : string
(** ["Version"]. *)

val install : Vnl_query.Database.t -> t
(** Create the Version relation with [currentVN = 1],
    [maintenanceActive = false].  Raises [Invalid_argument] if it already
    exists. *)

val attach : Vnl_query.Database.t -> t
(** Re-attach to an existing Version relation (after {!Vnl_query.Database.reopen}).
    Raises [Failure] when the relation or its single tuple is missing. *)

val current_vn : t -> int
(** Read [currentVN].  Served from an [Atomic] cache of the stored tuple
    so reader domains validate sessions without touching the buffer pool;
    the cache is published by every write (and re-primed by {!attach}),
    and the boxed pair guarantees [currentVN] and [maintenanceActive] are
    always read consistently. *)

val maintenance_active : t -> bool

val begin_maintenance : t -> int
(** Set [maintenanceActive] and return the transaction's
    [maintenanceVN = currentVN + 1].  Raises [Invalid_argument] if a
    maintenance transaction is already active (the external protocol of
    §2.2 admits one at a time). *)

val commit_maintenance : t -> vn:int -> unit
(** Publish [currentVN := vn] and clear [maintenanceActive].  Raises
    [Invalid_argument] unless a maintenance transaction with this [vn] is
    active. *)

val abort_maintenance : t -> unit
(** Clear [maintenanceActive] leaving [currentVN] unchanged. *)
