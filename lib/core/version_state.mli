(** The global Version relation (§4), generalized for pipelined nVNL
    rounds.

    [currentVN] and [maintenanceActive] are stored in a single-tuple,
    two-attribute relation inside the DBMS itself, read by readers and
    updated by maintenance transactions — exactly the implementation the
    paper prescribes for a query-rewrite deployment.  Following §4's
    abort-visibility remark, the commit protocol updates [currentVN] only
    {e after} the maintenance work is complete.

    On top of the paper's single-transaction protocol sits the {e round}
    API for pipelined maintenance: a round begins [count] consecutive
    maintenance VNs at once ([currentVN + 1 .. currentVN + count]) and
    publishes them strictly in order, each publish advancing [currentVN]
    by one and decrementing the outstanding count.  The stored attribute
    remains the paper's Bool ([outstanding > 0]), so the disk format and
    the §4.1 SQL rewrite are unchanged, and §7 crash repair — which
    reverts every tuple stamped above the stored [currentVN] — needs no
    per-round bookkeeping to survive. *)

type t

val table_name : string
(** ["Version"]. *)

val install : Vnl_query.Database.t -> t
(** Create the Version relation with [currentVN = 1],
    [maintenanceActive = false].  Raises [Invalid_argument] if it already
    exists. *)

val attach : Vnl_query.Database.t -> t
(** Re-attach to an existing Version relation (after {!Vnl_query.Database.reopen}).
    Raises [Failure] when the relation or its single tuple is missing.
    A stored [maintenanceActive = true] attaches as one outstanding VN —
    the exact pre-crash count is irrelevant to repair. *)

val current_vn : t -> int
(** Read [currentVN].  Served from an [Atomic] cache of the stored tuple
    so reader domains validate sessions without touching the buffer pool;
    the cache is published by every write (and re-primed by {!attach}),
    and the boxed pair guarantees [currentVN] and the outstanding count
    are always read consistently. *)

val maintenance_active : t -> bool
(** [outstanding t > 0]. *)

val outstanding : t -> int
(** Maintenance VNs begun but not yet published: 0 when idle, 1 under the
    classic protocol, up to the round's [count] under pipelining. *)

val read_outstanding : t -> int * int
(** One consistent read of [(currentVN, outstanding)] — the pair readers
    need for the generalized expiry check, from a single atomic load. *)

val storage_page : t -> int
(** The heap page holding the Version tuple; the publish step flushes
    exactly this page. *)

val begin_maintenance : t -> int
(** Set [maintenanceActive] and return the transaction's
    [maintenanceVN = currentVN + 1] (a round of one).  Raises
    [Invalid_argument] if a maintenance transaction is already active (the
    external protocol of §2.2 admits one at a time). *)

val commit_maintenance : t -> vn:int -> unit
(** Publish [currentVN := vn] and clear [maintenanceActive].  Raises
    [Invalid_argument] unless a maintenance transaction with this [vn] is
    active. *)

val abort_maintenance : t -> unit
(** Clear the outstanding count leaving [currentVN] unchanged — under a
    round, this abandons {e every} unpublished VN (published prefixes
    stay committed). *)

val begin_round : t -> count:int -> int
(** Begin [count] consecutive maintenance VNs and return the base — the
    round's VNs are [base + 1 .. base + count].  Raises
    [Invalid_argument] when a transaction or round is already active, or
    [count < 1]. *)

val publish : t -> vn:int -> unit
(** Publish the round's next VN: requires [vn = currentVN + 1] and an
    outstanding count > 0, advances [currentVN] to [vn] and decrements the
    count (the stored flag clears with the last publish).  In-order
    publication is enforced by the [vn] check. *)
