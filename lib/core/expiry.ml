let never_expire_bound ~n ~gap ~txn_len =
  if n < 2 then invalid_arg "Expiry.never_expire_bound: n must be >= 2";
  if gap < 0 || txn_len < 0 then invalid_arg "Expiry.never_expire_bound: negative duration";
  ((n - 1) * (gap + txn_len)) - txn_len

type policy = Fixed_schedule | Commit_when_quiescent | More_versions of int

let policy_name = function
  | Fixed_schedule -> "fixed-schedule"
  | Commit_when_quiescent -> "commit-when-quiescent"
  | More_versions n -> Printf.sprintf "%dVNL" n

let pp_policy ppf p = Format.pp_print_string ppf (policy_name p)

(* Smallest n >= 2 with (n - 1) * (gap + txn_len) - txn_len >= session_len,
   in closed form: n - 1 >= ceil((session_len + txn_len) / (gap + txn_len)).
   The degenerate period gap = txn_len = 0 makes the bound 0 for every n —
   no version count helps — so it is rejected up front instead of being
   discovered by a seven-figure linear search. *)
let versions_needed ~session_len ~gap ~txn_len =
  if session_len < 0 || gap < 0 || txn_len < 0 then
    invalid_arg "Expiry.versions_needed: negative duration";
  let period = gap + txn_len in
  if period = 0 then begin
    if session_len <= 0 then 2
    else
      invalid_arg
        "Expiry.versions_needed: unsatisfiable: gap = 0 and txn_len = 0 leave every bound at 0"
  end
  else begin
    let need = session_len + txn_len in
    if need <= 0 then 2 else max 2 (1 + ((need + period - 1) / period))
  end
