(** Dependency-aware batch partitioning for pipelined maintenance.

    [partition] splits one relation's net-effect batch into partitions that
    are safe to fold and apply concurrently on worker domains:

    - {b key-disjoint}: a unique key's every operation lands in the same
      partition (so net-effect folding inside a partition sees the key's
      full history, and no tuple is written by two workers);
    - {b footprint-disjoint}: two partitions never touch the same secondary
      index — an update assigning an indexed attribute, and every
      structural insert/delete, "touches" each index over those attributes,
      and partitions sharing a touched index are merged (the in-memory
      B+-trees take no latches, so tree exclusivity {e is} the safety
      argument);
    - {b order-preserving}: each partition is a stable filter of the input,
      so per-key operation order is intact and a forced single partition is
      the original batch verbatim.

    Keyless relations (no key to net over, insert order matters) and
    [max_parts <= 1] produce one partition.  Partitioning is deterministic:
    the same inputs yield the same partitions, which the crash-recovery
    sweep and the byte-identity differential tests rely on. *)

type partition = {
  ops : Batch.op list;
  key_count : int;  (** Distinct unique keys ([op_count] when keyless). *)
  op_count : int;
}

val partition :
  Schema_ext.t -> Vnl_query.Table.t -> max_parts:int -> Batch.op list -> partition list
(** Split [ops] into at most [max_parts] concurrency-safe partitions
    (fewer when merging or the key distribution demands it; [[]] for an
    empty batch). *)
