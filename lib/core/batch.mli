(** Batched maintenance application (§3.3 Tables 2-4 over whole batches).

    [apply] takes an entire maintenance batch against one relation and
    reduces it to the minimum physical work before touching storage:

    + {b Net-effect reduction}: operations are grouped by unique key and
      folded through the same Tables 2-4 transitions the per-op path uses
      ({!Maintenance.insert_tuple} / [update_tuple] / [delete_tuple]), on an
      in-memory record image — a key touched k times costs k (cheap, pure)
      transitions but exactly one physical action, instead of k probe +
      decode + rewrite cycles.
    + {b One sorted key pass}: every key→rid lookup is resolved in a single
      sorted sweep over the unique index ({!Vnl_index.Bptree.find_batch}),
      and the hit records are fetched in ascending (page, slot) order.
    + {b Page-ordered apply}: the per-key physical actions are applied in
      ascending (page, slot) order (fresh inserts last, in first-touch
      order), so a small buffer pool sees near-sequential page access
      instead of one random page per logical operation.

    Because the batched fold and the per-op appliers run the {e same}
    transition code, applying a batch produces byte-identical table state
    and identical reader-visible results at every session VN as applying
    its operations one at a time — the correctness contract the randomized
    differential test enforces.  Two deliberate exceptions, both outside
    the paper's maintenance pattern:

    - A batch that inserts a {e brand-new} key and deletes it again nets to
      no storage action at all, where per-op application would transiently
      occupy (and then free) a slot, which can shift the slots later fresh
      inserts of the same batch land on.  Logical state and reader results
      are still identical.  (Re-deleting a key this transaction re-inserted
      over an {e older} logical delete — the Table 4 row 2 correction — is
      exact, including under nVNL.)
    - Errors (impossible transitions, invalid assignments) are raised
      during the in-memory fold, before any write: a rejected batch leaves
      the table untouched, where per-op application would have applied the
      prefix.

    Assignments may not touch key attributes (net-effect grouping relies on
    stable keys); [Invalid_argument] otherwise.  Tables without a unique
    key accept insert-only batches, applied in order. *)

type op =
  | Insert of Vnl_relation.Tuple.t  (** Base tuple to logically insert. *)
  | Update of Vnl_relation.Value.t list * (int * Vnl_relation.Value.t) list
      (** Key and assignments by base position (updatable attributes
          only). *)
  | Delete of Vnl_relation.Value.t list  (** Key. *)

type outcome = {
  logical_ops : int;
  distinct_keys : int;
  folded_ops : int;  (** Logical operations absorbed by net-effect
                         reduction: [logical_ops] minus physical actions. *)
  physical_inserts : int;
  physical_updates : int;
  physical_deletes : int;
}

val apply :
  ?stats:Maintenance.stats ->
  ?on_over_delete:(Vnl_storage.Heap_file.rid -> unit) ->
  ?was_insert_over_delete:(Vnl_storage.Heap_file.rid -> bool) ->
  Schema_ext.t ->
  Vnl_query.Table.t ->
  vn:int ->
  op list ->
  outcome
(** Apply a whole batch at maintenance version [vn].  [on_over_delete] and
    [was_insert_over_delete] carry the transaction-level bookkeeping for
    inserts over older logical deletes (exactly as in
    {!Maintenance.apply_insert} / [apply_delete]); within the batch that
    bookkeeping is tracked automatically.  [stats] receives the same
    logical counts as per-op application and the {e reduced} physical
    counts. *)

val pp_outcome : Format.formatter -> outcome -> unit
