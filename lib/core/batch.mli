(** Batched maintenance application (§3.3 Tables 2-4 over whole batches).

    [apply] takes an entire maintenance batch against one relation and
    reduces it to the minimum physical work before touching storage:

    + {b Net-effect reduction}: operations are grouped by unique key and
      folded through the same Tables 2-4 transitions the per-op path uses
      ({!Maintenance.insert_tuple} / [update_tuple] / [delete_tuple]), on an
      in-memory record image — a key touched k times costs k (cheap, pure)
      transitions but exactly one physical action, instead of k probe +
      decode + rewrite cycles.
    + {b One sorted key pass}: every key→rid lookup is resolved in a single
      sorted sweep over the unique index ({!Vnl_index.Bptree.find_batch}),
      and the hit records are fetched in ascending (page, slot) order.
    + {b Page-ordered apply}: the per-key physical actions are applied in
      ascending (page, slot) order (fresh inserts last, in first-touch
      order), so a small buffer pool sees near-sequential page access
      instead of one random page per logical operation.

    Because the batched fold and the per-op appliers run the {e same}
    transition code, applying a batch produces byte-identical table state
    and identical reader-visible results at every session VN as applying
    its operations one at a time — the correctness contract the randomized
    differential test enforces.  Two deliberate exceptions, both outside
    the paper's maintenance pattern:

    - A batch that inserts a {e brand-new} key and deletes it again nets to
      no storage action at all, where per-op application would transiently
      occupy (and then free) a slot, which can shift the slots later fresh
      inserts of the same batch land on.  Logical state and reader results
      are still identical.  (Re-deleting a key this transaction re-inserted
      over an {e older} logical delete — the Table 4 row 2 correction — is
      exact, including under nVNL.)
    - Errors (impossible transitions, invalid assignments) are raised
      during the in-memory fold, before any write: a rejected batch leaves
      the table untouched, where per-op application would have applied the
      prefix.

    Assignments may not touch key attributes (net-effect grouping relies on
    stable keys); [Invalid_argument] otherwise.  Tables without a unique
    key accept insert-only batches, applied in order. *)

type op =
  | Insert of Vnl_relation.Tuple.t  (** Base tuple to logically insert. *)
  | Update of Vnl_relation.Value.t list * (int * Vnl_relation.Value.t) list
      (** Key and assignments by base position (updatable attributes
          only). *)
  | Delete of Vnl_relation.Value.t list  (** Key. *)

type outcome = {
  logical_ops : int;
  distinct_keys : int;
  folded_ops : int;  (** Logical operations absorbed by net-effect
                         reduction: [logical_ops] minus physical actions. *)
  physical_inserts : int;
  physical_updates : int;
  physical_deletes : int;
}

type staged
(** A batch's complete write plan: grouped, resolved, and folded, with every
    physical action decided but nothing written.  Updates and deletes are
    rid-sorted, fresh inserts carry their extended tuples in first-touch
    order.  Staging reads the table (index probes, record fetches); a staged
    plan is only valid against the table state it was staged from — apply it
    before any other writer touches the relation.  The pipelined maintenance
    path stages every partition up front (serially, against the pre-round
    state, which partition key-disjointness makes sound) and ships the plans
    to worker domains. *)

val stage :
  ?stats:Maintenance.stats ->
  ?resolve:
    (Vnl_relation.Value.t list ->
    (Vnl_storage.Heap_file.rid * Vnl_relation.Tuple.t) option) ->
  ?prenetted:bool ->
  ?on_over_delete:(Vnl_storage.Heap_file.rid -> unit) ->
  ?was_insert_over_delete:(Vnl_storage.Heap_file.rid -> bool) ->
  Schema_ext.t ->
  Vnl_query.Table.t ->
  vn:int ->
  op list ->
  staged
(** Group, resolve, and fold a batch at maintenance version [vn] without
    writing.  [resolve], when given, replaces the sorted index pass: it must
    return each key's stored record exactly as {!Vnl_query.Table.find_many_by_key}
    would against the {e same} table state (raw, including logically
    deleted records) — the pipelined refresh passes the lookups its
    classification pass already performed.  [prenetted] promises the batch
    already carries at most one operation per key (e.g. it came out of a
    net-effect classification), which lets grouping skip its hash table; a
    false promise stages one physical action per duplicate and corrupts
    the net effect.  [on_over_delete] and
    [was_insert_over_delete] carry the transaction-level bookkeeping for
    inserts over older logical deletes (exactly as in
    {!Maintenance.apply_insert} / [apply_delete]); within the batch that
    bookkeeping is tracked automatically.  [stats] receives the logical
    counts.  A rejected operation (impossible transition, assignment to a
    key or non-updatable attribute) raises here, before any write. *)

val key_table_of_pairs :
  (Vnl_relation.Value.t list * (Vnl_storage.Heap_file.rid * Vnl_relation.Tuple.t) option) list ->
  Vnl_relation.Value.t list ->
  (Vnl_storage.Heap_file.rid * Vnl_relation.Tuple.t) option
(** Build a [resolve] function from already-performed lookups (one
    [(key, found)] pair per key, later pairs winning).  Keys absent from
    the pairs resolve to [None], so the pairs must cover every key the
    staged operations touch. *)

val staged_ops : staged -> int
(** Physical actions the plan will perform (the pipeline's skew measure). *)

val staged_outcome : staged -> outcome
(** The outcome applying the plan will produce, computed without
    applying. *)

val apply_updates :
  ?stats:Maintenance.stats -> Vnl_query.Table.t -> staged -> Vnl_storage.Heap_file.rid list
(** Execute only the plan's in-place updates (rid order); returns the rids
    written.  Updates never change keys or slot occupancy, so — when the
    plan's index footprint is empty — this phase is safe to run on a worker
    domain concurrently with other partitions' update phases: the heap
    latch serializes the byte writes and no shared index is touched. *)

val apply_structural :
  ?stats:Maintenance.stats -> Vnl_query.Table.t -> staged -> Vnl_storage.Heap_file.rid list
(** Execute the plan's deletes (rid order) then fresh inserts (one batched
    {!Vnl_query.Table.insert_many}); returns every rid written.  Structural
    actions move slots and mutate the unique index, so the pipeline runs
    them inside the serialized in-order token section — which is also what
    keeps slot assignment byte-identical to the serial reference. *)

val apply_staged :
  ?stats:Maintenance.stats ->
  Vnl_query.Table.t ->
  staged ->
  outcome * Vnl_storage.Heap_file.rid list
(** Execute a staged plan: updates in rid order, then deletes in rid order,
    then fresh inserts as one batched insert ({!Vnl_query.Table.insert_many}).
    [stats] receives the physical counts.  Returns the batch outcome and
    {e every} rid physically written — updated, deleted, and freshly
    inserted — which is exactly the page set the pipelined path must flush
    before publishing the stripe's VN. *)

val apply :
  ?stats:Maintenance.stats ->
  ?on_over_delete:(Vnl_storage.Heap_file.rid -> unit) ->
  ?was_insert_over_delete:(Vnl_storage.Heap_file.rid -> bool) ->
  Schema_ext.t ->
  Vnl_query.Table.t ->
  vn:int ->
  op list ->
  outcome
(** [stage] then [apply_staged] back to back: apply a whole batch at
    maintenance version [vn].  [stats] receives the same logical counts as
    per-op application and the {e reduced} physical counts. *)

val pp_outcome : Format.formatter -> outcome -> unit
