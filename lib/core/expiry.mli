(** Session-expiry policies and the nVNL guarantee formula (§2.1, §5).

    With maintenance transactions of length at least [m] separated by gaps
    of at least [i], nVNL guarantees that sessions no longer than
    [(n - 1) * (i + m) - m] never expire; for 2VNL this is just [i]. *)

val never_expire_bound : n:int -> gap:int -> txn_len:int -> int
(** [(n - 1) * (gap + txn_len) - txn_len].  Raises [Invalid_argument] when
    [n < 2] or a duration is negative. *)

type policy =
  | Fixed_schedule  (** Commit on schedule; sessions may expire (§2.1). *)
  | Commit_when_quiescent
      (** Commit only when no reader session is active: sessions never
          expire but readers can starve the maintenance transaction. *)
  | More_versions of int
      (** Run nVNL with the given [n], widening the no-expiry window. *)

val pp_policy : Format.formatter -> policy -> unit

val policy_name : policy -> string

val versions_needed : session_len:int -> gap:int -> txn_len:int -> int
(** Smallest [n >= 2] whose {!never_expire_bound} covers sessions of
    [session_len] — the tuning knob §5 describes.  Computed in closed form.
    Raises [Invalid_argument] on negative durations and on the degenerate
    [gap = 0 && txn_len = 0] with positive [session_len], whose bound is 0
    for every [n]. *)
