(** Pipelined parallel maintenance: one refresh as a {e round} of k
    dependency-disjoint stripes, applied by k workers under nVNL with VNs
    published strictly in order.

    The classic refresh ({!Recovery.run_maintenance}) is one maintenance
    transaction: flag → apply → flush → catalog → publish.  This driver
    splits the refresh's net-effect batch with {!Sched_batch.partition}
    into key- and index-footprint-disjoint partitions, reserves one VN per
    stripe ({!Twovnl.Round}), and runs the stripes on worker domains:

    - {b fold} (parallel): each worker stages its partitions
      ({!Batch.stage}) against the pre-round state — partitions are
      key-disjoint, so the pre-round reads are exact no matter how the
      round later interleaves; a barrier keeps every fold ahead of the
      first apply.
    - {b apply} (parallel): in-place updates, which never move slots nor
      touch shared index trees (the partitioner merged any two partitions
      sharing a secondary index).
    - {b token} (serialized, stripe order): structural deletes/inserts,
      then the stripe's own §7 durability ladder — targeted flush of every
      page the stripe wrote ({!Vnl_storage.Buffer_pool.flush_pages}),
      catalog save when a heap grew ([`Catalog_only]), VN publish, Version
      page flush.  In-order publication keeps every prefix of the round a
      state some serial execution would have produced, which is what makes
      a mid-round crash land on a VN boundary ({!Twovnl.recover}).

    Readers run throughout: session validity charges the round's
    outstanding VNs ([currentVN - sessionVN + outstanding <= n - 1]), so
    with n >= k + 1 a session opened at round begin survives the whole
    round; the stripe count is capped at n - 1.

    Failure of any worker parks the round: remaining workers drain, the
    unpublished suffix is reverted ({!Twovnl.Round.abort} — the published
    prefix is exactly a shorter round's commit), and the exception
    re-raises from {!finish}.  A {!Vnl_storage.Disk.Crash} skips the
    in-place repair; {!Recovery.reopen} repairs the disk image instead. *)

type plan

type report = {
  stripes : int;
  base_vn : int;  (** currentVN when the round began. *)
  partition_counts : (string * int) list;  (** Partitions per relation. *)
  outcomes : (string * Batch.outcome) list;
      (** Per-relation totals across all stripes. *)
}

type resolver =
  Vnl_relation.Value.t list ->
  (Vnl_storage.Heap_file.rid * Vnl_relation.Tuple.t) option

type phase = [ `Fold | `Apply | `Token ]
(** A stripe worker's three phases, in execution order. *)

val plan :
  ?on_phase:(phase -> stripe:int -> unit) ->
  ?resolvers:(string * resolver) list ->
  ?prenetted:bool ->
  Twovnl.t ->
  workers:int ->
  (string * Batch.op list) list ->
  plan
(** Partition each relation's batch (at most [min workers (n - 1)]
    partitions), begin the round, and make the raised maintenance flag
    durable.  No tuple is written yet.  [resolvers] optionally replays
    per-relation key lookups a classification pass already performed
    against the pre-round state (see {!Batch.stage}'s [resolve]), sparing
    every stripe a second index pass; [prenetted] likewise promises one
    operation per key ({!Batch.stage}).  Raises [Invalid_argument] when
    [workers < 1], a relation is unregistered, or maintenance is already
    active; if beginning the round fails after the flag write, the round
    is aborted before the exception escapes.

    [on_phase], when given, is invoked at the start of every stripe phase
    (fold, apply, token — before any of that phase's work).  It exists for
    deterministic fault injection: raising from the hook aborts the round
    exactly as a worker failure at that point would, which is how the
    abort/requeue tests sweep every failure point of a round. *)

val stripe_count : plan -> int

val published : plan -> int
(** Stripes published so far (the committed prefix).  After a failed
    {!run} this tells the caller exactly which prefix of {!stripe_ops}
    landed — the unpublished suffix was reverted by the abort. *)

val stripe_ops : plan -> (int * (string * Batch.op list) list) list
(** Each stripe's (vn, per-relation operations) — the serial reference
    schedule: applying stripe i's operations as one classic transaction
    committing at vn_i, in order, must produce the same warehouse state.
    The differential and crash-sweep tests replay exactly this. *)

val tasks : plan -> (string * (unit -> unit)) list
(** The stripe workers as named thunks for {!Vnl_util.Sched.run}: a
    deterministic single-domain interleaving of the whole round (workers
    never block — they spin through {!Vnl_util.Sched.yield} — so any
    schedule drives the round to completion).  Call {!finish} afterwards. *)

val finish : plan -> report
(** Join the round: re-raise a worker failure (after reverting the
    unpublished suffix), or return the report.  If the revert itself fails
    the primary exception still propagates; the secondary failure is
    logged and counted ([pipeline.abort_failures]) — except asynchronous
    fatals ([Out_of_memory], [Stack_overflow]), which take precedence. *)

val run : plan -> report
(** Execute the round on [stripe_count] domains
    ({!Vnl_util.Domain_pool.parallel}; inline on the calling domain when
    the round has a single stripe) and {!finish} it. *)
