module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Dtype = Vnl_relation.Dtype

type t = {
  base : Schema.t;
  extended : Schema.t;
  n : int;
  updatable : int list;  (** Base positions of updatable attributes. *)
  rank : (int, int) Hashtbl.t;  (** Base position -> rank among updatables. *)
  rank_arr : int array;  (** Same mapping as [rank], -1 for non-updatable;
                             O(1) access for the per-tuple reader path. *)
  updatable_arr : int array;  (** [updatable] as an array, rank order. *)
  pre_idx : int array array;  (** [pre_idx.(slot - 1).(r)]: extended position
                                  of the slot's pre-update copy of the rank-r
                                  updatable attribute.  Precomputed so the
                                  maintenance hot path (push_back /
                                  shift_forward / slot-1 writes) never does a
                                  Hashtbl rank lookup per attribute. *)
}

let vn_name slot = if slot = 1 then "tupleVN" else Printf.sprintf "tupleVN%d" slot

let op_name slot = if slot = 1 then "operation" else Printf.sprintf "operation%d" slot

let pre_name_raw slot name =
  if slot = 1 then "pre_" ^ name else Printf.sprintf "pre%d_%s" slot name

let extend ?(n = 2) base =
  if n < 2 then invalid_arg "Schema_ext.extend: n must be >= 2";
  let base_attrs = Schema.attributes base in
  List.iter
    (fun a ->
      let name = a.Schema.name in
      if
        String.equal name "tupleVN" || String.equal name "operation"
        || (String.length name >= 4 && String.equal (String.sub name 0 4) "pre_")
      then invalid_arg (Printf.sprintf "Schema_ext.extend: reserved attribute name %S" name))
    base_attrs;
  let updatable_attrs = List.filter (fun a -> a.Schema.updatable) base_attrs in
  let slot_bookkeeping slot =
    [ Schema.attr (vn_name slot) Dtype.Int; Schema.attr (op_name slot) (Dtype.Str 1) ]
  in
  let slot_pres slot =
    List.map (fun a -> Schema.attr (pre_name_raw slot a.Schema.name) a.Schema.dtype) updatable_attrs
  in
  let later_slots =
    List.concat_map
      (fun slot -> slot_bookkeeping slot @ slot_pres slot)
      (List.init (n - 2) (fun i -> i + 2))
  in
  let extended =
    Schema.make (slot_bookkeeping 1 @ base_attrs @ slot_pres 1 @ later_slots)
  in
  let updatable = Schema.updatable_indices base in
  let rank = Hashtbl.create 8 in
  List.iteri (fun r j -> Hashtbl.add rank j r) updatable;
  let rank_arr = Array.make (Schema.arity base) (-1) in
  List.iteri (fun r j -> rank_arr.(j) <- r) updatable;
  let updatable_arr = Array.of_list updatable in
  let b = Schema.arity base and k = List.length updatable in
  let pre_idx =
    Array.init (n - 1) (fun s ->
        (* s = slot - 1; slot 1's pre columns follow the base attributes,
           later slots sit after their two bookkeeping columns. *)
        let start = if s = 0 then 2 + b else 2 + b + k + ((s - 1) * (2 + k)) + 2 in
        Array.init k (fun r -> start + r))
  in
  { base; extended; n; updatable; rank; rank_arr; updatable_arr; pre_idx }

let base t = t.base

let extended t = t.extended

let n t = t.n

let slots t = t.n - 1

let base_arity t = Schema.arity t.base

let updatable_count t = List.length t.updatable

let check_slot t slot =
  if slot < 1 || slot > t.n - 1 then
    invalid_arg (Printf.sprintf "Schema_ext: slot %d out of range 1..%d" slot (t.n - 1))

let slot_start t slot =
  (* Slot 1 bookkeeping sits at 0; later slots are appended after the base
     attributes and slot 1's pre-update copies. *)
  check_slot t slot;
  let b = base_arity t and k = updatable_count t in
  if slot = 1 then 0 else 2 + b + k + ((slot - 2) * (2 + k))

let tuple_vn_index t ~slot = slot_start t slot

let operation_index t ~slot = slot_start t slot + 1

let base_index t j =
  if j < 0 || j >= base_arity t then invalid_arg "Schema_ext.base_index: out of range";
  2 + j

let rank_of t j =
  match Hashtbl.find_opt t.rank j with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Schema_ext: base attribute %d is not updatable" j)

let pre_index t ~slot j =
  check_slot t slot;
  let r = rank_of t j in
  if slot = 1 then 2 + base_arity t + r else slot_start t slot + 2 + r

let updatable_base_indices t = t.updatable

let updatable_array t = t.updatable_arr

let is_updatable t j = j >= 0 && j < Array.length t.rank_arr && t.rank_arr.(j) >= 0

let pre_indices t ~slot =
  check_slot t slot;
  t.pre_idx.(slot - 1)

let tuple_vn t ~slot tuple =
  match Tuple.get tuple (tuple_vn_index t ~slot) with
  | Value.Int vn -> Some vn
  | Value.Null -> None
  | v -> invalid_arg (Printf.sprintf "Schema_ext.tuple_vn: corrupt value %s" (Value.to_string v))

let operation t ~slot tuple =
  match Tuple.get tuple (operation_index t ~slot) with
  | Value.Null -> invalid_arg "Schema_ext.operation: unused slot"
  | v -> Op.of_value v

let fresh_insert t ~vn base_tuple =
  let ext = t.extended in
  let values =
    Array.init (Schema.arity ext) (fun _ -> Value.Null)
  in
  values.(0) <- Value.Int vn;
  values.(1) <- Op.to_value Op.Insert;
  List.iteri (fun j v -> values.(base_index t j) <- v) (Tuple.values base_tuple);
  Tuple.of_array ext values

let current_values t tuple =
  List.init (base_arity t) (fun j -> Tuple.get tuple (base_index t j))

(* Validation-free projections for the reader hot path: the source tuple
   was decoded from a stored record, so its values already match the
   schema and re-checking them per extraction would only burn CPU. *)

let current_tuple t tuple =
  Tuple.unsafe_init (base_arity t) (fun j -> Tuple.get tuple (2 + j))

let pre_update_tuple t ~slot tuple =
  let pre0 = if slot = 1 then 2 + base_arity t else slot_start t slot + 2 in
  Tuple.unsafe_init (base_arity t) (fun j ->
      let r = t.rank_arr.(j) in
      if r >= 0 then Tuple.get tuple (pre0 + r) else Tuple.get tuple (2 + j))

type visibility = Visible of Tuple.t | Invisible | Slow

let decode_visible t ~session_vn buf off =
  (* Raw-record fast path for the reader: slot 1's version number and
     operation sit at fixed byte offsets, so a session that reads the
     current version decodes only the base attributes — no extended tuple,
     no pre-update copies.  Anything else (older version, unused slot,
     corrupt cell) returns [Slow]; the caller re-decodes fully and runs the
     exact classify/extract logic, which also owns every error message. *)
  let offs = Schema.cell_offsets t.extended in
  match Value.decode Dtype.Int buf (off + Array.unsafe_get offs 0) with
  | Value.Int tvn1 when session_vn >= tvn1 -> begin
    match Bytes.get buf (off + Array.unsafe_get offs 1) with
    | 'd' -> Invisible
    | 'i' | 'u' ->
      let dts = Schema.dtypes t.extended in
      Visible
        (Tuple.unsafe_init (base_arity t) (fun j ->
             Value.decode (Array.unsafe_get dts (2 + j)) buf
               (off + Array.unsafe_get offs (2 + j))))
    | _ -> Slow
  end
  | _ -> Slow

type raw_collectability = Raw_collect | Raw_keep | Raw_unknown

let collectable_raw t ~min_session_vn buf off =
  (* GC's analogue of [decode_visible]: the collectability of the common
     record (live insert/update, or a delete with a readable slot-1 VN) is
     decided from two fixed-offset cells, skipping the full extended
     decode that used to dominate the collection scan. *)
  let offs = Schema.cell_offsets t.extended in
  match Bytes.get buf (off + Array.unsafe_get offs 1) with
  | 'i' | 'u' -> Raw_keep
  | 'd' -> begin
    match Value.decode Dtype.Int buf (off + Array.unsafe_get offs 0) with
    | Value.Int vn -> if min_session_vn >= vn then Raw_collect else Raw_keep
    | _ -> Raw_unknown
  end
  | _ -> Raw_unknown

(* ---------- schema evolution ---------- *)

let of_extended ~n ~base_arity extended_schema =
  (* Invert [extend]: the base attributes sit at extended positions
     [2, 2 + base_arity).  Re-extending and comparing catches any mismatch
     between the stored layout metadata and the actual table schema. *)
  if base_arity < 1 || Schema.arity extended_schema < 2 + base_arity then
    invalid_arg "Schema_ext.of_extended: base arity out of range";
  let base =
    Schema.make (List.init base_arity (fun j -> Schema.attribute extended_schema (2 + j)))
  in
  let t = extend ~n base in
  if not (Schema.equal t.extended extended_schema) then
    invalid_arg "Schema_ext.of_extended: layout metadata does not match the stored schema";
  t

type winstr = W_copy of int | W_const of Value.t

type widening = { w_from : t; w_to : t; instrs : winstr array }

let widening ~from_ ~to_ ~defaults =
  (* Per-target-position copy plan, matched BY NAME: base attributes and
     bookkeeping/pre columns share names across generations, an added
     column takes its declared default, and anything else (the added
     column's own pre-update copies) starts Null. *)
  let src = from_.extended in
  let instrs =
    Array.init (Schema.arity to_.extended) (fun j ->
        let a = Schema.attribute to_.extended j in
        match Schema.index_of_opt src a.Schema.name with
        | Some i -> W_copy i
        | None -> (
          match List.assoc_opt a.Schema.name defaults with
          | Some v -> W_const v
          | None -> W_const Value.Null))
  in
  { w_from = from_; w_to = to_; instrs }

let widen w tuple =
  Tuple.unsafe_init
    (Array.length w.instrs)
    (fun j ->
      match Array.unsafe_get w.instrs j with
      | W_copy i -> Tuple.get tuple i
      | W_const v -> v)

let decode_widened w buf off =
  (* Decode a pre-evolution raw record straight into the new generation's
     shape: copied cells read at the OLD offsets with the OLD dtypes,
     added cells materialize from the defaults.  This is the per-generation
     offsets/defaults decode the evolution tests byte-compare against
     old-generation decode. *)
  let offs = Schema.cell_offsets w.w_from.extended in
  let dts = Schema.dtypes w.w_from.extended in
  Tuple.unsafe_init
    (Array.length w.instrs)
    (fun j ->
      match Array.unsafe_get w.instrs j with
      | W_copy i -> Value.decode (Array.unsafe_get dts i) buf (off + Array.unsafe_get offs i)
      | W_const v -> v)

let base_key_of t tuple =
  List.map (fun j -> Tuple.get tuple (base_index t j)) (Schema.key_indices t.base)

let width_overhead t = Schema.width t.extended - Schema.width t.base

let overhead_ratio t = float_of_int (width_overhead t) /. float_of_int (Schema.width t.base)

let is_extended_attribute t name =
  Schema.mem t.extended name && not (Schema.mem t.base name)

let tuple_vn_name t ~slot =
  check_slot t slot;
  vn_name slot

let operation_name t ~slot =
  check_slot t slot;
  op_name slot

let pre_name t ~slot name =
  check_slot t slot;
  (match Schema.index_of_opt t.base name with
  | Some j -> ignore (rank_of t j)
  | None -> invalid_arg (Printf.sprintf "Schema_ext.pre_name: unknown attribute %S" name));
  pre_name_raw slot name
