module Database = Vnl_query.Database
module Buffer_pool = Vnl_storage.Buffer_pool
module Disk = Vnl_storage.Disk

let log_src = Logs.Src.create "vnl.recovery" ~doc:"crash recovery"

module Log = (val Logs.src_log log_src : Logs.LOG)

type outcome = {
  interrupted : bool;
  reverted : int;
}

(* The §7 write-ordering invariant, stated once and relied on twice (here
   and in Warehouse.refresh):

     flag -> data -> catalog -> publish

   1. maintenanceActive = true reaches disk before any mutation of the
      transaction can (the flag page is flushed before the first apply, and
      background evictions of mutated pages therefore always land on a disk
      that already says "in maintenance");
   2. every mutated data page and the catalog describing any newly
      allocated pages reach disk before
   3. the commit publish (currentVN := vn, maintenanceActive := false) is
      written.

   Under this ordering the surviving disk image is always one of: clean
   pre-txn (crash before 1 completed), in-maintenance (flag set, any subset
   of mutations durable — §7 repair reverts the subset from the tuples' own
   pre-update slots), or clean post-txn (publish durable).  There is no
   window in which mutations are durable but unflagged, which is the one
   state no-log recovery could not distinguish from health. *)

module Obs = Vnl_obs.Obs

let run_maintenance db vnl f =
  Obs.with_span "maintenance.txn" @@ fun () ->
  let txn = Twovnl.Txn.begin_ vnl in
  (* Durability point 1: the flag (and current catalog) on disk before any
     maintenance mutation exists, so a crash during apply is detectable. *)
  Obs.with_span "maintenance.flag" (fun () -> Database.save db);
  let result = Obs.with_span "maintenance.apply" (fun () -> f txn) in
  (* Durability point 2: mutated data pages, then the catalog naming any
     pages the transaction allocated.  [save] serializes the catalog and
     flushes every dirty frame, giving exactly apply -> flush ->
     catalog-write. *)
  Obs.with_span "maintenance.flush" (fun () ->
      Buffer_pool.flush_all (Database.pool db);
      Database.save db);
  (* Durability point 3: publish.  Commit dirties only the Version page;
     the flush makes the new currentVN / cleared flag durable. *)
  Obs.with_span "maintenance.publish" (fun () ->
      Twovnl.Txn.commit txn;
      Buffer_pool.flush_all (Database.pool db));
  result

let reopen ?pool_capacity ?n disk ~tables =
  Obs.with_span "recovery.reopen" @@ fun () ->
  let db = Database.reopen ?pool_capacity disk in
  let vnl = Twovnl.attach db in
  (* A catalog carrying generation metadata rebuilds itself — including
     discarding a generation staged by an evolution that crashed before its
     publish; the caller's [tables] list describes only the original (gen-0)
     schemas and would mis-attach an evolved table. *)
  if Database.generations_meta db <> [] then Twovnl.attach_generations vnl
  else
    List.iter (fun (name, base) -> ignore (Twovnl.attach_table vnl ?n ~name base)) tables;
  let interrupted = Version_state.maintenance_active (Twovnl.version_state vnl) in
  let outcome =
    Obs.with_span "recovery.repair" @@ fun () ->
    let reverted = Twovnl.recover vnl in
    if interrupted then begin
      (* Make the repair durable so a second crash cannot resurrect the
         interrupted transaction's stamps. *)
      Database.save db;
      Log.info (fun m -> m "recovered interrupted maintenance: %d tuples reverted" reverted)
    end;
    { interrupted; reverted }
  in
  (vnl, outcome)
