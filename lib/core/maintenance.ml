module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Table = Vnl_query.Table

type stats = {
  mutable logical_inserts : int;
  mutable logical_updates : int;
  mutable logical_deletes : int;
  mutable physical_inserts : int;
  mutable physical_updates : int;
  mutable physical_deletes : int;
}

let fresh_stats () =
  {
    logical_inserts = 0;
    logical_updates = 0;
    logical_deletes = 0;
    physical_inserts = 0;
    physical_updates = 0;
    physical_deletes = 0;
  }

let count f = function Some s -> f s | None -> ()

let push_back ext tuple =
  let nslots = Schema_ext.slots ext in
  if nslots = 1 then tuple
  else begin
    (* Move slot i into slot i+1, oldest first so nothing is clobbered. *)
    let updates = ref [] in
    for slot = nslots - 1 downto 1 do
      let src_vn = Schema_ext.tuple_vn_index ext ~slot
      and dst_vn = Schema_ext.tuple_vn_index ext ~slot:(slot + 1)
      and src_op = Schema_ext.operation_index ext ~slot
      and dst_op = Schema_ext.operation_index ext ~slot:(slot + 1) in
      updates := (dst_vn, Tuple.get tuple src_vn) :: (dst_op, Tuple.get tuple src_op) :: !updates;
      let src_pre = Schema_ext.pre_indices ext ~slot
      and dst_pre = Schema_ext.pre_indices ext ~slot:(slot + 1) in
      Array.iteri
        (fun r src -> updates := (dst_pre.(r), Tuple.get tuple src) :: !updates)
        src_pre
    done;
    Tuple.set_many tuple !updates
  end

(* Inverse of push_back: slot_i <- slot_{i+1}, emptying the last slot.
   Used to restore a tuple's pushed-back history (abort, and the
   insert-over-delete-then-delete case below). *)
let shift_forward ext tuple =
  let updates = ref [] in
  let nslots = Schema_ext.slots ext in
  for slot = 1 to nslots - 1 do
    let src_vn = Schema_ext.tuple_vn_index ext ~slot:(slot + 1)
    and dst_vn = Schema_ext.tuple_vn_index ext ~slot
    and src_op = Schema_ext.operation_index ext ~slot:(slot + 1)
    and dst_op = Schema_ext.operation_index ext ~slot in
    updates := (dst_vn, Tuple.get tuple src_vn) :: (dst_op, Tuple.get tuple src_op) :: !updates;
    let src_pre = Schema_ext.pre_indices ext ~slot:(slot + 1)
    and dst_pre = Schema_ext.pre_indices ext ~slot in
    Array.iteri
      (fun r src -> updates := (dst_pre.(r), Tuple.get tuple src) :: !updates)
      src_pre
  done;
  updates := (Schema_ext.tuple_vn_index ext ~slot:nslots, Value.Null) :: !updates;
  updates := (Schema_ext.operation_index ext ~slot:nslots, Value.Null) :: !updates;
  Array.iter
    (fun i -> updates := (i, Value.Null) :: !updates)
    (Schema_ext.pre_indices ext ~slot:nslots);
  Tuple.set_many tuple !updates

let slot1_vn ext tuple =
  match Schema_ext.tuple_vn ext ~slot:1 tuple with
  | Some vn -> vn
  | None -> invalid_arg "Maintenance: tuple without slot 1"

(* Write slot 1 bookkeeping, optionally the pre-update values, and the
   [set] base-attribute assignments, all in one tuple copy.  [`From_current]
   pre values are read from [tuple] before [set] lands, so they capture the
   pre-assignment state.  With [in_place] the tuple is mutated instead of
   copied — only for callers that own the sole reference (the batch fold). *)
let set_slot1 ?(in_place = false) ?(set = []) ext tuple ~vn ~op ~pre =
  if in_place then begin
    (* Sole-reference fast path (the batch fold): write fields directly,
       no update list.  Pre copies land before [set] so they capture the
       pre-assignment state; [set] runs reversed to preserve the list
       path's first-assignment-wins order on duplicate positions. *)
    (match pre with
    | `Keep -> ()
    | `Nulls ->
      Array.iter
        (fun i -> Tuple.unsafe_set_in_place tuple i Value.Null)
        (Schema_ext.pre_indices ext ~slot:1)
    | `From_current ->
      let pre1 = Schema_ext.pre_indices ext ~slot:1
      and upd = Schema_ext.updatable_array ext in
      Array.iteri
        (fun r j ->
          Tuple.unsafe_set_in_place tuple pre1.(r)
            (Tuple.get tuple (Schema_ext.base_index ext j)))
        upd);
    List.iter
      (fun (j, v) -> Tuple.unsafe_set_in_place tuple (Schema_ext.base_index ext j) v)
      (List.rev set);
    Tuple.unsafe_set_in_place tuple (Schema_ext.tuple_vn_index ext ~slot:1) (Value.Int vn);
    Tuple.unsafe_set_in_place tuple (Schema_ext.operation_index ext ~slot:1) (Op.to_value op);
    tuple
  end
  else begin
    let updates =
      ref
        [
          (Schema_ext.tuple_vn_index ext ~slot:1, Value.Int vn);
          (Schema_ext.operation_index ext ~slot:1, Op.to_value op);
        ]
    in
    List.iter (fun (j, v) -> updates := (Schema_ext.base_index ext j, v) :: !updates) set;
    (match pre with
    | `Keep -> ()
    | `Nulls ->
      Array.iter
        (fun i -> updates := (i, Value.Null) :: !updates)
        (Schema_ext.pre_indices ext ~slot:1)
    | `From_current ->
      let pre1 = Schema_ext.pre_indices ext ~slot:1
      and upd = Schema_ext.updatable_array ext in
      Array.iteri
        (fun r j ->
          updates := (pre1.(r), Tuple.get tuple (Schema_ext.base_index ext j)) :: !updates)
        upd);
    Tuple.set_many tuple !updates
  end

let check_updatable ext assignments =
  List.iter
    (fun (j, _) ->
      if not (Schema_ext.is_updatable ext j) then
        invalid_arg (Printf.sprintf "Maintenance: base attribute %d is not updatable" j))
    assignments

let is_logically_live ext tuple =
  match Schema_ext.operation ext ~slot:1 tuple with
  | Op.Delete -> false
  | Op.Insert | Op.Update -> true

(* ------------------------------------------------------------------ *)
(* Pure tuple transitions (Tables 2-4).                               *)
(*                                                                    *)
(* Each function maps the in-memory image of a record to the image    *)
(* the logical operation leaves behind, without touching storage.     *)
(* The per-op appliers below wrap them with one table read and one    *)
(* physical action; the batched path (Batch) folds a whole batch      *)
(* through them and performs a single physical action per key, which  *)
(* is what makes batched and per-op application byte-identical: both  *)
(* run exactly this code.                                             *)
(* ------------------------------------------------------------------ *)

let insert_tuple ?(on_over_delete = fun () -> ()) ?(own = false) ext ~vn existing base_tuple =
  match existing with
  | None ->
    (* Table 2, row 3: no conflicting tuple. *)
    Schema_ext.fresh_insert ext ~vn base_tuple
  | Some existing ->
    let prev_op = Schema_ext.operation ext ~slot:1 existing in
    let mv = List.mapi (fun j v -> (j, v)) (Tuple.values base_tuple) in
    let tvn = slot1_vn ext existing in
    if tvn < vn then begin
      (* Table 2, row 1: conflict from an older transaction — only a
         logically deleted tuple can collide. *)
      Op.check_older_txn ~previous:prev_op Op.Insert;
      on_over_delete ();
      let t = push_back ext existing in
      set_slot1 ~in_place:own ~set:mv ext t ~vn ~op:Op.Insert ~pre:`Nulls
    end
    else begin
      (* Table 2, row 2: conflict with this same transaction. *)
      match Op.combine_same_txn ~previous:prev_op Op.Insert with
      | `Becomes net -> set_slot1 ~in_place:own ~set:mv ext existing ~vn ~op:net ~pre:`Keep
      | `Physically_delete -> assert false (* insert never physically deletes *)
    end

let update_tuple ?(own = false) ext ~vn existing assignments =
  check_updatable ext assignments;
  let prev_op = Schema_ext.operation ext ~slot:1 existing in
  let tvn = slot1_vn ext existing in
  if tvn < vn then begin
    (* Table 3, row 1. *)
    Op.check_older_txn ~previous:prev_op Op.Update;
    let t = push_back ext existing in
    set_slot1 ~in_place:own ~set:assignments ext t ~vn ~op:Op.Update ~pre:`From_current
  end
  else begin
    (* Table 3, row 2: net effect keeps the existing operation. *)
    match Op.combine_same_txn ~previous:prev_op Op.Update with
    | `Becomes net -> set_slot1 ~in_place:own ~set:assignments ext existing ~vn ~op:net ~pre:`Keep
    | `Physically_delete -> assert false
  end

let delete_tuple ?(insert_over_delete = false) ?(own = false) ext ~vn existing =
  let prev_op = Schema_ext.operation ext ~slot:1 existing in
  let tvn = slot1_vn ext existing in
  if tvn < vn then begin
    (* Table 4, row 1: logical delete is a physical update preserving the
       pre-update version. *)
    Op.check_older_txn ~previous:prev_op Op.Delete;
    let t = push_back ext existing in
    Some (set_slot1 ~in_place:own ext t ~vn ~op:Op.Delete ~pre:`From_current)
  end
  else begin
    (* Table 4, row 2. *)
    match Op.combine_same_txn ~previous:prev_op Op.Delete with
    | `Physically_delete when not insert_over_delete -> None
    | `Physically_delete ->
      (* Correction to Table 4 row 2: the same-transaction insert landed on
         a logically deleted key (Table 2 row 1), so the record still
         carries history older readers may need — physically deleting it
         would lose that.  Restore the deleted state instead: shift the
         pushed-back slots forward under nVNL; under plain 2VNL re-stamp
         the tuple as deleted at vn - 1 (invisible to every non-expired
         session, exactly like the committed delete it stands for). *)
      if Schema_ext.slots ext >= 2 && Schema_ext.tuple_vn ext ~slot:2 existing <> None then
        Some (shift_forward ext existing)
      else
        Some
          (Tuple.set_many existing
             [
               (Schema_ext.tuple_vn_index ext ~slot:1, Value.Int (vn - 1));
               (Schema_ext.operation_index ext ~slot:1, Op.to_value Op.Delete);
             ])
    | `Becomes net -> Some (set_slot1 ext existing ~vn ~op:net ~pre:`Keep)
  end

(* ------------------------------------------------------------------ *)
(* Per-operation appliers: one table probe and one physical action    *)
(* per logical operation.                                             *)
(* ------------------------------------------------------------------ *)

let apply_insert ?stats ?on_over_delete ext table ~vn base_tuple =
  count (fun s -> s.logical_inserts <- s.logical_inserts + 1) stats;
  let conflict =
    if Vnl_query.Table.has_key table then
      Table.find_by_key table (Tuple.key_of (Schema_ext.base ext) base_tuple)
    else None
  in
  match conflict with
  | None ->
    count (fun s -> s.physical_inserts <- s.physical_inserts + 1) stats;
    Table.insert ~check:false table (insert_tuple ext ~vn None base_tuple)
  | Some (rid, existing) ->
    let on_over_delete =
      match on_over_delete with Some f -> Some (fun () -> f rid) | None -> None
    in
    let t = insert_tuple ?on_over_delete ext ~vn (Some existing) base_tuple in
    count (fun s -> s.physical_updates <- s.physical_updates + 1) stats;
    Table.update_in_place ~old:existing table rid t;
    rid

let apply_update ?stats ext table ~vn rid assignments =
  count (fun s -> s.logical_updates <- s.logical_updates + 1) stats;
  check_updatable ext assignments;
  match Table.get table rid with
  | None -> invalid_arg "Maintenance.apply_update: no tuple at rid"
  | Some existing ->
    let t = update_tuple ext ~vn existing assignments in
    count (fun s -> s.physical_updates <- s.physical_updates + 1) stats;
    Table.update_in_place ~old:existing table rid t

let apply_delete ?stats ?(was_insert_over_delete = fun _ -> false) ext table ~vn rid =
  count (fun s -> s.logical_deletes <- s.logical_deletes + 1) stats;
  match Table.get table rid with
  | None -> invalid_arg "Maintenance.apply_delete: no tuple at rid"
  | Some existing -> (
    match
      delete_tuple ~insert_over_delete:(was_insert_over_delete rid) ext ~vn existing
    with
    | None ->
      count (fun s -> s.physical_deletes <- s.physical_deletes + 1) stats;
      Table.delete table rid
    | Some t ->
      count (fun s -> s.physical_updates <- s.physical_updates + 1) stats;
      Table.update_in_place ~old:existing table rid t)
