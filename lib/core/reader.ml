module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Obs = Vnl_obs.Obs

(* Per-tuple visibility decisions made on the reader hot path (the engine
   extraction that answers §4.1 full scans), and the share that fell off
   the raw-record fast decode into the allocating slow path. *)
let m_decodes = Obs.Registry.counter "reader.visibility_decodes"

let m_slow_decodes = Obs.Registry.counter "reader.slow_decodes"

exception Session_expired of { session_vn : int; tuple_vn : int }

type case =
  | Read_current
  | Read_pre_update of int
  | Ignore_tuple
  | Expired of int

let classify ext ~session_vn tuple =
  (* Slot 1 decides the common case; read it directly to skip the option
     round-trip of [Schema_ext.tuple_vn] on every scanned tuple. *)
  match Tuple.get tuple (Schema_ext.tuple_vn_index ext ~slot:1) with
  | Value.Null -> invalid_arg "Reader.classify: tuple has no version slot 1"
  | Value.Int tvn1 when session_vn >= tvn1 -> Read_current
  | Value.Int _ ->
    begin
      (* Find the least-recent occupied slot and the governing slot: the
         occupied slot with the smallest tupleVN still greater than the
         session. *)
      let rec scan slot governing oldest_vn =
        if slot > Schema_ext.slots ext then (governing, oldest_vn)
        else
          match Schema_ext.tuple_vn ext ~slot tuple with
          | None -> (governing, oldest_vn)
          | Some vn ->
            let governing = if vn > session_vn then Some slot else governing in
            scan (slot + 1) governing (Some (slot, vn))
      in
      let governing, oldest = scan 1 None None in
      match (governing, oldest) with
      | Some slot, Some (oldest_slot, oldest_vn) ->
        if
          oldest_slot = Schema_ext.slots ext
          && session_vn < oldest_vn - 1
        then Expired oldest_vn
        else if slot = oldest_slot && session_vn < oldest_vn - 1 then
          (* History is complete (unused slots remain): before its first
             recorded operation the tuple simply did not exist. *)
          Ignore_tuple
        else Read_pre_update slot
      | _ -> assert false (* slot 1 is occupied and tvn1 > session. *)
    end
  | v ->
    invalid_arg (Printf.sprintf "Schema_ext.tuple_vn: corrupt value %s" (Value.to_string v))

let extract ext ~session_vn tuple =
  match classify ext ~session_vn tuple with
  | Expired tuple_vn -> raise (Session_expired { session_vn; tuple_vn })
  | Ignore_tuple -> None
  | Read_current -> (
    match Schema_ext.operation ext ~slot:1 tuple with
    | Op.Delete -> None
    | Op.Insert | Op.Update -> Some (Schema_ext.current_tuple ext tuple))
  | Read_pre_update slot -> (
    match Schema_ext.operation ext ~slot tuple with
    | Op.Insert -> None
    | Op.Update | Op.Delete -> Some (Schema_ext.pre_update_tuple ext ~slot tuple))

let visible_relation ext ~session_vn table =
  let extended = Schema_ext.extended ext in
  (* The scan runs on the latch-free [fold_records] path, so the per-tuple
     work is a pure fold: rows and tallies travel in the accumulator, and
     an attempt invalidated by a concurrent mutator is discarded wholesale
     — nothing double-counts and no torn row can leak into the result.
     The tallies hit the gated observability counters once, after the
     fold, keeping the hottest loop of the read path free of global-ref
     loads. *)
  let rows, decodes, slow =
    Vnl_query.Table.fold_records table ~init:([], 0, 0)
      ~f:(fun (rows, decodes, slow) img off ->
        match Schema_ext.decode_visible ext ~session_vn img off with
        | Schema_ext.Visible base -> (base :: rows, decodes + 1, slow)
        | Schema_ext.Invisible -> (rows, decodes + 1, slow)
        | Schema_ext.Slow -> (
          match extract ext ~session_vn (Tuple.decode_from extended img off) with
          | Some base -> (base :: rows, decodes + 1, slow + 1)
          | None -> (rows, decodes + 1, slow + 1)))
  in
  Obs.Counter.record m_decodes decodes;
  Obs.Counter.record m_slow_decodes slow;
  List.rev rows

let expired_by_state ~session_vn ~current_vn ~maintenance_active =
  not
    (session_vn = current_vn
    || (session_vn = current_vn - 1 && not maintenance_active))
