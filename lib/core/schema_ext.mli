(** Schema extension for 2VNL and nVNL (§3.1, §5).

    For a base relation with attributes A = {A1..Ab} of which U = {U1..Uk}
    are updatable, the extended relation under nVNL is

    {v tupleVN, operation, A1..Ab,
      pre_U1..pre_Uk,                       (version slot 1)
      tupleVN2, operation2, pre2_U1..pre2_Uk,   (slot 2)
      ...
      tupleVN{n-1}, operation{n-1}, pre{n-1}_U1..  (slot n-1) v}

    With n = 2 this is exactly Figure 3's layout: [tupleVN] (4 bytes),
    [operation] (1 byte), the base attributes, and one pre-update copy of
    each updatable attribute.  Key attributes of the base schema remain the
    unique key of the extended relation, which is what lets maintenance
    detect the Table 2 key conflicts, and why indexes on the group-by
    attributes survive unchanged (§4.3). *)

type t

val extend : ?n:int -> Vnl_relation.Schema.t -> t
(** [extend ~n base] with [n >= 2] (default 2).  Raises [Invalid_argument]
    if [base] already contains reserved names ([tupleVN], [operation],
    [pre_*]). *)

val base : t -> Vnl_relation.Schema.t

val extended : t -> Vnl_relation.Schema.t

val n : t -> int
(** Number of logically available versions. *)

val slots : t -> int
(** [n - 1]: version slots physically stored per tuple. *)

val base_arity : t -> int

val updatable_count : t -> int

val tuple_vn_index : t -> slot:int -> int
(** Position of [tupleVN{slot}] in the extended schema; slots are 1-based
    (slot 1 is the most recent). *)

val operation_index : t -> slot:int -> int

val pre_index : t -> slot:int -> int -> int
(** [pre_index t ~slot j] is the position of the pre-update copy (in
    [slot]) of base attribute [j]; raises [Invalid_argument] if base
    attribute [j] is not updatable. *)

val base_index : t -> int -> int
(** Position of base attribute [j] in the extended schema. *)

val updatable_base_indices : t -> int list
(** Base positions of the updatable attributes. *)

val updatable_array : t -> int array
(** {!updatable_base_indices} as a precomputed array (rank order).  The
    caller must not mutate it. *)

val is_updatable : t -> int -> bool
(** O(1): is base position [j] an updatable attribute?  [false] for
    out-of-range positions. *)

val pre_indices : t -> slot:int -> int array
(** Precomputed extended positions of [slot]'s pre-update copies, indexed
    by updatable rank — [pre_indices t ~slot].(r) = {!pre_index} of the
    rank-r updatable attribute, without the per-call rank lookup.  The
    caller must not mutate the array. *)

val tuple_vn : t -> slot:int -> Vnl_relation.Tuple.t -> int option
(** The slot's version number, [None] when the slot is unused. *)

val operation : t -> slot:int -> Vnl_relation.Tuple.t -> Op.t
(** Raises [Invalid_argument] on an unused slot. *)

val fresh_insert : t -> vn:int -> Vnl_relation.Tuple.t -> Vnl_relation.Tuple.t
(** Extended tuple for a newly inserted base tuple: slot 1 = (vn, insert,
    null pre-values), all other slots unused. *)

val current_values : t -> Vnl_relation.Tuple.t -> Vnl_relation.Value.t list
(** The base-attribute values of the extended tuple (the current version's
    content). *)

val current_tuple : t -> Vnl_relation.Tuple.t -> Vnl_relation.Tuple.t
(** The current version as a base tuple — {!current_values} without list
    building or re-validation; the reader's per-tuple fast path. *)

val pre_update_tuple : t -> slot:int -> Vnl_relation.Tuple.t -> Vnl_relation.Tuple.t
(** The version a session older than [slot]'s VN must read: slot's
    pre-update copies for updatable attributes, current values elsewhere
    (non-updatable attributes cannot change). *)

type visibility =
  | Visible of Vnl_relation.Tuple.t  (** Current version, as a base tuple. *)
  | Invisible  (** Current version is a delete — not in the session's view. *)
  | Slow  (** Older version or unusual cell: use the full decode + classify. *)

val decode_visible : t -> session_vn:int -> bytes -> int -> visibility
(** [decode_visible t ~session_vn buf off] resolves visibility of the
    extended record at [off] straight from its bytes, decoding only the
    base attributes when the session reads the current version (the
    overwhelmingly common case).  Returns [Slow] — never raises — whenever
    the answer needs the real classification logic. *)

type raw_collectability =
  | Raw_collect  (** Expired delete: reclaimable at this horizon. *)
  | Raw_keep  (** Live, or a delete some session may still read. *)
  | Raw_unknown  (** Unusual cell: decide on the full decode. *)

val collectable_raw : t -> min_session_vn:int -> bytes -> int -> raw_collectability
(** [collectable_raw t ~min_session_vn buf off] decides GC collectability
    of the extended record at [off] straight from its bytes — slot 1's
    operation byte and version number sit at fixed offsets, so the
    overwhelmingly common live tuple costs one byte read instead of a
    full extended decode.  Never raises; [Raw_unknown] defers to the
    caller's decoded path (which owns the error messages). *)

(** {2 Schema evolution}

    An [ALTER TABLE ... ADD COLUMN] produces a new catalog generation whose
    extension appends the column (and, if updatable, its pre-update copies)
    after the old layout's cells.  A {!widening} is the precompiled
    per-position plan that carries a tuple — or a raw stored record — from
    the old generation's shape into the new one, filling added columns from
    their declared defaults. *)

val of_extended : n:int -> base_arity:int -> Vnl_relation.Schema.t -> t
(** Reconstruct the extension descriptor from a stored extended schema plus
    the persisted layout metadata ([n], base arity).  Raises
    [Invalid_argument] when the metadata does not reproduce the stored
    schema exactly (a corrupt or mismatched catalog generation). *)

type widening

val widening :
  from_:t -> to_:t -> defaults:(string * Vnl_relation.Value.t) list -> widening
(** Copy plan from generation [from_] to generation [to_].  Cells are
    matched by attribute name; an absent name takes its default from
    [defaults] (keyed by base attribute name) and anything else — e.g. the
    pre-update copies of an added updatable column — starts [Null]. *)

val widen : widening -> Vnl_relation.Tuple.t -> Vnl_relation.Tuple.t
(** Carry an old-generation {e extended} tuple into the new generation's
    extended shape, preserving version stamps and pre-update copies. *)

val decode_widened : widening -> bytes -> int -> Vnl_relation.Tuple.t
(** Decode a pre-evolution raw record through the new generation's schema:
    copied cells read at the old generation's byte offsets, added cells
    come from the defaults.  Equals [widen] of the old-generation decode. *)

val base_key_of : t -> Vnl_relation.Tuple.t -> Vnl_relation.Value.t list
(** Unique-key values of an extended tuple (positions translated from the
    base schema). *)

val width_overhead : t -> int
(** Extra bytes per tuple versus the base schema. *)

val overhead_ratio : t -> float
(** [width_overhead / base width] — Figure 3 reports ~20% for
    DailySales. *)

val is_extended_attribute : t -> string -> bool
(** Does the name denote one of the added bookkeeping attributes? *)

val tuple_vn_name : t -> slot:int -> string
(** Attribute name of the slot's version number: [tupleVN] for slot 1,
    [tupleVN{i}] beyond. *)

val operation_name : t -> slot:int -> string

val pre_name : t -> slot:int -> string -> string
(** Name of the pre-update copy of updatable base attribute [name] in
    [slot]: [pre_name] for slot 1, [pre{slot}_name] beyond. *)
