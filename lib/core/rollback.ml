module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Table = Vnl_query.Table

let revert_tuple ext table ~vn ~was_insert_over_delete rid =
  match Table.get table rid with
  | None -> ()
  | Some tuple -> (
    match Schema_ext.tuple_vn ext ~slot:1 tuple with
    | Some tvn when tvn = vn -> (
      let updatable = Schema_ext.updatable_base_indices ext in
      let op1 = Schema_ext.operation ext ~slot:1 tuple in
      let fresh_insert = op1 = Op.Insert && not was_insert_over_delete in
      if fresh_insert then Table.delete table rid
      else if Schema_ext.slots ext >= 2 then begin
        (* nVNL: restore the pushed-back history exactly.  Current values
           come back from this transaction's slot-1 pre-update copies
           (meaningless but harmless for an insert-over-delete, whose
           restored slot-1 operation is delete). *)
        let restore_current =
          match op1 with
          | Op.Update | Op.Delete ->
            List.map
              (fun j ->
                ( Schema_ext.base_index ext j,
                  Tuple.get tuple (Schema_ext.pre_index ext ~slot:1 j) ))
              updatable
          | Op.Insert -> []
        in
        let t = Tuple.set_many tuple restore_current in
        Table.update_in_place table rid (Maintenance.shift_forward ext t)
      end
      else begin
        (* Plain 2VNL: no second slot to restore from.  Stamp the tuple as a
           vn-1 modification whose current content is the pre-update state;
           every session that is still valid while this transaction runs
           (necessarily sessionVN = vn - 1) reads it correctly. *)
        match op1 with
        | Op.Insert ->
          (* Insert over a deleted key: re-mark deleted. *)
          Table.update_in_place table rid
            (Tuple.set_many tuple
               [
                 (Schema_ext.tuple_vn_index ext ~slot:1, Value.Int (vn - 1));
                 (Schema_ext.operation_index ext ~slot:1, Op.to_value Op.Delete);
               ])
        | Op.Update | Op.Delete ->
          let restore_current =
            List.map
              (fun j ->
                ( Schema_ext.base_index ext j,
                  Tuple.get tuple (Schema_ext.pre_index ext ~slot:1 j) ))
              updatable
          in
          Table.update_in_place table rid
            (Tuple.set_many tuple
               ((Schema_ext.tuple_vn_index ext ~slot:1, Value.Int (vn - 1))
               :: (Schema_ext.operation_index ext ~slot:1, Op.to_value Op.Update)
               :: restore_current))
      end)
    | Some _ | None -> ())

let revert_all ext table ~vn ~over_deleted =
  let touched = ref [] in
  Table.scan table (fun rid tuple ->
      match Schema_ext.tuple_vn ext ~slot:1 tuple with
      | Some tvn when tvn = vn -> touched := rid :: !touched
      | Some _ | None -> ());
  List.iter
    (fun rid -> revert_tuple ext table ~vn ~was_insert_over_delete:(over_deleted rid) rid)
    !touched;
  List.length !touched

(* Multi-VN repair for pipelined rounds: partitions are key-disjoint, so a
   tuple carries at most one unpublished VN in slot 1 — each touched tuple
   reverts independently at its own stamp, exactly as a single-VN abort
   would have. *)
let revert_above ext table ~current ~over_deleted =
  let touched = ref [] in
  Table.scan table (fun rid tuple ->
      match Schema_ext.tuple_vn ext ~slot:1 tuple with
      | Some tvn when tvn > current -> touched := (rid, tvn) :: !touched
      | Some _ | None -> ());
  List.iter
    (fun (rid, tvn) ->
      revert_tuple ext table ~vn:tvn ~was_insert_over_delete:(over_deleted rid) rid)
    !touched;
  List.length !touched
