(** Maintenance-transaction tuple operations (§3.3, Tables 2-4; §5).

    Given the maintenance transaction's [maintenanceVN] and a target tuple's
    [tupleVN]/[operation], each logical operation maps to a physical action
    that preserves the pre-update version(s):

    - {b Insert} (Table 2): no key conflict — physically insert a fresh
      extended tuple.  Conflict with an older-transaction tuple (necessarily
      logically deleted) — push back, null the slot-1 pre-values, overwrite
      the current values.  Conflict with a same-transaction delete — net
      effect update.
    - {b Update} (Table 3): older transaction — push back, copy current
      values into slot-1 pre-values, install the new values.  Same
      transaction — just overwrite current values (net effect per {!Op}).
    - {b Delete} (Table 4): older transaction — push back, copy current
      values to pre-values, mark operation delete (the tuple is {e not}
      physically deleted).  Same-transaction insert — physically delete;
      same-transaction update — mark delete.

    "Impossible" cells raise {!Op.Impossible}.  For nVNL, "push back" shifts
    every version slot down by one, discarding slot n-1. *)

type stats = {
  mutable logical_inserts : int;
  mutable logical_updates : int;
  mutable logical_deletes : int;
  mutable physical_inserts : int;
  mutable physical_updates : int;
  mutable physical_deletes : int;
}
(** Physical-vs-logical operation accounting for the experiments. *)

val fresh_stats : unit -> stats

val push_back : Schema_ext.t -> Vnl_relation.Tuple.t -> Vnl_relation.Tuple.t
(** Shift slots 1..n-2 into 2..n-1 (dropping the oldest); slot 1 is left for
    the caller to fill.  For 2VNL this just discards slot 1's bookkeeping. *)

(** {2 Pure tuple transitions}

    The Tables 2-4 state machine on in-memory record images, with no
    storage access.  The [apply_*] functions below wrap each transition
    with one table probe and one physical action; {!Batch.apply} folds a
    whole batch of logical operations through the same transitions and
    performs a single physical action per key — running identical code is
    what guarantees the two paths produce byte-identical records. *)

val insert_tuple :
  ?on_over_delete:(unit -> unit) ->
  ?own:bool ->
  Schema_ext.t ->
  vn:int ->
  Vnl_relation.Tuple.t option ->
  Vnl_relation.Tuple.t ->
  Vnl_relation.Tuple.t
(** [insert_tuple ext ~vn existing base] is the record image after logically
    inserting [base]: a fresh extended tuple when [existing] is [None]
    (Table 2 row 3), otherwise the Table 2 row 1/2 resolution against the
    conflicting image.  [on_over_delete] fires on row 1 (insert over an
    older transaction's logical delete).  [own] declares that the caller
    holds the sole reference to [existing], letting the transition mutate it
    instead of copying (the batch fold's repeated-key fast path); the result
    may then alias the input. *)

val update_tuple :
  ?own:bool ->
  Schema_ext.t ->
  vn:int ->
  Vnl_relation.Tuple.t ->
  (int * Vnl_relation.Value.t) list ->
  Vnl_relation.Tuple.t
(** Table 3 on a record image; assignments are by base position and may
    touch only updatable attributes.  [own] as in {!insert_tuple}. *)

val delete_tuple :
  ?insert_over_delete:bool ->
  ?own:bool ->
  Schema_ext.t ->
  vn:int ->
  Vnl_relation.Tuple.t ->
  Vnl_relation.Tuple.t option
(** Table 4 on a record image.  [None] means the record is physically
    deleted (same-transaction fresh insert); [insert_over_delete] marks a
    record this transaction re-inserted over an older logical delete, for
    which the row 2 correction restores the deleted state instead. *)

val apply_insert :
  ?stats:stats ->
  ?on_over_delete:(Vnl_storage.Heap_file.rid -> unit) ->
  Schema_ext.t ->
  Vnl_query.Table.t ->
  vn:int ->
  Vnl_relation.Tuple.t ->
  Vnl_storage.Heap_file.rid
(** Table 2 on a base tuple ([MV]); probes the unique key for conflicts when
    the schema has one.  Returns the rid holding the logical tuple.
    [on_over_delete] fires when the insert lands on a tuple logically
    deleted by an {e older} transaction (Table 2 row 1) — the bookkeeping
    no-log rollback needs. *)

val apply_update :
  ?stats:stats ->
  Schema_ext.t ->
  Vnl_query.Table.t ->
  vn:int ->
  Vnl_storage.Heap_file.rid ->
  (int * Vnl_relation.Value.t) list ->
  unit
(** Table 3 on the tuple at [rid]; the assignment list gives new values by
    {e base} attribute position and may touch only updatable attributes.
    Raises {!Op.Impossible} on a logically deleted target and
    [Invalid_argument] on non-updatable positions. *)

val apply_delete :
  ?stats:stats ->
  ?was_insert_over_delete:(Vnl_storage.Heap_file.rid -> bool) ->
  Schema_ext.t ->
  Vnl_query.Table.t ->
  vn:int ->
  Vnl_storage.Heap_file.rid ->
  unit
(** Table 4 on the tuple at [rid].  [was_insert_over_delete] (default
    everywhere-false) marks tuples this transaction re-inserted over a
    logically deleted key; deleting such a tuple restores the deleted
    marker instead of physically removing the record, because the record
    still carries pre-update history (a correction to the paper's row 2,
    which assumes the insert was fresh). *)

val shift_forward : Schema_ext.t -> Vnl_relation.Tuple.t -> Vnl_relation.Tuple.t
(** Inverse of {!push_back}: shift slots 2..n-1 into 1..n-2 and empty the
    last slot.  Exact for every session inside the version window. *)

val is_logically_live : Schema_ext.t -> Vnl_relation.Tuple.t -> bool
(** Current version exists (operation of slot 1 is not delete); what a
    maintenance read sees, per the first row of Table 1. *)
