module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Dtype = Vnl_relation.Dtype
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Heap_file = Vnl_storage.Heap_file

let table_name = "Version"

let schema =
  Schema.make
    [ Schema.attr "currentVN" Dtype.Int; Schema.attr "maintenanceActive" Dtype.Bool ]

(* The stored tuple stays authoritative (it is what survives a crash and
   what the §4.1 SQL rewrite joins against), but reads go through [cache]:
   an [Atomic] holding the last written (currentVN, outstanding) pair.
   Reader domains check session validity on every query — routing that
   read through the buffer pool would both serialize readers on the pool
   mutex and perturb the I/O counters experiments compare — while the
   maintenance side updates the tuple and then publishes the cache (boxed
   pair: one atomic store, never a torn pair).

   [outstanding] generalizes the paper's boolean [maintenanceActive] to
   the pipelined nVNL round: it counts maintenance VNs begun but not yet
   published (the classic single transaction is a round of one, so the
   counter is 0 or 1 there).  The {e stored} attribute keeps the paper's
   Bool layout — [outstanding > 0] — so the disk format, [attach], and the
   SQL rewrite are unchanged; after a crash the exact count is
   unrecoverable and unnecessary, since §7 repair reverts {e every} tuple
   stamped above the stored currentVN. *)
type t = { table : Table.t; rid : Heap_file.rid; cache : (int * int) Atomic.t }

let install db =
  let table = Database.create_table db table_name schema in
  let rid = Table.insert table (Tuple.make schema [ Value.Int 1; Value.Bool false ]) in
  { table; rid; cache = Atomic.make (1, 0) }

let read_stored table rid =
  match Table.get table rid with
  | Some tuple -> (
    match (Tuple.get tuple 0, Tuple.get tuple 1) with
    | Value.Int vn, Value.Bool active -> (vn, if active then 1 else 0)
    | _ -> invalid_arg "Version_state: corrupt Version tuple")
  | None -> invalid_arg "Version_state: Version tuple missing"

let attach db =
  match Database.table db table_name with
  | None -> failwith "Version_state.attach: no Version relation"
  | Some table -> (
    match Table.to_list table with
    | [ (rid, _) ] -> { table; rid; cache = Atomic.make (read_stored table rid) }
    | _ -> failwith "Version_state.attach: Version relation must hold exactly one tuple")

let read t =
  Vnl_util.Sched.yield ();
  let vn, outstanding = Atomic.get t.cache in
  (vn, outstanding > 0)

let read_outstanding t =
  Vnl_util.Sched.yield ();
  Atomic.get t.cache

let write t vn outstanding =
  Vnl_util.Sched.yield ();
  Table.update_in_place t.table t.rid
    (Tuple.make schema [ Value.Int vn; Value.Bool (outstanding > 0) ]);
  (* Publish after the tuple write: a concurrent reader sees the new state
     no earlier than the stored tuple does. *)
  Atomic.set t.cache (vn, outstanding)

let storage_page t = t.rid.Heap_file.page

let current_vn t = fst (read t)

let maintenance_active t = snd (read t)

let outstanding t = snd (read_outstanding t)

let begin_round t ~count =
  if count < 1 then invalid_arg "Version_state.begin_round: count must be >= 1";
  let vn, o = read_outstanding t in
  if o > 0 then invalid_arg "Version_state: a maintenance transaction is already active";
  write t vn count;
  vn

let publish t ~vn =
  let current, o = read_outstanding t in
  if o = 0 then invalid_arg "Version_state: no active maintenance transaction";
  if vn <> current + 1 then
    invalid_arg
      (Printf.sprintf "Version_state: commit vn %d does not follow currentVN %d" vn current);
  write t vn (o - 1)

let begin_maintenance t = 1 + begin_round t ~count:1

let commit_maintenance t ~vn = publish t ~vn

let abort_maintenance t =
  let current, o = read_outstanding t in
  if o = 0 then invalid_arg "Version_state: no active maintenance transaction";
  write t current 0
