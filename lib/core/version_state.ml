module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Dtype = Vnl_relation.Dtype
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Heap_file = Vnl_storage.Heap_file

let table_name = "Version"

let schema =
  Schema.make
    [ Schema.attr "currentVN" Dtype.Int; Schema.attr "maintenanceActive" Dtype.Bool ]

(* The stored tuple stays authoritative (it is what survives a crash and
   what the §4.1 SQL rewrite joins against), but reads go through [cache]:
   an [Atomic] holding the last written (currentVN, maintenanceActive)
   pair.  Reader domains check session validity on every query — routing
   that read through the buffer pool would both serialize readers on the
   pool mutex and perturb the I/O counters experiments compare — while
   the single maintenance domain updates the tuple and then publishes the
   cache (boxed pair: one atomic store, never a torn pair). *)
type t = { table : Table.t; rid : Heap_file.rid; cache : (int * bool) Atomic.t }

let install db =
  let table = Database.create_table db table_name schema in
  let rid = Table.insert table (Tuple.make schema [ Value.Int 1; Value.Bool false ]) in
  { table; rid; cache = Atomic.make (1, false) }

let read_stored table rid =
  match Table.get table rid with
  | Some tuple -> (
    match (Tuple.get tuple 0, Tuple.get tuple 1) with
    | Value.Int vn, Value.Bool active -> (vn, active)
    | _ -> invalid_arg "Version_state: corrupt Version tuple")
  | None -> invalid_arg "Version_state: Version tuple missing"

let attach db =
  match Database.table db table_name with
  | None -> failwith "Version_state.attach: no Version relation"
  | Some table -> (
    match Table.to_list table with
    | [ (rid, _) ] -> { table; rid; cache = Atomic.make (read_stored table rid) }
    | _ -> failwith "Version_state.attach: Version relation must hold exactly one tuple")

let read t =
  Vnl_util.Sched.yield ();
  Atomic.get t.cache

let write t vn active =
  Vnl_util.Sched.yield ();
  Table.update_in_place t.table t.rid
    (Tuple.make schema [ Value.Int vn; Value.Bool active ]);
  (* Publish after the tuple write: a concurrent reader sees the new state
     no earlier than the stored tuple does. *)
  Atomic.set t.cache (vn, active)

let current_vn t = fst (read t)

let maintenance_active t = snd (read t)

let begin_maintenance t =
  let vn, active = read t in
  if active then invalid_arg "Version_state: a maintenance transaction is already active";
  write t vn true;
  vn + 1

let commit_maintenance t ~vn =
  let current, active = read t in
  if not active then invalid_arg "Version_state: no active maintenance transaction";
  if vn <> current + 1 then
    invalid_arg
      (Printf.sprintf "Version_state: commit vn %d does not follow currentVN %d" vn current);
  write t vn false

let abort_maintenance t =
  let current, active = read t in
  if not active then invalid_arg "Version_state: no active maintenance transaction";
  write t current false
