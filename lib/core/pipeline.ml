module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Buffer_pool = Vnl_storage.Buffer_pool
module Disk = Vnl_storage.Disk
module Heap_file = Vnl_storage.Heap_file
module Sched = Vnl_util.Sched
module Domain_pool = Vnl_util.Domain_pool
module Obs = Vnl_obs.Obs

let log_src = Logs.Src.create "vnl.pipeline" ~doc:"pipelined maintenance rounds"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_rounds = Obs.Registry.counter "pipeline.rounds"

let m_stripes = Obs.Registry.counter "pipeline.stripes"

(* Round.abort itself failing while handling a primary failure: the
   primary exception still propagates, but the repair did not land — the
   warehouse may need a reopen.  Loud in the log, countable here. *)
let m_abort_failures = Obs.Registry.counter "pipeline.abort_failures"

(* Load imbalance across a round's stripes: largest stripe's operation
   count over the mean.  1.0 is a perfectly even split; a heavy tail here
   means partition merging (shared keys or index footprints) is
   serializing the round. *)
let m_skew =
  Obs.Registry.histogram
    ~buckets:[| 1.0; 1.25; 1.5; 2.0; 3.0; 5.0; 10.0 |]
    "pipeline.partition_skew"

type stripe = {
  vn : int;
  parts : (Twovnl.handle * Sched_batch.partition) list;
  stats : Maintenance.stats;
  mutable staged : (Twovnl.handle * Batch.staged) list;
      (** Filled by this stripe's worker during the fold phase. *)
}

type resolver =
  Vnl_relation.Value.t list -> (Heap_file.rid * Vnl_relation.Tuple.t) option

type phase = [ `Fold | `Apply | `Token ]

type plan = {
  on_phase : (phase -> stripe:int -> unit) option;
      (** Deterministic fault-injection hook: called at the start of every
          stripe phase; raising aborts the round exactly as a worker
          failure at that point would. *)
  owner : Twovnl.t;
  round : Twovnl.Round.r;
  stripes : stripe array;
  resolvers : (string * resolver) list;
      (** Pre-round key lookups by relation, replayed into {!Batch.stage}
          so stripes skip the second index pass. *)
  prenetted : bool;
      (** The caller promised one operation per key (see {!Batch.stage}). *)
  partition_counts : (string * int) list;
  tables : Twovnl.handle array;
  page_counts : int array;
      (** Per-[tables] heap page counts as last made durable; compared and
          updated only inside token sections, so plain mutation is safe. *)
  staged_done : int Atomic.t;
  published : int Atomic.t;
  failure : exn option Atomic.t;
  mu : Mutex.t;
  progress : Condition.t;
      (** Broadcast (under [mu]) whenever [staged_done], [published], or
          [failure] advances, so waiting workers park on the OS instead of
          spinning a core the working stripe needs. *)
}

type report = {
  stripes : int;
  base_vn : int;
  partition_counts : (string * int) list;
  outcomes : (string * Batch.outcome) list;
}

let min_n t =
  List.fold_left (fun acc h -> min acc (Schema_ext.n (Twovnl.ext h))) max_int (Twovnl.handles t)
  |> fun n -> if n = max_int then 2 else n

(* Abort the round's unpublished suffix on behalf of a failure we are
   about to re-raise.  The abort's own failure must stay subordinate to
   the primary error — but not silently ([m_abort_failures] + log), and
   never by swallowing an asynchronous fatal ([Out_of_memory] /
   [Stack_overflow]), which would hide that the process heap is gone. *)
let abort_subordinate ?(save = false) t round context =
  try
    ignore (Twovnl.Round.abort round);
    if save then Database.save (Twovnl.database t)
  with
  | (Out_of_memory | Stack_overflow) as fatal -> raise fatal
  | secondary ->
    Obs.Counter.record m_abort_failures 1;
    Log.err (fun m ->
        m "round abort failed while handling %s: %s" context (Printexc.to_string secondary))

let plan ?on_phase ?(resolvers = []) ?(prenetted = false) t ~workers per_table =
  if workers < 1 then invalid_arg "Pipeline.plan: workers must be >= 1";
  Obs.with_span "pipeline.plan" @@ fun () ->
  let handles =
    (* Pad short inserts (view templates frozen before an add_column) up
       front, so partitioning and staging see full-arity tuples. *)
    List.map
      (fun (name, ops) ->
        let h = Twovnl.handle_exn t name in
        (h, Twovnl.pad_ops h ops))
      per_table
  in
  (* nVNL sizing (§5): a round of c stripes keeps c VNs outstanding, and
     only n >= c + 1 lets a session opened at round begin stay valid to
     round end — so the stripe count is capped at min(workers, n - 1)
     rather than silently expiring every reader each round. *)
  let cap = max 1 (min workers (min_n t - 1)) in
  let parted =
    Obs.with_span "pipeline.partition" (fun () ->
        List.map
          (fun (h, ops) ->
            (h, Sched_batch.partition (Twovnl.ext h) (Twovnl.table h) ~max_parts:cap ops))
          handles)
  in
  let count = List.fold_left (fun acc (_, ps) -> max acc (List.length ps)) 1 parted in
  let total_ops =
    List.fold_left
      (fun acc (_, ps) ->
        List.fold_left (fun a p -> a + p.Sched_batch.op_count) acc ps)
      0 parted
  in
  let stripe_ops i =
    List.fold_left
      (fun acc (_, ps) ->
        match List.nth_opt ps i with Some p -> acc + p.Sched_batch.op_count | None -> acc)
      0 parted
  in
  if total_ops > 0 then begin
    let heaviest = ref 0 in
    for i = 0 to count - 1 do
      heaviest := max !heaviest (stripe_ops i)
    done;
    Obs.Histogram.observe m_skew
      (float_of_int (!heaviest * count) /. float_of_int total_ops)
  end;
  Obs.Counter.record m_rounds 1;
  Obs.Counter.record m_stripes count;
  let round = Twovnl.Round.begin_ t ~count in
  (* §7 durability point 1 (see {!Recovery.run_maintenance}): the raised
     flag and current catalog reach disk before any worker writes a
     tuple. *)
  (try Obs.with_span "maintenance.flag" (fun () -> Database.save (Twovnl.database t))
   with e ->
     abort_subordinate t round "the flag save";
     raise e);
  let stripes =
    Array.init count (fun i ->
        let parts =
          List.filter_map (fun (h, ps) -> Option.map (fun p -> (h, p)) (List.nth_opt ps i)) parted
        in
        { vn = Twovnl.Round.vn round i; parts; stats = Maintenance.fresh_stats (); staged = [] })
  in
  Log.info (fun m ->
      m "pipelined round planned: %d stripes, %d logical ops, VNs %d..%d" count total_ops
        (Twovnl.Round.vn round 0)
        (Twovnl.Round.vn round (count - 1)));
  {
    on_phase;
    owner = t;
    round;
    stripes;
    resolvers;
    prenetted;
    partition_counts = List.map (fun (h, ps) -> (Twovnl.handle_name h, List.length ps)) parted;
    tables = Array.of_list (List.map fst handles);
    page_counts =
      Array.of_list (List.map (fun (h, _) -> Table.page_count (Twovnl.table h)) handles);
    staged_done = Atomic.make 0;
    published = Atomic.make 0;
    failure = Atomic.make None;
    mu = Mutex.create ();
    progress = Condition.create ();
  }

let stripe_count (p : plan) = Array.length p.stripes

let stripe_ops (p : plan) =
  Array.to_list
    (Array.map
       (fun s ->
         ( s.vn,
           List.map (fun (h, part) -> (Twovnl.handle_name h, part.Sched_batch.ops)) s.parts ))
       p.stripes)

let failed (p : plan) = Option.is_some (Atomic.get p.failure)

let published (p : plan) = Atomic.get p.published

let enter_phase (p : plan) phase i =
  match p.on_phase with None -> () | Some f -> f phase ~stripe:i

(* Advance a progress atomic and wake every parked waiter.  The update
   happens under [mu] so a waiter cannot re-check its predicate between
   the update and the broadcast and then sleep through the wakeup. *)
let signal (p : plan) advance =
  Mutex.lock p.mu;
  advance ();
  Condition.broadcast p.progress;
  Mutex.unlock p.mu

let record_failure (p : plan) e =
  signal p (fun () -> ignore (Atomic.compare_and_set p.failure None (Some e)))

let pages_of rids = List.map (fun (r : Heap_file.rid) -> r.Heap_file.page) rids

(* One stripe's worker, from fold to publish.  The phases:

   1. fold: stage the stripe's partitions — index probes and record
      fetches against the {e pre-round} state (all workers fold before any
      applies, enforced by the barrier; key-disjoint partitions make the
      pre-round reads exact regardless of the other stripes' later
      writes).  Reads race only reads, which the optimistic page path and
      the immutable-during-phase B+-tree support.
   2. apply: in-place updates, concurrently across workers.  Safe because
      partitions are key-disjoint (no shared rid), updates never move
      slots or touch the unique index, and the partitioner merged any two
      partitions whose updates share a secondary index.
   3. token (strictly in stripe order): structural deletes/inserts (slot
      and unique-index mutations — serialized, so slot assignment is
      byte-identical to the serial reference), then the stripe's §7
      durability ladder: targeted flush of every page it wrote, catalog
      save when a heap grew, VN publish, flush of the Version page. *)
let fold_stripe (p : plan) i =
  let stripe = p.stripes.(i) in
  enter_phase p `Fold i;
  Obs.with_span "pipeline.fold" (fun () ->
      stripe.staged <-
        List.map
          (fun (h, part) ->
            let name = Twovnl.handle_name h in
            let s =
              Batch.stage ~stats:stripe.stats
                ?resolve:(List.assoc_opt name p.resolvers)
                ~prenetted:p.prenetted
                ~on_over_delete:(fun rid -> Twovnl.Round.record_over_delete p.round name rid)
                ~was_insert_over_delete:(fun rid ->
                  Twovnl.Round.was_insert_over_delete p.round name rid)
                (Twovnl.ext h) (Twovnl.table h) ~vn:stripe.vn part.Sched_batch.ops
            in
            (h, s))
          stripe.parts;
      signal p (fun () -> Atomic.incr p.staged_done))

let apply_stripe (p : plan) i =
  let stripe = p.stripes.(i) in
  enter_phase p `Apply i;
  Obs.with_span "pipeline.apply" (fun () ->
      List.concat_map
        (fun (h, s) -> pages_of (Batch.apply_updates ~stats:stripe.stats (Twovnl.table h) s))
        stripe.staged)

let token_stripe (p : plan) i update_pages =
  let stripe = p.stripes.(i) in
  enter_phase p `Token i;
  let t = p.owner in
  let db = Twovnl.database t in
  let pool = Database.pool db in
  Obs.with_span "pipeline.token" (fun () ->
      let structural_pages =
        List.concat_map
          (fun (h, s) ->
            pages_of (Batch.apply_structural ~stats:stripe.stats (Twovnl.table h) s))
          stripe.staged
      in
      (* Data pages durable before the catalog names any new ones, catalog
         durable before the publish — per stripe. *)
      Buffer_pool.flush_pages pool
        (List.sort_uniq Int.compare (update_pages @ structural_pages));
      let grew = ref false in
      Array.iteri
        (fun j h ->
          let pc = Table.page_count (Twovnl.table h) in
          if pc <> p.page_counts.(j) then begin
            p.page_counts.(j) <- pc;
            grew := true
          end)
        p.tables;
      if !grew then Database.save ~mode:`Catalog_only db;
      Twovnl.Round.publish p.round ~vn:stripe.vn;
      Buffer_pool.flush_pages pool [ Version_state.storage_page (Twovnl.version_state t) ];
      signal p (fun () -> Atomic.incr p.published))

let worker (p : plan) i =
  (* Under the deterministic scheduler every stripe is a fiber on one
     domain: waiting must stay a pure [Sched.yield] spin (blocking on a
     condition would deadlock the only domain).  On real domains a brief
     spin catches the common hand-off, then the worker parks on
     [progress] — with more worker domains than cores (always, on the
     single-core CI box) a spinner would burn the timeslice the working
     stripe needs, and a poll-sleep pays its wakeup quantum at every
     phase boundary. *)
  let await ~until =
    if Sched.driving () then
      while not (until ()) && not (failed p) do
        Sched.yield ()
      done
    else begin
      let spins = ref 0 in
      while not (until ()) && not (failed p) && !spins < 200 do
        incr spins;
        Domain.cpu_relax ()
      done;
      if not (until ()) && not (failed p) then begin
        Mutex.lock p.mu;
        while not (until ()) && not (failed p) do
          Condition.wait p.progress p.mu
        done;
        Mutex.unlock p.mu
      end
    end
  in
  try
    fold_stripe p i;
    await ~until:(fun () -> Atomic.get p.staged_done >= Array.length p.stripes);
    if not (failed p) then begin
      let update_pages = apply_stripe p i in
      Obs.with_span "pipeline.publish_wait" (fun () ->
          await ~until:(fun () -> Atomic.get p.published >= i));
      if not (failed p) then token_stripe p i update_pages
    end
  with e -> record_failure p e

(* Canonical in-order schedule of the same task system, on the calling
   domain alone: every stripe folds (all against the pre-round state),
   then each stripe applies and runs its token section in stripe order.
   Byte-identical writes and the identical publish order — it is one of
   the schedules the barrier/token protocol admits — without any
   cross-domain coordination.  [run] picks it when the hardware has no
   parallelism to offer: with more worker domains than cores the domain
   path only adds handoff latency and stop-the-world pauses. *)
let run_sequential (p : plan) =
  try
    Array.iteri (fun i _ -> if not (failed p) then fold_stripe p i) p.stripes;
    Array.iteri
      (fun i _ ->
        if not (failed p) then begin
          let update_pages = apply_stripe p i in
          if not (failed p) then token_stripe p i update_pages
        end)
      p.stripes
  with e -> record_failure p e

let add_outcome (a : Batch.outcome) (b : Batch.outcome) =
  {
    Batch.logical_ops = a.Batch.logical_ops + b.Batch.logical_ops;
    distinct_keys = a.Batch.distinct_keys + b.Batch.distinct_keys;
    folded_ops = a.Batch.folded_ops + b.Batch.folded_ops;
    physical_inserts = a.Batch.physical_inserts + b.Batch.physical_inserts;
    physical_updates = a.Batch.physical_updates + b.Batch.physical_updates;
    physical_deletes = a.Batch.physical_deletes + b.Batch.physical_deletes;
  }

let zero_outcome =
  {
    Batch.logical_ops = 0;
    distinct_keys = 0;
    folded_ops = 0;
    physical_inserts = 0;
    physical_updates = 0;
    physical_deletes = 0;
  }

let finish (p : plan) =
  match Atomic.get p.failure with
  | Some e ->
    (match e with
    | Disk.Crash _ ->
      (* The disk is gone; repair belongs to {!Recovery.reopen}, which
         reverts everything above the last durably published VN. *)
      ()
    | _ ->
      (* Live failure: revert the unpublished suffix (the published prefix
         is exactly what a shorter round would have committed) and make the
         repair durable so a later crash cannot resurrect the stamps. *)
      abort_subordinate ~save:true p.owner p.round "a worker failure");
    raise e
  | None ->
    if Atomic.get p.published <> Array.length p.stripes then
      failwith "Pipeline.finish: round incomplete without a recorded failure";
    let outcomes =
      Array.to_list p.tables
      |> List.map (fun h ->
             let name = Twovnl.handle_name h in
             let total =
               Array.fold_left
                 (fun acc stripe ->
                   List.fold_left
                     (fun acc (h', s) ->
                       if Twovnl.handle_name h' = name then
                         add_outcome acc (Batch.staged_outcome s)
                       else acc)
                     acc stripe.staged)
                 zero_outcome p.stripes
             in
             (name, total))
    in
    {
      stripes = Array.length p.stripes;
      base_vn = Twovnl.Round.base_vn p.round;
      partition_counts = p.partition_counts;
      outcomes;
    }

let tasks (p : plan) =
  Array.to_list
    (Array.mapi (fun i _ -> (Printf.sprintf "stripe-%d" i, fun () -> worker p i)) p.stripes)

(* Worker domains are reused across rounds: spawning and joining domains
   costs milliseconds per round — more than a round's useful work — so
   [run] draws on a process-wide pool, grown when a wider round appears.
   Only one round can be active at a time (maintenance is exclusive), so a
   single shared pool suffices; parked helpers never hold work and do not
   block process exit. *)
let pool_mu = Mutex.create ()

let pool : Domain_pool.Persistent.t option ref = ref None

let get_pool domains =
  Mutex.protect pool_mu (fun () ->
      match !pool with
      | Some q when Domain_pool.Persistent.size q >= domains -> q
      | prev ->
        (match prev with Some q -> Domain_pool.Persistent.shutdown q | None -> ());
        let q = Domain_pool.Persistent.create ~domains in
        pool := Some q;
        q)

let run (p : plan) =
  Obs.with_span "pipeline.round" @@ fun () ->
  (match Array.length p.stripes with
  | 1 ->
    (* A single stripe needs no second domain (and keeps the degenerate
       case on the calling domain, where the deterministic scheduler can
       see it). *)
    worker p 0
  | _ when Domain.recommended_domain_count () <= 1 -> run_sequential p
  | c -> Domain_pool.Persistent.parallel (get_pool c) ~domains:c (worker p));
  finish p
