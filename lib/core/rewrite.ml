module Ast = Vnl_sql.Ast
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Executor = Vnl_query.Executor
module Dml = Vnl_query.Dml
module Eval = Vnl_query.Eval

exception Unsupported of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let session_param = Ast.Param "sessionVN"

let qcol qualifier name = Ast.Col (qualifier, name)

let and_all = function
  | [] -> Ast.Lit (Value.Bool true)
  | c :: cs -> List.fold_left (fun acc c -> Ast.Binop (Ast.And, acc, c)) c cs

let or_all = function
  | [] -> Ast.Lit (Value.Bool false)
  | c :: cs -> List.fold_left (fun acc c -> Ast.Binop (Ast.Or, acc, c)) c cs

(* The visibility predicate.  For n = 2 this is exactly the paper's
   Example 4.1 form:

     (:sessionVN >= tupleVN AND operation <> 'd')
     OR (:sessionVN < tupleVN AND operation <> 'i')

   For n > 2 (a generalization the paper calls straightforward but does not
   spell out, §5) a pre-update disjunct is emitted per slot j: the slot
   governs when the session is below every newer slot's version and either
   slot j+1 is unused or the session is at or above its version; the last
   slot additionally requires sessionVN >= tupleVN{n-1} - 1 — rows past that
   belong to expired sessions, which the global §4.1 check rejects anyway. *)
let visibility_predicate ~qualifier ext =
  let vn j = qcol qualifier (Schema_ext.tuple_vn_name ext ~slot:j) in
  let op j = qcol qualifier (Schema_ext.operation_name ext ~slot:j) in
  let s = session_param in
  let nslots = Schema_ext.slots ext in
  let current =
    Ast.Binop
      ( Ast.And,
        Ast.Binop (Ast.Ge, s, vn 1),
        Ast.Binop (Ast.Neq, op 1, Ast.Lit (Value.Str "d")) )
  in
  let pre_disjunct j =
    let newer = List.init j (fun i -> Ast.Binop (Ast.Lt, s, vn (i + 1))) in
    let lower =
      if j < nslots then
        [
          Ast.Binop
            ( Ast.Or,
              Ast.Is_null (vn (j + 1)),
              Ast.Binop (Ast.Ge, s, vn (j + 1)) );
        ]
      else if j = 1 then
        (* Plain 2VNL: match the paper's predicate exactly; per-tuple expiry
           is left to the global check. *)
        []
      else [ Ast.Binop (Ast.Ge, s, Ast.Binop (Ast.Sub, vn j, Ast.Lit (Value.Int 1))) ]
    in
    and_all (newer @ lower @ [ Ast.Binop (Ast.Neq, op j, Ast.Lit (Value.Str "i")) ])
  in
  or_all (current :: List.init nslots (fun j -> pre_disjunct (j + 1)))

(* The CASE expression substituted for an updatable attribute reference.
   n = 2 degenerates to the paper's

     CASE WHEN :sessionVN >= tupleVN THEN a ELSE pre_a END

   and each extra version slot adds one WHEN arm selecting that slot's
   pre-update copy when it is the governing slot. *)
let case_for_attribute ~qualifier ext name =
  let vn j = qcol qualifier (Schema_ext.tuple_vn_name ext ~slot:j) in
  let s = session_param in
  let nslots = Schema_ext.slots ext in
  let arms =
    (Ast.Binop (Ast.Ge, s, vn 1), qcol qualifier name)
    :: List.filter_map
         (fun j ->
           if j = nslots then None
           else
             Some
               ( Ast.Binop
                   ( Ast.Or,
                     Ast.Is_null (vn (j + 1)),
                     Ast.Binop (Ast.Ge, s, vn (j + 1)) ),
                 qcol qualifier (Schema_ext.pre_name ext ~slot:j name) ))
         (List.init nslots (fun j -> j + 1))
  in
  Ast.Case (arms, Some (qcol qualifier (Schema_ext.pre_name ext ~slot:nslots name)))

(* FROM entries that are 2VNL-extended, with the label their columns are
   qualified by. *)
let extended_tables ~lookup (s : Ast.select) =
  List.filter_map
    (fun (table, alias) ->
      match lookup table with
      | None -> None
      | Some ext ->
        let label = match alias with Some a -> a | None -> table in
        Some (label, alias <> None, ext))
    s.Ast.from

let updatable_names ext =
  List.map
    (fun j -> (Schema.attribute (Schema_ext.base ext) j).Schema.name)
    (Schema_ext.updatable_base_indices ext)

let reader_select ~lookup (s : Ast.select) =
  let tables = extended_tables ~lookup s in
  if tables = [] then s
  else begin
    let multi = List.length s.Ast.from > 1 in
    (* Substitute CASE expressions for updatable-attribute references. *)
    let substitute expr =
      Ast.map_columns
        (fun q name ->
          let owner =
            List.find_opt
              (fun (label, _, ext) ->
                (match q with Some q -> String.equal q label | None -> true)
                && List.mem name (updatable_names ext))
              tables
          in
          match owner with
          | Some (label, _, ext) ->
            let qualifier = if multi || q <> None then Some label else None in
            case_for_attribute ~qualifier ext name
          | None -> Ast.Col (q, name))
        expr
    in
    (* SELECT * means the *base* schema to a 2VNL reader: expand it to the
       base attributes, substituting CASE for the updatable ones, so the
       bookkeeping columns stay hidden. *)
    let star_expansion () =
      List.concat_map
        (fun (table, alias) ->
          match lookup table with
          | None ->
            fail "SELECT * mixing extended and plain tables is not rewritable"
          | Some ext ->
            let label = match alias with Some a -> a | None -> table in
            let qualifier = if multi || alias <> None then Some label else None in
            List.map
              (fun a ->
                let name = a.Vnl_relation.Schema.name in
                let e =
                  if List.mem name (updatable_names ext) then
                    case_for_attribute ~qualifier ext name
                  else Ast.Col (qualifier, name)
                in
                Ast.Item (e, Some name))
              (Schema.attributes (Schema_ext.base ext)))
        s.Ast.from
    in
    let sub_item = function
      | Ast.Star -> star_expansion ()
      | Ast.Item (e, alias) -> [ Ast.Item (substitute e, alias) ]
    in
    let where =
      List.fold_left
        (fun acc (label, aliased, ext) ->
          let qualifier = if multi || aliased then Some label else None in
          Some (Ast.conj acc (visibility_predicate ~qualifier ext)))
        (Option.map substitute s.Ast.where)
        tables
    in
    {
      s with
      Ast.items = List.concat_map sub_item s.Ast.items;
      where;
      group_by = List.map substitute s.Ast.group_by;
      having = Option.map substitute s.Ast.having;
      order_by = List.map (fun (e, d) -> (substitute e, d)) s.Ast.order_by;
    }
  end

(* §4.1 fast-path recognition: a SELECT a 2VNL reader can answer by
   engine-level extraction ({!Reader.extract}) instead of the CASE +
   visibility-predicate rewrite.  Recognized shape: a single registered
   FROM table with every column reference resolving in its base schema.
   For such a query the rewrite changes exactly what extract computes
   tuple-by-tuple — CASE-selected attribute versions plus the visibility
   test — so running the original query over the extracted relation is
   equivalent (the engine/SQL equivalence the property tests assert). *)
let reader_fast_path ~lookup (s : Ast.select) =
  match s.Ast.from with
  | [ (table, alias) ] -> (
    match lookup table with
    | None -> None
    | Some ext ->
      let label = match alias with Some a -> a | None -> table in
      let base = Schema_ext.base ext in
      let col_ok (q, name) =
        (match q with None -> true | Some q -> String.equal q label)
        && Schema.mem base name
      in
      let expr_ok e = List.for_all col_ok (Ast.columns_of e) in
      let item_ok = function Ast.Star -> true | Ast.Item (e, _) -> expr_ok e in
      let opt_ok = function None -> true | Some e -> expr_ok e in
      if
        List.for_all item_ok s.Ast.items
        && opt_ok s.Ast.where
        && List.for_all expr_ok s.Ast.group_by
        && opt_ok s.Ast.having
        && List.for_all (fun (e, _) -> expr_ok e) s.Ast.order_by
      then Some (table, label)
      else None)
  | _ -> None

let reader_sql ~lookup src =
  let s = Vnl_sql.Parser.parse_select src in
  Vnl_sql.Pp.statement_to_string (Ast.Select (reader_select ~lookup s))

let session_valid db ~session_vn =
  let r =
    Executor.query_string db
      ~params:[ ("sessionVN", Value.Int session_vn) ]
      "SELECT COUNT(*) FROM Version WHERE currentVN = :sessionVN \
       OR (currentVN = :sessionVN + 1 AND maintenanceActive = FALSE)"
  in
  match r.Executor.rows with
  | [ [ Value.Int n ] ] -> n > 0
  | _ -> invalid_arg "Rewrite.session_valid: unexpected Version relation shape"

(* Maintenance cursors: rids of logically live tuples matching a base-schema
   predicate evaluated over current values. *)
let live_matching db ext table where =
  let tbl = Database.table_exn db table in
  let schema = Table.schema tbl in
  let acc = ref [] in
  Table.scan tbl (fun rid tuple ->
      if Maintenance.is_logically_live ext tuple then
        let keep =
          match where with
          | None -> true
          | Some pred -> Eval.eval_pred (Dml.env_for_tuple schema tuple) pred
        in
        if keep then acc := rid :: !acc);
  List.rev !acc

let ext_of ~lookup table =
  match lookup table with
  | Some ext -> ext
  | None -> fail "table %s is not registered for 2VNL maintenance" table

let maintenance_statement ?stats ?on_over_delete ?was_insert_over_delete db ~lookup ~vn
    (stmt : Ast.statement) =
  match stmt with
  | Ast.Select _ -> fail "maintenance transactions issue DML, not queries"
  | Ast.Insert { table; columns; rows } ->
    let ext = ext_of ~lookup table in
    let base = Schema_ext.base ext in
    let tbl = Database.table_exn db table in
    let env = { Eval.resolve = Eval.no_columns; params = [] } in
    let build row_exprs =
      match columns with
      | None ->
        if List.length row_exprs <> Schema.arity base then
          fail "INSERT into %s: expected %d values" table (Schema.arity base);
        Tuple.make base (List.map (Eval.eval env) row_exprs)
      | Some cols ->
        let assignments =
          List.map2 (fun col e -> (Schema.index_of base col, Eval.eval env e)) cols row_exprs
        in
        Tuple.of_array base
          (Array.init (Schema.arity base) (fun i ->
               match List.assoc_opt i assignments with Some v -> v | None -> Value.Null))
    in
    List.iter
      (fun row -> ignore (Maintenance.apply_insert ?stats ?on_over_delete ext tbl ~vn (build row)))
      rows;
    List.length rows
  | Ast.Update { table; sets; where } ->
    let ext = ext_of ~lookup table in
    let base = Schema_ext.base ext in
    let tbl = Database.table_exn db table in
    let positions =
      List.map
        (fun (col, e) ->
          match Schema.index_of_opt base col with
          | Some j -> (j, e)
          | None -> fail "UPDATE %s: unknown column %s" table col)
        sets
    in
    let rids = live_matching db ext table where in
    List.iter
      (fun rid ->
        match Table.get tbl rid with
        | None -> ()
        | Some tuple ->
          (* Assignment right-hand sides see the current version. *)
          let env = Dml.env_for_tuple (Table.schema tbl) tuple in
          let assignments = List.map (fun (j, e) -> (j, Eval.eval env e)) positions in
          Maintenance.apply_update ?stats ext tbl ~vn rid assignments)
      rids;
    List.length rids
  | Ast.Delete { table; where } ->
    let ext = ext_of ~lookup table in
    let tbl = Database.table_exn db table in
    let rids = live_matching db ext table where in
    List.iter
      (fun rid -> Maintenance.apply_delete ?stats ?was_insert_over_delete ext tbl ~vn rid)
      rids;
    List.length rids

let maintenance_sql ?stats ?on_over_delete ?was_insert_over_delete db ~lookup ~vn src =
  maintenance_statement ?stats ?on_over_delete ?was_insert_over_delete db ~lookup ~vn
    (Vnl_sql.Parser.parse src)
