(** The 2VNL warehouse facade.

    Ties together the Version relation, schema extension, reader sessions,
    and maintenance transactions over one database.  A typical lifecycle:

    {v
  let wh = Twovnl.init db in
  let _h = Twovnl.register_table wh ~name:"DailySales" daily_sales_schema in
  Twovnl.load_initial wh "DailySales" initial_rows;
  (* readers *)
  let s = Twovnl.Session.begin_ wh in
  let result = Twovnl.Session.query wh s "SELECT ... FROM DailySales ..." in
  (* concurrent maintenance *)
  let m = Twovnl.Txn.begin_ wh in
  ignore (Twovnl.Txn.sql m "UPDATE DailySales SET ... WHERE ...");
  Twovnl.Txn.commit m
    v} *)

type t

type handle
(** A registered, schema-extended relation. *)

exception Expired of { session_vn : int; current_vn : int }
(** Raised when a reader operation is attempted on an expired session; the
    reader should begin a new session (§2.1). *)

val init : Vnl_query.Database.t -> t
(** Install the Version relation into [db] and return the facade. *)

val attach : Vnl_query.Database.t -> t
(** Re-attach to a reopened database (see {!Vnl_query.Database.reopen}):
    finds the existing Version relation instead of installing one.  Follow
    with {!attach_table} for each 2VNL relation — or {!attach_generations}
    when the catalog carries generation metadata — and {!recover} to
    complete §7-style no-log crash recovery. *)

val attach_generations : t -> unit
(** Rebuild the versioned catalog of a reopened multi-generation database
    from its persisted generation metadata.  The durable Version page
    arbitrates: a staged generation whose activation VN exceeds the stored
    currentVN died before its publish — its private tables are dropped and
    its freeze-renames undone, so the database reopens to exactly the
    pre-evolution catalog.  No-op when the catalog has no generation
    metadata (use {!attach_table} then).  Must run before {!recover}. *)

val database : t -> Vnl_query.Database.t

val version_state : t -> Version_state.t

val current_vn : t -> int

val register_table : t -> ?n:int -> name:string -> Vnl_relation.Schema.t -> handle
(** Create table [name] in the database with the nVNL-extended schema
    (default n = 2). *)

val attach_table : t -> ?n:int -> name:string -> Vnl_relation.Schema.t -> handle
(** Register an {e existing} table (recovered from disk) as the nVNL
    extension of the given base schema.  Raises [Invalid_argument] if the
    stored schema does not equal the extension of [base] with this [n]. *)

val recover : t -> int
(** No-log crash recovery: if the Version relation says maintenance work
    was outstanding at the crash, revert every tuple stamped {e above} the
    stored currentVN (the last published VN) from the tuples' own
    pre-update versions (no log consulted) and clear the flag; returns the
    number of tuples reverted.  For a classic single transaction the only
    such stamp is currentVN + 1; for an interrupted pipelined round
    ({!Round}) the unpublished stripes are reverted and the published
    prefix survives.  Tuples whose slot-1 operation is insert are treated
    as fresh inserts and physically removed — correct for every live
    session, see DESIGN.md §6. *)

val handle : t -> string -> handle option

val handle_exn : t -> string -> handle

val handles : t -> handle list

val handle_name : handle -> string

val ext : handle -> Schema_ext.t

val table : handle -> Vnl_query.Table.t

val lookup : t -> string -> Schema_ext.t option
(** The registry function the {!Rewrite} layer consumes.  Resolves against
    the head (newest) catalog generation, as do {!handle}, {!handle_exn},
    and {!handles}; sessions resolve against their own pinned generation
    instead. *)

val catalog_generation : t -> int
(** Index of the head (newest) catalog generation; 0 until the first
    schema evolution commits. *)

val generation_of_vn : t -> int -> int
(** The generation a session pinned at this VN resolves against: the
    newest one whose activation VN is at or below it. *)

val added_columns : handle -> (string * Vnl_relation.Value.t) list
(** Columns appended to this handle's table by evolution (oldest first)
    with their declared defaults; [[]] for a never-evolved table. *)

val pad_ops : handle -> Batch.op list -> Batch.op list
(** Pad short {!Batch.Insert} tuples — built against a pre-evolution base
    schema — with the trailing added-column defaults.  Identity when the
    handle has no added columns. *)

val load_initial : t -> string -> Vnl_relation.Tuple.t list -> unit
(** Bulk-load base tuples as of the current version (outside any
    maintenance transaction; used for initial warehouse population). *)

val min_session_vn : t -> int
(** Smallest sessionVN among active sessions, or [current_vn] when none —
    the garbage-collection horizon. *)

val collect_garbage : t -> int
(** Run {!Gc.collect} over every registered table at the current horizon. *)

module Session : sig
  type s

  val begin_ : t -> s
  (** Snapshot [currentVN] as the session's version (§3). *)

  val vn : s -> int

  val id : s -> int

  val generation : t -> s -> int
  (** The catalog generation pinned by the session's VN: the session
      resolves every name, schema, and cached plan against it, so a
      session spanning a schema-evolution commit keeps its old schema
      view for its whole lifetime. *)

  val is_valid : t -> s -> bool
  (** The global expiry check, generalized per §5: valid while the session
      has overlapped at most n - 1 maintenance transactions (n taken as the
      smallest version count among registered tables; the paper's §4.1
      condition when n = 2). *)

  val validity : t -> s -> [ `Valid of int | `Expired of int * int ]
  (** Non-raising probe of the same check, for servers that must {e push}
      expiry to remote readers instead of waiting for the next query to
      raise: [`Valid slack] is the number of further maintenance commits
      the session survives (0 = expires at the next publish), [`Expired
      (session_vn, current_vn)] carries the payload of the {!Expired}
      exception.  Does not count as an expiry observation in the metrics —
      the caller decides whether the session is being retired. *)

  val end_ : t -> s -> unit

  val begin_vector : t list -> s list
  (** One session per instance, in order — the cross-shard snapshot
      vector: each component is epoch-pinned against its own warehouse, so
      the vector as a whole stays readable while every component session
      is valid.  If opening any component fails, the already-opened
      sessions are ended before the exception escapes. *)

  val end_vector : t list -> s list -> unit
  (** End each component ([Invalid_argument] on length mismatch). *)

  val vn_vector : s list -> int list
  (** The snapshot vector's version numbers, in component order. *)

  val query :
    ?params:(string * Vnl_relation.Value.t) list ->
    t -> s -> string -> Vnl_query.Executor.result
  (** Rewrite (per §4.1, generalized to any n) and execute a SELECT over
      base-schema names with [:sessionVN] bound; [params] supplies
      additional named parameters, so repeated statements differing only
      in a value share one cached plan.  Statements are parsed, rewritten,
      and compiled once per [t] ({!Vnl_query.Plan}), then re-executed from
      the plan cache; queries matching the §4.1 pattern are answered by
      engine-level extraction when the rewrite would full-scan anyway.
      Raises {!Expired} if the session is no longer valid. *)

  val read_table : t -> s -> string -> Vnl_relation.Tuple.t list
  (** Engine-level extraction (works for any n): all base tuples visible at
      the session's version.  Raises {!Expired} on per-tuple expiry
      detection. *)
end

module Txn : sig
  type m

  val begin_ : t -> m
  (** Start the single maintenance transaction.  Raises [Invalid_argument]
      if one is active. *)

  val vn : m -> int

  val stats : m -> Maintenance.stats

  val sql : m -> string -> int
  (** Execute a base-schema DML statement via the §4.2 cursor rewrite;
      returns logical operations applied. *)

  val insert : m -> table:string -> Vnl_relation.Value.t list -> unit

  val read_current :
    m -> table:string -> key:Vnl_relation.Value.t list -> Vnl_relation.Tuple.t option
  (** Maintenance read: the latest (current) version of the live tuple with
      this key, as a base tuple; [None] when absent or logically deleted.
      Maintenance transactions always read the latest version (§3.3). *)

  val update_by_key :
    m ->
    table:string ->
    key:Vnl_relation.Value.t list ->
    set:(string * Vnl_relation.Value.t) list ->
    bool
  (** Update the live tuple with this key; [false] when absent or
      logically deleted. *)

  val delete_by_key : m -> table:string -> key:Vnl_relation.Value.t list -> bool

  val apply_batch : m -> table:string -> Batch.op list -> Batch.outcome
  (** Apply a batch of logical operations through the net-effect pipeline
      ({!Batch.apply}): same-key operations fold to one physical action via
      {!Op.combine_same_txn} semantics, key lookups are resolved in a single
      sorted index pass, and physical writes are applied in ascending
      (page, slot) order.  Reader-visible results and table bytes are the
      same as issuing the operations one by one (see {!Batch} for the two
      documented exceptions).  Over-delete bookkeeping is shared with the
      per-op entry points, so mixing both in one transaction is sound. *)

  (** {2 Online schema evolution}

      DDL rides the maintenance transaction: each call stages a pending
      catalog generation (replacement tables are private copies; the
      superseded tables are parked under frozen aliases and keep serving
      every older generation), mirrors it into the database's generation
      metadata so the refresh ladder's data-flush serializes it, and
      {!commit} activates it atomically with the version publish.
      In-flight sessions keep resolving their pinned generation; sessions
      begun after the publish see the new catalog.  {!abort} — or crash
      recovery from any point before the publish — restores exactly the
      pre-evolution catalog. *)

  val add_column :
    m ->
    table:string ->
    Vnl_relation.Schema.attribute ->
    default:Vnl_relation.Value.t ->
    unit
  (** [ALTER TABLE table ADD COLUMN attr DEFAULT default]: the pending
      generation's table appends the column, existing rows take the
      default.  Raises [Invalid_argument] for a key column or a default
      not matching the column's dtype. *)

  val add_table : m -> ?n:int -> name:string -> Vnl_relation.Schema.t -> unit
  (** [CREATE VIEW]: register a fresh nVNL-extended table in the pending
      generation (empty; populate through this transaction's DML). *)

  val add_index : m -> table:string -> index:string -> string list -> unit
  (** [CREATE INDEX index ON table (attrs)]: built on the pending
      generation's private copy, so a crash before the publish reopens
      without it. *)

  val commit : m -> unit
  (** Publish the new version (Version relation update, §4); any staged
      catalog generation activates with it. *)

  val abort : m -> int
  (** No-log rollback (§7): revert every touched tuple; returns the number
      reverted. *)
end

(** A pipelined maintenance {e round}: [count] version numbers begun
    together and published strictly in order (the {!Pipeline} driver's
    commit protocol).  While the round runs, the Version state's
    outstanding count is [count - published], so session validity charges
    readers for every slot the round may still consume — with
    n >= count + 1 a session opened at round begin survives the whole
    round.  A round of one is exactly {!Txn}'s begin/commit envelope. *)
module Round : sig
  type r

  val begin_ : t -> count:int -> r
  (** Reserve VNs [currentVN + 1 .. currentVN + count].  Raises
      [Invalid_argument] if maintenance is already active or [count < 1].
      The caller must make the raised maintenance flag durable (a catalog
      save) before mutating any tuple, as {!Recovery.run_maintenance}
      does. *)

  val base_vn : r -> int
  (** The currentVN at round begin; stripe [i] commits at
      [base_vn + 1 + i]. *)

  val count : r -> int

  val vn : r -> int -> int
  (** [vn r i] is stripe [i]'s version number.  Raises [Invalid_argument]
      outside [0 .. count - 1]. *)

  val record_over_delete : r -> string -> Vnl_storage.Heap_file.rid -> unit
  (** Record an insert-over-delete for no-log rollback (thread-safe; the
      round-wide analogue of {!Txn}'s bookkeeping). *)

  val was_insert_over_delete : r -> string -> Vnl_storage.Heap_file.rid -> bool

  val publish : r -> vn:int -> unit
  (** Publish the next stripe's VN: Version update, epoch advance, commit
      telemetry — one maintenance commit, exactly like {!Txn.commit}.
      Raises [Invalid_argument] unless [vn] is the round's next unpublished
      VN (in-order publication is the pipeline's invariant, not a
      convenience). *)

  val abort : r -> int
  (** Revert every tuple stamped above the last published VN and clear the
      outstanding count; the published prefix stays committed.  Returns the
      number of tuples reverted. *)
end
