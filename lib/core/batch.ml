module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Table = Vnl_query.Table
module Heap_file = Vnl_storage.Heap_file
module Obs = Vnl_obs.Obs

type op =
  | Insert of Tuple.t
  | Update of Value.t list * (int * Value.t) list
  | Delete of Value.t list

type outcome = {
  logical_ops : int;
  distinct_keys : int;
  folded_ops : int;
  physical_inserts : int;
  physical_updates : int;
  physical_deletes : int;
}

(* Per-key fold state: the record image as the batch's operations on this
   key leave it, before any storage write. *)
type entry = {
  key : Value.t list;
  mutable rid : Heap_file.rid option;  (** Existing record, resolved once. *)
  mutable orig : Tuple.t option;  (** Stored image as fetched, for [~old]. *)
  mutable cur : Tuple.t option;  (** In-memory image; [None] = absent. *)
  mutable over_delete : bool;
      (** This transaction re-inserted the key over an older logical delete
          (Table 2 row 1) — earlier in the transaction or during this
          fold; governs the Table 4 row 2 correction. *)
  mutable owned : bool;
      (** [cur] no longer aliases [orig] (a transition already copied it),
          so further transitions may mutate it in place. *)
  mutable touched : int;
}

(* The write plan a [stage] pass produces: every physical action decided,
   nothing written.  Updates and deletes are already rid-sorted, inserts
   are extended tuples in first-touch order — [apply_staged] just executes
   the lists, which is what lets the pipelined path stage every partition
   up front and apply them on worker domains. *)
type staged = {
  s_updates : (Heap_file.rid * Tuple.t option * Tuple.t) list;
  s_deletes : Heap_file.rid list;
  s_inserts : Tuple.t list;
  s_logical : int;
  s_distinct : int;
}

let op_key base = function
  | Insert t -> Tuple.key_of base t
  | Update (key, _) | Delete key -> key

(* Specialized hashtable over key-value lists: the grouping pass does one
   lookup per logical operation, and the generic structural equality/hash
   are measurably slower than the value-specialized ones. *)
module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b

  (* One runtime structural-hash traversal beats per-element calls. *)
  let hash (k : t) = Hashtbl.hash k
end)

(* Tables without a unique key admit only inserts (there is no key to net
   over), each necessarily fresh: stage them directly, in order. *)
let stage_keyless ?stats ext ~vn ops =
  let st = match stats with Some s -> s | None -> Maintenance.fresh_stats () in
  let inserts =
    List.map
      (fun op ->
        match op with
        | Insert base ->
          st.Maintenance.logical_inserts <- st.Maintenance.logical_inserts + 1;
          Maintenance.insert_tuple ext ~vn None base
        | Update _ | Delete _ ->
          invalid_arg "Batch.apply: update/delete requires a unique key")
      ops
  in
  {
    s_updates = [];
    s_deletes = [];
    s_inserts = inserts;
    s_logical = List.length inserts;
    s_distinct = List.length inserts;
  }

let stage ?stats ?resolve ?(prenetted = false) ?(on_over_delete = fun _ -> ())
    ?(was_insert_over_delete = fun _ -> false) ext table ~vn ops =
  if not (Table.has_key table) then stage_keyless ?stats ext ~vn ops
  else begin
    let base = Schema_ext.base ext in
    let key_positions = Schema.key_indices base in
    let st = match stats with Some s -> s | None -> Maintenance.fresh_stats () in
    (* 1. Net-effect grouping: collect each key's operations, in order,
       before any storage access.  A caller that already folded the batch
       to one operation per key (the pipelined refresh stages the output
       of {!net_group_deltas} classification) promises so via [prenetted]
       and the hash-grouping pass degenerates to entry construction. *)
    let entries : entry Key_tbl.t =
      Key_tbl.create (if prenetted then 0 else max 64 (List.length ops))
    in
    let order = ref [] and distinct = ref 0 and logical = ref 0 in
    let grouped =
      Obs.with_span "batch.group" @@ fun () ->
      List.map
        (fun op ->
          incr logical;
          (match op with
          | Update (_, assignments) ->
            List.iter
              (fun (j, _) ->
                if List.mem j key_positions then
                  invalid_arg "Batch.apply: assignment to a key attribute")
              assignments
          | Insert _ | Delete _ -> ());
          let key = op_key base op in
          let fresh () =
            let e =
              {
                key;
                rid = None;
                orig = None;
                cur = None;
                over_delete = false;
                owned = false;
                touched = 0;
              }
            in
            order := e :: !order;
            incr distinct;
            e
          in
          let entry =
            if prenetted then fresh ()
            else
              match Key_tbl.find_opt entries key with
              | Some e -> e
              | None ->
                let e = fresh () in
                Key_tbl.add entries key e;
                e
          in
          (entry, op))
        ops
    in
    let order = List.rev !order in
    (* 2. One sorted pass over the key index resolves every key -> rid and
       fetches the hit records in ascending (page, slot) order.  A caller
       that already resolved these keys against the same table state (the
       pipelined refresh classifies the whole batch first) passes
       [resolve] and the index pass is skipped. *)
    let keys = Array.of_list (List.map (fun e -> e.key) order) in
    let found =
      Obs.with_span "batch.resolve" (fun () ->
          match resolve with
          | Some f -> Array.map f keys
          | None -> Table.find_many_by_key table keys)
    in
    List.iteri
      (fun i e ->
        match found.(i) with
        | Some (rid, tuple) ->
          e.rid <- Some rid;
          e.orig <- Some tuple;
          e.cur <- Some tuple;
          e.over_delete <- was_insert_over_delete rid
        | None -> ())
      order;
    (* 3. Fold each operation through the Tables 2-4 transitions on the
       in-memory image — a key touched k times costs k transitions but will
       cost one physical action.  Nothing is written yet, so a rejected
       operation (Op.Impossible, non-updatable assignment) leaves the table
       untouched. *)
    Obs.with_span "batch.fold" (fun () ->
    List.iter
      (fun (e, op) ->
        e.touched <- e.touched + 1;
        match op with
        | Insert b ->
          st.Maintenance.logical_inserts <- st.Maintenance.logical_inserts + 1;
          let fire () =
            e.over_delete <- true;
            match e.rid with
            | Some rid -> on_over_delete rid
            | None -> assert false (* Table 2 row 1 needs an existing record *)
          in
          e.cur <- Some (Maintenance.insert_tuple ~on_over_delete:fire ~own:e.owned ext ~vn e.cur b);
          e.owned <- true
        | Update (_, assignments) -> (
          st.Maintenance.logical_updates <- st.Maintenance.logical_updates + 1;
          match e.cur with
          | None -> invalid_arg "Batch.apply: update of an absent key"
          | Some existing ->
            e.cur <- Some (Maintenance.update_tuple ~own:e.owned ext ~vn existing assignments);
            e.owned <- true)
        | Delete _ -> (
          st.Maintenance.logical_deletes <- st.Maintenance.logical_deletes + 1;
          match e.cur with
          | None -> invalid_arg "Batch.apply: delete of an absent key"
          | Some existing ->
            e.cur <-
              Maintenance.delete_tuple ~insert_over_delete:e.over_delete ~own:e.owned ext ~vn
                existing;
            e.owned <- true))
      grouped);
    (* 4. Order the write plan: one physical action per touched key,
       existing records in ascending (page, slot) order, then fresh inserts
       in first-touch order (matching the slots per-op application would
       have assigned them). *)
    let updates = ref [] and deletes = ref [] and inserts = ref [] in
    List.iter
      (fun e ->
        if e.touched > 0 then
          match (e.rid, e.cur) with
          | Some rid, Some t -> updates := (rid, e.orig, t) :: !updates
          | Some rid, None -> deletes := rid :: !deletes
          | None, Some t -> inserts := t :: !inserts
          | None, None -> () (* net nothing: fresh insert cancelled by delete *))
      order;
    let by_rid (a : Heap_file.rid) (b : Heap_file.rid) =
      let c = Int.compare a.Heap_file.page b.Heap_file.page in
      if c <> 0 then c else Int.compare a.Heap_file.slot b.Heap_file.slot
    in
    {
      s_updates = List.sort (fun (a, _, _) (b, _, _) -> by_rid a b) !updates;
      s_deletes = List.sort by_rid !deletes;
      s_inserts = List.rev !inserts;
      s_logical = !logical;
      s_distinct = !distinct;
    }
  end

let staged_ops s = List.length s.s_updates + List.length s.s_deletes + List.length s.s_inserts

let staged_outcome s =
  {
    logical_ops = s.s_logical;
    distinct_keys = s.s_distinct;
    folded_ops = s.s_logical - staged_ops s;
    physical_inserts = List.length s.s_inserts;
    physical_updates = List.length s.s_updates;
    physical_deletes = List.length s.s_deletes;
  }

let apply_updates ?stats table s =
  let st = match stats with Some s -> s | None -> Maintenance.fresh_stats () in
  List.map
    (fun (rid, old, t) ->
      st.Maintenance.physical_updates <- st.Maintenance.physical_updates + 1;
      Table.update_in_place ?old table rid t;
      rid)
    s.s_updates

let apply_structural ?stats table s =
  let st = match stats with Some s -> s | None -> Maintenance.fresh_stats () in
  List.iter
    (fun rid ->
      st.Maintenance.physical_deletes <- st.Maintenance.physical_deletes + 1;
      Table.delete table rid)
    s.s_deletes;
  (* Keys were resolved absent by the sorted index pass and are distinct
     per entry, so the duplicate probe is redundant and the index entries
     can go in as one sorted batch. *)
  st.Maintenance.physical_inserts <-
    st.Maintenance.physical_inserts + List.length s.s_inserts;
  let inserted = Table.insert_many ~check:false table s.s_inserts in
  s.s_deletes @ inserted

let apply_staged ?stats table s =
  let written =
    Obs.with_span "batch.apply" (fun () ->
        let updated = apply_updates ?stats table s in
        let structural = apply_structural ?stats table s in
        updated @ structural)
  in
  (staged_outcome s, written)

let apply ?stats ?on_over_delete ?was_insert_over_delete ext table ~vn ops =
  let s = stage ?stats ?on_over_delete ?was_insert_over_delete ext table ~vn ops in
  fst (apply_staged ?stats table s)

let key_table_of_pairs pairs =
  let tbl = Key_tbl.create (max 16 (List.length pairs)) in
  List.iter (fun (k, v) -> Key_tbl.replace tbl k v) pairs;
  fun key -> Option.join (Key_tbl.find_opt tbl key)

let pp_outcome ppf o =
  Format.fprintf ppf "logical=%d keys=%d folded=%d phys(i/u/d)=%d/%d/%d" o.logical_ops
    o.distinct_keys o.folded_ops o.physical_inserts o.physical_updates o.physical_deletes
