(** Crash-safe maintenance and restart-time recovery (§7).

    2VNL's durability claim is that maintenance needs no before-image log:
    every touched tuple still carries its pre-update version in its own
    slots, so a crash mid-maintenance is repaired from the surviving disk
    image alone.  The claim holds only under a write-ordering discipline,
    implemented by {!run_maintenance}:

    + the maintenance flag ([maintenanceActive]) is durable before any
      mutation of the transaction can reach disk;
    + all mutated data pages and the catalog (naming any newly allocated
      pages) are durable before
    + the commit publish ([currentVN := vn], flag cleared) is written.

    Every crash point then leaves the disk in one of three states — clean
    pre-transaction, flagged in-maintenance, clean post-transaction — and
    {!reopen} maps the middle one back to pre-transaction with the §7
    no-log repair.  Torn pages (detected by the disk's checksums) raise
    {!Vnl_storage.Disk.Corrupt_page} instead of being silently decoded. *)

type outcome = {
  interrupted : bool;
      (** The on-disk Version relation said a maintenance transaction was in
          flight. *)
  reverted : int;  (** Tuples restored to their pre-update versions. *)
}

val run_maintenance :
  Vnl_query.Database.t -> Twovnl.t -> (Twovnl.Txn.m -> 'a) -> 'a
(** [run_maintenance db vnl f] runs [f] as one maintenance transaction
    under the crash-safe ordering above: begin and flush the flag, apply,
    flush data, write the catalog, commit, flush the publish.  Exceptions
    from [f] (including {!Vnl_storage.Disk.Crash}) propagate with the disk
    left for {!reopen} to repair. *)

val reopen :
  ?pool_capacity:int ->
  ?n:int ->
  Vnl_storage.Disk.t ->
  tables:(string * Vnl_relation.Schema.t) list ->
  Twovnl.t * outcome
(** [reopen disk ~tables] restarts from a surviving disk image: reopen the
    database through the catalog, re-attach the 2VNL registry ([tables]
    gives each registered table's base schema; [n] as in
    {!Twovnl.attach_table}), and — if the Version relation says maintenance
    was interrupted — run the §7 repair and persist it.  Raises
    {!Vnl_query.Catalog.Corrupt} on an unreadable catalog and
    {!Vnl_storage.Disk.Corrupt_page} when a torn page is read. *)
