(** Query rewrite: implementing 2VNL on top of the unmodified engine (§4).

    {b Readers} (§4.1, Example 4.1): in a SELECT over an extended relation,
    every reference to an updatable attribute [a] becomes

    {v CASE WHEN :sessionVN >= tupleVN THEN a ELSE pre_a END v}

    and the WHERE clause gains the visibility predicate

    {v (:sessionVN >= tupleVN AND operation <> 'd')
   OR (:sessionVN < tupleVN AND operation <> 'i') v}

    (operations are stored as their 1-byte codes).  The reader supplies
    [:sessionVN] as a query parameter.  The rewrite also covers nVNL for
    any n — a generalization the paper describes as straightforward but
    does not spell out (§5): the CASE gains one arm per version slot and
    the visibility predicate one disjunct per slot.

    {b Maintenance} (§4.2, Examples 4.2-4.4): INSERT/UPDATE/DELETE
    statements written against the {e base} schema are executed with the
    cursor approach — matching tuples are located first, then each is
    revisited and the appropriate decision-table action applied. *)

exception Unsupported of string

val reader_select :
  lookup:(string -> Schema_ext.t option) -> Vnl_sql.Ast.select -> Vnl_sql.Ast.select
(** Rewrite a SELECT; tables for which [lookup] returns [None] pass
    through untouched. *)

val reader_sql : lookup:(string -> Schema_ext.t option) -> string -> string
(** Parse, rewrite, and print — the demonstration path for Example 4.1. *)

val reader_fast_path :
  lookup:(string -> Schema_ext.t option) -> Vnl_sql.Ast.select ->
  (string * string) option
(** Recognize the §4.1 pattern a reader can answer via engine-level
    extraction instead of the SQL rewrite: a single registered FROM table
    with every column reference resolving in its base schema.  Returns
    [(table, label)] — the registered table name and the label its columns
    are qualified by — or [None] when the query must take the rewrite
    path.  Equivalence holds because {!Reader.extract} computes per tuple
    exactly what the substituted CASE expressions and visibility predicate
    select. *)

val visibility_predicate :
  qualifier:string option -> Schema_ext.t -> Vnl_sql.Ast.expr
(** The WHERE conjunct above, with columns optionally qualified. *)

val case_for_attribute :
  qualifier:string option -> Schema_ext.t -> string -> Vnl_sql.Ast.expr
(** The CASE expression replacing updatable attribute [name]. *)

val session_valid : Vnl_query.Database.t -> session_vn:int -> bool
(** The global expiry check of §4.1, executed as a query against the
    Version relation:
    [sessionVN = currentVN OR (sessionVN = currentVN - 1 AND NOT
    maintenanceActive)]. *)

val maintenance_statement :
  ?stats:Maintenance.stats ->
  ?on_over_delete:(Vnl_storage.Heap_file.rid -> unit) ->
  ?was_insert_over_delete:(Vnl_storage.Heap_file.rid -> bool) ->
  Vnl_query.Database.t ->
  lookup:(string -> Schema_ext.t option) ->
  vn:int ->
  Vnl_sql.Ast.statement ->
  int
(** Execute a base-schema DML statement under maintenance version [vn];
    returns the number of logical tuple operations applied.  UPDATE may
    only assign updatable attributes; assignments and WHERE predicates see
    the current (latest) version, and logically deleted tuples are
    invisible.  Raises {!Unsupported} for SELECT or unregistered tables. *)

val maintenance_sql :
  ?stats:Maintenance.stats ->
  ?on_over_delete:(Vnl_storage.Heap_file.rid -> unit) ->
  ?was_insert_over_delete:(Vnl_storage.Heap_file.rid -> bool) ->
  Vnl_query.Database.t ->
  lookup:(string -> Schema_ext.t option) ->
  vn:int ->
  string ->
  int
(** Parse then {!maintenance_statement}. *)
