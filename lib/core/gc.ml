module Table = Vnl_query.Table
module Tuple = Vnl_relation.Tuple
module Heap_file = Vnl_storage.Heap_file

let collectable ext ~min_session_vn tuple =
  match Schema_ext.operation ext ~slot:1 tuple with
  | Op.Insert | Op.Update -> false
  | Op.Delete -> (
    match Schema_ext.tuple_vn ext ~slot:1 tuple with
    | Some vn -> min_session_vn >= vn
    | None -> false)

(* The collection scan decides almost every record from two fixed-offset
   cells ({!Schema_ext.collectable_raw}) instead of decoding the full
   extended tuple — under continuous refresh the scan runs once per
   maintenance transaction, and its cost used to rival the refresh apply
   itself.  Unusual cells fall back to the decoded [collectable], which
   owns the error behavior. *)
let collect ext table ~min_session_vn =
  let extended = Schema_ext.extended ext in
  let victims =
    Table.fold_raw table ~init:[] ~f:(fun acc ~page ~slot img off ->
        match Schema_ext.collectable_raw ext ~min_session_vn img off with
        | Schema_ext.Raw_keep -> acc
        | Schema_ext.Raw_collect -> { Heap_file.page; slot } :: acc
        | Schema_ext.Raw_unknown ->
          if collectable ext ~min_session_vn (Tuple.decode_from extended img off)
          then { Heap_file.page; slot } :: acc
          else acc)
  in
  List.iter (fun rid -> Table.delete table rid) victims;
  List.length victims
