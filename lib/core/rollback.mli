(** Rolling back a maintenance transaction without before-image logging
    (§7).

    Every tuple the transaction touched still carries its pre-update
    version, so an abort can revert tuple state from the tuple itself:

    - a fresh insert is physically deleted;
    - an insert over a logically deleted tuple is re-marked deleted, with
      its pre-update values restored from the pushed-back delete slot when
      one exists (nVNL);
    - an update or logical delete has its current values restored from the
      slot-1 pre-update values.

    Reverted tuples are stamped [tupleVN = vn - 1]: every session that is
    valid while the aborting transaction runs (necessarily
    [sessionVN = vn - 1], by the expiry rule) and every later session reads
    the restored current version, and sessions governed by older slots are
    untouched.  The single approximation, documented in DESIGN.md, is that
    under plain 2VNL an insert-over-delete cannot recover the deleted
    tuple's pre-delete values (they were nulled per Table 2 row 1) — those
    are only needed by sessions that are already expired. *)

val revert_tuple :
  Schema_ext.t ->
  Vnl_query.Table.t ->
  vn:int ->
  was_insert_over_delete:bool ->
  Vnl_storage.Heap_file.rid ->
  unit
(** Revert one touched tuple.  No-op if the tuple's slot-1 version is not
    [vn] (it was not actually modified by this transaction). *)

val revert_all :
  Schema_ext.t ->
  Vnl_query.Table.t ->
  vn:int ->
  over_deleted:(Vnl_storage.Heap_file.rid -> bool) ->
  int
(** Scan the table and revert every tuple with slot-1 version [vn]; returns
    the number reverted.  [over_deleted] tells apart fresh inserts from
    inserts over deleted keys (in-memory transaction bookkeeping, not a
    log). *)

val revert_above :
  Schema_ext.t ->
  Vnl_query.Table.t ->
  current:int ->
  over_deleted:(Vnl_storage.Heap_file.rid -> bool) ->
  int
(** Generalized repair for pipelined rounds: revert every tuple whose
    slot-1 version exceeds [current] (the last {e published} VN), each at
    its own stamp.  Sound because a round's partitions are key-disjoint —
    no tuple carries more than one unpublished VN.  With a round of one
    this is exactly [revert_all ~vn:(current + 1)]. *)
