module Schema = Vnl_relation.Schema
module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Table = Vnl_query.Table

type partition = { ops : Batch.op list; key_count : int; op_count : int }

(* Union-find over the at-most-[max_parts] seed buckets; path halving is
   plenty at this size. *)
let rec find uf i = if uf.(i) = i then i else begin uf.(i) <- uf.(uf.(i)); find uf uf.(i) end

let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra <> rb then uf.(max ra rb) <- min ra rb

let key_of_op base = function
  | Batch.Insert t -> Tuple.key_of base t
  | Batch.Update (key, _) | Batch.Delete key -> key

module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b

  let hash (k : t) = Hashtbl.hash k
end)

let partition ext table ~max_parts ops =
  if ops = [] then []
  else if max_parts <= 1 || not (Table.has_key table) then begin
    let op_count = List.length ops in
    let key_count =
      if not (Table.has_key table) then op_count
      else begin
        let base = Schema_ext.base ext in
        let keys = Key_tbl.create (max 64 op_count) in
        List.iter
          (fun op ->
            let k = key_of_op base op in
            if not (Key_tbl.mem keys k) then Key_tbl.add keys k ())
          ops;
        Key_tbl.length keys
      end
    in
    [ { ops; key_count; op_count } ]
  end
  else if Table.indexes table = [] then begin
    (* No secondary indexes: the unique key is the only dependency, so the
       seed buckets are final — one pass assigns each key's operations to
       its bucket, in order, with no union-find and no re-filtering. *)
    let base = Schema_ext.base ext in
    let bucket_of = Key_tbl.create (max 64 (List.length ops)) in
    let buckets = Array.make max_parts [] in
    let key_counts = Array.make max_parts 0 in
    let op_counts = Array.make max_parts 0 in
    let first_seen = ref [] in
    List.iter
      (fun op ->
        let key = key_of_op base op in
        let b =
          match Key_tbl.find_opt bucket_of key with
          | Some b -> b
          | None ->
            let b = (Hashtbl.hash key land max_int) mod max_parts in
            Key_tbl.add bucket_of key b;
            key_counts.(b) <- key_counts.(b) + 1;
            b
        in
        if op_counts.(b) = 0 then first_seen := b :: !first_seen;
        buckets.(b) <- op :: buckets.(b);
        op_counts.(b) <- op_counts.(b) + 1)
      ops;
    List.rev_map
      (fun b ->
        { ops = List.rev buckets.(b); key_count = key_counts.(b); op_count = op_counts.(b) })
      !first_seen
  end
  else begin
    let base = Schema_ext.base ext in
    let secondaries = Table.indexes table in
    (* Which secondary indexes does an operation touch?  Structural ops
       (insert, delete) enter/remove the tuple from every tree; an update
       touches exactly the trees indexing an attribute it assigns.  An
       index over a non-base (version bookkeeping) attribute is rewritten
       by every maintenance op, so it behaves like a structural touch. *)
    let always_touched, by_attr =
      List.fold_left
        (fun (always, by_attr) (iname, attrs) ->
          if List.exists (fun a -> not (Schema.mem base a)) attrs then (iname :: always, by_attr)
          else (always, List.map (fun a -> (a, iname)) attrs @ by_attr))
        ([], []) secondaries
    in
    let footprint op =
      match op with
      | Batch.Insert _ | Batch.Delete _ -> List.map fst secondaries
      | Batch.Update (_, assignments) ->
        let assigned = List.map (fun (j, _) -> (Schema.attribute base j).Schema.name) assignments in
        always_touched
        @ List.filter_map
            (fun (attr, iname) -> if List.mem attr assigned then Some iname else None)
            by_attr
    in
    (* Seed bucket: a deterministic hash of the unique key, so a key's
       every operation lands in one bucket and the per-key order survives
       the stable partition filter below. *)
    let bucket_of = Key_tbl.create (max 64 (List.length ops)) in
    let bucket key =
      match Key_tbl.find_opt bucket_of key with
      | Some b -> b
      | None ->
        let b = (Hashtbl.hash key land max_int) mod max_parts in
        Key_tbl.add bucket_of key b;
        b
    in
    let uf = Array.init max_parts Fun.id in
    (* Dependency analysis: buckets whose operations touch the same
       secondary index must not apply concurrently — union them.  The
       designated owner of each index is the first bucket seen touching
       it. *)
    let owner : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let tagged =
      List.map
        (fun op ->
          let b = bucket (key_of_op base op) in
          (if secondaries <> [] then
             List.iter
               (fun iname ->
                 match Hashtbl.find_opt owner iname with
                 | Some b0 -> union uf b b0
                 | None -> Hashtbl.add owner iname b)
               (footprint op));
          (b, op))
        ops
    in
    (* Emit partitions in order of first appearance, each a stable filter
       of the original operation list — so a forced single partition is the
       original batch verbatim, and per-key operation order is preserved
       always. *)
    let roots = ref [] in
    List.iter
      (fun (b, _) ->
        let r = find uf b in
        if not (List.mem r !roots) then roots := r :: !roots)
      tagged;
    let roots = List.rev !roots in
    List.map
      (fun r ->
        let ops = List.filter_map (fun (b, op) -> if find uf b = r then Some op else None) tagged in
        let keys = Key_tbl.create 64 in
        List.iter
          (fun op ->
            let k = key_of_op base op in
            if not (Key_tbl.mem keys k) then Key_tbl.add keys k ())
          ops;
        { ops; key_count = Key_tbl.length keys; op_count = List.length ops })
      roots
  end
