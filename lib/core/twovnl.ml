module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Catalog = Vnl_query.Catalog
module Executor = Vnl_query.Executor
module Heap_file = Vnl_storage.Heap_file
module Buffer_pool = Vnl_storage.Buffer_pool
module Epoch = Vnl_util.Epoch
module StrMap = Map.Make (String)

let log_src = Logs.Src.create "vnl.core" ~doc:"2VNL warehouse events"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Obs = Vnl_obs.Obs

(* 2VNL session and maintenance telemetry (default registry, gated). *)
let m_sessions_opened = Obs.Registry.counter "twovnl.sessions_opened"

let m_sessions_expired = Obs.Registry.counter "twovnl.sessions_expired"

let m_reader_queries = Obs.Registry.counter "twovnl.reader_queries"

let m_view_cache_hits = Obs.Registry.counter "twovnl.view_cache_hits"

let m_maintenance_commits = Obs.Registry.counter "twovnl.maintenance_commits"

let m_maintenance_aborts = Obs.Registry.counter "twovnl.maintenance_aborts"

let m_gc_reclaimed = Obs.Registry.counter "twovnl.gc_reclaimed"

let m_current_vn = Obs.Registry.gauge "twovnl.current_vn"

(* How far the GC horizon (minimum pinned session epoch) trails currentVN
   when garbage collection runs: 0 means reclamation is fully caught up,
   larger values mean long-lived sessions are holding history alive. *)
let m_epoch_lag = Obs.Registry.gauge "twovnl.epoch_lag"

(* The VN distribution: how far behind currentVN each reader query runs.
   A 2VNL warehouse keeps this in {0, 1}; nVNL widens the band. *)
let m_session_lag =
  Obs.Registry.histogram ~buckets:[| 0.0; 1.0; 2.0; 3.0; 4.0; 6.0; 8.0 |] "twovnl.session_vn_lag"

(* Versioned-catalog telemetry: the live generation index, committed
   evolutions, plan-cache entries invalidated per generation flip (the old
   generation's cache is left behind rather than cleared globally), the
   per-generation reader plan cache's hit/miss split, and generations
   retired by GC once no session can pin them. *)
let m_catalog_generation = Obs.Registry.gauge "twovnl.catalog_generation"

let m_evolutions = Obs.Registry.counter "twovnl.evolutions"

let m_plan_gen_invalidations = Obs.Registry.counter "twovnl.plan_gen_invalidations"

let m_reader_plan_hits = Obs.Registry.counter "twovnl.reader_plan_hits"

let m_reader_plan_misses = Obs.Registry.counter "twovnl.reader_plan_misses"

let m_generations_retired = Obs.Registry.counter "twovnl.generations_retired"

module Plan = Vnl_query.Plan

type handle = {
  name : string;
  ext : Schema_ext.t;
  table : Table.t;
  added : (Schema.attribute * Value.t) list;
      (** Columns appended by evolution (oldest first) with their defaults;
          short insert tuples from pre-evolution view templates are padded
          from the suffix of this list. *)
}

(* Cached reader plans, keyed by the pre-rewrite SQL text.  [generic] is
   the compiled §4.1 rewrite; [fast] — when the query matches the pattern
   {!Rewrite.reader_fast_path} recognizes — additionally holds a view plan
   over the base schema, executed against {!Reader.visible_relation}. *)
type reader_plan = {
  rewritten : Vnl_sql.Ast.select;
  fast : (handle * Plan.t) option;
  generic : Plan.t Atomic.t;
      (** Atomic so any reader domain can swap in a re-prepared plan after
          index DDL without a cache-wide lock. *)
}

(* One immutable catalog generation: the name registry frozen at a schema
   boundary, with its own reader plan cache.  [gen_vn] is the VN whose
   publication activated the generation — a session resolves against the
   newest generation with [gen_vn <= session_vn], so the session VN doubles
   as the catalog snapshot selector and the activation needs no lock:
   consing the generation before the Version publish is harmless, because
   no live session VN can select it until the publish lands. *)
type generation = {
  gen : int;
  gen_vn : int;
  registry : handle StrMap.t;
  order : string list;  (** Registration order, newest first. *)
  plans : reader_plan StrMap.t Atomic.t;
  plans_gen : int Atomic.t;
      (** Bumped by every invalidation; publishers that began compiling under
          an older registry state do not cache their (possibly stale)
          entry. *)
}

(* Both reader-facing shared structures are lock-free.

   Sessions: a session is an epoch pin (see {!Vnl_util.Epoch}) — beginning
   one CASes the session's VN into a slot of the epoch domain, ending one
   releases the slot, and the GC horizon is a fold over the slots.

   Catalog: an immutable generation list behind an [Atomic], newest first
   and never empty.  Readers take one atomic load and walk to their
   generation; evolution commits cons a new head; GC retires an
   unreachable suffix by CAS. *)
type t = {
  db : Database.t;
  version : Version_state.t;
  generations : generation list Atomic.t;
  epochs : unit Epoch.t;
      (** Session pins; the epoch is the warehouse VN.  Advanced at every
          refresh commit. *)
  next_session : int Atomic.t;
  mutable txn_active : bool;
  last_gc_horizon : int Atomic.t;
      (** Horizon of the last completed collection.  Garbage is only ever
          created at the then-current VN, so until the horizon moves past
          it there is nothing new to reclaim and the scan is elided. *)
}

exception Expired of { session_vn : int; current_vn : int }

let fresh_generation ~gen ~gen_vn ~registry ~order =
  { gen; gen_vn; registry; order; plans = Atomic.make StrMap.empty; plans_gen = Atomic.make 0 }

let make db version =
  let pool = Database.pool db in
  (* Evicted buffer frames join the epoch-gated retire bag instead of
     being recycled immediately: a latch-free reader may still be
     validating against them. *)
  Buffer_pool.enable_epoch_reclamation pool;
  Buffer_pool.advance_epoch pool (Version_state.current_vn version);
  {
    db;
    version;
    generations =
      Atomic.make [ fresh_generation ~gen:0 ~gen_vn:0 ~registry:StrMap.empty ~order:[] ];
    epochs = Epoch.create ~initial:(Version_state.current_vn version) ();
    next_session = Atomic.make 1;
    txn_active = false;
    last_gc_horizon = Atomic.make min_int;
  }

let init db = make db (Version_state.install db)

let attach db = make db (Version_state.attach db)

let database t = t.db

let version_state t = t.version

let current_vn t = Version_state.current_vn t.version

let head t = List.hd (Atomic.get t.generations)

(* Newest generation the session VN may read under.  Retirement guarantees
   every generation a live session could select is still in the list; the
   oldest retained one backstops stray probes below the horizon. *)
let generation_for t vn =
  let rec walk = function
    | [] -> assert false
    | [ g ] -> g
    | g :: rest -> if g.gen_vn <= vn then g else walk rest
  in
  walk (Atomic.get t.generations)

let catalog_generation t = (head t).gen

let generation_of_vn t vn = (generation_for t vn).gen

let rec update_head t f =
  let gens = Atomic.get t.generations in
  match gens with
  | g :: rest ->
    if not (Atomic.compare_and_set t.generations gens (f g :: rest)) then update_head t f
  | [] -> assert false

(* Registration changes what the reader rewrite produces for queries
   naming this table, so cached reader plans must not survive it.  The
   generation bump happens first: a compile that started before this
   invalidation sees the changed generation and declines to publish. *)
let invalidate_plans g =
  Atomic.incr g.plans_gen;
  Atomic.set g.plans StrMap.empty

let register_handle t h =
  update_head t (fun g ->
      { g with registry = StrMap.add h.name h g.registry; order = h.name :: g.order });
  invalidate_plans (head t)

let register_table t ?n ~name schema =
  let ext = Schema_ext.extend ?n schema in
  let table = Database.create_table t.db name (Schema_ext.extended ext) in
  let h = { name; ext; table; added = [] } in
  register_handle t h;
  h

let attach_table t ?n ~name base =
  let ext = Schema_ext.extend ?n base in
  let table = Database.table_exn t.db name in
  if not (Schema.equal (Table.schema table) (Schema_ext.extended ext)) then
    invalid_arg
      (Printf.sprintf "Twovnl.attach_table: stored schema of %S does not match the extension"
         name);
  let h = { name; ext; table; added = [] } in
  register_handle t h;
  h

let gen_handle g name = StrMap.find_opt name g.registry

let gen_lookup g name = Option.map (fun h -> h.ext) (gen_handle g name)

let gen_resolve g name = Option.map (fun h -> h.table) (gen_handle g name)

let gen_handles g = List.rev_map (fun name -> StrMap.find name g.registry) g.order

let gen_min_n g =
  StrMap.fold (fun _ h acc -> min acc (Schema_ext.n h.ext)) g.registry max_int
  |> fun n -> if n = max_int then 2 else n

let handle t name = gen_handle (head t) name

let handle_exn t name =
  match handle t name with
  | Some h -> h
  | None -> failwith (Printf.sprintf "Twovnl: table %S is not registered" name)

let handles t = gen_handles (head t)

let handle_name h = h.name

let ext h = h.ext

let table h = h.table

let added_columns h = List.map (fun (a, v) -> (a.Schema.name, v)) h.added

let lookup t name = gen_lookup (head t) name

(* Insert tuples built against a pre-evolution base schema (a view template
   frozen before an [add_column]) are short by a suffix of the added
   columns; pad them with the declared defaults.  Anything else passes
   through untouched — added columns append strictly at the end, so
   existing positions (update assignments, delete keys) stay valid. *)
let pad_values h values =
  match h.added with
  | [] -> values
  | added ->
    let missing = Schema_ext.base_arity h.ext - List.length values in
    if missing > 0 && missing <= List.length added then begin
      let rec drop k xs = if k <= 0 then xs else match xs with [] -> [] | _ :: tl -> drop (k - 1) tl in
      values @ List.map snd (drop (List.length added - missing) added)
    end
    else values

let pad_ops h ops =
  match h.added with
  | [] -> ops
  | _ ->
    List.map
      (function
        | Batch.Insert tup when Tuple.arity tup < Schema_ext.base_arity h.ext ->
          Batch.Insert (Tuple.make (Schema_ext.base h.ext) (pad_values h (Tuple.values tup)))
        | op -> op)
      ops

let load_initial t name tuples =
  let h = handle_exn t name in
  let vn = current_vn t in
  List.iter
    (fun base ->
      let base =
        if Tuple.arity base < Schema_ext.base_arity h.ext then
          Tuple.make (Schema_ext.base h.ext) (pad_values h (Tuple.values base))
        else base
      in
      ignore (Table.insert h.table (Schema_ext.fresh_insert h.ext ~vn base)))
    tuples

let min_session_vn t =
  (* The epoch fold already bounds the result by its own published epoch;
     taking the min with currentVN keeps the horizon correct even if the
     epoch domain briefly trails the version state (advance happens after
     commit). *)
  min (current_vn t) (Epoch.min_pinned t.epochs)

let generation_meta g =
  {
    Catalog.g_index = g.gen;
    g_vn = g.gen_vn;
    g_members =
      List.rev_map
        (fun name ->
          let h = StrMap.find name g.registry in
          {
            Catalog.m_logical = name;
            m_storage = Table.name h.table;
            m_n = Schema_ext.n h.ext;
            m_base_arity = Schema_ext.base_arity h.ext;
            m_added = List.map (fun (a, v) -> (a.Schema.name, v)) h.added;
          })
        g.order;
  }

(* Retire generations no live session can select: [generation_for horizon]
   and everything newer stays, the rest goes — along with any storage table
   referenced only by the dropped suffix (the frozen pre-evolution
   copies).  Their disk pages are not recycled; the leak is bounded by the
   number of evolutions and documented in DESIGN.md §16. *)
let retire_generations t ~horizon =
  let gens = Atomic.get t.generations in
  match gens with
  | [] | [ _ ] -> 0
  | _ ->
    let rec split kept = function
      | [] -> (List.rev kept, [])
      | g :: rest ->
        if g.gen_vn <= horizon then (List.rev (g :: kept), rest) else split (g :: kept) rest
    in
    let kept, dropped = split [] gens in
    if dropped = [] then 0
    else if Atomic.compare_and_set t.generations gens kept then begin
      let live_storage =
        List.concat_map
          (fun g -> List.map (fun name -> Table.name (StrMap.find name g.registry).table) g.order)
          kept
      in
      List.iter
        (fun g ->
          List.iter
            (fun name ->
              let storage = Table.name (StrMap.find name g.registry).table in
              if (not (List.mem storage live_storage)) && Database.table t.db storage <> None
              then Database.drop_table t.db storage)
            g.order)
        dropped;
      Database.set_generations_meta t.db (List.map generation_meta kept);
      Obs.Counter.record m_generations_retired (List.length dropped);
      Log.info (fun m ->
          m "retired %d catalog generation(s) below horizon %d" (List.length dropped) horizon);
      List.length dropped
    end
    else 0 (* raced an evolution commit; the next collection retries *)

let collect_garbage t =
  let c = current_vn t in
  Epoch.advance t.epochs c;
  Buffer_pool.advance_epoch (Database.pool t.db) c;
  let horizon = min_session_vn t in
  Obs.Gauge.record m_epoch_lag (c - horizon);
  ignore (retire_generations t ~horizon);
  (* Garbage is stamped with the VN current at its creation, which is at
     or above the horizon of the previous collection — so if the horizon
     has not advanced since then, the full-table scan cannot find
     anything and is skipped.  (Under continuous refresh with pinned
     readers this elides most collections.) *)
  if horizon <= Atomic.get t.last_gc_horizon then 0
  else begin
    Atomic.set t.last_gc_horizon horizon;
    let reclaimed =
      Obs.with_span "gc.collect" (fun () ->
          List.fold_left
            (fun acc h -> acc + Gc.collect h.ext h.table ~min_session_vn:horizon)
            0 (handles t))
    in
    let frames = Buffer_pool.reclaim_frames (Database.pool t.db) ~horizon in
    Obs.Counter.record m_gc_reclaimed reclaimed;
    Log.debug (fun m ->
        m "gc at horizon %d reclaimed %d tuples, %d retired frames" horizon reclaimed frames);
    reclaimed
  end

(* Rebuild the generation list of a reopened multi-generation catalog.  The
   durable Version page decides activation: a staged generation whose
   [g_vn] exceeds the stored currentVN died before its publish — its
   private tables (the half-copied replacements, new views) are dropped and
   any freeze-rename it performed is undone, so the surviving head's
   members sit back under their logical names.  Runs before {!recover}:
   the subsequent tuple-level rollback walks the restored head
   generation. *)
let attach_generations t =
  let metas = Database.generations_meta t.db in
  if metas <> [] then begin
    let current = current_vn t in
    let metas =
      List.sort (fun a b -> compare b.Catalog.g_index a.Catalog.g_index) metas
    in
    let live, dead = List.partition (fun g -> g.Catalog.g_vn <= current) metas in
    match live with
    | [] -> raise (Catalog.Corrupt "no catalog generation at or below the published VN")
    | head_meta :: older ->
      let live_storage =
        List.concat_map (fun g -> List.map (fun m -> m.Catalog.m_storage) g.Catalog.g_members) live
      in
      List.iter
        (fun g ->
          List.iter
            (fun mb ->
              let s = mb.Catalog.m_storage in
              if (not (List.mem s live_storage)) && Database.table t.db s <> None then
                Database.drop_table t.db s)
            g.Catalog.g_members)
        dead;
      let head_meta =
        {
          head_meta with
          Catalog.g_members =
            List.map
              (fun mb ->
                if not (String.equal mb.Catalog.m_storage mb.Catalog.m_logical) then begin
                  Database.rename_table t.db mb.Catalog.m_storage mb.Catalog.m_logical;
                  { mb with Catalog.m_storage = mb.Catalog.m_logical }
                end
                else mb)
              head_meta.Catalog.g_members;
        }
      in
      let live = head_meta :: older in
      Database.set_generations_meta t.db live;
      let build gm =
        let registry = ref StrMap.empty and order = ref [] in
        List.iter
          (fun mb ->
            let table = Database.table_exn t.db mb.Catalog.m_storage in
            let ext =
              Schema_ext.of_extended ~n:mb.Catalog.m_n ~base_arity:mb.Catalog.m_base_arity
                (Table.schema table)
            in
            let base = Schema_ext.base ext in
            let added =
              List.map
                (fun (aname, v) ->
                  match Schema.index_of_opt base aname with
                  | Some j -> (Schema.attribute base j, v)
                  | None ->
                    raise
                      (Catalog.Corrupt
                         (Printf.sprintf "generation %d: added column %S not in schema of %S"
                            gm.Catalog.g_index aname mb.Catalog.m_logical)))
                mb.Catalog.m_added
            in
            let h = { name = mb.Catalog.m_logical; ext; table; added } in
            registry := StrMap.add h.name h !registry;
            order := h.name :: !order)
          gm.Catalog.g_members;
        fresh_generation ~gen:gm.Catalog.g_index ~gen_vn:gm.Catalog.g_vn ~registry:!registry
          ~order:!order
      in
      let gens = List.map build live in
      Atomic.set t.generations gens;
      Obs.Gauge.record m_catalog_generation (List.hd gens).gen;
      Log.info (fun m ->
          m "attached %d catalog generation(s), head gen %d at VN %d (%d staged dropped)"
            (List.length gens) (List.hd gens).gen (List.hd gens).gen_vn (List.length dead))
  end

(* §7 no-log crash recovery: every touched tuple carries its pre-update
   version, so the database state is repaired exactly like an abort —
   without any log.  Generalized for pipelined rounds: the stored currentVN
   is the last {e published} VN, and every tuple stamped above it belongs
   to an unpublished stripe (a classic single transaction is the special
   case where the only such stamp is currentVN + 1). *)
let recover t =
  if not (Version_state.maintenance_active t.version) then 0
  else begin
    let current = Version_state.current_vn t.version in
    let reverted =
      List.fold_left
        (fun acc h ->
          acc + Rollback.revert_above h.ext h.table ~current ~over_deleted:(fun _ -> false))
        0 (handles t)
    in
    Version_state.abort_maintenance t.version;
    Log.info (fun m ->
        m "crash recovery: reverted %d tuples of work past published VN %d" reverted current);
    reverted
  end

module Session = struct
  type s = {
    id : int;
    vn : int;
    slot : Epoch.slot;
    closed : bool Atomic.t;
    views : (string * Tuple.t list) list Atomic.t;
        (** Per-table memo of the session's visible relation.  A session's
            view is immutable for its whole lifetime — pre-states survive
            until the maintenance transaction that also expires the session
            (the 2VNL guarantee the [gc_preserves_reader_view] test pins
            down) — so the first extraction can serve every later read.
            Concurrent fills race benignly: both compute the same relation
            and the last published list wins. *)
  }

  (* Lock-free open: pin the warehouse epoch.  [Epoch.pin]'s
     store-then-revalidate protocol guarantees the pinned VN is the
     currentVN at some instant after the pin became visible to the GC
     horizon fold — a refresh that commits mid-open either bumps the
     session onto the new VN or is ordered after the pin, so GC can never
     reclaim a version this session is entitled to read. *)
  let begin_ t =
    let slot, vn = Epoch.pin ~current:(fun () -> current_vn t) t.epochs in
    let id = Atomic.fetch_and_add t.next_session 1 in
    Obs.Counter.record m_sessions_opened 1;
    Log.debug (fun m -> m "session %d begins at version %d" id vn);
    { id; vn; slot; closed = Atomic.make false; views = Atomic.make [] }

  let vn s = s.vn

  let id s = s.id

  (* The catalog generation pinned by the session VN: name resolution,
     schema lookup, and the reader plan cache all go through it, so a
     session spanning an evolution commit keeps its old schema view while
     later sessions resolve the new one. *)
  let session_gen t s = generation_for t s.vn

  let generation t s = (session_gen t s).gen

  (* Generalized §4.1 check: a session is valid while it has overlapped at
     most n - 1 maintenance transactions, where n is the smallest version
     count among the tables of {e its} catalog generation (2 when none are
     registered).  For pure 2VNL this is exactly the paper's condition, and
     agrees with [Rewrite.session_valid].

     One atomic read of (currentVN, outstanding): under a pipelined round
     [outstanding] counts the begun-but-unpublished VNs, so the §4.1 bound
     charges the session for every version slot the round may consume.
     [c - s.vn + outstanding] is constant across a round's publishes (each
     publish increments c and decrements outstanding together), so a
     session valid at round begin stays valid to round end whenever
     n >= count + 1 — the nVNL sizing rule the pipeline enforces. *)
  let valid_for t s ~n =
    let c, outstanding = Version_state.read_outstanding t.version in
    c - s.vn + outstanding <= n - 1

  let is_valid t s = valid_for t s ~n:(gen_min_n (session_gen t s))

  (* The push-notification probe: same arithmetic as [valid_for], but the
     caller learns how close the session is to expiry instead of a bare
     bool, and an expired session yields the exception payload without
     raising (the network server turns it into a wire frame). *)
  let validity t s =
    let n = gen_min_n (session_gen t s) in
    let c, outstanding = Version_state.read_outstanding t.version in
    let slack = n - 1 - (c - s.vn + outstanding) in
    if slack >= 0 then `Valid slack else `Expired (s.vn, c)

  (* [exchange] makes a double-end harmless: the slot is released exactly
     once, never yanking a pin a later session acquired in the same slot. *)
  let end_ _t s = if not (Atomic.exchange s.closed true) then Epoch.unpin s.slot

  (* Cross-shard snapshot vector: one session per warehouse instance, each
     pinned under its own epoch.  There is no global clock to agree on —
     consistency of the vector means each component is a consistent
     snapshot of its shard and stays readable for the reader's lifetime,
     which each epoch pin guarantees independently.  If a later begin
     fails (a shard mid-crash), the earlier pins are released before the
     exception escapes so no GC horizon is held hostage. *)
  let begin_vector ts =
    let opened = ref [] in
    (try List.iter (fun t -> opened := (t, begin_ t) :: !opened) ts
     with e ->
       List.iter (fun (t, s) -> end_ t s) !opened;
       raise e);
    List.rev_map snd !opened

  let end_vector ts sessions =
    if List.compare_lengths ts sessions <> 0 then
      invalid_arg "Twovnl.Session.end_vector: length mismatch";
    List.iter2 end_ ts sessions

  let vn_vector sessions = List.map vn sessions

  let expired t s =
    Obs.Counter.record m_sessions_expired 1;
    Log.info (fun m ->
        m "session %d expired (version %d, currentVN %d)" s.id s.vn (current_vn t));
    Expired { session_vn = s.vn; current_vn = current_vn t }

  (* Returns the current VN so [query] can compute the session's lag
     without a second version-state read (each read is a real buffer-pool
     access, so an extra one would both slow the hot path and perturb the
     I/O counters the differential tests hold identical). *)
  let check_valid t s =
    let n = gen_min_n (session_gen t s) in
    let c, outstanding = Version_state.read_outstanding t.version in
    if c - s.vn + outstanding > n - 1 then raise (expired t s);
    c

  (* Compile-once reader sessions: the first execution of a statement
     parses, rewrites, and compiles it; re-executions run cached closures.
     The cache lives on the session's catalog generation: an evolution
     leaves the old generation's entries serving its pinned sessions and
     starts the new generation empty, so plans compiled under generation g
     miss (never stale-hit) under g+1.  The generic plan is revalidated
     each time against the generation's own registry ([Plan.valid
     ~resolve]) — resolution must not fall through to the database catalog,
     where a staging rename may have rebound the logical name to a
     half-copied replacement table. *)
  let reader_plan_for t g src =
    let resolve = gen_resolve g in
    match StrMap.find_opt src (Atomic.get g.plans) with
    | Some entry ->
      Obs.Counter.record m_reader_plan_hits 1;
      let generic = Atomic.get entry.generic in
      if not (Plan.valid ~resolve t.db generic) then
        (* Concurrent re-preparations are idempotent: each produces a
           valid plan for the current catalog and the last store wins. *)
        Atomic.set entry.generic (Plan.prepare ~resolve t.db entry.rewritten);
      entry
    | None ->
      Obs.Counter.record m_reader_plan_misses 1;
      let gen0 = Atomic.get g.plans_gen in
      let entry =
        Obs.with_span "reader.prepare" @@ fun () ->
        let select = Vnl_sql.Parser.parse_select src in
        let rewritten = Rewrite.reader_select ~lookup:(gen_lookup g) select in
        let generic = Plan.prepare ~resolve t.db rewritten in
        let fast =
          if Plan.full_scan_only generic then
            match Rewrite.reader_fast_path ~lookup:(gen_lookup g) select with
            | Some (name, label) ->
              let h = StrMap.find name g.registry in
              (* The rewrite leaves bare items unaliased, so the generic
                 plan's labels (e.g. "col0" for a CASE-translated column)
                 are authoritative; the view plan reproduces them. *)
              Some
                ( h,
                  Plan.prepare_view ~label ~columns:(Plan.columns generic)
                    (Schema_ext.base h.ext) select )
            | None -> None
          else None
        in
        { rewritten; fast; generic = Atomic.make generic }
      in
      (* Publish by CAS into the immutable map.  A racing compiler of the
         same statement loses and adopts the winner's entry; a racing
         invalidation (generation changed) means this entry may reflect a
         stale registry, so it is used once but not cached. *)
      let rec publish () =
        let cur = Atomic.get g.plans in
        match StrMap.find_opt src cur with
        | Some winner -> winner
        | None ->
          if Atomic.get g.plans_gen <> gen0 then entry
          else if Atomic.compare_and_set g.plans cur (StrMap.add src entry cur) then begin
            (* An invalidation that slipped between the generation check
               and the CAS must still win: clear again on its behalf. *)
            if Atomic.get g.plans_gen <> gen0 then Atomic.set g.plans StrMap.empty;
            entry
          end
          else publish ()
      in
      publish ()

  (* Extract [h]'s visible relation for the session, memoized in the
     session (see the [views] field).  The validity check stays with the
     caller: an expired session must raise even when the answer is still
     sitting in its cache, or expiry would become unobservable. *)
  let visible t s h =
    match List.assoc_opt h.name (Atomic.get s.views) with
    | Some rows ->
      Obs.Counter.record m_view_cache_hits 1;
      rows
    | None ->
      let rows =
        try Reader.visible_relation h.ext ~session_vn:s.vn h.table
        with Reader.Session_expired _ -> raise (expired t s)
      in
      Atomic.set s.views ((h.name, rows) :: Atomic.get s.views);
      rows

  let query_body t s src params =
    let entry = reader_plan_for t (session_gen t s) src in
    let generic = Atomic.get entry.generic in
    let params = ("sessionVN", Value.Int s.vn) :: params in
    match entry.fast with
    | Some (h, vplan) when Plan.full_scan_only generic ->
      Plan.execute_view ~params vplan (visible t s h)
    | Some _ | None -> Plan.execute ~params generic

  let query ?(params = []) t s src =
    let cvn = check_valid t s in
    (* One enabled test for the whole statement: the disabled path is a
       branch and a direct call — no span closure, no histogram math. *)
    if not !Obs.enabled then query_body t s src params
    else begin
      Obs.Counter.add m_reader_queries 1;
      Obs.Histogram.observe m_session_lag (float_of_int (cvn - s.vn));
      Obs.with_span "reader.query" (fun () -> query_body t s src params)
    end

  let read_table t s name =
    let g = session_gen t s in
    match gen_handle g name with
    | None -> failwith (Printf.sprintf "Twovnl: table %S is not registered" name)
    | Some h ->
      if not (valid_for t s ~n:(Schema_ext.n h.ext)) then raise (expired t s);
      visible t s h
end

module Txn = struct
  (* Evolution staging: the pending generation under construction.  The
     registry/order start as the head generation's and are rewritten as
     DDL lands; [created] tracks logical names now bound to tables this
     transaction created (replacement copies and new views), [renamed] the
     freeze-renames to undo on abort.  Every DDL mutates the database
     catalog eagerly — the durability-point-2 save inside
     {!Recovery.run_maintenance} must serialize both generations — and the
     in-memory generation only activates at commit. *)
  type staged = {
    mutable s_registry : handle StrMap.t;
    mutable s_order : string list;
    mutable s_created : string list;
    mutable s_renamed : (string * string) list;
    s_prev_meta : Catalog.generation list;
  }

  type m = {
    owner : t;
    txn_vn : int;
    txn_stats : Maintenance.stats;
    mutable over_deleted : (Table.t * Heap_file.rid) list;
        (** Keyed by physical table: a logical name can move to a staged
            replacement mid-transaction, and rollback must not confuse the
            two heaps' record ids. *)
    mutable finished : bool;
    mutable staged : staged option;
  }

  let begin_ t =
    let txn_vn = Version_state.begin_maintenance t.version in
    t.txn_active <- true;
    Log.info (fun m -> m "maintenance transaction %d begins" txn_vn);
    {
      owner = t;
      txn_vn;
      txn_stats = Maintenance.fresh_stats ();
      over_deleted = [];
      finished = false;
      staged = None;
    }

  let vn m = m.txn_vn

  let stats m = m.txn_stats

  let check_live m = if m.finished then invalid_arg "Twovnl.Txn: transaction already finished"

  (* Name resolution inside the transaction: the staged registry once any
     DDL has landed (maintenance always reads the latest catalog, §3.3),
     the head generation otherwise. *)
  let txn_handle m name =
    match m.staged with
    | Some st -> StrMap.find_opt name st.s_registry
    | None -> handle m.owner name

  let txn_handle_exn m name =
    match txn_handle m name with
    | Some h -> h
    | None -> failwith (Printf.sprintf "Twovnl: table %S is not registered" name)

  let record_over_delete m h rid = m.over_deleted <- (h.table, rid) :: m.over_deleted

  let was_over_delete m h rid =
    List.exists
      (fun (tbl, r) -> tbl == h.table && Heap_file.rid_equal r rid)
      m.over_deleted

  let sql m src =
    check_live m;
    let t = m.owner in
    (* Record over-delete inserts per table for no-log rollback.  The
       statement names a single table, so tag rids with it. *)
    let handle_of_stmt =
      match Vnl_sql.Parser.parse src with
      | Vnl_sql.Ast.Insert { table; _ } -> txn_handle m table
      | Vnl_sql.Ast.Update _ | Vnl_sql.Ast.Delete _ | Vnl_sql.Ast.Select _ -> None
    in
    let on_over_delete rid =
      match handle_of_stmt with
      | Some h -> record_over_delete m h rid
      | None -> ()
    in
    let was_insert_over_delete rid =
      List.exists (fun (_, r) -> Heap_file.rid_equal r rid) m.over_deleted
    in
    Rewrite.maintenance_sql ~stats:m.txn_stats ~on_over_delete ~was_insert_over_delete t.db
      ~lookup:(fun name -> Option.map (fun h -> h.ext) (txn_handle m name))
      ~vn:m.txn_vn src

  let insert m ~table:name values =
    check_live m;
    let h = txn_handle_exn m name in
    let base = Tuple.make (Schema_ext.base h.ext) (pad_values h values) in
    let on_over_delete rid = record_over_delete m h rid in
    ignore
      (Maintenance.apply_insert ~stats:m.txn_stats ~on_over_delete h.ext h.table ~vn:m.txn_vn
         base)

  let live_by_key h key =
    match Table.find_by_key h.table key with
    | Some (rid, tuple) when Maintenance.is_logically_live h.ext tuple -> Some rid
    | Some _ | None -> None

  let read_current m ~table:name ~key =
    check_live m;
    let h = txn_handle_exn m name in
    match Table.find_by_key h.table key with
    | Some (_, tuple) when Maintenance.is_logically_live h.ext tuple ->
      Some (Tuple.make (Schema_ext.base h.ext) (Schema_ext.current_values h.ext tuple))
    | Some _ | None -> None

  let update_by_key m ~table:name ~key ~set =
    check_live m;
    let h = txn_handle_exn m name in
    match live_by_key h key with
    | None -> false
    | Some rid ->
      let base = Schema_ext.base h.ext in
      let assignments = List.map (fun (col, v) -> (Schema.index_of base col, v)) set in
      Maintenance.apply_update ~stats:m.txn_stats h.ext h.table ~vn:m.txn_vn rid assignments;
      true

  let delete_by_key m ~table:name ~key =
    check_live m;
    let h = txn_handle_exn m name in
    match live_by_key h key with
    | None -> false
    | Some rid ->
      Maintenance.apply_delete ~stats:m.txn_stats
        ~was_insert_over_delete:(fun r -> was_over_delete m h r)
        h.ext h.table ~vn:m.txn_vn rid;
      true

  (* The batched maintenance path: same Tables 2-4 transitions as the
     per-op entry points above, but net-effect-folded and page-ordered
     (see {!Batch}).  Over-delete bookkeeping flows both ways: re-inserts
     recorded by earlier statements of this transaction govern the Table 4
     row 2 correction inside the batch, and over-deletes the batch performs
     are recorded for no-log rollback. *)
  let apply_batch m ~table:name ops =
    check_live m;
    let h = txn_handle_exn m name in
    let ops = pad_ops h ops in
    Batch.apply ~stats:m.txn_stats
      ~on_over_delete:(fun rid -> record_over_delete m h rid)
      ~was_insert_over_delete:(fun rid -> was_over_delete m h rid)
      h.ext h.table ~vn:m.txn_vn ops

  (* ---------- online schema evolution ---------- *)

  let ensure_staged m =
    match m.staged with
    | Some st -> st
    | None ->
      let g = head m.owner in
      let st =
        {
          s_registry = g.registry;
          s_order = g.order;
          s_created = [];
          s_renamed = [];
          s_prev_meta = Database.generations_meta m.owner.db;
        }
      in
      m.staged <- Some st;
      st

  (* Mirror the staged catalog into the database's generation metadata
     after every DDL, so the durability-point-2 save inside the
     run_maintenance ladder serializes the pending generation alongside
     the retained ones.  Activation stays with the Version page: a reopen
     whose stored currentVN is below the pending [g_vn] discards it. *)
  let sync_meta m st =
    let t = m.owner in
    let pending =
      generation_meta
        (fresh_generation ~gen:((head t).gen + 1) ~gen_vn:m.txn_vn ~registry:st.s_registry
           ~order:st.s_order)
    in
    let retained = List.map generation_meta (Atomic.get t.generations) in
    Database.set_generations_meta t.db (pending :: retained)

  (* Replace [name]'s table with a staged copy under [new_ext]: park the
     old table under a frozen alias (it keeps serving every generation up
     to the head), create the replacement under the logical name, recreate
     its indexes, and copy the logically-live records — version stamps,
     operations, and pre-update cells carried over by name, added columns
     filled from their defaults.  Logically-deleted records are not
     copied: any session entitled to resurrect one pins a VN below the
     pending generation's and therefore reads the frozen table.  A table
     already replaced earlier in this same transaction is copied again
     from its private staged copy, which is then dropped. *)
  let stage_replace m st ~name ~(old_h : handle) ~new_ext ~added ~extra_index =
    let t = m.owner in
    let was_created = List.mem name st.s_created in
    let tmp_drop =
      if was_created then begin
        let tmp = Printf.sprintf "%s#stage" name in
        Database.rename_table t.db name tmp;
        Some tmp
      end
      else begin
        let frozen = Printf.sprintf "%s@g%d" name (head t).gen in
        Database.rename_table t.db name frozen;
        st.s_renamed <- (name, frozen) :: st.s_renamed;
        None
      end
    in
    let table = Database.create_table t.db name (Schema_ext.extended new_ext) in
    List.iter
      (fun (iname, attrs) -> Table.create_index table ~name:iname attrs)
      (Table.indexes old_h.table);
    (match extra_index with
    | Some (iname, attrs) -> Table.create_index table ~name:iname attrs
    | None -> ());
    let defaults = List.map (fun (a, v) -> (a.Schema.name, v)) added in
    let w = Schema_ext.widening ~from_:old_h.ext ~to_:new_ext ~defaults in
    let rows = ref [] in
    Heap_file.iter_tuples (Table.heap old_h.table) (fun tuple ->
        if Maintenance.is_logically_live old_h.ext tuple then
          rows := Schema_ext.widen w tuple :: !rows);
    ignore (Table.insert_many ~check:false table (List.rev !rows));
    (match tmp_drop with Some tmp -> Database.drop_table t.db tmp | None -> ());
    let h = { name; ext = new_ext; table; added } in
    st.s_registry <- StrMap.add name h st.s_registry;
    if not was_created then st.s_created <- name :: st.s_created;
    sync_meta m st;
    h

  let add_column m ~table:name attr ~default =
    check_live m;
    Catalog.check_name ~what:"attribute" attr.Schema.name;
    if attr.Schema.key then
      invalid_arg "Twovnl.Txn.add_column: cannot add a key column";
    if not (Value.matches attr.Schema.dtype default) then
      invalid_arg "Twovnl.Txn.add_column: default does not match the column dtype";
    let st = ensure_staged m in
    let old_h =
      match StrMap.find_opt name st.s_registry with
      | Some h -> h
      | None -> failwith (Printf.sprintf "Twovnl: table %S is not registered" name)
    in
    let new_base = Schema.extend_with (Schema_ext.base old_h.ext) attr in
    let new_ext = Schema_ext.extend ~n:(Schema_ext.n old_h.ext) new_base in
    ignore
      (stage_replace m st ~name ~old_h ~new_ext
         ~added:(old_h.added @ [ (attr, default) ])
         ~extra_index:None)

  let add_table m ?n ~name schema =
    check_live m;
    let st = ensure_staged m in
    if StrMap.mem name st.s_registry then
      invalid_arg (Printf.sprintf "Twovnl.Txn.add_table: %S already registered" name);
    let ext = Schema_ext.extend ?n schema in
    let table = Database.create_table m.owner.db name (Schema_ext.extended ext) in
    let h = { name; ext; table; added = [] } in
    st.s_registry <- StrMap.add name h st.s_registry;
    st.s_order <- name :: st.s_order;
    st.s_created <- name :: st.s_created;
    sync_meta m st

  let add_index m ~table:name ~index attrs =
    check_live m;
    let st = ensure_staged m in
    let old_h =
      match StrMap.find_opt name st.s_registry with
      | Some h -> h
      | None -> failwith (Printf.sprintf "Twovnl: table %S is not registered" name)
    in
    if List.mem name st.s_created then begin
      (* The staged table is already this transaction's private copy: the
         index can build in place, invisibly to every reader. *)
      Table.create_index old_h.table ~name:index attrs;
      sync_meta m st
    end
    else
      (* Index the copy, not the live table: a crash between the data
         flush and the publish must reopen to exactly the pre-evolution
         catalog, which an in-place index on a shared table would
         violate. *)
      ignore
        (stage_replace m st ~name ~old_h ~new_ext:old_h.ext ~added:old_h.added
           ~extra_index:(Some (index, attrs)))

  let commit m =
    check_live m;
    m.finished <- true;
    let t = m.owner in
    (match m.staged with
    | None -> ()
    | Some st ->
      (* Activate the pending generation before the Version publish: its
         [gen_vn] exceeds every live session VN until the publish lands,
         so early visibility is harmless, while the reverse order would
         let a session pin the new VN and still resolve the old head. *)
      let rec activate () =
        let gens = Atomic.get t.generations in
        let hd = List.hd gens in
        let g =
          fresh_generation ~gen:(hd.gen + 1) ~gen_vn:m.txn_vn ~registry:st.s_registry
            ~order:st.s_order
        in
        if not (Atomic.compare_and_set t.generations gens (g :: gens)) then activate ()
        else begin
          Obs.Counter.record m_evolutions 1;
          Obs.Counter.record m_plan_gen_invalidations
            (StrMap.cardinal (Atomic.get hd.plans));
          Obs.Gauge.record m_catalog_generation g.gen;
          Log.info (fun mm ->
              mm "catalog generation %d activates at VN %d (%d table(s))" g.gen m.txn_vn
                (List.length g.order))
        end
      in
      activate ());
    m.owner.txn_active <- false;
    Version_state.commit_maintenance m.owner.version ~vn:m.txn_vn;
    (* Publish the committed VN as the new epoch: sessions opened from
       here pin it, and frames evicted from here retire under it. *)
    Epoch.advance m.owner.epochs m.txn_vn;
    Buffer_pool.advance_epoch (Database.pool m.owner.db) m.txn_vn;
    Obs.Counter.record m_maintenance_commits 1;
    Obs.Gauge.record m_current_vn (current_vn m.owner);
    Log.info (fun m' ->
        let s = m.txn_stats in
        m' "maintenance transaction %d committed (%d ins / %d upd / %d del logical)" m.txn_vn
          s.Maintenance.logical_inserts s.Maintenance.logical_updates
          s.Maintenance.logical_deletes)

  let abort m =
    check_live m;
    m.finished <- true;
    let t = m.owner in
    (* Unstage first: drop this transaction's private tables and move the
       frozen originals back under their logical names, so the tuple-level
       rollback below walks exactly the pre-transaction catalog. *)
    (match m.staged with
    | None -> ()
    | Some st ->
      List.iter (fun name -> Database.drop_table t.db name) st.s_created;
      List.iter
        (fun (logical, frozen) -> Database.rename_table t.db frozen logical)
        st.s_renamed;
      Database.set_generations_meta t.db st.s_prev_meta;
      m.staged <- None);
    let reverted =
      List.fold_left
        (fun acc h ->
          let over_deleted rid = was_over_delete m h rid in
          acc + Rollback.revert_all h.ext h.table ~vn:m.txn_vn ~over_deleted)
        0 (handles t)
    in
    t.txn_active <- false;
    Version_state.abort_maintenance t.version;
    Obs.Counter.record m_maintenance_aborts 1;
    Log.info (fun m' -> m' "maintenance transaction %d aborted; %d tuples reverted" m.txn_vn reverted);
    reverted
end

module Round = struct
  type r = {
    owner : t;
    base_vn : int;
    count : int;
    mutable published : int;
    over_mu : Mutex.t;
        (** Guards [over_deleted]: workers on different domains record
            over-delete re-inserts concurrently. *)
    mutable over_deleted : (string * Heap_file.rid) list;
    mutable finished : bool;
  }

  let begin_ t ~count =
    if count < 1 then invalid_arg "Twovnl.Round: count must be >= 1";
    let base_vn = Version_state.begin_round t.version ~count in
    t.txn_active <- true;
    Log.info (fun m ->
        m "maintenance round begins: %d stripes over VNs %d..%d" count (base_vn + 1)
          (base_vn + count));
    {
      owner = t;
      base_vn;
      count;
      published = 0;
      over_mu = Mutex.create ();
      over_deleted = [];
      finished = false;
    }

  let base_vn r = r.base_vn

  let count r = r.count

  let vn r i =
    if i < 0 || i >= r.count then invalid_arg "Twovnl.Round.vn: stripe out of range";
    r.base_vn + 1 + i

  let record_over_delete r name rid =
    Mutex.protect r.over_mu (fun () -> r.over_deleted <- (name, rid) :: r.over_deleted)

  let was_insert_over_delete r name rid =
    Mutex.protect r.over_mu (fun () ->
        List.exists
          (fun (tn, rr) -> String.equal tn name && Heap_file.rid_equal rr rid)
          r.over_deleted)

  (* Publish stripe VNs strictly in order; called by the token holder, so
     publishes never race each other (readers race them, which is the whole
     point).  Each publish is one maintenance-transaction commit for the
     telemetry and the epoch machinery, exactly as [Txn.commit]. *)
  let publish r ~vn:v =
    if r.finished then invalid_arg "Twovnl.Round: round already finished";
    if v <> r.base_vn + 1 + r.published then
      invalid_arg
        (Printf.sprintf "Twovnl.Round.publish: vn %d out of order (next is %d)" v
           (r.base_vn + 1 + r.published));
    Version_state.publish r.owner.version ~vn:v;
    r.published <- r.published + 1;
    if r.published = r.count then begin
      r.finished <- true;
      r.owner.txn_active <- false
    end;
    Epoch.advance r.owner.epochs v;
    Buffer_pool.advance_epoch (Database.pool r.owner.db) v;
    Obs.Counter.record m_maintenance_commits 1;
    Obs.Gauge.record m_current_vn v;
    Log.info (fun m -> m "round stripe published at VN %d (%d/%d)" v r.published r.count)

  (* Abort the unpublished remainder: revert every tuple stamped above the
     last published VN (key-disjoint stripes ⇒ at most one unpublished
     stamp per tuple) and clear the outstanding count.  The published
     prefix stays committed — in-order publication means it is exactly the
     state a shorter round would have left. *)
  let abort r =
    if r.finished then invalid_arg "Twovnl.Round: round already finished";
    r.finished <- true;
    let t = r.owner in
    let current = Version_state.current_vn t.version in
    let reverted =
      List.fold_left
        (fun acc h ->
          let over_deleted rid = was_insert_over_delete r h.name rid in
          acc + Rollback.revert_above h.ext h.table ~current ~over_deleted)
        0 (handles t)
    in
    t.txn_active <- false;
    Version_state.abort_maintenance t.version;
    Obs.Counter.record m_maintenance_aborts 1;
    Log.info (fun m ->
        m "maintenance round aborted past VN %d; %d tuples reverted" current reverted);
    reverted
end
