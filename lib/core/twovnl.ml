module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Executor = Vnl_query.Executor
module Heap_file = Vnl_storage.Heap_file
module Buffer_pool = Vnl_storage.Buffer_pool
module Epoch = Vnl_util.Epoch
module StrMap = Map.Make (String)

let log_src = Logs.Src.create "vnl.core" ~doc:"2VNL warehouse events"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Obs = Vnl_obs.Obs

(* 2VNL session and maintenance telemetry (default registry, gated). *)
let m_sessions_opened = Obs.Registry.counter "twovnl.sessions_opened"

let m_sessions_expired = Obs.Registry.counter "twovnl.sessions_expired"

let m_reader_queries = Obs.Registry.counter "twovnl.reader_queries"

let m_view_cache_hits = Obs.Registry.counter "twovnl.view_cache_hits"

let m_maintenance_commits = Obs.Registry.counter "twovnl.maintenance_commits"

let m_maintenance_aborts = Obs.Registry.counter "twovnl.maintenance_aborts"

let m_gc_reclaimed = Obs.Registry.counter "twovnl.gc_reclaimed"

let m_current_vn = Obs.Registry.gauge "twovnl.current_vn"

(* How far the GC horizon (minimum pinned session epoch) trails currentVN
   when garbage collection runs: 0 means reclamation is fully caught up,
   larger values mean long-lived sessions are holding history alive. *)
let m_epoch_lag = Obs.Registry.gauge "twovnl.epoch_lag"

(* The VN distribution: how far behind currentVN each reader query runs.
   A 2VNL warehouse keeps this in {0, 1}; nVNL widens the band. *)
let m_session_lag =
  Obs.Registry.histogram ~buckets:[| 0.0; 1.0; 2.0; 3.0; 4.0; 6.0; 8.0 |] "twovnl.session_vn_lag"

module Plan = Vnl_query.Plan

type handle = { name : string; ext : Schema_ext.t; table : Table.t }

(* Cached reader plans, keyed by the pre-rewrite SQL text.  [generic] is
   the compiled §4.1 rewrite; [fast] — when the query matches the pattern
   {!Rewrite.reader_fast_path} recognizes — additionally holds a view plan
   over the base schema, executed against {!Reader.visible_relation}. *)
type reader_plan = {
  rewritten : Vnl_sql.Ast.select;
  fast : (handle * Plan.t) option;
  generic : Plan.t Atomic.t;
      (** Atomic so any reader domain can swap in a re-prepared plan after
          index DDL without a cache-wide lock. *)
}

(* Both reader-facing shared structures are lock-free.

   Sessions: a session is an epoch pin (see {!Vnl_util.Epoch}) — beginning
   one CASes the session's VN into a slot of the epoch domain, ending one
   releases the slot, and the GC horizon is a fold over the slots.  The
   PR 5 mutex-guarded session table put a global lock on every session
   open/expire (and the old lock-free sketch had a latent race: the VN was
   read {e before} the table insert, so a refresh committing in between
   could let GC advance past a session that was about to exist — the
   epoch pin's store-then-revalidate protocol closes exactly that window).

   Plan cache: an immutable [StrMap] behind an [Atomic], updated by CAS.
   Lookups — the per-query operation — are one atomic load.  A losing
   compiler either finds the winner's entry on retry or re-publishes; the
   generation counter keeps an entry compiled against a stale registry
   from surviving a concurrent [register_table] invalidation. *)
type t = {
  db : Database.t;
  version : Version_state.t;
  registry : (string, handle) Hashtbl.t;
  mutable registry_order : string list;
  epochs : unit Epoch.t;
      (** Session pins; the epoch is the warehouse VN.  Advanced at every
          refresh commit. *)
  next_session : int Atomic.t;
  mutable txn_active : bool;
  reader_plans : reader_plan StrMap.t Atomic.t;
  plans_gen : int Atomic.t;
      (** Bumped by every invalidation; publishers that began compiling under
          an older generation do not cache their (possibly stale) entry. *)
  last_gc_horizon : int Atomic.t;
      (** Horizon of the last completed collection.  Garbage is only ever
          created at the then-current VN, so until the horizon moves past
          it there is nothing new to reclaim and the scan is elided. *)
}

exception Expired of { session_vn : int; current_vn : int }

let make db version =
  let pool = Database.pool db in
  (* Evicted buffer frames join the epoch-gated retire bag instead of
     being recycled immediately: a latch-free reader may still be
     validating against them. *)
  Buffer_pool.enable_epoch_reclamation pool;
  Buffer_pool.advance_epoch pool (Version_state.current_vn version);
  {
    db;
    version;
    registry = Hashtbl.create 8;
    registry_order = [];
    epochs = Epoch.create ~initial:(Version_state.current_vn version) ();
    next_session = Atomic.make 1;
    txn_active = false;
    reader_plans = Atomic.make StrMap.empty;
    plans_gen = Atomic.make 0;
    last_gc_horizon = Atomic.make min_int;
  }

let init db = make db (Version_state.install db)

let attach db = make db (Version_state.attach db)

let database t = t.db

let version_state t = t.version

let current_vn t = Version_state.current_vn t.version

(* Registration changes what the reader rewrite produces for queries
   naming this table, so cached reader plans must not survive it.  The
   generation bump happens first: a compile that started before this
   invalidation sees the changed generation and declines to publish. *)
let invalidate_plans t =
  Atomic.incr t.plans_gen;
  Atomic.set t.reader_plans StrMap.empty

let register_table t ?n ~name schema =
  let ext = Schema_ext.extend ?n schema in
  let table = Database.create_table t.db name (Schema_ext.extended ext) in
  let h = { name; ext; table } in
  Hashtbl.add t.registry name h;
  t.registry_order <- name :: t.registry_order;
  invalidate_plans t;
  h

let attach_table t ?n ~name base =
  let ext = Schema_ext.extend ?n base in
  let table = Database.table_exn t.db name in
  if not (Schema.equal (Table.schema table) (Schema_ext.extended ext)) then
    invalid_arg
      (Printf.sprintf "Twovnl.attach_table: stored schema of %S does not match the extension"
         name);
  let h = { name; ext; table } in
  Hashtbl.add t.registry name h;
  t.registry_order <- name :: t.registry_order;
  invalidate_plans t;
  h


let handle t name = Hashtbl.find_opt t.registry name

let handle_exn t name =
  match handle t name with
  | Some h -> h
  | None -> failwith (Printf.sprintf "Twovnl: table %S is not registered" name)

let handles t = List.rev_map (fun name -> Hashtbl.find t.registry name) t.registry_order

let handle_name h = h.name

let ext h = h.ext

let table h = h.table

let lookup t name = Option.map (fun h -> h.ext) (handle t name)

let load_initial t name tuples =
  let h = handle_exn t name in
  let vn = current_vn t in
  List.iter
    (fun base -> ignore (Table.insert h.table (Schema_ext.fresh_insert h.ext ~vn base)))
    tuples

let min_session_vn t =
  (* The epoch fold already bounds the result by its own published epoch;
     taking the min with currentVN keeps the horizon correct even if the
     epoch domain briefly trails the version state (advance happens after
     commit). *)
  min (current_vn t) (Epoch.min_pinned t.epochs)

let collect_garbage t =
  let c = current_vn t in
  Epoch.advance t.epochs c;
  Buffer_pool.advance_epoch (Database.pool t.db) c;
  let horizon = min_session_vn t in
  Obs.Gauge.record m_epoch_lag (c - horizon);
  (* Garbage is stamped with the VN current at its creation, which is at
     or above the horizon of the previous collection — so if the horizon
     has not advanced since then, the full-table scan cannot find
     anything and is skipped.  (Under continuous refresh with pinned
     readers this elides most collections.) *)
  if horizon <= Atomic.get t.last_gc_horizon then 0
  else begin
    Atomic.set t.last_gc_horizon horizon;
    let reclaimed =
      Obs.with_span "gc.collect" (fun () ->
          List.fold_left
            (fun acc h -> acc + Gc.collect h.ext h.table ~min_session_vn:horizon)
            0 (handles t))
    in
    let frames = Buffer_pool.reclaim_frames (Database.pool t.db) ~horizon in
    Obs.Counter.record m_gc_reclaimed reclaimed;
    Log.debug (fun m ->
        m "gc at horizon %d reclaimed %d tuples, %d retired frames" horizon reclaimed frames);
    reclaimed
  end

(* §7 no-log crash recovery: every touched tuple carries its pre-update
   version, so the database state is repaired exactly like an abort —
   without any log.  Generalized for pipelined rounds: the stored currentVN
   is the last {e published} VN, and every tuple stamped above it belongs
   to an unpublished stripe (a classic single transaction is the special
   case where the only such stamp is currentVN + 1). *)
let recover t =
  if not (Version_state.maintenance_active t.version) then 0
  else begin
    let current = Version_state.current_vn t.version in
    let reverted =
      List.fold_left
        (fun acc h ->
          acc + Rollback.revert_above h.ext h.table ~current ~over_deleted:(fun _ -> false))
        0 (handles t)
    in
    Version_state.abort_maintenance t.version;
    Log.info (fun m ->
        m "crash recovery: reverted %d tuples of work past published VN %d" reverted current);
    reverted
  end

module Session = struct
  type s = {
    id : int;
    vn : int;
    slot : Epoch.slot;
    closed : bool Atomic.t;
    views : (string * Tuple.t list) list Atomic.t;
        (** Per-table memo of the session's visible relation.  A session's
            view is immutable for its whole lifetime — pre-states survive
            until the maintenance transaction that also expires the session
            (the 2VNL guarantee the [gc_preserves_reader_view] test pins
            down) — so the first extraction can serve every later read.
            Concurrent fills race benignly: both compute the same relation
            and the last published list wins. *)
  }

  (* Lock-free open: pin the warehouse epoch.  [Epoch.pin]'s
     store-then-revalidate protocol guarantees the pinned VN is the
     currentVN at some instant after the pin became visible to the GC
     horizon fold — a refresh that commits mid-open either bumps the
     session onto the new VN or is ordered after the pin, so GC can never
     reclaim a version this session is entitled to read. *)
  let begin_ t =
    let slot, vn = Epoch.pin ~current:(fun () -> current_vn t) t.epochs in
    let id = Atomic.fetch_and_add t.next_session 1 in
    Obs.Counter.record m_sessions_opened 1;
    Log.debug (fun m -> m "session %d begins at version %d" id vn);
    { id; vn; slot; closed = Atomic.make false; views = Atomic.make [] }

  let vn s = s.vn

  let id s = s.id

  (* Generalized §4.1 check: a session is valid while it has overlapped at
     most n - 1 maintenance transactions, where n is the smallest version
     count among registered tables (2 when none are registered).  For pure
     2VNL this is exactly the paper's condition, and agrees with
     [Rewrite.session_valid]. *)
  let min_n t =
    List.fold_left (fun acc h -> min acc (Schema_ext.n h.ext)) max_int (handles t)
    |> fun n -> if n = max_int then 2 else n

  (* One atomic read of (currentVN, outstanding): under a pipelined round
     [outstanding] counts the begun-but-unpublished VNs, so the §4.1 bound
     charges the session for every version slot the round may consume.
     [c - s.vn + outstanding] is constant across a round's publishes (each
     publish increments c and decrements outstanding together), so a
     session valid at round begin stays valid to round end whenever
     n >= count + 1 — the nVNL sizing rule the pipeline enforces. *)
  let valid_for t s ~n =
    let c, outstanding = Version_state.read_outstanding t.version in
    c - s.vn + outstanding <= n - 1

  let is_valid t s = valid_for t s ~n:(min_n t)

  (* The push-notification probe: same arithmetic as [valid_for], but the
     caller learns how close the session is to expiry instead of a bare
     bool, and an expired session yields the exception payload without
     raising (the network server turns it into a wire frame). *)
  let validity t s =
    let n = min_n t in
    let c, outstanding = Version_state.read_outstanding t.version in
    let slack = n - 1 - (c - s.vn + outstanding) in
    if slack >= 0 then `Valid slack else `Expired (s.vn, c)

  (* [exchange] makes a double-end harmless: the slot is released exactly
     once, never yanking a pin a later session acquired in the same slot. *)
  let end_ _t s = if not (Atomic.exchange s.closed true) then Epoch.unpin s.slot

  (* Cross-shard snapshot vector: one session per warehouse instance, each
     pinned under its own epoch.  There is no global clock to agree on —
     consistency of the vector means each component is a consistent
     snapshot of its shard and stays readable for the reader's lifetime,
     which each epoch pin guarantees independently.  If a later begin
     fails (a shard mid-crash), the earlier pins are released before the
     exception escapes so no GC horizon is held hostage. *)
  let begin_vector ts =
    let opened = ref [] in
    (try List.iter (fun t -> opened := (t, begin_ t) :: !opened) ts
     with e ->
       List.iter (fun (t, s) -> end_ t s) !opened;
       raise e);
    List.rev_map snd !opened

  let end_vector ts sessions =
    if List.compare_lengths ts sessions <> 0 then
      invalid_arg "Twovnl.Session.end_vector: length mismatch";
    List.iter2 end_ ts sessions

  let vn_vector sessions = List.map vn sessions

  let expired t s =
    Obs.Counter.record m_sessions_expired 1;
    Log.info (fun m ->
        m "session %d expired (version %d, currentVN %d)" s.id s.vn (current_vn t));
    Expired { session_vn = s.vn; current_vn = current_vn t }

  (* Returns the current VN so [query] can compute the session's lag
     without a second version-state read (each read is a real buffer-pool
     access, so an extra one would both slow the hot path and perturb the
     I/O counters the differential tests hold identical). *)
  let check_valid t s =
    let n = min_n t in
    let c, outstanding = Version_state.read_outstanding t.version in
    if c - s.vn + outstanding > n - 1 then raise (expired t s);
    c

  (* Compile-once reader sessions: the first execution of a statement
     parses, rewrites, and compiles it; re-executions run cached closures.
     The generic plan is revalidated against the catalog each time (index
     DDL re-prepares it).  When the statement matches the §4.1 pattern and
     the rewrite would full-scan anyway, the fast path answers it through
     {!Reader.visible_relation} — same pages, same row order, no per-tuple
     CASE/visibility evaluation in SQL. *)
  let reader_plan_for t src =
    match StrMap.find_opt src (Atomic.get t.reader_plans) with
    | Some entry ->
      let generic = Atomic.get entry.generic in
      if not (Plan.valid t.db generic) then
        (* Concurrent re-preparations are idempotent: each produces a
           valid plan for the current catalog and the last store wins. *)
        Atomic.set entry.generic (Plan.prepare t.db entry.rewritten);
      entry
    | None ->
      let gen0 = Atomic.get t.plans_gen in
      let entry =
        Obs.with_span "reader.prepare" @@ fun () ->
        let select = Vnl_sql.Parser.parse_select src in
        let rewritten = Rewrite.reader_select ~lookup:(lookup t) select in
        let generic = Plan.prepare t.db rewritten in
        let fast =
          if Plan.full_scan_only generic then
            match Rewrite.reader_fast_path ~lookup:(lookup t) select with
            | Some (name, label) ->
              let h = handle_exn t name in
              (* The rewrite leaves bare items unaliased, so the generic
                 plan's labels (e.g. "col0" for a CASE-translated column)
                 are authoritative; the view plan reproduces them. *)
              Some
                ( h,
                  Plan.prepare_view ~label ~columns:(Plan.columns generic)
                    (Schema_ext.base h.ext) select )
            | None -> None
          else None
        in
        { rewritten; fast; generic = Atomic.make generic }
      in
      (* Publish by CAS into the immutable map.  A racing compiler of the
         same statement loses and adopts the winner's entry; a racing
         invalidation (generation changed) means this entry may reflect a
         stale registry, so it is used once but not cached. *)
      let rec publish () =
        let cur = Atomic.get t.reader_plans in
        match StrMap.find_opt src cur with
        | Some winner -> winner
        | None ->
          if Atomic.get t.plans_gen <> gen0 then entry
          else if Atomic.compare_and_set t.reader_plans cur (StrMap.add src entry cur)
          then begin
            (* An invalidation that slipped between the generation check
               and the CAS must still win: clear again on its behalf. *)
            if Atomic.get t.plans_gen <> gen0 then
              Atomic.set t.reader_plans StrMap.empty;
            entry
          end
          else publish ()
      in
      publish ()

  (* Extract [h]'s visible relation for the session, memoized in the
     session (see the [views] field).  The validity check stays with the
     caller: an expired session must raise even when the answer is still
     sitting in its cache, or expiry would become unobservable. *)
  let visible t s h =
    match List.assoc_opt h.name (Atomic.get s.views) with
    | Some rows ->
      Obs.Counter.record m_view_cache_hits 1;
      rows
    | None ->
      let rows =
        try Reader.visible_relation h.ext ~session_vn:s.vn h.table
        with Reader.Session_expired _ -> raise (expired t s)
      in
      Atomic.set s.views ((h.name, rows) :: Atomic.get s.views);
      rows

  let query_body t s src params =
    let entry = reader_plan_for t src in
    let generic = Atomic.get entry.generic in
    let params = ("sessionVN", Value.Int s.vn) :: params in
    match entry.fast with
    | Some (h, vplan) when Plan.full_scan_only generic ->
      Plan.execute_view ~params vplan (visible t s h)
    | Some _ | None -> Plan.execute ~params generic

  let query ?(params = []) t s src =
    let cvn = check_valid t s in
    (* One enabled test for the whole statement: the disabled path is a
       branch and a direct call — no span closure, no histogram math. *)
    if not !Obs.enabled then query_body t s src params
    else begin
      Obs.Counter.add m_reader_queries 1;
      Obs.Histogram.observe m_session_lag (float_of_int (cvn - s.vn));
      Obs.with_span "reader.query" (fun () -> query_body t s src params)
    end

  let read_table t s name =
    let h = handle_exn t name in
    if not (valid_for t s ~n:(Schema_ext.n h.ext)) then raise (expired t s);
    visible t s h
end

module Txn = struct
  type m = {
    owner : t;
    txn_vn : int;
    txn_stats : Maintenance.stats;
    mutable over_deleted : (string * Heap_file.rid) list;
    mutable finished : bool;
  }

  let begin_ t =
    let txn_vn = Version_state.begin_maintenance t.version in
    t.txn_active <- true;
    Log.info (fun m -> m "maintenance transaction %d begins" txn_vn);
    { owner = t; txn_vn; txn_stats = Maintenance.fresh_stats (); over_deleted = []; finished = false }

  let vn m = m.txn_vn

  let stats m = m.txn_stats

  let check_live m = if m.finished then invalid_arg "Twovnl.Txn: transaction already finished"

  let sql m src =
    check_live m;
    let t = m.owner in
    (* Record over-delete inserts per table for no-log rollback.  The
       statement names a single table, so tag rids with it. *)
    let table_of_stmt =
      match Vnl_sql.Parser.parse src with
      | Vnl_sql.Ast.Insert { table; _ } -> Some table
      | Vnl_sql.Ast.Update _ | Vnl_sql.Ast.Delete _ | Vnl_sql.Ast.Select _ -> None
    in
    let on_over_delete rid =
      match table_of_stmt with
      | Some name -> m.over_deleted <- (name, rid) :: m.over_deleted
      | None -> ()
    in
    let was_insert_over_delete rid =
      List.exists (fun (_, r) -> Heap_file.rid_equal r rid) m.over_deleted
    in
    Rewrite.maintenance_sql ~stats:m.txn_stats ~on_over_delete ~was_insert_over_delete t.db
      ~lookup:(lookup t) ~vn:m.txn_vn src

  let insert m ~table:name values =
    check_live m;
    let t = m.owner in
    let h = handle_exn t name in
    let base = Tuple.make (Schema_ext.base h.ext) values in
    let on_over_delete rid = m.over_deleted <- (name, rid) :: m.over_deleted in
    ignore
      (Maintenance.apply_insert ~stats:m.txn_stats ~on_over_delete h.ext h.table ~vn:m.txn_vn
         base)

  let live_by_key h key =
    match Table.find_by_key h.table key with
    | Some (rid, tuple) when Maintenance.is_logically_live h.ext tuple -> Some rid
    | Some _ | None -> None

  let read_current m ~table:name ~key =
    check_live m;
    let h = handle_exn m.owner name in
    match Table.find_by_key h.table key with
    | Some (_, tuple) when Maintenance.is_logically_live h.ext tuple ->
      Some (Tuple.make (Schema_ext.base h.ext) (Schema_ext.current_values h.ext tuple))
    | Some _ | None -> None

  let update_by_key m ~table:name ~key ~set =
    check_live m;
    let h = handle_exn m.owner name in
    match live_by_key h key with
    | None -> false
    | Some rid ->
      let base = Schema_ext.base h.ext in
      let assignments = List.map (fun (col, v) -> (Schema.index_of base col, v)) set in
      Maintenance.apply_update ~stats:m.txn_stats h.ext h.table ~vn:m.txn_vn rid assignments;
      true

  let delete_by_key m ~table:name ~key =
    check_live m;
    let h = handle_exn m.owner name in
    match live_by_key h key with
    | None -> false
    | Some rid ->
      let was_insert_over_delete r =
        List.exists
          (fun (tn, r') -> String.equal tn name && Heap_file.rid_equal r' r)
          m.over_deleted
      in
      Maintenance.apply_delete ~stats:m.txn_stats ~was_insert_over_delete h.ext h.table
        ~vn:m.txn_vn rid;
      true

  (* The batched maintenance path: same Tables 2-4 transitions as the
     per-op entry points above, but net-effect-folded and page-ordered
     (see {!Batch}).  Over-delete bookkeeping flows both ways: re-inserts
     recorded by earlier statements of this transaction govern the Table 4
     row 2 correction inside the batch, and over-deletes the batch performs
     are recorded for no-log rollback. *)
  let apply_batch m ~table:name ops =
    check_live m;
    let h = handle_exn m.owner name in
    let on_over_delete rid = m.over_deleted <- (name, rid) :: m.over_deleted in
    let was_insert_over_delete rid =
      List.exists
        (fun (tn, r) -> String.equal tn name && Heap_file.rid_equal r rid)
        m.over_deleted
    in
    Batch.apply ~stats:m.txn_stats ~on_over_delete ~was_insert_over_delete h.ext h.table
      ~vn:m.txn_vn ops

  let commit m =
    check_live m;
    m.finished <- true;
    m.owner.txn_active <- false;
    Version_state.commit_maintenance m.owner.version ~vn:m.txn_vn;
    (* Publish the committed VN as the new epoch: sessions opened from
       here pin it, and frames evicted from here retire under it. *)
    Epoch.advance m.owner.epochs m.txn_vn;
    Buffer_pool.advance_epoch (Database.pool m.owner.db) m.txn_vn;
    Obs.Counter.record m_maintenance_commits 1;
    Obs.Gauge.record m_current_vn (current_vn m.owner);
    Log.info (fun m' ->
        let s = m.txn_stats in
        m' "maintenance transaction %d committed (%d ins / %d upd / %d del logical)" m.txn_vn
          s.Maintenance.logical_inserts s.Maintenance.logical_updates
          s.Maintenance.logical_deletes)

  let abort m =
    check_live m;
    m.finished <- true;
    let t = m.owner in
    let reverted =
      List.fold_left
        (fun acc h ->
          let over_deleted rid =
            List.exists
              (fun (name, r) -> String.equal name h.name && Heap_file.rid_equal r rid)
              m.over_deleted
          in
          acc + Rollback.revert_all h.ext h.table ~vn:m.txn_vn ~over_deleted)
        0 (handles t)
    in
    t.txn_active <- false;
    Version_state.abort_maintenance t.version;
    Obs.Counter.record m_maintenance_aborts 1;
    Log.info (fun m' -> m' "maintenance transaction %d aborted; %d tuples reverted" m.txn_vn reverted);
    reverted
end

module Round = struct
  type r = {
    owner : t;
    base_vn : int;
    count : int;
    mutable published : int;
    over_mu : Mutex.t;
        (** Guards [over_deleted]: workers on different domains record
            over-delete re-inserts concurrently. *)
    mutable over_deleted : (string * Heap_file.rid) list;
    mutable finished : bool;
  }

  let begin_ t ~count =
    if count < 1 then invalid_arg "Twovnl.Round: count must be >= 1";
    let base_vn = Version_state.begin_round t.version ~count in
    t.txn_active <- true;
    Log.info (fun m ->
        m "maintenance round begins: %d stripes over VNs %d..%d" count (base_vn + 1)
          (base_vn + count));
    {
      owner = t;
      base_vn;
      count;
      published = 0;
      over_mu = Mutex.create ();
      over_deleted = [];
      finished = false;
    }

  let base_vn r = r.base_vn

  let count r = r.count

  let vn r i =
    if i < 0 || i >= r.count then invalid_arg "Twovnl.Round.vn: stripe out of range";
    r.base_vn + 1 + i

  let record_over_delete r name rid =
    Mutex.protect r.over_mu (fun () -> r.over_deleted <- (name, rid) :: r.over_deleted)

  let was_insert_over_delete r name rid =
    Mutex.protect r.over_mu (fun () ->
        List.exists
          (fun (tn, rr) -> String.equal tn name && Heap_file.rid_equal rr rid)
          r.over_deleted)

  (* Publish stripe VNs strictly in order; called by the token holder, so
     publishes never race each other (readers race them, which is the whole
     point).  Each publish is one maintenance-transaction commit for the
     telemetry and the epoch machinery, exactly as [Txn.commit]. *)
  let publish r ~vn:v =
    if r.finished then invalid_arg "Twovnl.Round: round already finished";
    if v <> r.base_vn + 1 + r.published then
      invalid_arg
        (Printf.sprintf "Twovnl.Round.publish: vn %d out of order (next is %d)" v
           (r.base_vn + 1 + r.published));
    Version_state.publish r.owner.version ~vn:v;
    r.published <- r.published + 1;
    if r.published = r.count then begin
      r.finished <- true;
      r.owner.txn_active <- false
    end;
    Epoch.advance r.owner.epochs v;
    Buffer_pool.advance_epoch (Database.pool r.owner.db) v;
    Obs.Counter.record m_maintenance_commits 1;
    Obs.Gauge.record m_current_vn v;
    Log.info (fun m -> m "round stripe published at VN %d (%d/%d)" v r.published r.count)

  (* Abort the unpublished remainder: revert every tuple stamped above the
     last published VN (key-disjoint stripes ⇒ at most one unpublished
     stamp per tuple) and clear the outstanding count.  The published
     prefix stays committed — in-order publication means it is exactly the
     state a shorter round would have left. *)
  let abort r =
    if r.finished then invalid_arg "Twovnl.Round: round already finished";
    r.finished <- true;
    let t = r.owner in
    let current = Version_state.current_vn t.version in
    let reverted =
      List.fold_left
        (fun acc h ->
          let over_deleted rid = was_insert_over_delete r h.name rid in
          acc + Rollback.revert_above h.ext h.table ~current ~over_deleted)
        0 (handles t)
    in
    t.txn_active <- false;
    Version_state.abort_maintenance t.version;
    Obs.Counter.record m_maintenance_aborts 1;
    Log.info (fun m ->
        m "maintenance round aborted past VN %d; %d tuples reverted" current reverted);
    reverted
end
