(** The length-prefixed binary wire protocol.

    Every message is one {e frame}: a 4-byte big-endian payload length
    followed by the payload, whose first byte is the opcode.  Lengths are
    bounded by {!max_frame}; a longer (or zero-length) prefix is a fatal
    protocol error — the peer is desynchronized and the connection must
    close.  All multi-byte integers are big-endian; strings carry a length
    prefix (u16 for identifiers, u32 for SQL text).

    Client requests: [Hello] (open a reader session), [Query] (execute a
    SELECT, materializing a server-side cursor), [Fetch] (next chunk of a
    cursor), [Close_cursor], [Bye] (orderly close).

    Server messages: [Hello_ok], [Result] (cursor id + column labels +
    total row count), [Rows] (a chunk, with a [last] marker), [Ok],
    [Error] (a {!error_code} and message), and the {e server-pushed}
    [Expired] notification — sent unsolicited when the maintainer
    publishes enough versions to expire the connection's session (§2.1's
    expiry model over the wire).  Clients must therefore tolerate an
    [Expired] frame wherever they expect a response.

    Decoding is incremental: feed whatever bytes the socket produced into
    a {!Decoder.t} and drain complete frames.  Decoders never raise on
    malformed input — corruption surfaces as [`Corrupt], never as an
    exception escaping a connection handler. *)

val max_frame : int
(** Maximum payload bytes (1 MiB).  Both sides enforce it. *)

type error_code =
  | Bad_frame  (** Malformed or unparseable payload. *)
  | No_session  (** Query/Fetch before Hello. *)
  | Session_expired  (** The documented post-expiry error: the session
                         overlapped too many maintenance transactions;
                         Hello again for a fresh one. *)
  | Query_failed  (** SQL parse/execution error; message has details. *)
  | Unknown_cursor
  | Server_busy  (** Admission control: connection or queue limit hit. *)
  | Too_many_cursors

val error_code_to_int : error_code -> int

val error_code_of_int : int -> error_code option

val error_code_name : error_code -> string

type request =
  | Hello of string  (** Client-chosen name, informational. *)
  | Query of string  (** SELECT text (2VNL reader rewrite applies). *)
  | Fetch of { cursor : int; max_rows : int }
  | Close_cursor of int
  | Bye

type response =
  | Hello_ok of { session_id : int; session_vn : int; catalog_gen : int }
      (** [catalog_gen] is the catalog generation the session resolves
          against — a client that re-Hellos after a schema evolution sees
          it advance (and new columns with it). *)
  | Result of { cursor : int; columns : string list; total_rows : int }
  | Rows of { cursor : int; rows : Vnl_relation.Value.t list list; last : bool }
  | Ok_
  | Error_ of { code : error_code; message : string }
  | Expired of { session_vn : int; current_vn : int }

val max_str16 : int
(** Maximum bytes in a u16-prefixed string (65535): identifiers, error
    messages, and [Str] values.  Longer payloads cannot be encoded. *)

val value_size : Vnl_relation.Value.t -> int
(** Encoded bytes of one value (tag included). *)

val row_size : Vnl_relation.Value.t list -> int
(** Encoded bytes of one row in a [Rows] payload (column count included). *)

val rows_overhead : int
(** Fixed payload bytes of a [Rows] frame besides the rows themselves
    (opcode, cursor, row count, last marker).  A chunk fits iff
    [rows_overhead + sum row_size <= max_frame]. *)

val row_encodable : Vnl_relation.Value.t list -> bool
(** Whether a row can appear in some [Rows] frame at all: every [Str]
    within {!max_str16} and the row alone under the frame bound.  The
    connection layer answers [Query_failed] for rows that fail this
    instead of letting {!encode_response} raise. *)

val encode_request : request -> bytes
(** A complete frame (length prefix included).  Raises [Invalid_argument]
    if a string field exceeds its length prefix ({!max_str16} for [Hello]
    names) or the payload exceeds {!max_frame} — callers validate first
    (see {!Client.query}) rather than catching. *)

val encode_response : response -> bytes
(** Same contract as {!encode_request}: the caller must keep [Rows]
    payloads under {!max_frame} (budget with {!row_size}) and strings
    under their prefix limits. *)

(** Incremental frame decoder: an input buffer plus a payload parser for
    one side of the protocol. *)
module Decoder : sig
  type 'a t

  val request : unit -> request t
  (** Server-side decoder. *)

  val response : unit -> response t
  (** Client-side decoder. *)

  val feed : 'a t -> bytes -> int -> int -> unit
  (** [feed d buf off len] appends received bytes.  Raises
      [Invalid_argument] on an invalid range, never on content. *)

  val next : 'a t -> [ `Msg of 'a | `Await | `Corrupt of string ]
  (** Drain the next complete frame.  [`Await] = need more bytes;
      [`Corrupt] = the stream is unrecoverable (oversized/zero-length
      frame, unknown opcode, malformed payload) and the connection must
      close — a decoder stays corrupt once corrupt. *)

  val buffered : 'a t -> int
  (** Bytes held but not yet consumed (bounded by [max_frame] + header). *)
end
