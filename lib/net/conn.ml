(* Per-connection protocol state machine; see the .mli for the contract.

   The connection owns at most one reader session (an epoch pin) and a
   small table of materialized cursors.  Every request handler is wrapped
   so that the only observable outcomes are response frames — exceptions
   from the SQL layer become [Query_failed], session expiry becomes the
   documented [Session_expired] error, and decoder corruption becomes one
   [Bad_frame] error followed by close.  Releasing the epoch pin eagerly
   (at expiry, not at disconnect) is what keeps hundreds of thousands of
   churning remote sessions from ever holding the GC horizon back. *)

module Twovnl = Vnl_core.Twovnl
module Value = Vnl_relation.Value
module Obs = Vnl_obs.Obs

let m_requests = Obs.Registry.counter "net.requests"

let m_queries = Obs.Registry.counter "net.queries"

let m_fetches = Obs.Registry.counter "net.fetches"

let m_protocol_errors = Obs.Registry.counter "net.protocol_errors"

let m_query_errors = Obs.Registry.counter "net.query_errors"

let m_expiry_pushes = Obs.Registry.counter "net.expiry_pushes"

let m_expired_rejects = Obs.Registry.counter "net.expired_rejects"

(* Wire-request service time (decode to response enqueued), in ms. *)
let m_request_ms =
  Obs.Registry.histogram
    ~buckets:[| 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 50.0; 100.0; 500.0 |]
    "net.request_ms"

type config = { fetch_chunk : int; max_cursors : int; max_output : int }

let default_config = { fetch_chunk = 256; max_cursors = 16; max_output = 1 lsl 22 }

type cursor = { columns : string list; mutable remaining : Value.t list list }

type t = {
  vnl : Twovnl.t;
  config : config;
  dec : Wire.request Wire.Decoder.t;
  (* Output byte queue: grow-and-compact, drained by the transport. *)
  mutable out : bytes;
  mutable out_r : int;
  mutable out_w : int;
  mutable session : Twovnl.Session.s option;
  mutable expired : bool;  (** Session present but expired (pin released). *)
  cursors : (int, cursor) Hashtbl.t;
  mutable next_cursor : int;
  mutable want_close : bool;
  mutable closed : bool;
}

let create ?(config = default_config) vnl =
  {
    vnl;
    config;
    dec = Wire.Decoder.request ();
    out = Bytes.create 4096;
    out_r = 0;
    out_w = 0;
    session = None;
    expired = false;
    cursors = Hashtbl.create 8;
    next_cursor = 1;
    want_close = false;
    closed = false;
  }

(* ---------- output queue ---------- *)

let pending_output t = t.out_w - t.out_r

let push_bytes t b =
  let len = Bytes.length b in
  if Bytes.length t.out - t.out_w < len then begin
    let used = pending_output t in
    if t.out_r > 0 then begin
      Bytes.blit t.out t.out_r t.out 0 used;
      t.out_r <- 0;
      t.out_w <- used
    end;
    if Bytes.length t.out - t.out_w < len then begin
      let cap = ref (Bytes.length t.out * 2) in
      while !cap < used + len do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.out 0 nb 0 used;
      t.out <- nb
    end
  end;
  Bytes.blit b 0 t.out t.out_w len;
  t.out_w <- t.out_w + len

let peek_output t =
  if t.out_w = t.out_r then None else Some (t.out, t.out_r, t.out_w - t.out_r)

let consume_output t n =
  if n < 0 || n > pending_output t then invalid_arg "Conn.consume_output";
  t.out_r <- t.out_r + n;
  if t.out_r = t.out_w then begin
    t.out_r <- 0;
    t.out_w <- 0
  end

let overflowed t = pending_output t > t.config.max_output

let respond t resp = push_bytes t (Wire.encode_response resp)

(* ---------- session lifecycle ---------- *)

let drop_cursors t = Hashtbl.reset t.cursors

let end_session t =
  (match t.session with Some s -> Twovnl.Session.end_ t.vnl s | None -> ());
  t.session <- None;
  t.expired <- false

(* The session just expired: release the pin immediately (GC must not wait
   for the client to notice), drop its cursors, and remember the expired
   state so later requests get the documented error.  [push] distinguishes
   the unsolicited notification from an error reply already on its way. *)
let expire_session t s ~push ~current_vn =
  if push then begin
    Obs.Counter.record m_expiry_pushes 1;
    respond t (Wire.Expired { session_vn = Twovnl.Session.vn s; current_vn })
  end;
  Twovnl.Session.end_ t.vnl s;
  drop_cursors t;
  t.expired <- true

let close t =
  if not t.closed then begin
    t.closed <- true;
    end_session t;
    drop_cursors t
  end

let want_close t = t.want_close

let closed t = t.closed

let session_vn t =
  match t.session with
  | Some s when not t.expired -> Some (Twovnl.Session.vn s)
  | Some _ | None -> None

let on_version_change t =
  if not t.closed then
    match t.session with
    | Some s when not t.expired -> (
      match Twovnl.Session.validity t.vnl s with
      | `Valid _ -> ()
      | `Expired (_, current_vn) -> expire_session t s ~push:true ~current_vn)
    | Some _ | None -> ()

(* ---------- request handlers ---------- *)

let err t code message =
  (* Error frames must always encode: cap the message well under the
     u16 string bound (SQL errors can quote arbitrarily long input). *)
  let message =
    if String.length message > 300 then String.sub message 0 297 ^ "..." else message
  in
  (match code with
  | Wire.Session_expired -> Obs.Counter.record m_expired_rejects 1
  | Wire.Query_failed -> Obs.Counter.record m_query_errors 1
  | _ -> ());
  respond t (Wire.Error_ { code; message })

let handle_hello t name =
  end_session t;
  drop_cursors t;
  let s = Twovnl.Session.begin_ t.vnl in
  t.session <- Some s;
  ignore name;
  respond t
    (Wire.Hello_ok
       {
         session_id = Twovnl.Session.id s;
         session_vn = Twovnl.Session.vn s;
         catalog_gen = Twovnl.Session.generation t.vnl s;
       })

let with_session t k =
  match t.session with
  | None -> err t Wire.No_session "no session: send Hello first"
  | Some _ when t.expired ->
    err t Wire.Session_expired "session expired: begin a new one with Hello"
  | Some s -> k s

let handle_query t sql =
  with_session t @@ fun s ->
  if Hashtbl.length t.cursors >= t.config.max_cursors then
    err t Wire.Too_many_cursors
      (Printf.sprintf "cursor limit %d reached" t.config.max_cursors)
  else begin
    Obs.Counter.record m_queries 1;
    match Twovnl.Session.query t.vnl s sql with
    | { Vnl_query.Executor.columns; rows } ->
      let cursor = t.next_cursor in
      t.next_cursor <- t.next_cursor + 1;
      Hashtbl.replace t.cursors cursor { columns; remaining = rows };
      respond t (Wire.Result { cursor; columns; total_rows = List.length rows })
    | exception Twovnl.Expired { current_vn; _ } ->
      (* Raced a maintenance publish: same transition as the push path,
         but the reply slot carries the error instead of a notification. *)
      expire_session t s ~push:false ~current_vn;
      err t Wire.Session_expired "session expired: begin a new one with Hello"
    | exception
        (( Vnl_sql.Parser.Parse_error _ | Vnl_sql.Lexer.Lex_error _
         | Vnl_query.Executor.Query_error _ | Vnl_query.Eval.Eval_error _
         | Failure _ | Invalid_argument _ ) as e)
      ->
      let msg =
        match e with
        | Vnl_sql.Parser.Parse_error m
        | Vnl_query.Executor.Query_error m
        | Vnl_query.Eval.Eval_error m
        | Failure m
        | Invalid_argument m ->
          m
        | Vnl_sql.Lexer.Lex_error (m, pos) -> Printf.sprintf "%s (at %d)" m pos
        | _ -> "query failed"
      in
      err t Wire.Query_failed msg
  end

(* Pack up to [want] rows into one frame without exceeding the payload
   bound: a chunk stops early at a row that would overflow the remaining
   byte budget, and that row leads the next fetch.  A row no frame can
   carry at all ([Wire.row_encodable] false) therefore always surfaces as
   an empty chunk with the offender at the head. *)
let take_chunk want budget xs =
  let rec go n budget acc rest =
    match rest with
    | row :: tl when n > 0 ->
      let sz = Wire.row_size row in
      if sz > budget || not (Wire.row_encodable row) then (List.rev acc, rest)
      else go (n - 1) (budget - sz) (row :: acc) tl
    | _ -> (List.rev acc, rest)
  in
  go (max 1 want) budget [] xs

let handle_fetch t cursor max_rows =
  with_session t @@ fun _s ->
  match Hashtbl.find_opt t.cursors cursor with
  | None -> err t Wire.Unknown_cursor (Printf.sprintf "no cursor %d" cursor)
  | Some c ->
    Obs.Counter.record m_fetches 1;
    let want =
      if max_rows <= 0 then t.config.fetch_chunk else min max_rows t.config.fetch_chunk
    in
    let budget = Wire.max_frame - Wire.rows_overhead in
    match take_chunk want budget c.remaining with
    | [], _ :: _ ->
      (* The head row cannot be encoded in any frame (an over-long string
         or a row wider than a whole frame): the cursor can never make
         progress past it, so drop it with the documented error. *)
      Hashtbl.remove t.cursors cursor;
      err t Wire.Query_failed
        (Printf.sprintf "cursor %d: row too large for a wire frame" cursor)
    | chunk, rest ->
      c.remaining <- rest;
      let last = rest = [] in
      if last then Hashtbl.remove t.cursors cursor;
      respond t (Wire.Rows { cursor; rows = chunk; last })

let handle_close_cursor t cursor =
  if Hashtbl.mem t.cursors cursor then begin
    Hashtbl.remove t.cursors cursor;
    respond t Wire.Ok_
  end
  else err t Wire.Unknown_cursor (Printf.sprintf "no cursor %d" cursor)

let handle_request t req =
  Obs.Counter.record m_requests 1;
  try
    match req with
    | Wire.Hello name -> handle_hello t name
    | Wire.Query sql -> handle_query t sql
    | Wire.Fetch { cursor; max_rows } -> handle_fetch t cursor max_rows
    | Wire.Close_cursor cursor -> handle_close_cursor t cursor
    | Wire.Bye ->
      respond t Wire.Ok_;
      t.want_close <- true
  with
  | (Out_of_memory | Stack_overflow) as e -> raise e
  | e ->
    (* Residual failure — e.g. a response that refused to encode.  The
       reply stream may be mid-frame-build but never mid-frame-send
       ([respond] queues whole frames), so one error frame is still
       well-formed; after it the connection closes because cursor state
       may no longer match what the client saw.  This backstop is what
       keeps the no-exception-escapes contract of [on_input] true even
       for encode paths the handlers above did not anticipate. *)
    err t Wire.Query_failed ("internal error: " ^ Printexc.to_string e);
    t.want_close <- true

(* ---------- input ---------- *)

let on_input t buf off len =
  if not (t.closed || t.want_close) then begin
    Wire.Decoder.feed t.dec buf off len;
    let continue = ref true in
    while !continue do
      match Wire.Decoder.next t.dec with
      | `Await -> continue := false
      | `Msg req ->
        if !Obs.enabled then begin
          let t0 = Unix.gettimeofday () in
          handle_request t req;
          Obs.Histogram.observe m_request_ms ((Unix.gettimeofday () -. t0) *. 1000.0)
        end
        else handle_request t req;
        if t.want_close then continue := false
      | `Corrupt msg ->
        (* The stream is desynchronized: one diagnostic error frame, then
           close.  The decoder stays corrupt, so this arm runs at most
           once per connection. *)
        Obs.Counter.record m_protocol_errors 1;
        err t Wire.Bad_frame msg;
        t.want_close <- true;
        continue := false
    done
  end
