(** A small blocking client for the wire protocol.

    One synchronous request at a time over one socket; used by the load
    generator, the CLI, and the end-to-end tests.  Server-pushed
    [Expired] frames can arrive between or instead of responses — the
    client records the most recent one ({!expired_notice}) and keeps
    waiting for the actual reply, which is how a remote reader learns its
    session died without polling. *)

type addr = Tcp of string * int | Unix_path of string

type error = { code : Wire.error_code; message : string }

exception Disconnected of string
(** The server (or the transport) closed the connection; also raised on a
    receive timeout.  An abrupt server-side shed surfaces here. *)

type t

val connect : ?timeout_s:float -> addr -> t
(** Blocking connect; [timeout_s] (default 10s) bounds every receive so a
    hung server cannot hang the client.  Raises [Unix.Unix_error] when
    the server refuses the connection. *)

val hello : ?name:string -> t -> (int * int, error) result
(** Open a reader session: [(session_id, session_vn)].  Clears any
    recorded expiry notice.  A [name] longer than {!Wire.max_str16}
    bytes is rejected locally as [Error] ([Bad_frame]) without sending. *)

val query : t -> string -> (int * string list * int, error) result
(** Execute a SELECT: [(cursor, columns, total_rows)].  SQL text too
    long for one frame (≈ {!Wire.max_frame} bytes) is rejected locally
    as [Error] ([Query_failed]) without sending. *)

val fetch :
  t -> cursor:int -> max_rows:int -> (Vnl_relation.Value.t list list * bool, error) result
(** Next chunk: [(rows, last)].  [max_rows <= 0] requests the server's
    default chunk. *)

val close_cursor : t -> int -> (unit, error) result

val bye : t -> (unit, error) result
(** Orderly close: awaits the acknowledgement, then closes the socket. *)

val disconnect : t -> unit
(** Abrupt close — no [Bye], mid-cursor or mid-anything.  The load
    generator uses this to model vanishing clients.  Idempotent. *)

val expired_notice : t -> (int * int) option
(** Most recent server-pushed expiry as [(session_vn, current_vn)],
    whether it arrived unsolicited or alongside an error reply. *)

val catalog_gen : t -> int
(** The catalog generation reported by the last successful {!hello} (0
    before any) — advances when a re-Hello lands after a schema
    evolution. *)
