(** The per-connection protocol state machine — no I/O.

    A [Conn.t] consumes raw bytes from the transport ({!on_input}), runs
    requests against a {!Vnl_core.Twovnl} warehouse through one epoch-pinned
    reader session, and queues encoded response frames for the transport
    to drain ({!peek_output}/{!consume_output}).  Keeping it free of
    sockets makes the whole protocol deterministic under test: the fuzz
    suite feeds it arbitrary byte streams, the expiry suite interleaves it
    with maintenance commits, and the server is a thin select loop around
    it.

    Guarantees the tests pin down:
    - no exception ever escapes {!on_input} — malformed input produces an
      [Error] frame (and marks the connection for close when the stream is
      desynchronized), SQL failures produce [Query_failed];
    - the session's epoch pin is released the moment the session expires
      or the connection closes, never later — a dead or fuzzed connection
      cannot stall the GC/epoch horizon;
    - expiry is {e pushed}: when {!on_version_change} finds the session
      expired, an [Expired] frame is queued once and every later
      [Query]/[Fetch] answers [Session_expired] until a fresh [Hello]. *)

type config = {
  fetch_chunk : int;
      (** Row cap per [Rows] frame (and [Fetch] default).  Chunks are
          additionally byte-budgeted under {!Wire.max_frame}: wide rows
          ship in smaller chunks, and a single row no frame can carry
          answers [Query_failed]. *)
  max_cursors : int;  (** Open cursors per connection. *)
  max_output : int;
      (** Pending-output bytes above which the connection counts as
          {e overflowed} — a slow client the server sheds rather than
          buffering unboundedly (backpressure). *)
}

val default_config : config

type t

val create : ?config:config -> Vnl_core.Twovnl.t -> t

val on_input : t -> bytes -> int -> int -> unit
(** Feed received bytes and process every complete frame.  Never raises
    on content (only [Invalid_argument] on a bad range, as
    {!Wire.Decoder.feed}). *)

val on_version_change : t -> unit
(** Re-check session validity after the maintainer published; queues the
    [Expired] push and releases the pin if the session just expired. *)

val pending_output : t -> int

val peek_output : t -> (bytes * int * int) option
(** The queued output as [(buf, off, len)], valid until the next mutating
    call; [None] when empty. *)

val consume_output : t -> int -> unit
(** Mark [n] output bytes as written. *)

val overflowed : t -> bool
(** Pending output exceeded [max_output]: the server should shed this
    connection. *)

val want_close : t -> bool
(** An orderly [Bye] was answered or the stream is corrupt: close once
    the output drains. *)

val closed : t -> bool

val close : t -> unit
(** Release the session pin and all cursors.  Idempotent; called by the
    server on disconnect, shed, or shutdown. *)

val session_vn : t -> int option
(** The live session's version, [None] before [Hello], after expiry, or
    after close (diagnostics). *)
