(** The session-multiplexing network server.

    One accept domain plus a small pool of worker domains
    ({!Vnl_util.Domain_pool.Group}) serve many short-lived reader sessions
    over TCP or Unix-domain sockets — sessions are multiplexed over the
    workers, never thread-per-connection.  Each accepted connection is a
    {!Conn.t}; workers run a [select] loop feeding bytes in, draining
    frames out, and propagating maintenance publishes as expiry pushes.

    Admission control and backpressure:
    - at most [max_connections] connections overall; excess accepts are
      answered with one [Server_busy] error frame and closed;
    - each worker's hand-off inbox is bounded by [accept_queue]; overflow
      is also busy-rejected, so a stalled worker cannot grow an unbounded
      accept backlog;
    - a connection whose pending output exceeds the configured bound (a
      slow or stalled client) is {e shed} — closed and counted — rather
      than buffered, so readers can never wedge the server or the
      maintainer.

    The maintainer is whoever calls {!Vnl_warehouse.Warehouse.refresh} (or
    the pipelined variant) on the same warehouse from another domain; the
    PR 5/6 domain-safe read path is what makes serving and maintenance
    concurrent. *)

type listen =
  | Tcp of { host : string; port : int }
      (** [port = 0] binds an ephemeral port; read it back with {!port}. *)
  | Unix_path of string

type config = {
  workers : int;  (** Worker domains multiplexing connections. *)
  max_connections : int;
      (** Connection cap; {!start} clamps it below the [select]
          representable-fd limit ([FD_SETSIZE], 1024 on Linux) — an fd
          numbered past that limit is busy-rejected at accept no matter
          the cap, since [Unix.select] cannot poll it. *)
  accept_queue : int;  (** Per-worker pending hand-off bound. *)
  tick_s : float;
      (** Worker select timeout: the upper bound on expiry-push latency
          when a connection is idle. *)
  conn : Conn.config;
}

val default_config : config

type t

val start : ?config:config -> listen -> Vnl_core.Twovnl.t -> t
(** Bind, listen, and spawn the accept/worker domains.  Raises
    [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int
(** The bound TCP port (0 for Unix-domain listeners). *)

val connections : t -> int
(** Currently open connections (gauge [net.connections]). *)

val stop : t -> unit
(** Stop accepting, close every connection (releasing its session pin),
    join the domains, and close the listener.  Idempotent. *)
