(* Open-loop session-churn load generator; see the .mli. *)

module Domain_pool = Vnl_util.Domain_pool
module Xorshift = Vnl_util.Xorshift
module Stats = Vnl_util.Stats
module Value = Vnl_relation.Value

type config = {
  addr : Client.addr;
  sessions : int;
  concurrency : int;
  rate : float;
  fetch_size : int;
  think_ms : float;
  disconnect_prob : float;
  seed : int;
  sql : string;
}

let default_sql =
  "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state"

let default_config =
  {
    addr = Client.Tcp ("127.0.0.1", 7781);
    sessions = 200;
    concurrency = 2;
    rate = 0.0;
    fetch_size = 64;
    think_ms = 0.0;
    disconnect_prob = 0.0;
    seed = 7;
    sql = default_sql;
  }

type report = {
  l_sessions : int;
  l_completed : int;
  l_disconnected : int;
  l_busy : int;
  l_shed : int;
  l_expired : int;
  l_errors : int;
  l_inconsistent : int;
  l_requests : int;
  l_rows : int;
  l_late_starts : int;
  l_elapsed_s : float;
  l_qps : float;
  l_sessions_per_s : float;
  l_p50_ms : float;
  l_p99_ms : float;
}

(* ---------- hardened env knobs (the VNL_STRESS_* discipline) ---------- *)

let env_int ?(least = 1) name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some raw -> (
    match int_of_string_opt (String.trim raw) with
    | Some n when n >= least -> n
    | Some n -> Printf.ksprintf failwith "%s=%d: must be an integer >= %d" name n least
    | None -> Printf.ksprintf failwith "%s=%S: not an integer" name raw)

let env_float ?(least = epsilon_float) name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some raw -> (
    match float_of_string_opt (String.trim raw) with
    | Some f when f >= least -> f
    | Some f -> Printf.ksprintf failwith "%s=%g: must be a number >= %g" name f least
    | None -> Printf.ksprintf failwith "%s=%S: not a number" name raw)

(* ---------- one generator domain ---------- *)

type acc = {
  mutable a_sessions : int;
  mutable a_completed : int;
  mutable a_disconnected : int;
  mutable a_busy : int;
  mutable a_shed : int;
  mutable a_expired : int;
  mutable a_errors : int;
  mutable a_inconsistent : int;
  mutable a_requests : int;
  mutable a_rows : int;
  mutable a_late : int;
  mutable a_lat : float list;
}

let fresh_acc () =
  {
    a_sessions = 0;
    a_completed = 0;
    a_disconnected = 0;
    a_busy = 0;
    a_shed = 0;
    a_expired = 0;
    a_errors = 0;
    a_inconsistent = 0;
    a_requests = 0;
    a_rows = 0;
    a_late = 0;
    a_lat = [];
  }

let timed acc f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  acc.a_requests <- acc.a_requests + 1;
  acc.a_lat <- ((Unix.gettimeofday () -. t0) *. 1000.0) :: acc.a_lat;
  r

let sort_rows rows = List.sort (List.compare Value.compare) rows

(* Run the full query + fetch loop; [Ok rows] on completion, [`Expired]
   when the session died (notice or documented error), [`Err] otherwise. *)
let run_query cfg acc c =
  match timed acc (fun () -> Client.query c cfg.sql) with
  | Error { code = Wire.Session_expired; _ } -> `Expired
  | Error _ -> `Err
  | Ok (cursor, _cols, _total) ->
    let rec fetch_all rows =
      if cfg.think_ms > 0.0 then Unix.sleepf (cfg.think_ms /. 1000.0);
      match timed acc (fun () -> Client.fetch c ~cursor ~max_rows:cfg.fetch_size) with
      | Error { code = Wire.Session_expired; _ } -> `Expired
      | Error _ -> `Err
      | Ok (chunk, last) ->
        let rows = List.rev_append chunk rows in
        acc.a_rows <- acc.a_rows + List.length chunk;
        if last then `Rows (sort_rows rows) else fetch_all rows
    in
    fetch_all []

let one_session cfg acc rng =
  acc.a_sessions <- acc.a_sessions + 1;
  match Client.connect ~timeout_s:30.0 cfg.addr with
  | exception Unix.Unix_error ((ECONNREFUSED | ECONNRESET | ENOENT | EAGAIN), _, _) ->
    acc.a_busy <- acc.a_busy + 1
  | c -> (
    try
      match timed acc (fun () -> Client.hello c) with
      | Error { code = Wire.Server_busy; _ } ->
        acc.a_busy <- acc.a_busy + 1;
        Client.disconnect c
      | Error _ ->
        acc.a_errors <- acc.a_errors + 1;
        Client.disconnect c
      | Ok (_sid, _vn) -> (
        (* Abrupt mid-cursor disconnect: start the query, take one chunk,
           vanish.  The server must shrug (close, release the pin). *)
        if cfg.disconnect_prob > 0.0 && Xorshift.float rng 1.0 < cfg.disconnect_prob then begin
          (match timed acc (fun () -> Client.query c cfg.sql) with
          | Ok (cursor, _, _) ->
            (match timed acc (fun () -> Client.fetch c ~cursor ~max_rows:cfg.fetch_size) with
            | Ok (chunk, _) -> acc.a_rows <- acc.a_rows + List.length chunk
            | Error _ -> ())
          | Error _ -> ());
          Client.disconnect c;
          acc.a_disconnected <- acc.a_disconnected + 1
        end
        else
          (* The Example 2.1 pair over the wire: same statement twice in
             one session must agree unless the session expired. *)
          match run_query cfg acc c with
          | `Expired ->
            acc.a_expired <- acc.a_expired + 1;
            ignore (timed acc (fun () -> Client.bye c));
            acc.a_completed <- acc.a_completed + 1
          | `Err ->
            acc.a_errors <- acc.a_errors + 1;
            Client.disconnect c
          | `Rows first -> (
            match run_query cfg acc c with
            | `Expired ->
              acc.a_expired <- acc.a_expired + 1;
              ignore (timed acc (fun () -> Client.bye c));
              acc.a_completed <- acc.a_completed + 1
            | `Err ->
              acc.a_errors <- acc.a_errors + 1;
              Client.disconnect c
            | `Rows second ->
              if
                not
                  (List.equal (List.equal Value.equal) first second
                  || Client.expired_notice c <> None)
              then acc.a_inconsistent <- acc.a_inconsistent + 1;
              if Client.expired_notice c <> None then acc.a_expired <- acc.a_expired + 1;
              ignore (timed acc (fun () -> Client.bye c));
              acc.a_completed <- acc.a_completed + 1))
    with
    | Client.Disconnected _ ->
      (* Server-side close: shed under backpressure or shutdown. *)
      acc.a_shed <- acc.a_shed + 1;
      Client.disconnect c
    | Unix.Unix_error _ ->
      acc.a_shed <- acc.a_shed + 1;
      Client.disconnect c)

let run cfg =
  if cfg.sessions < 1 then invalid_arg "Load.run: need at least one session";
  if cfg.concurrency < 1 then invalid_arg "Load.run: need at least one domain";
  let t0 = Unix.gettimeofday () in
  let accs =
    Domain_pool.run ~domains:cfg.concurrency (fun ~start rank ->
        let acc = fresh_acc () in
        let rng = Xorshift.create (cfg.seed + (rank * 7919) + 1) in
        start ();
        let i = ref rank in
        while !i < cfg.sessions do
          (if cfg.rate > 0.0 then begin
             (* Open-loop pacing: session !i is due at t0 + i/rate no
                matter how long earlier sessions took. *)
             let due = t0 +. (float_of_int !i /. cfg.rate) in
             let now = Unix.gettimeofday () in
             if now < due then Unix.sleepf (due -. now)
             else if now -. due > 0.005 then acc.a_late <- acc.a_late + 1
           end);
          one_session cfg acc rng;
          i := !i + cfg.concurrency
        done;
        acc)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let sum f = Array.fold_left (fun t a -> t + f a) 0 accs in
  let lat = Array.fold_left (fun t a -> List.rev_append a.a_lat t) [] accs in
  let s = Stats.summarize lat in
  let requests = sum (fun a -> a.a_requests) in
  {
    l_sessions = sum (fun a -> a.a_sessions);
    l_completed = sum (fun a -> a.a_completed);
    l_disconnected = sum (fun a -> a.a_disconnected);
    l_busy = sum (fun a -> a.a_busy);
    l_shed = sum (fun a -> a.a_shed);
    l_expired = sum (fun a -> a.a_expired);
    l_errors = sum (fun a -> a.a_errors);
    l_inconsistent = sum (fun a -> a.a_inconsistent);
    l_requests = requests;
    l_rows = sum (fun a -> a.a_rows);
    l_late_starts = sum (fun a -> a.a_late);
    l_elapsed_s = elapsed;
    l_qps = (if elapsed > 0.0 then float_of_int requests /. elapsed else 0.0);
    l_sessions_per_s =
      (if elapsed > 0.0 then float_of_int cfg.sessions /. elapsed else 0.0);
    l_p50_ms = s.Stats.p50;
    l_p99_ms = s.Stats.p99;
  }
