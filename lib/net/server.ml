(* Accept + worker select loops around {!Conn}; see the .mli.

   Shapes that matter:
   - sockets are nonblocking everywhere; EAGAIN is "try next loop", and a
     worker blocks only in [select] with the tick timeout;
   - hand-off from the accept domain is a mutexed queue per worker plus a
     wake pipe, so an idle worker picks a new connection up immediately
     instead of at the next tick;
   - expiry pushes ride the version number: each worker remembers the last
     currentVN it saw (an atomic-cached read, no buffer-pool traffic) and
     walks its connections only when the maintainer published;
   - shedding beats buffering: a connection is closed the moment its
     pending output crosses the bound, its epoch pin released with it. *)

module Twovnl = Vnl_core.Twovnl
module Domain_pool = Vnl_util.Domain_pool
module Obs = Vnl_obs.Obs

let m_accepted = Obs.Registry.counter "net.accepted"

let m_rejected_busy = Obs.Registry.counter "net.rejected_busy"

let m_shed_slow = Obs.Registry.counter "net.shed_slow"

let m_disconnects = Obs.Registry.counter "net.disconnects"

let g_connections = Obs.Registry.gauge "net.connections"

let g_queue_depth = Obs.Registry.gauge "net.queue_depth"

type listen = Tcp of { host : string; port : int } | Unix_path of string

type config = {
  workers : int;
  max_connections : int;
  accept_queue : int;
  tick_s : float;
  conn : Conn.config;
}

let default_config =
  {
    workers = 2;
    max_connections = 1024;
    accept_queue = 128;
    tick_s = 0.02;
    conn = Conn.default_config;
  }

type worker = {
  mu : Mutex.t;
  inbox : Unix.file_descr Queue.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

type t = {
  vnl : Twovnl.t;
  config : config;
  listener : Unix.file_descr;
  bound_port : int;
  unix_path : string option;
  stopping : bool Atomic.t;
  conn_count : int Atomic.t;
  queued : int Atomic.t;
  next_worker : int Atomic.t;
  workers : worker array;
  mutable domains : Domain_pool.Group.t option;
  mutable stopped : bool;
}

(* [Unix.select] cannot represent an fd whose raw value is >= FD_SETSIZE
   (1024 on Linux) — passing one fails with EINVAL.  Three defenses keep
   every pollable fd legal: the connection cap is clamped below the limit
   at [start], the accept loop rejects any descriptor numbered too high
   (the raw value is what select cares about, not the connection count —
   other open files in the process shift it up), and the worker loop
   self-heals by shedding offenders if one still slips through. *)
let fd_setsize = 1024

(* On Unix a [Unix.file_descr] is the raw integer fd; elsewhere the
   select limit does not apply in this form, so the guard is disabled. *)
let fd_int (fd : Unix.file_descr) : int = if Sys.unix then Obj.magic fd else 0

(* Best-effort write used where blocking is unacceptable (busy rejects,
   wake bytes): whatever does not fit is dropped. *)
let write_nonblock fd buf off len =
  match Unix.write fd buf off len with
  | n -> n
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | EPIPE | ECONNRESET), _, _) -> len

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let busy_frame =
  lazy
    (Wire.encode_response
       (Wire.Error_ { code = Wire.Server_busy; message = "server at connection limit" }))

let reject_busy fd =
  Obs.Counter.record m_rejected_busy 1;
  let b = Lazy.force busy_frame in
  ignore (write_nonblock fd b 0 (Bytes.length b));
  close_quiet fd

let wake w = ignore (write_nonblock w.wake_w (Bytes.make 1 '!') 0 1)

(* ---------- accept loop ---------- *)

let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listener ] [] [] t.config.tick_s with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept ~cloexec:true t.listener with
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) ->
        ()
      | fd, _ ->
        Unix.set_nonblock fd;
        if fd_int fd >= fd_setsize then reject_busy fd
        else if Atomic.get t.conn_count + Atomic.get t.queued >= t.config.max_connections
        then reject_busy fd
        else begin
          (* Round-robin hand-off; a full inbox (stalled worker) rejects
             rather than queueing unboundedly. *)
          let w = t.workers.(Atomic.fetch_and_add t.next_worker 1 mod Array.length t.workers) in
          let accepted =
            Mutex.protect w.mu (fun () ->
                if Queue.length w.inbox >= t.config.accept_queue then false
                else begin
                  Queue.add fd w.inbox;
                  true
                end)
          in
          if accepted then begin
            Atomic.incr t.queued;
            Obs.Counter.record m_accepted 1;
            Obs.Gauge.record g_queue_depth (Atomic.get t.queued);
            wake w
          end
          else reject_busy fd
        end)
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

(* ---------- worker loop ---------- *)

let scratch_len = 1 lsl 16

let worker_loop t rank =
  let w = t.workers.(rank) in
  let conns : (Unix.file_descr, Conn.t) Hashtbl.t = Hashtbl.create 64 in
  let scratch = Bytes.create scratch_len in
  let last_vn = ref (Twovnl.current_vn t.vnl) in
  let close_conn fd conn =
    Conn.close conn;
    Hashtbl.remove conns fd;
    close_quiet fd;
    Atomic.decr t.conn_count;
    Obs.Gauge.record g_connections (Atomic.get t.conn_count)
  in
  let drain_inbox () =
    let incoming =
      Mutex.protect w.mu (fun () ->
          let xs = List.of_seq (Queue.to_seq w.inbox) in
          Queue.clear w.inbox;
          xs)
    in
    List.iter
      (fun fd ->
        Atomic.decr t.queued;
        Atomic.incr t.conn_count;
        Obs.Gauge.record g_connections (Atomic.get t.conn_count);
        Hashtbl.replace conns fd (Conn.create ~config:t.config.conn t.vnl))
      incoming;
    Obs.Gauge.record g_queue_depth (Atomic.get t.queued)
  in
  let try_write fd conn =
    let continue = ref true in
    while !continue do
      match Conn.peek_output conn with
      | None -> continue := false
      | Some (buf, off, len) -> (
        match Unix.write fd buf off len with
        | 0 -> continue := false
        | n ->
          Conn.consume_output conn n;
          if n < len then continue := false
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          continue := false
        | exception Unix.Unix_error ((EPIPE | ECONNRESET | ENOTCONN | EBADF), _, _) ->
          Obs.Counter.record m_disconnects 1;
          close_conn fd conn;
          continue := false)
    done
  in
  let read_one fd conn =
    match Unix.read fd scratch 0 scratch_len with
    | 0 ->
      Obs.Counter.record m_disconnects 1;
      close_conn fd conn
    | n -> Conn.on_input conn scratch 0 n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE | ENOTCONN | EBADF), _, _) ->
      Obs.Counter.record m_disconnects 1;
      close_conn fd conn
  in
  while not (Atomic.get t.stopping) do
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    let wfds =
      Hashtbl.fold (fun fd c acc -> if Conn.pending_output c > 0 then fd :: acc else acc) conns []
    in
    (match Unix.select (w.wake_r :: fds) wfds [] t.config.tick_s with
    | readable, writable, _ ->
      if List.memq w.wake_r readable then begin
        (match Unix.read w.wake_r scratch 0 scratch_len with
        | _ -> ()
        | exception Unix.Unix_error _ -> ())
      end;
      drain_inbox ();
      List.iter
        (fun fd ->
          if fd <> w.wake_r then
            match Hashtbl.find_opt conns fd with
            | Some conn -> read_one fd conn
            | None -> ())
        readable;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | Some conn -> try_write fd conn
          | None -> ())
        writable
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception (Unix.Unix_error (EINVAL, _, _) | Invalid_argument _) ->
      (* An over-limit fd made the select set illegal after all: shed the
         offenders so the next pass is legal (their pins release with
         them); if none are found the error was something else transient,
         so just breathe for a tick instead of spinning. *)
      let bad =
        Hashtbl.fold
          (fun fd c acc -> if fd_int fd >= fd_setsize then (fd, c) :: acc else acc)
          conns []
      in
      if bad = [] then Unix.sleepf t.config.tick_s
      else
        List.iter
          (fun (fd, conn) ->
            Obs.Counter.record m_disconnects 1;
            close_conn fd conn)
          bad);
    (* Maintenance published since the last pass: walk the connections and
       push expiry to the ones whose session just died. *)
    let vn = Twovnl.current_vn t.vnl in
    if vn <> !last_vn then begin
      last_vn := vn;
      Hashtbl.iter (fun _ conn -> Conn.on_version_change conn) conns
    end;
    (* Close and shed: orderly closes wait for their output to drain;
       overflowed (slow-client) connections are shed immediately.  Work
       over a snapshot — [try_write] can [close_conn], and Hashtbl
       iteration is unspecified if the table mutates mid-fold. *)
    let snapshot = Hashtbl.fold (fun fd conn acc -> (fd, conn) :: acc) conns [] in
    List.iter
      (fun (fd, conn) ->
        if Hashtbl.mem conns fd then
          if Conn.overflowed conn then begin
            Obs.Counter.record m_shed_slow 1;
            close_conn fd conn
          end
          else begin
            if Conn.pending_output conn > 0 then try_write fd conn;
            if
              Hashtbl.mem conns fd
              && Conn.want_close conn
              && Conn.pending_output conn = 0
            then close_conn fd conn
          end)
      snapshot
  done;
  (* Shutdown: close every remaining connection, releasing session pins. *)
  Hashtbl.iter
    (fun fd conn ->
      Conn.close conn;
      close_quiet fd;
      Atomic.decr t.conn_count)
    conns;
  Hashtbl.reset conns;
  Obs.Gauge.record g_connections (Atomic.get t.conn_count)

(* ---------- lifecycle ---------- *)

let make_listener listen =
  match listen with
  | Tcp { host; port } ->
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd SO_REUSEADDR true;
       Unix.bind fd addr;
       Unix.listen fd 256;
       Unix.set_nonblock fd
     with e ->
       close_quiet fd;
       raise e);
    let bound_port =
      match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
    in
    (fd, bound_port, None)
  | Unix_path path ->
    if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 256;
       Unix.set_nonblock fd
     with e ->
       close_quiet fd;
       raise e);
    (fd, 0, Some path)

let start ?(config = default_config) listen vnl =
  if config.workers < 1 then invalid_arg "Server.start: need at least one worker";
  (* Keep accepted fds representable in select sets, with headroom for
     the listener, wake pipes, and whatever else the process has open. *)
  let config =
    let cap = fd_setsize - 64 in
    if config.max_connections > cap then { config with max_connections = cap }
    else config
  in
  (* A peer closing mid-write must surface as EPIPE, not kill the process. *)
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listener, bound_port, unix_path = make_listener listen in
  let mk_worker _ =
    let wake_r, wake_w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock wake_r;
    Unix.set_nonblock wake_w;
    { mu = Mutex.create (); inbox = Queue.create (); wake_r; wake_w }
  in
  let t =
    {
      vnl;
      config;
      listener;
      bound_port;
      unix_path;
      stopping = Atomic.make false;
      conn_count = Atomic.make 0;
      queued = Atomic.make 0;
      next_worker = Atomic.make 0;
      workers = Array.init config.workers mk_worker;
      domains = None;
      stopped = false;
    }
  in
  let group =
    Domain_pool.Group.spawn ~count:(config.workers + 1) (fun rank ->
        if rank = 0 then accept_loop t else worker_loop t (rank - 1))
  in
  t.domains <- Some group;
  t

let port t = t.bound_port

let connections t = Atomic.get t.conn_count

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    Array.iter wake t.workers;
    (match t.domains with Some g -> Domain_pool.Group.join g | None -> ());
    t.domains <- None;
    (* Queued-but-never-adopted connections still need closing. *)
    Array.iter
      (fun w ->
        Mutex.protect w.mu (fun () ->
            Queue.iter close_quiet w.inbox;
            Queue.clear w.inbox);
        close_quiet w.wake_r;
        close_quiet w.wake_w)
      t.workers;
    close_quiet t.listener;
    match t.unix_path with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ()
  end
