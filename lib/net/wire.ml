(* Length-prefixed binary frames; see the .mli for the protocol shape.

   Encoding writes into a Buffer and prefixes the 4-byte length last;
   decoding is incremental over a compacting byte buffer.  Payload parsing
   is bounds-checked everywhere and reports malformation as a value, not
   an exception — the fuzz suite feeds arbitrary bytes through [Decoder]
   and the connection handler must only ever see [`Corrupt]. *)

module Value = Vnl_relation.Value

let max_frame = 1 lsl 20

type error_code =
  | Bad_frame
  | No_session
  | Session_expired
  | Query_failed
  | Unknown_cursor
  | Server_busy
  | Too_many_cursors

let error_code_to_int = function
  | Bad_frame -> 1
  | No_session -> 2
  | Session_expired -> 3
  | Query_failed -> 4
  | Unknown_cursor -> 5
  | Server_busy -> 6
  | Too_many_cursors -> 7

let error_code_of_int = function
  | 1 -> Some Bad_frame
  | 2 -> Some No_session
  | 3 -> Some Session_expired
  | 4 -> Some Query_failed
  | 5 -> Some Unknown_cursor
  | 6 -> Some Server_busy
  | 7 -> Some Too_many_cursors
  | _ -> None

let error_code_name = function
  | Bad_frame -> "bad-frame"
  | No_session -> "no-session"
  | Session_expired -> "session-expired"
  | Query_failed -> "query-failed"
  | Unknown_cursor -> "unknown-cursor"
  | Server_busy -> "server-busy"
  | Too_many_cursors -> "too-many-cursors"

type request =
  | Hello of string
  | Query of string
  | Fetch of { cursor : int; max_rows : int }
  | Close_cursor of int
  | Bye

type response =
  | Hello_ok of { session_id : int; session_vn : int; catalog_gen : int }
  | Result of { cursor : int; columns : string list; total_rows : int }
  | Rows of { cursor : int; rows : Value.t list list; last : bool }
  | Ok_
  | Error_ of { code : error_code; message : string }
  | Expired of { session_vn : int; current_vn : int }

(* ---------- encoding ---------- *)

let add_u8 b v = Buffer.add_uint8 b (v land 0xff)

let add_u16 b v =
  if v < 0 || v > 0xffff then invalid_arg "Wire: u16 out of range";
  Buffer.add_uint16_be b v

let add_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Wire: u32 out of range";
  Buffer.add_int32_be b (Int32.of_int v)

let add_i64 b v = Buffer.add_int64_be b (Int64.of_int v)

let add_str16 b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_str32 b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_value b = function
  | Value.Null -> add_u8 b 0
  | Value.Int i ->
    add_u8 b 1;
    add_i64 b i
  | Value.Float f ->
    add_u8 b 2;
    Buffer.add_int64_be b (Int64.bits_of_float f)
  | Value.Str s ->
    add_u8 b 3;
    add_str16 b s
  | Value.Date d ->
    add_u8 b 4;
    add_i64 b d
  | Value.Bool v ->
    add_u8 b 5;
    add_u8 b (if v then 1 else 0)

let max_str16 = 0xffff

(* Encoded sizes, used by the connection layer to pack [Rows] frames
   under [max_frame] *before* encoding — [encode_response] refuses an
   oversized payload, so whoever builds a chunk must budget bytes, not
   just rows. *)
let value_size = function
  | Value.Null -> 1
  | Value.Int _ | Value.Float _ | Value.Date _ -> 9
  | Value.Str s -> 3 + String.length s
  | Value.Bool _ -> 2

let row_size row = 2 + List.fold_left (fun acc v -> acc + value_size v) 0 row

let rows_overhead = 8

let value_encodable = function
  | Value.Str s -> String.length s <= max_str16
  | Value.Null | Value.Int _ | Value.Float _ | Value.Date _ | Value.Bool _ -> true

let row_encodable row =
  List.length row <= max_str16
  && List.for_all value_encodable row
  && row_size row <= max_frame - rows_overhead

let frame payload =
  let n = Buffer.length payload in
  if n = 0 || n > max_frame then invalid_arg "Wire: payload size out of range";
  let out = Bytes.create (4 + n) in
  Bytes.set_int32_be out 0 (Int32.of_int n);
  Buffer.blit payload 0 out 4 n;
  out

let encode_request req =
  let b = Buffer.create 64 in
  (match req with
  | Hello name ->
    add_u8 b 0x01;
    add_str16 b name
  | Query sql ->
    add_u8 b 0x02;
    add_str32 b sql
  | Fetch { cursor; max_rows } ->
    add_u8 b 0x03;
    add_u32 b cursor;
    add_u16 b max_rows
  | Close_cursor cursor ->
    add_u8 b 0x04;
    add_u32 b cursor
  | Bye -> add_u8 b 0x05);
  frame b

let encode_response resp =
  let b = Buffer.create 256 in
  (match resp with
  | Hello_ok { session_id; session_vn; catalog_gen } ->
    add_u8 b 0x81;
    add_u32 b session_id;
    add_u32 b session_vn;
    add_u32 b catalog_gen
  | Result { cursor; columns; total_rows } ->
    add_u8 b 0x82;
    add_u32 b cursor;
    add_u16 b (List.length columns);
    List.iter (add_str16 b) columns;
    add_u32 b total_rows
  | Rows { cursor; rows; last } ->
    add_u8 b 0x83;
    add_u32 b cursor;
    add_u16 b (List.length rows);
    add_u8 b (if last then 1 else 0);
    List.iter
      (fun row ->
        add_u16 b (List.length row);
        List.iter (add_value b) row)
      rows
  | Ok_ -> add_u8 b 0x84
  | Error_ { code; message } ->
    add_u8 b 0x85;
    add_u16 b (error_code_to_int code);
    add_str16 b message
  | Expired { session_vn; current_vn } ->
    add_u8 b 0x86;
    add_u32 b session_vn;
    add_u32 b current_vn);
  frame b

(* ---------- payload parsing ---------- *)

(* A bounds-checked reader over one payload.  [Malformed] never escapes
   this file: [parse_with] catches it and returns [Error]. *)
exception Malformed of string

type reader = { buf : bytes; mutable pos : int; stop : int }

let need r n ctx =
  if r.stop - r.pos < n then raise (Malformed (ctx ^ ": truncated payload"))

let u8 r ctx =
  need r 1 ctx;
  let v = Char.code (Bytes.get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let u16 r ctx =
  need r 2 ctx;
  let v = Bytes.get_uint16_be r.buf r.pos in
  r.pos <- r.pos + 2;
  v

let u32 r ctx =
  need r 4 ctx;
  let v = Int32.to_int (Bytes.get_int32_be r.buf r.pos) land 0xffff_ffff in
  r.pos <- r.pos + 4;
  v

let i64 r ctx =
  need r 8 ctx;
  let v = Int64.to_int (Bytes.get_int64_be r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let str_len r len ctx =
  need r len ctx;
  let s = Bytes.sub_string r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let str16 r ctx = str_len r (u16 r ctx) ctx

let str32 r ctx = str_len r (u32 r ctx) ctx

let value r =
  match u8 r "value" with
  | 0 -> Value.Null
  | 1 -> Value.Int (i64 r "int")
  | 2 ->
    need r 8 "float";
    let v = Int64.float_of_bits (Bytes.get_int64_be r.buf r.pos) in
    r.pos <- r.pos + 8;
    Value.Float v
  | 3 -> Value.Str (str16 r "str")
  | 4 -> Value.Date (i64 r "date")
  | 5 -> Value.Bool (u8 r "bool" <> 0)
  | tag -> raise (Malformed (Printf.sprintf "value: unknown tag %d" tag))

let finish r v =
  if r.pos <> r.stop then raise (Malformed "trailing bytes after payload");
  v

let parse_request r =
  match u8 r "opcode" with
  | 0x01 -> finish r (Hello (str16 r "hello"))
  | 0x02 -> finish r (Query (str32 r "query"))
  | 0x03 ->
    let cursor = u32 r "fetch" in
    let max_rows = u16 r "fetch" in
    finish r (Fetch { cursor; max_rows })
  | 0x04 -> finish r (Close_cursor (u32 r "close-cursor"))
  | 0x05 -> finish r Bye
  | op -> raise (Malformed (Printf.sprintf "unknown request opcode 0x%02x" op))

let parse_response r =
  match u8 r "opcode" with
  | 0x81 ->
    let session_id = u32 r "hello-ok" in
    let session_vn = u32 r "hello-ok" in
    let catalog_gen = u32 r "hello-ok" in
    finish r (Hello_ok { session_id; session_vn; catalog_gen })
  | 0x82 ->
    let cursor = u32 r "result" in
    let ncols = u16 r "result" in
    let columns = List.init ncols (fun _ -> str16 r "result") in
    let total_rows = u32 r "result" in
    finish r (Result { cursor; columns; total_rows })
  | 0x83 ->
    let cursor = u32 r "rows" in
    let nrows = u16 r "rows" in
    let last = u8 r "rows" <> 0 in
    let rows =
      List.init nrows (fun _ ->
          let ncols = u16 r "rows" in
          List.init ncols (fun _ -> value r))
    in
    finish r (Rows { cursor; rows; last })
  | 0x84 -> finish r Ok_
  | 0x85 ->
    let code_int = u16 r "error" in
    let message = str16 r "error" in
    let code =
      match error_code_of_int code_int with Some c -> c | None -> Bad_frame
    in
    finish r (Error_ { code; message })
  | 0x86 ->
    let session_vn = u32 r "expired" in
    let current_vn = u32 r "expired" in
    finish r (Expired { session_vn; current_vn })
  | op -> raise (Malformed (Printf.sprintf "unknown response opcode 0x%02x" op))

let parse_with parse buf pos stop =
  match parse { buf; pos; stop } with
  | v -> Ok v
  | exception Malformed msg -> Error msg

(* ---------- incremental decoder ---------- *)

module Decoder = struct
  type 'a t = {
    parse : bytes -> int -> int -> ('a, string) result;
    mutable buf : bytes;
    mutable rpos : int;
    mutable wpos : int;
    mutable corrupt : string option;
  }

  let make parse = { parse; buf = Bytes.create 4096; rpos = 0; wpos = 0; corrupt = None }

  let request () = make (parse_with parse_request)

  let response () = make (parse_with parse_response)

  let buffered d = d.wpos - d.rpos

  let compact_and_grow d extra =
    let used = buffered d in
    if d.rpos > 0 then begin
      Bytes.blit d.buf d.rpos d.buf 0 used;
      d.rpos <- 0;
      d.wpos <- used
    end;
    if Bytes.length d.buf - d.wpos < extra then begin
      let cap = ref (Bytes.length d.buf * 2) in
      while !cap < used + extra do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit d.buf 0 nb 0 used;
      d.buf <- nb
    end

  let feed d src off len =
    if off < 0 || len < 0 || off + len > Bytes.length src then
      invalid_arg "Wire.Decoder.feed: invalid range";
    (* A corrupt decoder swallows input: the connection is closing anyway,
       and retaining bytes would let a hostile peer grow the buffer. *)
    if d.corrupt = None then begin
      if Bytes.length d.buf - d.wpos < len then compact_and_grow d len;
      Bytes.blit src off d.buf d.wpos len;
      d.wpos <- d.wpos + len
    end

  let next d =
    match d.corrupt with
    | Some msg -> `Corrupt msg
    | None ->
      if buffered d < 4 then `Await
      else begin
        let len = Int32.to_int (Bytes.get_int32_be d.buf d.rpos) land 0xffff_ffff in
        if len = 0 || len > max_frame then begin
          let msg = Printf.sprintf "frame length %d out of range" len in
          d.corrupt <- Some msg;
          `Corrupt msg
        end
        else if buffered d < 4 + len then `Await
        else begin
          let pos = d.rpos + 4 in
          let stop = pos + len in
          match d.parse d.buf pos stop with
          | Ok msg ->
            d.rpos <- stop;
            if d.rpos = d.wpos then begin
              d.rpos <- 0;
              d.wpos <- 0
            end;
            `Msg msg
          | Error msg ->
            d.corrupt <- Some msg;
            `Corrupt msg
        end
      end
end
