(** The open-loop load generator: session churn against a live server.

    Simulates a population of short-lived reader sessions — the scenario
    family the in-process simulator cannot express: real connects, slow
    clients, abrupt disconnects mid-cursor, and server-pushed expiry under
    concurrent maintenance.  [concurrency] generator domains each run
    their share of [sessions] connect/hello/query/fetch/bye lifecycles;
    with [rate > 0] session {e starts} follow the open-loop schedule
    [t0 + i/rate] regardless of completions (lateness is reported, not
    absorbed, which is what makes it open-loop).

    Consistency is checked per session, the paper's Example 2.1 pair
    discipline over the wire: the same query is executed twice in one
    session and must return identical row multisets unless the session
    expired in between — any other difference counts as [inconsistent]
    and fails the serving CI job. *)

type config = {
  addr : Client.addr;
  sessions : int;
  concurrency : int;  (** Generator domains. *)
  rate : float;  (** Session arrivals/s across the run; 0 = unpaced. *)
  fetch_size : int;  (** Rows per Fetch. *)
  think_ms : float;  (** Client-side stall between fetches (slow client). *)
  disconnect_prob : float;  (** Abrupt mid-cursor disconnect probability. *)
  seed : int;
  sql : string;
}

val default_sql : string
(** The analyst roll-up over DailySales used by the demo server. *)

val default_config : config
(** 200 sessions, 2 domains, unpaced, against TCP 127.0.0.1:7781. *)

type report = {
  l_sessions : int;  (** Lifecycles attempted. *)
  l_completed : int;  (** Reached orderly [Bye]. *)
  l_disconnected : int;  (** Abrupt client-side disconnects (intended). *)
  l_busy : int;  (** Admission-control rejects / refused connects. *)
  l_shed : int;  (** Server closed on us mid-session (backpressure). *)
  l_expired : int;  (** Sessions that saw expiry (push or error). *)
  l_errors : int;  (** Unexpected protocol/query errors. *)
  l_inconsistent : int;  (** Query pairs that disagreed without expiry. *)
  l_requests : int;
  l_rows : int;
  l_late_starts : int;  (** Open-loop arrivals behind schedule. *)
  l_elapsed_s : float;
  l_qps : float;  (** Requests per second across the run. *)
  l_sessions_per_s : float;
  l_p50_ms : float;  (** Per-request wire latency percentiles. *)
  l_p99_ms : float;
}

val run : config -> report

val env_int : ?least:int -> string -> int -> int
(** Environment knob with the hardened parsing the stress knobs use:
    unset returns the default, anything non-numeric or below [least]
    (default 1) fails loudly instead of being silently clamped or
    ignored.  Used for [VNL_NET_PORT], [VNL_NET_SESSIONS], ... *)

val env_float : ?least:float -> string -> float -> float
(** Same contract for fractional knobs ([VNL_NET_CHURN_MS], rates). *)
