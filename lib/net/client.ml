(* Blocking wire-protocol client; see the .mli. *)

type addr = Tcp of string * int | Unix_path of string

type error = { code : Wire.error_code; message : string }

exception Disconnected of string

type t = {
  fd : Unix.file_descr;
  dec : Wire.response Wire.Decoder.t;
  scratch : bytes;
  mutable notice : (int * int) option;
  mutable catalog_gen : int;
  mutable alive : bool;
}

let connect ?(timeout_s = 10.0) addr =
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let domain, sockaddr =
    match addr with
    | Tcp (host, port) ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    | Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  in
  let fd = Unix.socket ~cloexec:true domain SOCK_STREAM 0 in
  (try
     Unix.connect fd sockaddr;
     Unix.setsockopt_float fd SO_RCVTIMEO timeout_s;
     Unix.setsockopt_float fd SO_SNDTIMEO timeout_s
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    dec = Wire.Decoder.response ();
    scratch = Bytes.create 65536;
    notice = None;
    catalog_gen = 0;
    alive = true;
  }

let disconnect t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let fail t msg =
  disconnect t;
  raise (Disconnected msg)

let send t frame =
  if not t.alive then raise (Disconnected "already closed");
  let len = Bytes.length frame in
  let off = ref 0 in
  while !off < len do
    match Unix.write t.fd frame !off (len - !off) with
    | 0 -> fail t "short write"
    | n -> off := !off + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
      fail t "connection closed by server"
  done

(* Receive the next frame that is not an [Expired] push (pushes are
   recorded and skipped — they answer no request). *)
let rec recv t =
  match Wire.Decoder.next t.dec with
  | `Msg (Wire.Expired { session_vn; current_vn }) ->
    t.notice <- Some (session_vn, current_vn);
    recv t
  | `Msg resp -> resp
  | `Corrupt msg -> fail t (Printf.sprintf "corrupt response stream: %s" msg)
  | `Await -> (
    match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
    | 0 -> fail t "connection closed by server"
    | n ->
      Wire.Decoder.feed t.dec t.scratch 0 n;
      recv t
    | exception Unix.Unix_error (EINTR, _, _) -> recv t
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> fail t "receive timeout"
    | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
      fail t "connection closed by server")

let unexpected t resp =
  let what =
    match resp with
    | Wire.Hello_ok _ -> "Hello_ok"
    | Wire.Result _ -> "Result"
    | Wire.Rows _ -> "Rows"
    | Wire.Ok_ -> "Ok"
    | Wire.Error_ _ -> "Error"
    | Wire.Expired _ -> "Expired"
  in
  fail t (Printf.sprintf "unexpected %s response" what)

(* The encoders raise [Invalid_argument] on fields their length prefixes
   cannot carry; this API is result-typed, so reject over-long input here
   without touching the socket instead of leaking that exception. *)
let max_sql_len = Wire.max_frame - 5 (* payload = opcode + u32 length + text *)

let hello ?(name = "vnl-client") t =
  if String.length name > Wire.max_str16 then
    Error
      {
        code = Wire.Bad_frame;
        message = Printf.sprintf "client name exceeds %d bytes" Wire.max_str16;
      }
  else begin
    send t (Wire.encode_request (Wire.Hello name));
    match recv t with
    | Wire.Hello_ok { session_id; session_vn; catalog_gen } ->
      t.notice <- None;
      t.catalog_gen <- catalog_gen;
      Ok (session_id, session_vn)
    | Wire.Error_ { code; message } -> Error { code; message }
    | resp -> unexpected t resp
  end

let query t sql =
  if String.length sql > max_sql_len then
    Error
      {
        code = Wire.Query_failed;
        message = Printf.sprintf "SQL text exceeds the %d-byte frame bound" max_sql_len;
      }
  else begin
    send t (Wire.encode_request (Wire.Query sql));
    match recv t with
    | Wire.Result { cursor; columns; total_rows } -> Ok (cursor, columns, total_rows)
    | Wire.Error_ { code; message } -> Error { code; message }
    | resp -> unexpected t resp
  end

let fetch t ~cursor ~max_rows =
  (* 0 asks for the server's default chunk; the wire field is a u16. *)
  let max_rows = max 0 (min max_rows 0xffff) in
  send t (Wire.encode_request (Wire.Fetch { cursor; max_rows }));
  match recv t with
  | Wire.Rows { rows; last; _ } -> Ok (rows, last)
  | Wire.Error_ { code; message } -> Error { code; message }
  | resp -> unexpected t resp

let close_cursor t cursor =
  send t (Wire.encode_request (Wire.Close_cursor cursor));
  match recv t with
  | Wire.Ok_ -> Ok ()
  | Wire.Error_ { code; message } -> Error { code; message }
  | resp -> unexpected t resp

let bye t =
  send t (Wire.encode_request Wire.Bye);
  match recv t with
  | Wire.Ok_ ->
    disconnect t;
    Ok ()
  | Wire.Error_ { code; message } ->
    disconnect t;
    Error { code; message }
  | resp -> unexpected t resp

let expired_notice t = t.notice

let catalog_gen t = t.catalog_gen
