type layout = {
  page_size : int;
  record_width : int;
  slots : int;
  flags_offset : int;
  records_offset : int;
}

let header_size = 4

let layout ~page_size ~record_width =
  if record_width <= 0 then invalid_arg "Page.layout: record width must be positive";
  let slots = (page_size - header_size) / (record_width + 1) in
  if slots < 1 then invalid_arg "Page.layout: record too large for page";
  {
    page_size;
    record_width;
    slots;
    flags_offset = header_size;
    records_offset = header_size + slots;
  }

let init l page = Bytes.fill page 0 l.page_size '\000'

let check_slot l slot =
  if slot < 0 || slot >= l.slots then
    invalid_arg (Printf.sprintf "Page: slot %d out of range (page has %d)" slot l.slots)

let slot_used l page slot =
  check_slot l slot;
  Bytes.get page (l.flags_offset + slot) = '\001'

let record_offset l slot = l.records_offset + (slot * l.record_width)

let read_slot l page slot =
  if not (slot_used l page slot) then
    invalid_arg (Printf.sprintf "Page.read_slot: slot %d is free" slot);
  Bytes.sub page (record_offset l slot) l.record_width

let write_slot l page slot record =
  check_slot l slot;
  if Bytes.length record <> l.record_width then
    invalid_arg "Page.write_slot: record width mismatch";
  Bytes.blit record 0 page (record_offset l slot) l.record_width;
  Bytes.set page (l.flags_offset + slot) '\001'

let clear_slot l page slot =
  check_slot l slot;
  Bytes.set page (l.flags_offset + slot) '\000'

let first_free_slot l page =
  let rec loop slot =
    if slot >= l.slots then None
    else if Bytes.get page (l.flags_offset + slot) = '\000' then Some slot
    else loop (slot + 1)
  in
  loop 0

let used_count l page =
  let count = ref 0 in
  for slot = 0 to l.slots - 1 do
    if Bytes.get page (l.flags_offset + slot) = '\001' then incr count
  done;
  !count

let iter_used l page f =
  for slot = 0 to l.slots - 1 do
    if Bytes.get page (l.flags_offset + slot) = '\001' then
      f slot (Bytes.sub page (record_offset l slot) l.record_width)
  done

let iter_used_offsets l page f =
  for slot = 0 to l.slots - 1 do
    if Bytes.get page (l.flags_offset + slot) = '\001' then f slot (record_offset l slot)
  done
