(** Slotted page layout for fixed-width records.

    Because every attribute type has a fixed physical width
    (see {!Vnl_relation.Dtype}), each heap file stores records of one fixed
    width; a page is a small header, a one-byte-per-slot occupancy map, and a
    dense record area.  Fixed widths are what make the paper's required
    {e in-place} physical updates always possible (§4). *)

type layout = private {
  page_size : int;
  record_width : int;
  slots : int;  (** Records that fit on one page. *)
  flags_offset : int;
  records_offset : int;
}

val layout : page_size:int -> record_width:int -> layout
(** Compute the layout.  Raises [Invalid_argument] if even one record does
    not fit on a page. *)

val init : layout -> bytes -> unit
(** Format a fresh page image: all slots free. *)

val slot_used : layout -> bytes -> int -> bool

val read_slot : layout -> bytes -> int -> bytes
(** Copy of the record bytes in a used slot. *)

val write_slot : layout -> bytes -> int -> bytes -> unit
(** Store record bytes into a slot and mark it used (an insert or an
    in-place update).  Record must be exactly [record_width] bytes. *)

val clear_slot : layout -> bytes -> int -> unit
(** Mark a slot free. *)

val first_free_slot : layout -> bytes -> int option

val used_count : layout -> bytes -> int

val iter_used : layout -> bytes -> (int -> bytes -> unit) -> unit
(** [iter_used l page f] applies [f slot record] to every used slot in slot
    order. *)

val record_offset : layout -> int -> int
(** Byte offset of a slot's record within the page image. *)

val iter_used_offsets : layout -> bytes -> (int -> int -> unit) -> unit
(** Like {!iter_used} but applies [f slot offset] without copying the
    record bytes; the offsets are only meaningful while the page image is
    pinned and unmodified. *)
