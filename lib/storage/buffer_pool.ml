module Obs = Vnl_obs.Obs

(* Frames form an intrusive doubly-linked list in recency order (head =
   most recent, tail = LRU victim), so touch and evict are O(1) pointer
   splices — the previous implementation scanned every frame with a
   Hashtbl.fold per eviction.  [nil] is a self-linked sentinel: the list is
   circular through it, which removes every option/None case from the
   splice code. *)
type frame = {
  mutable pid : int;
  mutable image : bytes;
  mutable dirty : bool;
  mutable pins : int;
      (** Active [with_page]/[with_page_mut] callbacks over this frame.
          Pinned frames are never evicted: a nested page access inside the
          callback would otherwise evict the active frame and silently lose
          the caller's mutations to a stale re-read. *)
  mutable prev : frame;
  mutable next : frame;
}

type stats = {
  logical_reads : int;
  hits : int;
  misses : int;
  evictions : int;
  physical_writes : int;
  seq_writes : int;
  rand_writes : int;
  pin_waits : int;
}

(* Stack-wide mirrors in the default observability registry (aggregated
   over every pool instance, gated on [Obs.enabled]).  The authoritative
   per-pool cells live in each pool's private registry below and count
   unconditionally: experiments compare by them with observability off. *)
let g_hits = Obs.Registry.counter "pool.hits"

let g_misses = Obs.Registry.counter "pool.misses"

let g_evictions = Obs.Registry.counter "pool.evictions"

let g_physical_writes = Obs.Registry.counter "pool.physical_writes"

let g_pin_waits = Obs.Registry.counter "pool.pin_waits"

(* Per-pool counter cells.  They live in one private [Obs.Registry.t] per
   pool, which makes [Registry.reset] the single reset path: [reset_stats]
   delegates to it and the [stats] accessors are thin reads of the same
   cells — the seq/rand write counters (and the write-head gauge) can no
   longer drift from the rest of the stats on reset. *)
type metrics = {
  registry : Obs.Registry.t;
  logical_reads : Obs.Counter.t;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  evictions : Obs.Counter.t;
  physical_writes : Obs.Counter.t;
  seq_writes : Obs.Counter.t;
  rand_writes : Obs.Counter.t;
  pin_waits : Obs.Counter.t;
  last_write : Obs.Gauge.t;
      (** Pid of this pool's last write-back; initial (and post-reset)
          value -1 puts the head just before page 0. *)
}

let make_metrics () =
  let registry = Obs.Registry.create () in
  {
    registry;
    logical_reads = Obs.Registry.counter ~registry "pool.logical_reads";
    hits = Obs.Registry.counter ~registry "pool.hits";
    misses = Obs.Registry.counter ~registry "pool.misses";
    evictions = Obs.Registry.counter ~registry "pool.evictions";
    physical_writes = Obs.Registry.counter ~registry "pool.physical_writes";
    seq_writes = Obs.Registry.counter ~registry "pool.seq_writes";
    rand_writes = Obs.Registry.counter ~registry "pool.rand_writes";
    pin_waits = Obs.Registry.counter ~registry "pool.pin_waits";
    last_write = Obs.Registry.gauge ~registry ~initial:(-1) "pool.last_write";
  }

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  nil : frame;  (** Sentinel: [nil.next] is the MRU frame, [nil.prev] the LRU. *)
  m : metrics;
}

let create ?(capacity = 64) disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  let rec nil =
    { pid = -1; image = Bytes.empty; dirty = false; pins = 0; prev = nil; next = nil }
  in
  { disk; capacity; frames = Hashtbl.create capacity; nil; m = make_metrics () }

let disk t = t.disk

let unlink frame =
  frame.prev.next <- frame.next;
  frame.next.prev <- frame.prev

let push_front t frame =
  frame.next <- t.nil.next;
  frame.prev <- t.nil;
  t.nil.next.prev <- frame;
  t.nil.next <- frame

let touch t frame =
  if t.nil.next != frame then begin
    unlink frame;
    push_front t frame
  end

let write_back t frame =
  if frame.dirty then begin
    Disk.write t.disk frame.pid frame.image;
    Obs.Counter.incr t.m.physical_writes;
    Obs.Counter.record g_physical_writes 1;
    let last = Obs.Gauge.get t.m.last_write in
    if frame.pid = last || frame.pid = last + 1 then Obs.Counter.incr t.m.seq_writes
    else Obs.Counter.incr t.m.rand_writes;
    Obs.Gauge.set t.m.last_write frame.pid;
    frame.dirty <- false
  end

(* Walk tail -> head for the least-recently-used unpinned frame.  Pinned
   frames (a [with_page]* callback is live over their bytes) must stay
   resident; if every frame is pinned the pool is over-committed and we
   fail loudly instead of corrupting the active caller. *)
let evict_lru t =
  let rec victim f =
    if f == t.nil then
      failwith
        (Printf.sprintf "Buffer_pool: all %d frames pinned, cannot evict" t.capacity)
    else if f.pins = 0 then f
    else begin
      Obs.Counter.incr t.m.pin_waits;
      Obs.Counter.record g_pin_waits 1;
      victim f.prev
    end
  in
  let v = victim t.nil.prev in
  write_back t v;
  unlink v;
  Hashtbl.remove t.frames v.pid;
  Obs.Counter.incr t.m.evictions;
  Obs.Counter.record g_evictions 1

let install t frame =
  if Hashtbl.length t.frames >= t.capacity then evict_lru t;
  push_front t frame;
  Hashtbl.add t.frames frame.pid frame

let load t pid =
  Obs.Counter.incr t.m.logical_reads;
  match Hashtbl.find_opt t.frames pid with
  | Some frame ->
    Obs.Counter.incr t.m.hits;
    Obs.Counter.record g_hits 1;
    touch t frame;
    frame
  | None ->
    Obs.Counter.incr t.m.misses;
    Obs.Counter.record g_misses 1;
    let frame =
      {
        pid;
        image = Disk.read t.disk pid;
        dirty = false;
        pins = 0;
        prev = t.nil;
        next = t.nil;
      }
    in
    install t frame;
    frame

let alloc_page t =
  let pid = Disk.alloc t.disk in
  let frame =
    {
      pid;
      image = Bytes.make (Disk.page_size t.disk) '\000';
      dirty = false;
      pins = 0;
      prev = t.nil;
      next = t.nil;
    }
  in
  install t frame;
  pid

let pinned frame f =
  frame.pins <- frame.pins + 1;
  Fun.protect ~finally:(fun () -> frame.pins <- frame.pins - 1) (fun () -> f frame.image)

let with_page t pid f = pinned (load t pid) f

let with_page_mut t pid f =
  let frame = load t pid in
  frame.dirty <- true;
  pinned frame f

(* Dirty frames are written back in ascending pid order: deterministic
   (Hashtbl iteration order used to decide it) and sequential on disk. *)
let flush_all t =
  let dirty = ref [] in
  Hashtbl.iter (fun _ frame -> if frame.dirty then dirty := frame :: !dirty) t.frames;
  List.iter (write_back t) (List.sort (fun a b -> compare a.pid b.pid) !dirty)

let stats t =
  {
    logical_reads = Obs.Counter.get t.m.logical_reads;
    hits = Obs.Counter.get t.m.hits;
    misses = Obs.Counter.get t.m.misses;
    evictions = Obs.Counter.get t.m.evictions;
    physical_writes = Obs.Counter.get t.m.physical_writes;
    seq_writes = Obs.Counter.get t.m.seq_writes;
    rand_writes = Obs.Counter.get t.m.rand_writes;
    pin_waits = Obs.Counter.get t.m.pin_waits;
  }

let metrics_registry t = t.m.registry

let reset_stats t =
  (* One reset path: every pool cell — including the seq/rand split and
     the write-head gauge, which earlier revisions reset by hand — goes
     through the pool's registry, so nothing can be missed. *)
  Obs.Registry.reset t.m.registry;
  Disk.reset_stats t.disk

let drop_cache t =
  flush_all t;
  Hashtbl.reset t.frames;
  t.nil.next <- t.nil;
  t.nil.prev <- t.nil

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "logical=%d hits=%d misses=%d evictions=%d phys_writes=%d (%d seq / %d rand)"
    s.logical_reads s.hits s.misses s.evictions s.physical_writes s.seq_writes s.rand_writes
