(* Frames form an intrusive doubly-linked list in recency order (head =
   most recent, tail = LRU victim), so touch and evict are O(1) pointer
   splices — the previous implementation scanned every frame with a
   Hashtbl.fold per eviction.  [nil] is a self-linked sentinel: the list is
   circular through it, which removes every option/None case from the
   splice code. *)
type frame = {
  mutable pid : int;
  mutable image : bytes;
  mutable dirty : bool;
  mutable prev : frame;
  mutable next : frame;
}

type stats = {
  logical_reads : int;
  hits : int;
  misses : int;
  evictions : int;
  physical_writes : int;
  seq_writes : int;
  rand_writes : int;
}

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  nil : frame;  (** Sentinel: [nil.next] is the MRU frame, [nil.prev] the LRU. *)
  mutable logical_reads : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable physical_writes : int;
  mutable seq_writes : int;
  mutable rand_writes : int;
  mutable last_write : int;  (** Pid of this pool's last write-back, -1 initially. *)
}

let create ?(capacity = 64) disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  let rec nil =
    { pid = -1; image = Bytes.empty; dirty = false; prev = nil; next = nil }
  in
  {
    disk;
    capacity;
    frames = Hashtbl.create capacity;
    nil;
    logical_reads = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    physical_writes = 0;
    seq_writes = 0;
    rand_writes = 0;
    last_write = -1;
  }

let disk t = t.disk

let unlink frame =
  frame.prev.next <- frame.next;
  frame.next.prev <- frame.prev

let push_front t frame =
  frame.next <- t.nil.next;
  frame.prev <- t.nil;
  t.nil.next.prev <- frame;
  t.nil.next <- frame

let touch t frame =
  if t.nil.next != frame then begin
    unlink frame;
    push_front t frame
  end

let write_back t frame =
  if frame.dirty then begin
    Disk.write t.disk frame.pid frame.image;
    t.physical_writes <- t.physical_writes + 1;
    if frame.pid = t.last_write || frame.pid = t.last_write + 1 then
      t.seq_writes <- t.seq_writes + 1
    else t.rand_writes <- t.rand_writes + 1;
    t.last_write <- frame.pid;
    frame.dirty <- false
  end

let evict_lru t =
  let victim = t.nil.prev in
  if victim != t.nil then begin
    write_back t victim;
    unlink victim;
    Hashtbl.remove t.frames victim.pid;
    t.evictions <- t.evictions + 1
  end

let install t frame =
  if Hashtbl.length t.frames >= t.capacity then evict_lru t;
  push_front t frame;
  Hashtbl.add t.frames frame.pid frame

let load t pid =
  t.logical_reads <- t.logical_reads + 1;
  match Hashtbl.find_opt t.frames pid with
  | Some frame ->
    t.hits <- t.hits + 1;
    touch t frame;
    frame
  | None ->
    t.misses <- t.misses + 1;
    let frame =
      { pid; image = Disk.read t.disk pid; dirty = false; prev = t.nil; next = t.nil }
    in
    install t frame;
    frame

let alloc_page t =
  let pid = Disk.alloc t.disk in
  let frame =
    {
      pid;
      image = Bytes.make (Disk.page_size t.disk) '\000';
      dirty = false;
      prev = t.nil;
      next = t.nil;
    }
  in
  install t frame;
  pid

let with_page t pid f = f (load t pid).image

let with_page_mut t pid f =
  let frame = load t pid in
  frame.dirty <- true;
  f frame.image

(* Dirty frames are written back in ascending pid order: deterministic
   (Hashtbl iteration order used to decide it) and sequential on disk. *)
let flush_all t =
  let dirty = ref [] in
  Hashtbl.iter (fun _ frame -> if frame.dirty then dirty := frame :: !dirty) t.frames;
  List.iter (write_back t) (List.sort (fun a b -> compare a.pid b.pid) !dirty)

let stats t =
  {
    logical_reads = t.logical_reads;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    physical_writes = t.physical_writes;
    seq_writes = t.seq_writes;
    rand_writes = t.rand_writes;
  }

let reset_stats t =
  t.logical_reads <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.physical_writes <- 0;
  t.seq_writes <- 0;
  t.rand_writes <- 0;
  t.last_write <- -1;
  Disk.reset_stats t.disk

let drop_cache t =
  flush_all t;
  Hashtbl.reset t.frames;
  t.nil.next <- t.nil;
  t.nil.prev <- t.nil

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "logical=%d hits=%d misses=%d evictions=%d phys_writes=%d (%d seq / %d rand)"
    s.logical_reads s.hits s.misses s.evictions s.physical_writes s.seq_writes s.rand_writes
