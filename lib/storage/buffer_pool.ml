module Obs = Vnl_obs.Obs
module Sched = Vnl_util.Sched

(* Frames form an intrusive doubly-linked list in recency order (head =
   most recent, tail = LRU victim), so touch and evict are O(1) pointer
   splices — the previous implementation scanned every frame with a
   Hashtbl.fold per eviction.  [nil] is a self-linked sentinel: the list is
   circular through it, which removes every option/None case from the
   splice code.

   Domain safety is split in two: the pool mutex guards the frame table,
   the recency list, pin counts, and all disk traffic (load, write-back),
   while each frame carries a reader-writer latch guarding its bytes.  A
   page access pins its frame under the pool mutex, releases the mutex,
   then runs the caller's callback under the frame latch — so the heavy
   work (decoding a page of tuples) parallelizes across domains, pinned
   frames are never evicted or written back mid-callback, and a reader
   can never observe a torn tuple while the maintainer mutates the same
   page. *)
type frame = {
  mutable pid : int;
  mutable image : bytes;
  mutable dirty : bool;
  mutable pins : int;
      (** Active [with_page]/[with_page_mut] callbacks over this frame,
          updated under the pool mutex.  Pinned frames are never evicted:
          eviction would hand the active caller's bytes to another page
          (and a write-back would race the caller's mutations). *)
  latch : Latch.t;  (** Shared for reads, exclusive for mutations. *)
  mutable prev : frame;
  mutable next : frame;
}

type stats = {
  logical_reads : int;
  hits : int;
  misses : int;
  evictions : int;
  physical_writes : int;
  seq_writes : int;
  rand_writes : int;
  pin_waits : int;
}

(* Stack-wide mirrors in the default observability registry (aggregated
   over every pool instance, gated on [Obs.enabled]).  The authoritative
   per-pool cells live in each pool's private registry below and count
   unconditionally: experiments compare by them with observability off. *)
let g_hits = Obs.Registry.counter "pool.hits"

let g_misses = Obs.Registry.counter "pool.misses"

let g_evictions = Obs.Registry.counter "pool.evictions"

let g_physical_writes = Obs.Registry.counter "pool.physical_writes"

let g_pin_waits = Obs.Registry.counter "pool.pin_waits"

(* Per-pool counter cells.  They live in one private [Obs.Registry.t] per
   pool, which makes [Registry.reset] the single reset path: [reset_stats]
   delegates to it and the [stats] accessors are thin reads of the same
   cells — the seq/rand write counters (and the write-head gauge) can no
   longer drift from the rest of the stats on reset. *)
type metrics = {
  registry : Obs.Registry.t;
  logical_reads : Obs.Counter.t;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  evictions : Obs.Counter.t;
  physical_writes : Obs.Counter.t;
  seq_writes : Obs.Counter.t;
  rand_writes : Obs.Counter.t;
  pin_waits : Obs.Counter.t;
  last_write : Obs.Gauge.t;
      (** Pid of this pool's last write-back; initial (and post-reset)
          value -1 puts the head just before page 0. *)
}

let make_metrics () =
  let registry = Obs.Registry.create () in
  {
    registry;
    logical_reads = Obs.Registry.counter ~registry "pool.logical_reads";
    hits = Obs.Registry.counter ~registry "pool.hits";
    misses = Obs.Registry.counter ~registry "pool.misses";
    evictions = Obs.Registry.counter ~registry "pool.evictions";
    physical_writes = Obs.Registry.counter ~registry "pool.physical_writes";
    seq_writes = Obs.Registry.counter ~registry "pool.seq_writes";
    rand_writes = Obs.Registry.counter ~registry "pool.rand_writes";
    pin_waits = Obs.Registry.counter ~registry "pool.pin_waits";
    last_write = Obs.Registry.gauge ~registry ~initial:(-1) "pool.last_write";
  }

type t = {
  disk : Disk.t;
  capacity : int;
  mu : Mutex.t;  (** Guards [frames], the recency list, pins, and the disk. *)
  frames : (int, frame) Hashtbl.t;
  nil : frame;  (** Sentinel: [nil.next] is the MRU frame, [nil.prev] the LRU. *)
  m : metrics;
}

let create ?(capacity = 64) disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  let rec nil =
    {
      pid = -1;
      image = Bytes.empty;
      dirty = false;
      pins = 0;
      latch = Latch.create "nil";
      prev = nil;
      next = nil;
    }
  in
  { disk; capacity; mu = Mutex.create (); frames = Hashtbl.create capacity; nil;
    m = make_metrics () }

let disk t = t.disk

let unlink frame =
  frame.prev.next <- frame.next;
  frame.next.prev <- frame.prev

let push_front t frame =
  frame.next <- t.nil.next;
  frame.prev <- t.nil;
  t.nil.next.prev <- frame;
  t.nil.next <- frame

let touch t frame =
  if t.nil.next != frame then begin
    unlink frame;
    push_front t frame
  end

(* A write-back must not race the frame's mutator: without the frame latch
   it could push a half-written image to disk and — worse — clear [dirty]
   over a mutation that lands just after the copy, silently losing the
   update at the next clean eviction.  The shared latch is taken with
   [try_shared]: an active mutator means the frame's contents are not a
   committed state yet, so skipping it (leaving [dirty] set for the next
   flush or eviction) is both safe and the only deadlock-free option while
   the pool mutex is held. *)
let write_back t frame =
  if frame.dirty && Latch.try_shared frame.latch then
    Fun.protect
      ~finally:(fun () -> Latch.release_shared frame.latch)
      (fun () ->
        if frame.dirty then begin
          Disk.write t.disk frame.pid frame.image;
          Obs.Counter.incr t.m.physical_writes;
          Obs.Counter.record g_physical_writes 1;
          let last = Obs.Gauge.get t.m.last_write in
          if frame.pid = last || frame.pid = last + 1 then Obs.Counter.incr t.m.seq_writes
          else Obs.Counter.incr t.m.rand_writes;
          Obs.Gauge.set t.m.last_write frame.pid;
          frame.dirty <- false
        end)

(* Walk tail -> head for the least-recently-used unpinned frame.  Pinned
   frames (a [with_page]* callback is live over their bytes) must stay
   resident; if every frame is pinned the pool is over-committed and we
   fail loudly instead of corrupting the active caller. *)
let evict_lru t =
  let rec victim f =
    if f == t.nil then
      failwith
        (Printf.sprintf "Buffer_pool: all %d frames pinned, cannot evict" t.capacity)
    else if f.pins = 0 then f
    else begin
      Obs.Counter.incr t.m.pin_waits;
      Obs.Counter.record g_pin_waits 1;
      victim f.prev
    end
  in
  let v = victim t.nil.prev in
  write_back t v;
  unlink v;
  Hashtbl.remove t.frames v.pid;
  Obs.Counter.incr t.m.evictions;
  Obs.Counter.record g_evictions 1

let install t frame =
  if Hashtbl.length t.frames >= t.capacity then evict_lru t;
  push_front t frame;
  Hashtbl.add t.frames frame.pid frame

let load t pid =
  Obs.Counter.incr t.m.logical_reads;
  match Hashtbl.find_opt t.frames pid with
  | Some frame ->
    Obs.Counter.incr t.m.hits;
    Obs.Counter.record g_hits 1;
    touch t frame;
    frame
  | None ->
    Obs.Counter.incr t.m.misses;
    Obs.Counter.record g_misses 1;
    let frame =
      {
        pid;
        image = Disk.read t.disk pid;
        dirty = false;
        pins = 0;
        latch = Latch.create (Printf.sprintf "page-%d" pid);
        prev = t.nil;
        next = t.nil;
      }
    in
    install t frame;
    frame

let alloc_page t =
  Sched.yield ();
  Mutex.protect t.mu @@ fun () ->
  let pid = Disk.alloc t.disk in
  let frame =
    {
      pid;
      image = Bytes.make (Disk.page_size t.disk) '\000';
      dirty = false;
      pins = 0;
      latch = Latch.create (Printf.sprintf "page-%d" pid);
      prev = t.nil;
      next = t.nil;
    }
  in
  install t frame;
  pid

(* Pin under the pool mutex, run the callback under the frame latch with
   the mutex released, unpin under the mutex again.  The pin keeps the
   frame resident (and its latch meaningful) for exactly the callback's
   lifetime; the latch mode decides reader concurrency on the bytes.
   [dirty] is set inside the exclusive latch, not at pin time: a
   concurrent [write_back] holds the shared latch while it tests-and-
   clears the flag, so latch exclusion is what keeps a mutation from ever
   sitting under a cleared flag. *)
let pinned t ~exclusive pid f =
  Sched.yield ();
  let frame =
    Mutex.protect t.mu (fun () ->
        let frame = load t pid in
        frame.pins <- frame.pins + 1;
        frame)
  in
  Fun.protect
    ~finally:(fun () -> Mutex.protect t.mu (fun () -> frame.pins <- frame.pins - 1))
    (fun () ->
      if exclusive then
        Latch.with_latch frame.latch (fun () ->
            frame.dirty <- true;
            f frame.image)
      else Latch.with_shared frame.latch (fun () -> f frame.image))

let with_page t pid f = pinned t ~exclusive:false pid f

let with_page_mut t pid f = pinned t ~exclusive:true pid f

(* Dirty frames are written back in ascending pid order: deterministic
   (Hashtbl iteration order used to decide it) and sequential on disk.
   Runs under the pool mutex; a frame whose mutator is still inside its
   exclusive latch is skipped by [write_back] and stays dirty for the next
   flush or eviction.  The maintenance flow is unaffected: its own writes
   have released their latches by the time it flushes. *)
let flush_all t =
  Sched.yield ();
  Mutex.protect t.mu @@ fun () ->
  let dirty = ref [] in
  Hashtbl.iter (fun _ frame -> if frame.dirty then dirty := frame :: !dirty) t.frames;
  List.iter (write_back t) (List.sort (fun a b -> compare a.pid b.pid) !dirty)

let stats t =
  {
    logical_reads = Obs.Counter.get t.m.logical_reads;
    hits = Obs.Counter.get t.m.hits;
    misses = Obs.Counter.get t.m.misses;
    evictions = Obs.Counter.get t.m.evictions;
    physical_writes = Obs.Counter.get t.m.physical_writes;
    seq_writes = Obs.Counter.get t.m.seq_writes;
    rand_writes = Obs.Counter.get t.m.rand_writes;
    pin_waits = Obs.Counter.get t.m.pin_waits;
  }

let metrics_registry t = t.m.registry

let reset_stats t =
  (* One reset path: every pool cell — including the seq/rand split and
     the write-head gauge, which earlier revisions reset by hand — goes
     through the pool's registry, so nothing can be missed. *)
  Obs.Registry.reset t.m.registry;
  Disk.reset_stats t.disk

let drop_cache t =
  flush_all t;
  Mutex.protect t.mu @@ fun () ->
  Hashtbl.reset t.frames;
  t.nil.next <- t.nil;
  t.nil.prev <- t.nil

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "logical=%d hits=%d misses=%d evictions=%d phys_writes=%d (%d seq / %d rand)"
    s.logical_reads s.hits s.misses s.evictions s.physical_writes s.seq_writes s.rand_writes
