(* Frames form an intrusive doubly-linked list in recency order (head =
   most recent, tail = LRU victim), so touch and evict are O(1) pointer
   splices — the previous implementation scanned every frame with a
   Hashtbl.fold per eviction.  [nil] is a self-linked sentinel: the list is
   circular through it, which removes every option/None case from the
   splice code. *)
type frame = {
  mutable pid : int;
  mutable image : bytes;
  mutable dirty : bool;
  mutable pins : int;
      (** Active [with_page]/[with_page_mut] callbacks over this frame.
          Pinned frames are never evicted: a nested page access inside the
          callback would otherwise evict the active frame and silently lose
          the caller's mutations to a stale re-read. *)
  mutable prev : frame;
  mutable next : frame;
}

type stats = {
  logical_reads : int;
  hits : int;
  misses : int;
  evictions : int;
  physical_writes : int;
  seq_writes : int;
  rand_writes : int;
}

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  nil : frame;  (** Sentinel: [nil.next] is the MRU frame, [nil.prev] the LRU. *)
  mutable logical_reads : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable physical_writes : int;
  mutable seq_writes : int;
  mutable rand_writes : int;
  mutable last_write : int;  (** Pid of this pool's last write-back, -1 initially. *)
}

let create ?(capacity = 64) disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  let rec nil =
    { pid = -1; image = Bytes.empty; dirty = false; pins = 0; prev = nil; next = nil }
  in
  {
    disk;
    capacity;
    frames = Hashtbl.create capacity;
    nil;
    logical_reads = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    physical_writes = 0;
    seq_writes = 0;
    rand_writes = 0;
    last_write = -1;
  }

let disk t = t.disk

let unlink frame =
  frame.prev.next <- frame.next;
  frame.next.prev <- frame.prev

let push_front t frame =
  frame.next <- t.nil.next;
  frame.prev <- t.nil;
  t.nil.next.prev <- frame;
  t.nil.next <- frame

let touch t frame =
  if t.nil.next != frame then begin
    unlink frame;
    push_front t frame
  end

let write_back t frame =
  if frame.dirty then begin
    Disk.write t.disk frame.pid frame.image;
    t.physical_writes <- t.physical_writes + 1;
    if frame.pid = t.last_write || frame.pid = t.last_write + 1 then
      t.seq_writes <- t.seq_writes + 1
    else t.rand_writes <- t.rand_writes + 1;
    t.last_write <- frame.pid;
    frame.dirty <- false
  end

(* Walk tail -> head for the least-recently-used unpinned frame.  Pinned
   frames (a [with_page]* callback is live over their bytes) must stay
   resident; if every frame is pinned the pool is over-committed and we
   fail loudly instead of corrupting the active caller. *)
let evict_lru t =
  let rec victim f =
    if f == t.nil then
      failwith
        (Printf.sprintf "Buffer_pool: all %d frames pinned, cannot evict" t.capacity)
    else if f.pins = 0 then f
    else victim f.prev
  in
  let v = victim t.nil.prev in
  write_back t v;
  unlink v;
  Hashtbl.remove t.frames v.pid;
  t.evictions <- t.evictions + 1

let install t frame =
  if Hashtbl.length t.frames >= t.capacity then evict_lru t;
  push_front t frame;
  Hashtbl.add t.frames frame.pid frame

let load t pid =
  t.logical_reads <- t.logical_reads + 1;
  match Hashtbl.find_opt t.frames pid with
  | Some frame ->
    t.hits <- t.hits + 1;
    touch t frame;
    frame
  | None ->
    t.misses <- t.misses + 1;
    let frame =
      {
        pid;
        image = Disk.read t.disk pid;
        dirty = false;
        pins = 0;
        prev = t.nil;
        next = t.nil;
      }
    in
    install t frame;
    frame

let alloc_page t =
  let pid = Disk.alloc t.disk in
  let frame =
    {
      pid;
      image = Bytes.make (Disk.page_size t.disk) '\000';
      dirty = false;
      pins = 0;
      prev = t.nil;
      next = t.nil;
    }
  in
  install t frame;
  pid

let pinned frame f =
  frame.pins <- frame.pins + 1;
  Fun.protect ~finally:(fun () -> frame.pins <- frame.pins - 1) (fun () -> f frame.image)

let with_page t pid f = pinned (load t pid) f

let with_page_mut t pid f =
  let frame = load t pid in
  frame.dirty <- true;
  pinned frame f

(* Dirty frames are written back in ascending pid order: deterministic
   (Hashtbl iteration order used to decide it) and sequential on disk. *)
let flush_all t =
  let dirty = ref [] in
  Hashtbl.iter (fun _ frame -> if frame.dirty then dirty := frame :: !dirty) t.frames;
  List.iter (write_back t) (List.sort (fun a b -> compare a.pid b.pid) !dirty)

let stats t =
  {
    logical_reads = t.logical_reads;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    physical_writes = t.physical_writes;
    seq_writes = t.seq_writes;
    rand_writes = t.rand_writes;
  }

let reset_stats t =
  t.logical_reads <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.physical_writes <- 0;
  t.seq_writes <- 0;
  t.rand_writes <- 0;
  t.last_write <- -1;
  Disk.reset_stats t.disk

let drop_cache t =
  flush_all t;
  Hashtbl.reset t.frames;
  t.nil.next <- t.nil;
  t.nil.prev <- t.nil

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "logical=%d hits=%d misses=%d evictions=%d phys_writes=%d (%d seq / %d rand)"
    s.logical_reads s.hits s.misses s.evictions s.physical_writes s.seq_writes s.rand_writes
