module Obs = Vnl_obs.Obs
module Sched = Vnl_util.Sched
module Epoch = Vnl_util.Epoch

(* Frames form an intrusive doubly-linked list in recency order (head =
   most recent, tail = LRU victim), so touch and evict are O(1) pointer
   splices — the previous implementation scanned every frame with a
   Hashtbl.fold per eviction.  [nil] is a self-linked sentinel: the list is
   circular through it, which removes every option/None case from the
   splice code.

   Domain safety is split in three layers.  The pool mutex guards the
   frame table, the recency list, pin counts, and all disk traffic (load,
   write-back).  Each frame carries a reader-writer latch guarding its
   bytes for the pessimistic path: [with_page]/[with_page_mut] pin the
   frame under the mutex, release it, and run the callback under the
   latch.  On top of that, each frame carries an atomic version {e stamp}
   (seqlock discipline: even = stable, odd = a mutator is inside its
   exclusive latch), and [read_page] uses it for an optimistic latch-free
   read: snapshot the stamp, run the callback on the raw bytes with no
   latch, no pin, and no pool mutex, then re-validate the stamp.  An
   unchanged even stamp proves no mutation overlapped the read; any
   change forces a retry, bounded before falling back to the latched
   path.  OCaml's memory model makes the racy byte reads safe (no crash,
   no type confusion) — a torn decode yields garbage values or an
   exception, both of which the failed validation discards. *)
type frame = {
  mutable pid : int;
  mutable image : bytes;
  mutable dirty : bool;
  mutable pins : int;
      (** Active [with_page]/[with_page_mut] callbacks over this frame,
          updated under the pool mutex.  Pinned frames are never evicted:
          eviction would hand the active caller's bytes to another page
          (and a write-back would race the caller's mutations). *)
  latch : Latch.t;  (** Shared for reads, exclusive for mutations. *)
  stamp : int Atomic.t;
      (** Version stamp.  Even: stable; odd: being mutated.  Mutators bump
          it to odd before touching the bytes and back to even after, both
          inside the exclusive latch.  Eviction kills the frame by forcing
          the stamp odd forever, so a reader holding a stale frame whose
          page was reloaded and mutated elsewhere can never validate
          pre-eviction bytes as current. *)
  mutable prev : frame;
  mutable next : frame;
}

type stats = {
  logical_reads : int;
  hits : int;
  misses : int;
  evictions : int;
  physical_writes : int;
  seq_writes : int;
  rand_writes : int;
  pin_waits : int;
  opt_reads : int;
  opt_retries : int;
  opt_fallbacks : int;
  frames_reclaimed : int;
}

(* Stack-wide mirrors in the default observability registry (aggregated
   over every pool instance, gated on [Obs.enabled]).  The authoritative
   per-pool cells live in each pool's private registry below and count
   unconditionally: experiments compare by them with observability off. *)
let g_hits = Obs.Registry.counter "pool.hits"

let g_misses = Obs.Registry.counter "pool.misses"

let g_evictions = Obs.Registry.counter "pool.evictions"

let g_physical_writes = Obs.Registry.counter "pool.physical_writes"

let g_pin_waits = Obs.Registry.counter "pool.pin_waits"

let g_opt_retries = Obs.Registry.counter "pool.opt_retries"

let g_opt_fallbacks = Obs.Registry.counter "pool.opt_fallbacks"

(* Per-pool counter cells.  They live in one private [Obs.Registry.t] per
   pool, which makes [Registry.reset] the single reset path: [reset_stats]
   delegates to it and the [stats] accessors are thin reads of the same
   cells — the seq/rand write counters (and the write-head gauge) can no
   longer drift from the rest of the stats on reset. *)
type metrics = {
  registry : Obs.Registry.t;
  logical_reads : Obs.Counter.t;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  evictions : Obs.Counter.t;
  physical_writes : Obs.Counter.t;
  seq_writes : Obs.Counter.t;
  rand_writes : Obs.Counter.t;
  pin_waits : Obs.Counter.t;
  opt_reads : Obs.Counter.t;  (** Latch-free reads that validated. *)
  opt_retries : Obs.Counter.t;
      (** Optimistic attempts discarded (odd stamp, or changed between
          snapshot and validate). *)
  opt_fallbacks : Obs.Counter.t;
      (** Reads that exhausted their optimistic budget (or missed the
          resident map) and took the latched path. *)
  frames_reclaimed : Obs.Counter.t;
      (** Evicted frames whose retire epoch fell behind the minimum pinned
          epoch and were handed back for reuse. *)
  last_write : Obs.Gauge.t;
      (** Pid of this pool's last write-back; initial (and post-reset)
          value -1 puts the head just before page 0. *)
}

let make_metrics () =
  let registry = Obs.Registry.create () in
  {
    registry;
    logical_reads = Obs.Registry.counter ~registry "pool.logical_reads";
    hits = Obs.Registry.counter ~registry "pool.hits";
    misses = Obs.Registry.counter ~registry "pool.misses";
    evictions = Obs.Registry.counter ~registry "pool.evictions";
    physical_writes = Obs.Registry.counter ~registry "pool.physical_writes";
    seq_writes = Obs.Registry.counter ~registry "pool.seq_writes";
    rand_writes = Obs.Registry.counter ~registry "pool.rand_writes";
    pin_waits = Obs.Registry.counter ~registry "pool.pin_waits";
    opt_reads = Obs.Registry.counter ~registry "pool.opt_reads";
    opt_retries = Obs.Registry.counter ~registry "pool.opt_retries";
    opt_fallbacks = Obs.Registry.counter ~registry "pool.opt_fallbacks";
    frames_reclaimed = Obs.Registry.counter ~registry "pool.frames_reclaimed";
    last_write = Obs.Registry.gauge ~registry ~initial:(-1) "pool.last_write";
  }

type t = {
  disk : Disk.t;
  capacity : int;
  mu : Mutex.t;  (** Guards [frames], the recency list, pins, and the disk. *)
  frames : (int, frame) Hashtbl.t;
  map : frame option Atomic.t array Atomic.t;
      (** Lock-free resident map for the optimistic path, indexed by pid.
          Written only under the pool mutex (install, evict, drop_cache);
          read by any domain with no lock.  Grows by publishing a larger
          array that shares the existing cells, so readers holding the old
          array keep seeing updates; a pid beyond a reader's array simply
          misses to the latched path. *)
  nil : frame;  (** Sentinel: [nil.next] is the MRU frame, [nil.prev] the LRU. *)
  mutable retired : frame Epoch.t option;
      (** When epoch reclamation is enabled, evicted frames are retired
          here stamped with the warehouse epoch ([advance_epoch]) and
          recycled ([reclaim_frames]) only once the minimum pinned session
          epoch has moved past their retirement — the buffer-reuse
          analogue of tuple GC. *)
  m : metrics;
}

let create ?(capacity = 64) disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  let rec nil =
    {
      pid = -1;
      image = Bytes.empty;
      dirty = false;
      pins = 0;
      latch = Latch.create "nil";
      stamp = Atomic.make 1;  (* dead: never validates *)
      prev = nil;
      next = nil;
    }
  in
  {
    disk;
    capacity;
    mu = Mutex.create ();
    frames = Hashtbl.create capacity;
    map = Atomic.make (Array.init (max capacity 16) (fun _ -> Atomic.make None));
    nil;
    retired = None;
    m = make_metrics ();
  }

let disk t = t.disk

let enable_epoch_reclamation t =
  if t.retired = None then t.retired <- Some (Epoch.create ())

let advance_epoch t e =
  match t.retired with Some bag -> Epoch.advance bag e | None -> ()

(* ---------- lock-free resident map ---------- *)

(* Only called under the pool mutex, so there is exactly one grower. *)
let map_cell t pid =
  let arr = Atomic.get t.map in
  let arr =
    if pid < Array.length arr then arr
    else begin
      let n = ref (2 * Array.length arr) in
      while pid >= !n do
        n := 2 * !n
      done;
      let bigger =
        Array.init !n (fun i ->
            if i < Array.length arr then arr.(i) else Atomic.make None)
      in
      Atomic.set t.map bigger;
      bigger
    end
  in
  arr.(pid)

let map_lookup t pid =
  let arr = Atomic.get t.map in
  if pid < Array.length arr then Atomic.get arr.(pid) else None

let unlink frame =
  frame.prev.next <- frame.next;
  frame.next.prev <- frame.prev

let push_front t frame =
  frame.next <- t.nil.next;
  frame.prev <- t.nil;
  t.nil.next.prev <- frame;
  t.nil.next <- frame

let touch t frame =
  if t.nil.next != frame then begin
    unlink frame;
    push_front t frame
  end

(* A write-back must not race the frame's mutator: without the frame latch
   it could push a half-written image to disk and — worse — clear [dirty]
   over a mutation that lands just after the copy, silently losing the
   update at the next clean eviction.  The shared latch is taken with
   [try_shared]: an active mutator means the frame's contents are not a
   committed state yet, so skipping it (leaving [dirty] set for the next
   flush or eviction) is both safe and the only deadlock-free option while
   the pool mutex is held. *)
let write_back t frame =
  if frame.dirty && Latch.try_shared frame.latch then
    Fun.protect
      ~finally:(fun () -> Latch.release_shared frame.latch)
      (fun () ->
        if frame.dirty then begin
          Disk.write t.disk frame.pid frame.image;
          Obs.Counter.incr t.m.physical_writes;
          Obs.Counter.record g_physical_writes 1;
          let last = Obs.Gauge.get t.m.last_write in
          if frame.pid = last || frame.pid = last + 1 then Obs.Counter.incr t.m.seq_writes
          else Obs.Counter.incr t.m.rand_writes;
          Obs.Gauge.set t.m.last_write frame.pid;
          frame.dirty <- false
        end)

(* Walk tail -> head for the least-recently-used unpinned frame.  Pinned
   frames (a [with_page]* callback is live over their bytes) must stay
   resident; if every frame is pinned the pool is over-committed and we
   fail loudly instead of corrupting the active caller. *)
let evict_lru t =
  let rec victim f =
    if f == t.nil then
      failwith
        (Printf.sprintf "Buffer_pool: all %d frames pinned, cannot evict" t.capacity)
    else if f.pins = 0 then f
    else begin
      Obs.Counter.incr t.m.pin_waits;
      Obs.Counter.record g_pin_waits 1;
      victim f.prev
    end
  in
  let v = victim t.nil.prev in
  write_back t v;
  unlink v;
  Hashtbl.remove t.frames v.pid;
  (* Kill the frame for optimistic readers {e before} its page can be
     reloaded (install runs under this same mutex): force the stamp odd,
     permanently.  A reader that snapshotted the old even stamp and
     validates after this point retries; one that validated before read
     pre-eviction bytes, which still equal the page's committed content.
     Without the kill, a reload-and-mutate through a fresh frame would
     leave this frame's stamp even and its stale bytes "valid". *)
  Atomic.set v.stamp (Atomic.get v.stamp lor 1);
  Atomic.set (map_cell t v.pid) None;
  (match t.retired with Some bag -> Epoch.retire bag v | None -> ());
  Obs.Counter.incr t.m.evictions;
  Obs.Counter.record g_evictions 1

let install t frame =
  if Hashtbl.length t.frames >= t.capacity then evict_lru t;
  push_front t frame;
  Hashtbl.add t.frames frame.pid frame;
  Atomic.set (map_cell t frame.pid) (Some frame)

let load t pid =
  Obs.Counter.incr t.m.logical_reads;
  match Hashtbl.find_opt t.frames pid with
  | Some frame ->
    Obs.Counter.incr t.m.hits;
    Obs.Counter.record g_hits 1;
    touch t frame;
    frame
  | None ->
    Obs.Counter.incr t.m.misses;
    Obs.Counter.record g_misses 1;
    let frame =
      {
        pid;
        image = Disk.read t.disk pid;
        dirty = false;
        pins = 0;
        latch = Latch.create (Printf.sprintf "page-%d" pid);
        stamp = Atomic.make 0;
        prev = t.nil;
        next = t.nil;
      }
    in
    install t frame;
    frame

let alloc_page t =
  Sched.yield ();
  Mutex.protect t.mu @@ fun () ->
  let pid = Disk.alloc t.disk in
  let frame =
    {
      pid;
      image = Bytes.make (Disk.page_size t.disk) '\000';
      dirty = false;
      pins = 0;
      latch = Latch.create (Printf.sprintf "page-%d" pid);
      stamp = Atomic.make 0;
      prev = t.nil;
      next = t.nil;
    }
  in
  install t frame;
  pid

(* Pin under the pool mutex, run the callback under the frame latch with
   the mutex released, unpin under the mutex again.  The pin keeps the
   frame resident (and its latch meaningful) for exactly the callback's
   lifetime; the latch mode decides reader concurrency on the bytes.
   [dirty] is set inside the exclusive latch, not at pin time: a
   concurrent [write_back] holds the shared latch while it tests-and-
   clears the flag, so latch exclusion is what keeps a mutation from ever
   sitting under a cleared flag. *)
let pinned t ~exclusive pid f =
  Sched.yield ();
  let frame =
    Mutex.protect t.mu (fun () ->
        let frame = load t pid in
        frame.pins <- frame.pins + 1;
        frame)
  in
  Fun.protect
    ~finally:(fun () -> Mutex.protect t.mu (fun () -> frame.pins <- frame.pins - 1))
    (fun () ->
      if exclusive then
        Latch.with_latch frame.latch (fun () ->
            (* Seqlock write side: odd while the bytes are in flux, back to
               even (two higher) when stable again.  Both bumps happen
               inside the exclusive latch, so stamp parity exactly tracks
               "a mutator may be mid-write".  The closing bump runs even if
               [f] raises — a half-applied mutation must not leave the
               stamp odd forever (the heap layer treats such exceptions as
               aborts and the page as garbage until rewritten), but it
               {e does} leave the stamp changed, so any overlapping
               optimistic read is discarded. *)
            Atomic.incr frame.stamp;
            Fun.protect
              ~finally:(fun () -> Atomic.incr frame.stamp)
              (fun () ->
                frame.dirty <- true;
                f frame.image))
      else Latch.with_shared frame.latch (fun () -> f frame.image))

let with_page t pid f = pinned t ~exclusive:false pid f

let with_page_mut t pid f = pinned t ~exclusive:true pid f

(* How many optimistic attempts before conceding to the latched path.  A
   retry is cheap (no lock traffic), but under a continuously mutating
   page the latched path is the only guaranteed progress, so the budget
   stays small. *)
let max_optimistic_attempts = 3

(* The latch-free read.  No pool mutex, no pin, no latch: look the frame
   up in the lock-free resident map, snapshot its stamp, run [f] on the
   raw bytes, and validate that the stamp has not moved.  The [Sched.yield]
   calls bracket the racy section so the deterministic interleaving
   harness can force a mutator between snapshot and validate.

   [f] may run over bytes mid-mutation, so it must be pure with respect to
   external state: it can be re-run after a failed validation, and any
   value it returned — or exception it raised — during an invalidated
   attempt is discarded, never surfaced.  The caller sees only results
   produced by an attempt whose stamp validated (or by the latched
   fallback).

   A validated optimistic read counts one [logical_read] and one [hit]
   (it can only succeed against a resident frame), keeping
   [hits + misses = logical_reads] and the compiled-vs-interpreted I/O
   parity intact; it deliberately skips the LRU touch — recency
   maintenance is what the mutex was protecting, and hot pages are kept
   resident by the misses and mutations that do touch. *)
let read_page t pid f =
  let fallback () =
    Obs.Counter.incr t.m.opt_fallbacks;
    Obs.Counter.record g_opt_fallbacks 1;
    pinned t ~exclusive:false pid f
  in
  let retry () =
    Obs.Counter.incr t.m.opt_retries;
    Obs.Counter.record g_opt_retries 1
  in
  let rec attempt n =
    if n >= max_optimistic_attempts then fallback ()
    else
      match map_lookup t pid with
      | None -> fallback ()  (* not resident: the miss needs the mutex + disk *)
      | Some frame ->
        Sched.yield ();
        let s0 = Atomic.get frame.stamp in
        if s0 land 1 = 1 then begin
          (* A mutator is mid-write (or the frame was evicted): reading
             now could only be wasted work. *)
          retry ();
          attempt (n + 1)
        end
        else begin
          let result =
            match f frame.image with v -> Ok v | exception e -> Error e
          in
          Sched.yield ();
          if Atomic.get frame.stamp = s0 then begin
            Obs.Counter.incr t.m.logical_reads;
            Obs.Counter.incr t.m.hits;
            Obs.Counter.record g_hits 1;
            Obs.Counter.incr t.m.opt_reads;
            match result with Ok v -> v | Error e -> raise e
          end
          else begin
            retry ();
            attempt (n + 1)
          end
        end
  in
  attempt 0

(* Dirty frames are written back in ascending pid order: deterministic
   (Hashtbl iteration order used to decide it) and sequential on disk.
   Runs under the pool mutex; a frame whose mutator is still inside its
   exclusive latch is skipped by [write_back] and stays dirty for the next
   flush or eviction.  The maintenance flow is unaffected: its own writes
   have released their latches by the time it flushes. *)
let flush_all t =
  Sched.yield ();
  Mutex.protect t.mu @@ fun () ->
  let dirty = ref [] in
  Hashtbl.iter (fun _ frame -> if frame.dirty then dirty := frame :: !dirty) t.frames;
  List.iter (write_back t) (List.sort (fun a b -> compare a.pid b.pid) !dirty)

(* Targeted, {e blocking} write-back for the pipelined maintenance path.
   [flush_all]'s skip-on-active-mutator rule is correct for a full sweep
   (the frame stays dirty for the next flush) but not for a durability
   point: a concurrent applier from another partition holding a boundary
   page's latch would let this partition publish with one of its own pages
   still volatile.  So each target page is pinned (under the mutex, so it
   cannot be evicted out from under us), then the shared latch is acquired
   {e blocking} — waiting out any mutator — and the write happens back
   under the mutex (all disk traffic stays mutex-serialized).  Lock order
   is latch -> mutex, which cannot deadlock: no mutex critical section in
   this module blocks on a latch ([write_back] uses [try_shared]). *)
let flush_pages t pids =
  Sched.yield ();
  let flush_one pid =
    let frame =
      Mutex.protect t.mu (fun () ->
          match Hashtbl.find_opt t.frames pid with
          | Some frame when frame.dirty ->
            frame.pins <- frame.pins + 1;
            Some frame
          | Some _ | None -> None)
    in
    match frame with
    | None -> () (* Not resident (write-back already happened) or clean. *)
    | Some frame ->
      Fun.protect
        ~finally:(fun () -> Mutex.protect t.mu (fun () -> frame.pins <- frame.pins - 1))
        (fun () ->
          Latch.with_shared frame.latch (fun () ->
              Mutex.protect t.mu (fun () ->
                  if frame.dirty then begin
                    Disk.write t.disk frame.pid frame.image;
                    Obs.Counter.incr t.m.physical_writes;
                    Obs.Counter.record g_physical_writes 1;
                    let last = Obs.Gauge.get t.m.last_write in
                    if frame.pid = last || frame.pid = last + 1 then
                      Obs.Counter.incr t.m.seq_writes
                    else Obs.Counter.incr t.m.rand_writes;
                    Obs.Gauge.set t.m.last_write frame.pid;
                    frame.dirty <- false
                  end)))
  in
  List.iter flush_one (List.sort_uniq Int.compare pids)

(* Pull evicted frames out of the retire bag once no pinned session epoch
   can still reach them.  The frames' byte buffers become garbage here
   (the OCaml GC frees them); what the epoch gate buys is the guarantee
   that no optimistic reader is still running [f] over those bytes — the
   protocol a real allocator-recycling pool needs, exercised and counted
   so the QCheck suite can drive it.  [horizon] is the warehouse's minimum
   pinned session epoch (Twovnl.min_session_vn); pins placed directly on
   the pool's own bag (tests) bound it too. *)
let reclaim_frames t ~horizon =
  match t.retired with
  | None -> 0
  | Some bag ->
    let freed = List.length (Epoch.reclaim_before bag ~horizon) in
    if freed > 0 then Obs.Counter.add t.m.frames_reclaimed freed;
    freed

let stats t =
  {
    logical_reads = Obs.Counter.get t.m.logical_reads;
    hits = Obs.Counter.get t.m.hits;
    misses = Obs.Counter.get t.m.misses;
    evictions = Obs.Counter.get t.m.evictions;
    physical_writes = Obs.Counter.get t.m.physical_writes;
    seq_writes = Obs.Counter.get t.m.seq_writes;
    rand_writes = Obs.Counter.get t.m.rand_writes;
    pin_waits = Obs.Counter.get t.m.pin_waits;
    opt_reads = Obs.Counter.get t.m.opt_reads;
    opt_retries = Obs.Counter.get t.m.opt_retries;
    opt_fallbacks = Obs.Counter.get t.m.opt_fallbacks;
    frames_reclaimed = Obs.Counter.get t.m.frames_reclaimed;
  }

let metrics_registry t = t.m.registry

let reset_stats t =
  (* One reset path: every pool cell — including the seq/rand split and
     the write-head gauge, which earlier revisions reset by hand — goes
     through the pool's registry, so nothing can be missed. *)
  Obs.Registry.reset t.m.registry;
  Disk.reset_stats t.disk

let drop_cache t =
  flush_all t;
  Mutex.protect t.mu @@ fun () ->
  Hashtbl.iter
    (fun pid frame ->
      (* Same kill as eviction: the dropped frames must never validate. *)
      Atomic.set frame.stamp (Atomic.get frame.stamp lor 1);
      Atomic.set (map_cell t pid) None;
      match t.retired with Some bag -> Epoch.retire bag frame | None -> ())
    t.frames;
  Hashtbl.reset t.frames;
  t.nil.next <- t.nil;
  t.nil.prev <- t.nil

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "logical=%d hits=%d misses=%d evictions=%d phys_writes=%d (%d seq / %d rand) \
     opt=%d (%d retries / %d fallbacks)"
    s.logical_reads s.hits s.misses s.evictions s.physical_writes s.seq_writes
    s.rand_writes s.opt_reads s.opt_retries s.opt_fallbacks
