(** LRU buffer pool over a {!Disk}.

    All page access goes through [with_page]/[with_page_mut]; misses cost a
    physical read, dirty evictions and [flush_all] cost physical writes.
    The I/O experiment compares algorithms by the physical counters gathered
    here, mirroring how the paper frames MV2PL's version-pool penalty
    (§6).

    Frames live on an intrusive doubly-linked recency list, so a hit
    (move-to-front) and an eviction (pop the tail) are both O(1); the miss
    path never scans the resident set.

    Frames are pinned for the duration of the [with_page]/[with_page_mut]
    callback: a nested page access inside the callback can evict other
    frames but never the pinned one, so mutations through the callback's
    bytes always reach the frame that will be written back.  If every frame
    is pinned when an eviction is needed, the pool raises [Failure] rather
    than corrupt a live caller.

    Domain-safe: a pool mutex guards the frame table, recency list, pin
    counts, and all disk traffic; each frame carries a reader-writer latch
    guarding its bytes.  [with_page] callbacks of several reader domains
    run concurrently on the same frame (shared latch) while
    [with_page_mut] excludes them (exclusive latch), so a reader can never
    decode a half-written tuple.  Counters are lock-free atomics and
    always consistent ([hits + misses = logical_reads] even under
    contention).

    On top of the latched protocol sits the optimistic path: every frame
    carries an atomic version stamp (even = stable, odd = mutating) that
    [with_page_mut] bumps around its mutation, and {!read_page} reads
    resident pages with no latch, no pin, and no pool mutex by validating
    the stamp around the callback — retrying on conflict and falling back
    to the latched path after a bounded number of attempts (or when the
    page is not resident).  See DESIGN.md §12 for the full protocol. *)

type t

type stats = {
  logical_reads : int;  (** Page requests served (hits + misses). *)
  hits : int;
  misses : int;  (** Each miss is one physical read. *)
  evictions : int;
  physical_writes : int;  (** Dirty evictions plus explicit flushes. *)
  seq_writes : int;
      (** Write-backs landing on the page at or just past the pool's previous
          write-back — no seek, cf. {!Disk.stats}.  After [reset_stats] the
          head sits before page 0: the first write-back is sequential iff it
          targets page 0. *)
  rand_writes : int;  (** Write-backs that moved the head. *)
  pin_waits : int;
      (** Pinned frames the eviction scan had to skip over — each skip is
          a would-be wait for the pin to drain. *)
  opt_reads : int;
      (** [read_page] calls whose stamp validated: served latch-free.
          Each also counts one logical read and one hit. *)
  opt_retries : int;
      (** Optimistic attempts discarded — odd stamp at snapshot, or a
          stamp change between snapshot and validate. *)
  opt_fallbacks : int;
      (** [read_page] calls served by the latched path instead: page not
          resident, or the retry budget ran out under mutation pressure. *)
  frames_reclaimed : int;
      (** Evicted frames recycled by {!reclaim_frames} once past the
          epoch horizon. *)
}

val create : ?capacity:int -> Disk.t -> t
(** [capacity] is the frame count, default 64. *)

val disk : t -> Disk.t

val alloc_page : t -> int
(** Allocate a fresh zeroed page on the underlying disk and cache it;
    returns the page id. *)

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** [with_page t pid f] pins the page, applies [f] to the frame bytes for
    read-only use, and unpins (also on exception).  The bytes must not be
    mutated or retained past the call.  Nested page accesses inside [f] are
    safe: the pinned frame is never the eviction victim.  Raises [Failure]
    if an eviction is needed while every frame is pinned. *)

val with_page_mut : t -> int -> (bytes -> 'a) -> 'a
(** Like [with_page] but marks the frame dirty; mutations through [f] reach
    disk on eviction or flush.  Bumps the frame's version stamp to odd
    before [f] and back to even after, inside the exclusive latch, so
    concurrent {!read_page} attempts over the same frame are discarded. *)

val read_page : t -> int -> (bytes -> 'a) -> 'a
(** [read_page t pid f] is [with_page t pid f] served latch-free when it
    can be: if the page is resident, [f] runs directly on the frame bytes
    with no latch, pin, or pool mutex, bracketed by a version-stamp
    snapshot/validate (seqlock read side).  On validation failure it
    retries a bounded number of times, then — or when the page is not
    resident — falls back to the latched [with_page] path, so it always
    makes progress under continuous mutation.

    [f] must tolerate re-execution and may observe bytes mid-mutation
    during an attempt that subsequently fails validation: it must be pure
    (no external side effects, accumulate locally) and must not crash on
    garbage input — page decoding is bounds-checked, so torn images
    produce wrong values or exceptions, both discarded with the failed
    attempt.  Results (and exceptions) are surfaced only from a validated
    attempt or from the latched fallback.

    Unlike [with_page], a validated optimistic read does not touch the
    LRU recency list. *)

val enable_epoch_reclamation : t -> unit
(** Switch eviction to epoch-gated frame retirement: evicted (and
    dropped) frames go to a retire bag stamped with the current epoch
    instead of being released immediately.  Idempotent. *)

val advance_epoch : t -> int -> unit
(** Publish the warehouse epoch (version number) to the retire bag;
    monotone, no-op when reclamation is not enabled.  The warehouse calls
    this at each refresh commit. *)

val reclaim_frames : t -> horizon:int -> int
(** Drain the retire bag of evicted frames whose retire epoch is strictly
    below [min horizon (minimum pin on the bag)], returning how many were
    freed.  [horizon] is the warehouse's minimum pinned session epoch.
    Returns 0 when reclamation is not enabled. *)

val flush_all : t -> unit
(** Write every dirty frame back to disk in ascending page-id order, so a
    flush after page-ordered maintenance is one sequential sweep and the
    write order is deterministic. *)

val flush_pages : t -> int list -> unit
(** [flush_pages t pids] writes exactly the named pages back (ascending,
    duplicates ignored); non-resident or clean pages are no-ops.  Unlike
    {!flush_all} — whose sweep {e skips} a frame whose mutator is still
    inside its exclusive latch — this call {e blocks} until each target
    frame's mutator drains, so on return every named page is durably on
    disk.  This is the per-partition durability point of the pipelined
    maintenance path: a concurrent applier touching a shared boundary page
    delays the flush briefly but can never cause it to be skipped. *)

val stats : t -> stats
(** Thin reads of the pool's metric cells (see [metrics_registry]). *)

val metrics_registry : t -> Vnl_obs.Obs.Registry.t
(** The pool's private metrics registry — the single source of truth for
    the counters [stats] reads.  The cells count unconditionally
    (regardless of [Obs.enabled]): the I/O accounting is experiment data,
    not optional telemetry. *)

val reset_stats : t -> unit
(** Reset the pool's metrics registry (all counters, plus the write-head
    gauge back to "before page 0") and the underlying disk counters.
    Cached pages stay resident; experiments that want a cold cache should
    also call [drop_cache]. *)

val drop_cache : t -> unit
(** Flush dirty frames (ascending page id, as [flush_all]) and empty the
    pool, so subsequent reads are cold. *)

val pp_stats : Format.formatter -> stats -> unit
