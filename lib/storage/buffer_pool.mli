(** LRU buffer pool over a {!Disk}.

    All page access goes through [with_page]/[with_page_mut]; misses cost a
    physical read, dirty evictions and [flush_all] cost physical writes.
    The I/O experiment compares algorithms by the physical counters gathered
    here, mirroring how the paper frames MV2PL's version-pool penalty
    (§6).

    Frames live on an intrusive doubly-linked recency list, so a hit
    (move-to-front) and an eviction (pop the tail) are both O(1); the miss
    path never scans the resident set.

    Frames are pinned for the duration of the [with_page]/[with_page_mut]
    callback: a nested page access inside the callback can evict other
    frames but never the pinned one, so mutations through the callback's
    bytes always reach the frame that will be written back.  If every frame
    is pinned when an eviction is needed, the pool raises [Failure] rather
    than corrupt a live caller.

    Domain-safe: a pool mutex guards the frame table, recency list, pin
    counts, and all disk traffic; each frame carries a reader-writer latch
    guarding its bytes.  [with_page] callbacks of several reader domains
    run concurrently on the same frame (shared latch) while
    [with_page_mut] excludes them (exclusive latch), so a reader can never
    decode a half-written tuple.  Counters are lock-free atomics and
    always consistent ([hits + misses = logical_reads] even under
    contention). *)

type t

type stats = {
  logical_reads : int;  (** Page requests served (hits + misses). *)
  hits : int;
  misses : int;  (** Each miss is one physical read. *)
  evictions : int;
  physical_writes : int;  (** Dirty evictions plus explicit flushes. *)
  seq_writes : int;
      (** Write-backs landing on the page at or just past the pool's previous
          write-back — no seek, cf. {!Disk.stats}.  After [reset_stats] the
          head sits before page 0: the first write-back is sequential iff it
          targets page 0. *)
  rand_writes : int;  (** Write-backs that moved the head. *)
  pin_waits : int;
      (** Pinned frames the eviction scan had to skip over — each skip is
          a would-be wait for the pin to drain. *)
}

val create : ?capacity:int -> Disk.t -> t
(** [capacity] is the frame count, default 64. *)

val disk : t -> Disk.t

val alloc_page : t -> int
(** Allocate a fresh zeroed page on the underlying disk and cache it;
    returns the page id. *)

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** [with_page t pid f] pins the page, applies [f] to the frame bytes for
    read-only use, and unpins (also on exception).  The bytes must not be
    mutated or retained past the call.  Nested page accesses inside [f] are
    safe: the pinned frame is never the eviction victim.  Raises [Failure]
    if an eviction is needed while every frame is pinned. *)

val with_page_mut : t -> int -> (bytes -> 'a) -> 'a
(** Like [with_page] but marks the frame dirty; mutations through [f] reach
    disk on eviction or flush. *)

val flush_all : t -> unit
(** Write every dirty frame back to disk in ascending page-id order, so a
    flush after page-ordered maintenance is one sequential sweep and the
    write order is deterministic. *)

val stats : t -> stats
(** Thin reads of the pool's metric cells (see [metrics_registry]). *)

val metrics_registry : t -> Vnl_obs.Obs.Registry.t
(** The pool's private metrics registry — the single source of truth for
    the counters [stats] reads.  The cells count unconditionally
    (regardless of [Obs.enabled]): the I/O accounting is experiment data,
    not optional telemetry. *)

val reset_stats : t -> unit
(** Reset the pool's metrics registry (all counters, plus the write-head
    gauge back to "before page 0") and the underlying disk counters.
    Cached pages stay resident; experiments that want a cold cache should
    also call [drop_cache]. *)

val drop_cache : t -> unit
(** Flush dirty frames (ascending page id, as [flush_all]) and empty the
    pool, so subsequent reads are cold. *)

val pp_stats : Format.formatter -> stats -> unit
