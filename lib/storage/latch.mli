(** Short-duration latches.

    §4 of the paper requires that while a tuple is being modified a latch
    keeps readers from seeing a partly-modified record, released as soon as
    the modification completes (not at commit).  With reader sessions on
    their own OCaml 5 domains this is a {e real} reader-writer latch:
    shared holders (page scans) coexist, an exclusive holder (a page
    mutation) excludes everyone, and waiting writers bar new readers so
    maintenance cannot starve.  The module still enforces the historical
    {e discipline} errors — same-domain re-entry and release-while-free
    raise [Failure] instead of self-deadlocking — and counts acquisitions
    so experiments can report latch traffic. *)

type t

val create : string -> t
(** [create name] labels the latch for error messages. *)

val acquire : t -> unit
(** Exclusive acquire; blocks while any holder (shared or exclusive)
    remains.  Raises [Failure] if the calling domain already holds the
    latch exclusively — a latch-discipline bug, not a wait. *)

val release : t -> unit
(** Raises [Failure] if not exclusively held. *)

val acquire_shared : t -> unit
(** Shared acquire; blocks while an exclusive holder or a waiting writer
    exists.  Raises [Failure] if the calling domain holds the latch
    exclusively. *)

val try_shared : t -> bool
(** Non-blocking shared acquire: [false] iff an exclusive holder is
    active.  Unlike {!acquire_shared} it ignores waiting writers — the
    caller never blocks, so it cannot starve them. *)

val release_shared : t -> unit
(** Raises [Failure] if no shared holder exists. *)

val with_latch : t -> (unit -> 'a) -> 'a
(** Exclusive acquire, run, release (also on exception). *)

val with_shared : t -> (unit -> 'a) -> 'a
(** Shared acquire, run, release (also on exception). *)

val held : t -> bool
(** Whether an exclusive holder exists (racy snapshot). *)

val acquisitions : t -> int
(** Total number of successful acquisitions, shared and exclusive. *)
