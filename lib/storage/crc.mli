(** Page checksums.

    [crc32c] is the production checksum: CRC-32C (Castagnoli polynomial)
    computed with slicing-by-8 — one loop iteration folds eight bytes
    through eight precomputed tables, breaking the per-byte dependency
    chain of the classic table-driven loop.  [crc32_ieee] is the previous
    generation (byte-at-a-time CRC-32, IEEE polynomial), kept as the
    reference side of the differential torn-page tests.  [crc32c_bytewise]
    is the byte-at-a-time CRC-32C oracle the sliced implementation is
    checked against. *)

val crc32c : bytes -> int
(** Slicing-by-8 CRC-32C of the whole buffer.
    [crc32c (Bytes.of_string "123456789") = 0xE3069283]. *)

val crc32c_bytewise : bytes -> int
(** Byte-at-a-time CRC-32C; same function as {!crc32c}, used as its
    differential oracle. *)

val crc32_ieee : bytes -> int
(** The pre-PR 6 checksum (CRC-32, polynomial 0xedb88320), byte-at-a-time. *)
