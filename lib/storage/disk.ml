type stats = {
  reads : int;
  writes : int;
  seq_writes : int;
  rand_writes : int;
  allocations : int;
}

type t = {
  page_size : int;
  mutable pages : bytes array;
  mutable used : int;
  mutable reads : int;
  mutable writes : int;
  mutable seq_writes : int;
  mutable rand_writes : int;
  mutable last_write : int;  (** Pid of the most recent write, -1 initially. *)
  mutable allocations : int;
}

let create ?(page_size = 4096) () =
  {
    page_size;
    pages = Array.make 16 Bytes.empty;
    used = 0;
    reads = 0;
    writes = 0;
    seq_writes = 0;
    rand_writes = 0;
    last_write = -1;
    allocations = 0;
  }

let page_size t = t.page_size

let page_count t = t.used

let ensure_capacity t =
  if t.used >= Array.length t.pages then begin
    let bigger = Array.make (2 * Array.length t.pages) Bytes.empty in
    Array.blit t.pages 0 bigger 0 t.used;
    t.pages <- bigger
  end

let alloc t =
  ensure_capacity t;
  let pid = t.used in
  t.pages.(pid) <- Bytes.make t.page_size '\000';
  t.used <- t.used + 1;
  t.allocations <- t.allocations + 1;
  pid

let check t pid =
  if pid < 0 || pid >= t.used then
    invalid_arg (Printf.sprintf "Disk: page %d not allocated (have %d)" pid t.used)

let read t pid =
  check t pid;
  t.reads <- t.reads + 1;
  Bytes.copy t.pages.(pid)

(* A write is sequential when the head is already positioned: the page
   follows (or repeats) the previously written one.  Anything else pays a
   seek and counts as random — what the page-ordered batched apply is
   designed to avoid. *)
let write t pid img =
  check t pid;
  if Bytes.length img <> t.page_size then
    invalid_arg "Disk.write: image size mismatch";
  t.writes <- t.writes + 1;
  if pid = t.last_write || pid = t.last_write + 1 then
    t.seq_writes <- t.seq_writes + 1
  else t.rand_writes <- t.rand_writes + 1;
  t.last_write <- pid;
  t.pages.(pid) <- Bytes.copy img

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    seq_writes = t.seq_writes;
    rand_writes = t.rand_writes;
    allocations = t.allocations;
  }

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.seq_writes <- 0;
  t.rand_writes <- 0;
  t.last_write <- -1;
  t.allocations <- 0

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "reads=%d writes=%d (%d seq / %d rand) allocs=%d" s.reads s.writes
    s.seq_writes s.rand_writes s.allocations
