module Obs = Vnl_obs.Obs

(* Stack-wide mirrors in the default observability registry, aggregated
   across every disk instance; gated on [Obs.enabled].  The per-instance
   counters below stay unconditional — experiments compare by them with
   observability off. *)
let m_reads = Obs.Registry.counter "disk.reads"

let m_writes = Obs.Registry.counter "disk.writes"

let m_allocs = Obs.Registry.counter "disk.allocs"

let m_crashes = Obs.Registry.counter "disk.crashes"

let m_checksum_failures = Obs.Registry.counter "disk.checksum_failures"

type stats = {
  reads : int;
  writes : int;
  seq_writes : int;
  rand_writes : int;
  allocations : int;
}

exception Crash of string

exception Corrupt_page of { pid : int; stored : int; computed : int }

type fault = {
  crash_at_write : int option;
  torn_prefix : int;
  fail_read_pids : int list;
}

let no_faults = { crash_at_write = None; torn_prefix = 0; fail_read_pids = [] }

type t = {
  page_size : int;
  checksums : bool;
  mutable pages : bytes array;
  mutable sums : int array;
      (** Per-page CRC-32C of the last {e completed} write (the on-platter
          sector CRC).  A torn write updates the image prefix but not the
          checksum, which is how the tear is detected on the next read. *)
  mutable used : int;
  mutable reads : int;
  mutable writes : int;
  mutable seq_writes : int;
  mutable rand_writes : int;
  mutable last_write : int;  (** Pid of the most recent write, -1 initially. *)
  mutable allocations : int;
  mutable fault : fault;
  mutable fault_writes : int;  (** Physical writes since the policy was armed. *)
}

(* Sector checksum: slicing-by-8 CRC-32C (see [Crc]).  Checksums live only
   in memory, so swapping the polynomial has no persistence-format cost. *)
let crc32 = Crc.crc32c

let create ?(page_size = 4096) ?(checksums = true) () =
  {
    page_size;
    checksums;
    pages = Array.make 16 Bytes.empty;
    sums = Array.make 16 0;
    used = 0;
    reads = 0;
    writes = 0;
    seq_writes = 0;
    rand_writes = 0;
    last_write = -1;
    allocations = 0;
    fault = no_faults;
    fault_writes = 0;
  }

let page_size t = t.page_size

let page_count t = t.used

let checksums_enabled t = t.checksums

let ensure_capacity t =
  if t.used >= Array.length t.pages then begin
    let n = 2 * Array.length t.pages in
    let bigger = Array.make n Bytes.empty in
    Array.blit t.pages 0 bigger 0 t.used;
    t.pages <- bigger;
    let sums = Array.make n 0 in
    Array.blit t.sums 0 sums 0 t.used;
    t.sums <- sums
  end

let alloc t =
  ensure_capacity t;
  let pid = t.used in
  let img = Bytes.make t.page_size '\000' in
  t.pages.(pid) <- img;
  if t.checksums then t.sums.(pid) <- crc32 img;
  t.used <- t.used + 1;
  t.allocations <- t.allocations + 1;
  if !Obs.enabled then Obs.Counter.incr m_allocs;
  pid

let check t pid =
  if pid < 0 || pid >= t.used then
    invalid_arg (Printf.sprintf "Disk: page %d not allocated (have %d)" pid t.used)

let read t pid =
  check t pid;
  if List.mem pid t.fault.fail_read_pids then begin
    if !Obs.enabled then Obs.Counter.incr m_crashes;
    raise (Crash (Printf.sprintf "injected read failure on page %d" pid))
  end;
  t.reads <- t.reads + 1;
  if !Obs.enabled then Obs.Counter.incr m_reads;
  let img = t.pages.(pid) in
  if t.checksums then begin
    let computed = crc32 img in
    if computed <> t.sums.(pid) then begin
      if !Obs.enabled then Obs.Counter.incr m_checksum_failures;
      raise (Corrupt_page { pid; stored = t.sums.(pid); computed })
    end
  end;
  Bytes.copy img

(* A write is sequential when the head is already positioned: the page
   follows (or repeats) the previously written one.  Anything else pays a
   seek and counts as random — what the page-ordered batched apply is
   designed to avoid. *)
let write t pid img =
  check t pid;
  if Bytes.length img <> t.page_size then
    invalid_arg "Disk.write: image size mismatch";
  t.writes <- t.writes + 1;
  if !Obs.enabled then Obs.Counter.incr m_writes;
  if pid = t.last_write || pid = t.last_write + 1 then
    t.seq_writes <- t.seq_writes + 1
  else t.rand_writes <- t.rand_writes + 1;
  t.last_write <- pid;
  t.fault_writes <- t.fault_writes + 1;
  (match t.fault.crash_at_write with
  | Some k when t.fault_writes >= k ->
    (* The power fails during this write: only the first [torn_prefix]
       bytes of the new image reach the platter, and the sector checksum —
       written by the drive at the end of a completed write — keeps
       describing the previous image.  [torn_prefix = 0] models a crash
       before the write; [torn_prefix = page_size] a crash just after it
       completed (checksum included). *)
    let prefix = max 0 (min t.fault.torn_prefix t.page_size) in
    if prefix = t.page_size then begin
      t.pages.(pid) <- Bytes.copy img;
      if t.checksums then t.sums.(pid) <- crc32 img
    end
    else if prefix > 0 then begin
      let torn = Bytes.copy t.pages.(pid) in
      Bytes.blit img 0 torn 0 prefix;
      t.pages.(pid) <- torn
    end;
    if !Obs.enabled then Obs.Counter.incr m_crashes;
    raise (Crash (Printf.sprintf "injected crash at write %d (page %d, %d/%d bytes applied)"
                    t.fault_writes pid prefix t.page_size))
  | Some _ | None -> ());
  t.pages.(pid) <- Bytes.copy img;
  if t.checksums then t.sums.(pid) <- crc32 img

let verify t pid =
  check t pid;
  (not t.checksums) || crc32 t.pages.(pid) = t.sums.(pid)

let set_faults t fault =
  t.fault <- fault;
  t.fault_writes <- 0

let clear_faults t = set_faults t no_faults

let clone t =
  {
    t with
    pages = Array.map Bytes.copy t.pages;
    sums = Array.copy t.sums;
    fault = no_faults;
    fault_writes = 0;
  }

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    seq_writes = t.seq_writes;
    rand_writes = t.rand_writes;
    allocations = t.allocations;
  }

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.seq_writes <- 0;
  t.rand_writes <- 0;
  t.last_write <- -1;
  t.allocations <- 0

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "reads=%d writes=%d (%d seq / %d rand) allocs=%d" s.reads s.writes
    s.seq_writes s.rand_writes s.allocations
