(** Simulated disk.

    A disk is an in-memory array of fixed-size page images with physical I/O
    counters.  The paper's §6 cost comparison between 2VNL and MV2PL is
    framed in terms of the number of I/Os readers and the maintenance
    transaction incur; these counters (surfaced through the buffer pool) are
    what the IO experiment reports.

    For the §7 durability story the disk additionally models media behavior:
    each page carries a CRC-32 of its last {e completed} write (the sector
    checksum a real drive maintains), and a deterministic fault policy can
    crash the machine at the k-th physical write — optionally applying only
    a prefix of the page image, a torn write.  A torn page is detected on
    the next read via the checksum rather than silently decoded. *)

type t

type stats = {
  reads : int;
  writes : int;
  seq_writes : int;
      (** Writes to the page following (or equal to) the previously written
          one — no seek.  Page-ordered batched apply turns most maintenance
          write-back into these.  [reset_stats] re-positions the head before
          page 0, so the first post-reset write is sequential iff it lands
          on page 0. *)
  rand_writes : int;  (** Writes that moved the head: [writes - seq_writes]. *)
  allocations : int;
}

exception Crash of string
(** An injected fault fired: the simulated machine lost power mid-write, or
    a read hit injected media failure.  The disk object survives (it is the
    platter); in-memory state above it is considered lost. *)

exception Corrupt_page of { pid : int; stored : int; computed : int }
(** Raised by {!read} when the page image does not match its checksum —
    the signature of a torn write. *)

type fault = {
  crash_at_write : int option;
      (** Crash on the k-th physical write (1-based, counted since
          {!set_faults}).  [None] disables crashing. *)
  torn_prefix : int;
      (** Bytes of the crashing write that reach the platter (clamped to
          [0, page_size]).  [0] = the write never happened; [page_size] =
          the write completed (checksum included) just before the crash;
          anything between is a torn write, detectable by checksum. *)
  fail_read_pids : int list;  (** Reads of these pages raise {!Crash}. *)
}

val no_faults : fault

val create : ?page_size:int -> ?checksums:bool -> unit -> t
(** [create ()] makes an empty disk; [page_size] defaults to 4096 bytes.
    [checksums] (default [true]) controls whether writes maintain and reads
    verify per-page CRC-32s; disable it only to measure the overhead. *)

val page_size : t -> int

val page_count : t -> int
(** Number of allocated pages. *)

val checksums_enabled : t -> bool

val alloc : t -> int
(** Allocate a zeroed page; returns its page id. *)

val read : t -> int -> bytes
(** [read t pid] returns a copy of the page image and counts one physical
    read.  Raises [Invalid_argument] on unallocated ids, {!Corrupt_page}
    when the checksum does not match (torn write), and {!Crash} when the
    fault policy injects a read failure for this page. *)

val write : t -> int -> bytes -> unit
(** [write t pid img] replaces the page image (copied) and counts one
    physical write.  [img] must be exactly [page_size] bytes.  Raises
    {!Crash} when the fault policy's write count is reached, after applying
    [torn_prefix] bytes of the image. *)

val verify : t -> int -> bool
(** [verify t pid] checks the page against its checksum without counting a
    read; always [true] when checksums are disabled. *)

val set_faults : t -> fault -> unit
(** Arm a fault policy; the write counter restarts at zero.  Policies are
    deterministic: the same policy over the same write sequence crashes at
    the same point with the same torn image. *)

val clear_faults : t -> unit

val clone : t -> t
(** Deep-copy the platter state (pages, checksums, counters) with no fault
    policy armed.  Crash sweeps clone the pre-transaction image once and
    replay the transaction against a fresh clone per crash point. *)

val stats : t -> stats

val reset_stats : t -> unit
(** Zero the counters (including the sequential-write head position); page
    contents are untouched. *)

val pp_stats : Format.formatter -> stats -> unit
