(** Simulated disk.

    A disk is an in-memory array of fixed-size page images with physical I/O
    counters.  The paper's §6 cost comparison between 2VNL and MV2PL is
    framed in terms of the number of I/Os readers and the maintenance
    transaction incur; these counters (surfaced through the buffer pool) are
    what the IO experiment reports. *)

type t

type stats = {
  reads : int;
  writes : int;
  seq_writes : int;
      (** Writes to the page following (or equal to) the previously written
          one — no seek.  Page-ordered batched apply turns most maintenance
          write-back into these. *)
  rand_writes : int;  (** Writes that moved the head: [writes - seq_writes]. *)
  allocations : int;
}

val create : ?page_size:int -> unit -> t
(** [create ()] makes an empty disk; [page_size] defaults to 4096 bytes. *)

val page_size : t -> int

val page_count : t -> int
(** Number of allocated pages. *)

val alloc : t -> int
(** Allocate a zeroed page; returns its page id. *)

val read : t -> int -> bytes
(** [read t pid] returns a copy of the page image and counts one physical
    read.  Raises [Invalid_argument] on unallocated ids. *)

val write : t -> int -> bytes -> unit
(** [write t pid img] replaces the page image (copied) and counts one
    physical write.  [img] must be exactly [page_size] bytes. *)

val stats : t -> stats

val reset_stats : t -> unit
(** Zero the counters (including the sequential-write head position); page
    contents are untouched. *)

val pp_stats : Format.formatter -> stats -> unit
