module Tuple = Vnl_relation.Tuple
module Schema = Vnl_relation.Schema
module Iset = Set.Make (Int)

type rid = { page : int; slot : int }

(* [pages] is an [Atomic] holding an immutable list: reader domains scan
   it while the maintenance domain appends freshly allocated pages.  The
   atomic store publishes the new head after the page is initialized; a
   reader that misses the newest page misses only tuples stamped with the
   still-uncommitted maintenanceVN — invisible to its session anyway.
   [free] and [count] stay plain: they are touched only by the single
   maintenance domain (all mutation goes through the heap latch). *)
type t = {
  pool : Buffer_pool.t;
  schema : Schema.t;
  layout : Page.layout;
  pages : int list Atomic.t;  (** All pages, newest first. *)
  mutable free : Iset.t;  (** Pages with at least one free slot. *)
  mutable count : int;
  latch : Latch.t;
}

let create pool schema =
  let layout =
    Page.layout ~page_size:(Disk.page_size (Buffer_pool.disk pool))
      ~record_width:(Schema.width schema)
  in
  { pool; schema; layout; pages = Atomic.make []; free = Iset.empty; count = 0;
    latch = Latch.create "heap" }

let schema t = t.schema

let record_width t = t.layout.Page.record_width

let tuples_per_page t = t.layout.Page.slots

let alloc_page t =
  let pid = Buffer_pool.alloc_page t.pool in
  Buffer_pool.with_page_mut t.pool pid (fun img -> Page.init t.layout img);
  Atomic.set t.pages (pid :: Atomic.get t.pages);
  t.free <- Iset.add pid t.free;
  pid

let rec free_slot_location t =
  match Iset.min_elt_opt t.free with
  | None ->
    let pid = alloc_page t in
    (pid, 0)
  | Some pid -> (
    match Buffer_pool.with_page t.pool pid (fun img -> Page.first_free_slot t.layout img) with
    | Some slot -> (pid, slot)
    | None ->
      (* Stale free-set entry: the page filled up. *)
      t.free <- Iset.remove pid t.free;
      free_slot_location t)

let insert t tuple =
  let pid, slot = free_slot_location t in
  let record = Tuple.encode t.schema tuple in
  Latch.with_latch t.latch (fun () ->
      Buffer_pool.with_page_mut t.pool pid (fun img ->
          Page.write_slot t.layout img slot record;
          if Page.first_free_slot t.layout img = None then t.free <- Iset.remove pid t.free));
  t.count <- t.count + 1;
  { page = pid; slot }

let get t rid =
  (* Optimistic: decoding one tuple is pure and bounds-checked, so a torn
     attempt is safely discarded and re-run by [read_page]. *)
  Buffer_pool.read_page t.pool rid.page (fun img ->
      if Page.slot_used t.layout img rid.slot then
        Some (Tuple.decode_from t.schema img (Page.record_offset t.layout rid.slot))
      else None)

let update_in_place t rid tuple =
  let record = Tuple.encode t.schema tuple in
  Latch.with_latch t.latch (fun () ->
      Buffer_pool.with_page_mut t.pool rid.page (fun img ->
          if not (Page.slot_used t.layout img rid.slot) then
            invalid_arg "Heap_file.update_in_place: free slot";
          Page.write_slot t.layout img rid.slot record))

let delete t rid =
  Latch.with_latch t.latch (fun () ->
      Buffer_pool.with_page_mut t.pool rid.page (fun img ->
          if not (Page.slot_used t.layout img rid.slot) then
            invalid_arg "Heap_file.delete: slot already free";
          Page.clear_slot t.layout img rid.slot));
  t.free <- Iset.add rid.page t.free;
  t.count <- t.count - 1

let delete_then_insert t rid tuple =
  delete t rid;
  insert t tuple

let scan t f =
  List.iter
    (fun pid ->
      (* Decode the page's live tuples up front (straight from the frame
         image, no record copies) so [f] may modify the page.  The decode
         pass is pure per page, which also makes it safe on the
         latch-free [read_page] path: an attempt that raced a mutator is
         discarded wholesale, and [f] only ever sees a validated batch. *)
      let live =
        Buffer_pool.read_page t.pool pid (fun img ->
            let acc = ref [] in
            Page.iter_used_offsets t.layout img (fun slot off ->
                acc := (slot, Tuple.decode_from t.schema img off) :: !acc);
            List.rev !acc)
      in
      List.iter (fun (slot, tuple) -> f { page = pid; slot } tuple) live)
    (List.rev (Atomic.get t.pages))

let iter_tuples t f =
  List.iter
    (fun pid ->
      (* Same decode-locally-then-iterate shape as [scan]: the page
         callback is pure, so [f]'s side effects run only on validated
         tuples. *)
      let live =
        Buffer_pool.read_page t.pool pid (fun img ->
            let acc = ref [] in
            Page.iter_used_offsets t.layout img (fun _slot off ->
                acc := Tuple.decode_from t.schema img off :: !acc);
            List.rev !acc)
      in
      List.iter f live)
    (List.rev (Atomic.get t.pages))

let iter_records t f =
  (* [f] sees the raw frame image, so its effects cannot be unwound after
     a failed validation: this stays on the latched path.  Readers that
     can accumulate purely should use [fold_records]. *)
  List.iter
    (fun pid ->
      Buffer_pool.with_page t.pool pid (fun img ->
          Page.iter_used_offsets t.layout img (fun _slot off -> f img off)))
    (List.rev (Atomic.get t.pages))

let fold_records t ~init ~f =
  List.fold_left
    (fun acc pid ->
      Buffer_pool.read_page t.pool pid (fun img ->
          let a = ref acc in
          Page.iter_used_offsets t.layout img (fun _slot off -> a := f !a img off);
          !a))
    init
    (List.rev (Atomic.get t.pages))

let fold_raw t ~init ~f =
  List.fold_left
    (fun acc pid ->
      Buffer_pool.read_page t.pool pid (fun img ->
          let a = ref acc in
          Page.iter_used_offsets t.layout img (fun slot off ->
              a := f !a ~page:pid ~slot img off);
          !a))
    init
    (List.rev (Atomic.get t.pages))

let fold t ~init ~f =
  let acc = ref init in
  scan t (fun rid tuple -> acc := f !acc rid tuple);
  !acc

exception Found of rid * Tuple.t

let find t pred =
  try
    scan t (fun rid tuple -> if pred tuple then raise (Found (rid, tuple)));
    None
  with Found (rid, tuple) -> Some (rid, tuple)

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc rid tuple -> (rid, tuple) :: acc))

let tuple_count t = t.count

let page_count t = List.length (Atomic.get t.pages)

let latch_acquisitions t = Latch.acquisitions t.latch

let rid_equal a b = a.page = b.page && a.slot = b.slot

let pp_rid ppf rid = Format.fprintf ppf "(%d,%d)" rid.page rid.slot

let buffer_pool t = t.pool

let pages t = List.rev (Atomic.get t.pages)

let attach pool schema ~pages =
  let t = create pool schema in
  Atomic.set t.pages (List.rev pages);
  List.iter
    (fun pid ->
      let used =
        Buffer_pool.with_page pool pid (fun img -> Page.used_count t.layout img)
      in
      t.count <- t.count + used;
      if used < t.layout.Page.slots then t.free <- Iset.add pid t.free)
    pages;
  t
