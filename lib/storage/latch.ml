(* A real reader-writer latch.  Until readers ran on their own domains the
   latch only checked discipline; now it is genuine mutual exclusion:
   shared (reader) holders coexist, an exclusive (writer) holder excludes
   everyone.  Writers take priority over newly arriving readers so a
   stream of page scans cannot starve the maintenance transaction. *)

type t = {
  name : string;
  mu : Mutex.t;
  cond : Condition.t;
  mutable writer : int;  (** Domain id of the exclusive holder, -1 if none. *)
  mutable readers : int;  (** Current shared holders. *)
  mutable writers_waiting : int;
  mutable acquisitions : int;
}

let create name =
  {
    name;
    mu = Mutex.create ();
    cond = Condition.create ();
    writer = -1;
    readers = 0;
    writers_waiting = 0;
    acquisitions = 0;
  }

module Sched = Vnl_util.Sched

(* Under the deterministic scheduler every task is a fiber of one domain:
   the holder identity must be the fiber, not the domain (two fibers are
   two lock holders), and waiting must hand control back through
   {!Sched.yield} — parking on the condvar would sleep the only domain
   that could ever release the latch.  Fiber ids are offset out of the
   domain-id range so the two namespaces cannot collide. *)
let fiber_offset = 0x4000_0000

let self () =
  if Sched.driving () then fiber_offset + Sched.fiber () else (Domain.self () :> int)

let acquire t =
  let me = self () in
  if Sched.driving () then begin
    if t.writer = me then
      failwith (Printf.sprintf "Latch %s: re-entrant acquire" t.name);
    t.writers_waiting <- t.writers_waiting + 1;
    while t.writer >= 0 || t.readers > 0 do
      Sched.yield ()
    done;
    t.writers_waiting <- t.writers_waiting - 1;
    t.writer <- me;
    t.acquisitions <- t.acquisitions + 1
  end
  else
    Mutex.protect t.mu (fun () ->
        (* Same-domain re-entry would self-deadlock on a real latch; keep the
           historical discipline error instead of hanging. *)
        if t.writer = me then
          failwith (Printf.sprintf "Latch %s: re-entrant acquire" t.name);
        t.writers_waiting <- t.writers_waiting + 1;
        while t.writer >= 0 || t.readers > 0 do
          Condition.wait t.cond t.mu
        done;
        t.writers_waiting <- t.writers_waiting - 1;
        t.writer <- me;
        t.acquisitions <- t.acquisitions + 1)

let release t =
  Mutex.protect t.mu (fun () ->
      if t.writer < 0 then
        failwith (Printf.sprintf "Latch %s: release while free" t.name);
      t.writer <- -1);
  Condition.broadcast t.cond

let acquire_shared t =
  let me = self () in
  if Sched.driving () then begin
    if t.writer = me then
      failwith (Printf.sprintf "Latch %s: shared acquire under own exclusive" t.name);
    while t.writer >= 0 || t.writers_waiting > 0 do
      Sched.yield ()
    done;
    t.readers <- t.readers + 1;
    t.acquisitions <- t.acquisitions + 1
  end
  else
    Mutex.protect t.mu (fun () ->
        if t.writer = me then
          failwith (Printf.sprintf "Latch %s: shared acquire under own exclusive" t.name);
        while t.writer >= 0 || t.writers_waiting > 0 do
          Condition.wait t.cond t.mu
        done;
        t.readers <- t.readers + 1;
        t.acquisitions <- t.acquisitions + 1)

(* Non-blocking shared acquire: fails only on an active exclusive holder.
   Waiting writers are not a reason to refuse — the caller never blocks,
   so it cannot starve them. *)
let try_shared t =
  Mutex.protect t.mu (fun () ->
      if t.writer >= 0 then false
      else begin
        t.readers <- t.readers + 1;
        t.acquisitions <- t.acquisitions + 1;
        true
      end)

let release_shared t =
  Mutex.protect t.mu (fun () ->
      if t.readers <= 0 then
        failwith (Printf.sprintf "Latch %s: shared release while free" t.name);
      t.readers <- t.readers - 1);
  Condition.broadcast t.cond

let with_latch t f =
  acquire t;
  match f () with
  | result ->
    release t;
    result
  | exception e ->
    release t;
    raise e

let with_shared t f =
  acquire_shared t;
  match f () with
  | result ->
    release_shared t;
    result
  | exception e ->
    release_shared t;
    raise e

let held t = t.writer >= 0

let acquisitions t = t.acquisitions
