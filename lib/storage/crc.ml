(* Page checksums.

   Two generations live here.  [crc32_ieee] is the original byte-at-a-time
   CRC-32 (IEEE 802.3, polynomial 0xedb88320) the disk used through PR 5:
   one table lookup per byte, with a serial dependency through the
   accumulator, which priced page writes at ~14x the raw copy
   (BENCH_recovery.json checksum_overhead).  [crc32c] replaces it:
   CRC-32C (Castagnoli, polynomial 0x82f63b78 — better error-detection
   properties and the polynomial hardware CRC instructions implement) with
   the slicing-by-8 technique: eight 256-entry tables let one iteration
   fold eight input bytes, turning the per-byte dependency chain into
   eight independent lookups the CPU pipelines.

   Table [k] maps a byte to its CRC contribution from [k] positions back,
   built by the recurrence [table.(k).(b) = t0 (table.(k-1).(b) land 0xff)
   lxor (table.(k-1).(b) lsr 8)] — shifting a byte's influence one more
   octet down the message.  All arithmetic is on nonnegative 32-bit values
   in OCaml ints, so [lsr] is the unsigned shift the algorithm needs. *)

let make_byte_table poly =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let ieee_table = lazy (make_byte_table 0xedb88320)

let crc32_ieee img =
  let table = Lazy.force ieee_table in
  let c = ref 0xffffffff in
  for i = 0 to Bytes.length img - 1 do
    (* The index is masked to [0, 255], so the table access needs no check. *)
    c :=
      Array.unsafe_get table ((!c lxor Char.code (Bytes.unsafe_get img i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let castagnoli_tables =
  lazy
    (let t0 = make_byte_table 0x82f63b78 in
     let tables = Array.make 8 t0 in
     for k = 1 to 7 do
       let prev = tables.(k - 1) in
       tables.(k) <-
         Array.init 256 (fun b ->
             let p = prev.(b) in
             t0.(p land 0xff) lxor (p lsr 8))
     done;
     tables)

(* The byte-at-a-time CRC-32C: the reference the slicing implementation is
   differentially tested against, and the tail loop of [crc32c] itself. *)
let crc32c_update_bytewise table c img ~pos ~len =
  let c = ref c in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (Bytes.unsafe_get img i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c

let crc32c_bytewise img =
  let tables = Lazy.force castagnoli_tables in
  crc32c_update_bytewise tables.(0) 0xffffffff img ~pos:0 ~len:(Bytes.length img)
  lxor 0xffffffff

let crc32c img =
  let tables = Lazy.force castagnoli_tables in
  let t0 = Array.unsafe_get tables 0
  and t1 = Array.unsafe_get tables 1
  and t2 = Array.unsafe_get tables 2
  and t3 = Array.unsafe_get tables 3
  and t4 = Array.unsafe_get tables 4
  and t5 = Array.unsafe_get tables 5
  and t6 = Array.unsafe_get tables 6
  and t7 = Array.unsafe_get tables 7 in
  let len = Bytes.length img in
  let c = ref 0xffffffff in
  let i = ref 0 in
  let byte k = Char.code (Bytes.unsafe_get img (!i + k)) in
  while !i + 8 <= len do
    (* Fold the accumulator into the first four bytes, then combine the
       eight per-position contributions: t7 covers the byte farthest from
       the end of the block, t0 the nearest. *)
    let x = !c in
    c :=
      Array.unsafe_get t7 ((x lxor byte 0) land 0xff)
      lxor Array.unsafe_get t6 (((x lsr 8) lxor byte 1) land 0xff)
      lxor Array.unsafe_get t5 (((x lsr 16) lxor byte 2) land 0xff)
      lxor Array.unsafe_get t4 (((x lsr 24) lxor byte 3) land 0xff)
      lxor Array.unsafe_get t3 (byte 4)
      lxor Array.unsafe_get t2 (byte 5)
      lxor Array.unsafe_get t1 (byte 6)
      lxor Array.unsafe_get t0 (byte 7);
    i := !i + 8
  done;
  crc32c_update_bytewise t0 !c img ~pos:!i ~len:(len - !i) lxor 0xffffffff
