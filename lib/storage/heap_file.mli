(** Heap files: unordered tuple storage with in-place update.

    A heap file stores fixed-width encoded tuples of one schema across
    slotted pages obtained from a buffer pool.  Physical updates overwrite
    the record in its slot ({!update_in_place}), satisfying the paper's §4
    requirement that "the new state of the tuple replaces the old tuple on
    the page"; the delete-then-insert fallback the paper warns about is
    provided for completeness and ablation. *)

type t

type rid = { page : int; slot : int }
(** Record identifier: page id and slot number. *)

val create : Buffer_pool.t -> Vnl_relation.Schema.t -> t

val schema : t -> Vnl_relation.Schema.t

val record_width : t -> int
(** Physical bytes per tuple. *)

val tuples_per_page : t -> int

val insert : t -> Vnl_relation.Tuple.t -> rid
(** Store a tuple in the first free slot, allocating a page if needed. *)

val get : t -> rid -> Vnl_relation.Tuple.t option
(** [None] if the slot is free (e.g. after {!delete}). *)

val update_in_place : t -> rid -> Vnl_relation.Tuple.t -> unit
(** Overwrite the record under a short-duration latch.  Raises
    [Invalid_argument] if the slot is free. *)

val delete : t -> rid -> unit
(** Physically remove the tuple.  Raises [Invalid_argument] if the slot is
    already free. *)

val delete_then_insert : t -> rid -> Vnl_relation.Tuple.t -> rid
(** The update strategy for engines without in-place update: physically
    delete and re-insert, possibly at a different rid. *)

val scan : t -> (rid -> Vnl_relation.Tuple.t -> unit) -> unit
(** Visit every live tuple in page/slot order.  Each page is decoded into
    a snapshot first (latch-free via {!Buffer_pool.read_page}), so [f] may
    modify this file. *)

val iter_tuples : t -> (Vnl_relation.Tuple.t -> unit) -> unit
(** Like {!scan} but without rids.  Pages are read latch-free and decoded
    into a per-page batch before [f] runs, so [f] only ever observes
    validated tuples. *)

val iter_records : t -> (bytes -> int -> unit) -> unit
(** Visit every live record as [(page image, byte offset)] without
    decoding, in page/slot order.  [f] runs under the page's shared latch
    (the pessimistic path — its effects cannot be unwound on a failed
    optimistic validation): it must be read-only, must not touch the
    storage layer, and the image bytes are only meaningful until [f]
    returns.  Latch-free readers that can accumulate purely should use
    {!fold_records}. *)

val fold_records : t -> init:'a -> f:('a -> bytes -> int -> 'a) -> 'a
(** Fold [f] over every live record as [(page image, byte offset)] in
    page/slot order, latch-free: each page's sub-fold runs under
    {!Buffer_pool.read_page}, so [f] must be pure (it may be re-run
    against a torn image and its results discarded) and must not retain
    the image.  The reader hot path. *)

val fold_raw :
  t -> init:'a -> f:('a -> page:int -> slot:int -> bytes -> int -> 'a) -> 'a
(** {!fold_records} with the record's page id and slot, for callers that
    need to address records (e.g. GC building a victim list) without the
    per-record allocation of a {!rid}.  Same purity contract as
    {!fold_records}. *)

val fold : t -> init:'a -> f:('a -> rid -> Vnl_relation.Tuple.t -> 'a) -> 'a

val find : t -> (Vnl_relation.Tuple.t -> bool) -> (rid * Vnl_relation.Tuple.t) option
(** First live tuple satisfying the predicate, in scan order. *)

val to_list : t -> (rid * Vnl_relation.Tuple.t) list

val tuple_count : t -> int

val page_count : t -> int

val latch_acquisitions : t -> int
(** Tuple-modification latch traffic, for the latching report. *)

val rid_equal : rid -> rid -> bool

val pp_rid : Format.formatter -> rid -> unit

val buffer_pool : t -> Buffer_pool.t
(** The pool this file performs its I/O through. *)

val pages : t -> int list
(** Page ids in scan (allocation) order; what a catalog must persist to
    re-attach the file after a restart. *)

val attach : Buffer_pool.t -> Vnl_relation.Schema.t -> pages:int list -> t
(** Re-open a heap file over existing pages (in scan order): occupancy and
    free-space tracking are rebuilt by scanning the pages.  The page images
    must have been written by a heap file of the same schema. *)
