module Obs = Vnl_obs.Obs

(* Aggregated across all lock-manager instances, gated on [Obs.enabled];
   the per-instance [acquisitions] field stays unconditional. *)
let m_acquisitions = Obs.Registry.counter "lock.acquisitions"

let m_waits = Obs.Registry.counter "lock.waits"

let m_deadlocks = Obs.Registry.counter "lock.deadlocks"

type mode = S | X

type request = { txn : int; mode : mode }

type entry = {
  mutable holders : request list;  (** Compatible set currently granted. *)
  mutable queue : request list;  (** FIFO, head is next candidate. *)
}

type t = {
  items : (int, entry) Hashtbl.t;
  waiting_on : (int, int) Hashtbl.t;  (** txn -> item it waits on. *)
  mutable acquisitions : int;
}

let create () = { items = Hashtbl.create 64; waiting_on = Hashtbl.create 16; acquisitions = 0 }

let entry t item =
  match Hashtbl.find_opt t.items item with
  | Some e -> e
  | None ->
    let e = { holders = []; queue = [] } in
    Hashtbl.add t.items item e;
    e

let compatible a b = match (a, b) with S, S -> true | S, X | X, S | X, X -> false

let mode_leq a b = match (a, b) with S, S | S, X | X, X -> true | X, S -> false

let holder_mode e txn =
  List.fold_left
    (fun acc r ->
      if r.txn <> txn then acc
      else match acc with Some X -> Some X | _ -> Some r.mode)
    None e.holders

let grantable e req =
  List.for_all (fun h -> h.txn = req.txn || compatible h.mode req.mode) e.holders

let acquire t ~txn ~item mode =
  let e = entry t item in
  match holder_mode e txn with
  | Some held when mode_leq mode held -> `Granted
  | held -> (
    let req = { txn; mode } in
    let upgrade_ok =
      match held with
      | Some S -> List.for_all (fun h -> h.txn = txn) e.holders
      | Some X -> true
      | None -> false
    in
    if (upgrade_ok && mode = X) || (held = None && e.queue = [] && grantable e req) then begin
      e.holders <- req :: List.filter (fun h -> h.txn <> txn) e.holders;
      t.acquisitions <- t.acquisitions + 1;
      Obs.Counter.record m_acquisitions 1;
      `Granted
    end
    else begin
      e.queue <- e.queue @ [ req ];
      Hashtbl.replace t.waiting_on txn item;
      Obs.Counter.record m_waits 1;
      `Blocked
    end)

(* Grant queued requests in FIFO order while compatible. *)
let promote t item e =
  let granted = ref [] in
  let rec loop () =
    match e.queue with
    | [] -> ()
    | req :: rest ->
      if grantable e req then begin
        e.queue <- rest;
        e.holders <- req :: List.filter (fun h -> h.txn <> req.txn) e.holders;
        t.acquisitions <- t.acquisitions + 1;
        Obs.Counter.record m_acquisitions 1;
        Hashtbl.remove t.waiting_on req.txn;
        granted := req.txn :: !granted;
        loop ()
      end
  in
  loop ();
  ignore item;
  List.rev !granted

let release_all t ~txn =
  Hashtbl.remove t.waiting_on txn;
  let newly = ref [] in
  Hashtbl.iter
    (fun item e ->
      let had = List.exists (fun h -> h.txn = txn) e.holders in
      e.holders <- List.filter (fun h -> h.txn <> txn) e.holders;
      e.queue <- List.filter (fun r -> r.txn <> txn) e.queue;
      if had || e.holders = [] then newly := promote t item e @ !newly)
    t.items;
  List.sort_uniq compare !newly

let holds t ~txn ~item =
  match Hashtbl.find_opt t.items item with None -> None | Some e -> holder_mode e txn

let is_waiting t ~txn = Hashtbl.mem t.waiting_on txn

let blocked_on t ~txn = Hashtbl.find_opt t.waiting_on txn

(* Waits-for edges: a queued request waits for every incompatible holder and
   every incompatible request queued ahead of it. *)
let wait_edges t =
  Hashtbl.fold
    (fun _item e acc ->
      let rec over_queue ahead acc = function
        | [] -> acc
        | req :: rest ->
          let holder_targets =
            List.filter_map
              (fun h ->
                if h.txn <> req.txn && not (compatible h.mode req.mode) then Some (req.txn, h.txn)
                else None)
              e.holders
          in
          let ahead_targets =
            List.filter_map
              (fun a ->
                if a.txn <> req.txn && not (compatible a.mode req.mode) then Some (req.txn, a.txn)
                else None)
              ahead
          in
          over_queue (ahead @ [ req ]) (holder_targets @ ahead_targets @ acc) rest
      in
      over_queue [] acc e.queue)
    t.items []

let find_deadlock t =
  let edges = wait_edges t in
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt adj a) in
      Hashtbl.replace adj a (b :: cur))
    edges;
  (* DFS with a path stack to recover the cycle. *)
  let visited = Hashtbl.create 16 in
  let result = ref None in
  let rec dfs path node =
    if !result <> None then ()
    else if List.mem node path then begin
      let rec cut = function
        | [] -> []
        | x :: rest -> if x = node then [ x ] else x :: cut rest
      in
      result := Some (List.rev (cut path))
    end
    else if not (Hashtbl.mem visited node) then begin
      Hashtbl.add visited node ();
      List.iter (dfs (node :: path)) (Option.value ~default:[] (Hashtbl.find_opt adj node));
      (* Allow re-exploration from other roots only via the path check. *)
      ()
    end
  in
  Hashtbl.iter (fun node _ -> if !result = None then dfs [] node) adj;
  if !result <> None then Obs.Counter.record m_deadlocks 1;
  !result

let lock_count t = Hashtbl.fold (fun _ e acc -> acc + List.length e.holders) t.items 0

let acquisitions t = t.acquisitions
