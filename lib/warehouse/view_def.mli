(** Summary-table (materialized view) definitions.

    The warehouse relations of §2 are summary tables: select-from-where-
    group-by aggregate views over base data at the sources.  A definition
    names the source schema, the group-by attributes (which become the
    warehouse relation's unique key, never updated — the property §3.1's
    storage argument and §4.3's indexing argument rest on), and the
    aggregate columns (the only updatable attributes). *)

type agg =
  | Sum of string  (** SUM of a numeric source attribute. *)
  | Count  (** COUNT of contributing source rows. *)

type t

val make :
  name:string ->
  source:Vnl_relation.Schema.t ->
  group_by:string list ->
  aggregates:(string * agg) list ->
  ?with_count:bool ->
  unit ->
  t
(** Define a view.  [with_count] (default true) appends a hidden
    [row_count] aggregate so deletions can be maintained incrementally (a
    group vanishes when its support drops to zero); the paper's DailySales
    example omits it, which is fine for insert/update-only workloads.
    Raises [Invalid_argument] on unknown attributes, non-numeric SUM
    targets, or an empty group-by list. *)

val name : t -> string

val instance_name : string -> shard:int -> string
(** The stamped name of a template's per-shard instance
    ([<template>__s<shard>]); raises [Invalid_argument] when [shard < 0]. *)

val instantiate : t -> shard:int -> t
(** Stamp a per-shard instance of a view template: identical definition
    (source schema, group-by, aggregates) under the shard's
    {!instance_name}.  One definition authored once becomes one summary
    table per shard; the instances' union is the logical view. *)

val source : t -> Vnl_relation.Schema.t

val group_by : t -> string list

val aggregates : t -> (string * agg) list
(** Including the hidden [row_count] when present. *)

val has_count : t -> bool

val target_schema : t -> Vnl_relation.Schema.t
(** The warehouse relation: group-by attributes (key) then aggregate
    columns (updatable). *)

val group_key : t -> Vnl_relation.Tuple.t -> Vnl_relation.Value.t list
(** Key values of the group a source row belongs to. *)

val contribution : t -> Vnl_relation.Tuple.t -> Vnl_relation.Value.t list
(** Per-aggregate contribution of one source row (the SUM attribute's
    value, or 1 for COUNT), in [aggregates] order. *)

val zero_contribution : t -> Vnl_relation.Value.t list
(** Identity element per aggregate (0). *)
