(** Source-side change records and their aggregation into per-group net
    deltas.

    Sources queue changes between warehouse refreshes (§1); a maintenance
    transaction propagates the whole batch.  [net_group_deltas] folds a
    batch into one net contribution per affected group — the standard
    incremental-view-maintenance move that also yields the {e net effect}
    semantics §3.3 requires. *)

type change =
  | Insert of Vnl_relation.Tuple.t
  | Delete of Vnl_relation.Tuple.t
  | Update of Vnl_relation.Tuple.t * Vnl_relation.Tuple.t  (** old, new. *)

type group_delta = {
  key : Vnl_relation.Value.t list;  (** Group-by values. *)
  agg_delta : Vnl_relation.Value.t list;  (** Net change per aggregate. *)
  count_delta : int;  (** Net change in contributing rows. *)
}

val net_group_deltas : View_def.t -> change list -> group_delta list
(** Net per-group deltas of a batch, in first-touched order.  Groups whose
    net delta is entirely zero (including count) are dropped.  A group
    whose [count_delta] is 0 had its rows cancel exactly, so float sums
    within a relative tolerance of the accumulated magnitude (e.g. the
    [(0.1 +. 0.2) -. 0.3] cancellation residue) are cleaned to zero first
    — without this the phantom delta survives netting and smears epsilon
    onto groups the batch never logically changed. *)

val pp_change : Format.formatter -> change -> unit

val change_count : change list -> int * int * int
(** (inserts, deletes, updates) in the batch. *)
