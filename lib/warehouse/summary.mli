(** Incremental maintenance of summary tables through a 2VNL maintenance
    transaction (§1-§2 context: propagate a batch of source changes to the
    warehouse views).

    For each net group delta: an absent group is inserted; a present group
    has its aggregates adjusted by the delta; a group whose support count
    drops to zero is logically deleted.  All tuple operations flow through
    the 2VNL decision tables, so readers stay consistent throughout. *)

type outcome = {
  groups_inserted : int;
  groups_updated : int;
  groups_deleted : int;
}

val apply_batch :
  Vnl_core.Twovnl.Txn.m -> View_def.t -> Delta.change list -> outcome
(** Fold the batch into net group deltas and apply them to the view's
    warehouse table (which must be registered under [View_def.name]).
    Raises [Invalid_argument] if a group with no support count would need
    deletion inference, or if a delta would drive an aggregate of an absent
    group (inconsistent source batch). *)

val plan_batch :
  Vnl_core.Twovnl.t ->
  View_def.t ->
  Delta.change list ->
  Vnl_core.Batch.op list
  * (Vnl_relation.Value.t list ->
    (Vnl_storage.Heap_file.rid * Vnl_relation.Tuple.t) option)
  * outcome
(** Classify the batch's net group deltas against the view table's current
    state {e without} applying anything: the same decisions as
    {!apply_batch} (absent group → insert, present → aggregate adjust,
    support to zero → delete), with the raw lookups kept.  Returns the
    logical operation list for the pipelined refresh driver, a [resolve]
    function replaying the pass's raw lookups (for {!Vnl_core.Batch.stage},
    so the stripes do not resolve the same keys a second time), and the
    would-be outcome.  Must be called outside any maintenance mutation (it reads
    the pre-refresh state). *)

val merge_union : View_def.t -> Vnl_relation.Tuple.t list list -> Vnl_relation.Tuple.t list
(** Merge per-shard instances of one view template into the logical union
    view: tuples sharing a group key have their aggregates added
    ([Value.add] per column), others pass through; result in first-seen
    order across the inputs.  SUM/COUNT distribute over the shards'
    partition of the base rows, so the merge of consistent per-shard
    snapshots equals the view over the union of the bases. *)

val pp_outcome : Format.formatter -> outcome -> unit
