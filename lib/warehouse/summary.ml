module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Twovnl = Vnl_core.Twovnl
module Batch = Vnl_core.Batch

type outcome = {
  groups_inserted : int;
  groups_updated : int;
  groups_deleted : int;
}

(* Each net delta is classified against the group's current state (one keyed
   read), then the whole refresh goes to storage as a single {!Batch.apply}
   call: one sorted index pass and page-ordered writes, instead of a probe
   and a random write per group.  Net deltas carry one entry per key, so
   reading before building the batch is equivalent to reading as we go. *)
let apply_batch txn view changes =
  let table = View_def.name view in
  let target = View_def.target_schema view in
  let agg_names = List.map fst (View_def.aggregates view) in
  let key_arity = List.length (View_def.group_by view) in
  let inserted = ref 0 and updated = ref 0 and deleted = ref 0 in
  let deltas =
    Vnl_obs.Obs.with_span "summary.net_deltas" (fun () -> Delta.net_group_deltas view changes)
  in
  let ops =
    Vnl_obs.Obs.with_span "summary.classify" @@ fun () ->
    List.filter_map
      (fun { Delta.key; agg_delta; count_delta } ->
        match Twovnl.Txn.read_current txn ~table ~key with
        | None ->
          if count_delta < 0 then
            invalid_arg "Summary.apply_batch: negative delta for absent group";
          if count_delta > 0 then begin
            incr inserted;
            Some (Batch.Insert (Tuple.make target (key @ agg_delta)))
          end
          else None
        | Some current ->
          let old_aggs =
            List.mapi (fun i _ -> Tuple.get current (key_arity + i)) agg_names
          in
          let new_aggs = List.map2 Value.add old_aggs agg_delta in
          let support =
            if View_def.has_count view then
              match List.rev new_aggs with
              | Value.Int c :: _ -> Some c
              | _ -> invalid_arg "Summary.apply_batch: corrupt row_count"
            else None
          in
          (match support with
          | Some c when c <= 0 ->
            incr deleted;
            Some (Batch.Delete key)
          | Some _ | None ->
            incr updated;
            let assignments = List.mapi (fun i v -> (key_arity + i, v)) new_aggs in
            Some (Batch.Update (key, assignments))))
      deltas
  in
  ignore (Twovnl.Txn.apply_batch txn ~table ops);
  { groups_inserted = !inserted; groups_updated = !updated; groups_deleted = !deleted }

(* Classification without a transaction, for the pipelined refresh: the
   same absent/adjust/drop-support decisions as [apply_batch], against raw
   index probes ({!Vnl_query.Table.find_by_key}) whose results are kept
   and replayed into the stripes' {!Batch.stage} — the serial path resolves
   every key twice (once to classify, once inside [Batch.apply]); here the
   round resolves each distinct key of the whole window once.  Must run
   against the pre-round table state (before any stripe applies), which is
   exactly when the pipeline driver needs the operation lists anyway. *)
let plan_batch vnl view changes =
  let module Table = Vnl_query.Table in
  let module Schema_ext = Vnl_core.Schema_ext in
  let module Maintenance = Vnl_core.Maintenance in
  let h = Twovnl.handle_exn vnl (View_def.name view) in
  let ext = Twovnl.ext h and table = Twovnl.table h in
  let target = View_def.target_schema view in
  let agg_names = List.map fst (View_def.aggregates view) in
  let key_arity = List.length (View_def.group_by view) in
  let inserted = ref 0 and updated = ref 0 and deleted = ref 0 in
  let deltas =
    Vnl_obs.Obs.with_span "summary.net_deltas" (fun () -> Delta.net_group_deltas view changes)
  in
  let found =
    Vnl_obs.Obs.with_span "summary.resolve" (fun () ->
        Array.of_list (List.map (fun d -> Table.find_by_key table d.Delta.key) deltas))
  in
  let ops =
    Vnl_obs.Obs.with_span "summary.classify" @@ fun () ->
    List.filter_map
      (fun (i, { Delta.key; agg_delta; count_delta }) ->
        let current =
          match found.(i) with
          | Some (_, tuple) when Maintenance.is_logically_live ext tuple ->
            (* Base schema, not the view template's target: an evolved
               view's base is wider (added columns at the end), and the
               positional aggregate reads below address the shared
               prefix either way. *)
            Some (Tuple.make (Schema_ext.base ext) (Schema_ext.current_values ext tuple))
          | Some _ | None -> None
        in
        match current with
        | None ->
          if count_delta < 0 then
            invalid_arg "Summary.plan_batch: negative delta for absent group";
          if count_delta > 0 then begin
            incr inserted;
            Some (Batch.Insert (Tuple.make target (key @ agg_delta)))
          end
          else None
        | Some current ->
          let old_aggs =
            List.mapi (fun i _ -> Tuple.get current (key_arity + i)) agg_names
          in
          let new_aggs = List.map2 Value.add old_aggs agg_delta in
          let support =
            if View_def.has_count view then
              match List.rev new_aggs with
              | Value.Int c :: _ -> Some c
              | _ -> invalid_arg "Summary.plan_batch: corrupt row_count"
            else None
          in
          (match support with
          | Some c when c <= 0 ->
            incr deleted;
            Some (Batch.Delete key)
          | Some _ | None ->
            incr updated;
            let assignments = List.mapi (fun i v -> (key_arity + i, v)) new_aggs in
            Some (Batch.Update (key, assignments))))
      (List.mapi (fun i d -> (i, d)) deltas)
  in
  let resolve =
    Batch.key_table_of_pairs (List.mapi (fun i d -> (d.Delta.key, found.(i))) deltas)
  in
  (ops, resolve, { groups_inserted = !inserted; groups_updated = !updated; groups_deleted = !deleted })

(* Union-view merge for the sharded warehouse: each shard materializes its
   own instance of the template, and the logical view is the key-merge of
   the per-shard visible relations.  SUM and COUNT distribute over a
   disjoint partition of the base rows, so addition is exact; when a group
   key does appear on several shards (a routing function keyed on
   something coarser than the group-by), adding the per-shard aggregates
   is still the right union semantics. *)
let merge_union view relations =
  let target = View_def.target_schema view in
  let key_arity = List.length (View_def.group_by view) in
  let agg_arity = List.length (View_def.aggregates view) in
  let acc : (Value.t list, Value.t array) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun relation ->
      List.iter
        (fun tuple ->
          let key = List.init key_arity (Tuple.get tuple) in
          let aggs = Array.init agg_arity (fun i -> Tuple.get tuple (key_arity + i)) in
          match Hashtbl.find_opt acc key with
          | None ->
            Hashtbl.add acc key aggs;
            order := key :: !order
          | Some prev -> Array.iteri (fun i v -> prev.(i) <- Value.add prev.(i) v) aggs)
        relation)
    relations;
  List.rev_map
    (fun key -> Tuple.make target (key @ Array.to_list (Hashtbl.find acc key)))
    !order

let pp_outcome ppf o =
  Format.fprintf ppf "inserted=%d updated=%d deleted=%d" o.groups_inserted o.groups_updated
    o.groups_deleted
