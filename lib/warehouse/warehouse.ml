module Twovnl = Vnl_core.Twovnl
module Database = Vnl_query.Database

type entry = {
  def : View_def.t;
  source : Source.t;
  mutable queue : Delta.change list;  (** Reverse order. *)
}

type t = {
  vnl : Twovnl.t;
  db : Database.t;
  entries : (string * entry) list;
}

let create ?n ?page_size ?pool_capacity defs =
  let db = Database.create ?page_size ?pool_capacity () in
  let vnl = Twovnl.init db in
  let entries =
    List.map
      (fun def ->
        ignore
          (Twovnl.register_table vnl ?n ~name:(View_def.name def)
             (View_def.target_schema def));
        (View_def.name def, { def; source = Source.create (View_def.source def); queue = [] }))
      defs
  in
  { vnl; db; entries }

let vnl t = t.vnl

let database t = t.db

let entry t name =
  match List.assoc_opt name t.entries with
  | Some e -> e
  | None -> failwith (Printf.sprintf "Warehouse: unknown view %S" name)

let view t name = (entry t name).def

let views t = List.map (fun (_, e) -> e.def) t.entries

let source t name = (entry t name).source

let queue_changes t ~view changes =
  let e = entry t view in
  Source.apply e.source changes;
  e.queue <- List.rev_append changes e.queue

let pending t ~view = List.length (entry t view).queue

let take_pending t ~view =
  let e = entry t view in
  let batch = List.rev e.queue in
  e.queue <- [];
  batch

(* One maintenance transaction under the crash-safe write ordering of
   {!Vnl_core.Recovery.run_maintenance} (flag durable -> apply -> flush ->
   catalog-write -> publish): a crash at any physical write during a
   refresh leaves a disk image {!Vnl_core.Recovery.reopen} repairs to
   either the pre- or post-refresh state. *)
let refresh_with t extra =
  Vnl_obs.Obs.with_span "warehouse.refresh" @@ fun () ->
  Vnl_core.Recovery.run_maintenance t.db t.vnl (fun txn ->
      let outcomes =
        List.map
          (fun (_, e) ->
            let batch = List.rev e.queue in
            e.queue <- [];
            Summary.apply_batch txn e.def batch)
          t.entries
      in
      extra txn;
      outcomes)

let refresh t = refresh_with t (fun _ -> ())

(* Pipelined refresh: classify every view's queued batch in one batched
   pass ({!Summary.plan_batch}), partition the operation lists, and drive
   the round through {!Vnl_core.Pipeline} — k worker stripes, one VN each,
   published in order under the same flag → data → catalog → publish
   ladder as the serial path, held per stripe. *)
let refresh_pipelined ?(workers = 2) t =
  Vnl_obs.Obs.with_span "warehouse.refresh_pipelined" @@ fun () ->
  let planned =
    List.map
      (fun (name, e) ->
        let batch = List.rev e.queue in
        e.queue <- [];
        let ops, resolve, outcome = Summary.plan_batch t.vnl e.def batch in
        (name, ops, resolve, outcome))
      t.entries
  in
  let plan =
    Vnl_core.Pipeline.plan t.vnl ~workers ~prenetted:true
      ~resolvers:(List.map (fun (n, _, r, _) -> (n, r)) planned)
      (List.map (fun (n, ops, _, _) -> (n, ops)) planned)
  in
  ignore (Vnl_core.Pipeline.run plan);
  List.map (fun (_, _, _, o) -> o) planned

let begin_session t = Twovnl.Session.begin_ t.vnl

let end_session t s = Twovnl.Session.end_ t.vnl s

let query ?params t s sql = Twovnl.Session.query ?params t.vnl s sql

let read_view t s name = Twovnl.Session.read_table t.vnl s name

let expected_view t name =
  let e = entry t name in
  Source.compute_view e.source e.def

let collect_garbage t = Twovnl.collect_garbage t.vnl
