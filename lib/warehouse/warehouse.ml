module Twovnl = Vnl_core.Twovnl
module Database = Vnl_query.Database
module Pipeline = Vnl_core.Pipeline
module Batch = Vnl_core.Batch
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value

type entry = {
  def : View_def.t;
  source : Source.t;
  mutable queue : Delta.change list;  (** Reverse order. *)
  mutable queue_len : int;
      (** Maintained alongside [queue] so {!pending} is O(1) — the sharded
          facade polls every shard's every view per drain decision. *)
  mutable added : (Schema.attribute * Value.t) list;
      (** Columns appended by {!evolve} (oldest first) with their defaults;
          the view template in [def] stays at its original arity and the
          maintenance paths pad, so ground-truth recomputation appends the
          defaults the same way. *)
}

type t = {
  vnl : Twovnl.t;
  db : Database.t;
  entries : (string, entry) Hashtbl.t;
  mutable order : string list;  (** View names in registration order. *)
}

let fresh_entry def =
  { def; source = Source.create (View_def.source def); queue = []; queue_len = 0; added = [] }

let create ?n ?page_size ?pool_capacity defs =
  let db = Database.create ?page_size ?pool_capacity () in
  let vnl = Twovnl.init db in
  let entries = Hashtbl.create (max 8 (List.length defs)) in
  List.iter
    (fun def ->
      ignore
        (Twovnl.register_table vnl ?n ~name:(View_def.name def)
           (View_def.target_schema def));
      Hashtbl.replace entries (View_def.name def) (fresh_entry def))
    defs;
  { vnl; db; entries; order = List.map View_def.name defs }

let vnl t = t.vnl

let database t = t.db

let entry t name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None -> failwith (Printf.sprintf "Warehouse: unknown view %S" name)

let view t name = (entry t name).def

let views t = List.map (fun name -> (entry t name).def) t.order

let source t name = (entry t name).source

let queue_changes t ~view changes =
  let e = entry t view in
  Source.apply e.source changes;
  e.queue <- List.rev_append changes e.queue;
  e.queue_len <- e.queue_len + List.length changes

let pending t ~view = (entry t view).queue_len

let peek_pending t ~view = List.rev (entry t view).queue

let take_pending t ~view =
  let e = entry t view in
  let batch = List.rev e.queue in
  e.queue <- [];
  e.queue_len <- 0;
  batch

(* One maintenance transaction under the crash-safe write ordering of
   {!Vnl_core.Recovery.run_maintenance} (flag durable -> apply -> flush ->
   catalog-write -> publish): a crash at any physical write during a
   refresh leaves a disk image {!Vnl_core.Recovery.reopen} repairs to
   either the pre- or post-refresh state. *)
let refresh_with t extra =
  Vnl_obs.Obs.with_span "warehouse.refresh" @@ fun () ->
  Vnl_core.Recovery.run_maintenance t.db t.vnl (fun txn ->
      let outcomes =
        List.map
          (fun name ->
            let e = entry t name in
            let batch = List.rev e.queue in
            e.queue <- [];
            e.queue_len <- 0;
            Summary.apply_batch txn e.def batch)
          t.order
      in
      extra txn;
      outcomes)

let refresh t = refresh_with t (fun _ -> ())

(* The group keys a batch operation targets are exactly the view-table key
   values — for net deltas, one operation per group. *)
let op_group_key target = function
  | Batch.Insert tuple -> Tuple.key_of target tuple
  | Batch.Update (key, _) | Batch.Delete key -> key

(* The source changes a failed round did NOT durably propagate, in their
   original arrival order.  [published] holds the group keys of every
   operation in the round's published stripe prefix: those groups'
   net deltas committed, everything else was reverted by the abort.  A
   change whose groups all published is dropped; one whose groups all
   missed is requeued whole; an update straddling the boundary (its old
   and new rows in different groups, one published) is requeued as only
   its unpublished half — re-running the published half would double-apply
   it. *)
let unpublished_suffix def published batch =
  let mem row = Hashtbl.mem published (View_def.group_key def row) in
  List.filter_map
    (fun change ->
      match change with
      | Delta.Insert row | Delta.Delete row -> if mem row then None else Some change
      | Delta.Update (old_row, new_row) -> (
        match (mem old_row, mem new_row) with
        | true, true -> None
        | false, false -> Some change
        | true, false -> Some (Delta.Insert new_row)
        | false, true -> Some (Delta.Delete old_row)))
    batch

(* Put a failed round's unapplied changes back at the FRONT of each queue
   (the queue list is newest-first, so the front of the logical queue is
   the tail of the list), preserving their original order ahead of
   anything queued since the drain. *)
let requeue_unpublished planned published_ops =
  List.iter
    (fun (name, e, batch, _, _) ->
      let published = Hashtbl.create 64 in
      (match List.assoc_opt name published_ops with
      | None -> ()
      | Some ops ->
        let target = View_def.target_schema e.def in
        List.iter (fun op -> Hashtbl.replace published (op_group_key target op) ()) ops);
      let residual = unpublished_suffix e.def published batch in
      e.queue <- e.queue @ List.rev residual;
      e.queue_len <- e.queue_len + List.length residual)
    planned

(* Pipelined refresh: classify every view's queued batch in one batched
   pass ({!Summary.plan_batch}), partition the operation lists, and drive
   the round through {!Vnl_core.Pipeline} — k worker stripes, one VN each,
   published in order under the same flag → data → catalog → publish
   ladder as the serial path, held per stripe.

   Failure handling is the part the serial path gets for free from its
   single transaction: a worker failure aborts the round back to the
   published stripe prefix, but the queues were already drained and the
   simulated sources already mutated.  Before re-raising, the unpublished
   suffix's source changes are re-enqueued at the front of each affected
   view's queue (original order preserved), so a follow-up refresh
   converges to the expected view — no batch is ever lost. *)
let refresh_pipelined ?(workers = 2) ?on_phase ?(run = Pipeline.run) t =
  Vnl_obs.Obs.with_span "warehouse.refresh_pipelined" @@ fun () ->
  let planned =
    List.map
      (fun name ->
        let e = entry t name in
        let batch = take_pending t ~view:name in
        let ops, resolve, _ = Summary.plan_batch t.vnl e.def batch in
        (name, e, batch, ops, resolve))
      t.order
  in
  let plan =
    match
      Pipeline.plan t.vnl ?on_phase ~workers ~prenetted:true
        ~resolvers:(List.map (fun (n, _, _, _, r) -> (n, r)) planned)
        (List.map (fun (n, _, _, ops, _) -> (n, ops)) planned)
    with
    | plan -> plan
    | exception e ->
      (* Planning failed before any stripe ran: nothing published. *)
      requeue_unpublished planned [];
      raise e
  in
  let report =
    match run plan with
    | report -> report
    | exception e ->
      (* The published stripe prefix committed; collect its operations per
         view and requeue everything the reverted suffix carried. *)
      let stripes = Pipeline.stripe_ops plan in
      let prefix = List.filteri (fun i _ -> i < Pipeline.published plan) stripes in
      let published_ops =
        List.concat_map (fun (_, per_table) -> per_table) prefix
        |> List.fold_left
             (fun acc (name, ops) ->
               match List.assoc_opt name acc with
               | Some prev -> (name, prev @ ops) :: List.remove_assoc name acc
               | None -> (name, ops) :: acc)
             []
      in
      requeue_unpublished planned published_ops;
      raise e
  in
  (* Report what actually landed, not what planning predicted: the per-view
     physical action counts of the staged stripes (prenetted rounds apply
     one physical action per classified group, so the counts line up with
     the serial path's classification totals). *)
  List.map
    (fun name ->
      match List.assoc_opt name report.Pipeline.outcomes with
      | Some (o : Batch.outcome) ->
        {
          Summary.groups_inserted = o.Batch.physical_inserts;
          groups_updated = o.Batch.physical_updates;
          groups_deleted = o.Batch.physical_deletes;
        }
      | None -> { Summary.groups_inserted = 0; groups_updated = 0; groups_deleted = 0 })
    t.order

(* ---------- online schema evolution ---------- *)

type evolution =
  | Add_column of {
      view : string;
      attr : Schema.attribute;
      default : Vnl_relation.Value.t;
    }
  | Add_view of { def : View_def.t; n : int option }
  | Add_index of { view : string; index : string; attrs : string list }

(* One maintenance transaction carrying only DDL, under the same
   flag → data → catalog → publish ladder as a refresh: a crash at any
   write reopens to exactly the pre- or post-evolution catalog.  The
   warehouse-level registry (entries, order, added-column lists) is
   updated only after the transaction returns, i.e. after the publish —
   on any failure the in-memory warehouse still matches the restored
   on-disk catalog. *)
let evolve t evolutions =
  Vnl_obs.Obs.with_span "warehouse.evolve" @@ fun () ->
  ignore
    (Vnl_core.Recovery.run_maintenance t.db t.vnl (fun txn ->
         List.iter
           (function
             | Add_column { view; attr; default } ->
               ignore (entry t view);
               Twovnl.Txn.add_column txn ~table:view attr ~default
             | Add_view { def; n } ->
               Twovnl.Txn.add_table txn ?n ~name:(View_def.name def)
                 (View_def.target_schema def)
             | Add_index { view; index; attrs } ->
               ignore (entry t view);
               Twovnl.Txn.add_index txn ~table:view ~index attrs)
           evolutions));
  List.iter
    (function
      | Add_column { view; attr; default } ->
        let e = entry t view in
        e.added <- e.added @ [ (attr, default) ]
      | Add_view { def; n = _ } ->
        let name = View_def.name def in
        Hashtbl.replace t.entries name (fresh_entry def);
        t.order <- t.order @ [ name ]
      | Add_index _ -> ())
    evolutions

let catalog_generation t = Twovnl.catalog_generation t.vnl

let begin_session t = Twovnl.Session.begin_ t.vnl

let end_session t s = Twovnl.Session.end_ t.vnl s

let query ?params t s sql = Twovnl.Session.query ?params t.vnl s sql

let read_view t s name = Twovnl.Session.read_table t.vnl s name

let expected_view t name =
  let e = entry t name in
  let rows = Source.compute_view e.source e.def in
  match e.added with
  | [] -> rows
  | added ->
    (* Ground truth for an evolved view: the recomputed groups carry the
       added columns' defaults — exactly what the copy did for existing
       rows and what padding does for refreshed ones. *)
    let schema =
      List.fold_left (fun s (a, _) -> Schema.extend_with s a) (View_def.target_schema e.def) added
    in
    let defaults = List.map snd added in
    List.map (fun tup -> Tuple.make schema (Tuple.values tup @ defaults)) rows

let collect_garbage t = Twovnl.collect_garbage t.vnl
