(** The warehouse facade: materialized summary views over simulated sources,
    maintained on-line under 2VNL.

    One warehouse owns one database, one {!Vnl_core.Twovnl} instance, the
    view definitions, and the simulated sources.  [refresh] runs one
    maintenance transaction that propagates queued source changes into every
    affected view — the paper's operating model, with readers continuing
    concurrently. *)

type t

val create : ?n:int -> ?page_size:int -> ?pool_capacity:int -> View_def.t list -> t
(** Build a warehouse hosting the given views (each becomes a registered
    nVNL table; [n] defaults to 2). *)

val vnl : t -> Vnl_core.Twovnl.t

val database : t -> Vnl_query.Database.t

val view : t -> string -> View_def.t
(** Raises [Failure] for unknown views. *)

val views : t -> View_def.t list

val source : t -> string -> Source.t
(** The simulated source feeding the named view. *)

val queue_changes : t -> view:string -> Delta.change list -> unit
(** Append source changes to the view's pending queue (and apply them to
    the simulated source so ground-truth recomputation stays in step). *)

val pending : t -> view:string -> int
(** Queued changes not yet propagated (O(1)). *)

val peek_pending : t -> view:string -> Delta.change list
(** The queued changes in arrival order, without draining them (the
    abort/requeue tests inspect the queue after a failed round). *)

val take_pending : t -> view:string -> Delta.change list
(** Drain the view's queue, returning the batch in arrival order; used by
    scenarios that spread one maintenance transaction over simulated time
    instead of calling {!refresh}. *)

val refresh : t -> Summary.outcome list
(** Run one maintenance transaction propagating every queued batch, commit,
    and return per-view outcomes (in view order).  The transaction runs
    under {!Vnl_core.Recovery.run_maintenance}'s crash-safe write ordering:
    a crash at any point leaves a disk image that
    {!Vnl_core.Recovery.reopen} repairs to the pre- or post-refresh
    state. *)

val refresh_with : t -> (Vnl_core.Twovnl.Txn.m -> unit) -> Summary.outcome list
(** Like {!refresh} but also runs the given extra maintenance work inside
    the same transaction (used by experiments to stretch transactions). *)

val refresh_pipelined :
  ?workers:int ->
  ?on_phase:(Vnl_core.Pipeline.phase -> stripe:int -> unit) ->
  ?run:(Vnl_core.Pipeline.plan -> Vnl_core.Pipeline.report) ->
  t ->
  Summary.outcome list
(** Propagate every queued batch as one pipelined round
    ({!Vnl_core.Pipeline}): net deltas are classified in a single batched
    index pass per view ({!Summary.plan_batch}), partitioned into
    dependency-disjoint stripes (at most [workers], default 2, further
    capped at n - 1), and applied by one worker domain per stripe with VNs
    published strictly in order.  Readers run throughout; with the
    warehouse created at [n >= workers + 1], sessions opened at round
    begin stay valid across the whole round.  Same logical result as
    {!refresh}; a crash at any write leaves a disk image
    {!Vnl_core.Recovery.reopen} repairs to a VN-prefix boundary of the
    round.

    Returned outcomes reflect what the round actually applied (the run
    report's per-view physical action counts), not the planning pass's
    prediction.

    If the round fails, the published stripe prefix stays committed and
    the source changes the reverted suffix carried are re-enqueued at the
    front of each affected view's queue in their original order before the
    exception re-raises — no queued change is ever lost, and a follow-up
    {!refresh} converges to {!expected_view}.  (A change whose net effect
    straddles the published boundary is requeued as just its unpublished
    half.)

    [on_phase] is forwarded to {!Vnl_core.Pipeline.plan} (deterministic
    fault injection); [run] (default {!Vnl_core.Pipeline.run}) lets tests
    drive the round through {!Vnl_util.Sched} via
    {!Vnl_core.Pipeline.tasks}/{!Vnl_core.Pipeline.finish}. *)

type evolution =
  | Add_column of {
      view : string;
      attr : Vnl_relation.Schema.attribute;
      default : Vnl_relation.Value.t;
    }
      (** [ALTER TABLE view ADD COLUMN attr DEFAULT default].  Key columns
          are rejected (they would change group identity retroactively). *)
  | Add_view of { def : View_def.t; n : int option }
      (** [CREATE VIEW]: a fresh empty summary table ([n] defaults to the
          engine's 2); feed it through {!queue_changes} + {!refresh}. *)
  | Add_index of { view : string; index : string; attrs : string list }
      (** [CREATE INDEX index ON view (attrs)]. *)

val evolve : t -> evolution list -> unit
(** Commit a schema evolution on the live warehouse: one maintenance
    transaction stages a new catalog generation (see
    {!Vnl_core.Twovnl.Txn.add_column} et al.) under the crash-safe
    flag → data → catalog → publish ordering and publishes it.  Sessions
    open across the commit keep their old generation's schema view;
    sessions begun after it resolve the new one.  A crash at any write
    reopens to exactly the pre- or post-evolution catalog. *)

val catalog_generation : t -> int
(** Index of the newest committed catalog generation (0 until the first
    {!evolve}). *)

val begin_session : t -> Vnl_core.Twovnl.Session.s

val end_session : t -> Vnl_core.Twovnl.Session.s -> unit

val query :
  ?params:(string * Vnl_relation.Value.t) list ->
  t -> Vnl_core.Twovnl.Session.s -> string -> Vnl_query.Executor.result
(** Session-consistent SQL over the views (2VNL rewrite), compiled once
    per statement and served from the plan cache thereafter; [params]
    supplies named parameters so value-varying workloads share plans. *)

val read_view :
  t -> Vnl_core.Twovnl.Session.s -> string -> Vnl_relation.Tuple.t list
(** Engine-level consistent read of a whole view (any n). *)

val expected_view : t -> string -> Vnl_relation.Tuple.t list
(** Ground truth: recompute the view from the simulated source's current
    base data (reflects {e queued} changes too, so compare right after a
    refresh).  For an evolved view, the recomputed groups carry the added
    columns' defaults in evolution order. *)

val collect_garbage : t -> int
