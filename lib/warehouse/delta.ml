module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value

type change = Insert of Tuple.t | Delete of Tuple.t | Update of Tuple.t * Tuple.t

type group_delta = {
  key : Value.t list;
  agg_delta : Value.t list;
  count_delta : int;
}

module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal a b =
    let rec loop xs ys =
      match (xs, ys) with
      | [], [] -> true
      | x :: xs, y :: ys -> Value.equal x y && loop xs ys
      | _ -> false
    in
    loop a b

  let hash (k : t) = Hashtbl.hash k
end)

(* One mutable accumulator per group, updated in place: netting a
   warehouse-sized batch is the first pass of every refresh, and a
   persistent map would rebuild a tree path (and allocate its spine) per
   source change. *)
type acc = { sums : Value.t array; mutable count : int }

let net_group_deltas view changes =
  let acc = Key_tbl.create 1024 and order = ref [] in
  let add_row sign row =
    let key = View_def.group_key view row in
    let contrib = View_def.contribution view row in
    let entry =
      match Key_tbl.find_opt acc key with
      | Some entry -> entry
      | None ->
        let entry = { sums = Array.of_list (View_def.zero_contribution view); count = 0 } in
        Key_tbl.add acc key entry;
        order := key :: !order;
        entry
    in
    let op = if sign > 0 then Value.add else Value.sub in
    List.iteri (fun i v -> entry.sums.(i) <- op entry.sums.(i) v) contrib;
    entry.count <- entry.count + sign
  in
  List.iter
    (fun change ->
      match change with
      | Insert row -> add_row 1 row
      | Delete row -> add_row (-1) row
      | Update (old_row, new_row) ->
        add_row (-1) old_row;
        add_row 1 new_row)
    changes;
  let is_zero v =
    match v with Value.Int 0 -> true | Value.Float 0.0 -> true | _ -> false
  in
  List.rev !order
  |> List.filter_map (fun key ->
         let { sums; count } = Key_tbl.find acc key in
         if count = 0 && Array.for_all is_zero sums then None
         else Some { key; agg_delta = Array.to_list sums; count_delta = count })

let pp_change ppf = function
  | Insert t -> Format.fprintf ppf "insert %s" (String.concat "," (Tuple.to_strings t))
  | Delete t -> Format.fprintf ppf "delete %s" (String.concat "," (Tuple.to_strings t))
  | Update (o, n) ->
    Format.fprintf ppf "update %s -> %s"
      (String.concat "," (Tuple.to_strings o))
      (String.concat "," (Tuple.to_strings n))

let change_count changes =
  List.fold_left
    (fun (i, d, u) c ->
      match c with
      | Insert _ -> (i + 1, d, u)
      | Delete _ -> (i, d + 1, u)
      | Update _ -> (i, d, u + 1))
    (0, 0, 0) changes
