module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value

type change = Insert of Tuple.t | Delete of Tuple.t | Update of Tuple.t * Tuple.t

type group_delta = {
  key : Value.t list;
  agg_delta : Value.t list;
  count_delta : int;
}

module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal a b =
    let rec loop xs ys =
      match (xs, ys) with
      | [], [] -> true
      | x :: xs, y :: ys -> Value.equal x y && loop xs ys
      | _ -> false
    in
    loop a b

  let hash (k : t) = Hashtbl.hash k
end)

(* One mutable accumulator per group, updated in place: netting a
   warehouse-sized batch is the first pass of every refresh, and a
   persistent map would rebuild a tree path (and allocate its spine) per
   source change. *)
type acc = { sums : Value.t array; mags : float array; mutable count : int }

(* Relative tolerance for float cancellation residues.  A group whose rows
   net to nothing still accumulates rounding error proportional to the
   magnitudes summed ((0.1 +. 0.2) -. 0.3 <> 0.), so "zero" for a float
   sum is judged against the running sum of |contribution|, not
   absolutely. *)
let residue_eps = 1e-12

let net_group_deltas view changes =
  let acc = Key_tbl.create 1024 and order = ref [] in
  let add_row sign row =
    let key = View_def.group_key view row in
    let contrib = View_def.contribution view row in
    let entry =
      match Key_tbl.find_opt acc key with
      | Some entry -> entry
      | None ->
        let zeros = Array.of_list (View_def.zero_contribution view) in
        let entry = { sums = zeros; mags = Array.make (Array.length zeros) 0.; count = 0 } in
        Key_tbl.add acc key entry;
        order := key :: !order;
        entry
    in
    let op = if sign > 0 then Value.add else Value.sub in
    List.iteri
      (fun i v ->
        entry.sums.(i) <- op entry.sums.(i) v;
        match v with
        | Value.Float f -> entry.mags.(i) <- entry.mags.(i) +. Float.abs f
        | _ -> ())
      contrib;
    entry.count <- entry.count + sign
  in
  List.iter
    (fun change ->
      match change with
      | Insert row -> add_row 1 row
      | Delete row -> add_row (-1) row
      | Update (old_row, new_row) ->
        add_row (-1) old_row;
        add_row 1 new_row)
    changes;
  let is_zero v =
    match v with Value.Int 0 -> true | Value.Float 0.0 -> true | _ -> false
  in
  List.rev !order
  |> List.filter_map (fun key ->
         let { sums; mags; count } = Key_tbl.find acc key in
         (* A count-0 group's rows cancelled exactly; any float sum left is
            rounding residue.  Clean residues within tolerance so the group
            drops out as the phantom delta it is, instead of surviving to
            smear epsilon onto (or no-op against) a target the round never
            logically touched. *)
         if count = 0 then
           Array.iteri
             (fun i v ->
               match v with
               | Value.Float f when Float.abs f <= residue_eps *. mags.(i) ->
                 sums.(i) <- Value.Float 0.0
               | _ -> ())
             sums;
         if count = 0 && Array.for_all is_zero sums then None
         else Some { key; agg_delta = Array.to_list sums; count_delta = count })

let pp_change ppf = function
  | Insert t -> Format.fprintf ppf "insert %s" (String.concat "," (Tuple.to_strings t))
  | Delete t -> Format.fprintf ppf "delete %s" (String.concat "," (Tuple.to_strings t))
  | Update (o, n) ->
    Format.fprintf ppf "update %s -> %s"
      (String.concat "," (Tuple.to_strings o))
      (String.concat "," (Tuple.to_strings n))

let change_count changes =
  List.fold_left
    (fun (i, d, u) c ->
      match c with
      | Insert _ -> (i + 1, d, u)
      | Delete _ -> (i, d + 1, u)
      | Update _ -> (i, d, u + 1))
    (0, 0, 0) changes
