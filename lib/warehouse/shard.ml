module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Twovnl = Vnl_core.Twovnl
module Domain_pool = Vnl_util.Domain_pool

module Shard_map = struct
  type t = { shards : int; route_fn : Tuple.t -> int }

  let create ~shards ~route =
    if shards < 1 then invalid_arg "Shard_map.create: need at least one shard";
    { shards; route_fn = route }

  let by_attrs ~shards ~source ~attrs =
    if attrs = [] then invalid_arg "Shard_map.by_attrs: empty shard key";
    let positions =
      List.map
        (fun attr ->
          match Schema.index_of_opt source attr with
          | Some i -> i
          | None ->
            invalid_arg (Printf.sprintf "Shard_map.by_attrs: unknown attribute %S" attr))
        attrs
    in
    create ~shards ~route:(fun row ->
        (* The polymorphic hash is deterministic over Value.t, so equal
           shard keys land on equal shards across runs and processes. *)
        Hashtbl.hash (List.map (Tuple.get row) positions) mod shards)

  let shards t = t.shards

  let route t row =
    let s = t.route_fn row in
    if s < 0 || s >= t.shards then
      invalid_arg (Printf.sprintf "Shard_map.route: shard %d outside 0..%d" s (t.shards - 1));
    s

  let partition_changes t changes =
    (* Per-shard accumulators in reverse order, flipped once at the end —
       arrival order within a shard is what the maintenance queue
       preserves. *)
    let slices = Array.make t.shards [] in
    let push s change = slices.(s) <- change :: slices.(s) in
    List.iter
      (fun change ->
        match change with
        | Delta.Insert row | Delta.Delete row -> push (route t row) change
        | Delta.Update (old_row, new_row) ->
          let os = route t old_row and ns = route t new_row in
          if os = ns then push os change
          else begin
            push os (Delta.Delete old_row);
            push ns (Delta.Insert new_row)
          end)
      changes;
    Array.map List.rev slices
end

module Sharded = struct
  type t = {
    map : Shard_map.t;
    warehouses : Warehouse.t array;
    mutable templates : (string * View_def.t) list;
        (** By template name, in order; grows when {!evolve} adds a view. *)
  }

  let create ?n ?page_size ?pool_capacity ~shard_map defs =
    if defs = [] then invalid_arg "Sharded.create: no view templates";
    let warehouses =
      Array.init (Shard_map.shards shard_map) (fun s ->
          Warehouse.create ?n ?page_size ?pool_capacity
            (List.map (fun def -> View_def.instantiate def ~shard:s) defs))
    in
    { map = shard_map; warehouses; templates = List.map (fun d -> (View_def.name d, d)) defs }

  let shard_map t = t.map

  let shard_count t = Array.length t.warehouses

  let shard t s = t.warehouses.(s)

  let templates t = List.map snd t.templates

  let template t name =
    match List.assoc_opt name t.templates with
    | Some def -> def
    | None -> failwith (Printf.sprintf "Sharded: unknown view template %S" name)

  let instance name ~shard = View_def.instance_name name ~shard

  let queue_changes t ~view changes =
    ignore (template t view);
    let slices = Shard_map.partition_changes t.map changes in
    Array.iteri
      (fun s slice ->
        if slice <> [] then
          Warehouse.queue_changes t.warehouses.(s) ~view:(instance view ~shard:s) slice)
      slices

  let pending_shard t ~shard ~view =
    Warehouse.pending t.warehouses.(shard) ~view:(instance view ~shard)

  let pending t ~view =
    let total = ref 0 in
    Array.iteri (fun s _ -> total := !total + pending_shard t ~shard:s ~view) t.warehouses;
    !total

  let refresh_shard t ~shard = Warehouse.refresh t.warehouses.(shard)

  let refresh_all ?(domains = 1) t =
    if domains < 1 then invalid_arg "Sharded.refresh_all: need at least one domain";
    let shards = shard_count t in
    let outcomes = Array.make shards [] in
    if domains = 1 || shards = 1 then
      Array.iteri (fun s _ -> outcomes.(s) <- refresh_shard t ~shard:s) t.warehouses
    else begin
      (* Shards share no state (each warehouse owns its database, pool,
         and version relation), so round-robin them across domains. *)
      let d = min domains shards in
      ignore
        (Domain_pool.parallel ~domains:d (fun rank ->
             let s = ref rank in
             while !s < shards do
               outcomes.(!s) <- refresh_shard t ~shard:!s;
               s := !s + d
             done))
    end;
    outcomes

  let refresh_pipelined_shard ?workers ?on_phase ?run t ~shard =
    Warehouse.refresh_pipelined ?workers ?on_phase ?run t.warehouses.(shard)

  let refresh_pipelined_all ?workers t =
    Array.mapi (fun s _ -> refresh_pipelined_shard ?workers t ~shard:s) t.warehouses

  (* Evolve every shard: the same logical DDL maps to each shard's view
     instances (per-shard evolution transactions — shards share no state,
     so there is no cross-shard atomicity to coordinate; a failure leaves
     a prefix of shards evolved, each internally pre-or-post).  Union
     reads ({!read_union}) keep merging on the template's original target
     schema: added columns are per-shard payload the union projects away. *)
  let evolve t evolutions =
    Array.iteri
      (fun s wh ->
        let map_ev = function
          | Warehouse.Add_column { view; attr; default } ->
            ignore (template t view);
            Warehouse.Add_column { view = instance view ~shard:s; attr; default }
          | Warehouse.Add_view { def; n } ->
            Warehouse.Add_view { def = View_def.instantiate def ~shard:s; n }
          | Warehouse.Add_index { view; index; attrs } ->
            ignore (template t view);
            Warehouse.Add_index { view = instance view ~shard:s; index; attrs }
        in
        Warehouse.evolve wh (List.map map_ev evolutions))
      t.warehouses;
    List.iter
      (function
        | Warehouse.Add_view { def; _ } ->
          t.templates <- t.templates @ [ (View_def.name def, def) ]
        | Warehouse.Add_column _ | Warehouse.Add_index _ -> ())
      evolutions

  let collect_garbage t =
    Array.fold_left (fun acc wh -> acc + Warehouse.collect_garbage wh) 0 t.warehouses

  type session = Twovnl.Session.s array

  let vnls t = Array.to_list (Array.map Warehouse.vnl t.warehouses)

  let begin_session t = Array.of_list (Twovnl.Session.begin_vector (vnls t))

  let end_session t sessions =
    Twovnl.Session.end_vector (vnls t) (Array.to_list sessions)

  let session_valid t sessions =
    let valid = ref true in
    Array.iteri
      (fun s session ->
        if not (Twovnl.Session.is_valid (Warehouse.vnl t.warehouses.(s)) session) then
          valid := false)
      sessions;
    !valid

  let vn_vector sessions = Twovnl.Session.vn_vector (Array.to_list sessions)

  let read_shard_view t sessions ~shard ~view =
    Warehouse.read_view t.warehouses.(shard) sessions.(shard) (instance view ~shard)

  let read_union t sessions ~view =
    let def = template t view in
    Summary.merge_union def
      (List.init (shard_count t) (fun s -> read_shard_view t sessions ~shard:s ~view))

  let expected_union t ~view =
    let def = template t view in
    Summary.merge_union def
      (List.init (shard_count t) (fun s ->
           Warehouse.expected_view t.warehouses.(s) (instance view ~shard:s)))
end
