(** Multi-tenant sharded warehouse: a shard map routing source changes by
    a tenant/time shard key to independent shards, templated per-shard
    summary views, and consistent cross-shard reads.

    Each shard is a full {!Warehouse.t} — its own database, its own
    {!Vnl_core.Twovnl} version state, its own maintenance queues and
    (pipelined) refresh stream — so maintenance of one shard never blocks
    readers or maintenance of another; this is the paper's per-relation
    version independence promoted to the scaling unit.  A view is authored
    once as a {e template} and stamped per shard
    ({!View_def.instantiate}); the logical view is the union of the
    instances ({!Summary.merge_union}).

    A reader gets a consistent cross-shard snapshot as a {e vector} of
    per-shard session VNs ({!Vnl_core.Twovnl.Session.begin_vector}): each
    component pins a consistent snapshot of its shard for the session's
    lifetime.  Because shards share no base rows, any vector of per-shard
    consistent states is a consistent state of the union — there is no
    cross-shard transaction to tear. *)

module Shard_map : sig
  type t
  (** Routes a source row to a shard. *)

  val create : shards:int -> route:(Vnl_relation.Tuple.t -> int) -> t
  (** [shards >= 1]; [route] must return a value in [0 .. shards - 1]
      (checked at routing time).  Raises [Invalid_argument] on
      [shards < 1]. *)

  val by_attrs :
    shards:int -> source:Vnl_relation.Schema.t -> attrs:string list -> t
  (** Deterministic hash routing over the named source attributes — the
      tenant/time shard key (e.g. [["state"]] or [["state"; "date"]] for
      the sales domain).  Rows equal on the key always land on the same
      shard, so a group of any view whose group-by contains the key never
      straddles shards.  Raises [Invalid_argument] on unknown
      attributes or an empty list. *)

  val shards : t -> int

  val route : t -> Vnl_relation.Tuple.t -> int
  (** Raises [Invalid_argument] if the routing function strays outside
      [0 .. shards - 1]. *)

  val partition_changes : t -> Delta.change list -> Delta.change list array
  (** Route each change to its shard, preserving per-shard arrival order.
      An update whose old and new rows route to different shards (the
      shard key itself changed) splits into a [Delete] on the old row's
      shard and an [Insert] on the new row's shard — the same net effect,
      each half local to one shard. *)
end

(** The sharded warehouse facade.  Views are addressed by {e template}
    name; instance names are internal. *)
module Sharded : sig
  type t

  val create :
    ?n:int ->
    ?page_size:int ->
    ?pool_capacity:int ->
    shard_map:Shard_map.t ->
    View_def.t list ->
    t
  (** One warehouse per shard, each hosting a stamped instance of every
      template.  The shard map's routing function is applied to every
      template's source rows, so the templates should share a source
      schema (or at least agree on the routed positions). *)

  val shard_map : t -> Shard_map.t

  val shard_count : t -> int

  val shard : t -> int -> Warehouse.t
  (** The underlying per-shard warehouse (tests reach through this for
      fault injection and per-shard assertions). *)

  val templates : t -> View_def.t list

  val queue_changes : t -> view:string -> Delta.change list -> unit
  (** Route the batch through the shard map and queue each shard's slice
      against its instance of the template (applying it to that shard's
      simulated source). *)

  val pending : t -> view:string -> int
  (** Total queued changes across shards for the template. *)

  val pending_shard : t -> shard:int -> view:string -> int

  val refresh_shard : t -> shard:int -> Summary.outcome list

  val refresh_all : ?domains:int -> t -> Summary.outcome list array
  (** Refresh every shard (serial maintenance transaction each), indexed
      by shard.  [domains > 1] distributes shards round-robin across that
      many OCaml domains — shards share no state, so per-shard maintenance
      is embarrassingly parallel.  Raises [Invalid_argument] when
      [domains < 1]. *)

  val refresh_pipelined_shard :
    ?workers:int ->
    ?on_phase:(Vnl_core.Pipeline.phase -> stripe:int -> unit) ->
    ?run:(Vnl_core.Pipeline.plan -> Vnl_core.Pipeline.report) ->
    t ->
    shard:int ->
    Summary.outcome list
  (** One pipelined round on one shard
      ({!Warehouse.refresh_pipelined}, including its abort/requeue
      guarantee). *)

  val refresh_pipelined_all : ?workers:int -> t -> Summary.outcome list array
  (** Pipelined round per shard, shard after shard: the pipeline's worker
      pool is process-wide and one round owns it at a time, so cross-shard
      parallelism composes with {e serial} per-shard refreshes
      ({!refresh_all} [~domains]), not with per-shard worker stripes. *)

  val evolve : t -> Warehouse.evolution list -> unit
  (** Apply the same logical schema evolution to every shard: template
      view names map to each shard's instances, and each shard commits its
      own evolution transaction ({!Warehouse.evolve}).  Shards share no
      state, so there is no cross-shard atomicity — a failure mid-way
      leaves a prefix of shards evolved, each internally consistent.
      Union reads keep merging on the template's original target schema;
      added columns are per-shard payload the union projects away. *)

  val collect_garbage : t -> int
  (** Sum of collected versions across shards. *)

  type session
  (** A cross-shard snapshot: one 2VNL session per shard, begun as a
      vector. *)

  val begin_session : t -> session

  val end_session : t -> session -> unit

  val session_valid : t -> session -> bool
  (** Every component session still valid (a shard's refresh cadence can
      expire its component independently). *)

  val vn_vector : session -> int list
  (** The snapshot's per-shard version numbers. *)

  val read_shard_view :
    t -> session -> shard:int -> view:string -> Vnl_relation.Tuple.t list
  (** One shard's visible instance relation at the session's component
      VN.  Raises {!Vnl_core.Twovnl.Expired} when that component
      expired. *)

  val read_union : t -> session -> view:string -> Vnl_relation.Tuple.t list
  (** The logical view: per-shard visible instances merged with
      {!Summary.merge_union}, each component read at its session VN — a
      consistent cross-shard snapshot of the union view. *)

  val expected_union : t -> view:string -> Vnl_relation.Tuple.t list
  (** Ground truth: each shard's instance recomputed from its simulated
      source (queued changes included), merged.  Compare against
      {!read_union} right after draining every shard. *)
end
