module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Dtype = Vnl_relation.Dtype

type agg = Sum of string | Count

type t = {
  name : string;
  source : Schema.t;
  group_by : string list;
  aggregates : (string * agg) list;  (** Includes hidden row_count when enabled. *)
  has_count : bool;
  group_positions : int list;
  sum_positions : int option list;  (** Per aggregate: source position, None for Count. *)
}

let count_column = "row_count"

let make ~name ~source ~group_by ~aggregates ?(with_count = true) () =
  if group_by = [] then invalid_arg "View_def.make: empty group-by";
  let position attr =
    match Schema.index_of_opt source attr with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "View_def.make: unknown source attribute %S" attr)
  in
  let group_positions = List.map position group_by in
  List.iter
    (fun (out, agg) ->
      if String.equal out count_column && with_count then
        invalid_arg "View_def.make: row_count is reserved";
      match agg with
      | Count -> ()
      | Sum attr -> (
        match (Schema.attribute source (position attr)).Schema.dtype with
        | Dtype.Int | Dtype.Float -> ()
        | Dtype.Str _ | Dtype.Date | Dtype.Bool ->
          invalid_arg (Printf.sprintf "View_def.make: SUM over non-numeric %S" attr)))
    aggregates;
  let aggregates =
    if with_count then aggregates @ [ (count_column, Count) ] else aggregates
  in
  let sum_positions =
    List.map (function _, Sum attr -> Some (position attr) | _, Count -> None) aggregates
  in
  { name; source; group_by; aggregates; has_count = with_count; group_positions; sum_positions }

let name t = t.name

let instance_name template ~shard =
  if shard < 0 then invalid_arg "View_def.instance_name: negative shard";
  Printf.sprintf "%s__s%d" template shard

let instantiate t ~shard = { t with name = instance_name t.name ~shard }

let source t = t.source

let group_by t = t.group_by

let aggregates t = t.aggregates

let has_count t = t.has_count

let target_schema t =
  let key_attrs =
    List.map
      (fun pos ->
        let a = Schema.attribute t.source pos in
        Schema.attr ~key:true a.Schema.name a.Schema.dtype)
      t.group_positions
  in
  let agg_attrs =
    List.map2
      (fun (out, _) pos ->
        let dtype =
          match pos with
          | None -> Dtype.Int
          | Some p -> (Schema.attribute t.source p).Schema.dtype
        in
        Schema.attr ~updatable:true out dtype)
      t.aggregates t.sum_positions
  in
  Schema.make (key_attrs @ agg_attrs)

let group_key t row = List.map (fun pos -> Tuple.get row pos) t.group_positions

let contribution t row =
  List.map
    (function None -> Value.Int 1 | Some pos -> Tuple.get row pos)
    t.sum_positions

let zero_contribution t =
  List.map
    (fun pos ->
      match pos with
      | None -> Value.Int 0
      | Some p -> (
        match (Schema.attribute t.source p).Schema.dtype with
        | Dtype.Float -> Value.Float 0.0
        | _ -> Value.Int 0))
    t.sum_positions
