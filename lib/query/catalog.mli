(** Catalog (de)serialization for database persistence.

    A restartable database must be able to rediscover its tables from disk:
    the catalog records, per table, the schema (with updatable/key flags —
    the bits 2VNL semantics hang off), the heap pages in scan order, and the
    secondary-index definitions.  The format is a line-oriented text format
    chosen for debuggability; {!Database.save} stores it in reserved catalog
    pages. *)

type entry = {
  table : string;
  schema : Vnl_relation.Schema.t;
  pages : int list;  (** Heap pages in scan order. *)
  secondary : (string * string list) list;  (** Secondary indexes. *)
}

type member = {
  m_logical : string;  (** Name readers and SQL resolve. *)
  m_storage : string;  (** Physical table entry holding the data — the
                           logical name for the live generation, a frozen
                           ["name@gK"] alias for superseded ones. *)
  m_n : int;  (** nVNL [n] of the member's extension. *)
  m_base_arity : int;  (** Base attributes within the extended schema. *)
  m_added : (string * Vnl_relation.Value.t) list;
      (** Columns appended by evolution, oldest first, with defaults. *)
}

type generation = {
  g_index : int;
  g_vn : int;  (** Version number whose publication activates the
                   generation; 0 for the initial catalog. *)
  g_members : member list;  (** Registration order, oldest first. *)
}
(** One immutable catalog snapshot of the versioned catalog engine.  A
    catalog text carries generations only once a schema evolution has
    staged or committed (format version 2); a never-evolved database keeps
    writing the byte-identical version 1 format. *)

val valid_name : string -> bool
(** Whether a table/attribute/index name survives the line-oriented format:
    non-empty printable ASCII with no spaces, ['|'], or control characters
    (those are the format's delimiters). *)

val check_name : what:string -> string -> unit
(** Raise [Invalid_argument] (mentioning [what]) unless {!valid_name}. *)

val serialize : ?generations:generation list -> entry list -> string
(** Raises [Invalid_argument] when any table, attribute, or index name fails
    {!valid_name} — a catalog that could not be re-parsed is never
    written.  With [generations] the text uses format version 2 and appends
    the generation sections after the table entries. *)

exception Corrupt of string

val parse : string -> entry list
(** Raises {!Corrupt} on malformed input. *)

val parse_full : string -> entry list * generation list
(** Like {!parse} but also returning the catalog generations (empty for a
    version-1 text).  Raises {!Corrupt} on malformed input. *)

val value_to_token : Vnl_relation.Value.t -> string
(** Self-contained text form of a default value ([null], [int:42],
    [float:0x1.8p1], [bool:true], [date:19961014], [str:<hex>]); floats and
    strings round-trip byte-exactly. *)

val value_of_token : string -> Vnl_relation.Value.t
(** Inverse of {!value_to_token}; raises {!Corrupt} on a malformed token. *)
