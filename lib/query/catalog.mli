(** Catalog (de)serialization for database persistence.

    A restartable database must be able to rediscover its tables from disk:
    the catalog records, per table, the schema (with updatable/key flags —
    the bits 2VNL semantics hang off), the heap pages in scan order, and the
    secondary-index definitions.  The format is a line-oriented text format
    chosen for debuggability; {!Database.save} stores it in reserved catalog
    pages. *)

type entry = {
  table : string;
  schema : Vnl_relation.Schema.t;
  pages : int list;  (** Heap pages in scan order. *)
  secondary : (string * string list) list;  (** Secondary indexes. *)
}

val valid_name : string -> bool
(** Whether a table/attribute/index name survives the line-oriented format:
    non-empty printable ASCII with no spaces, ['|'], or control characters
    (those are the format's delimiters). *)

val check_name : what:string -> string -> unit
(** Raise [Invalid_argument] (mentioning [what]) unless {!valid_name}. *)

val serialize : entry list -> string
(** Raises [Invalid_argument] when any table, attribute, or index name fails
    {!valid_name} — a catalog that could not be re-parsed is never
    written. *)

exception Corrupt of string

val parse : string -> entry list
(** Raises {!Corrupt} on malformed input. *)
