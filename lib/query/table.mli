(** Tables: a heap file plus a unique-key B+-tree kept in sync.

    The key index serves the maintenance transaction's per-operation key
    probes (the conflicting-tuple test of Table 2 and the §4.2 cursor
    selections).  Relations without key attributes simply have no index and
    no uniqueness enforcement, matching the paper's "tuples that do not have
    unique keys" case. *)

type t

exception Unique_violation of string
(** Raised on inserting a duplicate key; message names the table. *)

val create : Vnl_storage.Buffer_pool.t -> name:string -> Vnl_relation.Schema.t -> t

val attach :
  Vnl_storage.Buffer_pool.t ->
  name:string ->
  Vnl_relation.Schema.t ->
  pages:int list ->
  secondary:(string * string list) list ->
  t
(** Re-open a table over existing heap pages after a restart: the unique-key
    index and the listed secondary indexes are rebuilt by scanning. *)

val name : t -> string

val set_name : t -> string -> unit
(** Owned by [Database.rename_table]; call it directly and the catalog map
    and the table disagree about the name. *)

val schema : t -> Vnl_relation.Schema.t

val heap : t -> Vnl_storage.Heap_file.t

val has_key : t -> bool

val version : t -> int
(** Monotone counter bumped by index DDL ({!create_index}, {!drop_index});
    the prepared-statement cache uses it to detect stale access-path
    choices (see {!Prepared}). *)

val insert : ?check:bool -> t -> Vnl_relation.Tuple.t -> Vnl_storage.Heap_file.rid
(** Raises {!Unique_violation} when the table has a unique key and an equal
    key is already present.  [~check:false] skips the duplicate probe; only
    for callers that just resolved the key against the index themselves and
    found it absent. *)

val insert_many :
  ?check:bool -> t -> Vnl_relation.Tuple.t list -> Vnl_storage.Heap_file.rid list
(** Insert the tuples in list order (rids are assigned exactly as repeated
    {!insert} would, and are returned in the same order), then enter their
    keys into the unique index as one sorted batch
    ({!Vnl_index.Bptree.insert_batch}).  [check] as in {!insert}; it does
    not detect duplicates *within* the list — those raise
    [Invalid_argument] from the index.  The batched maintenance path's
    fresh-insert sweep, whose keys are distinct and pre-resolved absent,
    is the intended caller; the pipelined path additionally uses the
    returned rids to target its durability flush. *)

val update_in_place :
  ?old:Vnl_relation.Tuple.t -> t -> Vnl_storage.Heap_file.rid -> Vnl_relation.Tuple.t -> unit
(** Overwrite the record; if the key values changed the index entry is
    moved (2VNL itself never changes keys, but the engine supports it).
    [old], when the caller already holds the stored tuple for this rid,
    skips the internal re-fetch; it must equal the stored record. *)

val delete : t -> Vnl_storage.Heap_file.rid -> unit

val get : t -> Vnl_storage.Heap_file.rid -> Vnl_relation.Tuple.t option

val find_by_key :
  t -> Vnl_relation.Value.t list -> (Vnl_storage.Heap_file.rid * Vnl_relation.Tuple.t) option
(** Index probe; [None] for keyless tables or absent keys. *)

val find_many_by_key :
  t ->
  Vnl_relation.Value.t list array ->
  (Vnl_storage.Heap_file.rid * Vnl_relation.Tuple.t) option array
(** Batched {!find_by_key}: all keys are resolved in one sorted pass over
    the unique index ({!Vnl_index.Bptree.find_batch}) and the hit records
    fetched in ascending (page, slot) order.  Results align with the input
    array; keys may be in any order.  All-[None] for keyless tables. *)

val scan : t -> (Vnl_storage.Heap_file.rid -> Vnl_relation.Tuple.t -> unit) -> unit

val iter_tuples : t -> (Vnl_relation.Tuple.t -> unit) -> unit
(** Read-only scan without rids or the per-page snapshot (see
    {!Vnl_storage.Heap_file.iter_tuples}); [f] must not modify the table. *)

val iter_records : t -> (bytes -> int -> unit) -> unit
(** Read-only scan over undecoded records (see
    {!Vnl_storage.Heap_file.iter_records}); [f] must not modify the
    table. *)

val fold_records : t -> init:'a -> f:('a -> bytes -> int -> 'a) -> 'a
(** Latch-free pure fold over undecoded records (see
    {!Vnl_storage.Heap_file.fold_records}); [f] must be pure — it may be
    re-run against a torn page image and that attempt discarded. *)

val fold_raw :
  t -> init:'a -> f:('a -> page:int -> slot:int -> bytes -> int -> 'a) -> 'a
(** {!fold_records} with each record's page/slot address (see
    {!Vnl_storage.Heap_file.fold_raw}); same purity contract. *)

val to_list : t -> (Vnl_storage.Heap_file.rid * Vnl_relation.Tuple.t) list

val tuple_count : t -> int

val page_count : t -> int

val truncate : t -> unit
(** Remove every tuple (used by tests and scenario resets). *)

val create_index : t -> name:string -> string list -> unit
(** [create_index t ~name attrs] builds and maintains a secondary
    (non-unique) B+-tree index on the given attributes; existing tuples are
    indexed immediately.  Raises [Invalid_argument] on unknown attributes,
    an empty list, or a duplicate index name. *)

val drop_index : t -> string -> unit

val indexes : t -> (string * string list) list
(** Secondary indexes as (name, attributes), in creation order. *)

val index_attrs : t -> string -> string list
(** Attribute list of the named secondary index, resolved in O(1).
    Raises [Not_found] for unknown index names. *)

val index_lookup :
  t -> name:string -> Vnl_relation.Value.t list -> Vnl_storage.Heap_file.rid list
(** Rids of tuples whose indexed attributes equal the given values, in key
    order.  Raises [Not_found] for unknown index names. *)

val index_covering : t -> string list -> string option
(** Name of a secondary index whose attribute list is a subset of the given
    equality-bound attributes (the planner's lookup), if any. *)
