module Obs = Vnl_obs.Obs

(* Aggregated over every database's cache, gated on [Obs.enabled]; the
   per-cache [stats] record stays unconditional. *)
let m_hits = Obs.Registry.counter "plan_cache.hits"

let m_misses = Obs.Registry.counter "plan_cache.misses"

let m_invalidations = Obs.Registry.counter "plan_cache.invalidations"

type stats = { mutable hits : int; mutable misses : int; mutable invalidations : int }

type entry = { plan : Plan.t; mutable stamp : int  (** Last-use clock tick. *) }

type cache = {
  capacity : int;
  entries : (string, entry) Hashtbl.t;  (** Keyed by SQL source text. *)
  mutable clock : int;
  stats : stats;
}

type Database.plan_cache += Cache of cache

let default_capacity = 128

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Prepared.create: capacity must be positive";
  {
    capacity;
    entries = Hashtbl.create 32;
    clock = 0;
    stats = { hits = 0; misses = 0; invalidations = 0 };
  }

(* The cache lives inside its database (installed on first use), so plans
   can never outlive or leak across the catalog they were compiled for. *)
let cache ?capacity db =
  match Database.plan_cache db with
  | Some (Cache c) -> c
  | Some _ | None ->
    let c = create ?capacity () in
    Database.set_plan_cache db (Cache c);
    c

let evict_lru c =
  while Hashtbl.length c.entries > c.capacity do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.stamp -> acc
          | _ -> Some (key, e.stamp))
        c.entries None
    in
    match victim with
    | Some (key, _) -> Hashtbl.remove c.entries key
    | None -> ()
  done

let prepare db src =
  let c = cache db in
  c.clock <- c.clock + 1;
  let compile () =
    (* Parse and prepare outside the table: failures propagate to the
       caller and are never cached. *)
    let plan = Plan.prepare db (Vnl_sql.Parser.parse_select src) in
    Hashtbl.replace c.entries src { plan; stamp = c.clock };
    evict_lru c;
    plan
  in
  match Hashtbl.find_opt c.entries src with
  | Some e when Plan.valid db e.plan ->
    e.stamp <- c.clock;
    c.stats.hits <- c.stats.hits + 1;
    Obs.Counter.record m_hits 1;
    e.plan
  | Some _ ->
    (* Stale: the catalog changed under the plan (index DDL, or the table
       was dropped and recreated).  Re-prepare against the new catalog. *)
    Hashtbl.remove c.entries src;
    c.stats.invalidations <- c.stats.invalidations + 1;
    c.stats.misses <- c.stats.misses + 1;
    Obs.Counter.record m_invalidations 1;
    Obs.Counter.record m_misses 1;
    compile ()
  | None ->
    c.stats.misses <- c.stats.misses + 1;
    Obs.Counter.record m_misses 1;
    compile ()

let exec db ?params src = Plan.execute ?params (prepare db src)

let stats db = (cache db).stats

let reset_stats db =
  let s = (cache db).stats in
  s.hits <- 0;
  s.misses <- 0;
  s.invalidations <- 0

let size db = Hashtbl.length (cache db).entries

let clear db =
  let c = cache db in
  Hashtbl.reset c.entries
