(** Prepared-statement cache: SQL text → compiled {!Plan.t}, with LRU
    eviction.

    The cache is stored inside the {!Database.t} it serves (via the
    {!Database.plan_cache} slot), so its lifetime matches the catalog its
    plans were compiled against.  A hit revalidates the plan with
    {!Plan.valid}; catalog changes (index DDL, drop/recreate of a table)
    invalidate the entry and force a re-prepare, so a stale access path is
    never executed.  Parse or prepare failures propagate and are never
    cached. *)

type stats = { mutable hits : int; mutable misses : int; mutable invalidations : int }
(** [invalidations] counts hits rejected by revalidation; each one is also
    counted as a miss (the statement is recompiled). *)

type cache

type Database.plan_cache += Cache of cache

val default_capacity : int
(** 128 entries. *)

val cache : ?capacity:int -> Database.t -> cache
(** The database's cache, installing a fresh one on first use.  [capacity]
    only takes effect at installation time. *)

val prepare : Database.t -> string -> Plan.t
(** Cached parse + {!Plan.prepare}.  Raises {!Vnl_sql.Parser.Parse_error}
    or {!Plan.Query_error} on bad statements. *)

val exec :
  Database.t -> ?params:(string * Vnl_relation.Value.t) list -> string -> Plan.result
(** [Plan.execute ?params (prepare db src)] — the one-call prepared path
    {!Executor.query_string} wraps. *)

val stats : Database.t -> stats

val reset_stats : Database.t -> unit

val size : Database.t -> int
(** Number of cached plans. *)

val clear : Database.t -> unit
(** Drop every cached plan (stats are kept). *)
