(** Compiled query plans.

    [prepare] lowers a parsed SELECT into closures once — column references
    become array positions, named parameters become slots, constant
    subexpressions are folded — and hoists the access-path decision
    (unique-key probe, secondary-index scan, or full scan) out of the
    per-execution path.  [execute] then binds parameters and runs the
    closures, producing exactly what {!Executor.query} produces: the
    compiler mirrors the interpreter's semantics down to three-valued
    logic, lazy error reporting (a bad expression in a query yielding no
    rows never surfaces), and error-message text.  The differential tests
    in [test/] hold the two paths to that contract.

    Compilation changes CPU cost only: a plan touches the same pages
    through the same access paths as the interpreter, so the paper's §6
    physical-I/O experiments are unaffected.  The one intentional
    deviation: a probe value that fails to evaluate at execution time
    (e.g. an unbound parameter) degrades that table to a full scan,
    where the interpreter may still have found a narrower index from the
    remaining bindings — results are identical because the full WHERE
    always runs as a residual filter. *)

exception Query_error of string

type result = {
  columns : string list;  (** Output column labels, in select-list order. *)
  rows : Vnl_relation.Value.t list list;
}

type t

val prepare : ?resolve:(string -> Table.t option) -> Database.t -> Vnl_sql.Ast.select -> t
(** Compile against the database's current catalog.  [resolve] overrides
    name resolution for names it returns [Some] for (a catalog generation's
    registry); unknown names fall through to the database.  Raises
    {!Query_error} on unknown tables or an empty FROM clause (the same
    errors the interpreter reports at query time). *)

val prepare_view :
  label:string ->
  ?columns:string list ->
  Vnl_relation.Schema.t ->
  Vnl_sql.Ast.select ->
  t
(** Compile a SELECT over a single materialized source — rows are supplied
    to {!execute_view} rather than read from a table.  [label] is the name
    column references are resolved against (the FROM clause is ignored);
    [columns] overrides the derived output labels, letting the 2VNL reader
    fast path reproduce the labels of the rewritten query it replaces. *)

val execute : ?params:(string * Vnl_relation.Value.t) list -> t -> result
(** Run a table plan.  Raises {!Eval.Eval_error} exactly where the
    interpreter would (unknown column forced by a row, unbound parameter,
    type errors). *)

val execute_view :
  ?params:(string * Vnl_relation.Value.t) list -> t -> Vnl_relation.Tuple.t list -> result
(** Run a view plan over the given source rows. *)

val valid : ?resolve:(string -> Table.t option) -> Database.t -> t -> bool
(** Whether the plan's access-path choices are still sound: every table it
    was compiled against is still the same physical table and has seen no
    index DDL since.  View plans are always valid. *)

val columns : t -> string list
(** Output labels, available without executing. *)

val full_scan_only : t -> bool
(** True when every FROM table is read by a full scan — the condition under
    which the 2VNL reader fast path can substitute an engine-level extract
    without changing row order or physical I/O. *)

val explain : t -> string
(** One line per FROM table describing the access path chosen at prepare
    time; same format as {!Executor.explain}. *)

(** {2 Result helpers} *)

val compare_value_lists :
  Vnl_relation.Value.t list -> Vnl_relation.Value.t list -> int

val sort_rows : result -> result
(** Canonically sort the rows; handy for order-insensitive comparisons. *)

val result_equal : result -> result -> bool
(** Equality on columns and row multisets (order-insensitive). *)
