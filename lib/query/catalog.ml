module Schema = Vnl_relation.Schema
module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value

type entry = {
  table : string;
  schema : Schema.t;
  pages : int list;
  secondary : (string * string list) list;
}

type member = {
  m_logical : string;
  m_storage : string;
  m_n : int;
  m_base_arity : int;
  m_added : (string * Value.t) list;
}

type generation = { g_index : int; g_vn : int; g_members : member list }

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* The serialized format delimits names with '|' (attr lines) and spaces
   (index lines), and records with newlines, so a name containing any of
   those — or a control character — would round-trip wrongly or produce a
   catalog [parse] rejects.  Names are validated both at creation time
   (Database.create_table, Table.create_index) and again at serialization,
   so a catalog written to disk is always re-parseable. *)
let valid_name s =
  s <> ""
  && String.for_all (fun c -> c > ' ' && c < '\x7f' && c <> '|') s

let check_name ~what s =
  if not (valid_name s) then
    invalid_arg
      (Printf.sprintf
         "%s name %S is invalid: names must be non-empty printable ASCII without spaces, '|', or control characters"
         what s)

let dtype_to_string = function
  | Dtype.Int -> "int"
  | Dtype.Float -> "float"
  | Dtype.Date -> "date"
  | Dtype.Bool -> "bool"
  | Dtype.Str n -> Printf.sprintf "str:%d" n

let dtype_of_string s =
  match s with
  | "int" -> Dtype.Int
  | "float" -> Dtype.Float
  | "date" -> Dtype.Date
  | "bool" -> Dtype.Bool
  | _ ->
    if String.length s > 4 && String.sub s 0 4 = "str:" then
      match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
      | Some n when n > 0 -> Dtype.Str n
      | _ -> fail "bad string width in %S" s
    else fail "unknown dtype %S" s

(* Default values for added columns travel inside the catalog text as
   self-contained tokens: the parser needs no schema context, floats
   round-trip exactly via the %h hex form, and strings survive any byte
   content via hex coding. *)
let value_to_token = function
  | Value.Null -> "null"
  | Value.Int n -> Printf.sprintf "int:%d" n
  | Value.Float f -> Printf.sprintf "float:%h" f
  | Value.Bool b -> Printf.sprintf "bool:%b" b
  | Value.Date d -> Printf.sprintf "date:%d" d
  | Value.Str s ->
    let b = Buffer.create (4 + (2 * String.length s)) in
    Buffer.add_string b "str:";
    String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
    Buffer.contents b

let value_of_token tok =
  let body tag = String.sub tok (String.length tag) (String.length tok - String.length tag) in
  let starts tag = String.length tok >= String.length tag && String.sub tok 0 (String.length tag) = tag in
  if tok = "null" then Value.Null
  else if starts "int:" then
    match int_of_string_opt (body "int:") with
    | Some n -> Value.Int n
    | None -> fail "bad int token %S" tok
  else if starts "float:" then
    match float_of_string_opt (body "float:") with
    | Some f -> Value.Float f
    | None -> fail "bad float token %S" tok
  else if starts "bool:" then
    match bool_of_string_opt (body "bool:") with
    | Some b -> Value.Bool b
    | None -> fail "bad bool token %S" tok
  else if starts "date:" then
    match int_of_string_opt (body "date:") with
    | Some d -> Value.Date d
    | None -> fail "bad date token %S" tok
  else if starts "str:" then begin
    let hex = body "str:" in
    if String.length hex mod 2 <> 0 then fail "bad str token %S" tok;
    Value.Str
      (String.init (String.length hex / 2) (fun i ->
           match int_of_string_opt ("0x" ^ String.sub hex (2 * i) 2) with
           | Some c -> Char.chr c
           | None -> fail "bad str token %S" tok))
  end
  else fail "unknown value token %S" tok

let serialize_generations buf gens =
  List.iter
    (fun g ->
      if g.g_index < 0 || g.g_vn < 0 then fail "negative generation stamp";
      Buffer.add_string buf (Printf.sprintf "gen %d %d\n" g.g_index g.g_vn);
      List.iter
        (fun m ->
          check_name ~what:"table" m.m_logical;
          check_name ~what:"table" m.m_storage;
          Buffer.add_string buf
            (Printf.sprintf "member %s|%s|%d|%d\n" m.m_logical m.m_storage m.m_n m.m_base_arity);
          List.iter
            (fun (attr, default) ->
              check_name ~what:"attribute" attr;
              Buffer.add_string buf
                (Printf.sprintf "madd %s|%s\n" attr (value_to_token default)))
            m.m_added)
        g.g_members)
    gens

let serialize ?(generations = []) entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (if generations = [] then "vnl-catalog 1\n" else "vnl-catalog 2\n");
  List.iter
    (fun e ->
      check_name ~what:"table" e.table;
      Buffer.add_string buf (Printf.sprintf "table %s\n" e.table);
      List.iter
        (fun a ->
          check_name ~what:"attribute" a.Schema.name;
          Buffer.add_string buf
            (Printf.sprintf "attr %s|%s|%c%c\n" a.Schema.name (dtype_to_string a.Schema.dtype)
               (if a.Schema.updatable then 'u' else '-')
               (if a.Schema.key then 'k' else '-')))
        (Schema.attributes e.schema);
      Buffer.add_string buf
        (Printf.sprintf "pages %s\n" (String.concat " " (List.map string_of_int e.pages)));
      List.iter
        (fun (iname, attrs) ->
          check_name ~what:"index" iname;
          List.iter (check_name ~what:"indexed attribute") attrs;
          Buffer.add_string buf (Printf.sprintf "index %s %s\n" iname (String.concat " " attrs)))
        e.secondary;
      Buffer.add_string buf "end\n")
    entries;
  serialize_generations buf generations;
  Buffer.contents buf

let parse_full text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> fail "empty catalog"
  | header :: rest ->
    let v2 =
      match String.trim header with
      | "vnl-catalog 1" -> false
      | "vnl-catalog 2" -> true
      | h -> fail "bad catalog header %S" h
    in
    let entries = ref [] in
    let current = ref None in
    let gens = ref [] in
    let cur_gen = ref None in
    let finish_gen () =
      match !cur_gen with
      | None -> ()
      | Some (g_index, g_vn, members) ->
        gens := { g_index; g_vn; g_members = List.rev members } :: !gens;
        cur_gen := None
    in
    let with_gen_member line f =
      match !cur_gen with
      | Some (gi, gv, m :: ms) -> cur_gen := Some (gi, gv, f m :: ms)
      | Some (_, _, []) | None -> fail "madd outside member %S" line
    in
    let finish () =
      match !current with
      | None -> ()
      | Some (table, attrs, pages, secondary) ->
        if attrs = [] then fail "table %s has no attributes" table;
        entries :=
          {
            table;
            schema = Schema.make (List.rev attrs);
            pages = List.rev pages;
            secondary = List.rev secondary;
          }
          :: !entries;
        current := None
    in
    List.iter
      (fun line ->
        let line = String.trim line in
        match String.index_opt line ' ' with
        | None ->
          if line = "end" then finish ()
          else if line = "pages" then begin
            (* A table with no pages yet. *)
            match !current with
            | Some (t, attrs, _, sec) -> current := Some (t, attrs, [], sec)
            | None -> fail "pages outside table"
          end
          else fail "unexpected line %S" line
        | Some i -> (
          let keyword = String.sub line 0 i in
          let body = String.sub line (i + 1) (String.length line - i - 1) in
          match keyword with
          | "table" ->
            finish ();
            current := Some (body, [], [], [])
          | "attr" -> (
            match (!current, String.split_on_char '|' body) with
            | Some (t, attrs, pages, sec), [ name; dtype; flags ] when String.length flags = 2 ->
              let attr =
                Schema.attr
                  ~updatable:(flags.[0] = 'u')
                  ~key:(flags.[1] = 'k')
                  name (dtype_of_string dtype)
              in
              current := Some (t, attr :: attrs, pages, sec)
            | Some _, _ -> fail "bad attr line %S" line
            | None, _ -> fail "attr outside table")
          | "pages" -> (
            match !current with
            | Some (t, attrs, _, sec) ->
              let pages =
                List.filter_map
                  (fun s ->
                    if s = "" then None
                    else
                      match int_of_string_opt s with
                      | Some p -> Some p
                      | None -> fail "bad page id %S" s)
                  (String.split_on_char ' ' body)
              in
              current := Some (t, attrs, List.rev pages, sec)
            | None -> fail "pages outside table")
          | "index" -> (
            match (!current, String.split_on_char ' ' body) with
            | Some (t, attrs, pages, sec), iname :: iattrs when iattrs <> [] ->
              current := Some (t, attrs, pages, (iname, iattrs) :: sec)
            | _ -> fail "bad index line %S" line)
          | "gen" when v2 -> (
            finish ();
            finish_gen ();
            match String.split_on_char ' ' body with
            | [ gi; gv ] -> (
              match (int_of_string_opt gi, int_of_string_opt gv) with
              | Some gi, Some gv when gi >= 0 && gv >= 0 -> cur_gen := Some (gi, gv, [])
              | _ -> fail "bad gen line %S" line)
            | _ -> fail "bad gen line %S" line)
          | "member" when v2 -> (
            match (!cur_gen, String.split_on_char '|' body) with
            | Some (gi, gv, ms), [ logical; storage; n; base_arity ] -> (
              match (int_of_string_opt n, int_of_string_opt base_arity) with
              | Some n, Some b when n >= 2 && b >= 1 ->
                cur_gen :=
                  Some
                    ( gi,
                      gv,
                      {
                        m_logical = logical;
                        m_storage = storage;
                        m_n = n;
                        m_base_arity = b;
                        m_added = [];
                      }
                      :: ms )
              | _ -> fail "bad member line %S" line)
            | None, _ -> fail "member outside gen"
            | Some _, _ -> fail "bad member line %S" line)
          | "madd" when v2 -> (
            match String.split_on_char '|' body with
            | [ attr; token ] ->
              let v = value_of_token token in
              with_gen_member line (fun m -> { m with m_added = m.m_added @ [ (attr, v) ] })
            | _ -> fail "bad madd line %S" line)
          | _ -> fail "unknown keyword %S" keyword))
      rest;
    finish ();
    finish_gen ();
    (List.rev !entries, List.rev !gens)

let parse text = fst (parse_full text)
