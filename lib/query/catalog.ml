module Schema = Vnl_relation.Schema
module Dtype = Vnl_relation.Dtype

type entry = {
  table : string;
  schema : Schema.t;
  pages : int list;
  secondary : (string * string list) list;
}

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* The serialized format delimits names with '|' (attr lines) and spaces
   (index lines), and records with newlines, so a name containing any of
   those — or a control character — would round-trip wrongly or produce a
   catalog [parse] rejects.  Names are validated both at creation time
   (Database.create_table, Table.create_index) and again at serialization,
   so a catalog written to disk is always re-parseable. *)
let valid_name s =
  s <> ""
  && String.for_all (fun c -> c > ' ' && c < '\x7f' && c <> '|') s

let check_name ~what s =
  if not (valid_name s) then
    invalid_arg
      (Printf.sprintf
         "%s name %S is invalid: names must be non-empty printable ASCII without spaces, '|', or control characters"
         what s)

let dtype_to_string = function
  | Dtype.Int -> "int"
  | Dtype.Float -> "float"
  | Dtype.Date -> "date"
  | Dtype.Bool -> "bool"
  | Dtype.Str n -> Printf.sprintf "str:%d" n

let dtype_of_string s =
  match s with
  | "int" -> Dtype.Int
  | "float" -> Dtype.Float
  | "date" -> Dtype.Date
  | "bool" -> Dtype.Bool
  | _ ->
    if String.length s > 4 && String.sub s 0 4 = "str:" then
      match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
      | Some n when n > 0 -> Dtype.Str n
      | _ -> fail "bad string width in %S" s
    else fail "unknown dtype %S" s

let serialize entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "vnl-catalog 1\n";
  List.iter
    (fun e ->
      check_name ~what:"table" e.table;
      Buffer.add_string buf (Printf.sprintf "table %s\n" e.table);
      List.iter
        (fun a ->
          check_name ~what:"attribute" a.Schema.name;
          Buffer.add_string buf
            (Printf.sprintf "attr %s|%s|%c%c\n" a.Schema.name (dtype_to_string a.Schema.dtype)
               (if a.Schema.updatable then 'u' else '-')
               (if a.Schema.key then 'k' else '-')))
        (Schema.attributes e.schema);
      Buffer.add_string buf
        (Printf.sprintf "pages %s\n" (String.concat " " (List.map string_of_int e.pages)));
      List.iter
        (fun (iname, attrs) ->
          check_name ~what:"index" iname;
          List.iter (check_name ~what:"indexed attribute") attrs;
          Buffer.add_string buf (Printf.sprintf "index %s %s\n" iname (String.concat " " attrs)))
        e.secondary;
      Buffer.add_string buf "end\n")
    entries;
  Buffer.contents buf

let parse text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> fail "empty catalog"
  | header :: rest ->
    if String.trim header <> "vnl-catalog 1" then fail "bad catalog header %S" header;
    let entries = ref [] in
    let current = ref None in
    let finish () =
      match !current with
      | None -> ()
      | Some (table, attrs, pages, secondary) ->
        if attrs = [] then fail "table %s has no attributes" table;
        entries :=
          {
            table;
            schema = Schema.make (List.rev attrs);
            pages = List.rev pages;
            secondary = List.rev secondary;
          }
          :: !entries;
        current := None
    in
    List.iter
      (fun line ->
        let line = String.trim line in
        match String.index_opt line ' ' with
        | None ->
          if line = "end" then finish ()
          else if line = "pages" then begin
            (* A table with no pages yet. *)
            match !current with
            | Some (t, attrs, _, sec) -> current := Some (t, attrs, [], sec)
            | None -> fail "pages outside table"
          end
          else fail "unexpected line %S" line
        | Some i -> (
          let keyword = String.sub line 0 i in
          let body = String.sub line (i + 1) (String.length line - i - 1) in
          match keyword with
          | "table" ->
            finish ();
            current := Some (body, [], [], [])
          | "attr" -> (
            match (!current, String.split_on_char '|' body) with
            | Some (t, attrs, pages, sec), [ name; dtype; flags ] when String.length flags = 2 ->
              let attr =
                Schema.attr
                  ~updatable:(flags.[0] = 'u')
                  ~key:(flags.[1] = 'k')
                  name (dtype_of_string dtype)
              in
              current := Some (t, attr :: attrs, pages, sec)
            | Some _, _ -> fail "bad attr line %S" line
            | None, _ -> fail "attr outside table")
          | "pages" -> (
            match !current with
            | Some (t, attrs, _, sec) ->
              let pages =
                List.filter_map
                  (fun s ->
                    if s = "" then None
                    else
                      match int_of_string_opt s with
                      | Some p -> Some p
                      | None -> fail "bad page id %S" s)
                  (String.split_on_char ' ' body)
              in
              current := Some (t, attrs, List.rev pages, sec)
            | None -> fail "pages outside table")
          | "index" -> (
            match (!current, String.split_on_char ' ' body) with
            | Some (t, attrs, pages, sec), iname :: iattrs when iattrs <> [] ->
              current := Some (t, attrs, pages, (iname, iattrs) :: sec)
            | _ -> fail "bad index line %S" line)
          | _ -> fail "unknown keyword %S" keyword))
      rest;
    finish ();
    List.rev !entries
