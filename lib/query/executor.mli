(** SELECT execution.

    A straightforward evaluator: FROM (cross product over the named tables),
    WHERE, GROUP BY with aggregates, HAVING, projection, DISTINCT, ORDER BY.
    A minimal planner picks each table's access path from the equality
    predicates in WHERE: a unique-key probe when the whole key is bound, the
    longest covered secondary index otherwise, else a full scan — which is
    what makes the §4.3 discussion observable: indexes on group-by
    attributes keep working under the 2VNL rewrite, while a predicate
    wrapped in the rewrite's CASE can no longer use one.  All data access
    goes through the buffer pool, so access-path choices show up in the
    physical I/O counters. *)

exception Query_error of string
(** Alias of {!Plan.Query_error}: interpreter and compiled plans raise the
    same exception. *)

type result = Plan.result = {
  columns : string list;  (** Output column labels, in select-list order. *)
  rows : Vnl_relation.Value.t list list;
}

val query :
  Database.t ->
  ?params:(string * Vnl_relation.Value.t) list ->
  Vnl_sql.Ast.select ->
  result
(** Execute a SELECT.  Raises {!Query_error} (or {!Eval.Eval_error}) on
    unknown tables/columns or malformed grouping. *)

val query_string :
  Database.t -> ?params:(string * Vnl_relation.Value.t) list -> string -> result
(** Execute a SQL string through the prepared-statement cache
    ({!Prepared.exec}): the statement is parsed and compiled once, then
    revalidated and re-executed from the cache.  Same results and errors
    as {!query} — the compiled path mirrors the interpreter exactly. *)

val sort_rows : result -> result
(** Canonically sort the rows; handy for order-insensitive comparisons in
    tests and experiment output. *)

val result_equal : result -> result -> bool
(** Equality on columns and row multisets (order-insensitive). *)

val pp_result : Format.formatter -> result -> unit
(** Render as an aligned text table. *)

val explain :
  Database.t -> ?params:(string * Vnl_relation.Value.t) list -> Vnl_sql.Ast.select -> string
(** One line per FROM table describing the chosen access path (unique-key
    probe, secondary-index scan, or full scan) without executing the
    query. *)

val explain_string :
  Database.t -> ?params:(string * Vnl_relation.Value.t) list -> string -> string
