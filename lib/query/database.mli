(** A database: one buffer pool and a catalog of named tables. *)

type t

val create : ?page_size:int -> ?pool_capacity:int -> unit -> t
(** Fresh database over a new simulated disk.  [page_size] defaults to 4096
    bytes, [pool_capacity] to 64 frames. *)

val pool : t -> Vnl_storage.Buffer_pool.t

type plan_cache = ..
(** Slot for the prepared-statement cache.  The concrete constructor is
    added by {!Prepared} (which sits above this module), so the cache can
    live and die with its database without a dependency cycle. *)

val plan_cache : t -> plan_cache option

val set_plan_cache : t -> plan_cache -> unit

val create_table : t -> string -> Vnl_relation.Schema.t -> Table.t
(** Raises [Invalid_argument] if the name is taken. *)

val table : t -> string -> Table.t option

val table_exn : t -> string -> Table.t
(** Raises [Not_found] with the table name in a [Failure] message. *)

val drop_table : t -> string -> unit

val rename_table : t -> string -> string -> unit
(** [rename_table t old new_] re-binds a table under [new_], keeping its
    creation-order position (catalog page layout is stable across schema
    evolutions).  Raises [Invalid_argument] when [old] is absent, [new_] is
    taken, or [new_] fails {!Catalog.valid_name}. *)

val generations_meta : t -> Catalog.generation list
(** Catalog-generation metadata, newest first; [[]] until the first schema
    evolution is staged. *)

val set_generations_meta : t -> Catalog.generation list -> unit
(** Replace the generation metadata.  Serialized by the next {!save}; owned
    by the evolution machinery in [Vnl_core.Twovnl]. *)

val tables : t -> Table.t list
(** In creation order. *)

val io_stats : t -> Vnl_storage.Buffer_pool.stats

val reset_io_stats : t -> unit

val drop_cache : t -> unit
(** Flush and empty the buffer pool so the next accesses are cold; used by
    the I/O experiments. *)

val save : ?mode:[ `Full | `Catalog_only ] -> t -> unit
(** Persist the catalog (schemas, heap pages, index definitions) into
    reserved catalog pages, making the disk image self-describing.  The
    update is crash-atomic: the new catalog generation is written to a
    spare page set and flushed before the single-page header flips to it,
    so a crash mid-save leaves either the old or the new catalog on disk,
    never a mixture (see {!Vnl_core.Recovery}).

    [`Full] (the default) flushes {e every} dirty page around the header
    flip, doubling as the caller's data-durability point.  [`Catalog_only]
    flushes only the catalog content pages and the header: the pipelined
    maintenance path uses it after targeted data flushes, when a full
    sweep would entangle other partitions' in-flight pages. *)

val disk : t -> Vnl_storage.Disk.t

val reopen : ?pool_capacity:int -> Vnl_storage.Disk.t -> t
(** Re-open a database from a disk image produced by {!save}: tables are
    re-attached to their pages and all indexes rebuilt by scanning.  Raises
    {!Catalog.Corrupt} if the image has no valid catalog. *)
