module Buffer_pool = Vnl_storage.Buffer_pool
module Disk = Vnl_storage.Disk

type plan_cache = ..
(* Extensible so the cache type (defined above this module's dependants, in
   Prepared) can live inside the database it serves without a module cycle. *)

type t = {
  pool : Buffer_pool.t;
  catalog : (string, Table.t) Hashtbl.t;
  mutable order : string list;  (** Creation order, newest first. *)
  mutable catalog_pages : int list;
      (** Content pages the on-disk header currently points at. *)
  mutable spare_pages : int list;
      (** The other catalog generation: [save] writes here, then flips the
          header.  Double-buffering makes the catalog update atomic — a
          crash mid-save leaves the header pointing at the untouched old
          generation, never at half-written content. *)
  mutable plan_cache : plan_cache option;
  mutable gens : Catalog.generation list;
      (** Catalog-generation metadata (newest first); empty until the first
          schema evolution.  Mirrored into the serialized catalog so reopen
          can rebuild every retained generation. *)
}

let create ?(page_size = 4096) ?(pool_capacity = 64) () =
  let disk = Disk.create ~page_size () in
  let pool = Buffer_pool.create ~capacity:pool_capacity disk in
  (* Page 0 is the catalog header. *)
  ignore (Buffer_pool.alloc_page pool);
  {
    pool;
    catalog = Hashtbl.create 8;
    order = [];
    catalog_pages = [];
    spare_pages = [];
    plan_cache = None;
    gens = [];
  }

let pool t = t.pool

let plan_cache t = t.plan_cache

let set_plan_cache t c = t.plan_cache <- Some c

let create_table t name schema =
  (* Reject names the catalog format cannot round-trip now, not at the
     first [save] — by then the table holds data. *)
  Catalog.check_name ~what:"table" name;
  List.iter
    (fun a -> Catalog.check_name ~what:"attribute" a.Vnl_relation.Schema.name)
    (Vnl_relation.Schema.attributes schema);
  if Hashtbl.mem t.catalog name then
    invalid_arg (Printf.sprintf "Database.create_table: %S already exists" name);
  let table = Table.create t.pool ~name schema in
  Hashtbl.add t.catalog name table;
  t.order <- name :: t.order;
  table

let table t name = Hashtbl.find_opt t.catalog name

(* Schema evolution stages a widened copy under the logical name after
   parking the superseded table under a frozen alias; the rename must keep
   [order] (and so catalog serialization order) stable, or page layout
   on disk would churn on every evolution. *)
let rename_table t old_name new_name =
  Catalog.check_name ~what:"table" new_name;
  if Hashtbl.mem t.catalog new_name then
    invalid_arg (Printf.sprintf "Database.rename_table: %S already exists" new_name);
  match Hashtbl.find_opt t.catalog old_name with
  | None -> invalid_arg (Printf.sprintf "Database.rename_table: no such table %S" old_name)
  | Some tbl ->
    Hashtbl.remove t.catalog old_name;
    Table.set_name tbl new_name;
    Hashtbl.add t.catalog new_name tbl;
    t.order <- List.map (fun n -> if String.equal n old_name then new_name else n) t.order

let generations_meta t = t.gens

let set_generations_meta t gens = t.gens <- gens

let table_exn t name =
  match table t name with
  | Some tbl -> tbl
  | None -> failwith (Printf.sprintf "Database: no such table %S" name)

let drop_table t name =
  Hashtbl.remove t.catalog name;
  t.order <- List.filter (fun n -> not (String.equal n name)) t.order

let tables t = List.rev_map (fun name -> Hashtbl.find t.catalog name) t.order

let io_stats t = Buffer_pool.stats t.pool

let reset_io_stats t = Buffer_pool.reset_stats t.pool

let drop_cache t = Buffer_pool.drop_cache t.pool


(* ---------- persistence ---------- *)

let magic = "VNLDB1"

let disk t = Buffer_pool.disk t.pool

let entries t =
  List.map
    (fun table ->
      {
        Catalog.table = Table.name table;
        schema = Table.schema table;
        pages = Vnl_storage.Heap_file.pages (Table.heap table);
        secondary = Table.indexes table;
      })
    (tables t)

(* Crash-safe save: the new catalog generation is written to the spare page
   set and flushed {e before} the single-page header flips to it, so the
   on-disk header always points at fully written content.  A crash anywhere
   inside [save] leaves either the old catalog (header not yet flipped) or
   the new one (flip durable) — never a truncated or mixed generation,
   which could otherwise silently mis-parse (a cut "pages 5 12" line reads
   as "pages 5 1").  The first flush also carries every other dirty frame,
   which is exactly the apply -> flush -> catalog-write -> publish ordering
   {!Vnl_core.Recovery} relies on. *)
let save ?(mode = `Full) t =
  let text = Catalog.serialize ~generations:t.gens (entries t) in
  let page_size = Disk.page_size (disk t) in
  let needed = max 1 ((String.length text + page_size - 1) / page_size) in
  while List.length t.spare_pages < needed do
    t.spare_pages <- t.spare_pages @ [ Buffer_pool.alloc_page t.pool ]
  done;
  List.iteri
    (fun i pid ->
      Buffer_pool.with_page_mut t.pool pid (fun img ->
          Bytes.fill img 0 page_size '\000';
          let off = i * page_size in
          if off < String.length text then begin
            let len = min page_size (String.length text - off) in
            Bytes.blit_string text off img 0 len
          end))
    t.spare_pages;
  (* [`Full] doubles as the caller's data-durability point (every dirty
     frame reaches disk before the header flip).  [`Catalog_only] flushes
     just the catalog content pages — the pipelined path has already made
     its partition's data pages durable with a targeted blocking flush and
     must not sweep up other in-flight partitions' half-applied pages. *)
  (match mode with
  | `Full -> Buffer_pool.flush_all t.pool
  | `Catalog_only -> Buffer_pool.flush_pages t.pool t.spare_pages);
  (* Header page 0: magic, content length, content page ids, then the
     retired generation's pages so a reopened database keeps reusing them. *)
  let live = t.spare_pages and retired = t.catalog_pages in
  Buffer_pool.with_page_mut t.pool 0 (fun img ->
      Bytes.fill img 0 page_size '\000';
      let ids pids = String.concat " " (List.map string_of_int pids) in
      let header =
        Printf.sprintf "%s %d %s\nspare %s\n" magic (String.length text) (ids live)
          (ids retired)
      in
      if String.length header > page_size then failwith "Database.save: header overflow";
      Bytes.blit_string header 0 img 0 (String.length header));
  (match mode with
  | `Full -> Buffer_pool.flush_all t.pool
  | `Catalog_only -> Buffer_pool.flush_pages t.pool [ 0 ]);
  t.catalog_pages <- live;
  t.spare_pages <- retired

let reopen ?(pool_capacity = 64) disk0 =
  let pool = Buffer_pool.create ~capacity:pool_capacity disk0 in
  let page_size = Disk.page_size disk0 in
  let header_lines =
    Buffer_pool.with_page pool 0 (fun img ->
        let raw = Bytes.to_string img in
        match String.split_on_char '\n' raw with
        | first :: rest -> (first, rest)
        | [] -> raise (Catalog.Corrupt "missing catalog header"))
  in
  let length, pages =
    match String.split_on_char ' ' (fst header_lines) with
    | m :: len :: pids when m = magic -> (
      match int_of_string_opt len with
      | Some l -> (l, List.filter_map int_of_string_opt pids)
      | None -> raise (Catalog.Corrupt "bad catalog length"))
    | _ -> raise (Catalog.Corrupt "bad catalog magic")
  in
  let spare =
    match snd header_lines with
    | line :: _ when String.length line >= 5 && String.sub line 0 5 = "spare" ->
      List.filter_map int_of_string_opt
        (String.split_on_char ' ' (String.sub line 5 (String.length line - 5)))
    | _ -> []
  in
  let buf = Buffer.create length in
  List.iter
    (fun pid ->
      Buffer_pool.with_page pool pid (fun img ->
          let remaining = length - Buffer.length buf in
          Buffer.add_subbytes buf img 0 (min page_size remaining)))
    pages;
  let entries, gens = Catalog.parse_full (Buffer.contents buf) in
  let t =
    {
      pool;
      catalog = Hashtbl.create 8;
      order = [];
      catalog_pages = pages;
      spare_pages = spare;
      plan_cache = None;
      gens;
    }
  in
  List.iter
    (fun e ->
      let table =
        Table.attach pool ~name:e.Catalog.table e.Catalog.schema ~pages:e.Catalog.pages
          ~secondary:e.Catalog.secondary
      in
      Hashtbl.add t.catalog e.Catalog.table table;
      t.order <- e.Catalog.table :: t.order)
    entries;
  t
