(** Scalar expression evaluation with SQL three-valued logic.

    Comparisons involving NULL yield NULL; AND/OR follow Kleene logic; a
    WHERE predicate holds only when it evaluates to true.  Named parameters
    ([:sessionVN], [:maintenanceVN]) are resolved from a binding list — the
    mechanism the 2VNL rewrite uses to inject version numbers (§4.1). *)

exception Eval_error of string

type env = {
  resolve : string option -> string -> Vnl_relation.Value.t;
      (** Column resolver given optional qualifier and name; should raise
          {!Eval_error} for unknown columns. *)
  params : (string * Vnl_relation.Value.t) list;
}

val no_columns : string option -> string -> Vnl_relation.Value.t
(** Resolver for column-free contexts (e.g. INSERT VALUES); always raises. *)

val eval : env -> Vnl_sql.Ast.expr -> Vnl_relation.Value.t
(** Raises {!Eval_error} on aggregate nodes (the executor computes those),
    unknown parameters, or type errors. *)

val truthy : Vnl_relation.Value.t -> bool
(** SQL predicate semantics: [Bool true] is true; [Bool false] and [Null]
    are not.  Raises {!Eval_error} on non-boolean values. *)

val eval_pred : env -> Vnl_sql.Ast.expr -> bool
(** [truthy (eval env e)]. *)

(** {2 Primitive operations}

    Exposed so the {!Plan} compiler produces closures with exactly the
    interpreter's semantics (three-valued logic, error messages included);
    the differential tests rely on the two paths sharing these. *)

val compare_op : Vnl_sql.Ast.binop -> Vnl_relation.Value.t -> Vnl_relation.Value.t -> Vnl_relation.Value.t
(** Three-valued comparison; only valid for comparison operators. *)

val and3 : Vnl_relation.Value.t -> Vnl_relation.Value.t -> Vnl_relation.Value.t

val or3 : Vnl_relation.Value.t -> Vnl_relation.Value.t -> Vnl_relation.Value.t

val not3 : Vnl_relation.Value.t -> Vnl_relation.Value.t

val like_match : string -> string -> bool
(** SQL LIKE: [%] matches any run, [_] any single character. *)
